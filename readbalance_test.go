package faultdir

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirsvc/dir"
	"dirsvc/internal/dirsvc"
)

// TestMinSeqBlocksOnLaggingReplica pins the session-consistency floor at
// one specific replica: a read stamped with a MinSeq the replica has not
// applied yet must block there — not answer from older state — and
// complete as soon as the replica's applied cursor reaches the floor.
// This is exactly the lagging-replica case read balancing exposes: the
// write was acknowledged through one replica, the read lands on another.
func TestMinSeqBlocksOnLaggingReplica(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	work, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}

	// Interrogate replica 3 directly, below the RPC transport. Wait for
	// the create to finish applying on every replica first, so the floor
	// computed below is genuinely in the future — not a commit still in
	// flight to a lagging replica.
	replica := c.machine(3).core
	if replica == nil {
		t.Fatal("no core server on machine 3")
	}
	applied := replica.Status().AppliedSeq
	settle := time.Now().Add(10 * time.Second)
	for {
		a1 := c.machine(1).core.Status().AppliedSeq
		a2 := c.machine(2).core.Status().AppliedSeq
		applied = replica.Status().AppliedSeq
		if a1 == applied && a2 == applied && applied > 0 {
			break
		}
		if time.Now().After(settle) {
			t.Fatalf("replicas never quiesced: applied = %d/%d/%d", a1, a2, applied)
		}
		time.Sleep(5 * time.Millisecond)
	}
	floor := applied + 1 // the next write's sequence number — not yet applied anywhere

	done := make(chan *dirsvc.Reply, 1)
	go func() {
		done <- replica.Read(&dirsvc.Request{Op: dirsvc.OpListDir, Dir: work, MinSeq: floor})
	}()
	select {
	case reply := <-done:
		t.Fatalf("read with MinSeq=%d returned %v before the floor was applied (applied=%d)",
			floor, reply.Status, applied)
	case <-time.After(150 * time.Millisecond):
		// Still blocked: the floor is doing its job.
	}

	// Commit the write the floor anticipates; the blocked read must now
	// complete and observe it.
	if err := client.Append(bgCtx, work, "fresh", work, nil); err != nil {
		t.Fatalf("Append: %v", err)
	}
	select {
	case reply := <-done:
		if reply.Status != dirsvc.StatusOK {
			t.Fatalf("unblocked read status = %v, want OK", reply.Status)
		}
		if reply.Seq < floor {
			t.Fatalf("unblocked read stamped Seq=%d, below its own floor %d", reply.Seq, floor)
		}
		found := false
		for _, row := range reply.Rows {
			if row.Name == "fresh" {
				found = true
			}
		}
		if !found {
			t.Fatalf("unblocked read missed the write that released it: rows = %+v", reply.Rows)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("read stayed blocked after the floor was applied")
	}
}

// TestMinSeqUnreachableFloorRefused: a floor the replica cannot reach is
// refused (no-majority, prompting client failover) after a bounded wait —
// never answered with data older than the floor.
func TestMinSeqUnreachableFloorRefused(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	work, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	replica := c.machine(1).core
	reply := replica.Read(&dirsvc.Request{
		Op:     dirsvc.OpListDir,
		Dir:    work,
		MinSeq: replica.Status().AppliedSeq + 1000,
	})
	if reply.Status != dirsvc.StatusNoMajority {
		t.Fatalf("unreachable floor: status = %v, want NoMajority (stale data must not leak)", reply.Status)
	}
}

// TestReadBalanceLoadDistribution is the Fig. 8-style assertion on the
// full stack: with read balancing on, one client's lookups spread across
// all three replicas of the group; with the legacy knob off, they pin to
// the first HEREIS responder — the paper's skew, preserved for the
// Fig. 8 reproduction.
func TestReadBalanceLoadDistribution(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	const lookups = 90

	run := func(balance bool) (perServer map[int]uint64, total uint64) {
		client, cleanup, err := c.NewBalancedClient(dir.CacheOptions{}, balance)
		if err != nil {
			t.Fatal(err)
		}
		defer cleanup()
		work, err := client.CreateDir(bgCtx)
		if err != nil {
			t.Fatalf("CreateDir: %v", err)
		}
		appendWithRetry(t, client, work, "target", work, 30*time.Second)
		before := c.ShardReadCounts(0)
		for i := 0; i < lookups; i++ {
			if _, err := client.Lookup(bgCtx, work, "target"); err != nil {
				t.Fatalf("balance=%v lookup %d: %v", balance, i, err)
			}
		}
		perServer = c.ShardReadCounts(0)
		for id, n := range before {
			perServer[id] -= n
			total += perServer[id]
		}
		return perServer, total
	}

	spread, total := run(true)
	for id := 1; id <= 3; id++ {
		if share := float64(spread[id]) / float64(total); share < 0.15 {
			t.Fatalf("balanced reads skewed: server %d served %.0f%% of %d (%v)",
				id, 100*share, total, spread)
		}
	}

	pinned, total := run(false)
	var top uint64
	for _, n := range pinned {
		if n > top {
			top = n
		}
	}
	if float64(top)/float64(total) < 0.9 {
		t.Fatalf("legacy pinned policy lost its skew: top server served %d of %d (%v)",
			top, total, pinned)
	}
}

// TestTwoClientsSpreadLoad is the multi-client spread regression: two
// *independent* balanced clients — each with its own EWMA tracker, no
// shared state — running lookups concurrently must still end up spread
// across all three replicas. The piggybacked load hints are what makes
// this work: each client sees the queue depth its peer is causing and
// steers away from it, where inflight-only accounting (each client
// counting only its own requests) would let both dogpile one replica.
func TestTwoClientsSpreadLoad(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	const lookupsEach = 60
	const clients = 2

	setup, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	work, err := setup.CreateDir(bgCtx)
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	appendWithRetry(t, setup, work, "target", work, 30*time.Second)

	before := c.ShardReadCounts(0)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for n := 0; n < clients; n++ {
		client, cl, err := c.NewBalancedClient(dir.CacheOptions{}, true)
		if err != nil {
			t.Fatal(err)
		}
		defer cl()
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < lookupsEach; i++ {
				if _, err := client.Lookup(bgCtx, work, "target"); err != nil {
					errs <- fmt.Errorf("client %d lookup %d: %w", n, i, err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	perServer := c.ShardReadCounts(0)
	var total uint64
	for id, n := range before {
		perServer[id] -= n
		total += perServer[id]
	}
	for id := 1; id <= 3; id++ {
		if share := float64(perServer[id]) / float64(total); share < 0.15 {
			t.Fatalf("two independent balanced clients skewed: server %d served %.0f%% of %d (%v)",
				id, 100*share, total, perServer)
		}
	}
}

// TestHedgingPreservesSessionFloor pins the interaction between hedged
// reads and the MinSeq session floor: with one replica cut off, reads
// steered onto it are rescued by a hedge to a live replica — and every
// read that succeeds, however it was routed, must observe the client's
// own preceding write. A hedge that reached a lagging replica and let
// it answer below the floor would surface here as ErrNotFound for a
// name the same session just appended.
func TestHedgingPreservesSessionFloor(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	client, cleanup, err := c.NewBalancedClient(dir.CacheOptions{}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	work, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	appendWithRetry(t, client, work, "seed", work, 30*time.Second)
	// Warm the picker so every replica has a latency sample; the hedge
	// timer arms off these.
	for i := 0; i < 6; i++ {
		if _, err := client.Lookup(bgCtx, work, "seed"); err != nil {
			t.Fatalf("warm lookup %d: %v", i, err)
		}
	}

	// Cut one replica off. The majority keeps committing; reads picked
	// onto the dead replica go unanswered until the hedge fires.
	c.PartitionShardServers(0, 2)
	defer c.Heal()

	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("w%d", i)
		appendWithRetry(t, client, work, name, work, 30*time.Second)
		deadline := time.Now().Add(15 * time.Second)
		for {
			_, err := client.Lookup(bgCtx, work, name)
			if err == nil {
				break
			}
			if errors.Is(err, dirsvc.ErrNotFound) {
				t.Fatalf("lookup %q: own write invisible — a read answered below the session floor", name)
			}
			if time.Now().After(deadline) {
				t.Fatalf("lookup %q never succeeded: %v", name, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	if sent, _ := client.HedgeStats(); sent == 0 {
		t.Fatal("no hedge fired against the partitioned replica; the scenario did not exercise hedging")
	}
}
