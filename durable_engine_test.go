package faultdir

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dirsvc/dir"
	"dirsvc/internal/dirclient"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/sim"
)

// The storage-engine test schedule: whole-cluster crashes of the
// plain-durable deployment with a prepared two-phase transaction (the
// crash window the engine's write-ahead log closes), checkpoint +
// log-suffix recovery, the backup/restore round trip on every backend
// kind, and the readonly secondary tier's session-floor consistency.

// newEngineCluster boots a KindGroup deployment with the disk-backed
// storage engine under every replica. The background checkpoint is
// pushed out to an hour so tests control checkpoint timing themselves.
func newEngineCluster(t *testing.T, shards int) *Cluster {
	t.Helper()
	c, err := New(KindGroup, Options{
		Model:             sim.FastModel(),
		HeartbeatInterval: testHeartbeat,
		Shards:            shards,
		Workers:           8,
		TxAbortTimeout:    crashTxTimeout,
		IdleFlush:         time.Hour,
		DiskEngine:        true,
	})
	if err != nil {
		t.Fatalf("New(KindGroup, engine): %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestPlainDurableWholeClusterCrashPrepared is the regression test for
// the closed 2PC crash window. Before the storage engine, the plain
// durable deployment kept a prepared transaction's vote only in its
// replicas' RAM: a simultaneous whole-shard crash forgot the vote, and
// a decision the resolver had already exposed could be contradicted.
// With Options.DiskEngine every prepare and decide reaches the
// write-ahead log before the reply, so here the ENTIRE CLUSTER — every
// replica of both shards — crashes with the transaction prepared, and
// after reboot the outcome must still settle exactly once:
//
//   - NoDecision: no shard ratified anything before the crash, so
//     presumed abort wins and nothing may surface.
//   - AfterPartialCommit: the resolver shard committed its half; the
//     restarted participant must find its own prepare in the log,
//     re-stage the transaction, and learn the commit from the
//     resolver's logged decision.
func TestPlainDurableWholeClusterCrashPrepared(t *testing.T) {
	if testing.Short() {
		t.Skip("crash schedule: covered by the dedicated durability CI lane")
	}
	cases := []struct {
		name      string
		stage     dirclient.TxStage
		committed bool
	}{
		{"NoDecision", dirclient.TxAfterPrepare, false},
		{"AfterPartialCommit", dirclient.TxAfterResolverDecide, true},
	}
	for _, sc := range cases {
		t.Run(sc.name, func(t *testing.T) {
			c := newEngineCluster(t, 2)
			f := newTxFixture(t, c, "wholecluster")

			f.coordinator.SetTxHook(func(s dirclient.TxStage) error {
				if s == sc.stage {
					for shard := 0; shard < c.Shards(); shard++ {
						for id := 1; id <= c.ServersPerShard(); id++ {
							c.CrashShardServer(shard, id)
						}
					}
					return dirclient.ErrTxHalt
				}
				return nil
			})
			_, err := f.coordinator.Apply(bgCtx, f.batch())
			f.coordinator.SetTxHook(nil)
			if !errors.Is(err, dirclient.ErrTxHalt) {
				t.Fatalf("halted Apply: err = %v, want ErrTxHalt", err)
			}

			// Reboot the whole cluster concurrently, as a power cycle
			// would: every replica's recovery replays its checkpoint +
			// log suffix, then waits for its shard's majority.
			errs := make(chan error, c.Shards()*c.ServersPerShard())
			for shard := 0; shard < c.Shards(); shard++ {
				for id := 1; id <= c.ServersPerShard(); id++ {
					go func(shard, id int) { errs <- c.RestartShardServer(shard, id) }(shard, id)
				}
			}
			for i := 0; i < cap(errs); i++ {
				if err := <-errs; err != nil {
					t.Fatalf("whole-cluster reboot: %v", err)
				}
			}
			f.assertSettles(t, sc.committed)
		})
	}
}

// TestEngineRecoveryFromCheckpointAndSuffix proves restart recovery is
// checkpoint + log-suffix replay. In an engine deployment the object
// table and Bullet store are never written on the update path — the
// engine partition is the ONLY durable copy — so a shard whose history
// far exceeds any in-memory replay budget still recovers entirely from
// the last checkpoint plus the short log tail behind it.
func TestEngineRecoveryFromCheckpointAndSuffix(t *testing.T) {
	c := newEngineCluster(t, 1)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	d, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}

	// History in three strata: rows before the checkpoint (recovered
	// from the checkpoint image alone), the checkpoint cut, rows after
	// it (recovered from the log suffix).
	for i := 0; i < 30; i++ {
		if err := client.Append(bgCtx, d, fmt.Sprintf("ckpt%02d", i), d, nil); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := c.CheckpointShard(0); err != nil {
		t.Fatalf("CheckpointShard: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := client.Append(bgCtx, d, fmt.Sprintf("tail%02d", i), d, nil); err != nil {
			t.Fatalf("tail append %d: %v", i, err)
		}
	}

	for id := 1; id <= c.ServersPerShard(); id++ {
		c.CrashShardServer(0, id)
	}
	restartShard(t, c, 0)

	// Every row from both strata survived the reboot.
	rows, err := client.List(bgCtx, d, 0)
	if err != nil {
		t.Fatalf("List after reboot: %v", err)
	}
	if len(rows) != 40 {
		t.Fatalf("rows after reboot = %d, want 40", len(rows))
	}
	// Recovery seals with a fresh checkpoint, so the next reboot starts
	// from a truncated log again.
	for id := 1; id <= c.ServersPerShard(); id++ {
		if st := c.machine(id).core.Status(); st.CheckpointSeq == 0 {
			t.Fatalf("replica %d recovered without sealing a checkpoint: %+v", id, st)
		}
	}
	// And the service keeps taking writes.
	if err := client.Append(bgCtx, d, "after-reboot", d, nil); err != nil {
		t.Fatalf("append after reboot: %v", err)
	}
}

// TestBackupRestoreRoundTrip runs the portable-snapshot cycle on every
// backend kind: capture a shard, diverge the live state (new row, a
// deletion), restore the snapshot, and check the shard is bit-for-bit
// back at the capture point — resurrected row included — and still
// accepts new work.
func TestBackupRestoreRoundTrip(t *testing.T) {
	for _, kind := range []Kind{KindGroup, KindGroupNVRAM, KindRPC, KindLocal} {
		t.Run(kind.String(), func(t *testing.T) {
			c := newTestCluster(t, kind)
			client, cleanup, err := c.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()
			root, err := client.Root(bgCtx)
			if err != nil {
				t.Fatal(err)
			}
			d, err := client.CreateDir(bgCtx)
			if err != nil {
				t.Fatal(err)
			}
			if err := client.Append(bgCtx, root, "alpha", d, nil); err != nil {
				t.Fatal(err)
			}
			if err := client.Append(bgCtx, d, "leaf", d, nil); err != nil {
				t.Fatal(err)
			}

			snap, err := client.Backup(bgCtx, 0)
			if err != nil {
				t.Fatalf("Backup: %v", err)
			}
			if len(snap) == 0 {
				t.Fatal("Backup returned an empty snapshot")
			}

			// Diverge past the capture point.
			if err := client.Delete(bgCtx, root, "alpha"); err != nil {
				t.Fatal(err)
			}
			if err := client.Append(bgCtx, root, "beta", d, nil); err != nil {
				t.Fatal(err)
			}

			if err := client.RestoreShard(bgCtx, 0, snap); err != nil {
				t.Fatalf("RestoreShard: %v", err)
			}

			// Back at the capture point: alpha resurrected, beta gone.
			got, err := client.Lookup(bgCtx, root, "alpha")
			if err != nil {
				t.Fatalf("Lookup alpha after restore: %v", err)
			}
			if got != d {
				t.Fatalf("alpha = %v, want %v", got, d)
			}
			if _, err := client.Lookup(bgCtx, root, "beta"); !errors.Is(err, dirsvc.ErrNotFound) {
				t.Fatalf("Lookup beta after restore: %v, want ErrNotFound", err)
			}
			rows, err := client.List(bgCtx, d, 0)
			if err != nil {
				t.Fatalf("List restored dir: %v", err)
			}
			if len(rows) != 1 || rows[0].Name != "leaf" {
				t.Fatalf("restored dir rows = %+v, want [leaf]", rows)
			}
			// The restored shard accepts new updates and stamps sequence
			// numbers past the snapshot's counters.
			if err := client.Append(bgCtx, root, "gamma", d, nil); err != nil {
				t.Fatalf("Append after restore: %v", err)
			}
			if _, err := client.Lookup(bgCtx, root, "gamma"); err != nil {
				t.Fatalf("Lookup gamma: %v", err)
			}
		})
	}
}

// TestBackupRestoreSurvivesRestart restores a snapshot into a group
// deployment and reboots the whole shard: the restored state — not the
// diverged one — must come back, proving the restore reached the
// durable layer (the engine checkpoint cut by OpRestoreShard).
func TestBackupRestoreSurvivesRestart(t *testing.T) {
	c := newEngineCluster(t, 1)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, err := client.Root(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	d, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "keep", d, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := client.Backup(bgCtx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "discard", d, nil); err != nil {
		t.Fatal(err)
	}
	if err := client.RestoreShard(bgCtx, 0, snap); err != nil {
		t.Fatal(err)
	}

	for id := 1; id <= c.ServersPerShard(); id++ {
		c.CrashShardServer(0, id)
	}
	restartShard(t, c, 0)

	if _, err := client.Lookup(bgCtx, root, "keep"); err != nil {
		t.Fatalf("Lookup keep after restore+reboot: %v", err)
	}
	if _, err := client.Lookup(bgCtx, root, "discard"); !errors.Is(err, dirsvc.ErrNotFound) {
		t.Fatalf("Lookup discard after restore+reboot: %v, want ErrNotFound", err)
	}
}

// TestSecondaryReadConsistency boots a readonly secondary fed from a
// primary's engine partition and drives a balanced client through
// write-then-read pairs: the session floor (Request.MinSeq) must keep
// read-your-writes intact even when the balanced read lands on the
// secondary — it either catches up past the floor or refuses so the
// client fails over. The secondary must end up serving a share of the
// reads, and must never accept an update.
func TestSecondaryReadConsistency(t *testing.T) {
	c := newEngineCluster(t, 1)

	// Seed state and cut the first checkpoint so the secondary has a
	// base image to install.
	seed, seedCleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer seedCleanup()
	root, err := seed.Root(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	d, err := seed.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Append(bgCtx, root, "seed", d, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckpointShard(0); err != nil {
		t.Fatal(err)
	}

	sec, secCleanup, err := c.StartSecondary(0, 1)
	if err != nil {
		t.Fatalf("StartSecondary: %v", err)
	}
	defer secCleanup()
	if err := sec.Refresh(); err != nil {
		t.Fatalf("secondary refresh: %v", err)
	}
	if sec.AppliedSeq() == 0 {
		t.Fatal("secondary installed no state from the checkpoint")
	}

	// A balanced client booted after the secondary joined sees all four
	// responders on the shard port.
	client, cleanup, err := c.NewBalancedClient(dir.CacheOptions{}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	// Write-then-read: every read must observe the write that precedes
	// it, wherever it lands.
	for i := 0; i < 25; i++ {
		name := fmt.Sprintf("rw%02d", i)
		if err := client.Append(bgCtx, d, name, d, nil); err != nil {
			t.Fatalf("append %s: %v", name, err)
		}
		got, err := client.Lookup(bgCtx, d, name)
		if err != nil {
			t.Fatalf("read-your-write %s: %v", name, err)
		}
		if got != d {
			t.Fatalf("read-your-write %s = %v, want %v", name, got, d)
		}
	}

	// Drive floor-free reads until the secondary has demonstrably served
	// some of the balanced load (it tails the log continuously, so it
	// catches up within a refresh tick).
	deadline := time.Now().Add(30 * time.Second)
	for sec.ReadsServed() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("secondary never served a balanced read")
		}
		if _, err := client.Lookup(bgCtx, root, "seed"); err != nil {
			t.Fatalf("balanced lookup: %v", err)
		}
	}

	// The secondary keeps pace with the primaries' applied sequence.
	if err := sec.Refresh(); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	primary := c.machine(2).core.Status().AppliedSeq
	if got := sec.AppliedSeq(); got < primary {
		t.Fatalf("secondary applied %d lags primary %d after refresh", got, primary)
	}
}
