package faultdir

// Wire-level tests of the lease/callback protocol: a raw RPC client
// speaks OpWatch/OpLeaseRenew directly so the tests can observe what
// the public Watch API hides — lease expiry evicting the subscriber,
// and the bounded event log forcing an explicit resync on a cursor
// that fell out of the replay window.

import (
	"fmt"
	"testing"
	"time"

	"dirsvc/internal/dirsvc"
	"dirsvc/internal/rpc"
)

// rawSubscribe opens a push stream on shard 0 of a 1-shard cluster and
// returns it with the decoded confirmation batch.
func rawSubscribe(t *testing.T, c *Cluster, rc *rpc.Client) (*rpc.Stream, *dirsvc.EventBatch) {
	t.Helper()
	port := dirsvc.ServicePort(dirsvc.ShardService(c.Service, 0, 1))
	req := &dirsvc.Request{Op: dirsvc.OpWatch}
	stream, raw, err := rc.Subscribe(bgCtx, port, req.Encode())
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	batch := decodeBatch(t, raw)
	return stream, batch
}

// decodeBatch unwraps Reply{Blob: EventBatch}, failing on any non-OK
// status.
func decodeBatch(t *testing.T, raw []byte) *dirsvc.EventBatch {
	t.Helper()
	reply, err := dirsvc.DecodeReply(raw)
	if err != nil {
		t.Fatalf("DecodeReply: %v", err)
	}
	if reply.Status != dirsvc.StatusOK {
		t.Fatalf("reply status = %v", reply.Status)
	}
	batch, err := dirsvc.DecodeEventBatch(reply.Blob)
	if err != nil {
		t.Fatalf("DecodeEventBatch: %v", err)
	}
	return batch
}

// renewRaw sends one OpLeaseRenew for the stream's lease with the given
// cursor and returns the raw status plus the batch when renewed.
func renewRaw(t *testing.T, c *Cluster, rc *rpc.Client, stream *rpc.Stream, cursor uint64) (dirsvc.Status, *dirsvc.EventBatch) {
	t.Helper()
	port := dirsvc.ServicePort(dirsvc.ShardService(c.Service, 0, 1))
	req := &dirsvc.Request{Op: dirsvc.OpLeaseRenew, Seq: stream.Tx(), MinSeq: cursor}
	raw, err := rc.TransTo(bgCtx, stream.Server(), port, req.Encode())
	if err != nil {
		t.Fatalf("TransTo renew: %v", err)
	}
	reply, err := dirsvc.DecodeReply(raw)
	if err != nil {
		t.Fatalf("DecodeReply: %v", err)
	}
	if reply.Status != dirsvc.StatusOK {
		return reply.Status, nil
	}
	batch, err := dirsvc.DecodeEventBatch(reply.Blob)
	if err != nil {
		t.Fatalf("DecodeEventBatch: %v", err)
	}
	return reply.Status, batch
}

// waitPush waits for one pushed EventBatch on the stream, or fails.
func waitPush(t *testing.T, stream *rpc.Stream, timeout time.Duration) *dirsvc.EventBatch {
	t.Helper()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		select {
		case m := <-stream.Chan():
			payload, ok := rpc.PushPayload(m)
			if !ok {
				continue
			}
			return decodeBatch(t, payload)
		case <-timer.C:
			t.Fatal("no push within timeout")
		}
	}
}

// TestLeaseExpiryEvictsSubscriber proves a lease left unrenewed past
// its TTL is evicted server-side: the renewal is refused with NOT FOUND
// and no further updates are pushed to the dead stream.
func TestLeaseExpiryEvictsSubscriber(t *testing.T) {
	const ttl = 75 * time.Millisecond
	opts := testOptions()
	opts.LeaseTTL = ttl
	c, err := New(KindLocal, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)

	rc, _, err := c.NewRawClient()
	if err != nil {
		t.Fatalf("NewRawClient: %v", err)
	}
	stream, confirm := rawSubscribe(t, c, rc)
	defer stream.Close()
	if confirm.TTLMillis != uint32(ttl/time.Millisecond) {
		t.Fatalf("confirmation TTL = %d ms, want %d", confirm.TTLMillis, ttl/time.Millisecond)
	}
	cursor := confirm.FirstIdx

	// While the lease is live, a committed update is pushed.
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, err := client.Root(bgCtx)
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	d, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	push := waitPush(t, stream, 5*time.Second)
	if len(push.Events) == 0 || push.FirstIdx < cursor {
		t.Fatalf("push batch = %+v", push)
	}
	cursor = push.FirstIdx + uint64(len(push.Events))

	// Let the lease lapse: no renewal for several TTLs.
	time.Sleep(5 * ttl)
	if status, _ := renewRaw(t, c, rc, stream, cursor); status != dirsvc.StatusNotFound {
		t.Fatalf("renew after expiry: status = %v, want %v", status, dirsvc.StatusNotFound)
	}

	// The evicted stream no longer receives pushes for new commits.
	if err := client.Append(bgCtx, root, "after-expiry", d, nil); err != nil {
		t.Fatalf("Append: %v", err)
	}
	select {
	case m := <-stream.Chan():
		if _, ok := rpc.PushPayload(m); ok {
			t.Fatal("evicted subscriber still received a push")
		}
	case <-time.After(300 * time.Millisecond):
	}
}

// TestEventLogOverflowForcesResync proves the bounded event log refuses
// to silently skip: a cursor that fell out of the replay window renews
// into an explicit Resync batch, while a live cursor replays events.
func TestEventLogOverflowForcesResync(t *testing.T) {
	opts := testOptions()
	opts.EventLogSize = 8
	opts.LeaseTTL = 10 * time.Second // renewals under test control only
	c, err := New(KindLocal, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)

	rc, _, err := c.NewRawClient()
	if err != nil {
		t.Fatalf("NewRawClient: %v", err)
	}
	stream, confirm := rawSubscribe(t, c, rc)
	defer stream.Close()
	stale := confirm.FirstIdx

	// Overflow the 8-entry log: 3× its size in committed updates. The
	// pushes stream in regardless; this subscriber ignores them, as a
	// partitioned-away client effectively would.
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, err := client.Root(bgCtx)
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	d, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	for i := 0; i < 24; i++ {
		if err := client.Append(bgCtx, root, fmt.Sprintf("r%d", i), d, nil); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}

	// The stale cursor predates the log's window: explicit resync.
	status, batch := renewRaw(t, c, rc, stream, stale)
	if status != dirsvc.StatusOK {
		t.Fatalf("renew status = %v", status)
	}
	if !batch.Resync || batch.FirstIdx <= stale {
		t.Fatalf("stale-cursor renewal = %+v, want Resync with advanced cursor", batch)
	}

	// From the resynced cursor the stream replays normally again.
	fresh := batch.FirstIdx
	if err := client.Append(bgCtx, root, "fresh", d, nil); err != nil {
		t.Fatalf("Append fresh: %v", err)
	}
	status, batch = renewRaw(t, c, rc, stream, fresh)
	if status != dirsvc.StatusOK {
		t.Fatalf("renew status = %v", status)
	}
	if batch.Resync || batch.FirstIdx != fresh || len(batch.Events) < 1 {
		t.Fatalf("fresh-cursor renewal = %+v, want replay from %d", batch, fresh)
	}
}
