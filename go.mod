module dirsvc

go 1.24
