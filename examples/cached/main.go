// Cached demonstrates the client read cache on the workload the paper
// measured in production: 98% reads (§2). A two-shard triplicated
// cluster serves a hot directory per shard; the example runs the same
// read-heavy loop with the cache off and on, prints the hit-rate
// counters, and then shows the two consistency properties the cache
// keeps: a client reads its own writes immediately, and another client's
// write becomes visible as soon as an invalidating reply (here, the
// reader's own next update on that shard) proves commits happened.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	faultdir "dirsvc"

	"dirsvc/dir"
	"dirsvc/internal/sim"
)

// bgCtx is the unbounded context used where no deadline applies.
var bgCtx = context.Background()

const (
	shards  = 2
	readPct = 98 // the paper's production read fraction (§2)
	ops     = 1500
)

func main() {
	cluster, err := faultdir.New(faultdir.KindGroup, faultdir.Options{
		Model:  sim.ScaledPaperModel(0.005),
		Shards: shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Printf("1. %d-shard cluster up; driving a %d%%-read mix of %d ops, cache off vs on\n",
		shards, readPct, ops)

	var baseline time.Duration
	for _, cached := range []bool{false, true} {
		client, cleanup, err := cluster.NewCachedClient(dir.CacheOptions{Enabled: cached})
		if err != nil {
			log.Fatal(err)
		}
		// One hot directory per shard, each holding one hot row.
		hot := make([]dir.Capability, shards)
		for s := range hot {
			if hot[s], err = client.CreateDirOn(bgCtx, s); err != nil {
				log.Fatal(err)
			}
			must(client.Append(bgCtx, hot[s], "hot", hot[s], nil))
		}

		start := time.Now()
		for i := 0; i < ops; i++ {
			h := hot[i%shards]
			if i%100 < readPct {
				if _, err := client.Lookup(bgCtx, h, "hot"); err != nil {
					log.Fatal(err)
				}
			} else {
				name := fmt.Sprintf("w%d", i)
				must(client.Append(bgCtx, h, name, h, nil))
				must(client.Delete(bgCtx, h, name))
			}
		}
		elapsed := time.Since(start)
		stats := client.CacheStats()
		if !cached {
			baseline = elapsed
			fmt.Printf("2. cache off: %d ops in %v — every read a full RPC round-trip\n", ops, elapsed.Round(time.Millisecond))
		} else {
			fmt.Printf("3. cache on:  %d ops in %v (%.1fx faster)\n", ops, elapsed.Round(time.Millisecond),
				float64(baseline)/float64(elapsed))
			fmt.Printf("   %d hits, %d misses (%.1f%% hit rate), %d invalidations — repeat reads never left the client\n",
				stats.Hits, stats.Misses, 100*stats.HitRate(), stats.Invalidations)
		}
		cleanup()
	}

	// Consistency: read-your-writes through the cache.
	reader, cleanupR, err := cluster.NewCachedClient(dir.CacheOptions{Enabled: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cleanupR()
	writer, cleanupW, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer cleanupW()

	work, err := reader.CreateDirOn(bgCtx, 0)
	if err != nil {
		log.Fatal(err)
	}
	scratch, err := reader.CreateDirOn(bgCtx, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := reader.List(bgCtx, work, 0); err != nil { // cache the empty listing
		log.Fatal(err)
	}
	must(reader.Append(bgCtx, work, "mine", work, nil))
	rows, err := reader.List(bgCtx, work, 0)
	if err != nil || len(rows) != 1 {
		log.Fatalf("read-your-writes violated: %v, %v", rows, err)
	}
	fmt.Println("4. read-your-writes: the reader's own append invalidated its cached listing before returning")

	// Consistency: another client's write surfaces once any reply from
	// the shard carries a newer sequence number.
	must(writer.Append(bgCtx, work, "theirs", work, nil))
	must(reader.Append(bgCtx, scratch, "poke", scratch, nil)) // invalidating reply for shard 0
	rows, err = reader.List(bgCtx, work, 0)
	if err != nil || len(rows) != 2 {
		log.Fatalf("foreign write still invisible after invalidating reply: %v, %v", rows, err)
	}
	fmt.Println("5. cross-client: the writer's row appeared after the reader's next invalidating reply on that shard")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
