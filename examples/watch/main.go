// Watch demonstrates the push subsystem end to end: a client with the
// leased (push-coherent) cache opens a Watch stream over the whole
// service, a second client writes, and the events arrive in commit
// order. Then every replica of the shard is crashed and restarted —
// and instead of silently dropping the updates that committed while the
// stream was down, the stream delivers an explicit RESYNC marker: the
// signal that a consumer mirroring directory state must re-read before
// trusting what follows. After the marker, new commits flow again.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	faultdir "dirsvc"

	"dirsvc/dir"
	"dirsvc/internal/sim"
)

// bgCtx is the unbounded context used where no deadline applies.
var bgCtx = context.Background()

func main() {
	cluster, err := faultdir.New(faultdir.KindGroupNVRAM, faultdir.Options{
		Model:             sim.ScaledPaperModel(0.005),
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// The watcher: a client with the leased cache — pushed invalidations
	// keep its cache coherent while idle, and the same lease channel
	// carries the public event stream.
	watcher, wcleanup, err := cluster.NewCachedClient(dir.CacheOptions{Enabled: true, Leases: true})
	if err != nil {
		log.Fatal(err)
	}
	defer wcleanup()
	// The writer: a separate client, the "foreign" traffic the watcher
	// would never see under pull-only invalidation.
	writer, cleanup, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()

	root, err := writer.Root(bgCtx)
	if err != nil {
		log.Fatal(err)
	}
	work, err := writer.CreateDir(bgCtx)
	if err != nil {
		log.Fatal(err)
	}
	must(writer.Append(bgCtx, root, "work", work, nil))

	// Watch the full stream (zero capability = every shard). Watch
	// blocks until the lease is established, so everything committed
	// from here on reaches the stream — as an event or under a resync.
	ctx, cancel := context.WithCancel(bgCtx)
	defer cancel()
	stream, err := watcher.Watch(ctx, dir.Capability{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. watch stream open (lease established on every shard)")

	// --- Updates commit; events arrive in commit (Seq) order. ---
	for i := 0; i < 3; i++ {
		must(writer.Append(bgCtx, work, fmt.Sprintf("build-%d", i), work, nil))
	}
	for i := 0; i < 3; i++ {
		printEvent(next(stream))
	}

	// --- Whole-shard crash: all three replicas at once. ---
	n := cluster.ServersPerShard()
	for id := 1; id <= n; id++ {
		cluster.CrashShardServer(0, id)
	}
	fmt.Println("2. all replicas crashed; the lease and its event log are gone")

	// Commit a write the stream can never replay: restart the replicas
	// (concurrently — recovery needs a majority up) and write while the
	// watcher is still re-establishing its lease.
	var wg sync.WaitGroup
	for id := 1; id <= n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := cluster.RestartShardServer(0, id); err != nil {
				log.Fatal(err)
			}
		}(id)
	}
	wg.Wait()
	mustEventually(func() error { return writer.Append(bgCtx, work, "missed-during-outage", work, nil) })
	fmt.Println("3. replicas recovered; a write committed before the new lease")

	// The recovered service has a fresh event log: the watcher's cursor
	// is unreplayable, so the stream says so — the RESYNC marker —
	// instead of silently skipping "missed-during-outage".
	for {
		ev := next(stream)
		printEvent(ev)
		if ev.Type == dir.EventResync {
			break
		}
	}
	fmt.Println("4. RESYNC delivered: events may have been missed; a mirror re-reads now")
	rows, err := watcher.List(bgCtx, work, 0)
	must(err)
	fmt.Printf("   re-read %q: %d rows (includes the missed write)\n", "work", len(rows))

	// --- After the marker the live stream resumes. ---
	must(writer.Append(bgCtx, work, "back-to-normal", work, nil))
	for {
		ev := next(stream)
		printEvent(ev)
		if ev.Type == dir.EventUpdate {
			break
		}
	}
	fmt.Println("5. stream resumed after the resync — no update was silently dropped")
}

func next(stream <-chan dir.Event) dir.Event {
	select {
	case ev, ok := <-stream:
		if !ok {
			log.Fatal("watch stream closed")
		}
		return ev
	case <-time.After(time.Minute):
		log.Fatal("no event within a minute")
	}
	panic("unreachable")
}

func printEvent(ev dir.Event) {
	if ev.Type == dir.EventResync {
		fmt.Printf("   event: shard %d RESYNC\n", ev.Shard)
		return
	}
	fmt.Printf("   event: shard %d seq %d %s objects %v\n", ev.Shard, ev.Seq, ev.Op, ev.Objects)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustEventually(fn func() error) {
	deadline := time.Now().Add(time.Minute)
	for {
		err := fn()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("never succeeded: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
