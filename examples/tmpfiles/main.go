// Tmpfiles reproduces the workload that motivates the paper's second
// experiment (§4.1): a compiler writing a temporary file in one phase and
// consuming it in the next — create a file on the Bullet service,
// register its capability under a name, look the name up, read the file
// back, and delete the name.
//
// Run against the NVRAM variant, this is also the workload behind the
// /tmp optimization: names that die young never reach the disk.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	faultdir "dirsvc"

	"dirsvc/internal/sim"
)

// bgCtx is the unbounded context used where no deadline applies.
var bgCtx = context.Background()

func main() {
	cluster, err := faultdir.New(faultdir.KindGroupNVRAM, faultdir.Options{
		Model: sim.ScaledPaperModel(0.01),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, cleanup, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	files := cluster.NewFileClient(client)

	root, err := client.Root(bgCtx)
	if err != nil {
		log.Fatal(err)
	}
	tmp, err := client.CreateDir(bgCtx)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "tmp", tmp, nil); err != nil {
		log.Fatal(err)
	}

	before := diskWrites(cluster)
	start := time.Now()
	const cycles = 20
	for i := 0; i < cycles; i++ {
		name := fmt.Sprintf("cc-phase1-%04d.o", i)

		// Phase 1 of the compiler writes its intermediate output.
		fcap, err := files.Create([]byte("intermediate representation"))
		if err != nil {
			log.Fatal(err)
		}
		if err := client.Append(bgCtx, tmp, name, fcap, nil); err != nil {
			log.Fatal(err)
		}

		// Phase 2 picks it up by name and consumes it.
		got, err := client.Lookup(bgCtx, tmp, name)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := files.Read(got); err != nil {
			log.Fatal(err)
		}
		if err := client.Delete(bgCtx, tmp, name); err != nil {
			log.Fatal(err)
		}
		if err := files.Delete(fcap); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	writes := diskWrites(cluster) - before

	fmt.Printf("%d tmp-file cycles in %v\n", cycles, elapsed)
	// Each cycle creates one user file on a Bullet server (one disk
	// write). Everything beyond that would be directory-service writes —
	// and the NVRAM log cancels every append+delete pair, so there are
	// none (the paper's /tmp optimization).
	fmt.Printf("disk writes: %d total = %d user-file creations + %d from the %d append+delete pairs\n",
		writes, cycles, writes-uint64(cycles), cycles)
	if writes == uint64(cycles) {
		fmt.Println("the NVRAM log cancelled every pair — the paper's /tmp optimization")
	}
}

// diskWrites sums directory-admin disk writes across the three replicas.
// Bullet file traffic shows up on the same disks, so we run the count
// after a settle delay with the user files already deleted.
func diskWrites(c *faultdir.Cluster) uint64 {
	time.Sleep(50 * time.Millisecond)
	var total uint64
	for id := 1; id <= 3; id++ {
		s := c.DiskStats(id)
		total += s.Writes
	}
	return total
}
