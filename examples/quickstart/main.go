// Quickstart: boot a triplicated group directory service, store and look
// up capabilities, and survive a server crash — the paper's §3 system in
// thirty lines of client code.
package main

import (
	"fmt"
	"log"
	"time"

	faultdir "dirsvc"

	"dirsvc/internal/sim"
)

func main() {
	// A complete simulated deployment: three directory servers, three
	// Bullet file servers, three disks, one Ethernet. Scale 0.01 runs
	// the calibrated 1993 hardware 100× faster.
	cluster, err := faultdir.New(faultdir.KindGroup, faultdir.Options{
		Model: sim.ScaledPaperModel(0.01),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, cleanup, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()

	// The directory service maps ASCII names to capabilities (§2).
	root, err := client.Root()
	if err != nil {
		log.Fatal(err)
	}
	projects, err := client.CreateDir()
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Append(root, "projects", projects, nil); err != nil {
		log.Fatal(err)
	}
	got, err := client.Lookup(root, "projects")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored and resolved %q -> %v\n", "projects", got)

	// Kill one of the three replicas: the majority keeps serving.
	cluster.CrashServer(3)
	fmt.Println("crashed server 3; service continues on the majority:")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := client.Append(root, "after-crash", projects, nil); err == nil {
			break
		} else if time.Now().After(deadline) {
			log.Fatalf("service did not recover: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	rows, err := client.List(root, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-16s %v\n", r.Name, r.Cap)
	}

	// Bring it back: the recovery protocol (Fig. 6) fetches the missed
	// update from the surviving majority.
	if err := cluster.RestartServer(3); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server 3 recovered and rejoined the group")
}
