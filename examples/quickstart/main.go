// Quickstart: boot a triplicated group directory service, store and look
// up capabilities through the public dir.Directory API, apply an atomic
// batch in one group broadcast, and survive a server crash — the paper's
// §3 system in forty lines of client code.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	faultdir "dirsvc"

	"dirsvc/dir"
	"dirsvc/internal/sim"
)

// bgCtx is the unbounded context used where no deadline applies.
var bgCtx = context.Background()

func main() {
	// A complete simulated deployment: three directory servers, three
	// Bullet file servers, three disks, one Ethernet. Scale 0.01 runs
	// the calibrated 1993 hardware 100× faster.
	cluster, err := faultdir.New(faultdir.KindGroup, faultdir.Options{
		Model: sim.ScaledPaperModel(0.01),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, cleanup, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()

	// The directory service maps ASCII names to capabilities (§2).
	root, err := client.Root(bgCtx)
	if err != nil {
		log.Fatal(err)
	}
	projects, err := client.CreateDir(bgCtx)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "projects", projects, nil); err != nil {
		log.Fatal(err)
	}
	got, err := client.Lookup(bgCtx, root, "projects")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored and resolved %q -> %v\n", "projects", got)

	// An atomic batch: every step commits under one totally-ordered
	// group broadcast, or none do. With a two-second deadline.
	ctx, cancel := context.WithTimeout(bgCtx, 2*time.Second)
	res, err := client.Apply(ctx, dir.NewBatch().
		Append(projects, "alpha", projects, nil).
		Append(projects, "beta", projects, nil).
		Delete(projects, "alpha"))
	cancel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch of 3 updates committed atomically as seq %d\n", res.Seq)

	// Kill one of the three replicas: the majority keeps serving.
	cluster.CrashServer(3)
	fmt.Println("crashed server 3; service continues on the majority:")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := client.Append(bgCtx, root, "after-crash", projects, nil); err == nil {
			break
		} else if time.Now().After(deadline) {
			log.Fatalf("service did not recover: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	rows, err := client.List(bgCtx, root, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-16s %v\n", r.Name, r.Cap)
	}

	// Bring it back: the recovery protocol (Fig. 6) fetches the missed
	// update from the surviving majority.
	if err := cluster.RestartServer(3); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server 3 recovered and rejoined the group")
}
