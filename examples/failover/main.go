// Failover walks through the paper's §3.2 fault scenarios end to end:
// crash of a replica, recovery with state transfer, a network partition
// where the minority refuses service (the accessible-copies rule), and
// reunification after healing.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	faultdir "dirsvc"

	"dirsvc/internal/dirdata"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/sim"
)

// bgCtx is the unbounded context used where no deadline applies.
var bgCtx = context.Background()

func main() {
	cluster, err := faultdir.New(faultdir.KindGroup, faultdir.Options{
		Model: sim.ScaledPaperModel(0.005),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, cleanup, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	root, err := client.Root(bgCtx)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := client.CreateDir(bgCtx)
	if err != nil {
		log.Fatal(err)
	}
	must(client.Append(bgCtx, root, "data", dir, nil))
	fmt.Println("1. triplicated service running; stored \"data\"")

	// --- Scenario 1: crash one replica; service continues. ---
	cluster.CrashServer(3)
	mustEventually(func() error { return client.Append(bgCtx, root, "written-while-3-down", dir, nil) })
	fmt.Println("2. server 3 crashed; majority {1,2} accepted a write")

	// --- Scenario 2: restart; recovery pulls the missed update. ---
	must(cluster.RestartServer(3))
	fmt.Println("3. server 3 restarted; Fig. 6 recovery transferred the missed state")

	// --- Scenario 3: partition the network; minority refuses. ---
	cluster.PartitionServers(3)
	mustEventually(func() error { return client.Append(bgCtx, root, "written-in-partition", dir, nil) })
	fmt.Println("4. network partitioned {1,2} | {3}; majority side still writes")

	minClient, minCleanup, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer minCleanup()
	// Move the fresh client to the minority side and watch it be refused
	// even for reads — otherwise it could list a directory the majority
	// already deleted (the §3.1 partition argument).
	moveClientToMinority(cluster, 3)
	refused := false
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		_, err := minClient.List(bgCtx, root, 0)
		if errors.Is(err, dirsvc.ErrNoMajority) {
			refused = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !refused {
		log.Fatal("minority server kept answering reads")
	}
	fmt.Println("5. minority server refused reads (accessible copies, §3.1)")

	// --- Scenario 4: heal; everything reunites. ---
	cluster.Heal()
	mustEventually(func() error {
		_, err := client.Lookup(bgCtx, root, "written-in-partition")
		return err
	})
	fmt.Println("6. partition healed; service reunified with consistent state")

	// Server 3's rejoin reconfigures the group; retry until it settles.
	var rows []dirdata.Row
	mustEventually(func() error {
		var err error
		rows, err = client.List(bgCtx, root, 0)
		return err
	})
	fmt.Println("final directory contents:")
	for _, r := range rows {
		fmt.Printf("   %s\n", r.Name)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustEventually(fn func() error) {
	deadline := time.Now().Add(time.Minute)
	for {
		err := fn()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("never succeeded: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// moveClientToMinority repartitions so the newest client node sits with
// server 3 on the minority side.
func moveClientToMinority(c *faultdir.Cluster, minorityServer int) {
	nodes := c.Net.Nodes()
	newest := nodes[len(nodes)-1].ID()
	m3dir, m3bullet := serverNodes(c, minorityServer)
	var rest []sim.NodeID
	for _, nd := range nodes {
		id := nd.ID()
		if id != newest && id != m3dir && id != m3bullet {
			rest = append(rest, id)
		}
	}
	c.Net.Partition([]sim.NodeID{m3dir, m3bullet, newest}, rest)
}

func serverNodes(c *faultdir.Cluster, id int) (dir, bullet sim.NodeID) {
	// The facade adds nodes in a fixed order per server: bullet then dir.
	// Node ids are 2(id-1) and 2(id-1)+1.
	return sim.NodeID(2*(id-1) + 1), sim.NodeID(2 * (id - 1))
}
