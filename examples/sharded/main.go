// Sharded walks through the scale-out deployment of the directory
// service: four independent replica groups (shards), each a complete
// triplicated instance of the paper's protocol, with the object space
// partitioned across them by object number. It then kills a majority of
// one shard's replicas and shows the outage is contained: only that
// shard's directories go unavailable (dir.ErrNoMajority); the other
// three shards — and the root, on shard 0 — keep serving reads and
// writes. Restarting the replicas runs the per-shard Fig. 6 recovery
// and restores the full object space.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	faultdir "dirsvc"

	"dirsvc/dir"
	"dirsvc/internal/sim"
)

// bgCtx is the unbounded context used where no deadline applies.
var bgCtx = context.Background()

const shards = 4

func main() {
	cluster, err := faultdir.New(faultdir.KindGroup, faultdir.Options{
		Model:  sim.ScaledPaperModel(0.005),
		Shards: shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, cleanup, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	root, err := client.Root(bgCtx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. %d-shard cluster running: %d replica groups × %d servers, root on shard %d\n",
		shards, shards, cluster.ServersPerShard(), dir.ShardOf(root, shards))

	// One working directory per shard, all registered under the root — a
	// single directory tree spanning every replica group.
	dirs := make([]dir.Capability, shards)
	for s := 0; s < shards; s++ {
		dirs[s], err = client.CreateDirOn(bgCtx, s)
		if err != nil {
			log.Fatal(err)
		}
		must(client.Append(bgCtx, root, fmt.Sprintf("user%d", s), dirs[s], nil))
		must(client.Append(bgCtx, dirs[s], "hello", dirs[s], nil))
	}
	fmt.Printf("2. one directory per shard registered in the (shard-0) root; writes spread over %d group streams\n", shards)

	// --- Kill a majority of shard 2's replicas. ---
	const down = 2
	cluster.CrashShardServer(down, 1)
	cluster.CrashShardServer(down, 2)
	fmt.Printf("3. crashed 2 of 3 replicas of shard %d — that shard has no majority\n", down)

	// Shard 2's objects are refused (the accessible-copies rule, applied
	// per shard)...
	refused := false
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		_, err := client.List(bgCtx, dirs[down], 0)
		if errors.Is(err, dir.ErrNoMajority) {
			refused = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !refused {
		log.Fatalf("shard %d kept serving without a majority", down)
	}
	fmt.Printf("4. shard %d refuses service: dir.ErrNoMajority\n", down)

	// ...while every other shard keeps serving reads AND writes.
	for s := 0; s < shards; s++ {
		if s == down {
			continue
		}
		if _, err := client.Lookup(bgCtx, dirs[s], "hello"); err != nil {
			log.Fatalf("shard %d read failed during shard-%d outage: %v", s, down, err)
		}
		mustEventually(func() error {
			return client.Append(bgCtx, dirs[s], "written-during-outage", dirs[s], nil)
		})
	}
	if _, err := client.Lookup(bgCtx, root, fmt.Sprintf("user%d", down)); err != nil {
		log.Fatalf("root lookup failed: %v", err)
	}
	fmt.Printf("5. shards 0, 1, 3 (and the root) served reads and writes throughout the outage\n")

	// --- Restart: per-shard Fig. 6 recovery restores the shard. ---
	must(cluster.RestartShardServer(down, 1))
	must(cluster.RestartShardServer(down, 2))
	mustEventually(func() error {
		return client.Append(bgCtx, dirs[down], "after-recovery", dirs[down], nil)
	})
	fmt.Printf("6. shard %d replicas restarted and recovered; full object space available again\n", down)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustEventually(fn func() error) {
	deadline := time.Now().Add(time.Minute)
	for {
		err := fn()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("never succeeded: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
