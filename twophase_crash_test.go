package faultdir

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dirsvc/dir"
	"dirsvc/internal/dirclient"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/sim"
)

// The crash-at-every-step schedule for cross-shard two-phase commit:
// each test kills the coordinator and/or participant replicas at one
// step of the protocol — before prepare, after prepare / before decide,
// after the resolver's partial commit — and asserts all-or-nothing
// visibility once the survivors (plus restarted or force-recovered
// replicas) resolve the transaction. The NVRAM kind additionally proves
// a whole-shard crash reinstates the in-doubt transaction from the
// logged prepare record through the Fig. 6 recovery path.

// crashTxTimeout is the presumed-abort horizon for the crash schedules.
const crashTxTimeout = 300 * time.Millisecond

// Crash-schedule deadlines. Generous on purpose: every test here is
// skipped under -short (the quick tier-1 lane) and runs only in the
// dedicated race-enabled CI lanes, where the simulated cluster can be an
// order of magnitude slower than a native run — a tight deadline there
// is a flake, not a failure.
const (
	crashSettleWait = 60 * time.Second
	crashRetryWait  = 45 * time.Second
)

func newCrashCluster(t *testing.T, kind Kind, shards int) *Cluster {
	t.Helper()
	c, err := New(kind, Options{
		Model:             sim.FastModel(),
		HeartbeatInterval: testHeartbeat,
		Shards:            shards,
		Workers:           8,
		TxAbortTimeout:    crashTxTimeout,
		IdleFlush:         time.Hour, // no background NVRAM flush: crash points stay deterministic
	})
	if err != nil {
		t.Fatalf("New(%v, shards=%d): %v", kind, shards, err)
	}
	t.Cleanup(c.Close)
	return c
}

// txFixture is one cross-shard transaction under fault injection: a
// coordinator client with a hook, one directory per shard, and an
// independent probe client for visibility checks.
type txFixture struct {
	c           *Cluster
	coordinator *dirclient.Client
	probe       *dirclient.Client
	dirs        []dir.Capability
	name        string
}

func newTxFixture(t *testing.T, c *Cluster, name string) *txFixture {
	t.Helper()
	coord, cleanup1, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup1)
	probe, cleanup2, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup2)
	f := &txFixture{c: c, coordinator: coord, probe: probe, name: name}
	for s := 0; s < c.Shards(); s++ {
		d, err := createOn(coord, s)
		if err != nil {
			t.Fatalf("create working dir on shard %d: %v", s, err)
		}
		f.dirs = append(f.dirs, d)
	}
	return f
}

// createOn creates a directory on one shard, riding out boot churn.
func createOn(client *dirclient.Client, shard int) (dir.Capability, error) {
	var d dir.Capability
	err := retryFor(crashRetryWait, func() error {
		var cerr error
		d, cerr = client.CreateDirOn(bgCtx, shard)
		return cerr
	})
	return d, err
}

// retryFor retries op on any error until it succeeds or the deadline
// passes.
func retryFor(d time.Duration, op func() error) error {
	deadline := time.Now().Add(d)
	for {
		err := op()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// batch builds the fixture's spanning batch: one append per shard.
func (f *txFixture) batch() *dir.Batch {
	b := dir.NewBatch()
	for _, d := range f.dirs {
		b.Append(d, f.name, d, nil)
	}
	return b
}

// assertSettles polls every shard through the probe until the
// transaction's row settles to the expected outcome — and asserts that
// no successful read ever exposes the other outcome on any shard once
// the prepare round finished: a shard either refuses the read (lock
// held, no majority) or shows exactly the settled state, never a
// partially applied batch.
func (f *txFixture) assertSettles(t *testing.T, committed bool) {
	t.Helper()
	deadline := time.Now().Add(crashSettleWait)
	for s, d := range f.dirs {
		for {
			caps, err := f.probe.LookupSet(bgCtx, d, []string{f.name})
			if err == nil {
				if caps[0].IsZero() == !committed {
					break // settled to the expected outcome
				}
				if committed {
					// A successful read showed the row missing: legal only
					// while the transaction can still be undecided here —
					// i.e. never after this shard committed. Keep polling,
					// but a shard can never go back: once present, present.
				} else {
					t.Fatalf("shard %d exposed a step of an aborted transaction", s)
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("shard %d never settled (committed=%v): last caps=%v err=%v", s, committed, caps, err)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	// All-or-nothing is stable: a second pass over every shard agrees.
	for s, d := range f.dirs {
		if err := retryFor(crashRetryWait, func() error {
			caps, err := f.probe.LookupSet(bgCtx, d, []string{f.name})
			if err != nil {
				return err
			}
			if caps[0].IsZero() == committed {
				return fmt.Errorf("shard %d flapped to the opposite outcome", s)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Locks released: every shard accepts new updates.
	for s, d := range f.dirs {
		if err := retryFor(crashRetryWait, func() error {
			return f.probe.Append(bgCtx, d, f.name+"-after", d, nil)
		}); err != nil {
			t.Fatalf("shard %d still wedged after resolution: %v", s, err)
		}
	}
}

// TestTwoPhaseParticipantMinorityCrash crashes one replica of the
// non-resolver shard at each step of the protocol; the shard's
// remaining majority carries the transaction through in every case.
func TestTwoPhaseParticipantMinorityCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("crash schedule: covered by the dedicated 2PC CI lane")
	}
	steps := []struct {
		name  string
		stage dirclient.TxStage // crash fires when this stage is reached; 0 = before Apply
	}{
		{"BeforePrepare", 0},
		{"WhilePrepared", dirclient.TxAfterPrepare},
		{"AfterPartialCommit", dirclient.TxAfterResolverDecide},
	}
	for i, sc := range steps {
		t.Run(sc.name, func(t *testing.T) {
			c := newCrashCluster(t, KindGroup, 2)
			f := newTxFixture(t, c, fmt.Sprintf("minority%d", i))
			crashed := false
			if sc.stage == 0 {
				c.CrashShardServer(1, 2)
				crashed = true
			} else {
				f.coordinator.SetTxHook(func(s dirclient.TxStage) error {
					if s == sc.stage && !crashed {
						crashed = true
						c.CrashShardServer(1, 2)
					}
					return nil
				})
			}
			err := retryFor(crashRetryWait, func() error {
				_, aerr := f.coordinator.Apply(bgCtx, f.batch())
				return aerr
			})
			f.coordinator.SetTxHook(nil)
			if err != nil {
				t.Fatalf("Apply with minority crash: %v", err)
			}
			if !crashed {
				t.Fatal("crash hook never fired")
			}
			f.assertSettles(t, true)

			// The crashed replica rejoins and serves the committed state.
			if err := c.RestartShardServer(1, 2); err != nil {
				t.Fatalf("restart: %v", err)
			}
		})
	}
}

// TestTwoPhaseWholeShardCrashPrepared is the Fig. 6 reinstatement test:
// the whole non-resolver shard (all replicas) crashes while the
// transaction is prepared. With the coordinator dead too, the restarted
// shard must replay the NVRAM-logged prepare record, re-stage the
// transaction, and resolve it by querying the resolver — commit when
// the resolver ratified it before the crash, abort otherwise.
func TestTwoPhaseWholeShardCrashPrepared(t *testing.T) {
	if testing.Short() {
		t.Skip("crash schedule: covered by the dedicated 2PC CI lane")
	}
	cases := []struct {
		name      string
		stage     dirclient.TxStage
		committed bool
	}{
		// Coordinator dies after prepare, before any decide: the
		// resolver presumes abort; the restarted shard learns the abort.
		{"NoDecision", dirclient.TxAfterPrepare, false},
		// The resolver ratified the commit but the other shard crashed
		// before its decide arrived: the restarted shard must find the
		// commit through the decision query — the in-doubt vote survives
		// the whole-shard crash in the NVRAM log.
		{"AfterPartialCommit", dirclient.TxAfterResolverDecide, true},
	}
	for _, sc := range cases {
		t.Run(sc.name, func(t *testing.T) {
			c := newCrashCluster(t, KindGroupNVRAM, 2)
			f := newTxFixture(t, c, "wholeshard")

			f.coordinator.SetTxHook(func(s dirclient.TxStage) error {
				if s == sc.stage {
					for id := 1; id <= c.ServersPerShard(); id++ {
						c.CrashShardServer(1, id)
					}
					return dirclient.ErrTxHalt
				}
				return nil
			})
			_, err := f.coordinator.Apply(bgCtx, f.batch())
			f.coordinator.SetTxHook(nil)
			if !errors.Is(err, dirclient.ErrTxHalt) {
				t.Fatalf("halted Apply: err = %v, want ErrTxHalt", err)
			}

			// Restart the whole shard — concurrently, as a real reboot
			// would: each replica's Fig. 6 recovery blocks until a
			// majority reassembles. Recovery replays the NVRAM prepare
			// records and the resolution loop finishes the job.
			restartShard(t, c, 1)
			f.assertSettles(t, sc.committed)
		})
	}
}

// TestTwoPhaseForceRecoverShard loses a majority of the non-resolver
// shard while the transaction is prepared, with the coordinator dead
// after the resolver's partial commit. The surviving replica cannot
// assemble a majority; after the administrator's ForceRecoverShard it
// serves alone — still holding the prepared transaction — queries the
// resolver, and completes the commit.
func TestTwoPhaseForceRecoverShard(t *testing.T) {
	if testing.Short() {
		t.Skip("crash schedule: covered by the dedicated 2PC CI lane")
	}
	c := newCrashCluster(t, KindGroup, 2)
	f := newTxFixture(t, c, "forced")

	f.coordinator.SetTxHook(func(s dirclient.TxStage) error {
		if s == dirclient.TxAfterResolverDecide {
			// Majority of shard 1 gone; replica 3 survives, in doubt.
			c.CrashShardServer(1, 1)
			c.CrashShardServer(1, 2)
			return dirclient.ErrTxHalt
		}
		return nil
	})
	_, err := f.coordinator.Apply(bgCtx, f.batch())
	f.coordinator.SetTxHook(nil)
	if !errors.Is(err, dirclient.ErrTxHalt) {
		t.Fatalf("halted Apply: err = %v, want ErrTxHalt", err)
	}

	if err := c.ForceRecoverShard(1, 3); err != nil {
		t.Fatalf("ForceRecoverShard: %v", err)
	}
	f.assertSettles(t, true)
}

// TestTwoPhaseResolverWholeShardAbort crashes the RESOLVER shard whole
// while both shards are prepared and the coordinator is dead: no
// decision was ever ratified, so after the restart the resolver
// presumes abort and the other shard follows — nothing may surface on
// either shard.
func TestTwoPhaseResolverWholeShardAbort(t *testing.T) {
	if testing.Short() {
		t.Skip("crash schedule: covered by the dedicated 2PC CI lane")
	}
	c := newCrashCluster(t, KindGroupNVRAM, 2)
	f := newTxFixture(t, c, "resolverdown")

	f.coordinator.SetTxHook(func(s dirclient.TxStage) error {
		if s == dirclient.TxAfterPrepare {
			for id := 1; id <= c.ServersPerShard(); id++ {
				c.CrashShardServer(0, id)
			}
			return dirclient.ErrTxHalt
		}
		return nil
	})
	_, err := f.coordinator.Apply(bgCtx, f.batch())
	f.coordinator.SetTxHook(nil)
	if !errors.Is(err, dirclient.ErrTxHalt) {
		t.Fatalf("halted Apply: err = %v, want ErrTxHalt", err)
	}

	restartShard(t, c, 0)
	f.assertSettles(t, false)
}

// TestTwoPhaseCrashDuringLockWait parks a plain update in the resolver
// shard's lock-wait queue — behind a prepared transaction whose
// coordinator has died — then crashes a replica of that shard while the
// waiter is parked. The waiter must come back within a bound: either
// admitted once the presumed-abort releases the locks, or refused with
// a conflict-classified error — never a hang. Reads of the locked
// directory (Applier.WaitUnlocked path) must keep flowing throughout,
// and the orphaned transaction still settles to a clean abort.
func TestTwoPhaseCrashDuringLockWait(t *testing.T) {
	if testing.Short() {
		t.Skip("crash schedule: covered by the dedicated 2PC CI lane")
	}
	c := newCrashCluster(t, KindGroup, 2)
	f := newTxFixture(t, c, "lockwait")

	// Leave the transaction prepared on both shards, coordinator dead:
	// the resolver (shard 0) holds locks on f.dirs[0] until its
	// presumed-abort timer fires.
	f.coordinator.SetTxHook(func(s dirclient.TxStage) error {
		if s == dirclient.TxAfterPrepare {
			return dirclient.ErrTxHalt
		}
		return nil
	})
	_, err := f.coordinator.Apply(bgCtx, f.batch())
	f.coordinator.SetTxHook(nil)
	if !errors.Is(err, dirclient.ErrTxHalt) {
		t.Fatalf("halted Apply: err = %v, want ErrTxHalt", err)
	}

	// An independent client's update to the locked directory parks in
	// the lock-wait queue on whichever shard-0 server initiates it.
	writeDone := make(chan error, 1)
	go func() {
		writeDone <- f.probe.Append(bgCtx, f.dirs[0], "parked", f.dirs[0], nil)
	}()

	// Reads must not be wedged behind the parked writer.
	readerDone := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			if err := retryFor(crashRetryWait, func() error {
				_, rerr := f.probe.LookupSet(bgCtx, f.dirs[0], []string{"absent"})
				return rerr
			}); err != nil {
				readerDone <- fmt.Errorf("read %d during lock wait: %w", i, err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		readerDone <- nil
	}()

	// Crash one replica of the waiter's shard mid-wait. The majority
	// carries on; if the waiter was parked there, its RPC fails over.
	time.Sleep(50 * time.Millisecond)
	c.CrashShardServer(0, 2)

	select {
	case werr := <-writeDone:
		if werr != nil && !errors.Is(werr, dirsvc.ErrConflict) {
			t.Fatalf("parked writer returned %v, want success or a conflict-classified refusal", werr)
		}
		if werr != nil {
			// Refused at the deadline: the queue is a fast path, the
			// retry contract is intact — the write must land on retry.
			if err := retryFor(crashRetryWait, func() error {
				return f.probe.Append(bgCtx, f.dirs[0], "parked", f.dirs[0], nil)
			}); err != nil {
				t.Fatalf("retried write after lock-wait refusal: %v", err)
			}
		}
	case <-time.After(crashSettleWait):
		t.Fatal("writer parked in the lock-wait queue hung past every deadline")
	}
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}

	// No decision ever existed: the transaction settles to abort and
	// both shards accept new work.
	f.assertSettles(t, false)
}

// restartShard reboots every replica of one shard concurrently (each
// one's recovery waits for a majority of the others).
func restartShard(t *testing.T, c *Cluster, shard int) {
	t.Helper()
	errs := make(chan error, c.ServersPerShard())
	for id := 1; id <= c.ServersPerShard(); id++ {
		go func(id int) { errs <- c.RestartShardServer(shard, id) }(id)
	}
	for i := 0; i < c.ServersPerShard(); i++ {
		if err := <-errs; err != nil {
			t.Fatalf("restart shard %d: %v", shard, err)
		}
	}
}
