// Package dirdata implements the directory data model of the Amoeba
// directory service (paper §2).
//
// A directory is a table. Each row holds an ASCII name, the capability
// stored under that name, and one rights mask per column. Columns are
// protection domains: the first column might carry full rights for the
// owner, the second reduced rights for the owner's group, the third
// read-only rights for everyone else. A capability handed out for a
// directory selects a single column; holders of a column capability see
// rows filtered through that column's rights masks.
//
// Directories are stored as immutable Bullet files: every update produces
// a new encoded image with a fresh sequence number (paper §3). The binary
// encoding here is deterministic so that the actively-replicated servers
// produce byte-identical images.
package dirdata

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"dirsvc/internal/capability"
)

var (
	// ErrNotFound is returned when a named row does not exist.
	ErrNotFound = errors.New("dirdata: name not found")
	// ErrExists is returned when appending a name that is already present.
	ErrExists = errors.New("dirdata: name already exists")
	// ErrBadName is returned for empty or oversized names.
	ErrBadName = errors.New("dirdata: invalid name")
	// ErrColumns is returned when rights masks do not match the column count.
	ErrColumns = errors.New("dirdata: wrong number of column masks")
	// ErrCorrupt is returned when decoding an invalid directory image.
	ErrCorrupt = errors.New("dirdata: corrupt directory image")
)

// MaxName is the longest permitted row name.
const MaxName = 255

// DefaultColumns are the column names of a standard three-domain
// directory: owner, group, other.
var DefaultColumns = []string{"owner", "group", "other"}

// Row is one (name, capability) pair plus per-column rights masks.
type Row struct {
	Name string
	Cap  capability.Capability
	// ColMasks[i] is the rights mask a holder of column i's directory
	// capability gets on this row's capability.
	ColMasks []capability.Rights
}

// clone returns a deep copy of the row.
func (r Row) clone() Row {
	out := Row{Name: r.Name, Cap: r.Cap, ColMasks: make([]capability.Rights, len(r.ColMasks))}
	copy(out.ColMasks, r.ColMasks)
	return out
}

// Directory is the in-memory form of one directory.
type Directory struct {
	Columns []string
	Rows    []Row
	// Seq is the service-wide update sequence number stamped when this
	// version of the directory was written (paper §3: "the sequence
	// number of the last change").
	Seq uint64
}

// New creates an empty directory with the given columns (DefaultColumns
// when none are given).
func New(columns ...string) *Directory {
	if len(columns) == 0 {
		columns = DefaultColumns
	}
	cols := make([]string, len(columns))
	copy(cols, columns)
	return &Directory{Columns: cols}
}

// Clone returns a deep copy of the directory.
func (d *Directory) Clone() *Directory {
	out := &Directory{
		Columns: make([]string, len(d.Columns)),
		Rows:    make([]Row, 0, len(d.Rows)),
		Seq:     d.Seq,
	}
	copy(out.Columns, d.Columns)
	for _, r := range d.Rows {
		out.Rows = append(out.Rows, r.clone())
	}
	return out
}

// find returns the index of the named row, or -1.
func (d *Directory) find(name string) int {
	for i := range d.Rows {
		if d.Rows[i].Name == name {
			return i
		}
	}
	return -1
}

// Lookup returns the row stored under name.
func (d *Directory) Lookup(name string) (Row, error) {
	i := d.find(name)
	if i < 0 {
		return Row{}, fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	return d.Rows[i].clone(), nil
}

// Append adds a new row (paper Fig. 2: "Append row"). The number of masks
// must equal the number of columns.
func (d *Directory) Append(name string, cap capability.Capability, masks []capability.Rights) error {
	if err := checkName(name); err != nil {
		return err
	}
	if len(masks) != len(d.Columns) {
		return fmt.Errorf("%d masks for %d columns: %w", len(masks), len(d.Columns), ErrColumns)
	}
	if d.find(name) >= 0 {
		return fmt.Errorf("%q: %w", name, ErrExists)
	}
	ms := make([]capability.Rights, len(masks))
	copy(ms, masks)
	d.Rows = append(d.Rows, Row{Name: name, Cap: cap, ColMasks: ms})
	return nil
}

// Delete removes the named row (paper Fig. 2: "Delete row").
func (d *Directory) Delete(name string) error {
	i := d.find(name)
	if i < 0 {
		return fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	d.Rows = append(d.Rows[:i], d.Rows[i+1:]...)
	return nil
}

// Chmod replaces the column masks of the named row (paper Fig. 2:
// "Chmod row").
func (d *Directory) Chmod(name string, masks []capability.Rights) error {
	if len(masks) != len(d.Columns) {
		return fmt.Errorf("%d masks for %d columns: %w", len(masks), len(d.Columns), ErrColumns)
	}
	i := d.find(name)
	if i < 0 {
		return fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	ms := make([]capability.Rights, len(masks))
	copy(ms, masks)
	d.Rows[i].ColMasks = ms
	return nil
}

// Replace swaps the capability of the named row, returning the previous
// capability. Replace set (paper Fig. 2) applies this to several rows
// indivisibly at the service layer.
func (d *Directory) Replace(name string, cap capability.Capability) (capability.Capability, error) {
	i := d.find(name)
	if i < 0 {
		return capability.Capability{}, fmt.Errorf("%q: %w", name, ErrNotFound)
	}
	old := d.Rows[i].Cap
	d.Rows[i].Cap = cap
	return old, nil
}

// List returns the rows visible through column col, each with its
// capability restricted to that column's mask, sorted by name (paper
// Fig. 2: "List dir"). Rows whose mask is zero in this column are hidden.
func (d *Directory) List(col int) ([]Row, error) {
	if col < 0 || col >= len(d.Columns) {
		return nil, fmt.Errorf("column %d of %d: %w", col, len(d.Columns), ErrColumns)
	}
	var out []Row
	for _, r := range d.Rows {
		mask := r.ColMasks[col]
		if mask == 0 {
			continue
		}
		row := r.clone()
		if restricted, err := capability.Restrict(r.Cap, mask); err == nil {
			row.Cap = restricted
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Names returns all row names in insertion order.
func (d *Directory) Names() []string {
	out := make([]string, len(d.Rows))
	for i, r := range d.Rows {
		out[i] = r.Name
	}
	return out
}

func checkName(name string) error {
	if name == "" || len(name) > MaxName {
		return fmt.Errorf("%q: %w", name, ErrBadName)
	}
	return nil
}

// Encoding layout (all integers big endian):
//
//	magic   [4]byte "ADr1"
//	seq     uint64
//	ncols   uint16
//	cols    ncols × (len uint8, bytes)
//	nrows   uint32
//	rows    nrows × (nameLen uint8, name, cap [16]byte, ncols × mask uint8)
var magic = [4]byte{'A', 'D', 'r', '1'}

// Encode produces the deterministic binary image of the directory, as
// stored in a Bullet file.
func (d *Directory) Encode() []byte {
	size := 4 + 8 + 2
	for _, c := range d.Columns {
		size += 1 + len(c)
	}
	size += 4
	for _, r := range d.Rows {
		size += 1 + len(r.Name) + capability.Size + len(d.Columns)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint64(buf, d.Seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(d.Columns)))
	for _, c := range d.Columns {
		buf = append(buf, uint8(len(c)))
		buf = append(buf, c...)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(d.Rows)))
	for _, r := range d.Rows {
		buf = append(buf, uint8(len(r.Name)))
		buf = append(buf, r.Name...)
		buf = r.Cap.Encode(buf)
		for _, m := range r.ColMasks {
			buf = append(buf, uint8(m))
		}
	}
	return buf
}

// Decode parses a directory image produced by Encode.
func Decode(buf []byte) (*Directory, error) {
	r := reader{buf: buf}
	var m [4]byte
	r.bytes(m[:])
	if m != magic {
		return nil, fmt.Errorf("bad magic: %w", ErrCorrupt)
	}
	d := &Directory{Seq: r.uint64()}
	ncols := int(r.uint16())
	if ncols > 64 {
		return nil, fmt.Errorf("%d columns: %w", ncols, ErrCorrupt)
	}
	d.Columns = make([]string, 0, ncols)
	for i := 0; i < ncols; i++ {
		d.Columns = append(d.Columns, string(r.lenBytes()))
	}
	nrows := int(r.uint32())
	if nrows > 1<<20 {
		return nil, fmt.Errorf("%d rows: %w", nrows, ErrCorrupt)
	}
	for i := 0; i < nrows; i++ {
		row := Row{Name: string(r.lenBytes())}
		var capBuf [capability.Size]byte
		r.bytes(capBuf[:])
		c, err := capability.Decode(capBuf[:])
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, ErrCorrupt)
		}
		row.Cap = c
		row.ColMasks = make([]capability.Rights, ncols)
		for j := 0; j < ncols; j++ {
			row.ColMasks[j] = capability.Rights(r.uint8())
		}
		d.Rows = append(d.Rows, row)
	}
	if r.failed || r.off != len(buf) {
		return nil, ErrCorrupt
	}
	return d, nil
}

// reader is a bounds-checked cursor over an encoded image.
type reader struct {
	buf    []byte
	off    int
	failed bool
}

func (r *reader) take(n int) []byte {
	if r.failed || r.off+n > len(r.buf) {
		r.failed = true
		return make([]byte, n)
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) bytes(dst []byte) { copy(dst, r.take(len(dst))) }
func (r *reader) uint8() uint8     { return r.take(1)[0] }
func (r *reader) uint16() uint16   { return binary.BigEndian.Uint16(r.take(2)) }
func (r *reader) uint32() uint32   { return binary.BigEndian.Uint32(r.take(4)) }
func (r *reader) uint64() uint64   { return binary.BigEndian.Uint64(r.take(8)) }
func (r *reader) lenBytes() []byte { return r.take(int(r.uint8())) }
