package dirdata

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dirsvc/internal/capability"
)

func mkCap(obj uint32) capability.Capability {
	return capability.Mint(capability.PortFromString("bullet"), obj, capability.NewSecret([]byte{byte(obj)}))
}

func threeMasks(m capability.Rights) []capability.Rights {
	return []capability.Rights{capability.AllRights, m, capability.RightRead}
}

func TestNewDefaults(t *testing.T) {
	d := New()
	if !reflect.DeepEqual(d.Columns, DefaultColumns) {
		t.Fatalf("columns = %v", d.Columns)
	}
	if len(d.Rows) != 0 || d.Seq != 0 {
		t.Fatal("new directory not empty")
	}
}

func TestAppendLookupDelete(t *testing.T) {
	d := New()
	if err := d.Append("tmp", mkCap(1), threeMasks(capability.RightRead)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	row, err := d.Lookup("tmp")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if row.Cap != mkCap(1) {
		t.Fatalf("cap = %v", row.Cap)
	}
	if err := d.Delete("tmp"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := d.Lookup("tmp"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup after delete: %v", err)
	}
}

func TestAppendErrors(t *testing.T) {
	d := New()
	masks := threeMasks(capability.RightRead)
	tests := []struct {
		name    string
		rowName string
		masks   []capability.Rights
		setup   func()
		wantErr error
	}{
		{name: "empty name", rowName: "", masks: masks, wantErr: ErrBadName},
		{name: "long name", rowName: string(bytes.Repeat([]byte("x"), MaxName+1)), masks: masks, wantErr: ErrBadName},
		{name: "mask count", rowName: "a", masks: masks[:2], wantErr: ErrColumns},
		{
			name: "duplicate", rowName: "dup", masks: masks, wantErr: ErrExists,
			setup: func() { _ = d.Append("dup", mkCap(9), masks) },
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.setup != nil {
				tt.setup()
			}
			if err := d.Append(tt.rowName, mkCap(1), tt.masks); !errors.Is(err, tt.wantErr) {
				t.Fatalf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestDeleteMissing(t *testing.T) {
	d := New()
	if err := d.Delete("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestChmod(t *testing.T) {
	d := New()
	if err := d.Append("f", mkCap(1), threeMasks(capability.RightRead)); err != nil {
		t.Fatal(err)
	}
	newMasks := threeMasks(capability.RightRead | capability.RightWrite)
	if err := d.Chmod("f", newMasks); err != nil {
		t.Fatalf("Chmod: %v", err)
	}
	row, _ := d.Lookup("f")
	if !reflect.DeepEqual(row.ColMasks, newMasks) {
		t.Fatalf("masks = %v", row.ColMasks)
	}
	if err := d.Chmod("ghost", newMasks); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Chmod missing: %v", err)
	}
	if err := d.Chmod("f", newMasks[:1]); !errors.Is(err, ErrColumns) {
		t.Fatalf("Chmod bad masks: %v", err)
	}
}

func TestReplaceReturnsOld(t *testing.T) {
	d := New()
	_ = d.Append("f", mkCap(1), threeMasks(capability.RightRead))
	old, err := d.Replace("f", mkCap(2))
	if err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if old != mkCap(1) {
		t.Fatalf("old = %v", old)
	}
	row, _ := d.Lookup("f")
	if row.Cap != mkCap(2) {
		t.Fatalf("cap = %v", row.Cap)
	}
	if _, err := d.Replace("ghost", mkCap(3)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Replace missing: %v", err)
	}
}

func TestListFiltersAndRestricts(t *testing.T) {
	d := New()
	_ = d.Append("b", mkCap(2), []capability.Rights{capability.AllRights, capability.RightRead, 0})
	_ = d.Append("a", mkCap(1), []capability.Rights{capability.AllRights, 0, capability.RightRead})

	// Owner column: sees both, full rights, sorted by name.
	rows, err := d.List(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "a" || rows[1].Name != "b" {
		t.Fatalf("owner list = %+v", rows)
	}
	if rows[0].Cap.Rights != capability.AllRights {
		t.Fatalf("owner rights = %v", rows[0].Cap.Rights)
	}

	// Group column: row "a" hidden (mask 0), row "b" restricted to read.
	rows, err = d.List(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Name != "b" {
		t.Fatalf("group list = %+v", rows)
	}
	if rows[0].Cap.Rights != capability.RightRead {
		t.Fatalf("group rights = %v", rows[0].Cap.Rights)
	}
	// The restricted capability must still verify against the secret.
	if err := capability.Verify(rows[0].Cap, capability.NewSecret([]byte{2})); err != nil {
		t.Fatalf("restricted cap does not verify: %v", err)
	}

	if _, err := d.List(3); !errors.Is(err, ErrColumns) {
		t.Fatalf("List bad column: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := New()
	_ = d.Append("f", mkCap(1), threeMasks(capability.RightRead))
	c := d.Clone()
	c.Rows[0].ColMasks[0] = 0
	c.Rows[0].Name = "mutated"
	if d.Rows[0].ColMasks[0] != capability.AllRights || d.Rows[0].Name != "f" {
		t.Fatal("Clone shares storage with original")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := New("owner", "other")
	d.Seq = 42
	_ = d.Append("x", mkCap(7), []capability.Rights{capability.AllRights, capability.RightRead})
	_ = d.Append("y", mkCap(8), []capability.Rights{capability.RightWrite, 0})

	got, err := Decode(d.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	build := func() *Directory {
		d := New()
		d.Seq = 7
		_ = d.Append("n1", mkCap(1), threeMasks(capability.RightRead))
		_ = d.Append("n2", mkCap(2), threeMasks(0))
		return d
	}
	if !bytes.Equal(build().Encode(), build().Encode()) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	d := New()
	_ = d.Append("f", mkCap(1), threeMasks(capability.RightRead))
	img := d.Encode()

	tests := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte{'X'}, img[1:]...)},
		{"truncated", img[:len(img)-3]},
		{"trailing garbage", append(append([]byte{}, img...), 0xFF)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.buf); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

// Property: encode/decode round trips arbitrary directories built from a
// random sequence of valid operations.
func TestQuickEncodeDecode(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New()
		d.Seq = rng.Uint64()
		for i := 0; i < int(nOps); i++ {
			name := string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26)))
			switch rng.Intn(3) {
			case 0:
				_ = d.Append(name, mkCap(rng.Uint32()&0xffffff), threeMasks(capability.Rights(rng.Intn(256))))
			case 1:
				_ = d.Delete(name)
			case 2:
				_, _ = d.Replace(name, mkCap(rng.Uint32()&0xffffff))
			}
		}
		got, err := Decode(d.Encode())
		return err == nil && reflect.DeepEqual(got, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
