package harness

// The elastic-topology experiment: split a hot shard under live read
// traffic and measure how much of its load the split sheds. The
// deployment boots with spare (reserve) shards; every directory is
// created on the shards active at epoch 0, readers hammer them, and
// mid-window the coordinator runs a full online split — epoch bump,
// per-object copy-and-flip migration, seal, stub drop — while the
// readers keep going. The before/after read share of the hottest
// pre-split shard is the result.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	faultdir "dirsvc"

	"dirsvc/dir"
	"dirsvc/internal/capability"
	"dirsvc/internal/dirclient"
)

// Migration is the elastic-topology experiment's result.
type Migration struct {
	// Dirs is the number of directories created before the split (all on
	// the shards active at epoch 0); Moved counts those whose home shard
	// changed with the split.
	Dirs  int
	Moved int
	// EpochBefore and EpochAfter bracket the split.
	EpochBefore, EpochAfter uint64
	// SplitTime is the wall-clock duration of the whole online split —
	// epoch bump, object migration, seal, and stub drop — under live
	// read traffic.
	SplitTime time.Duration
	// HotShareBefore and HotShareAfter are the fraction of all reads
	// served by the hottest pre-split shard in the equal measurement
	// windows before and after the split; ReadsBefore and ReadsAfter are
	// the windows' totals. A successful split shows the share dropping
	// toward 1/activeAfter.
	HotShareBefore, HotShareAfter float64
	ReadsBefore, ReadsAfter       uint64
	// ReadErrors counts reader operations that needed a retry during the
	// split window (conflict/timeout churn); none may fail terminally.
	ReadErrors uint64
}

// shardReads sums every replica's served-read counter per shard.
func shardReads(c *faultdir.Cluster) []uint64 {
	out := make([]uint64, c.Shards())
	for s := 0; s < c.Shards(); s++ {
		for _, n := range c.ShardReadCounts(s) {
			out[s] += n
		}
	}
	return out
}

// MeasureMigration runs the live-split experiment on a cluster booted
// with reserve shards (Options.ActiveShards < Options.Shards): `dirs`
// directories are created on the active shards, `readers` clients look
// them up continuously, and halfway through the split runs. The two
// measurement windows (before/after) each last `window`.
func MeasureMigration(c *faultdir.Cluster, dirs, readers int, window time.Duration) (Migration, error) {
	coord, cleanup, err := c.NewClient()
	if err != nil {
		return Migration{}, err
	}
	defer cleanup()

	caps := make([]capability.Capability, dirs)
	for i := range caps {
		if err := retryTransient(func() error {
			d, cerr := coord.CreateDir(bgCtx)
			if cerr == nil {
				caps[i] = d
			}
			return cerr
		}); err != nil {
			return Migration{}, fmt.Errorf("create dir %d: %w", i, err)
		}
		if err := retryTransient(func() error {
			return coord.Append(bgCtx, caps[i], "row", caps[i], nil)
		}); err != nil {
			return Migration{}, fmt.Errorf("seed dir %d: %w", i, err)
		}
	}
	epochBefore := coord.Epoch()
	base, total := coord.Geometry()

	// Live read traffic, running through the split.
	var (
		stop       atomic.Bool
		retries    atomic.Uint64
		readerErrs = make(chan error, readers)
		wg         sync.WaitGroup
	)
	for i := 0; i < readers; i++ {
		client, rcleanup, err := c.NewClient()
		if err != nil {
			return Migration{}, err
		}
		defer rcleanup()
		wg.Add(1)
		go func(i int, client *dirclient.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			for !stop.Load() {
				d := caps[rng.Intn(len(caps))]
				attempt := 0
				err := retryTransient(func() error {
					attempt++
					_, lerr := client.Lookup(bgCtx, d, "row")
					return lerr
				})
				if attempt > 1 {
					retries.Add(uint64(attempt - 1))
				}
				if err != nil {
					readerErrs <- fmt.Errorf("reader %d: %w", i, err)
					return
				}
			}
		}(i, client)
	}

	fail := func(err error) (Migration, error) {
		stop.Store(true)
		wg.Wait()
		return Migration{}, err
	}

	// Window 1: pre-split load distribution.
	base0 := shardReads(c)
	time.Sleep(window)
	pre := shardReads(c)

	// The split, live.
	splitStart := time.Now()
	epochAfter, err := coord.SplitAndMigrate(bgCtx)
	splitTime := time.Since(splitStart)
	if err != nil {
		return fail(fmt.Errorf("split: %w", err))
	}

	// Window 2: post-split load distribution.
	mid := shardReads(c)
	time.Sleep(window)
	post := shardReads(c)

	stop.Store(true)
	wg.Wait()
	close(readerErrs)
	if err := <-readerErrs; err != nil {
		return Migration{}, err
	}

	// Every directory must still resolve — through its new home.
	for i, d := range caps {
		if err := retryTransient(func() error {
			_, lerr := coord.Lookup(bgCtx, d, "row")
			return lerr
		}); err != nil {
			return Migration{}, fmt.Errorf("dir %d unreachable after split: %w", i, err)
		}
	}

	res := Migration{
		Dirs:        dirs,
		EpochBefore: epochBefore,
		EpochAfter:  epochAfter,
		SplitTime:   splitTime,
		ReadErrors:  retries.Load(),
	}
	for _, d := range caps {
		if dir.HomeShard(d.Object, epochBefore, base, total) != dir.HomeShard(d.Object, epochAfter, base, total) {
			res.Moved++
		}
	}

	// Hot shard = the busiest shard of window 1; its share must drop.
	hot, hotReads := 0, uint64(0)
	var totBefore, totAfter uint64
	for s := range pre {
		n := pre[s] - base0[s]
		totBefore += n
		if n > hotReads {
			hot, hotReads = s, n
		}
	}
	for s := range post {
		totAfter += post[s] - mid[s]
	}
	res.ReadsBefore, res.ReadsAfter = totBefore, totAfter
	if totBefore > 0 {
		res.HotShareBefore = float64(hotReads) / float64(totBefore)
	}
	if totAfter > 0 {
		res.HotShareAfter = float64(post[hot]-mid[hot]) / float64(totAfter)
	}
	return res, nil
}
