package harness

import (
	"testing"
	"time"

	faultdir "dirsvc"

	"dirsvc/internal/sim"
)

func fastCluster(t *testing.T, kind faultdir.Kind) *faultdir.Cluster {
	t.Helper()
	c, err := faultdir.New(kind, faultdir.Options{
		Model:             sim.FastModel(),
		HeartbeatInterval: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestMeasureAppendDelete(t *testing.T) {
	c := fastCluster(t, faultdir.KindGroup)
	d, err := MeasureAppendDelete(c, 3)
	if err != nil {
		t.Fatalf("MeasureAppendDelete: %v", err)
	}
	if d <= 0 {
		t.Fatalf("non-positive latency %v", d)
	}
}

func TestMeasureTmpFile(t *testing.T) {
	c := fastCluster(t, faultdir.KindGroupNVRAM)
	d, err := MeasureTmpFile(c, 2)
	if err != nil {
		t.Fatalf("MeasureTmpFile: %v", err)
	}
	if d <= 0 {
		t.Fatalf("non-positive latency %v", d)
	}
}

func TestMeasureLookup(t *testing.T) {
	c := fastCluster(t, faultdir.KindLocal)
	d, err := MeasureLookup(c, 5)
	if err != nil {
		t.Fatalf("MeasureLookup: %v", err)
	}
	if d < 0 {
		t.Fatalf("negative latency %v", d)
	}
}

func TestMeasureLookupThroughput(t *testing.T) {
	c := fastCluster(t, faultdir.KindGroup)
	tp, err := MeasureLookupThroughput(c, 2, 150*time.Millisecond)
	if err != nil {
		t.Fatalf("MeasureLookupThroughput: %v", err)
	}
	if tp.OpsPerSec <= 0 || tp.Clients != 2 {
		t.Fatalf("throughput = %+v", tp)
	}
}

func TestMeasureUpdateThroughput(t *testing.T) {
	c := fastCluster(t, faultdir.KindRPC)
	tp, err := MeasureUpdateThroughput(c, 2, 150*time.Millisecond)
	if err != nil {
		t.Fatalf("MeasureUpdateThroughput: %v", err)
	}
	if tp.OpsPerSec <= 0 {
		t.Fatalf("throughput = %+v", tp)
	}
}

func TestRenderFig7(t *testing.T) {
	out := RenderFig7([]Latencies{{
		Kind:         faultdir.KindGroup,
		AppendDelete: 184 * time.Millisecond,
		TmpFile:      215 * time.Millisecond,
		Lookup:       5 * time.Millisecond,
	}})
	if out == "" {
		t.Fatal("empty table")
	}
	for _, want := range []string{"Append-delete", "Tmp file", "Directory lookup", "184.0", "1.00"} {
		if !contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSeries(t *testing.T) {
	out := RenderSeries("Fig 8", "lookups/s", map[string][]Throughput{
		"group": {{Clients: 1, OpsPerSec: 100}, {Clients: 2, OpsPerSec: 190}},
		"rpc":   {{Clients: 1, OpsPerSec: 90}},
	})
	for _, want := range []string{"Fig 8", "group", "rpc", "190.0", "-"} {
		if !contains(out, want) {
			t.Fatalf("series missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
