// Package harness drives the paper's evaluation (§4): the single-client
// latency experiments of Fig. 7, the multi-client throughput sweeps of
// Figs. 8 and 9, and the ablation experiments called out in DESIGN.md.
// It measures wall-clock time, which — under sim.PaperModel — is the
// calibrated simulated time of the 1993 hardware, so results are
// directly comparable with the paper's tables.
package harness

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	faultdir "dirsvc"

	"dirsvc/dir"
	"dirsvc/internal/capability"
	"dirsvc/internal/dirclient"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/rpc"
)

// bgCtx is the unbounded context used where no deadline applies.
var bgCtx = context.Background()

// Latencies holds one Fig. 7 cell set for one service kind.
type Latencies struct {
	Kind         faultdir.Kind
	AppendDelete time.Duration // append+delete pair (Fig. 7 row 1)
	TmpFile      time.Duration // tmp-file cycle (Fig. 7 row 2)
	Lookup       time.Duration // directory lookup (Fig. 7 row 3)
}

// setupBench prepares a client, the root and a working directory.
func setupBench(c *faultdir.Cluster) (*dirclient.Client, func(), capability.Capability, capability.Capability, error) {
	client, cleanup, err := c.NewClient()
	if err != nil {
		return nil, nil, capability.Capability{}, capability.Capability{}, err
	}
	root, err := client.Root(bgCtx)
	if err != nil {
		cleanup()
		return nil, nil, capability.Capability{}, capability.Capability{}, err
	}
	dir, err := client.CreateDir(bgCtx)
	if err != nil {
		cleanup()
		return nil, nil, capability.Capability{}, capability.Capability{}, err
	}
	return client, cleanup, root, dir, nil
}

// MeasureAppendDelete times append+delete pairs on a directory — the
// paper's first experiment ("appending and deleting a name for a
// temporary file").
func MeasureAppendDelete(c *faultdir.Cluster, pairs int) (time.Duration, error) {
	client, cleanup, _, dir, err := setupBench(c)
	if err != nil {
		return 0, err
	}
	defer cleanup()
	// Warm-up pair: locate, caches.
	if err := pairOp(client, dir, "warm"); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < pairs; i++ {
		if err := pairOp(client, dir, fmt.Sprintf("tmp%04d", i)); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(pairs), nil
}

func pairOp(client *dirclient.Client, dir capability.Capability, name string) error {
	if err := retryTransient(func() error { return client.Append(bgCtx, dir, name, dir, nil) }); err != nil {
		return fmt.Errorf("append: %w", err)
	}
	if err := retryTransient(func() error { return client.Delete(bgCtx, dir, name) }); err != nil {
		return fmt.Errorf("delete: %w", err)
	}
	return nil
}

// retryTransient retries an operation through overload churn: under
// heavy write load every server thread is busy, so clients bounce
// between NOTHERE evictions and timeouts exactly as Amoeba clients did —
// and, like the Amoeba kernel, they simply try again.
func retryTransient(op func() error) error {
	var err error
	for attempt := 0; attempt < 60; attempt++ {
		err = op()
		switch {
		case err == nil:
			return nil
		case errors.Is(err, rpc.ErrTimeout), errors.Is(err, rpc.ErrNoServer),
			errors.Is(err, dirsvc.ErrConflict), errors.Is(err, dirsvc.ErrNoMajority):
			time.Sleep(time.Duration(attempt+1) * 5 * time.Millisecond)
		default:
			return err
		}
	}
	return err
}

// MeasureTmpFile times the paper's second experiment: create a 4-byte
// file, register its capability, look the name up, read the file back,
// and delete the name — the life of a compiler temporary.
func MeasureTmpFile(c *faultdir.Cluster, iterations int) (time.Duration, error) {
	client, cleanup, _, dir, err := setupBench(c)
	if err != nil {
		return 0, err
	}
	defer cleanup()
	files := c.NewFileClient(client)

	run := func(name string) error {
		fcap, err := files.Create([]byte{1, 2, 3, 4})
		if err != nil {
			return fmt.Errorf("create file: %w", err)
		}
		if err := client.Append(bgCtx, dir, name, fcap, nil); err != nil {
			return fmt.Errorf("register: %w", err)
		}
		got, err := client.Lookup(bgCtx, dir, name)
		if err != nil {
			return fmt.Errorf("lookup: %w", err)
		}
		if _, err := files.Read(got); err != nil {
			return fmt.Errorf("read file: %w", err)
		}
		if err := client.Delete(bgCtx, dir, name); err != nil {
			return fmt.Errorf("delete name: %w", err)
		}
		return files.Delete(fcap)
	}
	if err := run("warm"); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < iterations; i++ {
		if err := run(fmt.Sprintf("t%04d", i)); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iterations), nil
}

// MeasureLookup times cached directory lookups — the paper's third
// experiment (5–6 ms across all implementations).
func MeasureLookup(c *faultdir.Cluster, lookups int) (time.Duration, error) {
	client, cleanup, _, dir, err := setupBench(c)
	if err != nil {
		return 0, err
	}
	defer cleanup()
	if err := client.Append(bgCtx, dir, "target", dir, nil); err != nil {
		return 0, err
	}
	if _, err := client.Lookup(bgCtx, dir, "target"); err != nil { // warm
		return 0, err
	}
	start := time.Now()
	for i := 0; i < lookups; i++ {
		if _, err := client.Lookup(bgCtx, dir, "target"); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(lookups), nil
}

// Throughput is one point of Fig. 8 / Fig. 9, with per-operation latency
// percentiles over the measurement window.
type Throughput struct {
	Clients   int
	OpsPerSec float64
	// P50, P99 and P999 are the median, 99th- and 99.9th-percentile
	// per-operation latencies (an operation is whatever the experiment
	// counts: a lookup, an append-delete pair, one mixed-workload op).
	// P999 equals the window maximum when fewer than 1000 samples were
	// recorded — read it as "extreme tail", not a calibrated quantile.
	P50, P99, P999 time.Duration
}

// latSamples accumulates per-operation durations across worker
// goroutines; each goroutine appends to its own slot, so recording is
// contention-free.
type latSamples [][]time.Duration

func newLatSamples(workers int) latSamples { return make(latSamples, workers) }

func (l latSamples) add(worker int, d time.Duration) { l[worker] = append(l[worker], d) }

// percentiles merges and sorts every worker's samples and returns the
// p50, p99 and p99.9 latencies (zero when nothing was recorded).
func (l latSamples) percentiles() (p50, p99, p999 time.Duration) {
	var all []time.Duration
	for _, s := range l {
		all = append(all, s...)
	}
	if len(all) == 0 {
		return 0, 0, 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	at := func(p float64) time.Duration {
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	return at(0.50), at(0.99), at(0.999)
}

// MeasureLookupThroughput reproduces Fig. 8: n clients issue
// back-to-back lookups for the window; the result is total lookups per
// second. Server selection runs through the port-cache heuristic, so low
// client counts show the paper's uneven distribution.
func MeasureLookupThroughput(c *faultdir.Cluster, clients int, window time.Duration) (Throughput, error) {
	client0, cleanup0, _, dir, err := setupBench(c)
	if err != nil {
		return Throughput{}, err
	}
	defer cleanup0()
	if err := client0.Append(bgCtx, dir, "target", dir, nil); err != nil {
		return Throughput{}, err
	}

	counts := make([]int, clients)
	lats := newLatSamples(clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(window)
	for i := 0; i < clients; i++ {
		client, cleanup, err := c.NewClient()
		if err != nil {
			return Throughput{}, err
		}
		defer cleanup()
		wg.Add(1)
		go func(i int, client *dirclient.Client) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				opStart := time.Now()
				err := retryTransient(func() error {
					_, lerr := client.Lookup(bgCtx, dir, "target")
					return lerr
				})
				if err != nil {
					errs <- err
					return
				}
				lats.add(i, time.Since(opStart))
				counts[i]++
			}
		}(i, client)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return Throughput{}, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	p50, p99, p999 := lats.percentiles()
	return Throughput{Clients: clients, OpsPerSec: float64(total) / elapsed.Seconds(), P50: p50, P99: p99, P999: p999}, nil
}

// measurePairThroughput runs n concurrent clients, each issuing
// back-to-back append-delete pairs against the working directory dirFor
// assigns it, for one measurement window. The result is total pairs per
// second.
func measurePairThroughput(c *faultdir.Cluster, clients int, window time.Duration, dirFor func(i int, client *dirclient.Client) (capability.Capability, error)) (Throughput, error) {
	workers := make([]*dirclient.Client, clients)
	dirs := make([]capability.Capability, clients)
	for i := 0; i < clients; i++ {
		client, cleanup, err := c.NewClient()
		if err != nil {
			return Throughput{}, err
		}
		defer cleanup()
		workers[i] = client
		if dirs[i], err = dirFor(i, client); err != nil {
			return Throughput{}, err
		}
	}

	counts := make([]int, clients)
	lats := newLatSamples(clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(window)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int, client *dirclient.Client, dir capability.Capability) {
			defer wg.Done()
			for j := 0; time.Now().Before(deadline); j++ {
				opStart := time.Now()
				if err := pairOp(client, dir, fmt.Sprintf("c%dn%d", i, j)); err != nil {
					errs <- err
					return
				}
				lats.add(i, time.Since(opStart))
				counts[i]++
			}
		}(i, workers[i], dirs[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return Throughput{}, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	p50, p99, p999 := lats.percentiles()
	return Throughput{Clients: clients, OpsPerSec: float64(total) / elapsed.Seconds(), P50: p50, P99: p99, P999: p999}, nil
}

// MeasureUpdateThroughput reproduces Fig. 9: n clients issue
// append-delete pairs against one shared directory; the result is pairs
// per second (the paper notes actual write throughput is twice this).
func MeasureUpdateThroughput(c *faultdir.Cluster, clients int, window time.Duration) (Throughput, error) {
	_, cleanup0, _, dir, err := setupBench(c)
	if err != nil {
		return Throughput{}, err
	}
	defer cleanup0()
	return measurePairThroughput(c, clients, window,
		func(int, *dirclient.Client) (capability.Capability, error) { return dir, nil })
}

// MeasureShardedUpdateThroughput measures aggregate write throughput
// with per-client working directories: client i's directory is placed on
// shard i mod G, so the offered write load spreads across every replica
// group. With G=1 this degenerates to independent directories on the
// single group — the baseline the shard experiment compares against.
// The result is append-delete pairs per second summed over all clients.
func MeasureShardedUpdateThroughput(c *faultdir.Cluster, clients int, window time.Duration) (Throughput, error) {
	shards := c.Shards()
	return measurePairThroughput(c, clients, window,
		func(i int, client *dirclient.Client) (capability.Capability, error) {
			var d capability.Capability
			if err := retryTransient(func() error {
				var cerr error
				d, cerr = client.CreateDirOn(bgCtx, i%shards)
				return cerr
			}); err != nil {
				return capability.Capability{}, fmt.Errorf("create working dir on shard %d: %w", i%shards, err)
			}
			return d, nil
		})
}

// MeasureMixedWorkload drives the workload shape the paper reports from
// three weeks of production use (§2): 98% of operations are reads. It
// returns the sustained operations per second for the given read
// fraction — the regime both services optimize for, and the regime the
// client read cache (Options.ClientCache) is built to exploit: with the
// cache on, repeat lookups of the hot name are served locally and only
// the write traffic still pays RPC round-trips. Aggregate hit counters
// are available afterwards from Cluster.CacheStats.
func MeasureMixedWorkload(c *faultdir.Cluster, clients int, readPct int, window time.Duration) (Throughput, error) {
	client0, cleanup0, _, dir, err := setupBench(c)
	if err != nil {
		return Throughput{}, err
	}
	defer cleanup0()
	if err := client0.Append(bgCtx, dir, "hot", dir, nil); err != nil {
		return Throughput{}, err
	}

	counts := make([]int, clients)
	lats := newLatSamples(clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(window)
	for i := 0; i < clients; i++ {
		client, cleanup, err := c.NewClient()
		if err != nil {
			return Throughput{}, err
		}
		defer cleanup()
		wg.Add(1)
		go func(i int, client *dirclient.Client) {
			defer wg.Done()
			for j := 0; time.Now().Before(deadline); j++ {
				opStart := time.Now()
				if j%100 < readPct {
					err := retryTransient(func() error {
						_, lerr := client.Lookup(bgCtx, dir, "hot")
						return lerr
					})
					if err != nil {
						errs <- err
						return
					}
				} else {
					name := fmt.Sprintf("w%dj%d", i, j)
					if err := pairOp(client, dir, name); err != nil {
						errs <- err
						return
					}
				}
				lats.add(i, time.Since(opStart))
				counts[i]++
			}
		}(i, client)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return Throughput{}, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	p50, p99, p999 := lats.percentiles()
	return Throughput{Clients: clients, OpsPerSec: float64(total) / elapsed.Seconds(), P50: p50, P99: p99, P999: p999}, nil
}

// ReadScale is one point of the read-scaling experiment: aggregate
// lookup throughput with latency percentiles, plus how the reads
// distributed over the replicas of shard 0 (group kinds).
type ReadScale struct {
	Throughput
	// Goroutines is how many concurrent goroutines each client ran.
	Goroutines int
	// PerServerReads maps replica id to reads served during the window.
	PerServerReads map[int]uint64
}

// MeasureReadScale measures the read path under concurrency: `clients`
// independent clients, each driving `goroutines` concurrent goroutines
// of back-to-back lookups of one hot name, for the window. Whether the
// reads pin to one replica (the paper's §4.2 heuristic) or spread across
// all of them follows the cluster's Options.ReadBalance; with the
// concurrent RPC transport, one client's goroutines issue overlapping
// transactions instead of serializing on a per-client lock. The result
// is total lookups per second, p50/p99 lookup latency, and the
// per-replica read counts accumulated during the window.
func MeasureReadScale(c *faultdir.Cluster, clients, goroutines int, window time.Duration) (ReadScale, error) {
	client0, cleanup0, _, dir, err := setupBench(c)
	if err != nil {
		return ReadScale{}, err
	}
	defer cleanup0()
	if err := client0.Append(bgCtx, dir, "target", dir, nil); err != nil {
		return ReadScale{}, err
	}
	before := c.ShardReadCounts(0)

	workers := clients * goroutines
	counts := make([]int, workers)
	lats := newLatSamples(workers)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(window)
	for i := 0; i < clients; i++ {
		client, cleanup, err := c.NewClient()
		if err != nil {
			return ReadScale{}, err
		}
		defer cleanup()
		for g := 0; g < goroutines; g++ {
			w := i*goroutines + g
			wg.Add(1)
			go func(w int, client *dirclient.Client) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					opStart := time.Now()
					err := retryTransient(func() error {
						_, lerr := client.Lookup(bgCtx, dir, "target")
						return lerr
					})
					if err != nil {
						errs <- err
						return
					}
					lats.add(w, time.Since(opStart))
					counts[w]++
				}
			}(w, client)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return ReadScale{}, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	perServer := c.ShardReadCounts(0)
	for id, n := range before {
		perServer[id] -= n
	}
	p50, p99, p999 := lats.percentiles()
	return ReadScale{
		Throughput: Throughput{
			Clients:   clients,
			OpsPerSec: float64(total) / elapsed.Seconds(),
			P50:       p50,
			P99:       p99,
			P999:      p999,
		},
		Goroutines:     goroutines,
		PerServerReads: perServer,
	}, nil
}

// MeasureBatchCommitRate measures sustained atomic-batch throughput:
// `clients` concurrent clients each apply back-to-back `steps`-step
// batches for the window. With cross=false every client's batch stays
// on one shard (the one-broadcast fast path); with cross=true each
// batch spreads its steps over every shard and commits through the
// client's two-phase protocol. The result counts whole batches per
// second, with per-batch latency percentiles — the price of distributed
// atomicity versus the fast path.
func MeasureBatchCommitRate(c *faultdir.Cluster, clients, steps int, cross bool, window time.Duration) (Throughput, error) {
	shards := c.Shards()
	workers := make([]*dirclient.Client, clients)
	dirsets := make([][]capability.Capability, clients)
	for i := 0; i < clients; i++ {
		client, cleanup, err := c.NewClient()
		if err != nil {
			return Throughput{}, err
		}
		defer cleanup()
		workers[i] = client
		homes := []int{i % shards}
		if cross {
			homes = homes[:0]
			for s := 0; s < shards; s++ {
				homes = append(homes, s)
			}
		}
		for _, home := range homes {
			var d capability.Capability
			if err := retryTransient(func() error {
				var cerr error
				d, cerr = client.CreateDirOn(bgCtx, home)
				return cerr
			}); err != nil {
				return Throughput{}, fmt.Errorf("create working dir on shard %d: %w", home, err)
			}
			dirsets[i] = append(dirsets[i], d)
		}
	}

	counts := make([]int, clients)
	lats := newLatSamples(clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(window)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int, client *dirclient.Client, dirs []capability.Capability) {
			defer wg.Done()
			for j := 0; time.Now().Before(deadline); j++ {
				b := dir.NewBatch()
				for k := 0; k < steps; k++ {
					d := dirs[k%len(dirs)]
					name := fmt.Sprintf("b%dk%d", i, k)
					if j%2 == 0 {
						b.Append(d, name, d, nil)
					} else {
						b.Delete(d, name)
					}
				}
				opStart := time.Now()
				if err := retryTransient(func() error {
					_, aerr := client.Apply(bgCtx, b)
					return aerr
				}); err != nil {
					errs <- err
					return
				}
				lats.add(i, time.Since(opStart))
				counts[i]++
			}
		}(i, workers[i], dirsets[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return Throughput{}, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	p50, p99, p999 := lats.percentiles()
	return Throughput{Clients: clients, OpsPerSec: float64(total) / elapsed.Seconds(), P50: p50, P99: p99, P999: p999}, nil
}

// TailLatency is the result of the tail-latency experiment
// (MeasureTailLatency): the read-side percentiles of a saturated mixed
// workload, the hedged-read counters accumulated by the readers, and —
// on sharded deployments — a deliberately contended cross-shard
// two-phase batch leg.
type TailLatency struct {
	// Read pools only the readers' lookup latencies: the write traffic
	// that saturates the replicas is load, not signal.
	Read Throughput
	// HedgesSent and HedgeWins count hedged reads issued by the readers
	// and the transactions the hedge won, summed over all readers.
	HedgesSent, HedgeWins uint64
	// Cross is the contended cross-shard batch leg: every client's
	// batches span the same per-shard directories, so two-phase prepares
	// collide on object locks and conflicting writers sit in the
	// server-side lock-wait queue instead of retrying. Zero-valued when
	// the deployment has a single shard.
	Cross Throughput
}

// MeasureTailLatency is the tail-latency campaign's experiment. Leg 1:
// `readers` clients issue back-to-back lookups of one hot name while
// two background writers hammer append-delete pairs into the same
// directory — the regime where a naive picker dogpiles the replica that
// is busy applying writes and the p99 blows up. Only read latencies are
// pooled. Leg 2 (sharded deployments): four clients apply back-to-back
// batches spanning one shared directory per shard, so every commit is a
// conflicting two-phase transaction; the pooled per-batch latencies
// show what the lock-wait queue does to the xbatch tail.
func MeasureTailLatency(c *faultdir.Cluster, readers int, window time.Duration) (TailLatency, error) {
	client0, cleanup0, _, hot, err := setupBench(c)
	if err != nil {
		return TailLatency{}, err
	}
	defer cleanup0()
	if err := client0.Append(bgCtx, hot, "target", hot, nil); err != nil {
		return TailLatency{}, err
	}

	const writers = 2
	readClients := make([]*dirclient.Client, readers)
	counts := make([]int, readers)
	lats := newLatSamples(readers)
	errs := make(chan error, readers+writers)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(window)
	for i := 0; i < writers; i++ {
		client, cleanup, err := c.NewClient()
		if err != nil {
			return TailLatency{}, err
		}
		defer cleanup()
		wg.Add(1)
		go func(i int, client *dirclient.Client) {
			defer wg.Done()
			for j := 0; time.Now().Before(deadline); j++ {
				if err := pairOp(client, hot, fmt.Sprintf("w%dj%d", i, j)); err != nil {
					errs <- fmt.Errorf("background writer: %w", err)
					return
				}
			}
		}(i, client)
	}
	for i := 0; i < readers; i++ {
		client, cleanup, err := c.NewClient()
		if err != nil {
			return TailLatency{}, err
		}
		defer cleanup()
		readClients[i] = client
		wg.Add(1)
		go func(i int, client *dirclient.Client) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				opStart := time.Now()
				err := retryTransient(func() error {
					_, lerr := client.Lookup(bgCtx, hot, "target")
					return lerr
				})
				if err != nil {
					errs <- err
					return
				}
				lats.add(i, time.Since(opStart))
				counts[i]++
			}
		}(i, client)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return TailLatency{}, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	res := TailLatency{}
	res.Read.Clients = readers
	res.Read.OpsPerSec = float64(total) / elapsed.Seconds()
	res.Read.P50, res.Read.P99, res.Read.P999 = lats.percentiles()
	for _, client := range readClients {
		sent, wins := client.HedgeStats()
		res.HedgesSent += sent
		res.HedgeWins += wins
	}
	if c.Shards() > 1 {
		if res.Cross, err = measureContendedCross(c, window); err != nil {
			return TailLatency{}, err
		}
	}
	return res, nil
}

// measureContendedCross is MeasureTailLatency's second leg: every
// client's batches name the same shared directory on every shard, so
// concurrent two-phase prepares conflict on the directory object locks
// by construction.
func measureContendedCross(c *faultdir.Cluster, window time.Duration) (Throughput, error) {
	const clients = 4
	shards := c.Shards()
	setup, cleanup0, err := c.NewClient()
	if err != nil {
		return Throughput{}, err
	}
	defer cleanup0()
	shared := make([]capability.Capability, shards)
	for s := 0; s < shards; s++ {
		if err := retryTransient(func() error {
			var cerr error
			shared[s], cerr = setup.CreateDirOn(bgCtx, s)
			return cerr
		}); err != nil {
			return Throughput{}, fmt.Errorf("create shared dir on shard %d: %w", s, err)
		}
	}

	counts := make([]int, clients)
	lats := newLatSamples(clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(window)
	for i := 0; i < clients; i++ {
		client, cleanup, err := c.NewClient()
		if err != nil {
			return Throughput{}, err
		}
		defer cleanup()
		wg.Add(1)
		go func(i int, client *dirclient.Client) {
			defer wg.Done()
			for j := 0; time.Now().Before(deadline); j++ {
				b := dir.NewBatch()
				for s, d := range shared {
					name := fmt.Sprintf("c%ds%d", i, s)
					if j%2 == 0 {
						b.Append(d, name, d, nil)
					} else {
						b.Delete(d, name)
					}
				}
				opStart := time.Now()
				if err := retryTransient(func() error {
					_, aerr := client.Apply(bgCtx, b)
					return aerr
				}); err != nil {
					errs <- fmt.Errorf("contended batch: %w", err)
					return
				}
				lats.add(i, time.Since(opStart))
				counts[i]++
			}
		}(i, client)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return Throughput{}, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	p50, p99, p999 := lats.percentiles()
	return Throughput{Clients: clients, OpsPerSec: float64(total) / elapsed.Seconds(), P50: p50, P99: p99, P999: p999}, nil
}

// BatchCost is one side of the batch-amortization measurement: what B
// updates cost in group broadcasts and wall-clock time.
type BatchCost struct {
	Broadcasts uint64
	Elapsed    time.Duration
}

// MeasureBatchAmortization issues B updates twice against a group
// cluster: as sequential single operations (B broadcasts) and as one
// atomic batch (one broadcast), returning both costs.
func MeasureBatchAmortization(c *faultdir.Cluster, b int) (singles, batched BatchCost, err error) {
	client, cleanup, _, work, err := setupBench(c)
	if err != nil {
		return BatchCost{}, BatchCost{}, err
	}
	defer cleanup()

	base := c.GroupSends()
	start := time.Now()
	for i := 0; i < b; i++ {
		name := fmt.Sprintf("amort%04d", i)
		if err := retryTransient(func() error { return client.Append(bgCtx, work, name, work, nil) }); err != nil {
			return BatchCost{}, BatchCost{}, fmt.Errorf("single append: %w", err)
		}
	}
	singles = BatchCost{Broadcasts: c.GroupSends() - base, Elapsed: time.Since(start)}

	batch := dir.NewBatch()
	for i := 0; i < b; i++ {
		batch.Delete(work, fmt.Sprintf("amort%04d", i))
	}
	base = c.GroupSends()
	start = time.Now()
	if err := retryTransient(func() error {
		_, aerr := client.Apply(bgCtx, batch)
		return aerr
	}); err != nil {
		return BatchCost{}, BatchCost{}, fmt.Errorf("batch apply: %w", err)
	}
	batched = BatchCost{Broadcasts: c.GroupSends() - base, Elapsed: time.Since(start)}
	return singles, batched, nil
}

// RenderFig7 formats measured latencies next to the paper's numbers.
func RenderFig7(rows []Latencies) string {
	paper := map[faultdir.Kind][3]int{ // ms, from Fig. 7
		faultdir.KindGroup:      {184, 215, 5},
		faultdir.KindRPC:        {192, 277, 5},
		faultdir.KindLocal:      {87, 111, 6},
		faultdir.KindGroupNVRAM: {27, 52, 5},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-14s %-14s %-14s\n", "Operation (ms)", "measured", "paper", "ratio")
	for _, r := range rows {
		p := paper[r.Kind]
		cells := []struct {
			name     string
			measured time.Duration
			paperMS  int
		}{
			{"Append-delete", r.AppendDelete, p[0]},
			{"Tmp file", r.TmpFile, p[1]},
			{"Directory lookup", r.Lookup, p[2]},
		}
		for _, cell := range cells {
			ms := float64(cell.measured) / float64(time.Millisecond)
			fmt.Fprintf(&b, "%-28s %-14.1f %-14d %-14.2f\n",
				fmt.Sprintf("%s [%s]", cell.name, r.Kind), ms, cell.paperMS, ms/float64(cell.paperMS))
		}
	}
	return b.String()
}

// RenderSeries formats a throughput sweep as an ASCII series.
func RenderSeries(title, unit string, series map[string][]Throughput) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", title, unit)
	fmt.Fprintf(&b, "%-16s", "clients")
	var maxLen int
	for _, pts := range series {
		if len(pts) > maxLen {
			maxLen = len(pts)
		}
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-16s", name)
	}
	b.WriteByte('\n')
	for i := 0; i < maxLen; i++ {
		wrote := false
		for _, name := range names {
			pts := series[name]
			if i < len(pts) {
				if !wrote {
					fmt.Fprintf(&b, "%-16d", pts[i].Clients)
					wrote = true
				}
				fmt.Fprintf(&b, "%-16.1f", pts[i].OpsPerSec)
			} else {
				fmt.Fprintf(&b, "%-16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// WatchCoherence is one measured mode of the cache-coherence
// experiment: an otherwise idle working set under a foreign writer,
// with invalidation either pulled (noticed on the client's next
// contact) or pushed (delivered over the lease channel).
type WatchCoherence struct {
	Push bool
	// IdleHits and IdleMisses count the re-reads of the idle working
	// set after each foreign write; IdleHitRate is their ratio. Pull
	// invalidation cannot explain a foreign Seq advance, so it drops the
	// whole shard and the idle set re-fills needlessly; pushed
	// invalidation drops exactly the touched object.
	IdleHits, IdleMisses uint64
	IdleHitRate          float64
	// StaleHotReads counts hot-directory reads that missed the newest
	// committed row. The push mode reads after the invalidation is
	// delivered, so it must observe zero.
	StaleHotReads int
	Writes        int
	// DeliverP50 and DeliverP99 are write-to-delivery latencies: from
	// issuing the foreign append to the Watch event arriving at the
	// idle client (push mode only).
	DeliverP50, DeliverP99 time.Duration
}

// MeasureWatchCoherence runs the idle-client coherence experiment: a
// reader caches one hot and idleDirs idle directories, then a separate
// writer commits `writes` appends to the hot one. After every write the
// reader re-reads the hot directory (checking freshness) and sweeps the
// idle set (counting hits). In push mode the reader holds a Watch
// stream on the hot directory and reads only after the write's event
// arrives — the coherence the lease protocol promises; in pull mode it
// reads immediately, seeing exactly what the paper's Seq-high-water
// client sees.
func MeasureWatchCoherence(c *faultdir.Cluster, push bool, idleDirs, writes int) (WatchCoherence, error) {
	reader, readerDone, err := c.NewCachedClient(dir.CacheOptions{Enabled: true, Leases: push})
	if err != nil {
		return WatchCoherence{}, err
	}
	defer readerDone()
	writer, writerDone, err := c.NewCachedClient(dir.CacheOptions{})
	if err != nil {
		return WatchCoherence{}, err
	}
	defer writerDone()

	root, err := reader.Root(bgCtx)
	if err != nil {
		return WatchCoherence{}, err
	}
	hot, err := reader.CreateDir(bgCtx)
	if err != nil {
		return WatchCoherence{}, err
	}
	if err := reader.Append(bgCtx, root, "hot", hot, nil); err != nil {
		return WatchCoherence{}, err
	}
	// The reader's own scratch directory: one append per round keeps the
	// client minimally active, the way a real idle-ish client is. In pull
	// mode that contact is what reveals the foreign commits — as an
	// unexplained Seq jump that drops the whole shard's cache.
	scratch, err := reader.CreateDir(bgCtx)
	if err != nil {
		return WatchCoherence{}, err
	}
	idle := make([]capability.Capability, idleDirs)
	for i := range idle {
		if idle[i], err = reader.CreateDir(bgCtx); err != nil {
			return WatchCoherence{}, err
		}
	}

	var stream <-chan dir.Event
	if push {
		// The Watch stream doubles as the delivery-latency probe and —
		// because Watch blocks until the lease is established — as the
		// guarantee that pushes cover everything the writer commits below.
		ctx, cancel := context.WithCancel(bgCtx)
		defer cancel()
		if stream, err = reader.Watch(ctx, hot); err != nil {
			return WatchCoherence{}, err
		}
	}

	// Warm the working set: one List per directory fills the cache.
	if _, err := reader.List(bgCtx, hot, 0); err != nil {
		return WatchCoherence{}, err
	}
	for _, d := range idle {
		if _, err := reader.List(bgCtx, d, 0); err != nil {
			return WatchCoherence{}, err
		}
	}

	res := WatchCoherence{Push: push, Writes: writes}
	lats := newLatSamples(1)
	for i := 0; i < writes; i++ {
		issued := time.Now()
		err := retryTransient(func() error {
			return writer.Append(bgCtx, hot, fmt.Sprintf("w%04d", i), hot, nil)
		})
		if err != nil {
			return WatchCoherence{}, fmt.Errorf("foreign append %d: %w", i, err)
		}
		if push {
			// Wait for the write's invalidation to reach this client.
			deadline := time.NewTimer(30 * time.Second)
			waiting := true
			for waiting {
				select {
				case ev, ok := <-stream:
					if !ok {
						deadline.Stop()
						return WatchCoherence{}, fmt.Errorf("watch stream closed")
					}
					if ev.Type == dir.EventUpdate || ev.Type == dir.EventResync {
						lats.add(0, time.Since(issued))
						waiting = false
					}
				case <-deadline.C:
					return WatchCoherence{}, fmt.Errorf("no event for write %d", i)
				}
			}
			deadline.Stop()
		}
		rows, err := reader.List(bgCtx, hot, 0)
		if err != nil {
			return WatchCoherence{}, fmt.Errorf("hot read %d: %w", i, err)
		}
		if len(rows) < i+1 {
			res.StaleHotReads++
		}
		err = retryTransient(func() error {
			return reader.Append(bgCtx, scratch, fmt.Sprintf("p%04d", i), scratch, nil)
		})
		if err != nil {
			return WatchCoherence{}, fmt.Errorf("own append %d: %w", i, err)
		}
		// Nothing about the idle set changed; re-reading it should be
		// free. Count what the cache actually does.
		pre := reader.CacheStats()
		for _, d := range idle {
			if _, err := reader.List(bgCtx, d, 0); err != nil {
				return WatchCoherence{}, fmt.Errorf("idle read %d: %w", i, err)
			}
		}
		post := reader.CacheStats()
		res.IdleHits += post.Hits - pre.Hits
		res.IdleMisses += post.Misses - pre.Misses
	}
	if total := res.IdleHits + res.IdleMisses; total > 0 {
		res.IdleHitRate = float64(res.IdleHits) / float64(total)
	}
	res.DeliverP50, res.DeliverP99, _ = lats.percentiles()
	return res, nil
}
