// Durable-storage measurements: whole-shard recovery time under the
// three durability layouts (write-through, engine log replay, engine
// checkpoint + suffix) and the read-tier boost from readonly
// secondaries fed off the engine partitions.
package harness

import (
	"fmt"
	"sync"
	"time"

	faultdir "dirsvc"

	"dirsvc/internal/core"
	"dirsvc/internal/dirclient"
)

// PopulateDirs fills shard 0 with n working directories carrying one
// row each — the recovery workload: every directory is one object-table
// entry, one Bullet image, and (in engine deployments) two write-ahead
// records to replay.
func PopulateDirs(c *faultdir.Cluster, n int) error {
	client, cleanup, err := c.NewClient()
	if err != nil {
		return err
	}
	defer cleanup()
	for i := 0; i < n; i++ {
		d, err := client.CreateDirOn(bgCtx, 0)
		if err != nil {
			return fmt.Errorf("create dir %d: %w", i, err)
		}
		if err := retryTransient(func() error {
			return client.Append(bgCtx, d, "payload", d, nil)
		}); err != nil {
			return fmt.Errorf("fill dir %d: %w", i, err)
		}
	}
	return nil
}

// MeasureShardRecovery crashes every replica of shard 0 and times the
// concurrent whole-shard reboot — each replica's recovery loads its
// local durable state (object table, NVRAM replay, or engine
// checkpoint + log suffix, depending on the deployment), reassembles
// the group, and starts serving. If checkpoint is set, a synchronous
// engine checkpoint is cut first, so the measured recovery replays an
// empty log suffix; without it an engine deployment replays the full
// write-ahead log accumulated since boot.
func MeasureShardRecovery(c *faultdir.Cluster, checkpoint bool) (time.Duration, error) {
	if checkpoint {
		if err := c.CheckpointShard(0); err != nil {
			return 0, fmt.Errorf("checkpoint: %w", err)
		}
	}
	n := c.ServersPerShard()
	for id := 1; id <= n; id++ {
		c.CrashShardServer(0, id)
	}
	start := time.Now()
	errs := make(chan error, n)
	for id := 1; id <= n; id++ {
		go func(id int) { errs <- c.RestartShardServer(0, id) }(id)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			return 0, fmt.Errorf("restart: %w", err)
		}
	}
	return time.Since(start), nil
}

// SecondaryBoost is the measured effect of adding readonly secondaries
// to a shard's read tier.
type SecondaryBoost struct {
	Without        Throughput // balanced lookups, primaries only
	With           Throughput // same load after the secondaries joined
	Secondaries    int
	SecondaryReads uint64 // reads the secondaries served during With
}

// MeasureSecondaryBoost measures balanced read throughput on a
// DiskEngine deployment before and after boosting shard 0 with one
// readonly secondary per primary replica. The cluster must have
// Options.ReadBalance set so clients spread reads over every responder.
func MeasureSecondaryBoost(c *faultdir.Cluster, clients int, window time.Duration) (SecondaryBoost, error) {
	var boost SecondaryBoost
	without, err := measureFloorLookups(c, clients, window)
	if err != nil {
		return boost, fmt.Errorf("without secondaries: %w", err)
	}
	boost.Without = without

	// Secondaries need a checkpoint to install before they can serve.
	if err := c.CheckpointShard(0); err != nil {
		return boost, err
	}
	secs := make([]*core.Secondary, 0, c.ServersPerShard())
	for id := 1; id <= c.ServersPerShard(); id++ {
		sec, cleanup, err := c.StartSecondary(0, id)
		if err != nil {
			return boost, fmt.Errorf("secondary %d: %w", id, err)
		}
		defer cleanup()
		if err := sec.Refresh(); err != nil {
			return boost, fmt.Errorf("secondary %d refresh: %w", id, err)
		}
		secs = append(secs, sec)
	}
	boost.Secondaries = len(secs)

	with, err := measureFloorLookups(c, clients, window)
	if err != nil {
		return boost, fmt.Errorf("with secondaries: %w", err)
	}
	boost.With = with
	for _, s := range secs {
		boost.SecondaryReads += s.ReadsServed()
	}
	return boost, nil
}

// measureFloorLookups is MeasureLookupThroughput with causal-token
// handoff: every worker adopts the setup session's floor before its
// first read, so a readonly secondary that has not tailed up to the
// target row yet refuses (and the read fails over to a primary) rather
// than serving a stale miss.
func measureFloorLookups(c *faultdir.Cluster, clients int, window time.Duration) (Throughput, error) {
	client0, cleanup0, _, dir, err := setupBench(c)
	if err != nil {
		return Throughput{}, err
	}
	defer cleanup0()
	if err := client0.Append(bgCtx, dir, "target", dir, nil); err != nil {
		return Throughput{}, err
	}
	floor := client0.SessionFloor(0)

	counts := make([]int, clients)
	lats := newLatSamples(clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(window)
	for i := 0; i < clients; i++ {
		client, cleanup, err := c.NewClient()
		if err != nil {
			return Throughput{}, err
		}
		defer cleanup()
		client.AdoptFloor(0, floor)
		wg.Add(1)
		go func(i int, client *dirclient.Client) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				opStart := time.Now()
				err := retryTransient(func() error {
					_, lerr := client.Lookup(bgCtx, dir, "target")
					return lerr
				})
				if err != nil {
					errs <- err
					return
				}
				lats.add(i, time.Since(opStart))
				counts[i]++
			}
		}(i, client)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return Throughput{}, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	p50, p99, p999 := lats.percentiles()
	return Throughput{Clients: clients, OpsPerSec: float64(total) / elapsed.Seconds(), P50: p50, P99: p99, P999: p999}, nil
}
