package group

import (
	"fmt"
	"time"

	"dirsvc/internal/sim"
)

// ballotNodeBits is the width of the node-id field packed into the low
// bits of every reset epoch. Epochs form Paxos-style ballots
// (round, node): unique per coordinator, totally ordered, monotone.
const ballotNodeBits = 16

// ballotEpoch returns the smallest epoch this node may propose that is
// strictly greater than after.
func ballotEpoch(after uint64, node sim.NodeID) uint64 {
	round := (after >> ballotNodeBits) + 1
	return round<<ballotNodeBits | uint64(node)&(1<<ballotNodeBits-1)
}

// Reset rebuilds the group after a failure (paper Fig. 1: ResetGroup).
// The caller acts as coordinator: it invites all reachable members of the
// same group instance, and if at least minSize answer (including itself)
// it commits a new view whose sequencer is the member with the most
// complete message history, so no stabilized message is lost. Concurrent
// resets are resolved by proposal ordering — the highest (epoch, node)
// proposal wins and the losers adopt its commit.
//
// On success the member is back in StateNormal and the returned Info
// describes the new view. If no view of minSize could be assembled before
// the deadline, Reset returns ErrResetFailed with the best information it
// has; the member stays failed, and the application is expected to leave
// and run its recovery protocol (paper §3.2).
func (m *Member) Reset(minSize int) (Info, error) {
	if minSize < 1 {
		minSize = 1
	}
	deadline := time.Now().Add(16 * m.retryEvery)
	for time.Now().Before(deadline) {
		m.mu.Lock()
		switch {
		case m.closed:
			m.mu.Unlock()
			return Info{}, ErrClosed
		case m.state == StateLeft:
			m.mu.Unlock()
			return Info{}, ErrLeft
		case m.state == StateNormal && len(m.members) >= minSize:
			// Either our own commit below or another coordinator's
			// reset already rebuilt the group.
			info := m.infoLocked()
			m.mu.Unlock()
			return info, nil
		}

		// Become coordinator with a ballot above everything seen. The
		// low bits of the epoch carry our node id, so two coordinators
		// proposing concurrently can never mint the same epoch: their
		// commits are totally ordered, and a member stranded in the
		// losing view sees traffic from a strictly newer epoch and
		// fails over through the ordinary staleness checks.
		prev := m.epoch
		if m.curProposal.epoch > prev {
			prev = m.curProposal.epoch
		}
		propEpoch := ballotEpoch(prev, m.me)
		p := proposal{epoch: propEpoch, node: m.me}
		m.curProposal = p
		if m.state != StateResetting {
			m.state = StateResetting
		}
		m.resettingSince = time.Now()
		m.resetAcks = map[sim.NodeID]uint64{m.me: m.nextSeq - 1}
		invite := &wireMsg{kind: wireInvite, gid: m.gid, epoch: propEpoch, from: m.me}
		m.mu.Unlock()

		// Two invite rounds per proposal to ride out frame loss.
		for round := 0; round < 2; round++ {
			_ = m.stack.Multicast(m.cfg.Port, invite.encode())
			time.Sleep(m.ackWindow)
			m.mu.Lock()
			superseded := m.curProposal != p
			enough := len(m.resetAcks) >= minSize
			m.mu.Unlock()
			if superseded || enough {
				break
			}
		}

		m.mu.Lock()
		if m.curProposal != p {
			// A higher proposal took over; wait for its commit.
			m.waitLocked(time.Now().Add(m.ackWindow))
			m.mu.Unlock()
			continue
		}
		if len(m.resetAcks) < minSize {
			m.mu.Unlock()
			continue // next proposal round
		}

		// Commit: sequencer = member with the highest contiguous
		// sequence number (ties to the lowest id), so the new sequencer
		// owns every message that survives into the view.
		var (
			maxSeq uint64
			seqr   sim.NodeID = -1
		)
		for nd, s := range m.resetAcks {
			switch {
			case seqr == -1, s > maxSeq, s == maxSeq && nd < seqr:
				maxSeq = s
				seqr = nd
			}
		}
		commit := &wireMsg{
			kind:    wireCommit,
			gid:     m.gid,
			epoch:   p.epoch,
			from:    m.me,
			node:    seqr,
			seq2:    maxSeq,
			members: membersSorted(m.resetAcks),
		}
		m.resetAcks = nil
		// Install locally through the same path members use, then tell
		// everyone. epoch precondition holds: p.epoch > m.epoch.
		m.applyCommitLocked(commit)
		info := m.infoLocked()
		m.mu.Unlock()

		enc := commit.encode()
		_ = m.stack.Multicast(m.cfg.Port, enc)
		_ = m.stack.Multicast(m.cfg.Port, enc) // repeat for loss tolerance
		return info, nil
	}

	m.mu.Lock()
	if m.state == StateResetting {
		m.state = StateFailed
		m.cond.Broadcast()
	}
	info := m.infoLocked()
	m.mu.Unlock()
	return info, fmt.Errorf("assembled %d of %d members: %w", len(info.Members), minSize, ErrResetFailed)
}
