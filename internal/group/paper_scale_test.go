package group

import (
	"fmt"
	"testing"
	"time"

	"dirsvc/internal/capability"
	"dirsvc/internal/flip"
	"dirsvc/internal/sim"
)

func TestJoinOrCreateConvergesPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale timing test")
	}
	net := sim.NewNetwork(sim.PaperModel(), 1)
	cfg := Config{Port: capability.PortFromString("paper-joc"), Resilience: 2}
	var stacks []*flip.Stack
	for i := 0; i < 6; i++ {
		stacks = append(stacks, flip.NewStack(net.AddNode(fmt.Sprintf("n%d", i))))
	}
	results := make(chan *Member, 3)
	for _, idx := range []int{1, 3, 5} { // dir nodes in the cluster layout
		go func(s *flip.Stack) {
			m, err := JoinOrCreate(s, cfg)
			if err != nil {
				t.Errorf("JoinOrCreate: %v", err)
				results <- nil
				return
			}
			results <- m
		}(stacks[idx])
	}
	var members []*Member
	for i := 0; i < 3; i++ {
		m := <-results
		if m == nil {
			t.FailNow()
		}
		members = append(members, m)
	}
	defer func() {
		for _, m := range members {
			m.Close()
		}
		for _, s := range stacks {
			s.Close()
		}
	}()
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		gid := members[0].Info().GID
		for _, m := range members {
			info := m.Info()
			if info.GID != gid || len(info.Members) != 3 {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for _, m := range members {
				t.Logf("member %d: %+v", m.Me(), m.Info())
			}
			t.Fatal("no convergence at paper scale")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
