package group

import (
	"reflect"
	"testing"
	"testing/quick"

	"dirsvc/internal/sim"
)

func TestWireRoundTripAllKinds(t *testing.T) {
	tests := []*wireMsg{
		{kind: wireSendReq, gid: 7, from: 2, msgID: 9, ordKind: ordApp, payload: []byte("op")},
		{kind: wireOrd, gid: 7, epoch: 3, seq: 100, from: 1, msgID: 9, ordKind: ordJoin, node: 4},
		{kind: wireAccept, gid: 7, epoch: 3, seq: 100, from: 2},
		{kind: wireDone, gid: 7, seq: 100, msgID: 9, from: 0},
		{kind: wireWelcome, gid: 7, epoch: 3, seq: 55, from: 0, members: []sim.NodeID{0, 2, 4}},
		{kind: wireRetrans, gid: 7, epoch: 3, seq: 10, seq2: 20, from: 2},
		{kind: wireCommit, gid: 7, epoch: 4, from: 2, node: 0, seq2: 99, members: []sim.NodeID{0, 2}},
	}
	for _, in := range tests {
		got, err := decodeWire(in.encode())
		if err != nil {
			t.Fatalf("kind %d: %v", in.kind, err)
		}
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("kind %d round trip:\n got %+v\nwant %+v", in.kind, got, in)
		}
	}
}

func TestWireRejectsShortFrames(t *testing.T) {
	msg := &wireMsg{kind: wireOrd, gid: 1, seq: 5, payload: []byte("xyz")}
	raw := msg.encode()
	for cut := len(raw) - len(msg.payload) - 1; cut > 0; cut -= 7 {
		if _, err := decodeWire(raw[:cut]); err == nil {
			t.Fatalf("decoded truncated frame of %d bytes", cut)
		}
	}
}

func TestProposalOrdering(t *testing.T) {
	tests := []struct {
		p, q proposal
		less bool
	}{
		{proposal{1, 1}, proposal{2, 1}, true},
		{proposal{2, 1}, proposal{1, 1}, false},
		{proposal{2, 1}, proposal{2, 2}, true},
		{proposal{2, 2}, proposal{2, 2}, false},
	}
	for _, tt := range tests {
		if got := tt.p.less(tt.q); got != tt.less {
			t.Fatalf("%v.less(%v) = %v", tt.p, tt.q, got)
		}
	}
}

func TestQuickWireRoundTrip(t *testing.T) {
	f := func(kind uint8, gid, epoch, seq, seq2, msgID uint64, from, node uint32, ordKind uint8, payload []byte) bool {
		in := &wireMsg{
			kind:    kind,
			gid:     groupID(gid),
			epoch:   epoch,
			seq:     seq,
			seq2:    seq2,
			msgID:   msgID,
			from:    sim.NodeID(from),
			node:    sim.NodeID(node),
			ordKind: ordKind,
		}
		if len(payload) > 0 {
			in.payload = payload
		}
		got, err := decodeWire(in.encode())
		return err == nil && reflect.DeepEqual(got, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
