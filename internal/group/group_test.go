package group

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirsvc/internal/capability"
	"dirsvc/internal/flip"
	"dirsvc/internal/sim"
)

const testHeartbeat = 15 * time.Millisecond

func testConfig(r int) Config {
	return Config{
		Port:              capability.PortFromString("group-test"),
		Resilience:        r,
		HeartbeatInterval: testHeartbeat,
	}
}

// cluster is a set of group members on one simulated network.
type cluster struct {
	t       *testing.T
	net     *sim.Network
	stacks  []*flip.Stack
	members []*Member
}

// newCluster creates n members: the first creates the group, the rest join.
func newCluster(t *testing.T, n, resilience int) *cluster {
	t.Helper()
	c := &cluster{t: t, net: sim.NewNetwork(sim.FastModel(), 1)}
	cfg := testConfig(resilience)
	for i := 0; i < n; i++ {
		c.stacks = append(c.stacks, flip.NewStack(c.net.AddNode(fmt.Sprintf("m%d", i))))
	}
	first, err := Create(c.stacks[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.members = append(c.members, first)
	for i := 1; i < n; i++ {
		m, err := Join(c.stacks[i], cfg, 5*time.Second)
		if err != nil {
			t.Fatalf("member %d join: %v", i, err)
		}
		c.members = append(c.members, m)
	}
	// Drain the join events everywhere so tests start from a quiet state.
	for idx, m := range c.members {
		for {
			info := m.Info()
			if len(info.Members) == n && info.Delivered == info.Buffered && info.Buffered >= uint64(n-1) {
				break
			}
			if info.Buffered > info.Delivered {
				if _, err := m.Receive(); err != nil {
					t.Fatalf("member %d draining joins: %v", idx, err)
				}
				continue
			}
			time.Sleep(time.Millisecond)
		}
	}
	t.Cleanup(func() {
		for _, m := range c.members {
			m.Close()
		}
		for _, s := range c.stacks {
			s.Close()
		}
	})
	return c
}

// receiveApp receives messages until an application message arrives.
func receiveApp(t *testing.T, m *Member) Msg {
	t.Helper()
	for {
		msg, err := m.Receive()
		if err != nil {
			t.Fatalf("member %d Receive: %v", m.Me(), err)
		}
		if msg.Kind == KindApp {
			return msg
		}
	}
}

func TestCreateSingletonSendReceive(t *testing.T) {
	c := newCluster(t, 1, 0)
	m := c.members[0]
	seq, err := m.Send([]byte("solo"))
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	msg := receiveApp(t, m)
	if msg.Seq != seq || string(msg.Payload) != "solo" {
		t.Fatalf("got %+v, want seq %d", msg, seq)
	}
}

func TestAllMembersReceiveInOrder(t *testing.T) {
	c := newCluster(t, 3, 2)
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := c.members[i%3].Send([]byte{byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	var orders [3][]byte
	for mi, m := range c.members {
		for len(orders[mi]) < n {
			msg := receiveApp(t, m)
			orders[mi] = append(orders[mi], msg.Payload[0])
		}
	}
	if string(orders[0]) != string(orders[1]) || string(orders[1]) != string(orders[2]) {
		t.Fatalf("members disagree on order:\n%v\n%v\n%v", orders[0], orders[1], orders[2])
	}
}

// TestTotalOrderUnderConcurrency is the core safety property: concurrent
// senders from all members, every member sees the identical sequence.
func TestTotalOrderUnderConcurrency(t *testing.T) {
	c := newCluster(t, 3, 2)
	const perSender = 30

	var wg sync.WaitGroup
	for mi, m := range c.members {
		wg.Add(1)
		go func(mi int, m *Member) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				payload := []byte{byte(mi), byte(i)}
				if _, err := m.Send(payload); err != nil {
					t.Errorf("member %d send %d: %v", mi, i, err)
					return
				}
			}
		}(mi, m)
	}

	total := perSender * 3
	var orders [3][]string
	var rg sync.WaitGroup
	for mi, m := range c.members {
		rg.Add(1)
		go func(mi int, m *Member) {
			defer rg.Done()
			for len(orders[mi]) < total {
				msg, err := m.Receive()
				if err != nil {
					t.Errorf("member %d receive: %v", mi, err)
					return
				}
				if msg.Kind != KindApp {
					continue
				}
				orders[mi] = append(orders[mi], fmt.Sprintf("%d-%d@%d", msg.Payload[0], msg.Payload[1], msg.Seq))
			}
		}(mi, m)
	}
	wg.Wait()
	rg.Wait()

	for mi := 1; mi < 3; mi++ {
		if len(orders[mi]) != total {
			t.Fatalf("member %d received %d messages, want %d", mi, len(orders[mi]), total)
		}
		for i := range orders[0] {
			if orders[0][i] != orders[mi][i] {
				t.Fatalf("order diverges at %d: member0=%s member%d=%s", i, orders[0][i], mi, orders[mi][i])
			}
		}
	}
	// Per-sender FIFO: member k's messages must appear in send order.
	for mi := 0; mi < 3; mi++ {
		last := -1
		for _, s := range orders[0] {
			var sender, idx, seq int
			if _, err := fmt.Sscanf(s, "%d-%d@%d", &sender, &idx, &seq); err != nil {
				t.Fatal(err)
			}
			if sender != mi {
				continue
			}
			if idx != last+1 {
				t.Fatalf("sender %d messages out of FIFO order: %d after %d", mi, idx, last)
			}
			last = idx
		}
	}
}

func TestResilienceMessageCount(t *testing.T) {
	// SendToGroup with r=2 from a non-sequencer member costs 5 frames:
	// REQ, ORD multicast, 2 ACCEPTs, DONE (paper §3.1).
	c := newCluster(t, 3, 2)
	sender := c.members[1] // member 0 created the group and is sequencer
	if sender.Info().Sequencer == sender.Me() {
		t.Fatal("test setup: sender must not be the sequencer")
	}
	// Quiesce heartbeats interference by measuring quickly and often:
	// heartbeat frames are multicast ALIVEs; count only the delta beyond
	// them by repeating the measurement and taking the minimum.
	best := uint64(1 << 62)
	for try := 0; try < 5; try++ {
		before := c.net.Stats().FramesSent
		if _, err := sender.Send([]byte("count me")); err != nil {
			t.Fatal(err)
		}
		// Let the trailing ACCEPTs drain.
		time.Sleep(5 * time.Millisecond)
		delta := c.net.Stats().FramesSent - before
		if delta < best {
			best = delta
		}
	}
	if best != 5 {
		t.Fatalf("SendToGroup(r=2) used %d frames, want 5", best)
	}
}

func TestInfoBufferedAdvancesBeforeReceive(t *testing.T) {
	c := newCluster(t, 3, 2)
	m := c.members[1]
	before := m.Info()
	if _, err := c.members[2].Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	// After the sender's Send returned with r=2, every member has the
	// message buffered — GetInfoGroup must show it even though the
	// application has not called Receive yet (paper §3.1 read check).
	deadline := time.Now().Add(time.Second)
	for {
		info := m.Info()
		if info.Buffered > before.Buffered {
			if info.Delivered != before.Delivered {
				t.Fatal("Delivered advanced without Receive")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Buffered never advanced")
		}
		time.Sleep(time.Millisecond)
	}
	receiveApp(t, m)
	if info := m.Info(); info.Delivered != info.Buffered {
		t.Fatalf("after Receive: delivered %d, buffered %d", info.Delivered, info.Buffered)
	}
}

func TestJoinDeliversJoinEvent(t *testing.T) {
	c := newCluster(t, 2, 1)
	cfg := testConfig(1)
	stack := flip.NewStack(c.net.AddNode("joiner"))
	t.Cleanup(stack.Close)
	m3, err := Join(stack, cfg, 5*time.Second)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	t.Cleanup(m3.Close)

	msg, err := c.members[0].Receive()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != KindJoin || msg.Node != m3.Me() {
		t.Fatalf("got %+v, want join of %d", msg, m3.Me())
	}
	if got := len(c.members[0].Info().Members); got != 3 {
		t.Fatalf("member count = %d, want 3", got)
	}
	// The joiner receives messages sent after its join.
	if _, err := c.members[1].Send([]byte("hello new member")); err != nil {
		t.Fatal(err)
	}
	got := receiveApp(t, m3)
	if string(got.Payload) != "hello new member" {
		t.Fatalf("joiner got %q", got.Payload)
	}
}

func TestJoinNoGroup(t *testing.T) {
	net := sim.NewNetwork(sim.FastModel(), 1)
	stack := flip.NewStack(net.AddNode("lonely"))
	t.Cleanup(stack.Close)
	_, err := Join(stack, testConfig(0), 100*time.Millisecond)
	if !errors.Is(err, ErrNoGroup) {
		t.Fatalf("err = %v, want ErrNoGroup", err)
	}
}

func TestLeaveDeliversLeaveEvent(t *testing.T) {
	c := newCluster(t, 3, 1)
	leaver := c.members[2]
	if err := leaver.Leave(); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	msg, err := c.members[0].Receive()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != KindLeave || msg.Node != leaver.Me() {
		t.Fatalf("got %+v, want leave of %d", msg, leaver.Me())
	}
	if got := len(c.members[0].Info().Members); got != 2 {
		t.Fatalf("member count = %d, want 2", got)
	}
	// The remaining pair still functions.
	if _, err := c.members[1].Send([]byte("still here")); err != nil {
		t.Fatal(err)
	}
	receiveApp(t, c.members[0])
}

func TestMemberCrashDetectedAndReset(t *testing.T) {
	c := newCluster(t, 3, 2)
	// Crash a non-sequencer member.
	crashed := c.members[2]
	c.net.Node(crashed.Me()).Crash()

	// The survivors detect the failure via Receive.
	for _, m := range c.members[:2] {
		if _, err := m.Receive(); !errors.Is(err, ErrGroupFailure) {
			t.Fatalf("member %d: err = %v, want ErrGroupFailure", m.Me(), err)
		}
	}
	// Both survivors reset concurrently, as the paper's group threads do.
	var wg sync.WaitGroup
	for _, m := range c.members[:2] {
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			info, err := m.Reset(2)
			if err != nil {
				t.Errorf("member %d reset: %v", m.Me(), err)
				return
			}
			if len(info.Members) != 2 {
				t.Errorf("member %d: new view has %d members", m.Me(), len(info.Members))
			}
		}(m)
	}
	wg.Wait()

	// The pair must be able to send again.
	if _, err := c.members[0].Send([]byte("after reset")); err != nil {
		t.Fatalf("Send after reset: %v", err)
	}
	for _, m := range c.members[:2] {
		msg := receiveApp(t, m)
		if string(msg.Payload) != "after reset" {
			t.Fatalf("member %d got %q", m.Me(), msg.Payload)
		}
	}
}

func TestSequencerCrashNewSequencerTakesOver(t *testing.T) {
	c := newCluster(t, 3, 2)
	seqNode := c.members[0].Info().Sequencer

	// Send a few messages so there is history to inherit.
	for i := 0; i < 5; i++ {
		if _, err := c.members[1].Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var survivors []*Member
	for _, m := range c.members {
		if m.Me() == seqNode {
			c.net.Node(m.Me()).Crash()
		} else {
			survivors = append(survivors, m)
		}
	}

	for _, m := range survivors {
		drainUntilFailure(t, m)
	}
	var wg sync.WaitGroup
	for _, m := range survivors {
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			if _, err := m.Reset(2); err != nil {
				t.Errorf("reset: %v", err)
			}
		}(m)
	}
	wg.Wait()

	info := survivors[0].Info()
	if info.Sequencer == seqNode {
		t.Fatalf("sequencer still the crashed node %d", seqNode)
	}
	// All pre-crash messages plus new ones must deliver in one order.
	if _, err := survivors[1].Send([]byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	var got [2][]string
	for mi, m := range survivors {
		for {
			msg := receiveAppAllowingReset(t, m, 2)
			got[mi] = append(got[mi], string(msg.Payload))
			if string(msg.Payload) == "post-crash" {
				break
			}
		}
	}
	if len(got[0]) != len(got[1]) {
		t.Fatalf("different delivery counts: %v vs %v", got[0], got[1])
	}
	for i := range got[0] {
		if got[0][i] != got[1][i] {
			t.Fatalf("divergent order at %d: %v vs %v", i, got[0], got[1])
		}
	}
}

// drainUntilFailure consumes messages until ErrGroupFailure surfaces.
func drainUntilFailure(t *testing.T, m *Member) {
	t.Helper()
	for {
		_, err := m.Receive()
		if errors.Is(err, ErrGroupFailure) {
			return
		}
		if err != nil {
			t.Fatalf("member %d: %v", m.Me(), err)
		}
	}
}

// receiveAppAllowingReset receives the next app message, transparently
// resetting the group (to minSize) when failures surface.
func receiveAppAllowingReset(t *testing.T, m *Member, minSize int) Msg {
	t.Helper()
	for {
		msg, err := m.Receive()
		if errors.Is(err, ErrGroupFailure) {
			if _, err := m.Reset(minSize); err != nil {
				t.Fatalf("member %d reset: %v", m.Me(), err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("member %d: %v", m.Me(), err)
		}
		if msg.Kind == KindApp {
			return msg
		}
	}
}

func TestMinorityResetFails(t *testing.T) {
	c := newCluster(t, 3, 2)
	// Partition member 2 alone.
	lone := c.members[2]
	var rest []sim.NodeID
	for _, m := range c.members[:2] {
		rest = append(rest, m.Me())
	}
	c.net.Partition([]sim.NodeID{lone.Me()}, rest)

	drainUntilFailure(t, lone)
	if _, err := lone.Reset(2); !errors.Is(err, ErrResetFailed) {
		t.Fatalf("minority reset: err = %v, want ErrResetFailed", err)
	}

	// The majority side recovers fine.
	for _, m := range c.members[:2] {
		drainUntilFailure(t, m)
	}
	var wg sync.WaitGroup
	for _, m := range c.members[:2] {
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			if _, err := m.Reset(2); err != nil {
				t.Errorf("majority reset: %v", err)
			}
		}(m)
	}
	wg.Wait()
	if _, err := c.members[0].Send([]byte("majority lives")); err != nil {
		t.Fatal(err)
	}
}

func TestSendBlocksAcrossResetAndCompletes(t *testing.T) {
	c := newCluster(t, 3, 2)
	crashed := c.members[2]
	c.net.Node(crashed.Me()).Crash()

	// Start a send immediately; with the third member dead it cannot
	// reach r=2, so it must block until the reset and then complete
	// against the two-member view.
	sendDone := make(chan error, 1)
	go func() {
		_, err := c.members[1].Send([]byte("during failure"))
		sendDone <- err
	}()

	// Count every delivery of the message at member 0 — whether it
	// arrives before the failure is detected or after the reset.
	count := 0
	m := c.members[0]
	countUntilFailure := func() {
		for {
			msg, err := m.Receive()
			if errors.Is(err, ErrGroupFailure) {
				return
			}
			if err != nil {
				t.Fatalf("receive: %v", err)
			}
			if msg.Kind == KindApp && string(msg.Payload) == "during failure" {
				count++
			}
		}
	}
	countUntilFailure()
	drainUntilFailure(t, c.members[1])

	var wg sync.WaitGroup
	for _, mm := range c.members[:2] {
		wg.Add(1)
		go func(mm *Member) {
			defer wg.Done()
			if _, err := mm.Reset(2); err != nil {
				t.Errorf("reset: %v", err)
			}
		}(mm)
	}
	wg.Wait()

	select {
	case err := <-sendDone:
		if err != nil {
			t.Fatalf("send across reset: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("send never completed after reset")
	}
	// Drain whatever is still queued at member 0.
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		info := m.Info()
		if info.Delivered >= info.Buffered {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		msg, err := m.Receive()
		if err != nil {
			t.Fatalf("post-reset receive: %v", err)
		}
		if msg.Kind == KindApp && string(msg.Payload) == "during failure" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("message delivered %d times, want exactly 1", count)
	}
}

func TestLossyNetworkMaintainsTotalOrder(t *testing.T) {
	c := newCluster(t, 3, 2)
	c.net.SetDropRate(0.05)

	const n = 30
	// Each member runs a "group thread" that receives app messages and
	// transparently resets on failures, mirroring the paper's Fig. 5
	// structure. It exits only when the member is closed.
	appMsgs := make([]chan byte, 3)
	for mi, m := range c.members {
		appMsgs[mi] = make(chan byte, n)
		go func(m *Member, out chan<- byte) {
			for {
				msg, err := m.Receive()
				if errors.Is(err, ErrGroupFailure) {
					_, _ = m.Reset(3) // retried via the next failure if it misfires
					continue
				}
				if err != nil {
					return // closed at test end
				}
				if msg.Kind == KindApp {
					out <- msg.Payload[0]
				}
			}
		}(m, appMsgs[mi])
	}

	sendErrs := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if _, err := c.members[i%3].Send([]byte{byte(i)}); err != nil {
				sendErrs <- fmt.Errorf("send %d: %w", i, err)
				return
			}
		}
		sendErrs <- nil
	}()

	var orders [3][]byte
	for mi := range c.members {
		for len(orders[mi]) < n {
			select {
			case b := <-appMsgs[mi]:
				orders[mi] = append(orders[mi], b)
			case <-time.After(30 * time.Second):
				t.Fatalf("member %d stalled at %d/%d messages", mi, len(orders[mi]), n)
			}
		}
	}
	if err := <-sendErrs; err != nil {
		t.Fatal(err)
	}
	c.net.SetDropRate(0)
	if string(orders[0]) != string(orders[1]) || string(orders[1]) != string(orders[2]) {
		t.Fatalf("divergent orders under loss:\n%v\n%v\n%v", orders[0], orders[1], orders[2])
	}
}

func TestJoinOrCreateConverges(t *testing.T) {
	net := sim.NewNetwork(sim.FastModel(), 1)
	cfg := testConfig(1)
	var stacks []*flip.Stack
	for i := 0; i < 3; i++ {
		stacks = append(stacks, flip.NewStack(net.AddNode(fmt.Sprintf("s%d", i))))
	}
	results := make(chan *Member, 3)
	for _, s := range stacks {
		go func(s *flip.Stack) {
			m, err := JoinOrCreate(s, cfg)
			if err != nil {
				t.Errorf("JoinOrCreate: %v", err)
				results <- nil
				return
			}
			results <- m
		}(s)
	}
	var members []*Member
	for i := 0; i < 3; i++ {
		m := <-results
		if m == nil {
			t.FailNow()
		}
		members = append(members, m)
	}
	t.Cleanup(func() {
		for _, m := range members {
			m.Close()
		}
		for _, s := range stacks {
			s.Close()
		}
	})
	// All three must have landed in one group of three.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok := true
		gid := members[0].Info().GID
		for _, m := range members {
			info := m.Info()
			if info.GID != gid || len(info.Members) != 3 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			for _, m := range members {
				t.Logf("member %d: %+v", m.Me(), m.Info())
			}
			t.Fatal("JoinOrCreate did not converge to one group of 3")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestResilienceZeroStillOrders(t *testing.T) {
	c := newCluster(t, 3, 0)
	for i := 0; i < 10; i++ {
		if _, err := c.members[i%3].Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var first []byte
	for mi, m := range c.members {
		var got []byte
		for len(got) < 10 {
			got = append(got, receiveApp(t, m).Payload[0])
		}
		if mi == 0 {
			first = got
		} else if string(got) != string(first) {
			t.Fatalf("order diverges with r=0")
		}
	}
}

func TestCloseUnblocksReceiveAndSend(t *testing.T) {
	c := newCluster(t, 2, 1)
	m := c.members[1]
	recvErr := make(chan error, 1)
	go func() {
		_, err := m.Receive()
		recvErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	m.Close()
	select {
	case err := <-recvErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Receive after close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Receive did not unblock on Close")
	}
	if _, err := m.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close: %v", err)
	}
}
