package group

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dirsvc/internal/sim"
)

// Wire message kinds.
const (
	wireSendReq  = 1  // member → sequencer: please sequence this payload
	wireOrd      = 2  // sequencer → multicast: sequenced message
	wireAccept   = 3  // member → sequencer: I buffered ORD seq
	wireDone     = 4  // sequencer → sender: resilience degree satisfied
	wireJoinReq  = 5  // joiner → multicast: who runs this group?
	wireWelcome  = 6  // sequencer → joiner: group state snapshot
	wireRetrans  = 7  // member → sequencer: resend seqs [from, to]
	wireAlive    = 8  // member → multicast: heartbeat
	wireInvite   = 9  // reset coordinator → multicast: reset proposal
	wireResetAck = 10 // member → coordinator: proposal accepted
	wireCommit   = 11 // coordinator → multicast: new view
	wireLeave    = 12 // member → sequencer: sequence my departure
)

// Payload kinds inside ORD messages.
const (
	ordApp   = 1
	ordJoin  = 2
	ordLeave = 3
)

// groupID distinguishes independent incarnations of a group on the same
// port (e.g. two groups created on both sides of a partition). Messages
// carrying a foreign groupID are ignored.
type groupID uint64

// proposal orders concurrent resets: higher epoch wins, ties broken by
// node id.
type proposal struct {
	epoch uint64
	node  sim.NodeID
}

func (p proposal) less(q proposal) bool {
	if p.epoch != q.epoch {
		return p.epoch < q.epoch
	}
	return p.node < q.node
}

// wireMsg is the decoded form of every group protocol message. Unused
// fields are zero.
type wireMsg struct {
	kind    byte
	gid     groupID
	epoch   uint64
	seq     uint64 // ORD/ACCEPT: sequence number; WELCOME: join seq
	from    sim.NodeID
	msgID   uint64 // SEND_REQ/ORD/DONE: per-sender id for dedup
	ordKind byte   // ORD: app/join/leave
	node    sim.NodeID
	seq2    uint64       // RETRANS: end of range; COMMIT: maxSeq
	members []sim.NodeID // WELCOME/COMMIT
	payload []byte
}

var errShortMsg = errors.New("group: short message")

func (m *wireMsg) encode() []byte {
	buf := make([]byte, 0, 64+len(m.payload))
	buf = append(buf, m.kind)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.gid))
	buf = binary.BigEndian.AppendUint64(buf, m.epoch)
	buf = binary.BigEndian.AppendUint64(buf, m.seq)
	buf = binary.BigEndian.AppendUint64(buf, m.seq2)
	buf = binary.BigEndian.AppendUint64(buf, m.msgID)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.from))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.node))
	buf = append(buf, m.ordKind)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.members)))
	for _, nd := range m.members {
		buf = binary.BigEndian.AppendUint32(buf, uint32(nd))
	}
	buf = append(buf, m.payload...)
	return buf
}

const wireFixed = 1 + 8 + 8 + 8 + 8 + 8 + 4 + 4 + 1 + 2

func decodeWire(buf []byte) (*wireMsg, error) {
	if len(buf) < wireFixed {
		return nil, errShortMsg
	}
	m := &wireMsg{
		kind:    buf[0],
		gid:     groupID(binary.BigEndian.Uint64(buf[1:9])),
		epoch:   binary.BigEndian.Uint64(buf[9:17]),
		seq:     binary.BigEndian.Uint64(buf[17:25]),
		seq2:    binary.BigEndian.Uint64(buf[25:33]),
		msgID:   binary.BigEndian.Uint64(buf[33:41]),
		from:    sim.NodeID(binary.BigEndian.Uint32(buf[41:45])),
		node:    sim.NodeID(binary.BigEndian.Uint32(buf[45:49])),
		ordKind: buf[49],
	}
	n := int(binary.BigEndian.Uint16(buf[50:52]))
	off := wireFixed
	if len(buf) < off+4*n {
		return nil, fmt.Errorf("members: %w", errShortMsg)
	}
	if n > 0 {
		m.members = make([]sim.NodeID, n)
		for i := 0; i < n; i++ {
			m.members[i] = sim.NodeID(binary.BigEndian.Uint32(buf[off : off+4]))
			off += 4
		}
	}
	if off < len(buf) {
		m.payload = buf[off:]
	}
	return m, nil
}
