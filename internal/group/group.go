// Package group implements Amoeba's reliable, totally-ordered group
// communication (Kaashoek & Tanenbaum, ICDCS 1991) on top of the FLIP
// layer — the substrate the paper's directory service is built on.
//
// The mapping to the paper's Fig. 1 primitives:
//
//	CreateGroup      → Create
//	JoinGroup        → Join (or JoinOrCreate)
//	LeaveGroup       → Member.Leave
//	SendToGroup      → Member.Send
//	ReceiveFromGroup → Member.Receive
//	ResetGroup       → Member.Reset
//	GetInfoGroup     → Member.Info
//
// Total order comes from a sequencer (the PB method): a member sends its
// message point-to-point to the sequencer, which assigns the next sequence
// number and multicasts it to the group in a single Ethernet frame. With
// resilience degree r, Send returns only once the sequencer has collected
// ACCEPTs from r members besides itself, so the message survives r
// processor failures. For a triplicated service with r = 2 this costs five
// messages — REQUEST, ORD multicast, two ACCEPTs, DONE — matching the
// paper's §3.1 count.
//
// All protocol bookkeeping runs synchronously in the FLIP dispatcher (the
// analogue of Amoeba's kernel processing packets at interrupt time), so
// Info's buffered sequence number is always current with respect to
// frames that arrived earlier — the property the directory service's read
// protocol depends on.
package group

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dirsvc/internal/capability"
	"dirsvc/internal/flip"
	"dirsvc/internal/sim"
)

// groupDebug enables protocol tracing (GROUP_DEBUG=1).
var groupDebug = os.Getenv("GROUP_DEBUG") != ""

func gtrace(format string, args ...any) {
	if groupDebug {
		fmt.Printf("group: "+format+"\n", args...)
	}
}

var (
	// ErrGroupFailure is returned by Receive and Send when a member
	// failure (or a newer view) has been detected; the application must
	// call Reset (paper Fig. 5).
	ErrGroupFailure = errors.New("group: member failure detected")
	// ErrResetFailed is returned by Reset when no view of the required
	// minimum size could be assembled (paper: minority after partition).
	ErrResetFailed = errors.New("group: reset could not assemble minimum group")
	// ErrNoGroup is returned by Join when no sequencer answered.
	ErrNoGroup = errors.New("group: no existing group found")
	// ErrLeft is returned after the member has left the group.
	ErrLeft = errors.New("group: member has left the group")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("group: closed")
)

// State of a member's view of the group.
type State int

// Member states.
const (
	StateJoining State = iota + 1
	StateNormal
	StateResetting
	StateFailed
	StateLeft
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateJoining:
		return "joining"
	case StateNormal:
		return "normal"
	case StateResetting:
		return "resetting"
	case StateFailed:
		return "failed"
	case StateLeft:
		return "left"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// MsgKind classifies messages delivered by Receive.
type MsgKind int

// Delivered message kinds. Join and Leave are membership changes woven
// into the total order.
const (
	KindApp MsgKind = iota + 1
	KindJoin
	KindLeave
)

// Msg is one message delivered in the group's total order.
type Msg struct {
	Seq     uint64
	Kind    MsgKind
	Sender  sim.NodeID // originating member
	Node    sim.NodeID // KindJoin/KindLeave: the member joining/leaving
	Payload []byte     // KindApp only
}

// Info is a snapshot of the member's group state (GetInfoGroup).
type Info struct {
	GID       uint64
	Epoch     uint64
	State     State
	Members   []sim.NodeID
	Sequencer sim.NodeID
	// Buffered is the highest sequence number received contiguously by
	// this member's kernel — including messages the application has not
	// yet consumed via Receive. The paper's read protocol compares this
	// against the application's applied counter (§3.1).
	Buffered uint64
	// Delivered is the sequence number of the last message handed to the
	// application by Receive.
	Delivered uint64
}

// Config parameterizes a group member.
type Config struct {
	// Port identifies the group; all members use the same port.
	Port capability.Port
	// Resilience is the degree r: Send returns only after r members
	// besides the sequencer hold the message (capped at group size - 1).
	Resilience int
	// HeartbeatInterval overrides the failure-detection base period
	// (default derived from the latency model).
	HeartbeatInterval time.Duration
}

var gidCounter atomic.Uint64

// doneState tracks resilience acknowledgements for one sequenced message.
type doneState struct {
	sender   sim.NodeID
	msgID    uint64
	needed   int
	acked    map[sim.NodeID]bool
	doneSent bool
}

// sendWait is one outstanding Send call.
type sendWait struct {
	ch chan uint64 // receives the assigned seq when the send commits
}

// Member is one process's membership in a group.
type Member struct {
	stack    *flip.Stack
	cfg      Config
	me       sim.NodeID
	model    *sim.LatencyModel
	listener *flip.Listener

	// Failure-detection and retry periods, all multiples of the base
	// heartbeat so they stay consistent at any latency scale.
	heartbeat   time.Duration
	failTimeout time.Duration
	retryEvery  time.Duration
	ackWindow   time.Duration

	mu   sync.Mutex
	cond *sync.Cond

	state     State
	gid       groupID
	epoch     uint64
	members   []sim.NodeID
	sequencer sim.NodeID

	nextSeq   uint64 // next sequence number expected in order
	delivered uint64
	queue     []Msg
	pending   map[uint64]*wireMsg // out-of-order ORDs

	// Sequencer / supplier state. Every member maintains history and the
	// sequenced table so that any member can take over as sequencer
	// after a reset.
	history     map[uint64]*wireMsg
	histLo      uint64
	seqCounter  uint64
	pendingDone map[uint64]*doneState
	sequenced   map[sim.NodeID]map[uint64]uint64 // sender → msgID → seq
	syncedSeq   uint64                           // seqs ≤ syncedSeq are at all members (last reset)

	msgCounter uint64
	waiting    map[uint64]*sendWait

	lastSeen      map[sim.NodeID]time.Time
	lastRetransAt time.Time

	curProposal    proposal
	resetAcks      map[sim.NodeID]uint64
	resettingSince time.Time

	closed bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// Create creates a new group with this process as its only member and
// sequencer (paper Fig. 1: CreateGroup).
func Create(stack *flip.Stack, cfg Config) (*Member, error) {
	m, err := newMember(stack, cfg)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.gid = newGID(m.me)
	m.epoch = 1
	m.members = []sim.NodeID{m.me}
	m.sequencer = m.me
	m.state = StateNormal
	m.curProposal = proposal{epoch: 1, node: m.me}
	m.mu.Unlock()
	m.start()
	return m, nil
}

// Join joins an existing group on cfg.Port, retrying the join request
// until timeout (paper Fig. 1: JoinGroup). It returns ErrNoGroup when no
// sequencer answered.
func Join(stack *flip.Stack, cfg Config, timeout time.Duration) (*Member, error) {
	m, err := newMember(stack, cfg)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.state = StateJoining
	m.mu.Unlock()

	deadline := time.Now().Add(timeout)
	for {
		req := &wireMsg{kind: wireJoinReq, from: m.me}
		if err := m.stack.Multicast(m.cfg.Port, req.encode()); err != nil {
			m.destroy()
			return nil, err
		}
		m.mu.Lock()
		windowEnd := time.Now().Add(m.ackWindow)
		for m.state == StateJoining && time.Now().Before(windowEnd) {
			m.waitLocked(windowEnd)
		}
		joined := m.state == StateNormal
		m.mu.Unlock()
		if joined {
			m.start()
			return m, nil
		}
		if !time.Now().Before(deadline) {
			m.destroy()
			return nil, ErrNoGroup
		}
	}
}

// JoinOrCreate joins the group if one exists, otherwise creates it. To
// avoid dueling creators after a total failure, a member delays its
// creation candidacy in proportion to its node id: the lowest-numbered
// reachable server creates, everyone else finds it.
func JoinOrCreate(stack *flip.Stack, cfg Config) (*Member, error) {
	model := stack.Model()
	base := heartbeatFor(model, cfg)
	joinWait := 2*base + time.Duration(stack.Node().ID())*base
	if m, err := Join(stack, cfg, joinWait); err == nil {
		return m, nil
	} else if !errors.Is(err, ErrNoGroup) {
		return nil, err
	}
	return Create(stack, cfg)
}

func newMember(stack *flip.Stack, cfg Config) (*Member, error) {
	if cfg.Port.IsZero() {
		return nil, errors.New("group: config must name a port")
	}
	if cfg.Resilience < 0 {
		return nil, errors.New("group: negative resilience degree")
	}
	model := stack.Model()
	base := heartbeatFor(model, cfg)
	m := &Member{
		stack:       stack,
		cfg:         cfg,
		me:          stack.Node().ID(),
		model:       model,
		heartbeat:   base,
		failTimeout: 6 * base,
		retryEvery:  3 * base,
		ackWindow:   2 * base,
		nextSeq:     1, // sequence numbers start at 1; Buffered = nextSeq-1
		pending:     make(map[uint64]*wireMsg),
		history:     make(map[uint64]*wireMsg),
		pendingDone: make(map[uint64]*doneState),
		sequenced:   make(map[sim.NodeID]map[uint64]uint64),
		waiting:     make(map[uint64]*sendWait),
		lastSeen:    make(map[sim.NodeID]time.Time),
		stop:        make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	l, err := stack.RegisterFunc(cfg.Port, m.handle)
	if err != nil {
		return nil, fmt.Errorf("group: %w", err)
	}
	m.listener = l
	return m, nil
}

func heartbeatFor(model *sim.LatencyModel, cfg Config) time.Duration {
	if cfg.HeartbeatInterval > 0 {
		return cfg.HeartbeatInterval
	}
	base := model.Timeout(150 * time.Millisecond)
	if base < 15*time.Millisecond {
		base = 15 * time.Millisecond
	}
	return base
}

func newGID(node sim.NodeID) groupID {
	return groupID(uint64(node)<<40 | gidCounter.Add(1))
}

// start launches the heartbeat/failure-detection loop.
func (m *Member) start() {
	m.mu.Lock()
	now := time.Now()
	for _, nd := range m.members {
		m.lastSeen[nd] = now
	}
	m.mu.Unlock()
	m.wg.Add(1)
	go m.heartbeatLoop()
}

// destroy releases resources of a member that never became operational.
func (m *Member) destroy() {
	m.listener.Close()
	m.mu.Lock()
	m.closed = true
	m.state = StateLeft
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Close shuts the member down without the leave protocol (process death).
func (m *Member) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.state = StateLeft
	close(m.stop)
	m.cond.Broadcast()
	m.mu.Unlock()
	m.listener.Close()
	m.wg.Wait()
}

// Me returns this member's node id.
func (m *Member) Me() sim.NodeID { return m.me }

// Info returns a snapshot of the group state (paper Fig. 1: GetInfoGroup).
func (m *Member) Info() Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.infoLocked()
}

func (m *Member) infoLocked() Info {
	members := make([]sim.NodeID, len(m.members))
	copy(members, m.members)
	return Info{
		GID:       uint64(m.gid),
		Epoch:     m.epoch,
		State:     m.state,
		Members:   members,
		Sequencer: m.sequencer,
		Buffered:  m.nextSeq - 1,
		Delivered: m.delivered,
	}
}

// Receive blocks until the next message in the total order is available
// (paper Fig. 1: ReceiveFromGroup). It returns ErrGroupFailure as soon as
// a failure is detected, even if ordered messages remain queued; after a
// successful Reset the queued messages are delivered.
func (m *Member) Receive() (Msg, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		switch m.state {
		case StateFailed:
			return Msg{}, ErrGroupFailure
		case StateLeft:
			if m.closed {
				return Msg{}, ErrClosed
			}
			return Msg{}, ErrLeft
		}
		if len(m.queue) > 0 && m.state == StateNormal {
			msg := m.queue[0]
			m.queue = m.queue[1:]
			m.delivered = msg.Seq
			return msg, nil
		}
		m.cond.Wait()
	}
}

// Send multicasts payload to the group in total order (paper Fig. 1:
// SendToGroup). It returns the assigned sequence number once the
// configured resilience degree is satisfied. During failures it blocks
// until the group is reset (by the application's group thread) and then
// completes against the new view.
func (m *Member) Send(payload []byte) (uint64, error) {
	m.mu.Lock()
	if m.state == StateLeft {
		err := ErrLeft
		if m.closed {
			err = ErrClosed
		}
		m.mu.Unlock()
		return 0, err
	}
	m.msgCounter++
	msgID := m.msgCounter
	w := &sendWait{ch: make(chan uint64, 1)}
	m.waiting[msgID] = w
	m.mu.Unlock()

	defer func() {
		m.mu.Lock()
		delete(m.waiting, msgID)
		m.mu.Unlock()
	}()

	for {
		m.mu.Lock()
		state := m.state
		seqNode := m.sequencer
		m.mu.Unlock()
		switch state {
		case StateLeft:
			return 0, ErrLeft
		case StateNormal:
			req := &wireMsg{
				kind:    wireSendReq,
				gid:     m.gidSnapshot(),
				from:    m.me,
				msgID:   msgID,
				ordKind: ordApp,
				payload: payload,
			}
			if seqNode == m.me {
				m.mu.Lock()
				m.sequencerHandleSendLocked(req)
				m.mu.Unlock()
			} else if err := m.stack.Send(seqNode, m.cfg.Port, req.encode()); err != nil {
				return 0, err
			}
		}
		// Wait for the DONE (or a state change that warrants a resend).
		timer := time.NewTimer(m.retryEvery)
		select {
		case seq := <-w.ch:
			timer.Stop()
			return seq, nil
		case <-m.stop:
			timer.Stop()
			return 0, ErrClosed
		case <-timer.C:
		}
	}
}

func (m *Member) gidSnapshot() groupID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gid
}

// Leave removes this member from the group via a sequenced leave message
// (paper Fig. 1: LeaveGroup), then shuts the member down.
func (m *Member) Leave() error {
	deadline := time.Now().Add(10 * m.retryEvery)
	for time.Now().Before(deadline) {
		m.mu.Lock()
		if m.state == StateLeft {
			m.mu.Unlock()
			m.Close()
			return nil
		}
		state := m.state
		seqNode := m.sequencer
		single := len(m.members) <= 1
		m.mu.Unlock()

		if state == StateNormal {
			if single || seqNode == m.me {
				// Last member (or the sequencer itself): dissolve. A
				// leaving sequencer hands the group over by sequencing
				// its own leave below; a singleton simply vanishes.
				req := &wireMsg{kind: wireLeave, gid: m.gidSnapshot(), from: m.me, node: m.me}
				m.mu.Lock()
				if m.sequencer == m.me {
					m.sequencerHandleLeaveLocked(req)
				}
				if single {
					m.state = StateLeft
					m.cond.Broadcast()
				}
				m.mu.Unlock()
			} else {
				req := &wireMsg{kind: wireLeave, gid: m.gidSnapshot(), from: m.me, node: m.me}
				_ = m.stack.Send(seqNode, m.cfg.Port, req.encode())
			}
		}
		m.mu.Lock()
		windowEnd := time.Now().Add(m.retryEvery)
		for m.state != StateLeft && time.Now().Before(windowEnd) {
			m.waitLocked(windowEnd)
		}
		left := m.state == StateLeft
		m.mu.Unlock()
		if left {
			m.Close()
			return nil
		}
	}
	// Could not get the leave sequenced (e.g. group failed): force.
	m.Close()
	return nil
}

// waitLocked briefly releases the lock so a state change can land, waking
// up no later than deadline. Join/Leave/Reset use this for their timed
// waits; the hot paths (Send, Receive) use the condition variable.
func (m *Member) waitLocked(deadline time.Time) {
	remain := time.Until(deadline)
	if remain <= 0 {
		return
	}
	nap := 2 * time.Millisecond
	if remain < nap {
		nap = remain
	}
	m.mu.Unlock()
	time.Sleep(nap)
	m.mu.Lock()
}

// heartbeatLoop multicasts liveness and detects member failures.
func (m *Member) heartbeatLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		m.mu.Lock()
		if m.state == StateResetting && !m.resettingSince.IsZero() &&
			time.Since(m.resettingSince) > 8*m.ackWindow {
			// The coordinator that invited us died mid-reset: report a
			// failure so the application initiates its own reset.
			m.state = StateFailed
			m.resettingSince = time.Time{}
			m.cond.Broadcast()
		}
		if m.state != StateNormal {
			m.mu.Unlock()
			continue
		}
		alive := &wireMsg{
			kind:  wireAlive,
			gid:   m.gid,
			epoch: m.epoch,
			seq:   m.nextSeq - 1,
			from:  m.me,
		}
		now := time.Now()
		m.lastSeen[m.me] = now
		var suspect sim.NodeID = -1
		for _, nd := range m.members {
			if nd == m.me {
				continue
			}
			seen, ok := m.lastSeen[nd]
			if !ok {
				m.lastSeen[nd] = now
				continue
			}
			if now.Sub(seen) > m.failTimeout {
				suspect = nd
				break
			}
		}
		if suspect >= 0 {
			m.failLocked(fmt.Sprintf("member %d silent for %v", suspect, m.failTimeout))
			m.mu.Unlock()
			continue
		}
		m.mu.Unlock()
		_ = m.stack.Multicast(m.cfg.Port, alive.encode())
	}
}

// failLocked transitions to the failed state; Receive and Reset take over.
func (m *Member) failLocked(reason string) {
	if m.state != StateNormal {
		return
	}
	m.state = StateFailed
	m.cond.Broadcast()
	gtrace("node %d gid=%x epoch=%d FAIL: %s", m.me, uint64(m.gid), m.epoch, reason)
}

// membersSorted returns a sorted copy.
func membersSorted(in map[sim.NodeID]uint64) []sim.NodeID {
	out := make([]sim.NodeID, 0, len(in))
	for nd := range in {
		out = append(out, nd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func contains(list []sim.NodeID, nd sim.NodeID) bool {
	for _, x := range list {
		if x == nd {
			return true
		}
	}
	return false
}
