package group

import (
	"sort"
	"time"

	"dirsvc/internal/flip"
	"dirsvc/internal/sim"
)

// historyWindow bounds how many sequenced messages every member retains
// for retransmission and sequencer takeover.
const historyWindow = 8192

// retransBatch caps the number of messages answered per retransmission
// request.
const retransBatch = 512

// handle processes one group protocol message. It runs synchronously in
// the FLIP dispatcher of this node (the analogue of Amoeba's kernel
// protocol processing), so it must never block on the network or sleep.
func (m *Member) handle(fm flip.Msg) {
	w, err := decodeWire(fm.Payload)
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.state == StateLeft {
		return
	}

	// Join requests carry no group id (the joiner does not know it yet);
	// welcomes establish it. Everything else must match our instance.
	switch w.kind {
	case wireJoinReq:
		if m.state == StateNormal && m.sequencer == m.me {
			m.sequencerHandleJoinLocked(w)
		}
		return
	case wireWelcome:
		m.handleWelcomeLocked(w)
		return
	}
	if w.gid != m.gid || m.state == StateJoining {
		return
	}

	switch w.kind {
	case wireSendReq:
		if m.state == StateNormal && m.sequencer == m.me {
			m.sequencerHandleSendLocked(w)
		}
	case wireOrd:
		m.handleOrdLocked(w)
	case wireAccept:
		m.handleAcceptLocked(w)
	case wireDone:
		m.handleDoneLocked(w)
	case wireLeave:
		if m.state == StateNormal && m.sequencer == m.me {
			m.sequencerHandleLeaveLocked(w)
		}
	case wireRetrans:
		m.handleRetransLocked(w)
	case wireAlive:
		m.handleAliveLocked(w)
	case wireInvite:
		m.handleInviteLocked(w)
	case wireResetAck:
		m.handleResetAckLocked(w)
	case wireCommit:
		m.applyCommitLocked(w)
	}
}

// sequencerHandleSendLocked assigns the next sequence number to a send
// request and multicasts it (the PB method). Duplicate requests (sender
// retries) are answered from the sequenced table.
func (m *Member) sequencerHandleSendLocked(w *wireMsg) {
	if !contains(m.members, w.from) {
		return
	}
	if seqs := m.sequenced[w.from]; seqs != nil {
		if s, dup := seqs[w.msgID]; dup {
			m.answerDuplicateLocked(w, s)
			return
		}
	}
	m.seqCounter++
	s := m.seqCounter
	ord := &wireMsg{
		kind:    wireOrd,
		gid:     m.gid,
		epoch:   m.epoch,
		seq:     s,
		from:    w.from,
		msgID:   w.msgID,
		ordKind: w.ordKind,
		node:    w.node,
		payload: w.payload,
	}
	needed := m.cfg.Resilience
	if max := len(m.members) - 1; needed > max {
		needed = max
	}
	m.pendingDone[s] = &doneState{
		sender: w.from,
		msgID:  w.msgID,
		needed: needed,
		acked:  make(map[sim.NodeID]bool),
	}
	_ = m.stack.Multicast(m.cfg.Port, ord.encode())
	m.processOrdLocked(ord) // multicast does not loop back
	if needed == 0 {
		m.sendDoneLocked(s)
	}
}

// answerDuplicateLocked handles a retried send request whose message was
// already sequenced at seq s.
func (m *Member) answerDuplicateLocked(w *wireMsg, s uint64) {
	if s <= m.syncedSeq {
		// Stabilized across a reset: every member of the view has it.
		m.replyDoneLocked(w.from, w.msgID, s)
		return
	}
	pd := m.pendingDone[s]
	if pd == nil || pd.doneSent {
		m.replyDoneLocked(w.from, w.msgID, s)
		return
	}
	// Still waiting for ACCEPTs: some may have been lost. Re-send the
	// ORD to members that have not acknowledged; their duplicate
	// handling re-ACCEPTs.
	if ord := m.history[s]; ord != nil {
		enc := ord.encode()
		for _, nd := range m.members {
			if nd != m.me && !pd.acked[nd] {
				_ = m.stack.Send(nd, m.cfg.Port, enc)
			}
		}
	}
}

// handleOrdLocked buffers a sequenced message and delivers everything
// that has become contiguous.
func (m *Member) handleOrdLocked(w *wireMsg) {
	if w.epoch > m.epoch {
		// We missed a view change; the application must reset.
		m.failLocked("saw ord from newer epoch")
		return
	}
	if w.epoch < m.epoch && w.seq > m.syncedSeq {
		// Stale traffic from a superseded view that did not survive the
		// reset: ignore it (messages ≤ syncedSeq were carried over).
		return
	}
	if w.seq < m.nextSeq {
		// Duplicate of something already processed: the sequencer may
		// have lost our ACCEPT, so acknowledge again.
		m.acceptLocked(w.seq)
		return
	}
	if _, dup := m.pending[w.seq]; !dup {
		m.pending[w.seq] = w
	}
	m.acceptLocked(w.seq)
	m.drainPendingLocked()
	if w.seq >= m.nextSeq && m.pending[m.nextSeq] == nil {
		m.maybeRequestRetransLocked(w.seq - 1)
	}
}

// acceptLocked acknowledges receipt of seq to the sequencer.
func (m *Member) acceptLocked(seq uint64) {
	if m.sequencer == m.me {
		return
	}
	acc := &wireMsg{kind: wireAccept, gid: m.gid, epoch: m.epoch, seq: seq, from: m.me}
	_ = m.stack.Send(m.sequencer, m.cfg.Port, acc.encode())
}

// drainPendingLocked promotes contiguous pending messages into the
// delivery queue, applying membership changes as they pass.
func (m *Member) drainPendingLocked() {
	for {
		ord := m.pending[m.nextSeq]
		if ord == nil {
			return
		}
		delete(m.pending, m.nextSeq)
		m.processOrdLocked(ord)
	}
}

// processOrdLocked records and delivers one in-order message. ord.seq must
// equal m.nextSeq.
func (m *Member) processOrdLocked(ord *wireMsg) {
	s := ord.seq
	m.history[s] = ord
	if m.histLo == 0 {
		m.histLo = s
	}
	for s-m.histLo >= historyWindow {
		delete(m.history, m.histLo)
		m.histLo++
	}
	if seqs := m.sequenced[ord.from]; seqs == nil {
		m.sequenced[ord.from] = map[uint64]uint64{ord.msgID: s}
	} else {
		seqs[ord.msgID] = s
		if len(seqs) > 2*historyWindow {
			trimSequenced(seqs)
		}
	}

	msg := Msg{Seq: s, Sender: ord.from}
	switch ord.ordKind {
	case ordApp:
		msg.Kind = KindApp
		msg.Payload = ord.payload
	case ordJoin:
		msg.Kind = KindJoin
		msg.Node = ord.node
		if !contains(m.members, ord.node) {
			m.members = append(m.members, ord.node)
			sort.Slice(m.members, func(i, j int) bool { return m.members[i] < m.members[j] })
			m.lastSeen[ord.node] = time.Now()
		}
	case ordLeave:
		msg.Kind = KindLeave
		msg.Node = ord.node
		m.removeMemberLocked(ord.node)
	}
	m.queue = append(m.queue, msg)
	m.nextSeq = s + 1
	m.cond.Broadcast()
}

func (m *Member) removeMemberLocked(nd sim.NodeID) {
	kept := m.members[:0]
	for _, x := range m.members {
		if x != nd {
			kept = append(kept, x)
		}
	}
	m.members = kept
	delete(m.lastSeen, nd)
	if nd == m.me {
		m.state = StateLeft
		m.cond.Broadcast()
		return
	}
	if nd == m.sequencer && len(m.members) > 0 {
		// Deterministic succession: lowest surviving member id.
		m.sequencer = m.members[0]
		if m.sequencer == m.me {
			m.seqCounter = m.nextSeq - 1
		}
	}
}

// handleAcceptLocked counts resilience acknowledgements (sequencer only).
func (m *Member) handleAcceptLocked(w *wireMsg) {
	m.lastSeen[w.from] = time.Now()
	if m.sequencer != m.me {
		return
	}
	pd := m.pendingDone[w.seq]
	if pd == nil || pd.acked[w.from] || !contains(m.members, w.from) {
		return
	}
	pd.acked[w.from] = true
	if !pd.doneSent && len(pd.acked) >= pd.needed {
		m.sendDoneLocked(w.seq)
	}
}

// sendDoneLocked notifies the original sender that its message reached
// the configured resilience degree.
func (m *Member) sendDoneLocked(seq uint64) {
	pd := m.pendingDone[seq]
	if pd == nil {
		return
	}
	pd.doneSent = true
	m.replyDoneLocked(pd.sender, pd.msgID, seq)
}

func (m *Member) replyDoneLocked(sender sim.NodeID, msgID, seq uint64) {
	if sender == m.me {
		if w := m.waiting[msgID]; w != nil {
			select {
			case w.ch <- seq:
			default:
			}
		}
		return
	}
	done := &wireMsg{kind: wireDone, gid: m.gid, epoch: m.epoch, seq: seq, msgID: msgID, from: m.me}
	_ = m.stack.Send(sender, m.cfg.Port, done.encode())
}

// handleDoneLocked completes one of our outstanding Send calls.
func (m *Member) handleDoneLocked(w *wireMsg) {
	if wait := m.waiting[w.msgID]; wait != nil {
		select {
		case wait.ch <- w.seq:
		default:
		}
	}
}

// sequencerHandleJoinLocked admits a new member: the join is woven into
// the total order and the joiner receives a welcome snapshot.
func (m *Member) sequencerHandleJoinLocked(w *wireMsg) {
	node := w.from
	if contains(m.members, node) {
		// Re-join from a member that lost its welcome (or its state):
		// answer with the current position.
		m.sendWelcomeLocked(node, m.seqCounter)
		return
	}
	m.seqCounter++
	s := m.seqCounter
	ord := &wireMsg{
		kind:    wireOrd,
		gid:     m.gid,
		epoch:   m.epoch,
		seq:     s,
		from:    m.me,
		ordKind: ordJoin,
		node:    node,
	}
	_ = m.stack.Multicast(m.cfg.Port, ord.encode())
	m.processOrdLocked(ord)
	m.sendWelcomeLocked(node, s)
}

func (m *Member) sendWelcomeLocked(node sim.NodeID, joinSeq uint64) {
	members := make([]sim.NodeID, len(m.members))
	copy(members, m.members)
	welcome := &wireMsg{
		kind:    wireWelcome,
		gid:     m.gid,
		epoch:   m.epoch,
		seq:     joinSeq,
		from:    m.me,
		members: members,
	}
	_ = m.stack.Send(node, m.cfg.Port, welcome.encode())
}

// handleWelcomeLocked installs the group snapshot at a joining member.
func (m *Member) handleWelcomeLocked(w *wireMsg) {
	if m.state != StateJoining {
		return
	}
	m.gid = w.gid
	m.epoch = w.epoch
	m.members = append([]sim.NodeID(nil), w.members...)
	m.sequencer = w.from
	m.nextSeq = w.seq + 1
	m.delivered = w.seq // the joiner's stream starts after its join
	m.seqCounter = w.seq
	m.syncedSeq = w.seq
	m.curProposal = proposal{epoch: w.epoch, node: w.from}
	m.state = StateNormal
	now := time.Now()
	for _, nd := range m.members {
		m.lastSeen[nd] = now
	}
	gtrace("node %d gid=%x WELCOME epoch=%d seq=%d members=%v sequencer=%d", m.me, uint64(m.gid), m.epoch, w.seq, m.members, m.sequencer)
	m.cond.Broadcast()
}

// sequencerHandleLeaveLocked weaves a departure into the total order.
func (m *Member) sequencerHandleLeaveLocked(w *wireMsg) {
	if !contains(m.members, w.node) {
		return
	}
	m.seqCounter++
	s := m.seqCounter
	ord := &wireMsg{
		kind:    wireOrd,
		gid:     m.gid,
		epoch:   m.epoch,
		seq:     s,
		from:    w.from,
		ordKind: ordLeave,
		node:    w.node,
	}
	_ = m.stack.Multicast(m.cfg.Port, ord.encode())
	m.processOrdLocked(ord)
}

// handleRetransLocked answers a gap-repair request from history.
func (m *Member) handleRetransLocked(w *wireMsg) {
	from, to := w.seq, w.seq2
	if to > from+retransBatch {
		to = from + retransBatch
	}
	for s := from; s <= to; s++ {
		ord := m.history[s]
		if ord == nil {
			continue
		}
		// Re-stamp with the current epoch: retransmitted messages are
		// valid in the view that inherited them.
		copyOrd := *ord
		copyOrd.epoch = m.epoch
		_ = m.stack.Send(w.from, m.cfg.Port, copyOrd.encode())
	}
}

// handleAliveLocked refreshes liveness and triggers gap repair when the
// heartbeat shows the group is ahead of us.
func (m *Member) handleAliveLocked(w *wireMsg) {
	if w.epoch > m.epoch {
		m.failLocked("saw heartbeat from newer epoch")
		return
	}
	if contains(m.members, w.from) {
		m.lastSeen[w.from] = time.Now()
	}
	if w.epoch == m.epoch && w.seq > m.nextSeq-1 && w.from == m.sequencer {
		m.maybeRequestRetransLocked(w.seq)
	}
}

// maybeRequestRetransLocked asks the sequencer for missing messages,
// rate-limited to one request per half heartbeat.
func (m *Member) maybeRequestRetransLocked(upTo uint64) {
	if m.sequencer == m.me || upTo < m.nextSeq {
		return
	}
	now := time.Now()
	if now.Sub(m.lastRetransAt) < m.heartbeat/2 {
		return
	}
	m.lastRetransAt = now
	req := &wireMsg{kind: wireRetrans, gid: m.gid, epoch: m.epoch, seq: m.nextSeq, seq2: upTo, from: m.me}
	_ = m.stack.Send(m.sequencer, m.cfg.Port, req.encode())
}

// handleInviteLocked reacts to a reset proposal: higher proposals win.
func (m *Member) handleInviteLocked(w *wireMsg) {
	p := proposal{epoch: w.epoch, node: w.from}
	if w.epoch <= m.epoch {
		return
	}
	if m.curProposal.less(p) {
		m.curProposal = p
		if m.state == StateNormal || m.state == StateFailed {
			m.state = StateResetting
			m.resettingSince = time.Now()
		}
		m.resetAcks = nil // abandon our own coordination attempt
		m.cond.Broadcast()
	}
	if m.curProposal == p {
		ack := &wireMsg{kind: wireResetAck, gid: m.gid, epoch: w.epoch, seq: m.nextSeq - 1, from: m.me}
		_ = m.stack.Send(w.from, m.cfg.Port, ack.encode())
	}
}

// handleResetAckLocked collects acknowledgements for our own proposal.
func (m *Member) handleResetAckLocked(w *wireMsg) {
	if m.resetAcks == nil || m.curProposal.node != m.me || m.curProposal.epoch != w.epoch {
		return
	}
	m.resetAcks[w.from] = w.seq
}

// applyCommitLocked installs a new view, triggering catch-up from the new
// sequencer when we are behind.
func (m *Member) applyCommitLocked(w *wireMsg) {
	if w.epoch <= m.epoch {
		return
	}
	// Note: a commit below our current proposal is still installed.
	// Ballot-unique epochs make every commit distinct and totally
	// ordered, so the higher coordinator's commit (if it ever happens)
	// simply supersedes this view; refusing here would strand us
	// viewless if that coordinator gave up, forcing a needless full
	// recovery.
	if !contains(w.members, m.me) {
		// Excluded from the new view: force the application into
		// recovery (it will leave and re-join).
		m.state = StateFailed
		m.cond.Broadcast()
		return
	}
	m.epoch = w.epoch
	m.members = append([]sim.NodeID(nil), w.members...)
	m.sequencer = w.node
	m.curProposal = proposal{epoch: w.epoch, node: w.from}
	m.resetAcks = nil
	if w.seq2 > m.syncedSeq {
		m.syncedSeq = w.seq2
	}
	if m.seqCounter < w.seq2 {
		m.seqCounter = w.seq2
	}
	// Messages sequenced beyond the stabilized point in the old view may
	// exist nowhere in this view; their senders will re-send them. Drop
	// buffered copies so they cannot be delivered twice under two
	// sequence numbers.
	for s := range m.pending {
		if s > w.seq2 {
			delete(m.pending, s)
		}
	}
	m.pendingDone = make(map[uint64]*doneState)
	now := time.Now()
	for _, nd := range m.members {
		m.lastSeen[nd] = now
	}
	m.state = StateNormal
	m.resettingSince = time.Time{}
	gtrace("node %d gid=%x COMMIT epoch=%d members=%v sequencer=%d seq2=%d nextSeq=%d", m.me, uint64(m.gid), m.epoch, m.members, m.sequencer, w.seq2, m.nextSeq)
	m.cond.Broadcast()
	if m.nextSeq-1 < w.seq2 {
		m.lastRetransAt = time.Time{}
		m.maybeRequestRetransLocked(w.seq2)
	}
}

// trimSequenced keeps the highest historyWindow msgIDs in a dedup map.
func trimSequenced(seqs map[uint64]uint64) {
	ids := make([]uint64, 0, len(seqs))
	for id := range seqs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids[:len(ids)-historyWindow] {
		delete(seqs, id)
	}
}
