// Package core implements the paper's primary contribution: the
// fault-tolerant directory service built on totally-ordered group
// communication (paper §3).
//
// Each directory server runs:
//
//   - Initiator threads (the RPC workers): they receive client requests,
//     refuse them without a majority, answer reads locally after waiting
//     out buffered group messages, and broadcast writes to the group with
//     resilience degree r = N-1 (Fig. 5, left).
//   - One group thread: it receives the totally-ordered stream, applies
//     each update to the replica (Bullet file + object table write — the
//     commit point), wakes the initiator, and drives ResetGroup and the
//     recovery protocol after failures (Fig. 5, right).
//
// The service keeps one-copy serializability through the total order and
// the accessible-copies majority rule, and recovers using Skeen's
// last-to-fail algorithm over commit-block configuration vectors
// (Fig. 6), including the paper's §3.2 sequence-number improvement.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dirsvc/internal/bullet"
	"dirsvc/internal/capability"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/flip"
	"dirsvc/internal/group"
	"dirsvc/internal/rpc"
	"dirsvc/internal/sim"
	"dirsvc/internal/vdisk"
)

// Config describes one directory server replica.
type Config struct {
	// Service names the directory service instance (port derivation).
	Service string
	// ID is this server's 1-based id; N is the replication degree
	// (3 in the paper, but any N ≥ 1 works — §3: "though four or more
	// replicas are also possible, without changing the protocol").
	ID, N int
	// Shard and Shards place this replica group in a sharded deployment:
	// the object table then allocates only numbers homed on Shard (see
	// ObjectTable.ConfigureShard), so capabilities minted here route back
	// by object number alone. Zero values mean unsharded.
	Shard, Shards int
	// ActiveShards is the number of shards active at shard-map epoch 0;
	// the rest are spare capacity an online split activates later
	// (dirsvc.ActiveShardsAt). Zero means all Shards are active — the
	// pre-elastic behavior.
	ActiveShards int
	// BaseService is the deployment-wide service name sibling shard
	// ports derive from (dirsvc.ShardService); the transaction resolver
	// loop uses it to send decision queries to other shards. Empty means
	// no cross-shard queries (unsharded deployments need none).
	BaseService string
	// TxAbortTimeout is how long a prepared two-phase transaction may
	// stay undecided before this participant resolves it on its own —
	// presumed abort when this shard is the transaction's resolver, a
	// decision query to the resolver otherwise. Zero means a
	// model-scaled default.
	TxAbortTimeout time.Duration
	// Peers maps server ids (1..N) to their host node ids, so config
	// vectors can be kept when group membership changes.
	Peers map[int]sim.NodeID
	// Admin is the raw partition holding the commit block and object
	// table (Fig. 4).
	Admin vdisk.Storage
	// NVRAM, when non-nil, enables the §4.1 NVRAM variant: updates are
	// logged to battery-backed RAM and flushed to disk in the
	// background.
	NVRAM *vdisk.NVRAM
	// Engine, when non-nil, enables the disk-backed storage engine:
	// applies go to RAM, the engine's write-ahead log (or the NVRAM log,
	// when both are configured) carries the critical-path durability, and
	// a background checkpoint of the whole shard state bounds recovery to
	// checkpoint + log suffix instead of a full replay. With an engine the
	// object table and Bullet store are no longer written on the update
	// path — the checkpoint is the durable copy.
	Engine *dirsvc.Engine
	// Workers is the number of initiator threads (default 3).
	Workers int
	// Resilience overrides the group resilience degree (default N-1).
	Resilience int
	// DisableImprovement turns off the §3.2 recovery refinement, for the
	// ablation experiments.
	DisableImprovement bool
	// DisableReadMajorityCheck lets reads bypass the majority rule — an
	// ablation that recreates the §3.1 anomaly where a partitioned
	// server serves deleted directories.
	DisableReadMajorityCheck bool
	// HeartbeatInterval tunes the group failure detector (tests).
	HeartbeatInterval time.Duration
	// IdleFlush is how long the NVRAM variant waits for quiet before
	// flushing the log (default 20× heartbeat).
	IdleFlush time.Duration
	// LeaseTTL bounds how long a watch/cache lease survives without a
	// renewal (zero: a model-scaled default).
	LeaseTTL time.Duration
	// EventLogSize bounds the per-server event log replayable to
	// reconnecting watchers (zero: dirsvc.DefaultEventLogSize).
	EventLogSize int
}

// Server is one replica of the group directory service.
type Server struct {
	cfg    Config
	stack  *flip.Stack
	model  *sim.LatencyModel
	rpcSrv *rpc.Server
	recSrv *rpc.Server
	bc     *bullet.Client

	applier *dirsvc.Applier
	table   *dirsvc.ObjectTable
	nvlog   *dirsvc.NVLog
	engine  *dirsvc.Engine
	// notifier is the lease/callback engine: the bounded event log plus
	// the watch leases pushes go to. Detached from the applier while
	// recovery replays state, reset (new log identity) when recovery
	// completes.
	notifier *dirsvc.Notifier

	// applyMu serializes whole group-message batches against state
	// snapshots: handleSyncPull holds it while cutting a bundle, so the
	// transferred images and the group-stream position it advertises are
	// always batch-aligned (never half a coalesced packet).
	applyMu sync.Mutex

	mu          sync.Mutex
	cond        *sync.Cond
	member      *group.Member
	commit      *dirsvc.CommitBlock
	appliedSeq  uint64 // service update counter (stamped on directories)
	groupSeq    uint64 // last group-stream seq applied (incl. membership)
	groupResume uint64 // stream position the recovery snapshot covered; older messages are skipped, not re-applied
	recovering  bool
	recoverySeq uint64 // seq advertised in exchanges while recovering (§3)
	era         uint64 // bumped on every recovery, wakes stuck initiators
	neverDown   bool   // true while this process has been up since its last recovery
	lastUpdate  time.Time
	results     map[uint64]*dirsvc.Reply
	sendAcked   map[uint64]bool // broadcast reached its resilience degree
	opCounter   uint64
	closed      bool

	forced atomic.Bool // ForceRecover invoked: serve without a majority

	groupSends atomic.Uint64 // successful group broadcasts (write path)
	reads      atomic.Uint64 // read operations answered by this replica

	// Lock-free mirrors for the RPC load hint (sampled from reply and
	// dispatcher paths, which must not contend on s.mu): the current
	// group member and the last group-stream seq applied.
	memberHint   atomic.Value  // *group.Member (possibly typed nil)
	appliedGroup atomic.Uint64 // mirror of groupSeq

	// minSeqWait bounds how long a read blocks for its session floor
	// (Request.MinSeq) before telling the client to retry elsewhere.
	minSeqWait time.Duration
	// lockWait bounds how long a read blocks on an object locked by a
	// prepared transaction before refusing with conflict (the client
	// retries; orphan resolution unwedges the lock meanwhile).
	lockWait time.Duration
	// txTimeout is the presumed-abort horizon for prepared transactions.
	txTimeout time.Duration
	txRPC     *rpc.Client // decision queries to sibling shards

	sendCh    chan coalesceOp
	cleanupCh chan capability.Capability
	stop      chan struct{}
	wg        sync.WaitGroup
	stopRPC   []func()
}

// coalesceOp is one client update queued for the coalescing sender.
type coalesceOp struct {
	opID uint64
	era  uint64 // server era at submission; stale ops are dropped
	raw  []byte // encoded dirsvc.Request
}

// NewServer boots a directory server replica on stack. It formats fresh
// state on an empty admin partition, or reloads existing state, then runs
// the recovery protocol to (re)join the service before accepting
// requests.
func NewServer(stack *flip.Stack, cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Resilience == 0 {
		cfg.Resilience = cfg.N - 1
	}
	if cfg.N < 1 || cfg.ID < 1 || cfg.ID > cfg.N {
		return nil, fmt.Errorf("core: bad server id %d of %d", cfg.ID, cfg.N)
	}
	model := stack.Model()
	if cfg.IdleFlush <= 0 {
		cfg.IdleFlush = 20 * heartbeat(model, cfg)
	}

	rc, err := rpc.NewClient(stack)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		stack:     stack,
		model:     model,
		bc:        bullet.NewClient(rc, dirsvc.BulletPort(cfg.Service, cfg.ID)),
		results:   make(map[uint64]*dirsvc.Reply),
		sendAcked: make(map[uint64]bool),
		sendCh:    make(chan coalesceOp, 4*maxCoalesce),
		cleanupCh: make(chan capability.Capability, 4096),
		stop:      make(chan struct{}),
	}
	s.minSeqWait = model.Timeout(15 * time.Second)
	if s.minSeqWait < time.Second {
		s.minSeqWait = time.Second
	}
	s.txTimeout = cfg.TxAbortTimeout
	if s.txTimeout <= 0 {
		s.txTimeout = model.Timeout(30 * time.Second)
		if s.txTimeout < 3*time.Second {
			s.txTimeout = 3 * time.Second
		}
	}
	s.lockWait = model.Timeout(5 * time.Second)
	if s.lockWait < time.Second {
		s.lockWait = time.Second
	}
	s.cond = sync.NewCond(&s.mu)

	// Load durable state.
	commit, err := dirsvc.ReadCommitBlock(cfg.Admin, cfg.N)
	if err != nil {
		return nil, fmt.Errorf("read commit block: %w", err)
	}
	s.commit = commit
	table, err := dirsvc.OpenObjectTable(cfg.Admin)
	if err != nil {
		return nil, fmt.Errorf("open object table: %w", err)
	}
	base := cfg.ActiveShards
	if base <= 0 || base > cfg.Shards {
		base = cfg.Shards
	}
	table.ConfigureShard(cfg.Shard, base)
	s.table = table
	// Capabilities are minted and verified under the deployment-wide
	// port, not the shard's: an online migration moves an object to a
	// sibling shard, and the capability the client holds must keep
	// verifying there. Shard 0's service name IS the base name, so
	// unsharded deployments are byte-identical to before.
	capService := cfg.BaseService
	if capService == "" {
		capService = cfg.Service
	}
	s.applier = dirsvc.NewApplier(dirsvc.ServicePort(capService), table, s.bc)
	s.applier.SetLockWaitSlots(cfg.Workers - 1)
	s.applier.ConfigureTopology(cfg.Shard, base, cfg.Shards)
	// A commit block written after a split carries the topology tail;
	// restoring it re-fences routing and the allocator before recovery
	// replays or pulls anything.
	s.applier.RestoreTopology(commit.Topo)
	leaseTTL := cfg.LeaseTTL
	if leaseTTL <= 0 {
		leaseTTL = model.Timeout(60 * time.Second)
		if leaseTTL < 2*time.Second {
			leaseTTL = 2 * time.Second
		}
	}
	// The notifier starts detached; recover() resets and attaches it once
	// the replica's state is current (replayed history is not pushed).
	s.notifier = dirsvc.NewNotifier(cfg.EventLogSize, 0, leaseTTL)
	if cfg.NVRAM != nil {
		nvlog, err := dirsvc.OpenNVLog(cfg.NVRAM)
		if err != nil {
			return nil, fmt.Errorf("open nvram log: %w", err)
		}
		s.nvlog = nvlog
	}
	s.engine = cfg.Engine

	// Recovery servers answer even while we recover ourselves.
	recSrv, err := rpc.NewServer(stack, dirsvc.RecoveryPort(cfg.Service, cfg.ID))
	if err != nil {
		return nil, err
	}
	s.recSrv = recSrv
	s.stopRPC = append(s.stopRPC, recSrv.ServeFunc(2, s.handleRecoveryRPC))

	// Run recovery to (re)join the service. This blocks until we are
	// part of a majority group with up-to-date state (Fig. 6).
	if err := s.recover(); err != nil {
		s.notifier.Close()
		s.shutdownRPC()
		return nil, err
	}

	// Client-facing RPC service.
	rpcSrv, err := rpc.NewServer(stack, dirsvc.ServicePort(cfg.Service))
	if err != nil {
		s.shutdownRPC()
		return nil, err
	}
	s.rpcSrv = rpcSrv
	// The load hint this replica piggybacks on replies and HEREIS carries
	// its applied-cursor lag: buffered-but-unapplied group messages, read
	// from lock-free mirrors so sampling never contends on s.mu.
	rpcSrv.SetLagFunc(func() int {
		m, _ := s.memberHint.Load().(*group.Member)
		if m == nil {
			return 0
		}
		buffered, applied := m.Info().Buffered, s.appliedGroup.Load()
		if buffered <= applied {
			return 0
		}
		return int(buffered - applied)
	})
	s.stopRPC = append(s.stopRPC, rpcSrv.ServeFunc(cfg.Workers, s.handleClientRPC))

	txRPC, err := rpc.NewClient(stack)
	if err != nil {
		s.shutdownRPC()
		return nil, err
	}
	s.txRPC = txRPC

	s.wg.Add(1)
	go s.groupThread()
	s.wg.Add(1)
	go s.sendLoop()
	if s.nvlog != nil || s.engine != nil {
		s.wg.Add(1)
		go s.flushLoop()
	}
	s.wg.Add(1)
	go s.cleanupLoop()
	s.wg.Add(1)
	go s.txResolveLoop()
	return s, nil
}

func heartbeat(model *sim.LatencyModel, cfg Config) time.Duration {
	if cfg.HeartbeatInterval > 0 {
		return cfg.HeartbeatInterval
	}
	base := model.Timeout(150 * time.Millisecond)
	if base < 15*time.Millisecond {
		base = 15 * time.Millisecond
	}
	return base
}

func (s *Server) groupConfig() group.Config {
	return group.Config{
		Port:              dirsvc.GroupPort(s.cfg.Service),
		Resilience:        s.cfg.Resilience,
		HeartbeatInterval: s.cfg.HeartbeatInterval,
	}
}

// majorityNeeded returns the minimum group size for service (⌈(N+1)/2⌉),
// or 1 after an administrator invoked ForceRecover.
func (s *Server) majorityNeeded() int {
	if s.forced.Load() {
		return 1
	}
	return s.cfg.N/2 + 1
}

// ForceRecover is the system administrators' escape hatch the paper
// mentions (§3.1): when the other servers have lost their data forever
// (e.g. head crashes), the surviving server can be forced to serve
// without a majority. This abandons the partition guarantee — exactly
// why it is manual.
func (s *Server) ForceRecover() {
	s.forced.Store(true)
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Close shuts the server down without the leave protocol (fail-stop).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	member := s.member
	close(s.stop)
	s.cond.Broadcast()
	s.mu.Unlock()
	if member != nil {
		member.Close()
	}
	s.applier.AttachEvents(nil)
	s.notifier.Close()
	s.shutdownRPC()
	if s.txRPC != nil {
		s.txRPC.Close()
	}
	s.wg.Wait()
}

func (s *Server) shutdownRPC() {
	if s.rpcSrv != nil {
		s.rpcSrv.Close()
	}
	s.recSrv.Close()
	for _, stop := range s.stopRPC {
		stop()
	}
	s.stopRPC = nil
}

// Status is a monitoring snapshot (cmd/dird).
type Status struct {
	ID         int
	Recovering bool
	AppliedSeq uint64
	Members    int
	Epoch      uint64
	NVRAMUsed  int
	// ShardEpoch is the elastic shard-map epoch (distinct from the
	// group-communication epoch above); Objects and Stubs count this
	// shard's live object-table slots and forwarding stubs.
	ShardEpoch uint64
	Objects    int
	Stubs      int
	// CheckpointSeq and EngineLog describe the storage engine (zero
	// without one): the sequence number the last checkpoint covers, and
	// the number of write-ahead records appended past it.
	CheckpointSeq uint64
	EngineLog     int
}

// Status returns a snapshot of the replica.
func (s *Server) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		ID:         s.cfg.ID,
		Recovering: s.recovering,
		AppliedSeq: s.appliedSeq,
	}
	if s.member != nil {
		info := s.member.Info()
		st.Members = len(info.Members)
		st.Epoch = info.Epoch
	}
	if s.nvlog != nil {
		st.NVRAMUsed = s.nvlog.UsedBytes()
	}
	if s.engine != nil {
		st.CheckpointSeq = s.engine.CheckpointSeq()
		st.EngineLog = s.engine.LogLen()
	}
	if topo, ok := s.applier.Topology(); ok {
		st.ShardEpoch = topo.Epoch
	}
	info := s.applier.ShardMapInfo()
	st.Objects = info.Objects
	st.Stubs = info.Stubs
	return st
}

// handleClientRPC is the initiator thread body (Fig. 5, left side).
func (s *Server) handleClientRPC(req *rpc.Request) []byte {
	dreq, err := dirsvc.DecodeRequest(req.Payload)
	if err != nil {
		return (&dirsvc.Reply{Status: dirsvc.StatusBadRequest}).Encode()
	}
	var reply *dirsvc.Reply
	switch {
	case dreq.Op == dirsvc.OpWatch:
		reply = s.handleWatch(req, dreq)
	case dreq.Op == dirsvc.OpLeaseRenew:
		reply = s.handleLeaseRenew(dreq)
	case dreq.Op.IsUpdate():
		reply = s.handleUpdate(dreq)
	default:
		reply = s.handleRead(dreq)
	}
	return reply.Encode()
}

// handleWatch registers an event-stream lease: the confirmation reply
// carries an EventBatch cursor (or replay), and later events are pushed
// over the request's reply channel. Like reads, watches require a
// majority — a partitioned minority replica's log stops advancing, so a
// lease there would silently mask foreign commits.
func (s *Server) handleWatch(req *rpc.Request, dreq *dirsvc.Request) *dirsvc.Reply {
	s.mu.Lock()
	if !s.majorityLocked() && !s.cfg.DisableReadMajorityCheck {
		s.mu.Unlock()
		return &dirsvc.Reply{Status: dirsvc.StatusNoMajority}
	}
	s.mu.Unlock()
	addr := req.PushAddr()
	push := func(payload []byte) error { return s.rpcSrv.Push(addr, payload) }
	batch := s.notifier.Subscribe(addr.Tx, dreq.Seq, dreq.MinSeq, push)
	return &dirsvc.Reply{Status: dirsvc.StatusOK, Blob: dirsvc.EncodeEventBatch(batch)}
}

// handleLeaseRenew refreshes a watch lease and returns any events the
// subscriber missed. The majority check makes a lease on a partitioned
// replica die within one renewal interval, bounding how long pushed
// invalidations can lag commits happening on the majority side.
func (s *Server) handleLeaseRenew(dreq *dirsvc.Request) *dirsvc.Reply {
	s.mu.Lock()
	if !s.majorityLocked() && !s.cfg.DisableReadMajorityCheck {
		s.mu.Unlock()
		return &dirsvc.Reply{Status: dirsvc.StatusNoMajority}
	}
	s.mu.Unlock()
	batch, ok := s.notifier.Renew(dreq.Seq, dreq.MinSeq)
	if !ok {
		return &dirsvc.Reply{Status: dirsvc.StatusNotFound}
	}
	return &dirsvc.Reply{Status: dirsvc.StatusOK, Blob: dirsvc.EncodeEventBatch(batch)}
}

// handleRead implements the read path: majority check, then wait until
// every group message buffered at request arrival has been applied —
// guaranteeing the read sees all preceding writes (§3.1) — then answer
// from the cache without any communication or disk access. A read
// carrying a session floor (Request.MinSeq, stamped by read-balancing
// clients) additionally waits until this replica's applied cursor
// reaches the floor, so landing on a lagging replica cannot violate
// read-your-writes or monotonic reads.
func (s *Server) handleRead(req *dirsvc.Request) *dirsvc.Reply {
	s.mu.Lock()
	if !s.majorityLocked() && !s.cfg.DisableReadMajorityCheck {
		s.mu.Unlock()
		return &dirsvc.Reply{Status: dirsvc.StatusNoMajority}
	}
	member := s.member
	s.mu.Unlock()
	if member != nil {
		buffered := member.Info().Buffered
		if !s.waitApplied(buffered) {
			return &dirsvc.Reply{Status: dirsvc.StatusNoMajority}
		}
	}
	if req.MinSeq > 0 && !s.waitMinSeq(req.MinSeq) {
		// Floor unreachable here (lagging through recovery, or shutdown):
		// refuse so the client fails over to a caught-up replica.
		return &dirsvc.Reply{Status: dirsvc.StatusNoMajority}
	}
	// An object locked by a prepared two-phase transaction holds its
	// readers until the decision: they then see exactly the pre- or
	// post-batch state, never the pre-state of one shard after another
	// shard exposed the commit. A bounded wait keeps worker threads from
	// starving — the refused client retries while orphan resolution
	// unwedges the lock.
	if obj := req.Dir.Object; obj != 0 && !s.applier.WaitUnlocked(obj, s.lockWait) {
		return &dirsvc.Reply{Status: dirsvc.StatusConflict}
	}
	// Elastic routing, checked after the lock wait so a read racing a
	// migration flip sees the post-decide state (stub or entry), never
	// the in-between. OpMigRead is exempt: the migrator reads objects
	// precisely because they are homed elsewhere.
	if obj := req.Dir.Object; obj != 0 && req.Op != dirsvc.OpMigRead {
		if owner, fwd := s.applier.RouteForward(obj); fwd {
			topo, _ := s.applier.Topology()
			return &dirsvc.Reply{Status: dirsvc.StatusNotMine, Blob: dirsvc.EncodeNotMine(topo.Epoch, owner)}
		}
	}
	// Sample the applied sequence number before executing the read: the
	// data returned is at least that fresh, so the stamp is a safe
	// (conservative) freshness bound for client read caches.
	s.mu.Lock()
	svcSeq := s.appliedSeq
	s.mu.Unlock()
	s.reads.Add(1)
	s.stack.Node().CPU().Charge(s.model.LookupCPU)
	reply := s.applier.Read(req)
	reply.Seq = svcSeq
	return reply
}

// Read serves one read request exactly as an initiator thread would —
// majority check, buffered-stream wait, session floor — without going
// through the RPC transport. Fault-injection tests and monitoring tools
// use it to interrogate one specific replica.
func (s *Server) Read(req *dirsvc.Request) *dirsvc.Reply {
	if req.Op.IsUpdate() {
		return &dirsvc.Reply{Status: dirsvc.StatusBadRequest}
	}
	return s.handleRead(req)
}

// waitMinSeq blocks until the replica's applied sequence number reaches
// the client's session floor. It gives up — returning false so the
// client retries elsewhere — after a bounded wait or on shutdown. A
// recovery (era bump) during the wait is ridden out rather than bailed
// on: the applied cursor survives recovery and usually reaches the
// floor the moment the replica has caught up.
func (s *Server) waitMinSeq(min uint64) bool {
	deadline := time.Now().Add(s.minSeqWait)
	wake := time.AfterFunc(s.minSeqWait, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer wake.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.appliedSeq < min {
		if s.closed || time.Now().After(deadline) {
			return false
		}
		s.cond.Wait()
	}
	return true
}

// handleUpdate implements the write path: majority check, pre-generate
// the check fields, hand the update to the coalescing sender (which packs
// it — alone or with concurrent updates — into one totally-ordered group
// broadcast), wait until our own group thread has applied the operation,
// and return its result (Fig. 5).
func (s *Server) handleUpdate(req *dirsvc.Request) *dirsvc.Reply {
	s.mu.Lock()
	if !s.majorityLocked() {
		s.mu.Unlock()
		return &dirsvc.Reply{Status: dirsvc.StatusNoMajority}
	}
	era := s.era
	s.opCounter++
	opID := uint64(s.cfg.ID)<<48 | s.opCounter
	s.mu.Unlock()

	// An update aimed at objects locked by a prepared two-phase
	// transaction waits its turn in the lock-wait queue instead of being
	// refused outright — the decide that releases the lock travels the
	// group stream, which this initiator-side wait never blocks. OpDecide
	// itself has no wait targets (it performs the release).
	if err := s.applier.AwaitLockFree(dirsvc.LockWaitTargets(req, s.cfg.Shard), s.lockWait); err != nil {
		return dirsvc.ErrorReply(err)
	}

	// Elastic routing: an update addressing an object this shard no
	// longer (or does not yet) own is bounced with the owner's identity
	// instead of being replicated. Batches, prepares, and decides carry
	// no top-level object; their steps are fenced by the 2PC locks.
	if obj := req.Dir.Object; obj != 0 {
		if owner, fwd := s.applier.RouteForward(obj); fwd {
			topo, _ := s.applier.Topology()
			return &dirsvc.Reply{Status: dirsvc.StatusNotMine, Blob: dirsvc.EncodeNotMine(topo.Epoch, owner)}
		}
	}

	// All replicas must mint the same capabilities: the initiator chooses
	// the check-field material (§3.1) — for every create step of a batch.
	switch {
	case req.Op == dirsvc.OpCreateDir && len(req.CheckSeed) == 0:
		req.CheckSeed = newCheckSeed(s.cfg.ID, opID, 0)
	case req.Op == dirsvc.OpBatch:
		steps, err := dirsvc.DecodeBatchSteps(req.Blob)
		if err != nil {
			return dirsvc.ErrorReply(err)
		}
		if dirsvc.EnsureBatchSeeds(steps, func(i int) []byte {
			return newCheckSeed(s.cfg.ID, opID, i+1)
		}) {
			req.Blob = dirsvc.EncodeBatchSteps(steps)
		}
	case req.Op == dirsvc.OpPrepare:
		if err := dirsvc.EnsurePrepareSeeds(req, func(i int) []byte {
			return newCheckSeed(s.cfg.ID, opID, i+1)
		}); err != nil {
			return dirsvc.ErrorReply(err)
		}
	}
	req.Server = s.cfg.ID

	s.stack.Node().CPU().Charge(s.model.UpdateCPU)
	select {
	case s.sendCh <- coalesceOp{opID: opID, era: era, raw: req.Encode()}:
	case <-s.stop:
		return &dirsvc.Reply{Status: dirsvc.StatusNoMajority}
	}

	// Wait until the group thread has received and executed the request
	// AND the broadcast has reached its resilience degree — the local
	// apply can precede the peers' accepts, and replying then would
	// acknowledge an update that might not survive this server (§3).
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if reply, ok := s.results[opID]; ok && s.sendAcked[opID] {
			delete(s.results, opID)
			delete(s.sendAcked, opID)
			return reply
		}
		if s.closed || s.era != era {
			// Recovery intervened; the client must retry elsewhere.
			delete(s.results, opID)
			delete(s.sendAcked, opID)
			return &dirsvc.Reply{Status: dirsvc.StatusNoMajority}
		}
		s.cond.Wait()
	}
}

func newCheckSeed(id int, opID uint64, step int) []byte {
	seed := make([]byte, 16)
	binary.BigEndian.PutUint32(seed[:4], uint32(id))
	binary.BigEndian.PutUint64(seed[4:12], opID)
	binary.BigEndian.PutUint32(seed[12:], uint32(step))
	return seed
}

// GroupSends returns the number of group broadcasts this server has
// issued on the write path (benchmark instrumentation: batches and
// coalescing make this ≪ the number of updates).
func (s *Server) GroupSends() uint64 { return s.groupSends.Load() }

// ReadsServed returns the number of read operations this replica has
// answered — the per-server load-distribution measurement behind the
// Fig. 8 reproduction and the read-balancing experiments.
func (s *Server) ReadsServed() uint64 { return s.reads.Load() }

// majorityLocked: at least ⌈(N+1)/2⌉ servers must be up and in our group.
func (s *Server) majorityLocked() bool {
	if s.recovering || s.member == nil {
		return false
	}
	info := s.member.Info()
	return info.State == group.StateNormal && len(info.Members) >= s.majorityNeeded()
}

// waitApplied blocks until the group thread has applied all messages up
// to groupSeq. Returns false if recovery interrupts.
func (s *Server) waitApplied(groupSeq uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	era := s.era
	for s.groupSeq < groupSeq {
		if s.closed || s.era != era {
			return false
		}
		s.cond.Wait()
	}
	return true
}

// groupThread is the single per-server thread processing the totally
// ordered stream (Fig. 5, right side).
func (s *Server) groupThread() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		// Recovery nils the member while it rejoins (and broadcasts once
		// a new one is installed): wait instead of receiving on nothing.
		for s.member == nil && !s.closed {
			s.cond.Wait()
		}
		member := s.member
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return
		}
		msg, err := member.Receive()
		switch {
		case err == nil:
			s.processGroupMsg(msg)
		case errors.Is(err, group.ErrGroupFailure):
			s.handleGroupFailure(member)
		case errors.Is(err, group.ErrClosed), errors.Is(err, group.ErrLeft):
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			// The member dissolved under us (e.g. excluded from a
			// view): run recovery to rejoin.
			if err := s.recover(); err != nil {
				return
			}
		}
	}
}

// handleGroupFailure rebuilds the group; when no majority can be
// assembled, the server falls back to full recovery (Fig. 5: "if (group
// rebuild failed) enter recovery").
func (s *Server) handleGroupFailure(member *group.Member) {
	info, err := member.Reset(s.majorityNeeded())
	if err == nil {
		// Majority rebuilt: update the configuration vector on disk.
		s.mu.Lock()
		s.updateConfigVectorLocked(info.Members)
		commit := *s.commit
		s.mu.Unlock()
		_ = commit.Write(s.cfg.Admin)
		return
	}
	if err := s.recover(); err != nil {
		// Unrecoverable (shutdown); groupThread exits via closed check.
		return
	}
}

// updateConfigVectorLocked rewrites the Up bits from a group member list.
func (s *Server) updateConfigVectorLocked(members []sim.NodeID) {
	nodeToServer := make(map[sim.NodeID]int, len(s.cfg.Peers))
	for id, nd := range s.cfg.Peers {
		nodeToServer[nd] = id
	}
	for i := range s.commit.Up {
		s.commit.Up[i] = false
	}
	for _, nd := range members {
		if id, ok := nodeToServer[nd]; ok {
			s.commit.Up[id-1] = true
		}
	}
}

// advanceGroupCursorLocked moves the applied group-stream cursor
// forward; it never regresses (after recovery the cursor starts at the
// snapshot position, ahead of the oldest queued messages).
func (s *Server) advanceGroupCursorLocked(seq uint64) {
	if seq > s.groupSeq {
		s.groupSeq = seq
	}
	if seq > s.appliedGroup.Load() {
		s.appliedGroup.Store(seq)
	}
}

// processGroupMsg applies one totally-ordered message.
func (s *Server) processGroupMsg(msg group.Msg) {
	switch msg.Kind {
	case group.KindJoin, group.KindLeave:
		s.mu.Lock()
		if s.member != nil {
			s.updateConfigVectorLocked(s.member.Info().Members)
		}
		s.advanceGroupCursorLocked(msg.Seq)
		commit := *s.commit
		s.cond.Broadcast()
		s.mu.Unlock()
		_ = commit.Write(s.cfg.Admin)
		return
	case group.KindApp:
	default:
		return
	}
	s.mu.Lock()
	resume := s.groupResume
	s.mu.Unlock()
	if msg.Seq <= resume {
		// Already reflected in the snapshot this replica pulled during
		// recovery: the state transfer was cut at or past this stream
		// position, so re-applying would double-apply. Just advance.
		s.mu.Lock()
		s.advanceGroupCursorLocked(msg.Seq)
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	entries, err := unpackGroupEntries(msg.Payload)
	if err != nil {
		// Unparseable payload: still advance the group cursor so reads
		// waiting on buffered messages are not stuck forever.
		s.mu.Lock()
		s.advanceGroupCursorLocked(msg.Seq)
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}

	// One broadcast may carry several updates (a coalesced packet); each
	// entry is applied in order under its own service sequence number.
	// The batch and the cursor bump form one snapshot-atomic unit.
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	for _, ent := range entries {
		req, err := dirsvc.DecodeRequest(ent.raw)
		if err != nil {
			continue
		}
		s.mu.Lock()
		seq := s.appliedSeq + 1
		s.lastUpdate = time.Now()
		s.mu.Unlock()

		reply, advance := s.applyUpdate(req, seq)
		if advance > seq {
			// A shard restore installed a snapshot whose own counters run
			// past this stream position; the service counter jumps with it
			// so freshly minted sequence numbers stay monotonic.
			seq = advance
		}

		s.mu.Lock()
		s.appliedSeq = seq
		if req.Server == s.cfg.ID {
			s.results[ent.opID] = reply
			// Bound the table against abandoned initiators.
			if len(s.results) > 10000 {
				s.results = map[uint64]*dirsvc.Reply{ent.opID: reply}
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}

	s.mu.Lock()
	s.advanceGroupCursorLocked(msg.Seq)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// applyUpdate executes the update against the replica: in the durable
// variant this creates the new directory on the Bullet server and writes
// the object table entry (the commit, Fig. 5); in the NVRAM variant it
// updates RAM and logs the operation to NVRAM (§4.1); with a storage
// engine it updates RAM and appends the operation to the engine's
// write-ahead log (the checkpoint picks the state up later). The second
// return value is the sequence number the service counter must advance
// to — above seq only when a shard restore installed a snapshot with
// higher counters.
func (s *Server) applyUpdate(req *dirsvc.Request, seq uint64) (*dirsvc.Reply, uint64) {
	durable := s.nvlog == nil && s.engine == nil
	if s.nvlog != nil && s.nvlog.NeedsFlush() {
		// Make room first if the log is full.
		s.flushNVRAM()
	}
	res, err := s.applier.ApplyUpdate(req, seq, durable)
	if err != nil {
		// The group backend consumes a sequence number even for a failed
		// apply; record an empty filler event so the event log's index
		// stream (and its Seq correspondence) stays gap-free.
		s.notifier.Record(dirsvc.Event{Seq: seq, Op: req.Op})
		return dirsvc.ErrorReply(err), seq
	}
	effSeq := seq
	if res.AdvanceSeq > effSeq {
		effSeq = res.AdvanceSeq
	}
	if res.TopoChanged {
		// Persist the new shard-map state immediately, NVRAM mode
		// included: a split is rare (one extra disk write), and recovery
		// must never come back up routing under the old epoch. The seq
		// also advances, covering sequence numbers dropped with stubs.
		topo, ok := s.applier.Topology()
		s.mu.Lock()
		s.commit.Seq = effSeq
		if ok {
			t := topo
			s.commit.Topo = &t
		}
		commit := *s.commit
		s.mu.Unlock()
		_ = commit.Write(s.cfg.Admin)
	}
	switch {
	case durable:
		if res.DeletedDir && !res.TopoChanged {
			// The deletion removed the per-directory record; remember
			// the update in the commit block (§3, Fig. 4).
			s.mu.Lock()
			s.commit.Seq = effSeq
			commit := *s.commit
			s.mu.Unlock()
			_ = commit.Write(s.cfg.Admin)
		}
		for _, old := range res.OldBullet {
			s.scheduleCleanup(old)
		}
	case s.nvlog != nil:
		if req.Op == dirsvc.OpRestoreShard {
			// The installed snapshot dwarfs any log budget; flush it
			// through now so a crash cannot lose the restore.
			s.flushNVRAM()
			break
		}
		if _, err := s.nvlog.Append(s.pinAllocation(req, res), seq); err != nil {
			// Log jammed even after flush: fall back to demanding a
			// flush on the next update; correctness is preserved since
			// RAM state is current.
			_ = err
		}
	default: // engine write-ahead log
		if req.Op == dirsvc.OpRestoreShard {
			_ = s.checkpointNow(effSeq)
			break
		}
		if err := s.engine.AppendLog(seq, s.pinAllocation(req, res).Encode()); err != nil {
			// Log region full (or write trouble): fold the update into a
			// fresh checkpoint instead — it covers this apply's effects,
			// and the flip truncates the log.
			_ = s.checkpointNow(effSeq)
		}
	}
	return res.Reply, effSeq
}

// pinAllocation pins a create's allocation outcome into the record bound
// for a recovery log: replay re-runs the allocator, and a topology change
// persisted between now and the crash (an online split) would otherwise
// renumber the directory.
func (s *Server) pinAllocation(req *dirsvc.Request, res *dirsvc.ApplyResult) *dirsvc.Request {
	if req.Op == dirsvc.OpCreateDir && req.Dir.Object == 0 && res.Reply.Status == dirsvc.StatusOK {
		pinned := *req
		pinned.Dir.Object = res.Reply.Cap.Object
		return &pinned
	}
	return req
}

// checkpointNow cuts a snapshot of the whole shard state and writes it
// to the engine's checkpoint area (atomic double-buffer swap), which also
// truncates the write-ahead log. Callers must hold applyMu — or be the
// group thread mid-batch, which holds it already — so the snapshot never
// splits a coalesced packet. minSeq raises the applied counter stamped
// into the snapshot when the caller is mid-apply and s.appliedSeq has
// not caught up yet.
func (s *Server) checkpointNow(minSeq uint64) error {
	s.mu.Lock()
	applied := s.appliedSeq
	commitSeq := s.commit.Seq
	s.mu.Unlock()
	if minSeq > applied {
		applied = minSeq
	}
	snap := s.applier.SnapshotState(applied, commitSeq)
	return s.engine.WriteCheckpoint(snap.MaxSeq(), snap.Encode())
}

// Checkpoint forces one synchronous checkpoint of the storage engine —
// for tests, tools, and the benchmark harness; the flush loop cuts them
// in the background. A no-op (nil) without an engine.
func (s *Server) Checkpoint() error {
	if s.engine == nil {
		return nil
	}
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	if s.nvlog != nil {
		s.flushNVRAM()
		return nil
	}
	return s.checkpointNow(0)
}

// scheduleCleanup queues an obsolete Bullet file for deletion after the
// reply (Fig. 5: "remove old Bullet files" happens last).
func (s *Server) scheduleCleanup(cap capability.Capability) {
	select {
	case s.cleanupCh <- cap:
	default: // cleanup backlog full: leak the file rather than block commit
	}
}

func (s *Server) cleanupLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case cap := <-s.cleanupCh:
			_ = s.bc.Delete(cap)
		}
	}
}

// flushLoop is the NVRAM background flusher: it applies the log to disk
// when the server is idle or the log passes its threshold (§4.1).
func (s *Server) flushLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.IdleFlush / 2)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		idle := time.Since(s.lastUpdate) >= s.cfg.IdleFlush
		recovering := s.recovering
		s.mu.Unlock()
		if recovering {
			continue
		}
		switch {
		case s.nvlog != nil:
			if s.nvlog.NeedsFlush() || (idle && s.nvlog.Len() > 0) {
				// The batch lock keeps the flush (and any checkpoint it
				// cuts) snapshot-atomic against the group thread.
				s.applyMu.Lock()
				s.flushNVRAM()
				s.applyMu.Unlock()
			}
		case s.engine != nil:
			if s.engine.NeedsCheckpoint() || (idle && s.engine.LogLen() > 0) {
				s.applyMu.Lock()
				_ = s.checkpointNow(0)
				s.applyMu.Unlock()
			}
		}
	}
}

// flushNVRAM writes every dirty directory through to Bullet and the
// object table, then clears the log. The work list comes from the
// object table's RAM-dirty set, which — unlike parsing the logged
// requests — also covers created directories (object numbers assigned
// at apply time), batch steps, and deletions. Prepare records of
// still-undecided two-phase transactions are re-appended after the
// clear: they are the only durable trace of the staged state, and a
// whole-shard crash must find them so Fig. 6 recovery reinstates the
// in-doubt transaction instead of silently dropping a vote.
func (s *Server) flushNVRAM() {
	if s.engine != nil {
		// Engine-backed deployment: a checkpoint captures everything the
		// NVRAM log protects — dirty directories, in-doubt prepares, and
		// remembered outcomes — in one atomic swap, so the log clears
		// without re-appending anything.
		if err := s.checkpointNow(0); err != nil {
			return // disk trouble: keep the log, retry next round
		}
		_ = s.nvlog.Clear()
		return
	}
	for _, obj := range s.table.RAMDirtyObjects() {
		olds, err := s.applier.FlushObject(obj)
		if err != nil {
			return // disk trouble: keep the log, retry next round
		}
		for _, old := range olds {
			s.scheduleCleanup(old)
		}
	}
	_ = s.nvlog.Clear()
	for _, tx := range s.applier.InDoubtTxs() {
		_, _ = s.nvlog.Append(tx.Req, tx.Seq)
	}
	// Recent decisions ride along too: a whole-shard crash right after a
	// flushed commit must still answer an orphaned peer's decision query
	// with "committed", or the peer would presume abort a transaction
	// another shard already exposed. The age horizon retires outcomes the
	// resolver's two-strike protocol can no longer ask about, so the log
	// does not re-append every decision it ever saw on every flush.
	for _, d := range s.applier.RecentDecided(recentDecidedKept, s.decidedHorizon()) {
		req := &dirsvc.Request{
			Op:   dirsvc.OpDecide,
			Blob: dirsvc.EncodeDecide(&dirsvc.Decide{ID: d.ID, Commit: d.Commit}),
		}
		_, _ = s.nvlog.Append(req, d.Seq)
	}
}

// recentDecidedKept bounds how many decided outcomes are re-logged to
// NVRAM across flushes (each record is ~40 bytes of the 24 KB region).
const recentDecidedKept = 32

// decidedHorizon is the age past which a decided outcome stops being
// re-logged: an orphaned peer resolves an in-doubt transaction within
// one txTimeout plus two strike ticks, so outcomes three timeouts old
// can no longer be asked about.
func (s *Server) decidedHorizon() time.Duration {
	return 3 * s.txTimeout
}

// txResolveLoop is the participant side of coordinator recovery: a
// prepared transaction whose decision has not arrived within the
// presumed-abort horizon is resolved without the (possibly dead)
// coordinating client. The transaction's resolver shard aborts it
// through its own totally-ordered stream — so a late client commit
// loses cleanly — and every other shard asks the resolver how the
// transaction ended and applies that decision locally
// (dirsvc.ResolveOrphanTxs has the full rules, including the
// two-strike treatment of TxUnknown answers).
func (s *Server) txResolveLoop() {
	defer s.wg.Done()
	tick := s.txTimeout / 4
	if tick < 25*time.Millisecond {
		tick = 25 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	strikes := make(map[dirsvc.TxID]int)
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		ready := !s.recovering && s.majorityLocked()
		s.mu.Unlock()
		if !ready {
			continue
		}
		dirsvc.ResolveOrphanTxs(s.applier, s.cfg.Shard, s.cfg.Shards, s.txTimeout, strikes,
			s.decideLocal,
			func(resolver int, id dirsvc.TxID) dirsvc.TxState {
				return dirsvc.QueryTxState(s.txRPC, s.cfg.BaseService, s.cfg.Shards, resolver, id)
			})
	}
}

// decideLocal injects a decision into this shard's own stream; failures
// are retried on the next resolution tick.
func (s *Server) decideLocal(id dirsvc.TxID, commit bool) {
	req := &dirsvc.Request{
		Op:   dirsvc.OpDecide,
		Blob: dirsvc.EncodeDecide(&dirsvc.Decide{ID: id, Commit: commit}),
	}
	_ = s.handleUpdate(req)
}
