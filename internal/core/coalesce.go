package core

import (
	"encoding/binary"

	"dirsvc/internal/dirsvc"
)

// The group stream carries packed application payloads: several client
// updates ride one totally-ordered broadcast. A batch is always one
// entry; concurrently submitted single updates are coalesced by the
// sender loop, amortizing the ordering cost the paper identifies as the
// write path's dominant term (§4).
//
// Wire layout: u8 version | u16 count | count × (u64 opID | u32 len | request).
const groupPayloadVersion = 1

// maxCoalesce bounds how many pending updates one broadcast may carry.
const maxCoalesce = 64

// groupEntry is one client update inside a packed group payload.
type groupEntry struct {
	opID uint64
	raw  []byte // encoded dirsvc.Request
}

func packGroupEntries(entries []groupEntry) []byte {
	size := 3
	for _, e := range entries {
		size += 12 + len(e.raw)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, groupPayloadVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(entries)))
	for _, e := range entries {
		buf = binary.BigEndian.AppendUint64(buf, e.opID)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.raw)))
		buf = append(buf, e.raw...)
	}
	return buf
}

func unpackGroupEntries(payload []byte) ([]groupEntry, error) {
	if len(payload) < 3 || payload[0] != groupPayloadVersion {
		return nil, dirsvc.ErrBadRequest
	}
	n := int(binary.BigEndian.Uint16(payload[1:3]))
	if n == 0 || n > maxCoalesce {
		return nil, dirsvc.ErrBadRequest
	}
	off := 3
	entries := make([]groupEntry, 0, n)
	for i := 0; i < n; i++ {
		if off+12 > len(payload) {
			return nil, dirsvc.ErrBadRequest
		}
		opID := binary.BigEndian.Uint64(payload[off : off+8])
		l := int(binary.BigEndian.Uint32(payload[off+8 : off+12]))
		off += 12
		if l < 0 || off+l > len(payload) {
			return nil, dirsvc.ErrBadRequest
		}
		entries = append(entries, groupEntry{opID: opID, raw: payload[off : off+l]})
		off += l
	}
	if off != len(payload) {
		return nil, dirsvc.ErrBadRequest
	}
	return entries, nil
}

// sendLoop is the per-server coalescing sender: it drains queued client
// updates and ships them to the group in packed broadcasts — one
// broadcast per drain — so N concurrent updates cost ~1 totally-ordered
// group message instead of N.
func (s *Server) sendLoop() {
	defer s.wg.Done()
	for {
		var first coalesceOp
		select {
		case <-s.stop:
			return
		case first = <-s.sendCh:
		}
		batch := drainCoalesce(first, s.sendCh)

		s.mu.Lock()
		member := s.member
		era := s.era
		s.mu.Unlock()
		// Drop updates queued before the last recovery: their initiators
		// already answered NoMajority and the client may have retried, so
		// broadcasting them now would apply the operation twice.
		live := batch[:0]
		for _, op := range batch {
			if op.era == era {
				live = append(live, op)
			}
		}
		batch = live
		if len(batch) == 0 {
			continue
		}

		entries := make([]groupEntry, len(batch))
		for i, op := range batch {
			entries[i] = groupEntry{opID: op.opID, raw: op.raw}
		}
		if member == nil {
			s.failPending(batch)
			continue
		}
		if _, err := member.Send(packGroupEntries(entries)); err != nil {
			s.failPending(batch)
			continue
		}
		s.groupSends.Add(1)
		// The broadcast is stable (resilience degree satisfied): release
		// the waiting initiators.
		s.mu.Lock()
		for _, op := range batch {
			s.sendAcked[op.opID] = true
		}
		if len(s.sendAcked) > 10000 {
			acked := make(map[uint64]bool, len(batch))
			for _, op := range batch {
				acked[op.opID] = true
			}
			s.sendAcked = acked
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// drainCoalesce collects every update already waiting in ch behind
// first, up to maxCoalesce, without blocking: the shared broadcast
// carries exactly the backlog that accumulated while the previous
// broadcast was in flight.
func drainCoalesce(first coalesceOp, ch <-chan coalesceOp) []coalesceOp {
	batch := []coalesceOp{first}
	for len(batch) < maxCoalesce {
		select {
		case op := <-ch:
			batch = append(batch, op)
		default:
			return batch
		}
	}
	return batch
}

// failPending answers every queued initiator with NoMajority after a
// failed broadcast; the client retries elsewhere.
func (s *Server) failPending(batch []coalesceOp) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, op := range batch {
		s.results[op.opID] = &dirsvc.Reply{Status: dirsvc.StatusNoMajority}
		s.sendAcked[op.opID] = true
	}
	s.cond.Broadcast()
}
