package core

import (
	"reflect"
	"testing"

	"dirsvc/internal/capability"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/lastfail"
	"dirsvc/internal/sim"
	"dirsvc/internal/vdisk"
)

func TestExchangeBlobRoundTrip(t *testing.T) {
	tests := []struct {
		name     string
		mourned  lastfail.Set
		stayedUp bool
	}{
		{name: "empty", mourned: lastfail.NewSet(), stayedUp: false},
		{name: "one", mourned: lastfail.NewSet(2), stayedUp: true},
		{name: "all", mourned: lastfail.NewSet(1, 2, 3), stayedUp: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mourned, stayedUp, err := decodeExchange(encodeExchange(tt.mourned, tt.stayedUp))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if stayedUp != tt.stayedUp {
				t.Fatalf("stayedUp = %v", stayedUp)
			}
			if !reflect.DeepEqual(mourned.Sorted(), tt.mourned.Sorted()) {
				t.Fatalf("mourned = %v, want %v", mourned.Sorted(), tt.mourned.Sorted())
			}
		})
	}
}

func TestExchangeBlobRejectsGarbage(t *testing.T) {
	for _, blob := range [][]byte{nil, {1}, {0, 5, 1}, {0, 1, 1, 1, 9}} {
		if _, _, err := decodeExchange(blob); err == nil {
			t.Fatalf("decodeExchange(%v) succeeded", blob)
		}
	}
}

func TestStateBundleRoundTrip(t *testing.T) {
	in := &stateBundle{
		appliedSeq: 42,
		commitSeq:  17,
		dirs: []dirState{
			{obj: 1, seq: 40, secret: capability.NewSecret([]byte("a")), image: []byte("dir-one")},
			{obj: 9, seq: 42, secret: capability.NewSecret([]byte("b")), image: nil},
		},
	}
	got, err := decodeStateBundle(encodeStateBundle(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.appliedSeq != in.appliedSeq || got.commitSeq != in.commitSeq || len(got.dirs) != 2 {
		t.Fatalf("bundle = %+v", got)
	}
	if got.dirs[0].obj != 1 || string(got.dirs[0].image) != "dir-one" || got.dirs[0].secret != in.dirs[0].secret {
		t.Fatalf("dir[0] = %+v", got.dirs[0])
	}
	if got.dirs[1].obj != 9 || len(got.dirs[1].image) != 0 {
		t.Fatalf("dir[1] = %+v", got.dirs[1])
	}
}

func TestStateBundleRejectsTruncation(t *testing.T) {
	raw := encodeStateBundle(&stateBundle{
		appliedSeq: 1,
		dirs:       []dirState{{obj: 1, seq: 1, image: []byte("xyz")}},
	})
	for cut := 1; cut < len(raw); cut += 3 {
		if _, err := decodeStateBundle(raw[:len(raw)-cut]); err == nil {
			t.Fatalf("truncated bundle (cut %d) decoded", cut)
		}
	}
}

// TestRecoverySeqZeroAfterInterruptedRecovery covers §3's recovering
// flag: a server whose previous recovery was interrupted must advertise
// sequence number zero so nobody treats its mixed state as current.
func TestRecoverySeqZeroAfterInterruptedRecovery(t *testing.T) {
	model := sim.FastModel()
	disk := vdisk.New(model, 128)
	admin, err := vdisk.NewPartition(disk, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate prior state: commit block with high seq AND the
	// recovering flag set (crash mid-recovery).
	commit := &dirsvc.CommitBlock{Up: []bool{true, true, true}, Seq: 99, Recovering: true}
	if err := commit.Write(admin); err != nil {
		t.Fatal(err)
	}
	table, err := dirsvc.OpenObjectTable(admin)
	if err != nil {
		t.Fatal(err)
	}
	_ = table.Set(2, dirsvc.ObjectEntry{Seq: 120})

	// Reproduce the recovery-seq computation from Server.recover.
	loaded, err := dirsvc.ReadCommitBlock(admin, 3)
	if err != nil {
		t.Fatal(err)
	}
	mySeq := table.MaxSeq()
	if loaded.Seq > mySeq {
		mySeq = loaded.Seq
	}
	if !loaded.Recovering {
		t.Fatal("recovering flag lost")
	}
	if loaded.Recovering {
		mySeq = 0
	}
	if mySeq != 0 {
		t.Fatalf("recovery seq = %d, want 0 for interrupted recovery", mySeq)
	}
}

func TestConfigValidation(t *testing.T) {
	net := sim.NewNetwork(sim.FastModel(), 1)
	stack := newStack(t, net)
	if _, err := NewServer(stack, Config{Service: "x", ID: 0, N: 3}); err == nil {
		t.Fatal("accepted server id 0")
	}
	if _, err := NewServer(stack, Config{Service: "x", ID: 4, N: 3}); err == nil {
		t.Fatal("accepted server id beyond N")
	}
}

func TestNewCheckSeedUnique(t *testing.T) {
	a := newCheckSeed(1, 5, 0)
	b := newCheckSeed(1, 6, 0)
	c := newCheckSeed(2, 5, 0)
	d := newCheckSeed(1, 5, 1)
	if string(a) == string(b) || string(a) == string(c) || string(a) == string(d) {
		t.Fatal("check seeds collide")
	}
}
