package core

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"dirsvc/internal/capability"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/group"
	"dirsvc/internal/lastfail"
	"dirsvc/internal/rpc"
	"dirsvc/internal/sim"
)

// recover runs the Fig. 6 recovery protocol until this server is a
// member of a majority group holding the latest directory state. It is
// called at boot and whenever the group cannot be rebuilt with a
// majority.
func (s *Server) recover() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("core: server closed")
	}
	s.recovering = true
	s.era++
	// Stop recording events while recovery replays or pulls state: the
	// replayed history predates every live subscription, and the applied
	// cursor may jump. Subscribers are told to resync (best effort) and
	// the log gets a fresh identity when recovery completes.
	s.applier.AttachEvents(nil)
	// Waiting initiators exit on the era change; whatever they left in
	// the result/ack tables is abandoned, and any update still queued
	// for the sender belongs to the old era (the sender drops it).
	s.results = make(map[uint64]*dirsvc.Reply)
	s.sendAcked = make(map[uint64]bool)
	old := s.member
	s.member = nil
	s.memberHint.Store((*group.Member)(nil))
	// Derive the recovery sequence number before touching anything:
	// max over per-directory seqnos, the commit block, and the NVRAM
	// log (§3). If the recovering flag was already set, a previous
	// recovery was interrupted and our state may be inconsistent —
	// force the sequence number to zero so nobody syncs from us (§3).
	mySeq := s.table.MaxSeq()
	if s.commit.Seq > mySeq {
		mySeq = s.commit.Seq
	}
	if s.nvlog != nil && s.nvlog.MaxSeq() > mySeq {
		mySeq = s.nvlog.MaxSeq()
	}
	if s.engine != nil && s.engine.MaxSeq() > mySeq {
		mySeq = s.engine.MaxSeq()
	}
	if s.commit.Recovering {
		mySeq = 0
	}
	s.recoverySeq = mySeq
	mourned := lastfail.MournedFromConfig(allServerIDs(s.cfg.N), upSet(s.commit))
	stayedUp := s.neverDown
	s.cond.Broadcast()
	s.mu.Unlock()

	if old != nil {
		old.Leave()
	}

	// Mark that recovery is in progress, so a crash mid-recovery is
	// detected next boot (Fig. 4's recovering field).
	s.mu.Lock()
	s.commit.Recovering = true
	commit := *s.commit
	s.mu.Unlock()
	if err := commit.Write(s.cfg.Admin); err != nil {
		return fmt.Errorf("write recovering flag: %w", err)
	}

	rc, err := rpc.NewClient(s.stack)
	if err != nil {
		return err
	}
	defer rc.Close()

	beat := heartbeat(s.model, s.cfg)
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return errors.New("core: server closed during recovery")
		}

		member, syncedTo, err := s.recoverOnce(rc, mySeq, mourned, stayedUp, beat)
		if err == nil && s.engine != nil {
			// Seal the recovered state into a fresh checkpoint before
			// serving: a pulled snapshot obsoletes whatever the engine held,
			// and replayed suffixes should not be replayed twice. Nothing
			// applies concurrently yet (the member installs below), so the
			// cut is consistent. A write failure is survivable — the
			// recovering flag is still set, so a crash before the next
			// checkpoint resyncs from a peer.
			_ = s.checkpointNow(0)
		}
		if err != nil {
			if debugRecovery {
				fmt.Printf("server %d recovery attempt %d: %v\n", s.cfg.ID, attempt, err)
			}
			// Wait for more servers to come back, then start all over
			// again (Fig. 6: "try again").
			time.Sleep(beat)
			continue
		}

		// Success: install the new member and resume normal operation.
		// The applied cursor starts at the stream position our state
		// actually covers (the snapshot cut, or our join point when our
		// own state was freshest) — NOT at the member's buffered
		// position, which may include queued messages the group thread
		// has yet to apply. Messages at or below the cursor are skipped
		// by the group thread; later ones apply normally.
		s.mu.Lock()
		s.member = member
		s.memberHint.Store(member)
		s.recovering = false
		s.neverDown = true
		info := member.Info()
		s.updateConfigVectorLocked(info.Members)
		s.commit.Recovering = false
		s.groupResume = syncedTo
		s.groupSeq = syncedTo
		s.appliedGroup.Store(syncedTo)
		commit := *s.commit
		applied := s.appliedSeq
		s.cond.Broadcast()
		s.mu.Unlock()
		// The replica's state is current again: restart the event log at
		// the applied cursor (a fresh identity — surviving subscribers get
		// a resync push) and resume recording.
		s.notifier.Reset(applied)
		s.applier.AttachEvents(s.notifier)
		if err := commit.Write(s.cfg.Admin); err != nil {
			return fmt.Errorf("write commit block: %w", err)
		}
		return nil
	}
}

// recoverOnce performs one round of Fig. 6: join or create the group,
// wait for a majority, run Skeen's exchange, verify the last set, fetch
// the latest state, and return the live group member. Any failure tears
// the attempt down and returns an error for retry.
func (s *Server) recoverOnce(
	rc *rpc.Client,
	mySeq uint64,
	myMourned lastfail.Set,
	stayedUp bool,
	beat time.Duration,
) (*group.Member, uint64, error) {
	member, err := group.JoinOrCreate(s.stack, s.groupConfig())
	if err != nil {
		return nil, 0, fmt.Errorf("join or create group: %w", err)
	}
	abort := func() { member.Leave() }

	// Wait until the group holds a majority, or give up and retry
	// (Fig. 6: "while (minority && !timeout) wait").
	deadline := time.Now().Add(6 * beat)
	for {
		info := member.Info()
		if info.State == group.StateNormal && len(info.Members) >= s.majorityNeeded() {
			break
		}
		if time.Now().After(deadline) {
			abort()
			return nil, 0, errors.New("no majority joined")
		}
		time.Sleep(beat / 3)
	}

	// Drain membership events so the group thread starts clean later;
	// also gives us the current member set.
	info := member.Info()

	// Exchange mourned sets and sequence numbers with every other
	// member over RPC (Fig. 6).
	nodeToServer := make(map[sim.NodeID]int, len(s.cfg.Peers))
	for id, nd := range s.cfg.Peers {
		nodeToServer[nd] = id
	}
	state := lastfail.NewState(allServerIDs(s.cfg.N), s.cfg.ID, myMourned)
	seqnos := map[int]uint64{s.cfg.ID: mySeq}
	stayedUpServer := -1
	if stayedUp {
		stayedUpServer = s.cfg.ID
	}
	for _, nd := range info.Members {
		peer, ok := nodeToServer[nd]
		if !ok || peer == s.cfg.ID {
			continue
		}
		req := &dirsvc.Request{Op: dirsvc.OpExchange, Server: s.cfg.ID, Seq: mySeq}
		raw, err := rc.Trans(dirsvc.RecoveryPort(s.cfg.Service, peer), req.Encode())
		if err != nil {
			continue // unreachable peer: simply not part of the exchange
		}
		reply, err := dirsvc.DecodeReply(raw)
		if err != nil || reply.Status != dirsvc.StatusOK {
			continue
		}
		theirMourned, theirStayedUp, err := decodeExchange(reply.Blob)
		if err != nil {
			continue
		}
		state.Exchange(peer, theirMourned)
		seqnos[peer] = reply.Seq
		if theirStayedUp {
			stayedUpServer = peer
		}
	}

	// Condition 2: the last set must be covered (§3.2), possibly via
	// the sequence-number improvement.
	recoverable := state.CanRecover()
	if !recoverable && !s.cfg.DisableImprovement {
		recoverable = state.CanRecoverWithImprovement(seqnos, stayedUpServer)
	}
	if !recoverable && s.forced.Load() {
		// Administrator override (§3.1's escape): proceed with whatever
		// survives, accepting that the latest updates may be lost.
		recoverable = true
	}
	if !recoverable {
		abort()
		return nil, 0, fmt.Errorf("last set %v not in new group %v",
			state.LastSet().Sorted(), state.NewGroup().Sorted())
	}

	// Fetch the latest directories from the member with the highest
	// sequence number (Fig. 6: "s = HighestSeq; get copies from s").
	src, srcSeq := s.cfg.ID, mySeq
	for id, seq := range seqnos {
		if seq > srcSeq || (seq == srcSeq && id < src) {
			src, srcSeq = id, seq
		}
	}
	// joinSeq is the stream position our membership started at: the
	// member's queue buffers everything after it, nothing before it.
	// (Nothing Receives from the member until recovery installs it, so
	// Delivered still reads the welcome position.)
	joinSeq := member.Info().Delivered
	syncedTo := joinSeq
	if src != s.cfg.ID && srcSeq > mySeq {
		// The snapshot must be cut at or past our join point: a source
		// whose apply cursor lags the stream would hand us images
		// missing messages our member never buffered — a silent gap. A
		// member's cursor always catches up (our own join is in its
		// stream), so re-pull until it passes joinSeq.
		pullDeadline := time.Now().Add(6 * beat)
		for {
			cutSeq, err := s.pullState(rc, src)
			if err != nil {
				abort()
				return nil, 0, fmt.Errorf("pull state from server %d: %w", src, err)
			}
			if cutSeq >= joinSeq {
				syncedTo = cutSeq
				break
			}
			if time.Now().After(pullDeadline) {
				abort()
				return nil, 0, fmt.Errorf("state source %d stuck at stream position %d before our join point %d",
					src, cutSeq, joinSeq)
			}
			time.Sleep(beat / 3)
		}
	} else {
		// Even with the highest seq we must have our cache loaded. Our
		// state covers exactly the stream up to our join point: no peer
		// holds an update we lack (srcSeq <= mySeq), so no application
		// message sits in the gap between our crash and our join.
		if err := s.loadLocalState(); err != nil {
			abort()
			return nil, 0, err
		}
	}
	return member, syncedTo, nil
}

// loadLocalState rebuilds the replica from its own stable storage. With
// a storage engine the base image is the last checkpoint (installed
// wholesale — object table, topology, in-doubt transactions, remembered
// outcomes) and only the log records past the checkpoint's sequence
// number replay on top: the suffix, not the full history. Without one,
// the directory cache reloads from the Bullet store and the whole NVRAM
// log replays. Replayed OpPrepare records re-stage the in-doubt
// transaction (locks and all) exactly as it stood before the crash; a
// following OpDecide record then resolves it, and one still undecided
// is left for the resolution loop.
func (s *Server) loadLocalState() error {
	s.applier.ResetTx()
	s.applier.InvalidateCache()
	var ckptSeq uint64
	haveCkpt := false
	if s.engine != nil {
		seq, payload, err := s.engine.Checkpoint()
		switch {
		case err == nil:
			snap, derr := dirsvc.DecodeSnapshot(payload)
			if derr != nil {
				return derr
			}
			if err := s.applier.InstallSnapshot(snap, false); err != nil {
				return err
			}
			ckptSeq = seq
			haveCkpt = true
			if snap.Topo != nil {
				s.mu.Lock()
				t := *snap.Topo
				s.commit.Topo = &t
				s.mu.Unlock()
			}
		case errors.Is(err, dirsvc.ErrNoCheckpoint):
			// Fresh engine: nothing checkpointed yet, start empty.
		default:
			return err
		}
	} else if err := s.applier.LoadAll(); err != nil {
		return err
	}
	if err := s.applier.FormatRoot(s.nvlog == nil && s.engine == nil); err != nil {
		return err
	}
	maxSeq := s.table.MaxSeq()
	if ckptSeq > maxSeq {
		maxSeq = ckptSeq
	}
	if s.engine != nil && s.nvlog == nil {
		// Engine-backed critical path: replay the write-ahead suffix. The
		// checkpoint flip already truncated everything it covers.
		for _, rec := range s.engine.LogSuffix(ckptSeq) {
			req, err := dirsvc.DecodeRequest(rec.Payload)
			if err != nil {
				continue
			}
			s.replayLogged(req, rec.Seq, &maxSeq)
		}
	}
	if s.nvlog != nil {
		reqs, seqs, err := s.nvlog.Live()
		if err != nil {
			return err
		}
		for i, req := range reqs {
			if haveCkpt && seqs[i] <= ckptSeq {
				// The checkpoint already covers this record; re-applying
				// it would double-apply the update (and a prepare replay
				// would re-stage a transaction the checkpoint resolved).
				continue
			}
			s.replayLogged(req, seqs[i], &maxSeq)
		}
		if s.nvlog.MaxSeq() > maxSeq {
			maxSeq = s.nvlog.MaxSeq()
		}
	}
	s.mu.Lock()
	if s.commit.Seq > maxSeq {
		maxSeq = s.commit.Seq
	}
	s.appliedSeq = maxSeq
	s.mu.Unlock()
	return nil
}

// replayLogged re-applies one recovery-log record against the RAM state.
func (s *Server) replayLogged(req *dirsvc.Request, seq uint64, maxSeq *uint64) {
	if req.Op == dirsvc.OpDecide {
		// A decide whose transaction is not staged here is a re-logged
		// outcome record (the effects were flushed before the crash):
		// restore the memory so decision queries stay authoritative,
		// instead of replaying it as an update.
		if d, derr := dirsvc.DecodeDecide(req.Blob); derr == nil {
			if state, _ := s.applier.TxStateOf(d.ID); state != dirsvc.TxPrepared {
				s.applier.RestoreDecided([]dirsvc.DecidedTx{{ID: d.ID, Commit: d.Commit, Seq: seq}})
				if seq > *maxSeq {
					*maxSeq = seq
				}
				return
			}
		}
	}
	if _, err := s.applier.ApplyUpdate(req, seq, false); err != nil {
		// Replay conflicts mean the record was already applied before
		// the crash flushed it; skip.
		return
	}
	if seq > *maxSeq {
		*maxSeq = seq
	}
}

// pullState transfers the full directory state from server src: object
// table entries with secrets plus every directory image, written through
// to our own Bullet store and object table.
func (s *Server) pullState(rc *rpc.Client, src int) (uint64, error) {
	req := &dirsvc.Request{Op: dirsvc.OpSyncPull, Server: s.cfg.ID}
	raw, err := rc.Trans(dirsvc.RecoveryPort(s.cfg.Service, src), req.Encode())
	if err != nil {
		return 0, err
	}
	reply, err := dirsvc.DecodeReply(raw)
	if err != nil {
		return 0, err
	}
	if reply.Status != dirsvc.StatusOK {
		return 0, reply.Status.Err()
	}
	bundle, err := decodeStateBundle(reply.Blob)
	if err != nil {
		return 0, err
	}
	if bundle.appliedSeq == 0 && bundle.commitSeq == 0 && len(bundle.dirs) == 0 {
		// Defensive: an empty bundle means the source had nothing to
		// offer (it should have refused); installing it would wipe us.
		return 0, errors.New("core: source returned an empty state bundle")
	}

	// Discard stale local state, then install the transferred images.
	if s.nvlog != nil {
		if err := s.nvlog.Clear(); err != nil {
			return 0, err
		}
	}
	s.applier.ResetTx()
	s.applier.InvalidateCache()
	if s.engine != nil {
		// Engine-backed replica: install the bundle as one snapshot —
		// RAM-only, no Bullet or object-table writes; recover() seals it
		// into a fresh checkpoint before the replica serves anything.
		if err := s.applier.InstallSnapshot(bundleSnapshot(bundle), false); err != nil {
			return 0, err
		}
		s.mu.Lock()
		if bundle.topo != nil {
			t := *bundle.topo
			s.commit.Topo = &t
		}
		s.commit.Seq = bundle.commitSeq
		s.appliedSeq = bundle.appliedSeq
		s.mu.Unlock()
		return bundle.groupSeq, nil
	}
	entries := make(map[uint32]dirsvc.ObjectEntry, len(bundle.dirs))
	for _, d := range bundle.dirs {
		bcap, err := s.bc.Create(d.image)
		if err != nil {
			return 0, fmt.Errorf("store directory %d: %w", d.obj, err)
		}
		entries[d.obj] = dirsvc.ObjectEntry{Cap: bcap, Seq: d.seq, Secret: d.secret}
	}
	if err := s.table.ReplaceAll(entries, bundle.stubs); err != nil {
		return 0, err
	}
	if bundle.topo != nil {
		// Adopt the source's shard-map state before replaying anything,
		// so the allocator and routing are fenced to the right epoch; the
		// commit-block write at recovery completion persists it.
		s.applier.RestoreTopology(bundle.topo)
		s.mu.Lock()
		t := *bundle.topo
		s.commit.Topo = &t
		s.mu.Unlock()
	}
	if err := s.applier.LoadAll(); err != nil {
		return 0, err
	}
	// Reinstate the source's in-doubt transactions: re-apply each
	// prepare (re-staging overlay and locks against the fresh images)
	// and re-log it to NVRAM so a later crash still finds it. Remembered
	// outcomes ride along so this replica can answer decision queries.
	for _, tx := range bundle.txs {
		req, err := dirsvc.DecodeRequest(tx.raw)
		if err != nil {
			continue
		}
		if _, err := s.applier.ApplyUpdate(req, tx.seq, false); err != nil {
			continue
		}
		if s.nvlog != nil {
			_, _ = s.nvlog.Append(req, tx.seq)
		}
	}
	s.applier.RestoreDecided(bundle.decided)
	if s.nvlog != nil {
		// Keep the transferred outcomes durable here too (see flushNVRAM).
		for _, d := range s.applier.RecentDecided(recentDecidedKept, s.decidedHorizon()) {
			req := &dirsvc.Request{
				Op:   dirsvc.OpDecide,
				Blob: dirsvc.EncodeDecide(&dirsvc.Decide{ID: d.ID, Commit: d.Commit}),
			}
			_, _ = s.nvlog.Append(req, d.Seq)
		}
	}
	s.mu.Lock()
	s.commit.Seq = bundle.commitSeq
	s.appliedSeq = bundle.appliedSeq
	s.mu.Unlock()
	return bundle.groupSeq, nil
}

// bundleSnapshot converts a pulled state bundle into the storage
// engine's portable snapshot form, so the whole install is one
// InstallSnapshot call.
func bundleSnapshot(b *stateBundle) *dirsvc.Snapshot {
	snap := &dirsvc.Snapshot{
		AppliedSeq: b.appliedSeq,
		CommitSeq:  b.commitSeq,
		Topo:       b.topo,
		Decided:    b.decided,
	}
	for _, d := range b.dirs {
		snap.Objects = append(snap.Objects, dirsvc.SnapObject{
			Object: d.obj, Seq: d.seq, Secret: d.secret, Image: d.image,
		})
	}
	for obj, st := range b.stubs {
		snap.Stubs = append(snap.Stubs, dirsvc.SnapStub{Object: obj, Target: st.Target, Seq: st.Seq})
	}
	for _, tx := range b.txs {
		snap.InDoubt = append(snap.InDoubt, dirsvc.SnapTx{Seq: tx.seq, Raw: tx.raw})
	}
	return snap
}

// handleRecoveryRPC serves the server-to-server recovery operations.
func (s *Server) handleRecoveryRPC(req *rpc.Request) []byte {
	dreq, err := dirsvc.DecodeRequest(req.Payload)
	if err != nil {
		return (&dirsvc.Reply{Status: dirsvc.StatusBadRequest}).Encode()
	}
	switch dreq.Op {
	case dirsvc.OpExchange:
		return s.handleExchange(dreq).Encode()
	case dirsvc.OpSyncPull:
		return s.handleSyncPull().Encode()
	case dirsvc.OpReadDir:
		return s.handleReadDir(dreq).Encode()
	case dirsvc.OpStatus:
		st := s.Status()
		return (&dirsvc.Reply{Status: dirsvc.StatusOK, Seq: st.AppliedSeq}).Encode()
	default:
		return (&dirsvc.Reply{Status: dirsvc.StatusBadRequest}).Encode()
	}
}

// handleExchange answers a mourned-set exchange (Fig. 6). While this
// server is itself recovering it advertises the sequence number derived
// from stable storage at recovery entry — forced to zero if the previous
// recovery was interrupted (§3, the recovering flag) — and its live
// counter once it is back in service.
func (s *Server) handleExchange(req *dirsvc.Request) *dirsvc.Reply {
	s.mu.Lock()
	mySeq := s.appliedSeq
	if s.recovering {
		mySeq = s.recoverySeq
	}
	mourned := lastfail.MournedFromConfig(allServerIDs(s.cfg.N), upSet(s.commit))
	stayedUp := s.neverDown
	s.mu.Unlock()
	return &dirsvc.Reply{
		Status: dirsvc.StatusOK,
		Seq:    mySeq,
		Blob:   encodeExchange(mourned, stayedUp),
	}
}

// handleSyncPull answers a full state transfer. A server that is itself
// still recovering must refuse: its directory cache is not loaded yet,
// and shipping a half-built bundle would hand the puller an empty (or
// stale) replica that it would then serve as current.
func (s *Server) handleSyncPull() *dirsvc.Reply {
	// Hold the batch lock while cutting the snapshot so the images and
	// the advertised stream position are consistent: the recovering
	// server skips every group message at or below groupSeq.
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	s.mu.Lock()
	if s.recovering {
		s.mu.Unlock()
		return &dirsvc.Reply{Status: dirsvc.StatusConflict}
	}
	appliedSeq := s.appliedSeq
	commitSeq := s.commit.Seq
	groupSeq := s.groupSeq
	s.mu.Unlock()
	bundle := stateBundle{appliedSeq: appliedSeq, commitSeq: commitSeq, groupSeq: groupSeq}
	for obj, e := range s.table.All() {
		d, ok := s.applier.Directory(obj)
		if !ok {
			continue
		}
		bundle.dirs = append(bundle.dirs, dirState{
			obj:    obj,
			seq:    e.Seq,
			secret: e.Secret,
			image:  d.Encode(),
		})
	}
	// In-doubt two-phase transactions and remembered outcomes travel
	// with the images, so a recovering replica holds the same votes and
	// can answer the same decision queries as the rest of the group.
	for _, tx := range s.applier.InDoubtTxs() {
		bundle.txs = append(bundle.txs, txState{seq: tx.Seq, raw: tx.Req.Encode()})
	}
	bundle.decided = s.applier.DecidedTxs()
	if topo, ok := s.applier.Topology(); ok {
		t := topo
		bundle.topo = &t
		bundle.stubs = s.table.Stubs()
	}
	return &dirsvc.Reply{Status: dirsvc.StatusOK, Blob: encodeStateBundle(&bundle)}
}

// handleReadDir returns one directory image (diagnostics).
func (s *Server) handleReadDir(req *dirsvc.Request) *dirsvc.Reply {
	d, ok := s.applier.Directory(req.Dir.Object)
	if !ok {
		return &dirsvc.Reply{Status: dirsvc.StatusNotFound}
	}
	return &dirsvc.Reply{Status: dirsvc.StatusOK, Blob: d.Encode(), Seq: d.Seq}
}

func allServerIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

func upSet(c *dirsvc.CommitBlock) lastfail.Set {
	up := lastfail.NewSet()
	for _, id := range c.UpServers() {
		up[id] = true
	}
	return up
}

// Exchange blob: count u16, ids…, stayedUp u8.
func encodeExchange(mourned lastfail.Set, stayedUp bool) []byte {
	ids := mourned.Sorted()
	buf := make([]byte, 0, 3+len(ids))
	buf = append(buf, byte(len(ids)>>8), byte(len(ids)))
	for _, id := range ids {
		buf = append(buf, byte(id))
	}
	if stayedUp {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

func decodeExchange(blob []byte) (lastfail.Set, bool, error) {
	if len(blob) < 3 {
		return nil, false, errors.New("core: short exchange blob")
	}
	n := int(blob[0])<<8 | int(blob[1])
	if len(blob) != 3+n {
		return nil, false, errors.New("core: bad exchange blob")
	}
	mourned := lastfail.NewSet()
	for i := 0; i < n; i++ {
		mourned[int(blob[2+i])] = true
	}
	return mourned, blob[2+n] == 1, nil
}

type dirState struct {
	obj    uint32
	seq    uint64
	secret capability.Secret
	image  []byte
}

// txState is one in-doubt transaction in a state bundle: the encoded
// OpPrepare request plus the sequence number it applied under.
type txState struct {
	seq uint64
	raw []byte
}

type stateBundle struct {
	appliedSeq uint64
	commitSeq  uint64
	dirs       []dirState
	txs        []txState
	decided    []dirsvc.DecidedTx
	// Elastic-topology tail (absent in bundles from older servers):
	// the source's shard-map state and its forwarding stubs.
	topo  *dirsvc.TopoState
	stubs map[uint32]dirsvc.StubEntry
	// groupSeq is the group-stream position the snapshot was cut at:
	// every message at or below it is reflected in the images above.
	// The recovering server must not re-apply those messages — and must
	// not accept a snapshot cut before its own join point, or the gap
	// in between would be lost forever.
	groupSeq uint64
}

func encodeStateBundle(b *stateBundle) []byte {
	w := make([]byte, 0, 64)
	w = appendUint64(w, b.appliedSeq)
	w = appendUint64(w, b.commitSeq)
	w = appendUint32(w, uint32(len(b.dirs)))
	for _, d := range b.dirs {
		w = appendUint32(w, d.obj)
		w = appendUint64(w, d.seq)
		w = append(w, d.secret[:]...)
		w = appendUint32(w, uint32(len(d.image)))
		w = append(w, d.image...)
	}
	w = appendUint32(w, uint32(len(b.txs)))
	for _, tx := range b.txs {
		w = appendUint64(w, tx.seq)
		w = appendUint32(w, uint32(len(tx.raw)))
		w = append(w, tx.raw...)
	}
	w = appendUint32(w, uint32(len(b.decided)))
	for _, d := range b.decided {
		w = append(w, d.ID[:]...)
		if d.Commit {
			w = append(w, 1)
		} else {
			w = append(w, 0)
		}
		w = appendUint64(w, d.Seq)
		w = appendUint32(w, uint32(len(d.Results)))
		w = append(w, d.Results...)
	}
	if b.topo != nil {
		w = append(w, 1)
		w = append(w, dirsvc.EncodeTopoState(b.topo)...)
		w = appendUint32(w, uint32(len(b.stubs)))
		for _, st := range sortedStubs(b.stubs) {
			w = appendUint32(w, st.obj)
			w = appendUint32(w, uint32(st.entry.Target))
			w = appendUint64(w, st.entry.Seq)
		}
	} else {
		w = append(w, 0)
	}
	w = appendUint64(w, b.groupSeq)
	return w
}

type stubRec struct {
	obj   uint32
	entry dirsvc.StubEntry
}

func sortedStubs(stubs map[uint32]dirsvc.StubEntry) []stubRec {
	out := make([]stubRec, 0, len(stubs))
	for obj, st := range stubs {
		out = append(out, stubRec{obj: obj, entry: st})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].obj < out[j].obj })
	return out
}

func decodeStateBundle(raw []byte) (*stateBundle, error) {
	b := &stateBundle{}
	off := 0
	next := func(n int) ([]byte, error) {
		if off+n > len(raw) {
			return nil, errors.New("core: short state bundle")
		}
		out := raw[off : off+n]
		off += n
		return out, nil
	}
	u64 := func() (uint64, error) {
		b8, err := next(8)
		if err != nil {
			return 0, err
		}
		return uint64(b8[0])<<56 | uint64(b8[1])<<48 | uint64(b8[2])<<40 | uint64(b8[3])<<32 |
			uint64(b8[4])<<24 | uint64(b8[5])<<16 | uint64(b8[6])<<8 | uint64(b8[7]), nil
	}
	u32 := func() (uint32, error) {
		b4, err := next(4)
		if err != nil {
			return 0, err
		}
		return uint32(b4[0])<<24 | uint32(b4[1])<<16 | uint32(b4[2])<<8 | uint32(b4[3]), nil
	}
	var err error
	if b.appliedSeq, err = u64(); err != nil {
		return nil, err
	}
	if b.commitSeq, err = u64(); err != nil {
		return nil, err
	}
	count, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < count; i++ {
		var d dirState
		if d.obj, err = u32(); err != nil {
			return nil, err
		}
		if d.seq, err = u64(); err != nil {
			return nil, err
		}
		sec, err := next(6)
		if err != nil {
			return nil, err
		}
		copy(d.secret[:], sec)
		n, err := u32()
		if err != nil {
			return nil, err
		}
		img, err := next(int(n))
		if err != nil {
			return nil, err
		}
		d.image = append([]byte(nil), img...)
		b.dirs = append(b.dirs, d)
	}
	if off == len(raw) {
		// Pre-2PC bundle: no transaction sections (defensive).
		return b, nil
	}
	ntx, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < ntx; i++ {
		var tx txState
		if tx.seq, err = u64(); err != nil {
			return nil, err
		}
		n, err := u32()
		if err != nil {
			return nil, err
		}
		rawReq, err := next(int(n))
		if err != nil {
			return nil, err
		}
		tx.raw = append([]byte(nil), rawReq...)
		b.txs = append(b.txs, tx)
	}
	ndec, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < ndec; i++ {
		var d dirsvc.DecidedTx
		idb, err := next(len(d.ID))
		if err != nil {
			return nil, err
		}
		copy(d.ID[:], idb)
		flag, err := next(1)
		if err != nil {
			return nil, err
		}
		d.Commit = flag[0] == 1
		if d.Seq, err = u64(); err != nil {
			return nil, err
		}
		n, err := u32()
		if err != nil {
			return nil, err
		}
		res, err := next(int(n))
		if err != nil {
			return nil, err
		}
		d.Results = append([]byte(nil), res...)
		b.decided = append(b.decided, d)
	}
	if off == len(raw) {
		// Pre-elastic bundle: no topology tail (defensive).
		return b, nil
	}
	marker, err := next(1)
	if err != nil || marker[0] > 1 {
		return nil, errors.New("core: bad state bundle topology tail")
	}
	if marker[0] == 1 {
		topoRaw, err := next(dirsvc.TopoStateLen)
		if err != nil {
			return nil, err
		}
		if b.topo, err = dirsvc.DecodeTopoState(topoRaw); err != nil {
			return nil, err
		}
		nstub, err := u32()
		if err != nil {
			return nil, err
		}
		b.stubs = make(map[uint32]dirsvc.StubEntry, nstub)
		for i := uint32(0); i < nstub; i++ {
			obj, err := u32()
			if err != nil {
				return nil, err
			}
			target, err := u32()
			if err != nil {
				return nil, err
			}
			seq, err := u64()
			if err != nil {
				return nil, err
			}
			b.stubs[obj] = dirsvc.StubEntry{Target: int(target), Seq: seq}
		}
	}
	if off == len(raw) {
		// Bundle from before snapshots carried their stream position.
		return b, nil
	}
	if b.groupSeq, err = u64(); err != nil {
		return nil, err
	}
	return b, nil
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// debugRecovery enables recovery-loop tracing (set via linker or tests).
var debugRecovery = os.Getenv("CORE_DEBUG_RECOVERY") != ""
