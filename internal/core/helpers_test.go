package core

import (
	"testing"

	"dirsvc/internal/flip"
	"dirsvc/internal/sim"
)

func newStack(t *testing.T, net *sim.Network) *flip.Stack {
	t.Helper()
	s := flip.NewStack(net.AddNode("test"))
	t.Cleanup(s.Close)
	return s
}
