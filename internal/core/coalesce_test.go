package core

import (
	"errors"
	"fmt"
	"testing"

	"dirsvc/internal/dirsvc"
)

func TestGroupEntriesRoundTrip(t *testing.T) {
	entries := []groupEntry{
		{opID: 1<<48 | 7, raw: (&dirsvc.Request{Op: dirsvc.OpAppendRow, Name: "x"}).Encode()},
		{opID: 2<<48 | 9, raw: (&dirsvc.Request{Op: dirsvc.OpDeleteRow, Name: "y"}).Encode()},
		{opID: 3, raw: []byte{}},
	}
	got, err := unpackGroupEntries(packGroupEntries(entries))
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	for i, e := range entries {
		if got[i].opID != e.opID || string(got[i].raw) != string(e.raw) {
			t.Errorf("entry %d differs", i)
		}
	}
}

func TestUnpackGroupEntriesErrors(t *testing.T) {
	valid := packGroupEntries([]groupEntry{{opID: 5, raw: []byte("req")}})
	for n := 0; n < len(valid); n++ {
		if _, err := unpackGroupEntries(valid[:n]); err == nil {
			t.Fatalf("truncated to %d bytes: unpack succeeded", n)
		}
	}
	bad := append([]byte(nil), valid...)
	bad[0] = groupPayloadVersion + 1
	if _, err := unpackGroupEntries(bad); !errors.Is(err, dirsvc.ErrBadRequest) {
		t.Errorf("bad version: err = %v", err)
	}
	if _, err := unpackGroupEntries(append(valid, 0x01)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := unpackGroupEntries(packGroupEntries(nil)); err == nil {
		t.Error("empty payload accepted")
	}
}

// TestDrainCoalesce pins the coalescing contract: everything already
// queued behind the first update rides the same broadcast, bounded by
// maxCoalesce, and the drain never blocks waiting for more.
func TestDrainCoalesce(t *testing.T) {
	ch := make(chan coalesceOp, 2*maxCoalesce)
	for i := 0; i < 5; i++ {
		ch <- coalesceOp{opID: uint64(i + 2)}
	}
	batch := drainCoalesce(coalesceOp{opID: 1}, ch)
	if len(batch) != 6 {
		t.Fatalf("drained %d ops, want 6 (1 first + 5 queued)", len(batch))
	}
	for i, op := range batch {
		if op.opID != uint64(i+1) {
			t.Fatalf("op %d = id %d: order not preserved", i, op.opID)
		}
	}

	// An empty queue yields a singleton batch immediately.
	if batch := drainCoalesce(coalesceOp{opID: 99}, ch); len(batch) != 1 || batch[0].opID != 99 {
		t.Fatalf("empty queue drained to %d ops", len(batch))
	}

	// The broadcast is bounded: a deeper backlog splits.
	for i := 0; i < 2*maxCoalesce; i++ {
		ch <- coalesceOp{opID: uint64(1000 + i)}
	}
	if batch := drainCoalesce(coalesceOp{opID: 999}, ch); len(batch) != maxCoalesce {
		t.Fatalf("drained %d ops, want maxCoalesce=%d", len(batch), maxCoalesce)
	}

	// The packed form of a full drain survives the wire.
	full := make([]groupEntry, maxCoalesce)
	for i := range full {
		full[i] = groupEntry{opID: uint64(i), raw: fmt.Appendf(nil, "op-%d", i)}
	}
	if _, err := unpackGroupEntries(packGroupEntries(full)); err != nil {
		t.Fatalf("full packet round-trip: %v", err)
	}
}
