package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dirsvc/internal/dirsvc"
	"dirsvc/internal/flip"
	"dirsvc/internal/rpc"
	"dirsvc/internal/sim"
	"dirsvc/internal/vdisk"
)

// SecondaryConfig describes one readonly secondary instance: a
// directory server that serves balanced reads from a primary replica's
// storage-engine partition (checkpoint + log tail) without joining the
// replica group — it holds no vote, takes no updates, and grants no
// leases. It is the scale-out read tier: clients with read balancing
// enabled spread reads over primaries and secondaries alike, while the
// session floor (Request.MinSeq) keeps read-your-writes intact — a
// secondary that has not caught up to the floor refuses, and the client
// fails over to a writable replica.
type SecondaryConfig struct {
	// Service names the directory service instance whose port this
	// secondary answers on (alongside the primaries).
	Service string
	// BaseService is the deployment-wide service name capabilities are
	// minted under (empty: Service), mirroring Config.BaseService.
	BaseService string
	// Shard/Shards/ActiveShards place the instance in a sharded
	// deployment, mirroring Config.
	Shard, Shards, ActiveShards int
	// View is the read-only attachment to the primary's engine partition.
	View *dirsvc.EngineView
	// Admin is a scratch partition backing the instance's object-table
	// mirror; it is never a durability source (state installs are
	// RAM-only).
	Admin vdisk.Storage
	// Workers is the number of serving threads (default 3).
	Workers int
	// Refresh is the poll interval for tailing the primary's engine
	// partition (zero: a model-scaled default).
	Refresh time.Duration
}

// Secondary is a readonly directory service instance fed from a
// primary's storage engine.
type Secondary struct {
	cfg     SecondaryConfig
	stack   *flip.Stack
	model   *sim.LatencyModel
	rpcSrv  *rpc.Server
	applier *dirsvc.Applier
	table   *dirsvc.ObjectTable

	// refreshMu serializes state refreshes (the poll loop and on-demand
	// refreshes triggered by session floors).
	refreshMu sync.Mutex

	mu         sync.Mutex
	appliedSeq uint64
	ckptGen    uint64
	haveState  bool
	closed     bool

	reads    atomic.Uint64
	lockWait time.Duration
	refresh  time.Duration

	stop      chan struct{}
	wg        sync.WaitGroup
	stopServe func()
}

// NewSecondary boots a readonly secondary on stack. It installs the
// primary's current checkpoint if one exists; until the primary has
// checkpointed, the instance answers StatusNoMajority and clients fail
// over to the primaries.
func NewSecondary(stack *flip.Stack, cfg SecondaryConfig) (*Secondary, error) {
	if cfg.View == nil {
		return nil, errors.New("core: secondary needs an engine view")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	model := stack.Model()
	sec := &Secondary{
		cfg:   cfg,
		stack: stack,
		model: model,
		stop:  make(chan struct{}),
	}
	sec.refresh = cfg.Refresh
	if sec.refresh <= 0 {
		sec.refresh = model.Timeout(250 * time.Millisecond)
		if sec.refresh < 10*time.Millisecond {
			sec.refresh = 10 * time.Millisecond
		}
	}
	sec.lockWait = model.Timeout(5 * time.Second)
	if sec.lockWait < time.Second {
		sec.lockWait = time.Second
	}

	table, err := dirsvc.OpenObjectTable(cfg.Admin)
	if err != nil {
		return nil, fmt.Errorf("open secondary object table: %w", err)
	}
	base := cfg.ActiveShards
	if base <= 0 || base > cfg.Shards {
		base = cfg.Shards
	}
	table.ConfigureShard(cfg.Shard, base)
	sec.table = table
	capService := cfg.BaseService
	if capService == "" {
		capService = cfg.Service
	}
	sec.applier = dirsvc.NewApplier(dirsvc.ServicePort(capService), table, nil)
	sec.applier.SetLockWaitSlots(cfg.Workers - 1)
	sec.applier.ConfigureTopology(cfg.Shard, base, cfg.Shards)

	// Best-effort initial catch-up; "no checkpoint yet" is not fatal.
	_ = sec.refreshNow()

	rpcSrv, err := rpc.NewServer(stack, dirsvc.ServicePort(cfg.Service))
	if err != nil {
		return nil, err
	}
	sec.rpcSrv = rpcSrv
	// Announce read-only on HEREIS so locating clients keep updates away.
	rpcSrv.SetReadOnly(true)
	sec.stopServe = rpcSrv.ServeFunc(cfg.Workers, sec.handleRPC)

	sec.wg.Add(1)
	go sec.refreshLoop()
	return sec, nil
}

// Close shuts the secondary down.
func (sec *Secondary) Close() {
	sec.mu.Lock()
	if sec.closed {
		sec.mu.Unlock()
		return
	}
	sec.closed = true
	sec.mu.Unlock()
	close(sec.stop)
	sec.rpcSrv.Close()
	sec.stopServe()
	sec.wg.Wait()
}

// AppliedSeq returns the service sequence number the instance has
// caught up to (0 before the first checkpoint lands).
func (sec *Secondary) AppliedSeq() uint64 {
	sec.mu.Lock()
	defer sec.mu.Unlock()
	return sec.appliedSeq
}

// ReadsServed returns the number of reads this instance has answered —
// the read-tier share in the load-distribution measurements.
func (sec *Secondary) ReadsServed() uint64 { return sec.reads.Load() }

// Refresh forces one synchronous catch-up against the primary's engine
// partition (tests and tools; the poll loop does this continuously).
func (sec *Secondary) Refresh() error { return sec.refreshNow() }

func (sec *Secondary) refreshLoop() {
	defer sec.wg.Done()
	ticker := time.NewTicker(sec.refresh)
	defer ticker.Stop()
	for {
		select {
		case <-sec.stop:
			return
		case <-ticker.C:
		}
		_ = sec.refreshNow()
	}
}

// refreshNow brings the instance's RAM state up to the primary's engine
// partition: a checkpoint-generation change installs the new checkpoint
// wholesale, and the log tail past the applied cursor replays on top.
// Torn reads (racing the primary's checkpoint flip) and missing
// checkpoints surface as errors; the next poll retries.
func (sec *Secondary) refreshNow() error {
	sec.refreshMu.Lock()
	defer sec.refreshMu.Unlock()
	m, err := sec.cfg.View.Manifest()
	if err != nil {
		return err
	}
	if m.CkptGen == 0 {
		return dirsvc.ErrNoCheckpoint
	}
	sec.mu.Lock()
	curGen := sec.ckptGen
	applied := sec.appliedSeq
	have := sec.haveState
	sec.mu.Unlock()
	if m.CkptGen != curGen || !have {
		payload, err := sec.cfg.View.Checkpoint(m)
		if err != nil {
			return err
		}
		snap, err := dirsvc.DecodeSnapshot(payload)
		if err != nil {
			return err
		}
		if err := sec.applier.InstallSnapshot(snap, false); err != nil {
			return err
		}
		applied = snap.AppliedSeq
		if mx := snap.MaxSeq(); mx > applied {
			applied = mx
		}
		if m.CkptSeq > applied {
			applied = m.CkptSeq
		}
	}
	recs, err := sec.cfg.View.LogSince(m, applied)
	if err == nil {
		for _, rec := range recs {
			req, derr := dirsvc.DecodeRequest(rec.Payload)
			if derr != nil {
				continue
			}
			sec.replayLogged(req, rec.Seq)
			if rec.Seq > applied {
				applied = rec.Seq
			}
		}
	}
	sec.mu.Lock()
	sec.ckptGen = m.CkptGen
	sec.appliedSeq = applied
	sec.haveState = true
	sec.mu.Unlock()
	return err
}

// replayLogged applies one tailed write-ahead record, mirroring the
// primary's recovery replay: a decide for a transaction not staged here
// restores the remembered outcome instead of replaying as an update.
func (sec *Secondary) replayLogged(req *dirsvc.Request, seq uint64) {
	if req.Op == dirsvc.OpDecide {
		if d, derr := dirsvc.DecodeDecide(req.Blob); derr == nil {
			if state, _ := sec.applier.TxStateOf(d.ID); state != dirsvc.TxPrepared {
				sec.applier.RestoreDecided([]dirsvc.DecidedTx{{ID: d.ID, Commit: d.Commit, Seq: seq}})
				return
			}
		}
	}
	_, _ = sec.applier.ApplyUpdate(req, seq, false)
}

// handleRPC is the secondary's serving thread body: reads only.
func (sec *Secondary) handleRPC(req *rpc.Request) []byte {
	dreq, err := dirsvc.DecodeRequest(req.Payload)
	if err != nil {
		return (&dirsvc.Reply{Status: dirsvc.StatusBadRequest}).Encode()
	}
	if dreq.Op.IsUpdate() || dreq.Op == dirsvc.OpWatch || dreq.Op == dirsvc.OpLeaseRenew {
		// No votes, no writes, no leases: a lease here would mask foreign
		// commits the instance has not tailed yet, and an update could
		// never reach the group stream. The client fails over.
		return (&dirsvc.Reply{Status: dirsvc.StatusNoMajority}).Encode()
	}
	return sec.handleRead(dreq).Encode()
}

// handleRead answers one read from the tailed state. A session floor
// above the applied cursor triggers one on-demand refresh; if the
// instance is still behind, it refuses and the client fails over to a
// replica that has the write.
func (sec *Secondary) handleRead(req *dirsvc.Request) *dirsvc.Reply {
	sec.mu.Lock()
	have := sec.haveState
	applied := sec.appliedSeq
	sec.mu.Unlock()
	if !have {
		if sec.refreshNow() != nil {
			return &dirsvc.Reply{Status: dirsvc.StatusNoMajority}
		}
		sec.mu.Lock()
		applied = sec.appliedSeq
		sec.mu.Unlock()
	}
	if req.MinSeq > applied {
		_ = sec.refreshNow()
		sec.mu.Lock()
		applied = sec.appliedSeq
		sec.mu.Unlock()
		if req.MinSeq > applied {
			return &dirsvc.Reply{Status: dirsvc.StatusNoMajority}
		}
	}
	// An object locked by a prepared transaction tailed from the primary
	// holds its readers just like on a primary: the decide arrives with
	// the log tail.
	if obj := req.Dir.Object; obj != 0 && !sec.applier.WaitUnlocked(obj, sec.lockWait) {
		return &dirsvc.Reply{Status: dirsvc.StatusConflict}
	}
	if obj := req.Dir.Object; obj != 0 && req.Op != dirsvc.OpMigRead {
		if owner, fwd := sec.applier.RouteForward(obj); fwd {
			topo, _ := sec.applier.Topology()
			return &dirsvc.Reply{Status: dirsvc.StatusNotMine, Blob: dirsvc.EncodeNotMine(topo.Epoch, owner)}
		}
	}
	sec.reads.Add(1)
	sec.stack.Node().CPU().Charge(sec.model.LookupCPU)
	reply := sec.applier.Read(req)
	reply.Seq = applied
	return reply
}
