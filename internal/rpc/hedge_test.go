package rpc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dirsvc/internal/capability"
	"dirsvc/internal/sim"
)

// seedStat plants a deterministic latency sample for one replica, so a
// test controls which server the P2C picker selects and when the hedge
// timer fires, without racing the picker's own sampling.
func seedStat(c *Client, port capability.Port, id sim.NodeID, srtt time.Duration) {
	c.mu.Lock()
	st := c.statLocked(port, id)
	st.srtt = srtt
	st.rttvar = 0
	st.hint = 0
	st.updated = time.Now()
	st.samples = 1
	c.mu.Unlock()
}

// stallFixture builds two echo servers where servers[0]'s handler can be
// stalled on demand, and a client with balancing and hedging on that has
// located (and sampled) both replicas.
func stallFixture(t *testing.T) (f *fixture, port capability.Port, slowID, fastID sim.NodeID, stallMS *atomic.Int64) {
	t.Helper()
	var servers []*Server
	f, port, servers = newFixture(t, 2)
	stallMS = new(atomic.Int64)
	stopSlow := servers[0].ServeFunc(64, func(req *Request) []byte {
		if d := stallMS.Load(); d > 0 {
			time.Sleep(time.Duration(d) * time.Millisecond)
		}
		return append([]byte("echo:"), req.Payload...)
	})
	t.Cleanup(func() {
		servers[0].Close()
		stopSlow()
	})
	echoWorkers(t, servers[1], 4)
	slowID = servers[0].stack.Node().ID()
	fastID = servers[1].stack.Node().ID()

	f.client.SetReadBalance(true)
	f.client.SetHedge(true)
	for i := 0; i < 4; i++ {
		if _, err := f.client.TransRead(port, []byte(fmt.Sprintf("warm%d", i))); err != nil {
			t.Fatalf("warm read %d: %v", i, err)
		}
	}
	return f, port, slowID, fastID, stallMS
}

// TestHedgedReadWinsOverStalledReplica pins the hedge path end to end:
// with the picker steered onto a stalled replica, the hedge fires after
// the ~p95 delay, the second replica answers, and the transaction
// completes in a fraction of the stall — and the loser's late reply is
// discarded without corrupting the transaction table (subsequent
// transactions still pair request and reply correctly).
func TestHedgedReadWinsOverStalledReplica(t *testing.T) {
	f, port, slowID, fastID, stallMS := stallFixture(t)

	const stall = 250
	stallMS.Store(stall)
	// Steer the picker: the stalled replica looks fastest, so it wins the
	// P2C choice outright, and its tiny SRTT arms an early hedge.
	seedStat(f.client, port, slowID, time.Millisecond)
	seedStat(f.client, port, fastID, 50*time.Millisecond)

	sent0, wins0 := f.client.HedgeStats()
	start := time.Now()
	reply, err := f.client.TransRead(port, []byte("hedged"))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged read: %v", err)
	}
	if string(reply) != "echo:hedged" {
		t.Fatalf("hedged read reply = %q", reply)
	}
	if elapsed >= stall*time.Millisecond {
		t.Fatalf("hedged read took %v, no faster than the %dms stall", elapsed, stall)
	}
	sent, wins := f.client.HedgeStats()
	if sent <= sent0 {
		t.Fatal("no hedge was sent against the stalled replica")
	}
	if wins <= wins0 {
		t.Fatal("hedge sent but not credited with the win")
	}

	// Let the stalled replica's losing reply land on the closed
	// transaction, then verify the demux still routes correctly.
	stallMS.Store(0)
	time.Sleep((stall + 50) * time.Millisecond)
	for i := 0; i < 20; i++ {
		payload := fmt.Sprintf("after%d", i)
		reply, err := f.client.TransRead(port, []byte(payload))
		if err != nil {
			t.Fatalf("post-hedge read %d: %v", i, err)
		}
		if string(reply) != "echo:"+payload {
			t.Fatalf("post-hedge read %d got %q: late losing reply corrupted the pairing", i, reply)
		}
	}
}

// TestHedgeConcurrentNoCrossContamination drives concurrent unique-
// payload reads through a stalled primary with hedging on: every reply
// must be the echo of its own request. Run with -race, this is the
// concurrency gate for hedge replies racing primary replies in the
// demux.
func TestHedgeConcurrentNoCrossContamination(t *testing.T) {
	f, port, slowID, fastID, stallMS := stallFixture(t)
	stallMS.Store(30)
	seedStat(f.client, port, slowID, time.Millisecond)
	seedStat(f.client, port, fastID, 50*time.Millisecond)

	const goroutines = 4
	const opsEach = 15
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				payload := fmt.Sprintf("g%d-i%d", g, i)
				reply, err := f.client.TransRead(port, []byte(payload))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d op %d: %w", g, i, err)
					return
				}
				if string(reply) != "echo:"+payload {
					errs <- fmt.Errorf("goroutine %d op %d: reply %q from another transaction", g, i, reply)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestHedgeRateCap pins the token bucket: against a persistently
// stalled primary, hedges are capped at the burst plus the per-read
// refill — not one per read — so a sick replica cannot double the
// offered load.
func TestHedgeRateCap(t *testing.T) {
	f, port, slowID, fastID, stallMS := stallFixture(t)
	stallMS.Store(40)

	const reads = 40
	sent0, _ := f.client.HedgeStats()
	for i := 0; i < reads; i++ {
		// Re-seed before every read: the stall samples would otherwise
		// steer the picker off the slow replica and end the experiment.
		seedStat(f.client, port, slowID, time.Millisecond)
		seedStat(f.client, port, fastID, 50*time.Millisecond)
		payload := fmt.Sprintf("cap%d", i)
		reply, err := f.client.TransRead(port, []byte(payload))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(reply) != "echo:"+payload {
			t.Fatalf("read %d reply = %q", i, reply)
		}
	}
	sent, _ := f.client.HedgeStats()
	hedges := sent - sent0
	// Deterministic ceiling: burst (hedgeBurst) + hedgeRate per read,
	// plus the warm-up reads' refills.
	refill := float64(reads+4) * hedgeRate
	limit := uint64(hedgeBurst) + uint64(refill) + 1
	if hedges > limit {
		t.Fatalf("%d hedges over %d reads: rate cap (≤%d) not enforced", hedges, reads, limit)
	}
	if hedges < hedgeBurst {
		t.Fatalf("only %d hedges over %d reads against a stalled primary; burst of %d never spent", hedges, reads, hedgeBurst)
	}
}
