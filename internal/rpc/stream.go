package rpc

import (
	"context"
	"fmt"
	"time"

	"dirsvc/internal/capability"
	"dirsvc/internal/flip"
	"dirsvc/internal/sim"
)

// This file adds one-to-many server push to the Amoeba transaction
// model. A subscription is an ordinary transaction whose reply channel
// is never torn down: the server answers it once (the confirmation) and
// then keeps sending frames framed as replies to the same transaction
// id, which the client's existing demultiplexer routes to the stream
// with no new wire ops at this layer.

// pushChanDepth buffers a stream's incoming pushes. A subscriber that
// falls further behind than this loses pushes — which the lease
// protocol recovers at the next renewal, or reports as a resync.
const pushChanDepth = 256

// Stream is a long-lived subscription: the reply channel of one
// transaction, kept registered after its first reply so the server can
// keep pushing. Msgs arrive in the order the serving node sent them
// (the simulated network is per-sender FIFO); individual pushes may
// still be lost to buffer overrun, which the subscription's own
// protocol must tolerate.
type Stream struct {
	c      *Client
	tx     uint64
	ch     chan flip.Msg
	server sim.NodeID
}

// Chan returns the stream's incoming frames. Decode pushes with
// PushPayload. The channel is never closed; callers multiplex it with
// their own stop signal (and Client.Done for endpoint shutdown).
func (s *Stream) Chan() <-chan flip.Msg { return s.ch }

// Server returns the node that accepted the subscription. Renewals
// must go to this exact server (TransTo): the lease lives there.
func (s *Stream) Server() sim.NodeID { return s.server }

// Tx returns the subscription's transaction id — the subscription id
// the server knows the lease by.
func (s *Stream) Tx() uint64 { return s.tx }

// Close unregisters the stream from the demultiplexer. The channel
// itself is left open (a concurrent push may still be in flight); it
// simply stops receiving.
func (s *Stream) Close() {
	s.c.mu.Lock()
	if s.c.pending[s.tx] == s.ch {
		delete(s.c.pending, s.tx)
	}
	s.c.mu.Unlock()
}

// PushPayload extracts the payload of a pushed frame. ok is false for
// frames that are not pushes (e.g. a stray NOTHERE), which callers
// should ignore.
func PushPayload(m flip.Msg) (payload []byte, ok bool) {
	op, _, _, payload, err := decodeReply(m.Payload)
	if err != nil || op != opReply {
		return nil, false
	}
	return payload, true
}

// Done returns a channel closed when the client endpoint shuts down
// (Close or node crash); stream consumers multiplex it with Chan.
func (c *Client) Done() <-chan struct{} { return c.closed }

// Subscribe performs one transaction whose reply channel stays
// registered: the server's first reply (returned here along with the
// responding server) confirms the subscription, and every later push
// the server sends for the same transaction arrives on the stream.
// The caller must Close the stream when done with it.
func (c *Client) Subscribe(ctx context.Context, port capability.Port, req []byte) (*Stream, []byte, error) {
	ch := make(chan flip.Msg, pushChanDepth)
	c.mu.Lock()
	c.txid++
	tx := c.txid
	c.pending[tx] = ch
	c.mu.Unlock()
	unregister := func() {
		c.mu.Lock()
		delete(c.pending, tx)
		c.mu.Unlock()
	}

	located := false
	noServer := 0
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			unregister()
			return nil, nil, err
		}
		server, ok := c.pickServer(ctx, port, false, &located)
		if !ok {
			select {
			case <-c.closed:
				unregister()
				return nil, nil, ErrClosed
			default:
			}
			if noServer++; noServer >= 3 {
				unregister()
				return nil, nil, fmt.Errorf("port %v: %w", port, ErrNoServer)
			}
			continue
		}
		reply, verdict := c.transactOnce(ctx, server, port, tx, req, ch, false)
		c.release(port, server)
		switch verdict {
		case verdictReply:
			return &Stream{c: c, tx: tx, ch: ch, server: server}, reply, nil
		case verdictCanceled:
			unregister()
			return nil, nil, ctx.Err()
		case verdictClosed:
			unregister()
			return nil, nil, ErrClosed
		case verdictNotHere:
			c.evict(port, server, false)
		case verdictDead:
			c.evict(port, server, true)
		}
	}
	unregister()
	return nil, nil, fmt.Errorf("port %v: %w", port, ErrTimeout)
}

// TransTo performs one transaction against a specific server instead
// of a located one — the lease-renewal path, which must reach the
// server holding the lease. A busy server (NOTHERE) is retried with a
// short backoff; a silent one fails with ErrTimeout so the caller can
// re-subscribe elsewhere.
func (c *Client) TransTo(ctx context.Context, server sim.NodeID, port capability.Port, req []byte) ([]byte, error) {
	ch := make(chan flip.Msg, replyChanDepth)
	c.mu.Lock()
	c.txid++
	tx := c.txid
	c.pending[tx] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, tx)
		c.mu.Unlock()
	}()

	for attempt := 0; attempt < 3; attempt++ {
		reply, verdict := c.transactOnce(ctx, server, port, tx, req, ch, false)
		switch verdict {
		case verdictReply:
			return reply, nil
		case verdictCanceled:
			return nil, ctx.Err()
		case verdictClosed:
			return nil, ErrClosed
		case verdictNotHere:
			timer := time.NewTimer(c.locateWindow)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-c.closed:
				timer.Stop()
				return nil, ErrClosed
			}
		case verdictDead:
			return nil, fmt.Errorf("server %v: %w", server, ErrTimeout)
		}
	}
	return nil, fmt.Errorf("server %v: %w", server, ErrTimeout)
}
