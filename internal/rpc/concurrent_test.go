package rpc

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dirsvc/internal/capability"
	"dirsvc/internal/flip"
	"dirsvc/internal/sim"
)

// TestConcurrentTransMultiplex pins the multiplexed transport: while one
// transaction is parked inside a server handler, a second transaction on
// the SAME client must complete — the serialized transport held the
// client mutex across the whole round-trip, so the fast call would have
// queued behind the slow one.
func TestConcurrentTransMultiplex(t *testing.T) {
	f, port, servers := newFixture(t, 1)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	stop := servers[0].ServeFunc(2, func(req *Request) []byte {
		if string(req.Payload) == "slow" {
			entered <- struct{}{}
			<-release
		}
		return append([]byte("echo:"), req.Payload...)
	})
	t.Cleanup(func() {
		servers[0].Close()
		stop()
	})

	slowDone := make(chan error, 1)
	go func() {
		_, err := f.client.Trans(port, []byte("slow"))
		slowDone <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("slow request never reached the server")
	}

	fastDone := make(chan error, 1)
	go func() {
		reply, err := f.client.Trans(port, []byte("fast"))
		if err == nil && string(reply) != "echo:fast" {
			err = fmt.Errorf("fast reply = %q", reply)
		}
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("fast transaction: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast transaction blocked behind the slow one: transport is serialized")
	}

	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow transaction: %v", err)
	}
}

// TestConcurrentTransStressFailover hammers one shared client from many
// goroutines across a server crash: every transaction must receive the
// echo of its own unique payload (a reply routed to the wrong transaction
// would corrupt the pairing), and all must complete despite the failover.
// Run with -race, this is the concurrency gate for the demux routing and
// port-cache bookkeeping.
func TestConcurrentTransStressFailover(t *testing.T) {
	f, port, servers := newFixture(t, 3)
	for _, srv := range servers {
		echoWorkers(t, srv, 4)
	}
	f.client.SetReadBalance(true)

	const goroutines = 12
	const opsEach = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	crashed := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				payload := fmt.Sprintf("g%d-i%d", g, i)
				var reply []byte
				var err error
				if i%2 == 0 {
					reply, err = f.client.TransRead(port, []byte(payload))
				} else {
					reply, err = f.client.Trans(port, []byte(payload))
				}
				if err != nil {
					errs <- fmt.Errorf("goroutine %d op %d: %w", g, i, err)
					return
				}
				if string(reply) != "echo:"+payload {
					errs <- fmt.Errorf("goroutine %d op %d: reply %q routed from another transaction", g, i, reply)
					return
				}
				if g == 0 && i == opsEach/2 {
					// Mid-flight, fail-stop one server every goroutine may
					// have in its candidate set.
					f.net.Node(servers[0].stack.Node().ID()).Crash()
					close(crashed)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	select {
	case <-crashed:
	default:
		t.Fatal("crash never happened; stress did not cover failover")
	}
}

// TestRelocateAfterDeadServerEviction is the port-cache staleness fix: a
// server that stops answering marks the cache stale, so the very next
// selection re-locates and picks up replicas that were not in the cache —
// without waiting for the remaining entries to drain away.
func TestRelocateAfterDeadServerEviction(t *testing.T) {
	f, port, servers := newFixture(t, 2)
	echoWorkers(t, servers[0], 1)
	echoWorkers(t, servers[1], 1)

	if _, err := f.client.Trans(port, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if n := len(f.client.CachedServers(port)); n == 0 {
		t.Fatal("empty port cache after warm transaction")
	}

	// A third server comes up after the cache was filled: the client
	// cannot know it yet.
	ls := flip.NewStack(f.net.AddNode("late-server"))
	f.stacks = append(f.stacks, ls)
	late, err := NewServer(ls, port)
	if err != nil {
		t.Fatal(err)
	}
	echoWorkers(t, late, 1)
	lateID := ls.Node().ID()

	// Kill the preferred server; the failover must refresh the candidate
	// set, so the late server joins it even though the cache still held
	// live entries.
	preferred := f.client.CachedServers(port)[0]
	f.net.Node(preferred).Crash()
	if _, err := f.client.Trans(port, []byte("after-crash")); err != nil {
		t.Fatalf("Trans after crash: %v", err)
	}
	found := false
	for _, s := range f.client.CachedServers(port) {
		if s == lateID {
			found = true
		}
	}
	if !found {
		t.Fatalf("late server %v not re-located after failover; cache = %v",
			lateID, f.client.CachedServers(port))
	}
}

// TestCacheTTLRefresh covers the no-failure staleness bound: past the
// TTL, the next selection re-locates, so a server that appeared without
// any eviction happening still joins the candidate set.
func TestCacheTTLRefresh(t *testing.T) {
	f, port, servers := newFixture(t, 1)
	echoWorkers(t, servers[0], 1)
	if _, err := f.client.Trans(port, []byte("warm")); err != nil {
		t.Fatal(err)
	}

	ls := flip.NewStack(f.net.AddNode("late-server"))
	f.stacks = append(f.stacks, ls)
	late, err := NewServer(ls, port)
	if err != nil {
		t.Fatal(err)
	}
	echoWorkers(t, late, 1)

	f.client.SetCacheTTL(30 * time.Millisecond)
	time.Sleep(50 * time.Millisecond)
	if _, err := f.client.Trans(port, []byte("past-ttl")); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range f.client.CachedServers(port) {
		if s == ls.Node().ID() {
			found = true
		}
	}
	if !found {
		t.Fatalf("TTL expiry did not re-locate; cache = %v", f.client.CachedServers(port))
	}
}

// TestReadBalanceSpreadsSingleClient pins both selection policies from
// one client: balanced reads round-robin across every HEREIS responder;
// the legacy pinned policy sends everything to the first responder —
// Fig. 8's skew, preserved behind the knob.
func TestReadBalanceSpreadsSingleClient(t *testing.T) {
	net := sim.NewNetwork(sim.FastModel(), 1)
	port := capability.PortFromString("svc")
	var mu sync.Mutex
	perServer := make(map[sim.NodeID]int)
	for i := 0; i < 3; i++ {
		ss := flip.NewStack(net.AddNode(fmt.Sprintf("server%d", i)))
		srv, err := NewServer(ss, port)
		if err != nil {
			t.Fatal(err)
		}
		id := ss.Node().ID()
		stop := srv.ServeFunc(2, func(req *Request) []byte {
			mu.Lock()
			perServer[id]++
			mu.Unlock()
			return req.Payload
		})
		t.Cleanup(func() {
			srv.Close()
			stop()
			ss.Close()
		})
	}

	const reads = 60
	run := func(balance bool) map[sim.NodeID]int {
		mu.Lock()
		perServer = make(map[sim.NodeID]int)
		mu.Unlock()
		cs := flip.NewStack(net.AddNode("client"))
		defer cs.Close()
		client, err := NewClient(cs)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		client.SetReadBalance(balance)
		for i := 0; i < reads; i++ {
			if _, err := client.TransRead(port, []byte{byte(i)}); err != nil {
				t.Fatalf("balance=%v read %d: %v", balance, i, err)
			}
		}
		mu.Lock()
		defer mu.Unlock()
		out := make(map[sim.NodeID]int, len(perServer))
		for id, n := range perServer {
			out[id] = n
		}
		return out
	}

	spread := run(true)
	if len(spread) != 3 {
		t.Fatalf("balanced reads reached %d of 3 servers: %v", len(spread), spread)
	}
	for id, n := range spread {
		if n < reads/6 {
			t.Fatalf("balanced reads skewed: server %v got %d of %d (%v)", id, n, reads, spread)
		}
	}

	pinned := run(false)
	if len(pinned) != 1 {
		t.Fatalf("pinned policy spread reads across %d servers: %v (legacy Fig. 8 skew lost)", len(pinned), pinned)
	}
}
