// Package rpc implements Amoeba-style remote procedure call on top of the
// FLIP layer.
//
// An RPC costs three messages — REQUEST, REPLY, ACK — matching the paper's
// cost analysis (§3.1: "an RPC in Amoeba requires only 3 messages").
// Server location uses the mechanism described in §4.2: the first time a
// client performs an RPC with a service, it broadcasts a locate for the
// service port; every listening server answers HEREIS; the client caches
// all answers in arrival order and sends the request to the first server
// that replied. If a request reaches a server with no thread blocked in
// GetRequest, the server answers NOTHERE; the client evicts that server
// from its port cache and selects another (or locates again). This
// heuristic is deliberately imperfect — it produces the uneven load
// distribution and high variance the paper reports in Fig. 8.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dirsvc/internal/capability"
	"dirsvc/internal/flip"
	"dirsvc/internal/sim"
)

// Operation codes on the wire.
const (
	opRequest = 1
	opReply   = 2
	opNotHere = 3
	opAck     = 4
)

var (
	// ErrNoServer is returned when no server for the port can be located.
	ErrNoServer = errors.New("rpc: no server located for port")
	// ErrTimeout is returned when all attempts to transact failed.
	ErrTimeout = errors.New("rpc: transaction timed out")
	// ErrClosed is returned after the client or server has shut down.
	ErrClosed = errors.New("rpc: closed")
)

var clientSeq atomic.Uint64

// Client issues transactions to servers located by port. A Client is safe
// for concurrent use; transactions are serialized internally (create one
// Client per goroutine for parallelism, as Amoeba created one kernel
// transaction slot per thread).
type Client struct {
	stack     *flip.Stack
	replyPort capability.Port
	replies   *flip.Listener

	locateWindow time.Duration
	replyTimeout time.Duration
	retransmits  int
	maxAttempts  int

	mu    sync.Mutex
	cache map[capability.Port][]sim.NodeID
	txid  uint64
}

// NewClient creates a client endpoint on the given stack. Timeouts are
// derived from the network's latency model.
func NewClient(stack *flip.Stack) (*Client, error) {
	seq := clientSeq.Add(1)
	replyPort := capability.PortFromString(fmt.Sprintf("rpc-reply-%d-%d", stack.Node().ID(), seq))
	l, err := stack.Register(replyPort)
	if err != nil {
		return nil, fmt.Errorf("register reply port: %w", err)
	}
	model := stack.Model()
	replyTimeout := model.Timeout(15 * time.Second)
	if replyTimeout < 200*time.Millisecond {
		// With a zero-scale model, processing takes wall-clock time only
		// through goroutine scheduling; keep enough headroom that
		// retransmissions stay exceptional.
		replyTimeout = 200 * time.Millisecond
	}
	return &Client{
		stack:        stack,
		replyPort:    replyPort,
		replies:      l,
		locateWindow: model.Timeout(15 * time.Millisecond),
		replyTimeout: replyTimeout,
		retransmits:  2,
		maxAttempts:  8,
		cache:        make(map[capability.Port][]sim.NodeID),
		// Transaction ids carry the client sequence number in the high
		// bits so that (node, tx) is globally unique even when several
		// clients share a host.
		txid: seq << 32,
	}, nil
}

// Close releases the client's reply port.
func (c *Client) Close() { c.replies.Close() }

// CachedServers returns the client's current port-cache entry, in
// preference order. Exposed for tests and the load-distribution harness.
func (c *Client) CachedServers(port capability.Port) []sim.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]sim.NodeID, len(c.cache[port]))
	copy(out, c.cache[port])
	return out
}

// Trans performs one transaction with any server of the service identified
// by port: it sends req and returns the server's reply. Semantics are
// at-most-once per server (duplicate suppression by transaction id); if a
// server stops replying the client fails over to another server, so an
// operation may execute twice across a crash — exactly the Amoeba
// contract the paper's services are built on (§2: "it does not support
// failure-free operations for clients").
func (c *Client) Trans(port capability.Port, req []byte) ([]byte, error) {
	return c.TransCtx(context.Background(), port, req)
}

// TransCtx is Trans bounded by a context: cancellation or an expired
// deadline aborts the transaction — including an in-flight wait for a
// reply — and returns ctx.Err(). The Amoeba kernel had no such handle;
// every operation blocked until the kernel-level timeout fired.
func (c *Client) TransCtx(ctx context.Context, port capability.Port, req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.txid++
	tx := c.txid

	located := false
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		server, ok := c.pickServerLocked(ctx, port, &located)
		if !ok {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("port %v: %w", port, ErrNoServer)
		}
		reply, verdict := c.transactOnce(ctx, server, port, tx, req)
		switch verdict {
		case verdictReply:
			return reply, nil
		case verdictCanceled:
			return nil, ctx.Err()
		case verdictNotHere, verdictDead:
			c.evictLocked(port, server)
		}
	}
	return nil, fmt.Errorf("port %v: %w", port, ErrTimeout)
}

type verdict int

const (
	verdictReply verdict = iota + 1
	verdictNotHere
	verdictDead
	verdictCanceled
)

// transactOnce sends the request to one server and waits for its reply,
// retransmitting on silence. It is called with c.mu held (transactions are
// serialized per client).
func (c *Client) transactOnce(ctx context.Context, server sim.NodeID, port capability.Port, tx uint64, req []byte) ([]byte, verdict) {
	wire := encodeRequest(tx, c.replyPort, req)
	for send := 0; send <= c.retransmits; send++ {
		if ctx.Err() != nil {
			return nil, verdictCanceled
		}
		if err := c.stack.Send(server, port, wire); err != nil {
			return nil, verdictDead
		}
		deadline := time.Now().Add(c.replyTimeout)
		for {
			remain := time.Until(deadline)
			if remain <= 0 {
				break
			}
			m, ok, timedOut, canceled := c.recvReply(ctx, remain)
			if canceled {
				return nil, verdictCanceled
			}
			if timedOut {
				break
			}
			if !ok {
				return nil, verdictDead
			}
			op, gotTx, payload, err := decodeReply(m.Payload)
			if err != nil || gotTx != tx {
				continue // stale reply from an earlier transaction
			}
			switch op {
			case opReply:
				// Third message of the exchange: acknowledge so the
				// server can drop its duplicate-suppression state.
				_ = c.stack.Send(m.Src, port, encodeAck(tx))
				return payload, verdictReply
			case opNotHere:
				return nil, verdictNotHere
			}
		}
	}
	return nil, verdictDead
}

// recvReply waits up to d for a reply message, aborting early when ctx is
// done.
func (c *Client) recvReply(ctx context.Context, d time.Duration) (m flip.Msg, ok, timedOut, canceled bool) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case m, ok = <-c.replies.Chan():
		return m, ok, false, false
	case <-timer.C:
		return flip.Msg{}, false, true, false
	case <-ctx.Done():
		return flip.Msg{}, false, false, true
	}
}

// pickServerLocked returns the preferred server for port, locating the
// service if the cache is empty. located tracks whether this transaction
// already performed a locate, limiting it to two rounds.
func (c *Client) pickServerLocked(ctx context.Context, port capability.Port, located *bool) (sim.NodeID, bool) {
	if servers := c.cache[port]; len(servers) > 0 {
		return servers[0], true
	}
	if *located {
		// One re-locate per transaction round is enough; give other
		// servers time to come up before the next attempt.
		timer := time.NewTimer(c.locateWindow)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return 0, false
		}
	}
	*located = true
	found, err := c.stack.Locate(port, c.locateWindow, 0)
	if err != nil || len(found) == 0 {
		return 0, false
	}
	c.cache[port] = found
	return found[0], true
}

func (c *Client) evictLocked(port capability.Port, server sim.NodeID) {
	servers := c.cache[port]
	kept := servers[:0]
	for _, s := range servers {
		if s != server {
			kept = append(kept, s)
		}
	}
	c.cache[port] = kept
}

func encodeRequest(tx uint64, replyPort capability.Port, payload []byte) []byte {
	buf := make([]byte, 1+8+6+len(payload))
	buf[0] = opRequest
	binary.BigEndian.PutUint64(buf[1:9], tx)
	copy(buf[9:15], replyPort[:])
	copy(buf[15:], payload)
	return buf
}

func encodeAck(tx uint64) []byte {
	buf := make([]byte, 1+8)
	buf[0] = opAck
	binary.BigEndian.PutUint64(buf[1:9], tx)
	return buf
}

func decodeReply(buf []byte) (op byte, tx uint64, payload []byte, err error) {
	if len(buf) < 9 {
		return 0, 0, nil, errors.New("rpc: short reply")
	}
	return buf[0], binary.BigEndian.Uint64(buf[1:9]), buf[9:], nil
}
