// Package rpc implements Amoeba-style remote procedure call on top of the
// FLIP layer.
//
// An RPC costs three messages — REQUEST, REPLY, ACK — matching the paper's
// cost analysis (§3.1: "an RPC in Amoeba requires only 3 messages").
// Server location uses the mechanism described in §4.2: the first time a
// client performs an RPC with a service, it broadcasts a locate for the
// service port; every listening server answers HEREIS; the client caches
// all answers in arrival order. By default requests go to the first server
// that replied — the paper's deliberately imperfect heuristic behind the
// uneven load distribution of Fig. 8. If a request reaches a server with
// no thread blocked in GetRequest, the server answers NOTHERE; the client
// evicts that server from its port cache and selects another (or locates
// again). A server that stops answering altogether marks the cache stale,
// so the next selection re-locates and a recovered replica rejoins the
// candidate set immediately instead of waiting for the cache to drain
// empty; a TTL bounds staleness even without failures.
//
// The transport is concurrent: one Client multiplexes any number of
// in-flight transactions over its single reply port. Replies are routed
// back to their transaction by id (a demux goroutine), so goroutines
// sharing a Client never serialize behind each other's round-trips — only
// transaction-id allocation and port-cache bookkeeping are under the
// client mutex. Read-mostly callers can additionally opt into replica
// balancing (SetReadBalance): TransRead then spreads requests across
// every cached HEREIS responder, which is what lets N replicas answer N
// reads in parallel (§3.1 — any replica holding a majority can answer a
// read locally).
//
// Balanced selection is adaptive rather than round-robin: the client
// keeps a per-replica EWMA of observed reply latency (TCP SRTT-style),
// folds in the load hint every server piggybacks on its replies and
// HEREIS answers, and picks by power-of-two-choices over the combined
// score. Replicas with no recent sample score as unknown and are probed
// rather than shunned, so a recovered server rejoins the rotation.
// Balanced reads may additionally be hedged (SetHedge): when a reply is
// slower than the replica's ~p95 (SRTT + 4·RTTVAR), the same request is
// re-issued to the next-best replica and the first reply wins. Reads are
// idempotent and MinSeq-guarded, so a hedge is always safe; a token
// bucket caps the added load.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dirsvc/internal/capability"
	"dirsvc/internal/flip"
	"dirsvc/internal/sim"
)

// Operation codes on the wire.
const (
	opRequest = 1
	opReply   = 2
	opNotHere = 3
	opAck     = 4
)

var (
	// ErrNoServer is returned when no server for the port can be located.
	ErrNoServer = errors.New("rpc: no server located for port")
	// ErrTimeout is returned when all attempts to transact failed.
	ErrTimeout = errors.New("rpc: transaction timed out")
	// ErrClosed is returned after the client or server has shut down.
	ErrClosed = errors.New("rpc: closed")
)

var clientSeq atomic.Uint64

// replyChanDepth buffers per-transaction reply routing; retransmissions
// can produce several replies for one transaction.
const replyChanDepth = 8

// portCache is the client's knowledge of one service port: the HEREIS
// responders of the last locate, in arrival order.
type portCache struct {
	servers []sim.NodeID
	// writable is the subset of servers whose HEREIS did not carry the
	// read-only flag: updates (and unbalanced picks) route only here,
	// while balanced reads spread over the full set including
	// checkpoint-fed secondary instances. Empty means every responder
	// announced read-only — updates then fall back to the full set and
	// let the server refuse, rather than failing to route at all.
	writable []sim.NodeID
	// recheckAt is when the entry next warrants a fresh locate: one TTL
	// after a successful fill; immediately when a cached server stopped
	// answering (so recovered or substitute replicas rejoin the
	// candidate set at the next selection instead of waiting for the
	// shrinking remainder to drain); one locate window after a re-locate
	// came up empty (serve from the remainder, but keep trying).
	recheckAt time.Time
}

// replicaStat is the client's adaptive-routing state for one replica of
// one port: smoothed reply latency (TCP RTO-style SRTT/RTTVAR), the load
// hint the server last piggybacked, and when the last latency sample
// landed (stale samples stop counting against a replica — see
// scoreLocked).
type replicaStat struct {
	srtt    time.Duration
	rttvar  time.Duration
	hint    byte
	updated time.Time
	samples uint64
}

// Hedging parameters: each balanced read refills hedgeRate tokens (cap
// hedgeBurst) and an actual hedge spends one, bounding steady-state
// hedge traffic to ~10% of reads.
const (
	hedgeRate  = 0.1
	hedgeBurst = 5
)

// Client issues transactions to servers located by port. A Client is safe
// for concurrent use and multiplexes any number of in-flight transactions
// over one reply port: replies are demultiplexed by transaction id, so
// concurrent callers proceed in parallel (unlike the Amoeba kernel, which
// had one transaction slot per thread).
type Client struct {
	stack     *flip.Stack
	replyPort capability.Port
	replies   *flip.Listener

	locateWindow time.Duration
	replyTimeout time.Duration
	retransmits  int
	maxAttempts  int
	cacheTTL     time.Duration

	balance atomic.Bool
	hedge   atomic.Bool

	hedgesSent atomic.Uint64
	hedgeWins  atomic.Uint64

	mu       sync.Mutex
	cache    map[capability.Port]*portCache
	locating map[capability.Port]chan struct{}
	load     map[capability.Port]map[sim.NodeID]int          // in-flight requests per server
	stats    map[capability.Port]map[sim.NodeID]*replicaStat // adaptive-routing state
	pending  map[uint64]chan flip.Msg                        // reply routing by transaction id
	txid     uint64
	rng      *rand.Rand // P2C candidate selection; guarded by mu
	tokens   float64    // hedge token bucket; guarded by mu

	closed chan struct{} // closed when the demux exits (Close or crash)
}

// NewClient creates a client endpoint on the given stack. Timeouts are
// derived from the network's latency model.
func NewClient(stack *flip.Stack) (*Client, error) {
	seq := clientSeq.Add(1)
	replyPort := capability.PortFromString(fmt.Sprintf("rpc-reply-%d-%d", stack.Node().ID(), seq))
	l, err := stack.Register(replyPort)
	if err != nil {
		return nil, fmt.Errorf("register reply port: %w", err)
	}
	model := stack.Model()
	replyTimeout := model.Timeout(15 * time.Second)
	if replyTimeout < 200*time.Millisecond {
		// With a zero-scale model, processing takes wall-clock time only
		// through goroutine scheduling; keep enough headroom that
		// retransmissions stay exceptional.
		replyTimeout = 200 * time.Millisecond
	}
	cacheTTL := model.Timeout(60 * time.Second)
	if cacheTTL < 5*time.Second {
		cacheTTL = 5 * time.Second
	}
	c := &Client{
		stack:        stack,
		replyPort:    replyPort,
		replies:      l,
		locateWindow: model.Timeout(15 * time.Millisecond),
		replyTimeout: replyTimeout,
		retransmits:  2,
		maxAttempts:  8,
		cacheTTL:     cacheTTL,
		cache:        make(map[capability.Port]*portCache),
		locating:     make(map[capability.Port]chan struct{}),
		load:         make(map[capability.Port]map[sim.NodeID]int),
		stats:        make(map[capability.Port]map[sim.NodeID]*replicaStat),
		pending:      make(map[uint64]chan flip.Msg),
		rng:          rand.New(rand.NewSource(int64(seq))),
		tokens:       hedgeBurst,
		// Transaction ids carry the client sequence number in the high
		// bits so that (node, tx) is globally unique even when several
		// clients share a host.
		txid:   seq << 32,
		closed: make(chan struct{}),
	}
	go c.demux()
	return c, nil
}

// Close releases the client's reply port and unblocks every in-flight
// transaction with ErrClosed.
func (c *Client) Close() { c.replies.Close() }

// SetReadBalance selects the server-selection policy TransRead uses:
// false (the default) pins reads to the first HEREIS responder like every
// other transaction — the paper's §4.2 heuristic, with Fig. 8's skew;
// true spreads reads across all cached responders by power-of-two-choices
// over each replica's latency EWMA × (1 + load hint), so N replicas serve
// reads in parallel and independent clients avoid dogpiling the replica
// that merely looks idle from their own counters.
func (c *Client) SetReadBalance(on bool) { c.balance.Store(on) }

// SetHedge enables hedged balanced reads: when a balanced read has waited
// past its replica's ~p95 latency estimate (SRTT + 4·RTTVAR), the same
// request is re-issued to the next-best replica and the first reply wins.
// Only TransRead/TransReadCtx with balancing active hedge; the rate is
// capped by a token bucket (hedgeRate per read, burst hedgeBurst).
func (c *Client) SetHedge(on bool) { c.hedge.Store(on) }

// HedgeStats reports how many hedge requests this client issued and how
// many transactions the hedged replica won.
func (c *Client) HedgeStats() (sent, wins uint64) {
	return c.hedgesSent.Load(), c.hedgeWins.Load()
}

// ReplicaStat is one replica's routing state as seen by this client:
// smoothed latency, the load hint it last advertised, in-flight requests
// from this client, and the age of its last latency sample.
type ReplicaStat struct {
	Server   sim.NodeID
	SRTT     time.Duration
	RTTVar   time.Duration
	Hint     byte
	Inflight int
	Age      time.Duration
	Samples  uint64
}

// ReplicaStats returns the adaptive-routing state for every cached
// replica of port, in cache (HEREIS arrival) order. Replicas not yet
// sampled report zero SRTT and Samples.
func (c *Client) ReplicaStats(port capability.Port) []ReplicaStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.cache[port]
	if e == nil {
		return nil
	}
	now := time.Now()
	out := make([]ReplicaStat, 0, len(e.servers))
	for _, s := range e.servers {
		rs := ReplicaStat{Server: s, Inflight: c.load[port][s]}
		if st := c.stats[port][s]; st != nil {
			rs.SRTT, rs.RTTVar, rs.Hint, rs.Samples = st.srtt, st.rttvar, st.hint, st.samples
			if !st.updated.IsZero() {
				rs.Age = now.Sub(st.updated)
			}
		}
		out = append(out, rs)
	}
	return out
}

// CachedServers returns the client's current port-cache entry, in
// preference order. Exposed for tests and the load-distribution harness.
func (c *Client) CachedServers(port capability.Port) []sim.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.cache[port]
	if e == nil {
		return nil
	}
	out := make([]sim.NodeID, len(e.servers))
	copy(out, e.servers)
	return out
}

// SetCacheTTL overrides the port-cache time-to-live (tests and tools;
// the default derives from the latency model). After the TTL the next
// server selection re-locates, so replicas that recovered without any
// failure being observed rejoin the candidate set. Entries already
// cached are re-clamped to the new TTL.
func (c *Client) SetCacheTTL(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cacheTTL = d
	limit := time.Now().Add(d)
	for _, e := range c.cache {
		if e.recheckAt.After(limit) {
			e.recheckAt = limit
		}
	}
}

// demux routes incoming replies to their transaction by id. It exits —
// closing c.closed, which unblocks every waiter — when the reply listener
// shuts down (Close or node crash).
func (c *Client) demux() {
	defer close(c.closed)
	for m := range c.replies.Chan() {
		if len(m.Payload) < 9 {
			continue
		}
		tx := binary.BigEndian.Uint64(m.Payload[1:9])
		c.mu.Lock()
		ch := c.pending[tx]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- m:
			default: // waiter overrun: drop, retransmission recovers
			}
		}
	}
}

// Trans performs one transaction with any server of the service identified
// by port: it sends req and returns the server's reply. Semantics are
// at-most-once per server (duplicate suppression by transaction id); if a
// server stops replying the client fails over to another server, so an
// operation may execute twice across a crash — exactly the Amoeba
// contract the paper's services are built on (§2: "it does not support
// failure-free operations for clients").
func (c *Client) Trans(port capability.Port, req []byte) ([]byte, error) {
	return c.TransCtx(context.Background(), port, req)
}

// TransCtx is Trans bounded by a context: cancellation or an expired
// deadline aborts the transaction — including an in-flight wait for a
// reply — and returns ctx.Err(). The Amoeba kernel had no such handle;
// every operation blocked until the kernel-level timeout fired.
func (c *Client) TransCtx(ctx context.Context, port capability.Port, req []byte) ([]byte, error) {
	return c.transact(ctx, port, req, false)
}

// TransRead is TransReadCtx with a background context.
func (c *Client) TransRead(port capability.Port, req []byte) ([]byte, error) {
	return c.TransReadCtx(context.Background(), port, req)
}

// TransReadCtx performs a read transaction: identical to TransCtx except
// that, with SetReadBalance(true), the server is picked by spreading load
// across every cached HEREIS responder instead of pinning to the first.
// Callers balancing reads should carry their session's freshness floor in
// the request payload (the directory protocol's MinSeq), since different
// replicas may lag one another.
func (c *Client) TransReadCtx(ctx context.Context, port capability.Port, req []byte) ([]byte, error) {
	return c.transact(ctx, port, req, c.balance.Load())
}

func (c *Client) transact(ctx context.Context, port capability.Port, req []byte, balance bool) ([]byte, error) {
	ch := make(chan flip.Msg, replyChanDepth)
	c.mu.Lock()
	c.txid++
	tx := c.txid
	c.pending[tx] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, tx)
		c.mu.Unlock()
	}()

	located := false
	noServer := 0
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		server, ok := c.pickServer(ctx, port, balance, &located)
		if !ok {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			select {
			case <-c.closed:
				return nil, ErrClosed
			default:
			}
			// A locate can come up empty transiently (the HEREIS window
			// is one round-trip wide); retry a bounded number of rounds —
			// each pick backs off one window first — before declaring the
			// port serverless.
			if noServer++; noServer >= 3 {
				return nil, fmt.Errorf("port %v: %w", port, ErrNoServer)
			}
			continue
		}
		reply, verdict := c.transactOnce(ctx, server, port, tx, req, ch, balance && c.hedge.Load())
		c.release(port, server)
		switch verdict {
		case verdictReply:
			return reply, nil
		case verdictCanceled:
			return nil, ctx.Err()
		case verdictClosed:
			return nil, ErrClosed
		case verdictNotHere:
			// Busy server: drain to the next cached candidate (§4.2).
			c.evict(port, server, false)
		case verdictDead:
			// Silent server: refresh the candidate set on the next pick.
			c.evict(port, server, true)
		}
	}
	return nil, fmt.Errorf("port %v: %w", port, ErrTimeout)
}

type verdict int

const (
	verdictReply verdict = iota + 1
	verdictNotHere
	verdictDead
	verdictCanceled
	verdictClosed
)

// transactOnce sends the request to one server and waits for its routed
// replies, retransmitting on silence. With hedge set, a reply slower
// than the server's ~p95 latency estimate triggers one hedge: the same
// wire frame (same transaction id) goes to the next-best replica, and
// whichever reply arrives first wins — the demultiplexer already routes
// both to this channel, and the server-side duplicate-suppression table
// keys on (src, tx), so the loser is simply a second reply that the
// winner's return leaves unread. Runs without the client mutex.
func (c *Client) transactOnce(ctx context.Context, server sim.NodeID, port capability.Port, tx uint64, req []byte, replies <-chan flip.Msg, hedge bool) ([]byte, verdict) {
	wire := encodeRequest(tx, c.replyPort, req)
	var (
		sentAt      time.Time // first transmission, for Karn-safe RTT samples
		hedgeCh     <-chan time.Time
		hedgeTimer  *time.Timer
		hedged      bool // a hedge was actually sent (NodeID 0 is valid, so a flag, not the zero id)
		hedgeServer sim.NodeID
		hedgeSent   time.Time
	)
	if hedge {
		if d, ok := c.hedgeDelay(port, server); ok {
			hedgeTimer = time.NewTimer(d)
			hedgeCh = hedgeTimer.C
		}
	}
	defer func() {
		if hedgeTimer != nil {
			hedgeTimer.Stop()
		}
		if hedged {
			c.release(port, hedgeServer)
		}
	}()
	for send := 0; send <= c.retransmits; send++ {
		if ctx.Err() != nil {
			return nil, verdictCanceled
		}
		if send == 0 {
			sentAt = time.Now()
		}
		if err := c.stack.Send(server, port, wire); err != nil {
			return nil, verdictDead
		}
		timer := time.NewTimer(c.replyTimeout)
	recv:
		for {
			select {
			case m := <-replies:
				op, _, hint, payload, err := decodeReply(m.Payload)
				if err != nil {
					continue
				}
				switch op {
				case opReply:
					// A reply is valid whichever server it came from: a
					// server this transaction already gave up on may
					// answer late, and its reply is still the result of
					// this exact request (at-most-once per server).
					// Third message of the exchange: acknowledge so the
					// server can drop its duplicate-suppression state.
					timer.Stop()
					_ = c.stack.Send(m.Src, port, encodeAck(tx))
					// RTT sampling follows Karn's rule: only replies
					// unambiguously attributable to one transmission
					// count — the primary's reply before any retransmit,
					// or the hedge's reply (the hedge is sent once).
					switch {
					case hedged && m.Src == hedgeServer:
						c.hedgeWins.Add(1)
						c.noteReply(port, m.Src, time.Since(hedgeSent), hint)
					case m.Src == server && send == 0:
						c.noteReply(port, m.Src, time.Since(sentAt), hint)
					default:
						c.noteHint(port, m.Src, hint)
					}
					return payload, verdictReply
				case opNotHere:
					if m.Src != server {
						// Stale NOTHERE from a server this transaction
						// already failed over from — or from a busy hedge
						// target — must not evict the current one.
						continue
					}
					timer.Stop()
					c.noteHint(port, m.Src, hint)
					return nil, verdictNotHere
				}
			case <-hedgeCh:
				hedgeCh = nil
				if hs, ok := c.takeHedge(port, server); ok {
					hedged, hedgeServer, hedgeSent = true, hs, time.Now()
					c.hedgesSent.Add(1)
					_ = c.stack.Send(hs, port, wire)
				}
			case <-timer.C:
				break recv
			case <-ctx.Done():
				timer.Stop()
				return nil, verdictCanceled
			case <-c.closed:
				timer.Stop()
				return nil, verdictClosed
			}
		}
	}
	return nil, verdictDead
}

// hedgeDelay computes how long a balanced read waits on server before
// hedging: the replica's SRTT + 4·RTTVAR (~p95 under the TCP RTO model).
// It also refills the hedge token bucket — called once per hedge-eligible
// read, so the refill rate is hedgeRate tokens per read. No sample yet,
// or an estimate so large the retransmit path covers it, disables the
// hedge for this transaction.
func (c *Client) hedgeDelay(port capability.Port, server sim.NodeID) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tokens += hedgeRate; c.tokens > hedgeBurst {
		c.tokens = hedgeBurst
	}
	st := c.stats[port][server]
	if st == nil || st.samples == 0 {
		return 0, false
	}
	d := st.srtt + 4*st.rttvar
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d >= c.replyTimeout {
		return 0, false
	}
	return d, true
}

// takeHedge spends one hedge token and picks the best-scored cached
// replica other than primary, charging it one in-flight request. It
// fails when the bucket is dry or no other replica is cached.
func (c *Client) takeHedge(port capability.Port, primary sim.NodeID) (sim.NodeID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tokens < 1 {
		return 0, false
	}
	e := c.cache[port]
	if e == nil {
		return 0, false
	}
	var (
		best      sim.NodeID
		bestScore float64
		found     bool
	)
	for _, s := range e.servers {
		if s == primary {
			continue
		}
		if sc := c.scoreLocked(port, s); !found || sc < bestScore {
			best, bestScore, found = s, sc, true
		}
	}
	if !found {
		return 0, false
	}
	c.tokens--
	if c.load[port] == nil {
		c.load[port] = make(map[sim.NodeID]int)
	}
	c.load[port][best]++
	return best, true
}

// noteReply folds one RTT sample and the piggybacked load hint into the
// replica's routing state (SRTT/RTTVAR per the TCP RTO estimator).
func (c *Client) noteReply(port capability.Port, server sim.NodeID, rtt time.Duration, hint byte) {
	if rtt < 0 {
		rtt = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.statLocked(port, server)
	if st.samples == 0 {
		st.srtt = rtt
		st.rttvar = rtt / 2
	} else {
		dev := st.srtt - rtt
		if dev < 0 {
			dev = -dev
		}
		st.rttvar = st.rttvar - st.rttvar/4 + dev/4
		st.srtt = st.srtt - st.srtt/8 + rtt/8
	}
	st.samples++
	st.hint = hint
	st.updated = time.Now()
}

// noteHint records a piggybacked load hint without an RTT sample (late
// replies, NOTHERE, HEREIS seeding).
func (c *Client) noteHint(port capability.Port, server sim.NodeID, hint byte) {
	c.mu.Lock()
	c.statLocked(port, server).hint = hint
	c.mu.Unlock()
}

// statLocked returns (allocating if needed) the routing state of one
// replica. Must hold c.mu.
func (c *Client) statLocked(port capability.Port, server sim.NodeID) *replicaStat {
	m := c.stats[port]
	if m == nil {
		m = make(map[sim.NodeID]*replicaStat)
		c.stats[port] = m
	}
	st := m[server]
	if st == nil {
		st = &replicaStat{}
		m[server] = st
	}
	return st
}

// scoreLocked ranks a replica for balanced selection: lower is better.
// The score is the latency EWMA inflated by the server's advertised load
// hint and by this client's own in-flight requests to it. A replica with
// no sample — or whose last sample has gone stale — scores zero, so it
// is probed rather than shunned forever: that is how a recovered replica
// re-enters the rotation. Must hold c.mu.
func (c *Client) scoreLocked(port capability.Port, server sim.NodeID) float64 {
	st := c.stats[port][server]
	if st == nil || st.samples == 0 || time.Since(st.updated) > 2*c.replyTimeout {
		return 0
	}
	return float64(st.srtt) * (1 + float64(st.hint)/64) * float64(1+c.load[port][server])
}

// pickServer returns a server for port, locating the service when the
// cache is empty, stale after a failover, or past its TTL. Concurrent
// pickers share one locate (single-flight). located tracks whether this
// transaction already performed a locate, limiting it to one backoff
// round per attempt.
func (c *Client) pickServer(ctx context.Context, port capability.Port, balance bool, located *bool) (sim.NodeID, bool) {
	for {
		c.mu.Lock()
		e := c.cache[port]
		if e != nil && len(e.servers) > 0 && time.Now().Before(e.recheckAt) {
			server := c.chooseLocked(port, e, balance)
			c.mu.Unlock()
			return server, true
		}
		if wait, inFlight := c.locating[port]; inFlight {
			c.mu.Unlock()
			select {
			case <-wait:
				continue // re-check the refreshed cache
			case <-ctx.Done():
				return 0, false
			case <-c.closed:
				return 0, false
			}
		}
		done := make(chan struct{})
		c.locating[port] = done
		c.mu.Unlock()

		found, ok := c.locate(ctx, port, located)

		c.mu.Lock()
		delete(c.locating, port)
		close(done)
		if !ok || len(found) == 0 {
			// Locate came up empty: fall back to the remainder the cache
			// still holds (those servers may well be alive; only the
			// refresh failed) — but only for a short grace, so the next
			// picks keep retrying the locate until the set is rebuilt.
			if old := c.cache[port]; old != nil && len(old.servers) > 0 {
				old.recheckAt = time.Now().Add(c.locateWindow)
				server := c.chooseLocked(port, old, balance)
				c.mu.Unlock()
				return server, true
			}
			c.mu.Unlock()
			return 0, false
		}
		servers := make([]sim.NodeID, len(found))
		var writable []sim.NodeID
		for i, h := range found {
			servers[i] = h.Src
			if !h.ReadOnly {
				writable = append(writable, h.Src)
			}
			// Seed each responder's routing state with the hint its
			// HEREIS piggybacked, so the first balanced picks already
			// steer away from loaded replicas.
			c.statLocked(port, h.Src).hint = h.Hint
		}
		e = &portCache{servers: servers, writable: writable, recheckAt: time.Now().Add(c.cacheTTL)}
		c.cache[port] = e
		server := c.chooseLocked(port, e, balance)
		c.mu.Unlock()
		return server, true
	}
}

// locate broadcasts a LOCATE and collects the HEREIS responders with
// their piggybacked load hints. A second locate within one transaction
// waits one window first, giving servers time to come up.
func (c *Client) locate(ctx context.Context, port capability.Port, located *bool) ([]flip.HereIs, bool) {
	if *located {
		timer := time.NewTimer(c.locateWindow)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, false
		}
	}
	*located = true
	found, err := c.stack.LocateHints(port, c.locateWindow, 0)
	if err != nil {
		return nil, false
	}
	return found, true
}

// chooseLocked picks a server from the cache entry and charges it one
// in-flight request. First-responder order for unbalanced picks;
// power-of-two-choices over the adaptive score (latency EWMA × load
// hint × in-flight) for balanced reads — two random candidates, keep the
// better, which spreads load almost as evenly as ranking every replica
// while staying O(1) and avoiding the herd behavior of always picking
// the global best. Candidates whose scores are within 50% of each other
// count as tied and split randomly, and a candidate that loses outright
// has its stored latency decayed: a replica only re-samples its latency
// when it is picked, so without the decay one unlucky early sample
// (cold caches, a scheduling hiccup) would freeze a replica out of the
// rotation forever. Must hold c.mu.
func (c *Client) chooseLocked(port capability.Port, e *portCache, balance bool) sim.NodeID {
	// Unbalanced picks — all updates, plus reads from clients that opted
	// out of balancing — must land on a writable responder; read-only
	// secondaries join the pool only for balanced reads.
	pool := e.servers
	if !balance && len(e.writable) > 0 {
		pool = e.writable
	}
	server := pool[0]
	if balance && len(pool) > 1 {
		i := c.rng.Intn(len(pool))
		j := c.rng.Intn(len(pool) - 1)
		if j >= i {
			j++
		}
		best, worst := pool[i], pool[j]
		sBest, sWorst := c.scoreLocked(port, best), c.scoreLocked(port, worst)
		if sWorst < sBest {
			best, worst = worst, best
			sBest, sWorst = sWorst, sBest
		}
		server = best
		if sWorst <= sBest*3/2 {
			if c.rng.Intn(2) == 0 {
				server = worst
			}
		} else if st := c.stats[port][worst]; st != nil {
			st.srtt -= st.srtt / 4
		}
	}
	if c.load[port] == nil {
		c.load[port] = make(map[sim.NodeID]int)
	}
	c.load[port][server]++
	return server
}

// release returns one in-flight charge for server.
func (c *Client) release(port capability.Port, server sim.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if load := c.load[port]; load != nil {
		if load[server]--; load[server] <= 0 {
			delete(load, server)
		}
	}
}

// evict removes server from the port cache. dead expires the entry so
// the next selection re-locates (failover refresh) instead of draining
// the shrinking remainder; NOTHERE evictions keep the paper's drain
// behavior.
func (c *Client) evict(port capability.Port, server sim.NodeID, dead bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.cache[port]
	if e == nil {
		return
	}
	kept := e.servers[:0]
	for _, s := range e.servers {
		if s != server {
			kept = append(kept, s)
		}
	}
	e.servers = kept
	keptW := e.writable[:0]
	for _, s := range e.writable {
		if s != server {
			keptW = append(keptW, s)
		}
	}
	e.writable = keptW
	if dead {
		e.recheckAt = time.Time{}
	}
}

func encodeRequest(tx uint64, replyPort capability.Port, payload []byte) []byte {
	buf := make([]byte, 1+8+6+len(payload))
	buf[0] = opRequest
	binary.BigEndian.PutUint64(buf[1:9], tx)
	copy(buf[9:15], replyPort[:])
	copy(buf[15:], payload)
	return buf
}

func encodeAck(tx uint64) []byte {
	buf := make([]byte, 1+8)
	buf[0] = opAck
	binary.BigEndian.PutUint64(buf[1:9], tx)
	return buf
}

// decodeReply parses a server-to-client frame:
// [op:1][tx:8][hint:1][payload]. The hint byte is the server's load
// advertisement (see Server.hintByte), present on every reply, push and
// NOTHERE.
func decodeReply(buf []byte) (op byte, tx uint64, hint byte, payload []byte, err error) {
	if len(buf) < 10 {
		return 0, 0, 0, nil, errors.New("rpc: short reply")
	}
	return buf[0], binary.BigEndian.Uint64(buf[1:9]), buf[9], buf[10:], nil
}
