package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dirsvc/internal/capability"
	"dirsvc/internal/flip"
	"dirsvc/internal/sim"
)

type fixture struct {
	net    *sim.Network
	client *Client
	stacks []*flip.Stack
}

// newFixture builds one client and n echo-less servers listening on port.
func newFixture(t *testing.T, n int) (*fixture, capability.Port, []*Server) {
	t.Helper()
	net := sim.NewNetwork(sim.FastModel(), 1)
	port := capability.PortFromString("svc")

	cs := flip.NewStack(net.AddNode("client"))
	client, err := NewClient(cs)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{net: net, client: client, stacks: []*flip.Stack{cs}}

	var servers []*Server
	for i := 0; i < n; i++ {
		ss := flip.NewStack(net.AddNode(fmt.Sprintf("server%d", i)))
		f.stacks = append(f.stacks, ss)
		srv, err := NewServer(ss, port)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
		for _, st := range f.stacks {
			st.Close()
		}
	})
	return f, port, servers
}

func echoWorkers(t *testing.T, srv *Server, workers int) {
	t.Helper()
	stop := srv.ServeFunc(workers, func(req *Request) []byte {
		return append([]byte("echo:"), req.Payload...)
	})
	// Close the server before waiting for the workers: they only exit
	// once GetRequest fails.
	t.Cleanup(func() {
		srv.Close()
		stop()
	})
}

func TestTransEcho(t *testing.T) {
	f, port, servers := newFixture(t, 1)
	echoWorkers(t, servers[0], 1)

	reply, err := f.client.Trans(port, []byte("hello"))
	if err != nil {
		t.Fatalf("Trans: %v", err)
	}
	if string(reply) != "echo:hello" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestTransUsesThreeMessagesWarm(t *testing.T) {
	f, port, servers := newFixture(t, 1)
	echoWorkers(t, servers[0], 1)

	// Warm the port cache (pays the locate).
	if _, err := f.client.Trans(port, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the ACK drain
	before := f.net.Stats().FramesSent
	if _, err := f.client.Trans(port, []byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	got := f.net.Stats().FramesSent - before
	// REQUEST + REPLY + ACK = 3 frames (paper §3.1).
	if got != 3 {
		t.Fatalf("warm RPC used %d frames, want 3", got)
	}
}

func TestTransNoServer(t *testing.T) {
	f, _, _ := newFixture(t, 0)
	_, err := f.client.Trans(capability.PortFromString("nobody"), []byte("x"))
	if !errors.Is(err, ErrNoServer) {
		t.Fatalf("err = %v, want ErrNoServer", err)
	}
}

func TestNotHereFailsOverToIdleServer(t *testing.T) {
	f, port, servers := newFixture(t, 2)
	// Server 0 has no worker at all: every request met with NOTHERE.
	// Server 1 echoes.
	echoWorkers(t, servers[1], 1)

	reply, err := f.client.Trans(port, []byte("hi"))
	if err != nil {
		t.Fatalf("Trans: %v", err)
	}
	if string(reply) != "echo:hi" {
		t.Fatalf("reply = %q", reply)
	}
	// The busy server must have been evicted from the cache if it was
	// tried first; either way the cache must not be empty.
	if len(f.client.CachedServers(port)) == 0 {
		t.Fatal("port cache empty after successful transaction")
	}
}

func TestFailoverAfterServerCrash(t *testing.T) {
	f, port, servers := newFixture(t, 2)
	echoWorkers(t, servers[0], 1)
	echoWorkers(t, servers[1], 1)

	if _, err := f.client.Trans(port, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	// Crash the preferred server; the transaction must fail over.
	preferred := f.client.CachedServers(port)[0]
	f.net.Node(preferred).Crash()

	reply, err := f.client.Trans(port, []byte("after-crash"))
	if err != nil {
		t.Fatalf("Trans after crash: %v", err)
	}
	if string(reply) != "echo:after-crash" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestDuplicateRequestSuppressed(t *testing.T) {
	f, port, servers := newFixture(t, 1)

	var mu sync.Mutex
	executions := 0
	stop := servers[0].ServeFunc(1, func(req *Request) []byte {
		mu.Lock()
		executions++
		mu.Unlock()
		return []byte("done")
	})
	t.Cleanup(func() {
		servers[0].Close()
		stop()
	})

	// Drop the first REPLY from the server so the client retransmits the
	// request; the server must not execute it twice. The filter matches
	// only RPC REPLY frames (flip DATA, rpc opReply), leaving the HEREIS
	// locate answer alone.
	var dropMu sync.Mutex
	dropped := false
	serverNode := servers[0].stack.Node().ID()
	f.net.SetDropFilter(func(src, dst sim.NodeID, payload []byte) bool {
		dropMu.Lock()
		defer dropMu.Unlock()
		isReply := len(payload) > 7 && payload[0] == 1 /* flip data */ && payload[7] == opReply
		if !dropped && src == serverNode && isReply {
			dropped = true
			return true
		}
		return false
	})

	reply, err := f.client.Trans(port, []byte("once"))
	if err != nil {
		t.Fatalf("Trans: %v", err)
	}
	if string(reply) != "done" {
		t.Fatalf("reply = %q", reply)
	}
	mu.Lock()
	defer mu.Unlock()
	if executions != 1 {
		t.Fatalf("request executed %d times, want 1", executions)
	}
}

func TestLossyNetworkStillCompletes(t *testing.T) {
	f, port, servers := newFixture(t, 1)
	echoWorkers(t, servers[0], 2)
	f.net.SetDropRate(0.15)
	defer f.net.SetDropRate(0)

	for i := 0; i < 20; i++ {
		want := fmt.Sprintf("msg-%d", i)
		reply, err := f.client.Trans(port, []byte(want))
		if err != nil {
			t.Fatalf("Trans %d: %v", i, err)
		}
		if string(reply) != "echo:"+want {
			t.Fatalf("Trans %d: reply %q", i, reply)
		}
	}
}

func TestConcurrentClientsSpreadLoad(t *testing.T) {
	net := sim.NewNetwork(sim.FastModel(), 1)
	port := capability.PortFromString("svc")

	perServer := make([]int, 3)
	var mu sync.Mutex
	var servers []*Server
	for i := 0; i < 3; i++ {
		ss := flip.NewStack(net.AddNode("server"))
		srv, err := NewServer(ss, port)
		if err != nil {
			t.Fatal(err)
		}
		i := i
		stop := srv.ServeFunc(2, func(req *Request) []byte {
			mu.Lock()
			perServer[i]++
			mu.Unlock()
			return req.Payload
		})
		servers = append(servers, srv)
		t.Cleanup(func() {
			srv.Close()
			stop()
		})
	}

	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for c := 0; c < 6; c++ {
		cs := flip.NewStack(net.AddNode("client"))
		client, err := NewClient(cs)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := client.Trans(port, []byte{byte(i)}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("client error: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	total := perServer[0] + perServer[1] + perServer[2]
	if total != 180 {
		t.Fatalf("processed %d requests, want 180 (distribution %v)", total, perServer)
	}
}

func TestRequestDoubleReplyRejected(t *testing.T) {
	f, port, servers := newFixture(t, 1)
	reqs := make(chan *Request, 1)
	go func() {
		req, err := servers[0].GetRequest()
		if err == nil {
			reqs <- req
		}
	}()
	transErr := make(chan error, 1)
	go func() {
		_, err := f.client.Trans(port, []byte("x"))
		transErr <- err
	}()
	req := <-reqs
	if err := req.Reply([]byte("one")); err != nil {
		t.Fatalf("first Reply: %v", err)
	}
	if err := req.Reply([]byte("two")); err == nil {
		t.Fatal("second Reply succeeded, want error")
	}
	if err := <-transErr; err != nil {
		t.Fatalf("Trans: %v", err)
	}
}

func TestServerCloseUnblocksGetRequest(t *testing.T) {
	_, _, servers := newFixture(t, 1)
	done := make(chan error, 1)
	go func() {
		_, err := servers[0].GetRequest()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	servers[0].Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("GetRequest: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("GetRequest did not unblock on Close")
	}
}

func TestLargePayloadRoundTrip(t *testing.T) {
	f, port, servers := newFixture(t, 1)
	echoWorkers(t, servers[0], 1)
	big := bytes.Repeat([]byte{0xAB}, 8000)
	reply, err := f.client.Trans(port, big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reply[5:], big) {
		t.Fatal("large payload corrupted")
	}
}
