package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dirsvc/internal/capability"
	"dirsvc/internal/flip"
	"dirsvc/internal/sim"
)

// Request is one client transaction awaiting a reply.
type Request struct {
	Src     sim.NodeID
	Payload []byte

	srv       *Server
	tx        uint64
	replyPort capability.Port
	replied   bool
	accepted  time.Time // when the dispatcher handed the request to a worker
}

// Reply sends the reply to the client and records it for duplicate
// suppression until the client's ACK arrives. Reply must be called exactly
// once per request.
func (r *Request) Reply(payload []byte) error {
	if r.replied {
		return errors.New("rpc: duplicate Reply")
	}
	r.replied = true
	r.srv.noteHandled(time.Since(r.accepted))
	r.srv.recordReply(r, payload)
	return r.srv.stack.Send(r.Src, r.replyPort, encodeReply(r.tx, r.srv.hintByte(), payload))
}

// PushAddr is a client's long-lived notification endpoint: the reply
// channel of the transaction that established a subscription. Frames
// pushed to it are framed exactly like replies to that transaction, so
// the client's existing demultiplexer routes them to the subscriber
// with no new wire machinery.
type PushAddr struct {
	Src       sim.NodeID
	ReplyPort capability.Port
	Tx        uint64
}

// PushAddr captures the request's reply channel for later server-
// initiated pushes. Only meaningful for subscription requests whose
// client keeps the transaction's reply channel registered.
func (r *Request) PushAddr() PushAddr {
	return PushAddr{Src: r.Src, ReplyPort: r.replyPort, Tx: r.tx}
}

// Push sends a one-way server-initiated message to a subscribed
// client. Unlike Reply it may be called any number of times, is not
// recorded for duplicate suppression, and is not acknowledged: a lost
// push is recovered by the subscription's own lease-renewal protocol.
func (s *Server) Push(addr PushAddr, payload []byte) error {
	return s.stack.Send(addr.Src, addr.ReplyPort, encodeReply(addr.Tx, s.hintByte(), payload))
}

// dupKey identifies one transaction. Transaction ids are globally unique
// per client endpoint (the high bits carry the client sequence number), so
// (src, tx) cannot collide across clients sharing a node.
type dupKey struct {
	src sim.NodeID
	tx  uint64
}

type dupEntry struct {
	done    bool
	payload []byte
}

// maxDupEntries bounds the duplicate-suppression table.
const maxDupEntries = 4096

// Server accepts transactions on one port. Worker threads call GetRequest
// and Reply, mirroring Amoeba's getreq/putrep server loop. If a REQUEST
// arrives while no worker is blocked in GetRequest, the server answers
// NOTHERE — the behavior that drives the paper's port-cache heuristic.
type Server struct {
	stack    *flip.Stack
	port     capability.Port
	listener *flip.Listener
	reqCh    chan *Request

	mu       sync.Mutex
	dups     map[dupKey]*dupEntry
	dupOrder []dupKey
	closed   bool

	// Load-hint state: the byte piggybacked on every reply and HEREIS so
	// clients steer around loaded replicas without probing them.
	inflight  atomic.Int64  // requests handed to workers, not yet replied
	handleEWM atomic.Uint64 // EWMA of handle time, microseconds
	lagFn     atomic.Value  // func() int: backend-supplied lag units

	done chan struct{}
}

// SetLagFunc installs the backend's contribution to the load hint: a
// non-negative lag measure (e.g. buffered-but-unapplied group entries,
// or stored peer intentions) sampled on every reply. fn must not block;
// nil (the default) contributes zero.
func (s *Server) SetLagFunc(fn func() int) {
	if fn == nil {
		fn = func() int { return 0 }
	}
	s.lagFn.Store(fn)
}

// noteHandled folds one request's handle time into the server's EWMA
// (α = 1/8, like TCP's SRTT) and releases its in-flight slot.
func (s *Server) noteHandled(d time.Duration) {
	s.inflight.Add(-1)
	us := uint64(d.Microseconds())
	for {
		old := s.handleEWM.Load()
		next := us
		if old != 0 {
			next = old - old/8 + us/8
		}
		if s.handleEWM.CompareAndSwap(old, next) {
			return
		}
	}
}

// hintByte composes the load hint: worker-queue depth, the backend's lag
// units, and the handle-time EWMA, clamped to a byte. Clients treat it as
// a relative multiplier, so only the ordering across replicas matters.
func (s *Server) hintByte() byte {
	h := int64(s.inflight.Load()) * 24
	if fn, ok := s.lagFn.Load().(func() int); ok && fn != nil {
		if lag := fn(); lag > 0 {
			h += int64(lag) * 8
		}
	}
	// Handle-time EWMA contributes one unit per 2 ms, capped so queue
	// depth and lag stay visible on slow models.
	ewmaUnits := int64(s.handleEWM.Load()) / 2000
	if ewmaUnits > 64 {
		ewmaUnits = 64
	}
	h += ewmaUnits
	if h > 255 {
		h = 255
	}
	return byte(h)
}

// NewServer registers port on the stack and starts the dispatcher.
func NewServer(stack *flip.Stack, port capability.Port) (*Server, error) {
	l, err := stack.Register(port)
	if err != nil {
		return nil, fmt.Errorf("rpc server: %w", err)
	}
	s := &Server{
		stack:    stack,
		port:     port,
		listener: l,
		reqCh:    make(chan *Request), // unbuffered: handoff only to a blocked GetRequest
		dups:     make(map[dupKey]*dupEntry),
		done:     make(chan struct{}),
	}
	// HEREIS answers for this port carry the same load hint as replies,
	// so a client ranks replicas before its first request reaches them.
	l.SetHint(s.hintByte)
	go s.dispatch()
	return s, nil
}

// SetReadOnly marks this server's HEREIS answers with the read-only
// flag: locating clients then route updates to other responders on the
// same port (see portCache.writable).
func (s *Server) SetReadOnly(ro bool) {
	s.listener.SetReadOnly(ro)
}

// Port returns the service port.
func (s *Server) Port() capability.Port { return s.port }

// Close stops the server and unblocks all GetRequest callers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.listener.Close()
	<-s.done
}

// GetRequest blocks until a client transaction arrives. It returns
// ErrClosed after Close (or node crash).
func (s *Server) GetRequest() (*Request, error) {
	req, ok := <-s.reqCh
	if !ok {
		return nil, ErrClosed
	}
	return req, nil
}

// ServeFunc starts workers goroutines that loop GetRequest → handler →
// Reply with the handler's result. It returns a stop function that waits
// for the workers to exit (the server itself must be Closed separately).
func (s *Server) ServeFunc(workers int, handler func(*Request) []byte) (stop func()) {
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				req, err := s.GetRequest()
				if err != nil {
					return
				}
				_ = req.Reply(handler(req))
			}
		}()
	}
	return wg.Wait
}

func (s *Server) dispatch() {
	defer close(s.done)
	defer close(s.reqCh)
	for {
		m, ok := s.listener.Recv()
		if !ok {
			return
		}
		if len(m.Payload) < 9 {
			continue
		}
		op := m.Payload[0]
		tx := binary.BigEndian.Uint64(m.Payload[1:9])
		switch op {
		case opRequest:
			s.handleRequest(m, tx)
		case opAck:
			s.mu.Lock()
			delete(s.dups, dupKey{src: m.Src, tx: tx})
			s.mu.Unlock()
		}
	}
}

func (s *Server) handleRequest(m flip.Msg, tx uint64) {
	if len(m.Payload) < 15 {
		return
	}
	var replyPort capability.Port
	copy(replyPort[:], m.Payload[9:15])
	key := dupKey{src: m.Src, tx: tx}

	s.mu.Lock()
	if e, seen := s.dups[key]; seen {
		done, payload := e.done, e.payload
		s.mu.Unlock()
		if done {
			// Retransmitted request whose reply was lost: resend it.
			_ = s.stack.Send(m.Src, replyPort, encodeReply(tx, s.hintByte(), payload))
		}
		// In progress: drop; the worker's Reply will reach the client.
		return
	}
	s.mu.Unlock()

	req := &Request{
		Src:       m.Src,
		Payload:   m.Payload[15:],
		srv:       s,
		tx:        tx,
		replyPort: replyPort,
		accepted:  time.Now(),
	}
	select {
	case s.reqCh <- req:
		s.inflight.Add(1)
		s.mu.Lock()
		s.insertDupLocked(key, &dupEntry{})
		s.mu.Unlock()
	default:
		// No thread blocked in GetRequest: the kernel answers NOTHERE
		// (paper §4.2), prompting the client to try another server.
		_ = s.stack.Send(m.Src, replyPort, encodeNotHere(tx, s.hintByte()))
	}
}

func (s *Server) recordReply(r *Request, payload []byte) {
	key := dupKey{src: r.Src, tx: r.tx}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.dups[key]; ok {
		e.done = true
		e.payload = payload
		return
	}
	s.insertDupLocked(key, &dupEntry{done: true, payload: payload})
}

// insertDupLocked adds a duplicate-suppression entry, evicting the oldest
// when the table is full. Must be called with s.mu held.
func (s *Server) insertDupLocked(key dupKey, e *dupEntry) {
	if len(s.dupOrder) >= maxDupEntries {
		evict := s.dupOrder[0]
		s.dupOrder = s.dupOrder[1:]
		delete(s.dups, evict)
	}
	s.dups[key] = e
	s.dupOrder = append(s.dupOrder, key)
}

// Server-to-client frames are [op:1][tx:8][hint:1][payload]: every
// reply, push, and NOTHERE piggybacks the server's current load hint,
// which the client folds into its replica-selection scores.
func encodeReply(tx uint64, hint byte, payload []byte) []byte {
	buf := make([]byte, 1+8+1+len(payload))
	buf[0] = opReply
	binary.BigEndian.PutUint64(buf[1:9], tx)
	buf[9] = hint
	copy(buf[10:], payload)
	return buf
}

func encodeNotHere(tx uint64, hint byte) []byte {
	buf := make([]byte, 1+8+1)
	buf[0] = opNotHere
	binary.BigEndian.PutUint64(buf[1:9], tx)
	buf[9] = hint
	return buf
}
