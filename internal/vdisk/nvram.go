package vdisk

import (
	"fmt"
	"sync"

	"dirsvc/internal/sim"
)

// DefaultNVRAMSize is the NVRAM capacity used in the paper (§4.1): 24 KB.
const DefaultNVRAMSize = 24 * 1024

// NVRAM simulates a battery-backed RAM region. Writes are charged at RAM
// speed and the contents survive fail-stop crashes (the simulated machine
// keeps the NVRAM object across restarts). The directory service layers an
// operation log with append/delete cancellation on top (internal/dirsvc).
type NVRAM struct {
	model *sim.LatencyModel

	mu  sync.Mutex
	buf []byte
}

// NewNVRAM creates an NVRAM region of size bytes.
func NewNVRAM(model *sim.LatencyModel, size int) *NVRAM {
	return &NVRAM{
		model: model,
		buf:   make([]byte, size),
	}
}

// Size returns the region capacity in bytes.
func (n *NVRAM) Size() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.buf)
}

// Write stores data at offset off, charging one NVRAM write.
func (n *NVRAM) Write(off int, data []byte) error {
	n.mu.Lock()
	if off < 0 || off+len(data) > len(n.buf) {
		n.mu.Unlock()
		return fmt.Errorf("nvram write [%d,%d): %w", off, off+len(data), ErrTooLarge)
	}
	copy(n.buf[off:], data)
	n.mu.Unlock()
	n.model.Sleep(n.model.NVRAMWrite)
	return nil
}

// Read returns a copy of the region [off, off+length).
func (n *NVRAM) Read(off, length int) ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if off < 0 || length < 0 || off+length > len(n.buf) {
		return nil, fmt.Errorf("nvram read [%d,%d): %w", off, off+length, ErrTooLarge)
	}
	out := make([]byte, length)
	copy(out, n.buf[off:])
	return out, nil
}

// Snapshot returns a copy of the whole region.
func (n *NVRAM) Snapshot() []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]byte, len(n.buf))
	copy(out, n.buf)
	return out
}
