// Package vdisk simulates the stable-storage hardware of the paper's
// testbed: Wren IV SCSI disks holding raw partitions of fixed-length
// blocks, and the 24 KB battery-backed NVRAM used by the fast variant of
// the directory service.
//
// Disk and NVRAM contents survive fail-stop crashes: the simulated machine
// keeps its Disk and NVRAM objects across server restarts. A disk can also
// suffer an injected media failure ("head crash", paper §3.1), after which
// every operation fails.
package vdisk

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dirsvc/internal/sim"
)

// BlockSize is the size of one disk block in bytes.
const BlockSize = 512

var (
	// ErrMediaFailure is returned after an injected head crash.
	ErrMediaFailure = errors.New("vdisk: media failure")
	// ErrOutOfRange is returned for block numbers outside the partition.
	ErrOutOfRange = errors.New("vdisk: block out of range")
	// ErrTooLarge is returned when data exceeds the target block or region.
	ErrTooLarge = errors.New("vdisk: data too large")
)

// Stats counts disk activity.
type Stats struct {
	Reads     uint64
	Writes    uint64
	SeqWrites uint64
}

// Disk is a raw partition of fixed-length blocks with calibrated access
// latency. All operations are synchronous, like the raw partition writes
// the directory servers use for their administrative data.
type Disk struct {
	model *sim.LatencyModel

	// arm serializes media access: one disk arm means concurrent
	// operations queue behind each other, which is why the paper's write
	// throughput bounds in Fig. 9 are what they are ("write operations
	// cannot be performed in parallel").
	arm sync.Mutex

	mu     sync.Mutex
	blocks [][]byte
	failed bool
	stats  Stats
}

// New creates a disk with nblocks zeroed blocks.
func New(model *sim.LatencyModel, nblocks int) *Disk {
	return &Disk{
		model:  model,
		blocks: make([][]byte, nblocks),
	}
}

// Blocks returns the number of blocks in the partition.
func (d *Disk) Blocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.blocks)
}

// Stats returns a snapshot of the operation counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// FailMedia injects a permanent media failure: every subsequent operation
// returns ErrMediaFailure and the contents are lost.
func (d *Disk) FailMedia() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = true
	d.blocks = nil
}

// Failed reports whether the disk has suffered a media failure.
func (d *Disk) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// ReadBlock returns a copy of block i, charging one random access. A block
// never written reads as all zeroes.
func (d *Disk) ReadBlock(i int) ([]byte, error) {
	d.arm.Lock()
	defer d.arm.Unlock()
	d.mu.Lock()
	if err := d.check(i, 1); err != nil {
		d.mu.Unlock()
		return nil, err
	}
	d.stats.Reads++
	out := make([]byte, BlockSize)
	copy(out, d.blocks[i])
	d.mu.Unlock()
	d.model.Sleep(d.model.DiskOp)
	return out, nil
}

// WriteBlock synchronously writes data (≤ BlockSize bytes, zero padded)
// to block i, charging one random access.
func (d *Disk) WriteBlock(i int, data []byte) error {
	return d.write(i, data, false)
}

// WriteBlockSeq writes like WriteBlock but charges only a short seek. The
// RPC directory service uses this for its intentions block, which lives at
// a fixed staging location near the head's resting position (DESIGN.md §6).
func (d *Disk) WriteBlockSeq(i int, data []byte) error {
	return d.write(i, data, true)
}

func (d *Disk) write(i int, data []byte, sequential bool) error {
	if len(data) > BlockSize {
		return fmt.Errorf("write block %d: %w (%d bytes)", i, ErrTooLarge, len(data))
	}
	d.arm.Lock()
	defer d.arm.Unlock()
	d.mu.Lock()
	if err := d.check(i, 1); err != nil {
		d.mu.Unlock()
		return err
	}
	blk := make([]byte, BlockSize)
	copy(blk, data)
	d.blocks[i] = blk
	cost := d.model.DiskOp
	if sequential {
		cost = d.model.DiskSeqOp
		d.stats.SeqWrites++
	} else {
		d.stats.Writes++
	}
	d.mu.Unlock()
	d.model.Sleep(cost)
	return nil
}

// WriteRun writes data across consecutive blocks starting at block start,
// charging one seek plus per-block transfer time. The Bullet server uses
// this to lay files out contiguously.
func (d *Disk) WriteRun(start int, data []byte) error {
	return d.writeRun(start, data, false)
}

// WriteRunSeq writes like WriteRun but charges only a short seek, for runs
// at a fixed staging location (e.g. the Bullet server's file table).
func (d *Disk) WriteRunSeq(start int, data []byte) error {
	return d.writeRun(start, data, true)
}

func (d *Disk) writeRun(start int, data []byte, sequential bool) error {
	n := blocksFor(len(data))
	if n == 0 {
		n = 1
	}
	d.arm.Lock()
	defer d.arm.Unlock()
	d.mu.Lock()
	if err := d.check(start, n); err != nil {
		d.mu.Unlock()
		return err
	}
	for b := 0; b < n; b++ {
		blk := make([]byte, BlockSize)
		lo := b * BlockSize
		hi := min(lo+BlockSize, len(data))
		if lo < len(data) {
			copy(blk, data[lo:hi])
		}
		d.blocks[start+b] = blk
	}
	seek := d.model.DiskOp
	if sequential {
		seek = d.model.DiskSeqOp
		d.stats.SeqWrites++
	} else {
		d.stats.Writes++
	}
	cost := seek + time.Duration(n-1)*d.model.DiskBlockXfer
	d.mu.Unlock()
	d.model.Sleep(cost)
	return nil
}

// ReadRun reads length bytes from consecutive blocks starting at start,
// charging one seek plus per-block transfer time.
func (d *Disk) ReadRun(start, length int) ([]byte, error) {
	n := blocksFor(length)
	if n == 0 {
		n = 1
	}
	d.arm.Lock()
	defer d.arm.Unlock()
	d.mu.Lock()
	if err := d.check(start, n); err != nil {
		d.mu.Unlock()
		return nil, err
	}
	out := make([]byte, n*BlockSize)
	for b := 0; b < n; b++ {
		copy(out[b*BlockSize:], d.blocks[start+b])
	}
	d.stats.Reads++
	cost := d.model.DiskOp + time.Duration(n-1)*d.model.DiskBlockXfer
	d.mu.Unlock()
	d.model.Sleep(cost)
	return out[:length], nil
}

// check must be called with d.mu held.
func (d *Disk) check(start, n int) error {
	if d.failed {
		return ErrMediaFailure
	}
	if start < 0 || n < 0 || start+n > len(d.blocks) {
		return fmt.Errorf("blocks [%d,%d): %w", start, start+n, ErrOutOfRange)
	}
	return nil
}

// blocksFor returns the number of blocks needed for n bytes.
func blocksFor(n int) int { return (n + BlockSize - 1) / BlockSize }
