package vdisk

import "fmt"

// Storage is the block-device interface shared by whole disks and
// partitions. The directory server's admin data and its Bullet server's
// file store live on partitions of the same physical disk, as in the
// paper's configuration (Fig. 3: each directory server, Bullet server and
// disk server triple shares one disk), so they contend for the same arm.
type Storage interface {
	Blocks() int
	ReadBlock(i int) ([]byte, error)
	WriteBlock(i int, data []byte) error
	WriteBlockSeq(i int, data []byte) error
	WriteRun(start int, data []byte) error
	WriteRunSeq(start int, data []byte) error
	ReadRun(start, length int) ([]byte, error)
}

var (
	_ Storage = (*Disk)(nil)
	_ Storage = (*Partition)(nil)
)

// Partition exposes a contiguous block range of a disk as a Storage. All
// latency and arm contention comes from the underlying disk.
type Partition struct {
	disk  *Disk
	start int
	n     int
}

// NewPartition carves blocks [start, start+n) out of disk.
func NewPartition(disk *Disk, start, n int) (*Partition, error) {
	if start < 0 || n <= 0 || start+n > disk.Blocks() {
		return nil, fmt.Errorf("partition [%d,%d) on %d-block disk: %w", start, start+n, disk.Blocks(), ErrOutOfRange)
	}
	return &Partition{disk: disk, start: start, n: n}, nil
}

// Blocks returns the partition size in blocks.
func (p *Partition) Blocks() int { return p.n }

func (p *Partition) translate(i, span int) (int, error) {
	if i < 0 || span < 0 || i+span > p.n {
		return 0, fmt.Errorf("partition blocks [%d,%d): %w", i, i+span, ErrOutOfRange)
	}
	return p.start + i, nil
}

// ReadBlock reads one block of the partition.
func (p *Partition) ReadBlock(i int) ([]byte, error) {
	abs, err := p.translate(i, 1)
	if err != nil {
		return nil, err
	}
	return p.disk.ReadBlock(abs)
}

// WriteBlock writes one block of the partition.
func (p *Partition) WriteBlock(i int, data []byte) error {
	abs, err := p.translate(i, 1)
	if err != nil {
		return err
	}
	return p.disk.WriteBlock(abs, data)
}

// WriteBlockSeq writes one block, charged as a short seek.
func (p *Partition) WriteBlockSeq(i int, data []byte) error {
	abs, err := p.translate(i, 1)
	if err != nil {
		return err
	}
	return p.disk.WriteBlockSeq(abs, data)
}

// WriteRun writes a contiguous run inside the partition.
func (p *Partition) WriteRun(start int, data []byte) error {
	abs, err := p.translate(start, blocksFor(len(data)))
	if err != nil {
		return err
	}
	return p.disk.WriteRun(abs, data)
}

// WriteRunSeq writes a contiguous run, charged as a short seek.
func (p *Partition) WriteRunSeq(start int, data []byte) error {
	abs, err := p.translate(start, blocksFor(len(data)))
	if err != nil {
		return err
	}
	return p.disk.WriteRunSeq(abs, data)
}

// ReadRun reads a contiguous run inside the partition.
func (p *Partition) ReadRun(start, length int) ([]byte, error) {
	abs, err := p.translate(start, blocksFor(length))
	if err != nil {
		return nil, err
	}
	return p.disk.ReadRun(abs, length)
}
