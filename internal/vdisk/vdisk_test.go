package vdisk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"dirsvc/internal/sim"
)

func newDisk(t *testing.T, blocks int) *Disk {
	t.Helper()
	return New(sim.FastModel(), blocks)
}

func TestWriteReadBlock(t *testing.T) {
	d := newDisk(t, 8)
	data := []byte("commit block contents")
	if err := d.WriteBlock(0, data); err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	got, err := d.ReadBlock(0)
	if err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	if len(got) != BlockSize {
		t.Fatalf("block size = %d, want %d", len(got), BlockSize)
	}
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatalf("got %q", got[:len(data)])
	}
	// Remainder must be zero padded.
	for _, b := range got[len(data):] {
		if b != 0 {
			t.Fatal("block not zero padded")
		}
	}
}

func TestUnwrittenBlockReadsZero(t *testing.T) {
	d := newDisk(t, 4)
	got, err := d.ReadBlock(3)
	if err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	if !bytes.Equal(got, make([]byte, BlockSize)) {
		t.Fatal("unwritten block not zero")
	}
}

func TestOutOfRange(t *testing.T) {
	d := newDisk(t, 4)
	tests := []struct {
		name string
		fn   func() error
	}{
		{"read high", func() error { _, err := d.ReadBlock(4); return err }},
		{"read negative", func() error { _, err := d.ReadBlock(-1); return err }},
		{"write high", func() error { return d.WriteBlock(4, nil) }},
		{"run over end", func() error { return d.WriteRun(3, make([]byte, 2*BlockSize)) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.fn(); !errors.Is(err, ErrOutOfRange) {
				t.Fatalf("err = %v, want ErrOutOfRange", err)
			}
		})
	}
}

func TestWriteTooLarge(t *testing.T) {
	d := newDisk(t, 4)
	if err := d.WriteBlock(0, make([]byte, BlockSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestWriteRunReadRun(t *testing.T) {
	d := newDisk(t, 16)
	data := bytes.Repeat([]byte("0123456789abcdef"), 100) // 1600 bytes, 4 blocks
	if err := d.WriteRun(2, data); err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	got, err := d.ReadRun(2, len(data))
	if err != nil {
		t.Fatalf("ReadRun: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("run round trip mismatch")
	}
}

func TestMediaFailure(t *testing.T) {
	d := newDisk(t, 4)
	if err := d.WriteBlock(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	d.FailMedia()
	if !d.Failed() {
		t.Fatal("Failed() = false after FailMedia")
	}
	if _, err := d.ReadBlock(0); !errors.Is(err, ErrMediaFailure) {
		t.Fatalf("read after head crash: %v", err)
	}
	if err := d.WriteBlock(0, []byte("y")); !errors.Is(err, ErrMediaFailure) {
		t.Fatalf("write after head crash: %v", err)
	}
}

func TestStatsDistinguishSeqWrites(t *testing.T) {
	d := newDisk(t, 4)
	_ = d.WriteBlock(0, nil)
	_ = d.WriteBlockSeq(1, nil)
	_ = d.WriteBlockSeq(1, nil)
	_, _ = d.ReadBlock(0)
	s := d.Stats()
	if s.Writes != 1 || s.SeqWrites != 2 || s.Reads != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestQuickRunRoundTrip(t *testing.T) {
	d := newDisk(t, 64)
	f := func(raw []byte) bool {
		if len(raw) > 20*BlockSize {
			raw = raw[:20*BlockSize]
		}
		if err := d.WriteRun(0, raw); err != nil {
			return false
		}
		got, err := d.ReadRun(0, len(raw))
		return err == nil && bytes.Equal(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNVRAMReadWrite(t *testing.T) {
	n := NewNVRAM(sim.FastModel(), 128)
	if n.Size() != 128 {
		t.Fatalf("Size = %d", n.Size())
	}
	if err := n.Write(10, []byte("journal")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := n.Read(10, 7)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(got) != "journal" {
		t.Fatalf("got %q", got)
	}
}

func TestNVRAMBounds(t *testing.T) {
	n := NewNVRAM(sim.FastModel(), 16)
	if err := n.Write(10, make([]byte, 7)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("overflowing write: %v", err)
	}
	if _, err := n.Read(-1, 4); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("negative read: %v", err)
	}
	if _, err := n.Read(0, 17); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("long read: %v", err)
	}
}

func TestNVRAMSnapshotIsCopy(t *testing.T) {
	n := NewNVRAM(sim.FastModel(), 8)
	_ = n.Write(0, []byte{1})
	snap := n.Snapshot()
	snap[0] = 99
	got, _ := n.Read(0, 1)
	if got[0] != 1 {
		t.Fatal("Snapshot aliases internal buffer")
	}
}
