package rpcdir

import (
	"testing"

	"dirsvc/internal/capability"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/sim"
)

func TestIntentionCodecRoundTrip(t *testing.T) {
	req := &dirsvc.Request{
		Op:    dirsvc.OpAppendRow,
		Dir:   capability.Mint(dirsvc.ServicePort("x"), 3, capability.NewSecret([]byte("s"))),
		Name:  "pending",
		Masks: []capability.Rights{capability.AllRights},
	}
	got, seq, ok := decodeIntention(encodeIntention(req, 42))
	if !ok {
		t.Fatal("decodeIntention failed")
	}
	if seq != 42 || got.Op != dirsvc.OpAppendRow || got.Name != "pending" {
		t.Fatalf("got seq=%d req=%+v", seq, got)
	}
}

func TestIntentionCodecRejectsEmptyAndGarbage(t *testing.T) {
	if _, _, ok := decodeIntention(nil); ok {
		t.Fatal("decoded nil")
	}
	if _, _, ok := decodeIntention(make([]byte, 12)); ok {
		t.Fatal("decoded zero block (must read as no intention)")
	}
	raw := encodeIntention(&dirsvc.Request{Op: dirsvc.OpDeleteRow, Name: "x"}, 7)
	if _, _, ok := decodeIntention(raw[:len(raw)-2]); ok {
		t.Fatal("decoded truncated intention")
	}
}

func TestBundleCodecRoundTrip(t *testing.T) {
	w := newBundleWriter()
	sec1 := capability.NewSecret([]byte("a"))
	sec2 := capability.NewSecret([]byte("b"))
	w.add(1, 10, sec1, []byte("image-one"))
	w.add(7, 11, sec2, nil)
	dirs, err := parseBundle(w.bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 {
		t.Fatalf("parsed %d dirs", len(dirs))
	}
	if dirs[0].obj != 1 || dirs[0].seq != 10 || dirs[0].secret != sec1 || string(dirs[0].image) != "image-one" {
		t.Fatalf("dir[0] = %+v", dirs[0])
	}
	if dirs[1].obj != 7 || len(dirs[1].image) != 0 {
		t.Fatalf("dir[1] = %+v", dirs[1])
	}
}

func TestBundleCodecRejectsTruncation(t *testing.T) {
	w := newBundleWriter()
	w.add(1, 10, capability.NewSecret([]byte("a")), []byte("xyz"))
	raw := w.bytes()
	for cut := 1; cut < len(raw); cut += 2 {
		if _, err := parseBundle(raw[:len(raw)-cut]); err == nil {
			t.Fatalf("parsed truncated bundle (cut %d)", cut)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	net := sim.NewNetwork(sim.FastModel(), 1)
	stack := newTestStack(t, net)
	if _, err := NewServer(stack, Config{Service: "x", ID: 3}); err == nil {
		t.Fatal("accepted server id 3 in a two-server service")
	}
}
