// Package rpcdir reproduces the paper's previous directory service: two
// servers coordinated by remote procedure call (§1).
//
// Reads execute at either server without communication. An update
// received at one server is first proposed to the other over RPC; the
// peer checks for a conflicting operation, stores the intentions on its
// disk (a short-seek write to a fixed staging block), and answers OK.
// The originating server then performs the update — new Bullet file plus
// object table write — and replies to the client. The second copy is
// created lazily in the background (the peer applies its stored
// intention). The service assumes network partitions do not happen; with
// one server down the survivor continues alone, which is exactly the
// weaker failure model the paper criticizes.
package rpcdir

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dirsvc/internal/bullet"
	"dirsvc/internal/capability"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/flip"
	"dirsvc/internal/rpc"
	"dirsvc/internal/sim"
	"dirsvc/internal/vdisk"
)

// PeerPort is the server-to-server port of rpcdir server id.
func PeerPort(service string, id int) capability.Port {
	return capability.PortFromString(fmt.Sprintf("rpcdir-peer:%s:%d", service, id))
}

// Config describes one of the two servers.
type Config struct {
	Service string
	ID      int // 1 or 2
	Admin   vdisk.Storage
	// Staging is the fixed intentions block (same disk, short seek).
	Staging vdisk.Storage
	Workers int
	// Shard and Shards place this server pair in a sharded deployment
	// (see dirsvc.ObjectTable.ConfigureShard). Zero values mean unsharded.
	Shard, Shards int
	// ActiveShards is the number of shards serving traffic at epoch zero;
	// the rest are reserve targets for online splits. Zero means all
	// Shards are active — the pre-elastic behavior.
	ActiveShards int
	// BaseService is the deployment-wide service name (decision queries
	// to sibling shards); empty means no cross-shard queries.
	BaseService string
	// TxAbortTimeout is the presumed-abort horizon for prepared
	// two-phase transactions (zero: a model-scaled default).
	TxAbortTimeout time.Duration
	// LeaseTTL bounds a watch/cache lease without renewal (zero: a
	// model-scaled default).
	LeaseTTL time.Duration
	// EventLogSize bounds the event log replayable to reconnecting
	// watchers (zero: dirsvc.DefaultEventLogSize).
	EventLogSize int
}

// pendingIntention is an update the peer has proposed and we have
// promised to apply.
type pendingIntention struct {
	seq uint64
	req *dirsvc.Request
}

// Server is one of the two RPC directory servers.
type Server struct {
	cfg      Config
	stack    *flip.Stack
	model    *sim.LatencyModel
	applier  *dirsvc.Applier
	table    *dirsvc.ObjectTable
	rpcSrv   *rpc.Server
	peerSrv  *rpc.Server
	peerRPC  *rpc.Client
	bc       *bullet.Client
	notifier *dirsvc.Notifier

	mu       sync.Mutex
	seq      uint64
	updateMu sync.Mutex // updates are serialized (paper §4.2)
	pending  map[uint32]*pendingIntention

	// minSeqWait bounds how long a read waits for the peer's lazy
	// applies to reach the client's session floor (Request.MinSeq).
	minSeqWait time.Duration
	// txTimeout is the presumed-abort horizon for prepared transactions;
	// txRPC carries decision queries to sibling shards.
	txTimeout time.Duration
	txRPC     *rpc.Client

	cleanupCh chan capability.Capability
	stop      chan struct{}
	wg        sync.WaitGroup
	stops     []func()
}

// NewServer boots one rpcdir server. If the peer is reachable and ahead,
// the server syncs its state from the peer before serving.
func NewServer(stack *flip.Stack, cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.ID != 1 && cfg.ID != 2 {
		return nil, fmt.Errorf("rpcdir: server id must be 1 or 2, got %d", cfg.ID)
	}
	rc, err := rpc.NewClient(stack)
	if err != nil {
		return nil, err
	}
	peerRPC, err := rpc.NewClient(stack)
	if err != nil {
		return nil, err
	}
	table, err := dirsvc.OpenObjectTable(cfg.Admin)
	if err != nil {
		return nil, fmt.Errorf("rpcdir: %w", err)
	}
	base := cfg.ActiveShards
	if base <= 0 || base > cfg.Shards {
		base = cfg.Shards
	}
	table.ConfigureShard(cfg.Shard, base)
	s := &Server{
		cfg:       cfg,
		stack:     stack,
		model:     stack.Model(),
		table:     table,
		peerRPC:   peerRPC,
		bc:        bullet.NewClient(rc, dirsvc.BulletPort(cfg.Service, cfg.ID)),
		pending:   make(map[uint32]*pendingIntention),
		cleanupCh: make(chan capability.Capability, 1024),
		stop:      make(chan struct{}),
	}
	s.minSeqWait = s.model.Timeout(5 * time.Second)
	if s.minSeqWait < 500*time.Millisecond {
		s.minSeqWait = 500 * time.Millisecond
	}
	s.txTimeout = cfg.TxAbortTimeout
	if s.txTimeout <= 0 {
		s.txTimeout = s.model.Timeout(30 * time.Second)
		if s.txTimeout < 3*time.Second {
			s.txTimeout = 3 * time.Second
		}
	}
	s.applier = dirsvc.NewApplier(dirsvc.ServicePort(cfg.Service), table, s.bc)
	s.applier.SetLockWaitSlots(cfg.Workers - 1)
	s.applier.ConfigureTopology(cfg.Shard, base, cfg.Shards)

	if err := s.bootstrap(); err != nil {
		return nil, err
	}

	// Events recorded on this server carry its own apply order: the pair
	// applies updates at possibly different times (lazy copies), so the
	// log index — not the agreed Seq — is the stream cursor here. The
	// identity is per boot; bootstrap's replayed history is not recorded.
	leaseTTL := cfg.LeaseTTL
	if leaseTTL <= 0 {
		leaseTTL = s.model.Timeout(60 * time.Second)
		if leaseTTL < 2*time.Second {
			leaseTTL = 2 * time.Second
		}
	}
	s.notifier = dirsvc.NewNotifier(cfg.EventLogSize, s.seq, leaseTTL)
	s.applier.AttachEvents(s.notifier)

	peerSrv, err := rpc.NewServer(stack, PeerPort(cfg.Service, cfg.ID))
	if err != nil {
		return nil, err
	}
	s.peerSrv = peerSrv
	s.stops = append(s.stops, peerSrv.ServeFunc(2, s.handlePeerRPC))

	rpcSrv, err := rpc.NewServer(stack, dirsvc.ServicePort(cfg.Service))
	if err != nil {
		peerSrv.Close()
		return nil, err
	}
	s.rpcSrv = rpcSrv
	// Load hint: stored-but-unapplied peer intentions are this server's
	// lag measure (the lazy applies a read may have to wait out).
	rpcSrv.SetLagFunc(func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.pending)
	})
	s.stops = append(s.stops, rpcSrv.ServeFunc(cfg.Workers, s.handleClientRPC))

	txRPC, err := rpc.NewClient(stack)
	if err != nil {
		return nil, err
	}
	s.txRPC = txRPC
	s.wg.Add(1)
	go s.cleanupLoop()
	s.wg.Add(1)
	go s.txResolveLoop()
	return s, nil
}

// txResolveLoop resolves prepared transactions orphaned by a dead
// coordinator, exactly like the group kind's loop: presumed abort at
// the transaction's resolver shard, a decision query elsewhere (see
// dirsvc.ResolveOrphanTxs). Both servers of the pair run it; the
// decide goes through handleUpdate, so the peer gets its copy via the
// ordinary intention protocol and duplicate decisions are idempotent.
func (s *Server) txResolveLoop() {
	defer s.wg.Done()
	tick := s.txTimeout / 4
	if tick < 25*time.Millisecond {
		tick = 25 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	strikes := make(map[dirsvc.TxID]int)
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		dirsvc.ResolveOrphanTxs(s.applier, s.cfg.Shard, s.cfg.Shards, s.txTimeout, strikes,
			func(id dirsvc.TxID, commit bool) {
				req := &dirsvc.Request{
					Op:   dirsvc.OpDecide,
					Blob: dirsvc.EncodeDecide(&dirsvc.Decide{ID: id, Commit: commit}),
				}
				_ = s.handleUpdate(req)
			},
			func(resolver int, id dirsvc.TxID) dirsvc.TxState {
				return dirsvc.QueryTxState(s.txRPC, s.cfg.BaseService, s.cfg.Shards, resolver, id)
			})
	}
}

// bootstrap loads local state, replays a stored intention, and pulls
// newer state from the peer when available.
func (s *Server) bootstrap() error {
	if err := s.applier.LoadAll(); err != nil {
		return err
	}
	s.seq = s.table.MaxSeq()

	// Adopt the persisted topology (admin block 0, written only on
	// topology changes — splits, seals, stub drops). A split at a source
	// shard touches no object-table entry, so without this block the
	// epoch would silently reset to zero on restart.
	if cb, err := dirsvc.ReadCommitBlock(s.cfg.Admin, 0); err == nil {
		if cb.Topo != nil {
			s.applier.RestoreTopology(cb.Topo)
		}
		if cb.Seq > s.seq {
			s.seq = cb.Seq
		}
	}

	// Replay an intention that was promised before a crash.
	if raw, err := s.cfg.Staging.ReadBlock(0); err == nil {
		if intent, seq, ok := decodeIntention(raw); ok && seq > s.seq {
			if res, err := s.applier.ApplyUpdate(intent, seq, true); err == nil {
				s.seq = seq
				if res.AdvanceSeq > s.seq {
					s.seq = res.AdvanceSeq
				}
			}
			_ = s.cfg.Staging.WriteBlockSeq(0, nil)
		}
	}

	// Sync from the peer if it is ahead (lazy copies we missed).
	peer := 3 - s.cfg.ID
	req := &dirsvc.Request{Op: dirsvc.OpSyncPull, Server: s.cfg.ID}
	if raw, err := s.peerRPC.Trans(PeerPort(s.cfg.Service, peer), req.Encode()); err == nil {
		if reply, err := dirsvc.DecodeReply(raw); err == nil && reply.Status == dirsvc.StatusOK && reply.Seq > s.seq {
			if err := s.installState(reply.Blob, reply.Seq); err != nil {
				return err
			}
		}
	}
	if err := s.applier.FormatRoot(true); err != nil {
		return err
	}
	return nil
}

// Close stops the server (fail-stop; disk contents survive).
func (s *Server) Close() {
	close(s.stop)
	s.applier.AttachEvents(nil)
	s.notifier.Close()
	s.rpcSrv.Close()
	s.peerSrv.Close()
	for _, stop := range s.stops {
		stop()
	}
	if s.txRPC != nil {
		s.txRPC.Close()
	}
	s.wg.Wait()
}

// Seq returns the server's update sequence number (tests).
func (s *Server) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

func (s *Server) handleClientRPC(req *rpc.Request) []byte {
	dreq, err := dirsvc.DecodeRequest(req.Payload)
	if err != nil {
		return (&dirsvc.Reply{Status: dirsvc.StatusBadRequest}).Encode()
	}
	switch dreq.Op {
	case dirsvc.OpWatch:
		addr := req.PushAddr()
		push := func(payload []byte) error { return s.rpcSrv.Push(addr, payload) }
		batch := s.notifier.Subscribe(addr.Tx, dreq.Seq, dreq.MinSeq, push)
		return (&dirsvc.Reply{Status: dirsvc.StatusOK, Blob: dirsvc.EncodeEventBatch(batch)}).Encode()
	case dirsvc.OpLeaseRenew:
		batch, ok := s.notifier.Renew(dreq.Seq, dreq.MinSeq)
		if !ok {
			return (&dirsvc.Reply{Status: dirsvc.StatusNotFound}).Encode()
		}
		return (&dirsvc.Reply{Status: dirsvc.StatusOK, Blob: dirsvc.EncodeEventBatch(batch)}).Encode()
	}
	if !dreq.Op.IsUpdate() {
		return s.handleRead(dreq).Encode()
	}
	s.stack.Node().CPU().Charge(s.model.UpdateCPU)
	return s.handleUpdate(dreq).Encode()
}

// handleRead serves reads locally. If the peer proposed an intention for
// the directory that we have not applied yet, apply it first so the read
// observes every acknowledged update. Creates and batches pend under
// object 0, so that slot is always drained. A read carrying a session
// floor (Request.MinSeq, stamped by read-balancing clients) drains every
// stored intention and waits for the peer's lazy applies until the local
// sequence number reaches the floor, so a read landing on the server
// that did not originate the write still observes it.
func (s *Server) handleRead(req *dirsvc.Request) *dirsvc.Reply {
	s.applyPendingFor(0)
	if obj := req.Dir.Object; obj != 0 {
		s.applyPendingFor(obj)
	}
	if req.MinSeq > 0 && !s.waitMinSeq(req.MinSeq) {
		// Floor unreachable: refuse rather than answer from state the
		// client has already seen past. Same status as the group kind's
		// refusal, so the balanced client's failover retry kicks in and
		// may land on the up-to-date server.
		return &dirsvc.Reply{Status: dirsvc.StatusNoMajority}
	}
	// Readers of an object locked by a prepared two-phase transaction
	// wait for the decision (bounded; a refused client retries).
	if obj := req.Dir.Object; obj != 0 && !s.applier.WaitUnlocked(obj, s.minSeqWait) {
		return &dirsvc.Reply{Status: dirsvc.StatusConflict}
	}
	// An object this shard does not own (migrated away, or not yet
	// migrated in) is bounced with the owner's address. Checked after the
	// lock wait: a reader racing a migration flip parks until the decide,
	// then sees either the entry or the forwarding stub — never a window
	// where both shards refuse. OpMigRead is the migration copy itself
	// and must read the source copy that routing says is leaving.
	if obj := req.Dir.Object; obj != 0 && req.Op != dirsvc.OpMigRead {
		if owner, fwd := s.applier.RouteForward(obj); fwd {
			topo, _ := s.applier.Topology()
			return &dirsvc.Reply{Status: dirsvc.StatusNotMine, Blob: dirsvc.EncodeNotMine(topo.Epoch, owner)}
		}
	}
	// Sample the sequence number before the read so the stamp is a
	// conservative freshness bound for client read caches.
	s.mu.Lock()
	svcSeq := s.seq
	s.mu.Unlock()
	s.stack.Node().CPU().Charge(s.model.LookupCPU)
	reply := s.applier.Read(req)
	reply.Seq = svcSeq
	return reply
}

// handleUpdate is the paper's §1 write protocol.
func (s *Server) handleUpdate(req *dirsvc.Request) *dirsvc.Reply {
	// Queue behind prepared-transaction locks before taking updateMu:
	// the decide that releases them is itself a handleUpdate and must be
	// able to run while waiters are parked. OpDecide has no wait targets.
	if err := s.applier.AwaitLockFree(dirsvc.LockWaitTargets(req, s.cfg.Shard), s.minSeqWait); err != nil {
		return dirsvc.ErrorReply(err)
	}

	// Bounce updates for objects homed elsewhere (batches, prepares,
	// decides and splits carry object 0 and pass through).
	if obj := req.Dir.Object; obj != 0 {
		if owner, fwd := s.applier.RouteForward(obj); fwd {
			topo, _ := s.applier.Topology()
			return &dirsvc.Reply{Status: dirsvc.StatusNotMine, Blob: dirsvc.EncodeNotMine(topo.Epoch, owner)}
		}
	}

	s.updateMu.Lock()
	defer s.updateMu.Unlock()

	switch {
	case req.Op == dirsvc.OpCreateDir && len(req.CheckSeed) == 0:
		req.CheckSeed = fmt.Appendf(nil, "rpcdir:%d:%d", s.cfg.ID, time.Now().UnixNano())
	case req.Op == dirsvc.OpBatch:
		steps, err := dirsvc.DecodeBatchSteps(req.Blob)
		if err != nil {
			return dirsvc.ErrorReply(err)
		}
		if dirsvc.EnsureBatchSeeds(steps, func(i int) []byte {
			return fmt.Appendf(nil, "rpcdir:%d:%d:%d", s.cfg.ID, time.Now().UnixNano(), i)
		}) {
			req.Blob = dirsvc.EncodeBatchSteps(steps)
		}
	case req.Op == dirsvc.OpPrepare:
		if err := dirsvc.EnsurePrepareSeeds(req, func(i int) []byte {
			return fmt.Appendf(nil, "rpcdir:%d:%d:%d", s.cfg.ID, time.Now().UnixNano(), i)
		}); err != nil {
			return dirsvc.ErrorReply(err)
		}
	}
	req.Server = s.cfg.ID

	s.mu.Lock()
	seq := s.seq + 1
	s.mu.Unlock()

	// Phase 1: inform the other server of the intended update; it
	// stores the intentions on disk and answers OK (§1).
	peer := 3 - s.cfg.ID
	intention := &dirsvc.Request{
		Op:     dirsvc.OpIntention,
		Seq:    seq,
		Server: s.cfg.ID,
		Blob:   req.Encode(),
	}
	agreedSeq := seq
	peerUp := true
	raw, err := s.peerRPC.Trans(PeerPort(s.cfg.Service, peer), intention.Encode())
	if err != nil {
		// Peer down: continue alone. The RPC service cannot tell a
		// partition from a crash — the weakness §2 calls out.
		peerUp = false
	} else {
		reply, derr := dirsvc.DecodeReply(raw)
		if derr != nil {
			return &dirsvc.Reply{Status: dirsvc.StatusError}
		}
		if reply.Status == dirsvc.StatusConflict {
			return &dirsvc.Reply{Status: dirsvc.StatusConflict}
		}
		if reply.Status != dirsvc.StatusOK {
			return &dirsvc.Reply{Status: reply.Status}
		}
		if reply.Seq > agreedSeq {
			agreedSeq = reply.Seq
		}
	}

	// Phase 2: perform the update locally (Bullet file + object table).
	res, aerr := s.applier.ApplyUpdate(req, agreedSeq, true)
	if aerr != nil {
		// Tell the peer to forget the intention.
		if peerUp {
			drop := &dirsvc.Request{Op: dirsvc.OpApplyLazy, Seq: agreedSeq, Server: s.cfg.ID, Column: 1}
			_, _ = s.peerRPC.Trans(PeerPort(s.cfg.Service, peer), drop.Encode())
		}
		return dirsvc.ErrorReply(aerr)
	}
	// A shard restore installs a snapshot whose counters may run past the
	// agreed sequence number; jump so fresh stamps stay monotonic. (The
	// peer's lazy-apply message still carries agreedSeq — that is the key
	// its pending table is indexed by.)
	effSeq := agreedSeq
	if res.AdvanceSeq > effSeq {
		effSeq = res.AdvanceSeq
	}
	s.mu.Lock()
	if effSeq > s.seq {
		s.seq = effSeq
	}
	s.mu.Unlock()
	if res.TopoChanged {
		s.persistTopo(effSeq)
	}
	for _, old := range res.OldBullet {
		s.scheduleCleanup(old)
	}

	// Phase 3 (background): the peer creates its copy lazily.
	if peerUp {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			lazy := &dirsvc.Request{Op: dirsvc.OpApplyLazy, Seq: agreedSeq, Server: s.cfg.ID}
			_, _ = s.peerRPC.Trans(PeerPort(s.cfg.Service, peer), lazy.Encode())
		}()
	}
	return res.Reply
}

// handlePeerRPC serves the server-to-server protocol.
func (s *Server) handlePeerRPC(req *rpc.Request) []byte {
	dreq, err := dirsvc.DecodeRequest(req.Payload)
	if err != nil {
		return (&dirsvc.Reply{Status: dirsvc.StatusBadRequest}).Encode()
	}
	switch dreq.Op {
	case dirsvc.OpIntention:
		return s.handleIntention(dreq).Encode()
	case dirsvc.OpApplyLazy:
		return s.handleApplyLazy(dreq).Encode()
	case dirsvc.OpSyncPull:
		return s.handleSyncPull().Encode()
	default:
		return (&dirsvc.Reply{Status: dirsvc.StatusBadRequest}).Encode()
	}
}

// handleIntention stores the proposed update on disk after checking for
// conflicts (§1: "If the other server is not busy performing a
// conflicting operation, it stores the intentions on disk").
func (s *Server) handleIntention(dreq *dirsvc.Request) *dirsvc.Reply {
	inner, err := dirsvc.DecodeRequest(dreq.Blob)
	if err != nil {
		return &dirsvc.Reply{Status: dirsvc.StatusBadRequest}
	}
	obj := inner.Dir.Object

	s.mu.Lock()
	if _, busy := s.pending[obj]; busy {
		s.mu.Unlock()
		return &dirsvc.Reply{Status: dirsvc.StatusConflict}
	}
	agreed := dreq.Seq
	if s.seq >= agreed {
		agreed = s.seq + 1
	}
	s.pending[obj] = &pendingIntention{seq: agreed, req: inner}
	s.mu.Unlock()

	// Store the intentions on disk: one short-seek write to the fixed
	// staging block. A shard-restore snapshot does not fit in the 512-byte
	// block; it is kept in RAM only and applied immediately below — if this
	// server crashes before the apply, bootstrap's peer sync re-fetches the
	// restored state instead of the staging block replaying it.
	if staged := encodeIntention(inner, agreed); len(staged) <= vdisk.BlockSize {
		if err := s.cfg.Staging.WriteBlockSeq(0, staged); err != nil {
			s.mu.Lock()
			delete(s.pending, obj)
			s.mu.Unlock()
			return &dirsvc.Reply{Status: dirsvc.StatusError}
		}
	}
	// Create the second copy in the background immediately, overlapping
	// with the originator's own apply — otherwise the next intention's
	// disk write would queue behind this op's lazy copy and the client
	// would see both servers' disk times serialized, which is not what
	// the paper measured (192 ms/pair ≈ one overlapped disk path). The
	// apply is deterministic, so originator and peer reach the same
	// outcome.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.applyPendingFor(obj)
	}()
	return &dirsvc.Reply{Status: dirsvc.StatusOK, Seq: agreed}
}

// handleApplyLazy applies (or drops, Column=1) a stored intention — the
// lazy creation of the second copy.
func (s *Server) handleApplyLazy(dreq *dirsvc.Request) *dirsvc.Reply {
	s.mu.Lock()
	var obj uint32
	var intent *pendingIntention
	for o, p := range s.pending {
		if p.seq == dreq.Seq {
			obj, intent = o, p
			break
		}
	}
	if intent != nil {
		delete(s.pending, obj)
	}
	s.mu.Unlock()
	if intent == nil {
		return &dirsvc.Reply{Status: dirsvc.StatusOK} // already applied or dropped
	}
	if dreq.Column == 1 { // drop marker
		_ = s.cfg.Staging.WriteBlockSeq(0, nil)
		return &dirsvc.Reply{Status: dirsvc.StatusOK}
	}
	res, err := s.applier.ApplyUpdate(intent.req, intent.seq, true)
	effSeq := intent.seq
	if err == nil {
		if res.AdvanceSeq > effSeq {
			effSeq = res.AdvanceSeq
		}
		if res.TopoChanged {
			s.persistTopo(effSeq)
		}
		for _, old := range res.OldBullet {
			s.scheduleCleanup(old)
		}
	}
	s.mu.Lock()
	if effSeq > s.seq {
		s.seq = effSeq
	}
	s.mu.Unlock()
	_ = s.cfg.Staging.WriteBlockSeq(0, nil)
	return &dirsvc.Reply{Status: dirsvc.StatusOK}
}

// waitMinSeq drives the local sequence number up to the client's session
// floor: it applies every stored intention, then briefly polls for the
// peer's in-flight lazy applies. It reports whether the floor was
// reached.
func (s *Server) waitMinSeq(min uint64) bool {
	deadline := time.Now().Add(s.minSeqWait)
	for {
		s.mu.Lock()
		cur := s.seq
		var obj uint32
		found := false
		for o := range s.pending {
			obj, found = o, true
			break
		}
		s.mu.Unlock()
		if cur >= min {
			return true
		}
		if found {
			s.applyPendingFor(obj)
			continue
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// applyPendingFor applies a pending intention touching obj before a read.
func (s *Server) applyPendingFor(obj uint32) {
	s.mu.Lock()
	intent := s.pending[obj]
	if intent != nil {
		delete(s.pending, obj)
	}
	s.mu.Unlock()
	if intent == nil {
		return
	}
	effSeq := intent.seq
	if res, err := s.applier.ApplyUpdate(intent.req, intent.seq, true); err == nil {
		if res.AdvanceSeq > effSeq {
			effSeq = res.AdvanceSeq
		}
		if res.TopoChanged {
			s.persistTopo(effSeq)
		}
		for _, old := range res.OldBullet {
			s.scheduleCleanup(old)
		}
	}
	s.mu.Lock()
	if effSeq > s.seq {
		s.seq = effSeq
	}
	s.mu.Unlock()
	_ = s.cfg.Staging.WriteBlockSeq(0, nil)
}

// handleSyncPull ships the full state to a restarting peer.
func (s *Server) handleSyncPull() *dirsvc.Reply {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	s.mu.Lock()
	seq := s.seq
	s.mu.Unlock()
	w := newBundleWriter()
	for obj, e := range s.table.All() {
		d, ok := s.applier.Directory(obj)
		if !ok {
			continue
		}
		w.add(obj, e.Seq, e.Secret, d.Encode())
	}
	return &dirsvc.Reply{Status: dirsvc.StatusOK, Seq: seq, Blob: s.wrapSync(w.bytes())}
}

// installState replaces local state with a peer bundle.
func (s *Server) installState(blob []byte, seq uint64) error {
	topo, stubs, rest, err := parseSyncWrap(blob)
	if err != nil {
		return err
	}
	dirs, err := parseBundle(rest)
	if err != nil {
		return err
	}
	s.applier.InvalidateCache()
	entries := make(map[uint32]dirsvc.ObjectEntry, len(dirs))
	for _, d := range dirs {
		bcap, err := s.bc.Create(d.image)
		if err != nil {
			return err
		}
		entries[d.obj] = dirsvc.ObjectEntry{Cap: bcap, Seq: d.seq, Secret: d.secret}
	}
	if err := s.table.ReplaceAll(entries, stubs); err != nil {
		return err
	}
	if topo != nil {
		s.applier.RestoreTopology(topo)
	}
	if err := s.applier.LoadAll(); err != nil {
		return err
	}
	s.mu.Lock()
	s.seq = seq
	s.mu.Unlock()
	if topo != nil {
		s.persistTopo(seq)
	}
	return nil
}

// persistTopo records the current topology in admin block 0 — rpcdir's
// equivalent of the group kind's commit block, written only when a
// split, seal, or stub drop changes the topology. The stored sequence
// number keeps the server from regressing past the topology change on
// restart (a split at a source shard touches no object-table entry).
func (s *Server) persistTopo(seq uint64) {
	topo, ok := s.applier.Topology()
	if !ok {
		return
	}
	t := topo
	_ = (&dirsvc.CommitBlock{Seq: seq, Topo: &t}).Write(s.cfg.Admin)
}

// wrapSync prefixes a directory bundle with the topology state and the
// forwarding stubs (which have no directory image, so the plain bundle
// cannot carry them).
func (s *Server) wrapSync(dirBundle []byte) []byte {
	var buf []byte
	if topo, ok := s.applier.Topology(); ok {
		buf = append(buf, 1)
		buf = append(buf, dirsvc.EncodeTopoState(&topo)...)
	} else {
		buf = append(buf, 0)
	}
	stubs := s.table.Stubs()
	objs := make([]uint32, 0, len(stubs))
	for obj := range stubs {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	n := len(objs)
	buf = append(buf, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	for _, obj := range objs {
		st := stubs[obj]
		buf = append(buf, byte(obj>>24), byte(obj>>16), byte(obj>>8), byte(obj))
		t := uint32(st.Target)
		buf = append(buf, byte(t>>24), byte(t>>16), byte(t>>8), byte(t))
		for i := 7; i >= 0; i-- {
			buf = append(buf, byte(st.Seq>>(8*i)))
		}
	}
	return append(buf, dirBundle...)
}

func parseSyncWrap(raw []byte) (*dirsvc.TopoState, map[uint32]dirsvc.StubEntry, []byte, error) {
	if len(raw) < 1 {
		return nil, nil, nil, errors.New("rpcdir: short sync bundle")
	}
	var topo *dirsvc.TopoState
	off := 1
	if raw[0] == 1 {
		if len(raw) < 1+dirsvc.TopoStateLen {
			return nil, nil, nil, errors.New("rpcdir: short sync topology")
		}
		t, err := dirsvc.DecodeTopoState(raw[1 : 1+dirsvc.TopoStateLen])
		if err != nil {
			return nil, nil, nil, err
		}
		topo = t
		off += dirsvc.TopoStateLen
	} else if raw[0] != 0 {
		return nil, nil, nil, errors.New("rpcdir: bad sync bundle marker")
	}
	if off+4 > len(raw) {
		return nil, nil, nil, errors.New("rpcdir: short sync stub count")
	}
	n := int(raw[off])<<24 | int(raw[off+1])<<16 | int(raw[off+2])<<8 | int(raw[off+3])
	off += 4
	if n < 0 || off+n*16 > len(raw) {
		return nil, nil, nil, errors.New("rpcdir: bad sync stub count")
	}
	stubs := make(map[uint32]dirsvc.StubEntry, n)
	for i := 0; i < n; i++ {
		obj := uint32(raw[off])<<24 | uint32(raw[off+1])<<16 | uint32(raw[off+2])<<8 | uint32(raw[off+3])
		target := uint32(raw[off+4])<<24 | uint32(raw[off+5])<<16 | uint32(raw[off+6])<<8 | uint32(raw[off+7])
		var seq uint64
		for j := 8; j < 16; j++ {
			seq = seq<<8 | uint64(raw[off+j])
		}
		stubs[obj] = dirsvc.StubEntry{Target: int(target), Seq: seq}
		off += 16
	}
	return topo, stubs, raw[off:], nil
}

func (s *Server) scheduleCleanup(cap capability.Capability) {
	select {
	case s.cleanupCh <- cap:
	default:
	}
}

func (s *Server) cleanupLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case cap := <-s.cleanupCh:
			_ = s.bc.Delete(cap)
		}
	}
}

// Intention staging-block codec: seq u64 | len u32 | request bytes.
func encodeIntention(req *dirsvc.Request, seq uint64) []byte {
	raw := req.Encode()
	buf := make([]byte, 0, 12+len(raw))
	for i := 7; i >= 0; i-- {
		buf = append(buf, byte(seq>>(8*i)))
	}
	for i := 3; i >= 0; i-- {
		buf = append(buf, byte(len(raw)>>(8*i)))
	}
	return append(buf, raw...)
}

func decodeIntention(raw []byte) (*dirsvc.Request, uint64, bool) {
	if len(raw) < 12 {
		return nil, 0, false
	}
	var seq uint64
	for i := 0; i < 8; i++ {
		seq = seq<<8 | uint64(raw[i])
	}
	var n int
	for i := 8; i < 12; i++ {
		n = n<<8 | int(raw[i])
	}
	if seq == 0 || n <= 0 || 12+n > len(raw) {
		return nil, 0, false
	}
	req, err := dirsvc.DecodeRequest(raw[12 : 12+n])
	if err != nil {
		return nil, 0, false
	}
	return req, seq, true
}

// Minimal state-bundle codec (obj, seq, secret, image)*.
type bundleWriter struct{ buf []byte }

func newBundleWriter() *bundleWriter { return &bundleWriter{} }

func (w *bundleWriter) add(obj uint32, seq uint64, secret capability.Secret, image []byte) {
	w.buf = append(w.buf, byte(obj>>24), byte(obj>>16), byte(obj>>8), byte(obj))
	for i := 7; i >= 0; i-- {
		w.buf = append(w.buf, byte(seq>>(8*i)))
	}
	w.buf = append(w.buf, secret[:]...)
	n := len(image)
	w.buf = append(w.buf, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	w.buf = append(w.buf, image...)
}

func (w *bundleWriter) bytes() []byte { return w.buf }

type bundleDir struct {
	obj    uint32
	seq    uint64
	secret capability.Secret
	image  []byte
}

func parseBundle(raw []byte) ([]bundleDir, error) {
	var out []bundleDir
	off := 0
	for off < len(raw) {
		if off+22 > len(raw) {
			return nil, errors.New("rpcdir: short bundle")
		}
		var d bundleDir
		d.obj = uint32(raw[off])<<24 | uint32(raw[off+1])<<16 | uint32(raw[off+2])<<8 | uint32(raw[off+3])
		off += 4
		for i := 0; i < 8; i++ {
			d.seq = d.seq<<8 | uint64(raw[off+i])
		}
		off += 8
		copy(d.secret[:], raw[off:off+6])
		off += 6
		n := int(raw[off])<<24 | int(raw[off+1])<<16 | int(raw[off+2])<<8 | int(raw[off+3])
		off += 4
		if n < 0 || off+n > len(raw) {
			return nil, errors.New("rpcdir: bad bundle image")
		}
		d.image = append([]byte(nil), raw[off:off+n]...)
		off += n
		out = append(out, d)
	}
	return out, nil
}
