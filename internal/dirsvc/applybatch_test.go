package dirsvc

import (
	"errors"
	"testing"

	"dirsvc/internal/vdisk"
)

// TestBatchApplyAtomic exercises the staged-overlay batch applier
// directly: a failing step must leave the replica state — cache, table,
// and RAM-dirty tracking — completely untouched.
func TestBatchApplyAtomic(t *testing.T) {
	f := newApplier(t)
	root, err := f.applier.RootCap()
	if err != nil {
		t.Fatal(err)
	}

	// Failing batch: step 1 deletes a missing row.
	req := NewBatchRequest([]*Request{
		{Op: OpAppendRow, Dir: root, Name: "ghost", Cap: root, Masks: ownerMasks()},
		{Op: OpDeleteRow, Dir: root, Name: "missing"},
	})
	_, err = f.applier.ApplyUpdate(req, 1, false)
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 || StatusOf(err) != StatusNotFound {
		t.Fatalf("err = %v, want BatchError{Index: 1} mapping to StatusNotFound", err)
	}
	reply := f.applier.Read(&Request{Op: OpLookupSet, Dir: root, Set: []SetItem{{Name: "ghost"}}})
	if !reply.Caps[0].IsZero() {
		t.Fatal("aborted batch leaked step 0")
	}
	if dirty := f.table.RAMDirtyObjects(); len(dirty) != 0 {
		t.Fatalf("aborted batch left RAM-dirty objects %v", dirty)
	}
}

// TestBatchFlushDurability pins the NVRAM-flush fix: a batch applied in
// RAM (non-durable) must reach the disk through the object table's
// RAM-dirty work list — including the created directory, whose object
// number exists nowhere in the logged request — and a RAM deletion must
// clear its on-disk slot rather than resurrect on reload.
func TestBatchFlushDurability(t *testing.T) {
	f := newApplier(t)
	root, err := f.applier.RootCap()
	if err != nil {
		t.Fatal(err)
	}

	req := NewBatchRequest([]*Request{
		{Op: OpCreateDir, CheckSeed: []byte("batch-seed")},
		{Op: OpAppendRow, Dir: root, Name: "kept", Cap: root, Masks: ownerMasks()},
	})
	res, err := f.applier.ApplyUpdate(req, 2, false /* RAM only */)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	results, err := DecodeBatchResults(res.Reply.Blob)
	if err != nil {
		t.Fatal(err)
	}
	created := results[0].Cap

	// The background flush works off the table's RAM-dirty set.
	dirty := f.table.RAMDirtyObjects()
	if len(dirty) != 2 {
		t.Fatalf("RAM-dirty = %v, want the created dir and the root", dirty)
	}
	for _, obj := range dirty {
		if _, err := f.applier.FlushObject(obj); err != nil {
			t.Fatalf("flush %d: %v", obj, err)
		}
	}
	if left := f.table.RAMDirtyObjects(); len(left) != 0 {
		t.Fatalf("objects still dirty after flush: %v", left)
	}

	// Reload from disk, as a restart would.
	reload := func() *Applier {
		admin, err := vdisk.NewPartition(f.disk, 0, 17)
		if err != nil {
			t.Fatal(err)
		}
		table, err := OpenObjectTable(admin)
		if err != nil {
			t.Fatal(err)
		}
		a := NewApplier(f.applier.port, table, f.applier.bullet)
		if err := a.LoadAll(); err != nil {
			t.Fatal(err)
		}
		return a
	}
	a2 := reload()
	reply := a2.Read(&Request{Op: OpLookupSet, Dir: root, Set: []SetItem{{Name: "kept"}}})
	if reply.Status != StatusOK || reply.Caps[0].IsZero() {
		t.Fatalf("root row lost across flush+reload: %+v", reply)
	}
	if reply := a2.Read(&Request{Op: OpListDir, Dir: created}); reply.Status != StatusOK {
		t.Fatalf("created directory lost across flush+reload: %+v", reply)
	}

	// RAM deletion: the flush must persist the cleared slot.
	if _, err := f.applier.ApplyUpdate(&Request{Op: OpDeleteDir, Dir: created}, 3, false); err != nil {
		t.Fatalf("delete: %v", err)
	}
	for _, obj := range f.table.RAMDirtyObjects() {
		if _, err := f.applier.FlushObject(obj); err != nil {
			t.Fatalf("flush deletion %d: %v", obj, err)
		}
	}
	if reply := reload().Read(&Request{Op: OpListDir, Dir: created}); reply.Status != StatusNotFound {
		t.Fatalf("deleted directory resurrected after flush+reload: %+v", reply)
	}
}
