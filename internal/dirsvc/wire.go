// Package dirsvc holds the machinery shared by the three directory
// service implementations the paper compares: the operation wire format
// (Fig. 2), the commit block and object table layouts (Fig. 4), the
// deterministic update applier, and the NVRAM operation log of §4.1.
package dirsvc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dirsvc/internal/capability"
	"dirsvc/internal/dirdata"
)

// OpCode identifies one directory service operation (paper Fig. 2, plus
// bootstrap and internal recovery operations).
type OpCode uint8

// Directory service operations.
const (
	OpCreateDir  OpCode = iota + 1 // Create dir
	OpDeleteDir                    // Delete dir
	OpListDir                      // List dir
	OpAppendRow                    // Append row
	OpChmodRow                     // Chmod row
	OpDeleteRow                    // Delete row
	OpLookupSet                    // Lookup set
	OpReplaceSet                   // Replace set
	OpGetRoot                      // bootstrap: fetch the root directory capability

	// Internal server-to-server operations.
	OpIntention // rpcdir: propose an update to the peer
	OpSyncPull  // recovery: fetch object table + directories
	OpExchange  // recovery: exchange mourned set and seqno (Fig. 6)
	OpApplyLazy // rpcdir: apply a committed intention in the background
	OpReadDir   // recovery helper: fetch one directory image
	OpStatus    // monitoring: server status snapshot

	// OpBatch carries a sequence of update steps applied atomically and
	// replicated as a single unit (one group broadcast per batch).
	OpBatch

	// OpPrepare is phase one of a cross-shard atomic batch: it stages one
	// shard's steps in a batch overlay, locks the touched objects, and
	// votes — nothing becomes visible until the decision.
	OpPrepare
	// OpDecide is phase two: commit writes the staged overlay through
	// under the decide's own sequence number; abort discards it.
	OpDecide
	// OpTxQuery is the decision query (a read): a participant orphaned by
	// a dead coordinator asks the resolver shard how a transaction ended.
	OpTxQuery

	// OpWatch registers (or resumes) an event-stream lease. The request
	// reuses Seq as the subscriber's previous log identity and MinSeq as
	// its next log index (both zero for a fresh "from now" subscription);
	// the reply's Blob is an EventBatch confirmation, and subsequent
	// events are pushed over the same transaction's reply channel.
	OpWatch
	// OpLeaseRenew refreshes a watch lease before it expires: Seq is the
	// subscription id, MinSeq the subscriber's next log index. The reply
	// Blob is an EventBatch covering any missed events, or StatusNotFound
	// when the lease has already expired.
	OpLeaseRenew

	// Elastic-topology operations (shard splits and live migration).

	// OpShardMap is a read returning the shard's topology view as an
	// EncodeShardMapInfo blob: epoch, migration phase, object counts, and
	// the objects still held here that belong elsewhere.
	OpShardMap
	// OpSplit bumps the shard-map epoch by one (Seq carries the target
	// epoch). A source shard computes and returns the moving class's
	// allocation floor in ObjSeq; a target shard is told the floor in
	// Column. Idempotent: re-applying at or below the current epoch is OK.
	OpSplit
	// OpMigRead is the migration copy read: it returns the object's
	// per-entry sequence number (ObjSeq), and secret+image packed as a
	// MigImageBlob, bypassing capability checks (internal op).
	OpMigRead
	// OpMigOut is the source-side step of a migration flip, valid only
	// inside an OpPrepare: it validates the entry is still at Seq (the
	// copied version, else the vote is no) and, on commit, replaces the
	// entry with a forwarding stub to the shard in Column.
	OpMigOut
	// OpMigIn is the target-side step of a migration flip, valid only
	// inside an OpPrepare: on commit it installs the object from the
	// MigImageBlob in Blob, minting a fresh Bullet capability per replica.
	OpMigIn
	// OpSealMigration marks the target side of a split complete: misses
	// in the inbound class stop chasing to the source.
	OpSealMigration
	// OpDropStubs drops every forwarding stub on the source after the
	// target is sealed, ending the split. Refused while moving-class
	// objects remain.
	OpDropStubs

	// OpBackup is a read returning the shard's full state as a portable
	// snapshot blob (snapshot.go) in the reply Blob — the same encoding
	// the disk engine checkpoints.
	OpBackup
	// OpRestoreShard replaces the shard's state with the snapshot in
	// Blob. It rides the ordinary replicated update path, so every
	// replica installs the identical image; the applied sequence number
	// jumps to at least the snapshot's highest (ApplyResult.AdvanceSeq).
	OpRestoreShard
)

// IsUpdate reports whether the op modifies directories (requires the
// write path / replication).
func (op OpCode) IsUpdate() bool {
	switch op {
	case OpCreateDir, OpDeleteDir, OpAppendRow, OpChmodRow, OpDeleteRow, OpReplaceSet, OpBatch,
		OpPrepare, OpDecide, OpSplit, OpMigOut, OpMigIn, OpSealMigration, OpDropStubs,
		OpRestoreShard:
		return true
	default:
		return false
	}
}

// String implements fmt.Stringer.
func (op OpCode) String() string {
	switch op {
	case OpCreateDir:
		return "create-dir"
	case OpDeleteDir:
		return "delete-dir"
	case OpListDir:
		return "list-dir"
	case OpAppendRow:
		return "append-row"
	case OpChmodRow:
		return "chmod-row"
	case OpDeleteRow:
		return "delete-row"
	case OpLookupSet:
		return "lookup-set"
	case OpReplaceSet:
		return "replace-set"
	case OpGetRoot:
		return "get-root"
	case OpIntention:
		return "intention"
	case OpSyncPull:
		return "sync-pull"
	case OpExchange:
		return "exchange"
	case OpApplyLazy:
		return "apply-lazy"
	case OpReadDir:
		return "read-dir"
	case OpStatus:
		return "status"
	case OpBatch:
		return "batch"
	case OpPrepare:
		return "prepare"
	case OpDecide:
		return "decide"
	case OpTxQuery:
		return "tx-query"
	case OpWatch:
		return "watch"
	case OpLeaseRenew:
		return "lease-renew"
	case OpShardMap:
		return "shard-map"
	case OpSplit:
		return "split"
	case OpMigRead:
		return "mig-read"
	case OpMigOut:
		return "mig-out"
	case OpMigIn:
		return "mig-in"
	case OpSealMigration:
		return "seal-migration"
	case OpDropStubs:
		return "drop-stubs"
	case OpBackup:
		return "backup"
	case OpRestoreShard:
		return "restore-shard"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Status is the outcome of a directory operation.
type Status uint8

// Operation outcomes.
const (
	StatusOK Status = iota + 1
	StatusNotFound
	StatusExists
	StatusBadCapability
	StatusNoRights
	StatusNoMajority // request refused: the server group lacks a majority (§3.1)
	StatusConflict
	StatusBadRequest
	StatusError
	// StatusNotMine: the shard does not own the object under its current
	// shard-map epoch; the reply Blob (EncodeNotMine) carries the
	// server's epoch and the owning shard for the client's one-hop chase.
	StatusNotMine
)

// Errors corresponding to non-OK statuses.
var (
	ErrNotFound   = errors.New("dirsvc: not found")
	ErrExists     = errors.New("dirsvc: name already exists")
	ErrNoMajority = errors.New("dirsvc: service has no majority; request refused")
	ErrConflict   = errors.New("dirsvc: conflicting operation in progress")
	ErrBadRequest = errors.New("dirsvc: malformed request")
	ErrServer     = errors.New("dirsvc: server error")
)

// Err converts a status to an error (nil for StatusOK).
func (s Status) Err() error {
	switch s {
	case StatusOK:
		return nil
	case StatusNotFound:
		return ErrNotFound
	case StatusExists:
		return ErrExists
	case StatusBadCapability:
		return capability.ErrBadCapability
	case StatusNoRights:
		return capability.ErrNoRights
	case StatusNoMajority:
		return ErrNoMajority
	case StatusConflict:
		return ErrConflict
	case StatusBadRequest:
		return ErrBadRequest
	case StatusNotMine:
		return ErrNotMine
	default:
		return ErrServer
	}
}

// StatusOf maps an error back to a wire status.
func StatusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, ErrNotFound), errors.Is(err, dirdata.ErrNotFound):
		return StatusNotFound
	case errors.Is(err, ErrExists), errors.Is(err, dirdata.ErrExists):
		return StatusExists
	case errors.Is(err, capability.ErrBadCapability):
		return StatusBadCapability
	case errors.Is(err, capability.ErrNoRights):
		return StatusNoRights
	case errors.Is(err, ErrNoMajority):
		return StatusNoMajority
	case errors.Is(err, ErrConflict):
		return StatusConflict
	case errors.Is(err, ErrNotMine):
		return StatusNotMine
	case errors.Is(err, ErrBadRequest), errors.Is(err, dirdata.ErrBadName),
		errors.Is(err, dirdata.ErrColumns), errors.Is(err, dirdata.ErrCorrupt):
		return StatusBadRequest
	default:
		return StatusError
	}
}

// SetItem is one element of a lookup/replace set.
type SetItem struct {
	Name string
	Cap  capability.Capability
}

// Request is a directory service request.
type Request struct {
	Op      OpCode
	Dir     capability.Capability // target directory
	Name    string
	Cap     capability.Capability // append/replace payload
	Masks   []capability.Rights
	Columns []string // create-dir column names
	Column  int      // list-dir column selector
	Set     []SetItem
	// CheckSeed carries the initiator-generated check field material for
	// create-dir, so all replicas mint the identical capability (§3.1).
	CheckSeed []byte
	// Seq carries the update sequence number on internal operations
	// (intentions, recovery).
	Seq uint64
	// Server identifies the sender on internal operations.
	Server int
	// Blob carries opaque payload on internal operations.
	Blob []byte
	// MinSeq, on read operations, is the client session's freshness
	// floor: the server must not answer from replica state older than
	// this applied sequence number. Clients that balance reads across
	// replicas stamp it with the highest Seq any reply has shown them,
	// so read-your-writes and monotonic reads survive a read landing on
	// a replica that lags the one that acknowledged the write. Zero (the
	// wire default, and what pinned clients send) imposes no floor.
	MinSeq uint64
}

// Reply is a directory service reply.
type Reply struct {
	Status Status
	Cap    capability.Capability
	Rows   []dirdata.Row
	Caps   []capability.Capability
	// Seq is the shard's service-wide commit sequence number: on a
	// successful update, the number the change committed under; on a
	// read, the server's applied sequence number sampled before the read
	// executed (so the returned data is at least that fresh). Clients use
	// it as the invalidation signal for their per-shard read caches.
	Seq uint64
	// ObjSeq, set on read replies, is the sequence number of the last
	// update that touched the directory being read (the per-object Seq of
	// its ObjectEntry) — a finer-grained freshness tag than the
	// shard-wide Seq.
	ObjSeq uint64
	Blob   []byte
}

// Encode serializes the request.
func (r *Request) Encode() []byte {
	w := newWriter()
	w.u8(uint8(r.Op))
	w.cap(r.Dir)
	w.str(r.Name)
	w.cap(r.Cap)
	w.u16(uint16(len(r.Masks)))
	for _, m := range r.Masks {
		w.u8(uint8(m))
	}
	w.u16(uint16(len(r.Columns)))
	for _, c := range r.Columns {
		w.str(c)
	}
	w.u32(uint32(r.Column))
	w.u16(uint16(len(r.Set)))
	for _, it := range r.Set {
		w.str(it.Name)
		w.cap(it.Cap)
	}
	w.bytes(r.CheckSeed)
	w.u64(r.Seq)
	w.u32(uint32(r.Server))
	w.bytes(r.Blob)
	w.u64(r.MinSeq)
	return w.buf
}

// DecodeRequest parses a request.
func DecodeRequest(buf []byte) (*Request, error) {
	rd := &byteReader{buf: buf}
	r := &Request{}
	r.Op = OpCode(rd.u8())
	r.Dir = rd.cap()
	r.Name = rd.str()
	r.Cap = rd.cap()
	nm := int(rd.u16())
	if nm > 64 {
		return nil, ErrBadRequest
	}
	for i := 0; i < nm; i++ {
		r.Masks = append(r.Masks, capability.Rights(rd.u8()))
	}
	nc := int(rd.u16())
	if nc > 64 {
		return nil, ErrBadRequest
	}
	for i := 0; i < nc; i++ {
		r.Columns = append(r.Columns, rd.str())
	}
	r.Column = int(rd.u32())
	ns := int(rd.u16())
	if ns > 4096 {
		return nil, ErrBadRequest
	}
	for i := 0; i < ns; i++ {
		var it SetItem
		it.Name = rd.str()
		it.Cap = rd.cap()
		r.Set = append(r.Set, it)
	}
	r.CheckSeed = rd.lenBytes()
	r.Seq = rd.u64()
	r.Server = int(rd.u32())
	r.Blob = rd.lenBytes()
	r.MinSeq = rd.u64()
	if rd.failed {
		return nil, ErrBadRequest
	}
	return r, nil
}

// Encode serializes the reply.
func (r *Reply) Encode() []byte {
	w := newWriter()
	w.u8(uint8(r.Status))
	w.cap(r.Cap)
	w.u32(uint32(len(r.Rows)))
	for _, row := range r.Rows {
		w.str(row.Name)
		w.cap(row.Cap)
		w.u16(uint16(len(row.ColMasks)))
		for _, m := range row.ColMasks {
			w.u8(uint8(m))
		}
	}
	w.u32(uint32(len(r.Caps)))
	for _, c := range r.Caps {
		w.cap(c)
	}
	w.u64(r.Seq)
	w.u64(r.ObjSeq)
	w.bytes(r.Blob)
	return w.buf
}

// DecodeReply parses a reply.
func DecodeReply(buf []byte) (*Reply, error) {
	rd := &byteReader{buf: buf}
	r := &Reply{}
	r.Status = Status(rd.u8())
	r.Cap = rd.cap()
	nrows := int(rd.u32())
	if nrows > 1<<20 {
		return nil, ErrBadRequest
	}
	for i := 0; i < nrows; i++ {
		var row dirdata.Row
		row.Name = rd.str()
		row.Cap = rd.cap()
		nm := int(rd.u16())
		if nm > 64 {
			return nil, ErrBadRequest
		}
		for j := 0; j < nm; j++ {
			row.ColMasks = append(row.ColMasks, capability.Rights(rd.u8()))
		}
		r.Rows = append(r.Rows, row)
	}
	ncaps := int(rd.u32())
	if ncaps > 1<<20 {
		return nil, ErrBadRequest
	}
	for i := 0; i < ncaps; i++ {
		r.Caps = append(r.Caps, rd.cap())
	}
	r.Seq = rd.u64()
	r.ObjSeq = rd.u64()
	r.Blob = rd.lenBytes()
	if rd.failed {
		return nil, ErrBadRequest
	}
	return r, nil
}

// writer builds length-prefixed binary messages.
type writer struct{ buf []byte }

func newWriter() *writer { return &writer{buf: make([]byte, 0, 128)} }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) cap(c capability.Capability) {
	w.buf = c.Encode(w.buf)
}
func (w *writer) str(s string) {
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// byteReader is a bounds-checked cursor.
type byteReader struct {
	buf    []byte
	off    int
	failed bool
}

func (r *byteReader) take(n int) []byte {
	if r.failed || n < 0 || r.off+n > len(r.buf) {
		r.failed = true
		return make([]byte, max(n, 0))
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}

func (r *byteReader) u8() uint8   { return r.take(1)[0] }
func (r *byteReader) u16() uint16 { return binary.BigEndian.Uint16(r.take(2)) }
func (r *byteReader) u32() uint32 { return binary.BigEndian.Uint32(r.take(4)) }
func (r *byteReader) u64() uint64 { return binary.BigEndian.Uint64(r.take(8)) }
func (r *byteReader) str() string { return string(r.take(int(r.u16()))) }
func (r *byteReader) lenBytes() []byte {
	b := r.take(int(r.u32()))
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
func (r *byteReader) cap() capability.Capability {
	c, err := capability.Decode(r.take(capability.Size))
	if err != nil {
		r.failed = true
	}
	return c
}
