package dirsvc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"dirsvc/internal/vdisk"
)

// Engine is the disk-backed storage engine under the shared applier: a
// raw partition holding two checkpoint areas and an operation log.
//
// Layout (blocks):
//
//	0                      manifest
//	1 .. 1+A               checkpoint area 0
//	1+A .. 1+2A            checkpoint area 1
//	1+2A .. end            log
//
// A checkpoint write goes to the inactive area, then one manifest write
// flips the active pointer, bumps the checkpoint generation, and opens a
// fresh log generation — the block-device equivalent of write-temp,
// fsync, rename: a crash at any point leaves either the old checkpoint
// with its full log, or the new checkpoint with an empty log. Log
// records are CRC-guarded and tagged with the log generation, so replay
// stops at the first torn or stale record. Every write is synchronous
// (vdisk models raw-partition writes), so nothing here needs an explicit
// sync step.
type Engine struct {
	store vdisk.Storage

	areaBlocks int // blocks per checkpoint area
	logStart   int // first log block
	logBlocks  int // blocks in the log region

	mu      sync.Mutex
	active  byte   // which checkpoint area the manifest points at
	ckptSeq uint64 // applied sequence number the checkpoint covers
	ckptLen uint32 // checkpoint payload length in bytes
	ckptCRC uint32 // checkpoint payload CRC
	ckptGen uint64 // bumped on every checkpoint (secondaries watch this)
	logGen  uint64 // current log generation; records from others are stale
	logTail int    // next free log block
	recs    []LogRec
	maxSeq  uint64 // highest seq ever logged or checkpointed (recovery floor)
}

// LogRec is one recovered log record.
type LogRec struct {
	Seq     uint64
	Payload []byte
}

// Manifest is the engine's root metadata block, decoded.
type Manifest struct {
	Active  byte
	CkptSeq uint64
	CkptLen uint32
	CkptCRC uint32
	CkptGen uint64
	LogGen  uint64
	MaxSeq  uint64
}

var engMagic = [4]byte{'E', 'N', 'G', '1'}

// Manifest block layout:
//
//	magic[4] | active u8 | ckptSeq u64 | ckptLen u32 | ckptCRC u32 |
//	ckptGen u64 | logGen u64 | maxSeq u64 | crc u32 (of all preceding)
const manifestLen = 4 + 1 + 8 + 4 + 4 + 8 + 8 + 8 + 4

// Log record header: magic[4] | len u32 | seq u64 | gen u64 | crc u32
// (of the payload). Records are padded to a whole number of blocks so
// each append is one sequential run.
const logRecHeader = 4 + 4 + 8 + 8 + 4

var logMagic = [4]byte{'E', 'L', 'O', 'G'}

var (
	// ErrEngineFull is returned when a record does not fit in the log
	// region; the caller must checkpoint first.
	ErrEngineFull = errors.New("dirsvc: engine log full")
	// ErrNoCheckpoint is returned when no checkpoint has been written.
	ErrNoCheckpoint = errors.New("dirsvc: no checkpoint")
	// errTornManifest reports a manifest whose CRC does not match —
	// retried by secondary readers racing a manifest flip.
	errTornManifest = errors.New("dirsvc: torn manifest")
)

// engineLayout computes the region split for a partition: a quarter of
// the blocks (at least 8) for the log, the rest split into two
// checkpoint areas.
func engineLayout(blocks int) (areaBlocks, logStart, logBlocks int, err error) {
	if blocks < 16 {
		return 0, 0, 0, fmt.Errorf("engine partition too small (%d blocks)", blocks)
	}
	logBlocks = blocks / 4
	if logBlocks < 8 {
		logBlocks = 8
	}
	areaBlocks = (blocks - 1 - logBlocks) / 2
	if areaBlocks < 1 {
		return 0, 0, 0, fmt.Errorf("engine partition too small (%d blocks)", blocks)
	}
	logStart = 1 + 2*areaBlocks
	logBlocks = blocks - logStart
	return areaBlocks, logStart, logBlocks, nil
}

// OpenEngine attaches to (or formats) an engine partition and scans the
// current log generation into memory.
func OpenEngine(store vdisk.Storage) (*Engine, error) {
	areaBlocks, logStart, logBlocks, err := engineLayout(store.Blocks())
	if err != nil {
		return nil, err
	}
	e := &Engine{store: store, areaBlocks: areaBlocks, logStart: logStart, logBlocks: logBlocks, logTail: logStart}
	m, err := readManifest(store)
	switch {
	case errors.Is(err, ErrNoCheckpoint):
		// Fresh partition: write an empty manifest so a secondary can
		// attach before the first checkpoint.
		if err := e.writeManifestLocked(); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, err
	default:
		e.active = m.Active
		e.ckptSeq = m.CkptSeq
		e.ckptLen = m.CkptLen
		e.ckptCRC = m.CkptCRC
		e.ckptGen = m.CkptGen
		e.logGen = m.LogGen
		e.maxSeq = m.MaxSeq
	}
	recs, tail, err := scanLog(store, logStart, logBlocks, e.logGen)
	if err != nil {
		return nil, err
	}
	e.recs = recs
	e.logTail = tail
	for _, r := range recs {
		if r.Seq > e.maxSeq {
			e.maxSeq = r.Seq
		}
	}
	return e, nil
}

func readManifest(store vdisk.Storage) (*Manifest, error) {
	raw, err := store.ReadBlock(0)
	if err != nil {
		return nil, err
	}
	if [4]byte(raw[:4]) != engMagic {
		return nil, ErrNoCheckpoint
	}
	sum := binary.BigEndian.Uint32(raw[manifestLen-4 : manifestLen])
	if crc32.ChecksumIEEE(raw[:manifestLen-4]) != sum {
		return nil, errTornManifest
	}
	m := &Manifest{Active: raw[4]}
	m.CkptSeq = binary.BigEndian.Uint64(raw[5:13])
	m.CkptLen = binary.BigEndian.Uint32(raw[13:17])
	m.CkptCRC = binary.BigEndian.Uint32(raw[17:21])
	m.CkptGen = binary.BigEndian.Uint64(raw[21:29])
	m.LogGen = binary.BigEndian.Uint64(raw[29:37])
	m.MaxSeq = binary.BigEndian.Uint64(raw[37:45])
	return m, nil
}

// writeManifestLocked persists the engine's root metadata. Must hold
// e.mu (or run before the engine is shared).
func (e *Engine) writeManifestLocked() error {
	buf := make([]byte, manifestLen)
	copy(buf, engMagic[:])
	buf[4] = e.active
	binary.BigEndian.PutUint64(buf[5:13], e.ckptSeq)
	binary.BigEndian.PutUint32(buf[13:17], e.ckptLen)
	binary.BigEndian.PutUint32(buf[17:21], e.ckptCRC)
	binary.BigEndian.PutUint64(buf[21:29], e.ckptGen)
	binary.BigEndian.PutUint64(buf[29:37], e.logGen)
	binary.BigEndian.PutUint64(buf[37:45], e.maxSeq)
	binary.BigEndian.PutUint32(buf[manifestLen-4:manifestLen], crc32.ChecksumIEEE(buf[:manifestLen-4]))
	return e.store.WriteBlockSeq(0, buf)
}

// scanLog reads the log region sequentially, collecting the records of
// generation gen. The current generation's records form a prefix of the
// region; the scan stops at the first stale, torn, or empty record.
func scanLog(store vdisk.Storage, logStart, logBlocks int, gen uint64) ([]LogRec, int, error) {
	var recs []LogRec
	b := logStart
	end := logStart + logBlocks
	for b < end {
		hdr, err := store.ReadBlock(b)
		if err != nil {
			return nil, 0, err
		}
		if [4]byte(hdr[:4]) != logMagic {
			break
		}
		n := int(binary.BigEndian.Uint32(hdr[4:8]))
		seq := binary.BigEndian.Uint64(hdr[8:16])
		rgen := binary.BigEndian.Uint64(hdr[16:24])
		sum := binary.BigEndian.Uint32(hdr[24:28])
		if rgen != gen {
			break
		}
		span := logRecBlocks(n)
		if n < 0 || b+span > end {
			break
		}
		raw, err := store.ReadRun(b, logRecHeader+n)
		if err != nil {
			return nil, 0, err
		}
		payload := raw[logRecHeader : logRecHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break // torn append: the record never committed
		}
		out := make([]byte, n)
		copy(out, payload)
		recs = append(recs, LogRec{Seq: seq, Payload: out})
		b += span
	}
	return recs, b, nil
}

// logRecBlocks returns the whole blocks an n-byte payload occupies.
func logRecBlocks(n int) int {
	return (logRecHeader + n + vdisk.BlockSize - 1) / vdisk.BlockSize
}

// AppendLog durably appends one operation record. ErrEngineFull means
// the caller must write a checkpoint (which opens a fresh, empty log
// generation) and may then drop the record — the checkpoint covers it.
func (e *Engine) AppendLog(seq uint64, payload []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	span := logRecBlocks(len(payload))
	if e.logTail+span > e.logStart+e.logBlocks {
		return fmt.Errorf("%w (%d of %d blocks used)", ErrEngineFull, e.logTail-e.logStart, e.logBlocks)
	}
	buf := make([]byte, span*vdisk.BlockSize)
	copy(buf, logMagic[:])
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint64(buf[8:16], seq)
	binary.BigEndian.PutUint64(buf[16:24], e.logGen)
	binary.BigEndian.PutUint32(buf[24:28], crc32.ChecksumIEEE(payload))
	copy(buf[logRecHeader:], payload)
	if err := e.store.WriteRunSeq(e.logTail, buf); err != nil {
		return err
	}
	e.logTail += span
	rec := LogRec{Seq: seq, Payload: append([]byte(nil), payload...)}
	e.recs = append(e.recs, rec)
	if seq > e.maxSeq {
		e.maxSeq = seq
	}
	return nil
}

// WriteCheckpoint atomically installs a new checkpoint covering every
// update up to and including seq, and truncates the log: the payload
// goes to the inactive area, then one manifest write flips the active
// pointer and opens a fresh log generation.
func (e *Engine) WriteCheckpoint(seq uint64, payload []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(payload) > e.areaBlocks*vdisk.BlockSize {
		return fmt.Errorf("checkpoint %d bytes exceeds area (%d blocks): %w",
			len(payload), e.areaBlocks, vdisk.ErrTooLarge)
	}
	inactive := 1 - e.active
	if err := e.store.WriteRun(e.areaStart(inactive), payload); err != nil {
		return err
	}
	prevActive, prevSeq, prevLen, prevCRC := e.active, e.ckptSeq, e.ckptLen, e.ckptCRC
	prevCkptGen, prevLogGen, prevMax := e.ckptGen, e.logGen, e.maxSeq
	e.active = inactive
	e.ckptSeq = seq
	e.ckptLen = uint32(len(payload))
	e.ckptCRC = crc32.ChecksumIEEE(payload)
	e.ckptGen++
	e.logGen++
	if seq > e.maxSeq {
		e.maxSeq = seq
	}
	if err := e.writeManifestLocked(); err != nil {
		// The flip never committed: the old checkpoint + log still rule.
		e.active, e.ckptSeq, e.ckptLen, e.ckptCRC = prevActive, prevSeq, prevLen, prevCRC
		e.ckptGen, e.logGen, e.maxSeq = prevCkptGen, prevLogGen, prevMax
		return err
	}
	e.logTail = e.logStart
	e.recs = nil
	return nil
}

// areaStart returns the first block of checkpoint area a.
func (e *Engine) areaStart(a byte) int { return 1 + int(a)*e.areaBlocks }

// Checkpoint returns the current checkpoint payload, or ErrNoCheckpoint
// when none has been written yet.
func (e *Engine) Checkpoint() (seq uint64, payload []byte, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ckptGen == 0 {
		return 0, nil, ErrNoCheckpoint
	}
	raw, err := e.store.ReadRun(e.areaStart(e.active), int(e.ckptLen))
	if err != nil {
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(raw) != e.ckptCRC {
		return 0, nil, fmt.Errorf("checkpoint area %d: %w", e.active, errTornManifest)
	}
	return e.ckptSeq, raw, nil
}

// CheckpointSeq returns the sequence number the current checkpoint
// covers (0 when none).
func (e *Engine) CheckpointSeq() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ckptSeq
}

// LogSuffix returns the recovered/appended log records with sequence
// numbers beyond after, in log order.
func (e *Engine) LogSuffix(after uint64) []LogRec {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]LogRec, 0, len(e.recs))
	for _, r := range e.recs {
		if r.Seq > after {
			out = append(out, r)
		}
	}
	return out
}

// LogLen returns the number of live log records.
func (e *Engine) LogLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.recs)
}

// NeedsCheckpoint reports whether the log has passed 3/4 of its region —
// the engine-mode analogue of NVLog.NeedsFlush.
func (e *Engine) NeedsCheckpoint() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return (e.logTail-e.logStart)*4 > e.logBlocks*3
}

// MaxSeq returns the highest sequence number the engine has durably
// seen (checkpoint or log). Recovery takes the maximum of this and the
// other local sources.
func (e *Engine) MaxSeq() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.maxSeq
}

// EngineView is a read-only attachment to an engine partition, used by
// readonly secondary instances that tail a primary's checkpoints and log
// without ever writing. Every call re-reads the manifest, so a view
// observes checkpoint flips as they commit; torn reads (racing a flip)
// surface as errors the caller retries.
type EngineView struct {
	store      vdisk.Storage
	areaBlocks int
	logStart   int
	logBlocks  int
}

// NewEngineView attaches a read-only view to an engine partition.
func NewEngineView(store vdisk.Storage) (*EngineView, error) {
	areaBlocks, logStart, logBlocks, err := engineLayout(store.Blocks())
	if err != nil {
		return nil, err
	}
	return &EngineView{store: store, areaBlocks: areaBlocks, logStart: logStart, logBlocks: logBlocks}, nil
}

// Manifest reads the current manifest. ErrNoCheckpoint means the
// primary has not formatted the partition yet.
func (v *EngineView) Manifest() (*Manifest, error) {
	return readManifest(v.store)
}

// Checkpoint reads and verifies the checkpoint payload named by m.
// A CRC mismatch (the primary flipped mid-read) returns an error; the
// caller re-reads the manifest and retries.
func (v *EngineView) Checkpoint(m *Manifest) ([]byte, error) {
	if m.CkptGen == 0 {
		return nil, ErrNoCheckpoint
	}
	raw, err := v.store.ReadRun(1+int(m.Active)*v.areaBlocks, int(m.CkptLen))
	if err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(raw) != m.CkptCRC {
		return nil, errTornManifest
	}
	return raw, nil
}

// LogSince scans the log generation named by m and returns the records
// with sequence numbers beyond after.
func (v *EngineView) LogSince(m *Manifest, after uint64) ([]LogRec, error) {
	recs, _, err := scanLog(v.store, v.logStart, v.logBlocks, m.LogGen)
	if err != nil {
		return nil, err
	}
	out := recs[:0]
	for _, r := range recs {
		if r.Seq > after {
			out = append(out, r)
		}
	}
	return out, nil
}

// IsTornRead reports whether err is the transient torn-read error a
// secondary sees while racing a checkpoint flip.
func IsTornRead(err error) bool { return errors.Is(err, errTornManifest) }
