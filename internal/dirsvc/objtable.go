package dirsvc

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"dirsvc/internal/capability"
	"dirsvc/internal/vdisk"
)

// ObjectEntry is one object table slot: which Bullet file holds the
// current version of the directory, the sequence number of its last
// change (paper Fig. 4's "blocks 1 to n−1"), and the per-object secret
// from which client capabilities are minted and verified.
type ObjectEntry struct {
	Cap    capability.Capability // Bullet file holding the directory image
	Seq    uint64
	Secret capability.Secret
}

// StubEntry is a forwarding stub left in a migrated object's slot: the
// shard now holding the object and the sequence number of the flip that
// moved it. The stub keeps the slot occupied (so the number is never
// re-allocated here) and gives in-flight clients their one-hop chase.
type StubEntry struct {
	Target int
	Seq    uint64
}

// entrySlot is the on-disk size of one slot:
// state(1) + cap(16) + seq(8) + secret(6).
// State 0 is free, 1 a used entry, 2 a forwarding stub (the cap field's
// first four bytes hold the target shard instead of a capability).
const entrySlot = 1 + capability.Size + 8 + 6

// Slot state bytes.
const (
	slotFree byte = 0
	slotUsed byte = 1
	slotStub byte = 2
)

// entriesPerBlock slots fit one 512-byte block.
const entriesPerBlock = vdisk.BlockSize / entrySlot

// ObjectTable maps directory object numbers to their entries. The table
// occupies blocks 1..k of the admin partition; updating one entry costs
// exactly one block write — the paper's "one disk operation to store the
// changed entry in the object table".
type ObjectTable struct {
	admin vdisk.Storage

	mu         sync.Mutex
	entries    map[uint32]ObjectEntry
	stubs      map[uint32]StubEntry // forwarding stubs of migrated objects
	ramDirty   map[uint32]bool      // RAM-only changes not yet persisted to disk
	max        uint32               // highest object number the partition can hold
	allocMod   uint32               // active shards (allocation stride, ≥ 1)
	allocRes   uint32               // this shard's index s: allocates obj ≡ s+1 (mod stride)
	allocFloor uint32               // allocate only numbers above this (split targets)
}

// OpenObjectTable loads the table from the admin partition (blocks 1..end).
func OpenObjectTable(admin vdisk.Storage) (*ObjectTable, error) {
	blocks := admin.Blocks() - 1
	if blocks < 1 {
		return nil, fmt.Errorf("object table: admin partition too small")
	}
	t := &ObjectTable{
		admin:    admin,
		entries:  make(map[uint32]ObjectEntry),
		stubs:    make(map[uint32]StubEntry),
		ramDirty: make(map[uint32]bool),
		max:      uint32(blocks * entriesPerBlock),
		allocMod: 1,
	}
	// One sequential scan of the partition (boot/recovery only): a
	// single seek plus per-block transfers, like reading a raw
	// partition front to back.
	raw, err := admin.ReadRun(1, blocks*vdisk.BlockSize)
	if err != nil {
		return nil, fmt.Errorf("object table scan: %w", err)
	}
	for b := 1; b <= blocks; b++ {
		blk := raw[(b-1)*vdisk.BlockSize : b*vdisk.BlockSize]
		for s := 0; s < entriesPerBlock; s++ {
			off := s * entrySlot
			obj := uint32((b-1)*entriesPerBlock + s + 1)
			switch blk[off] {
			case slotUsed:
				e, err := decodeEntry(blk[off:])
				if err != nil {
					return nil, fmt.Errorf("object %d: %w", obj, err)
				}
				t.entries[obj] = e
			case slotStub:
				t.stubs[obj] = decodeStub(blk[off:])
			}
		}
	}
	return t, nil
}

// Get returns the entry for obj.
func (t *ObjectTable) Get(obj uint32) (ObjectEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[obj]
	return e, ok
}

// All returns a copy of every live entry.
func (t *ObjectTable) All() map[uint32]ObjectEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[uint32]ObjectEntry, len(t.entries))
	for k, v := range t.entries {
		out[k] = v
	}
	return out
}

// Objects returns all live object numbers in ascending order.
func (t *ObjectTable) Objects() []uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint32, 0, len(t.entries))
	for k := range t.entries {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConfigureShard restricts allocation to one shard's residue class of
// the object-number space: shard s of G allocates only numbers obj with
// (obj-1) mod G == s, so an object number alone identifies its home
// shard (the routing rule behind dir.ShardOf) and numbers never collide
// across shards. Shard 0 owns the root object (1). Call before the
// table allocates; a no-op for unsharded deployments (shards ≤ 1).
func (t *ObjectTable) ConfigureShard(shard, shards int) {
	if shards <= 1 {
		return
	}
	t.mu.Lock()
	t.allocMod = uint32(shards)
	t.allocRes = uint32(shard)
	t.mu.Unlock()
}

// SetAllocFloor restricts allocation to object numbers strictly above f.
// A split target sets this to the source's highest-ever number in the
// moving class so the two sides can never mint the same number while the
// class is split across them.
func (t *ObjectTable) SetAllocFloor(f uint32) {
	t.mu.Lock()
	t.allocFloor = f
	t.mu.Unlock()
}

// ClassMax returns the highest object number in residue class
// (obj-1) mod mod == res that is used or stubbed — the allocation floor
// a split hands to its target. Deterministic across replicas because the
// table contents are.
func (t *ObjectTable) ClassMax(mod, res uint32) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if mod == 0 {
		mod = 1
	}
	var maxObj uint32
	for obj := range t.entries {
		if (obj-1)%mod == res && obj > maxObj {
			maxObj = obj
		}
	}
	for obj := range t.stubs {
		if (obj-1)%mod == res && obj > maxObj {
			maxObj = obj
		}
	}
	return maxObj
}

// NextFree returns the lowest unused object number homed on this shard.
// Because every replica of a shard applies updates in the same total
// order to the same table, this choice is deterministic across the group.
func (t *ObjectTable) NextFree() uint32 { return t.NextFreeExcept(nil) }

// NextFreeExcept returns the lowest unused object number homed on this
// shard that is also not in skip — the allocator for batches, where
// several creations must pick distinct numbers before any of them
// commits.
func (t *ObjectTable) NextFreeExcept(skip map[uint32]bool) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	start := t.allocRes + 1
	if t.allocFloor >= start {
		// First in-class number strictly above the floor.
		k := (t.allocFloor-start)/t.allocMod + 1
		start += k * t.allocMod
	}
	for obj := start; obj <= t.max; obj += t.allocMod {
		_, used := t.entries[obj]
		_, stubbed := t.stubs[obj]
		if !used && !stubbed && !skip[obj] {
			return obj
		}
	}
	return 0
}

// MaxSeq returns the highest sequence number stored with any directory.
// Recovery combines this with the commit block's sequence number (§3).
func (t *ObjectTable) MaxSeq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var maxSeq uint64
	for _, e := range t.entries {
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
	}
	for _, s := range t.stubs {
		if s.Seq > maxSeq {
			maxSeq = s.Seq
		}
	}
	return maxSeq
}

// Set updates obj's entry and writes the containing block (one disk
// operation — the commit point of the write protocol, Fig. 5).
func (t *ObjectTable) Set(obj uint32, e ObjectEntry) error {
	t.mu.Lock()
	if obj == 0 || obj > t.max {
		t.mu.Unlock()
		return fmt.Errorf("object %d out of range (max %d)", obj, t.max)
	}
	t.entries[obj] = e
	delete(t.stubs, obj)
	delete(t.ramDirty, obj)
	raw := t.encodeBlockLocked(blockOf(obj))
	t.mu.Unlock()
	return t.admin.WriteBlock(blockOf(obj), raw)
}

// Delete clears obj's slot and writes the containing block.
func (t *ObjectTable) Delete(obj uint32) error {
	t.mu.Lock()
	delete(t.ramDirty, obj)
	_, used := t.entries[obj]
	_, stubbed := t.stubs[obj]
	if !used && !stubbed {
		t.mu.Unlock()
		return nil
	}
	delete(t.entries, obj)
	delete(t.stubs, obj)
	raw := t.encodeBlockLocked(blockOf(obj))
	t.mu.Unlock()
	return t.admin.WriteBlock(blockOf(obj), raw)
}

// SetStub replaces obj's slot with a forwarding stub and writes the
// containing block — the source side's commit point of a migration flip:
// the object entry is gone, its number stays reserved, and in-flight
// clients are pointed at the new home.
func (t *ObjectTable) SetStub(obj uint32, s StubEntry) error {
	t.mu.Lock()
	if obj == 0 || obj > t.max {
		t.mu.Unlock()
		return fmt.Errorf("object %d out of range (max %d)", obj, t.max)
	}
	delete(t.entries, obj)
	t.stubs[obj] = s
	delete(t.ramDirty, obj)
	raw := t.encodeBlockLocked(blockOf(obj))
	t.mu.Unlock()
	return t.admin.WriteBlock(blockOf(obj), raw)
}

// SetStubRAM installs a forwarding stub in memory only, marking the
// object dirty for the background flush (the NVRAM critical path).
func (t *ObjectTable) SetStubRAM(obj uint32, s StubEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.entries, obj)
	t.stubs[obj] = s
	t.ramDirty[obj] = true
}

// Stub returns obj's forwarding stub, if any.
func (t *ObjectTable) Stub(obj uint32) (StubEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.stubs[obj]
	return s, ok
}

// Stubs returns a copy of every live forwarding stub.
func (t *ObjectTable) Stubs() map[uint32]StubEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[uint32]StubEntry, len(t.stubs))
	for k, v := range t.stubs {
		out[k] = v
	}
	return out
}

// StubCount returns the number of live forwarding stubs.
func (t *ObjectTable) StubCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.stubs)
}

// DropAllStubs removes every forwarding stub and rewrites the affected
// blocks — the final step of a completed split, after clients have had
// the new shard map pushed at them via NotMine chases.
func (t *ObjectTable) DropAllStubs() error {
	t.mu.Lock()
	dirty := make(map[int]bool)
	for obj := range t.stubs {
		dirty[blockOf(obj)] = true
		delete(t.ramDirty, obj)
	}
	t.stubs = make(map[uint32]StubEntry)
	blocks := make([]int, 0, len(dirty))
	for b := range dirty {
		blocks = append(blocks, b)
	}
	sort.Ints(blocks)
	images := make([][]byte, len(blocks))
	for i, b := range blocks {
		images[i] = t.encodeBlockLocked(b)
	}
	t.mu.Unlock()
	for i, b := range blocks {
		if err := t.admin.WriteBlock(b, images[i]); err != nil {
			return err
		}
	}
	return nil
}

// DropAllStubsRAM removes every forwarding stub in memory only, marking
// the affected objects dirty for the background flush.
func (t *ObjectTable) DropAllStubsRAM() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for obj := range t.stubs {
		t.ramDirty[obj] = true
	}
	t.stubs = make(map[uint32]StubEntry)
}

// ReplaceAll atomically installs a full table image (recovery state
// transfer), entries and forwarding stubs both, rewriting every dirty
// block.
func (t *ObjectTable) ReplaceAll(entries map[uint32]ObjectEntry, stubs map[uint32]StubEntry) error {
	t.mu.Lock()
	dirty := make(map[int]bool)
	for obj := range t.entries {
		dirty[blockOf(obj)] = true
	}
	for obj := range t.stubs {
		dirty[blockOf(obj)] = true
	}
	for obj := range entries {
		dirty[blockOf(obj)] = true
	}
	for obj := range stubs {
		dirty[blockOf(obj)] = true
	}
	t.entries = make(map[uint32]ObjectEntry, len(entries))
	t.stubs = make(map[uint32]StubEntry, len(stubs))
	t.ramDirty = make(map[uint32]bool)
	for k, v := range entries {
		t.entries[k] = v
	}
	for k, v := range stubs {
		t.stubs[k] = v
	}
	blocks := make([]int, 0, len(dirty))
	for b := range dirty {
		blocks = append(blocks, b)
	}
	sort.Ints(blocks)
	images := make([][]byte, len(blocks))
	for i, b := range blocks {
		images[i] = t.encodeBlockLocked(b)
	}
	t.mu.Unlock()
	for i, b := range blocks {
		if err := t.admin.WriteBlock(b, images[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReplaceAllRAM installs a full table image in memory only, marking
// every slot that changed hands dirty for the background flush. The
// disk-engine and secondary paths use this: the checkpoint, not the
// admin partition, is their durable copy.
func (t *ObjectTable) ReplaceAllRAM(entries map[uint32]ObjectEntry, stubs map[uint32]StubEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	dirty := make(map[uint32]bool)
	for obj := range t.entries {
		dirty[obj] = true
	}
	for obj := range t.stubs {
		dirty[obj] = true
	}
	t.entries = make(map[uint32]ObjectEntry, len(entries))
	t.stubs = make(map[uint32]StubEntry, len(stubs))
	for k, v := range entries {
		t.entries[k] = v
		dirty[k] = true
	}
	for k, v := range stubs {
		t.stubs[k] = v
		dirty[k] = true
	}
	t.ramDirty = dirty
}

// SetRAM updates obj's entry in memory only, marking the object dirty
// for the background flush. The NVRAM variant of the service uses this
// on its critical path; FlushBlocks persists later.
func (t *ObjectTable) SetRAM(obj uint32, e ObjectEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[obj] = e
	t.ramDirty[obj] = true
}

// DeleteRAM clears obj's slot in memory only, marking the object dirty
// for the background flush.
func (t *ObjectTable) DeleteRAM(obj uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.entries, obj)
	delete(t.stubs, obj)
	t.ramDirty[obj] = true
}

// RAMDirtyObjects returns, in ascending order, every object whose RAM
// state (entry changed, created, or deleted) has not been persisted —
// the authoritative work list for the background flush. Unlike parsing
// the operation log, this covers creations (whose object numbers are
// assigned at apply time) and batch steps.
func (t *ObjectTable) RAMDirtyObjects() []uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint32, 0, len(t.ramDirty))
	for obj := range t.ramDirty {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FlushBlocks writes the blocks containing the given objects, each block
// once (the background NVRAM flush path).
func (t *ObjectTable) FlushBlocks(objs []uint32) error {
	seen := make(map[int]bool)
	var blocks []int
	for _, obj := range objs {
		b := blockOf(obj)
		if !seen[b] {
			seen[b] = true
			blocks = append(blocks, b)
		}
	}
	sort.Ints(blocks)
	for _, b := range blocks {
		t.mu.Lock()
		raw := t.encodeBlockLocked(b)
		t.mu.Unlock()
		if err := t.admin.WriteBlock(b, raw); err != nil {
			return err
		}
	}
	t.mu.Lock()
	for _, obj := range objs {
		delete(t.ramDirty, obj)
	}
	t.mu.Unlock()
	return nil
}

// blockOf returns the admin block holding obj's slot.
func blockOf(obj uint32) int {
	return 1 + int(obj-1)/entriesPerBlock
}

// encodeBlockLocked renders one table block. Must hold t.mu.
func (t *ObjectTable) encodeBlockLocked(block int) []byte {
	raw := make([]byte, vdisk.BlockSize)
	first := uint32((block-1)*entriesPerBlock + 1)
	for s := 0; s < entriesPerBlock; s++ {
		obj := first + uint32(s)
		off := s * entrySlot
		if e, ok := t.entries[obj]; ok {
			raw[off] = slotUsed
			copy(raw[off+1:off+1+capability.Size], e.Cap.Encode(nil))
			binary.BigEndian.PutUint64(raw[off+1+capability.Size:], e.Seq)
			copy(raw[off+1+capability.Size+8:], e.Secret[:])
			continue
		}
		if st, ok := t.stubs[obj]; ok {
			raw[off] = slotStub
			binary.BigEndian.PutUint32(raw[off+1:], uint32(st.Target))
			binary.BigEndian.PutUint64(raw[off+1+capability.Size:], st.Seq)
		}
	}
	return raw
}

// decodeStub parses a slotStub slot: target shard in the first four cap
// bytes, seq in the usual seq field.
func decodeStub(raw []byte) StubEntry {
	return StubEntry{
		Target: int(binary.BigEndian.Uint32(raw[1:])),
		Seq:    binary.BigEndian.Uint64(raw[1+capability.Size:]),
	}
}

func decodeEntry(raw []byte) (ObjectEntry, error) {
	var e ObjectEntry
	c, err := capability.Decode(raw[1 : 1+capability.Size])
	if err != nil {
		return e, err
	}
	e.Cap = c
	e.Seq = binary.BigEndian.Uint64(raw[1+capability.Size:])
	copy(e.Secret[:], raw[1+capability.Size+8:])
	return e, nil
}
