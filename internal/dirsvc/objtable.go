package dirsvc

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"dirsvc/internal/capability"
	"dirsvc/internal/vdisk"
)

// ObjectEntry is one object table slot: which Bullet file holds the
// current version of the directory, the sequence number of its last
// change (paper Fig. 4's "blocks 1 to n−1"), and the per-object secret
// from which client capabilities are minted and verified.
type ObjectEntry struct {
	Cap    capability.Capability // Bullet file holding the directory image
	Seq    uint64
	Secret capability.Secret
}

// entrySlot is the on-disk size of one slot:
// used(1) + cap(16) + seq(8) + secret(6).
const entrySlot = 1 + capability.Size + 8 + 6

// entriesPerBlock slots fit one 512-byte block.
const entriesPerBlock = vdisk.BlockSize / entrySlot

// ObjectTable maps directory object numbers to their entries. The table
// occupies blocks 1..k of the admin partition; updating one entry costs
// exactly one block write — the paper's "one disk operation to store the
// changed entry in the object table".
type ObjectTable struct {
	admin vdisk.Storage

	mu       sync.Mutex
	entries  map[uint32]ObjectEntry
	ramDirty map[uint32]bool // RAM-only changes not yet persisted to disk
	max      uint32          // highest object number the partition can hold
	allocMod uint32          // total shards G (allocation stride, ≥ 1)
	allocRes uint32          // this shard's index s: allocates obj ≡ s+1 (mod G)
}

// OpenObjectTable loads the table from the admin partition (blocks 1..end).
func OpenObjectTable(admin vdisk.Storage) (*ObjectTable, error) {
	blocks := admin.Blocks() - 1
	if blocks < 1 {
		return nil, fmt.Errorf("object table: admin partition too small")
	}
	t := &ObjectTable{
		admin:    admin,
		entries:  make(map[uint32]ObjectEntry),
		ramDirty: make(map[uint32]bool),
		max:      uint32(blocks * entriesPerBlock),
		allocMod: 1,
	}
	// One sequential scan of the partition (boot/recovery only): a
	// single seek plus per-block transfers, like reading a raw
	// partition front to back.
	raw, err := admin.ReadRun(1, blocks*vdisk.BlockSize)
	if err != nil {
		return nil, fmt.Errorf("object table scan: %w", err)
	}
	for b := 1; b <= blocks; b++ {
		blk := raw[(b-1)*vdisk.BlockSize : b*vdisk.BlockSize]
		for s := 0; s < entriesPerBlock; s++ {
			off := s * entrySlot
			if blk[off] != 1 {
				continue
			}
			obj := uint32((b-1)*entriesPerBlock + s + 1)
			e, err := decodeEntry(blk[off:])
			if err != nil {
				return nil, fmt.Errorf("object %d: %w", obj, err)
			}
			t.entries[obj] = e
		}
	}
	return t, nil
}

// Get returns the entry for obj.
func (t *ObjectTable) Get(obj uint32) (ObjectEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[obj]
	return e, ok
}

// All returns a copy of every live entry.
func (t *ObjectTable) All() map[uint32]ObjectEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[uint32]ObjectEntry, len(t.entries))
	for k, v := range t.entries {
		out[k] = v
	}
	return out
}

// Objects returns all live object numbers in ascending order.
func (t *ObjectTable) Objects() []uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint32, 0, len(t.entries))
	for k := range t.entries {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConfigureShard restricts allocation to one shard's residue class of
// the object-number space: shard s of G allocates only numbers obj with
// (obj-1) mod G == s, so an object number alone identifies its home
// shard (the routing rule behind dir.ShardOf) and numbers never collide
// across shards. Shard 0 owns the root object (1). Call before the
// table allocates; a no-op for unsharded deployments (shards ≤ 1).
func (t *ObjectTable) ConfigureShard(shard, shards int) {
	if shards <= 1 {
		return
	}
	t.mu.Lock()
	t.allocMod = uint32(shards)
	t.allocRes = uint32(shard)
	t.mu.Unlock()
}

// NextFree returns the lowest unused object number homed on this shard.
// Because every replica of a shard applies updates in the same total
// order to the same table, this choice is deterministic across the group.
func (t *ObjectTable) NextFree() uint32 { return t.NextFreeExcept(nil) }

// NextFreeExcept returns the lowest unused object number homed on this
// shard that is also not in skip — the allocator for batches, where
// several creations must pick distinct numbers before any of them
// commits.
func (t *ObjectTable) NextFreeExcept(skip map[uint32]bool) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	for obj := t.allocRes + 1; obj <= t.max; obj += t.allocMod {
		if _, used := t.entries[obj]; !used && !skip[obj] {
			return obj
		}
	}
	return 0
}

// MaxSeq returns the highest sequence number stored with any directory.
// Recovery combines this with the commit block's sequence number (§3).
func (t *ObjectTable) MaxSeq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var maxSeq uint64
	for _, e := range t.entries {
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
	}
	return maxSeq
}

// Set updates obj's entry and writes the containing block (one disk
// operation — the commit point of the write protocol, Fig. 5).
func (t *ObjectTable) Set(obj uint32, e ObjectEntry) error {
	t.mu.Lock()
	if obj == 0 || obj > t.max {
		t.mu.Unlock()
		return fmt.Errorf("object %d out of range (max %d)", obj, t.max)
	}
	t.entries[obj] = e
	delete(t.ramDirty, obj)
	raw := t.encodeBlockLocked(blockOf(obj))
	t.mu.Unlock()
	return t.admin.WriteBlock(blockOf(obj), raw)
}

// Delete clears obj's slot and writes the containing block.
func (t *ObjectTable) Delete(obj uint32) error {
	t.mu.Lock()
	delete(t.ramDirty, obj)
	if _, ok := t.entries[obj]; !ok {
		t.mu.Unlock()
		return nil
	}
	delete(t.entries, obj)
	raw := t.encodeBlockLocked(blockOf(obj))
	t.mu.Unlock()
	return t.admin.WriteBlock(blockOf(obj), raw)
}

// ReplaceAll atomically installs a full table image (recovery state
// transfer), rewriting every dirty block.
func (t *ObjectTable) ReplaceAll(entries map[uint32]ObjectEntry) error {
	t.mu.Lock()
	dirty := make(map[int]bool)
	for obj := range t.entries {
		dirty[blockOf(obj)] = true
	}
	for obj := range entries {
		dirty[blockOf(obj)] = true
	}
	t.entries = make(map[uint32]ObjectEntry, len(entries))
	t.ramDirty = make(map[uint32]bool)
	for k, v := range entries {
		t.entries[k] = v
	}
	blocks := make([]int, 0, len(dirty))
	for b := range dirty {
		blocks = append(blocks, b)
	}
	sort.Ints(blocks)
	images := make([][]byte, len(blocks))
	for i, b := range blocks {
		images[i] = t.encodeBlockLocked(b)
	}
	t.mu.Unlock()
	for i, b := range blocks {
		if err := t.admin.WriteBlock(b, images[i]); err != nil {
			return err
		}
	}
	return nil
}

// SetRAM updates obj's entry in memory only, marking the object dirty
// for the background flush. The NVRAM variant of the service uses this
// on its critical path; FlushBlocks persists later.
func (t *ObjectTable) SetRAM(obj uint32, e ObjectEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[obj] = e
	t.ramDirty[obj] = true
}

// DeleteRAM clears obj's slot in memory only, marking the object dirty
// for the background flush.
func (t *ObjectTable) DeleteRAM(obj uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.entries, obj)
	t.ramDirty[obj] = true
}

// RAMDirtyObjects returns, in ascending order, every object whose RAM
// state (entry changed, created, or deleted) has not been persisted —
// the authoritative work list for the background flush. Unlike parsing
// the operation log, this covers creations (whose object numbers are
// assigned at apply time) and batch steps.
func (t *ObjectTable) RAMDirtyObjects() []uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint32, 0, len(t.ramDirty))
	for obj := range t.ramDirty {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FlushBlocks writes the blocks containing the given objects, each block
// once (the background NVRAM flush path).
func (t *ObjectTable) FlushBlocks(objs []uint32) error {
	seen := make(map[int]bool)
	var blocks []int
	for _, obj := range objs {
		b := blockOf(obj)
		if !seen[b] {
			seen[b] = true
			blocks = append(blocks, b)
		}
	}
	sort.Ints(blocks)
	for _, b := range blocks {
		t.mu.Lock()
		raw := t.encodeBlockLocked(b)
		t.mu.Unlock()
		if err := t.admin.WriteBlock(b, raw); err != nil {
			return err
		}
	}
	t.mu.Lock()
	for _, obj := range objs {
		delete(t.ramDirty, obj)
	}
	t.mu.Unlock()
	return nil
}

// blockOf returns the admin block holding obj's slot.
func blockOf(obj uint32) int {
	return 1 + int(obj-1)/entriesPerBlock
}

// encodeBlockLocked renders one table block. Must hold t.mu.
func (t *ObjectTable) encodeBlockLocked(block int) []byte {
	raw := make([]byte, vdisk.BlockSize)
	first := uint32((block-1)*entriesPerBlock + 1)
	for s := 0; s < entriesPerBlock; s++ {
		obj := first + uint32(s)
		e, ok := t.entries[obj]
		if !ok {
			continue
		}
		off := s * entrySlot
		raw[off] = 1
		copy(raw[off+1:off+1+capability.Size], e.Cap.Encode(nil))
		binary.BigEndian.PutUint64(raw[off+1+capability.Size:], e.Seq)
		copy(raw[off+1+capability.Size+8:], e.Secret[:])
	}
	return raw
}

func decodeEntry(raw []byte) (ObjectEntry, error) {
	var e ObjectEntry
	c, err := capability.Decode(raw[1 : 1+capability.Size])
	if err != nil {
		return e, err
	}
	e.Cap = c
	e.Seq = binary.BigEndian.Uint64(raw[1+capability.Size:])
	copy(e.Secret[:], raw[1+capability.Size+8:])
	return e, nil
}
