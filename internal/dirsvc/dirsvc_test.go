package dirsvc

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"dirsvc/internal/capability"
	"dirsvc/internal/dirdata"
	"dirsvc/internal/sim"
	"dirsvc/internal/vdisk"
)

func testCap(obj uint32) capability.Capability {
	return capability.Mint(ServicePort("t"), obj, capability.NewSecret([]byte{byte(obj)}))
}

func TestRequestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		req  Request
	}{
		{name: "empty", req: Request{Op: OpGetRoot}},
		{
			name: "append",
			req: Request{
				Op:    OpAppendRow,
				Dir:   testCap(3),
				Name:  "tmpfile",
				Cap:   testCap(9),
				Masks: []capability.Rights{capability.AllRights, capability.RightRead, 0},
			},
		},
		{
			name: "create",
			req: Request{
				Op:        OpCreateDir,
				Columns:   []string{"owner", "group", "other"},
				CheckSeed: []byte{1, 2, 3, 4, 5, 6, 7, 8},
			},
		},
		{
			name: "lookup set",
			req: Request{
				Op:     OpLookupSet,
				Dir:    testCap(1),
				Column: 2,
				Set:    []SetItem{{Name: "a", Cap: testCap(4)}, {Name: "b"}},
			},
		},
		{
			name: "internal",
			req: Request{
				Op:     OpExchange,
				Seq:    991,
				Server: 2,
				Blob:   []byte{0xde, 0xad},
			},
		},
		{
			name: "read with session floor",
			req: Request{
				Op:     OpListDir,
				Dir:    testCap(7),
				Column: 1,
				MinSeq: 1 << 40,
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := DecodeRequest(tt.req.Encode())
			if err != nil {
				t.Fatalf("DecodeRequest: %v", err)
			}
			if !reflect.DeepEqual(*got, tt.req) {
				t.Fatalf("round trip:\n got %+v\nwant %+v", got, tt.req)
			}
		})
	}
}

func TestReplyEncodeDecodeRoundTrip(t *testing.T) {
	reply := Reply{
		Status: StatusOK,
		Cap:    testCap(7),
		Rows: []dirdata.Row{
			{Name: "x", Cap: testCap(1), ColMasks: []capability.Rights{1, 2, 3}},
		},
		Caps:   []capability.Capability{testCap(2), {}},
		Seq:    17,
		ObjSeq: 9,
		Blob:   []byte("state"),
	}
	got, err := DecodeReply(reply.Encode())
	if err != nil {
		t.Fatalf("DecodeReply: %v", err)
	}
	if !reflect.DeepEqual(*got, reply) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, reply)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeRequest([]byte{1, 2}); err == nil {
		t.Fatal("DecodeRequest of garbage succeeded")
	}
	if _, err := DecodeReply(nil); err == nil {
		t.Fatal("DecodeReply of nil succeeded")
	}
}

func TestStatusErrRoundTrip(t *testing.T) {
	statuses := []Status{
		StatusOK, StatusNotFound, StatusExists, StatusBadCapability,
		StatusNoRights, StatusNoMajority, StatusConflict, StatusBadRequest, StatusError,
	}
	for _, s := range statuses {
		if got := StatusOf(s.Err()); got != s {
			t.Fatalf("StatusOf(%v.Err()) = %v", s, got)
		}
	}
	if StatusOf(dirdata.ErrNotFound) != StatusNotFound {
		t.Fatal("dirdata.ErrNotFound not mapped")
	}
	if StatusOf(dirdata.ErrExists) != StatusExists {
		t.Fatal("dirdata.ErrExists not mapped")
	}
}

func TestCommitBlockRoundTrip(t *testing.T) {
	c := &CommitBlock{Up: []bool{true, true, false}, Seq: 42, Recovering: true}
	got, err := DecodeCommitBlock(c.Encode(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip: got %+v want %+v", got, c)
	}
	if got.UpCount() != 2 {
		t.Fatalf("UpCount = %d", got.UpCount())
	}
	if s := got.UpServers(); len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Fatalf("UpServers = %v", s)
	}
}

func TestCommitBlockZeroDecodesFresh(t *testing.T) {
	got, err := DecodeCommitBlock(make([]byte, vdisk.BlockSize), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 0 || got.Recovering || got.UpCount() != 0 || len(got.Up) != 3 {
		t.Fatalf("fresh block = %+v", got)
	}
}

func TestCommitBlockDiskRoundTrip(t *testing.T) {
	disk := vdisk.New(sim.FastModel(), 64)
	c := &CommitBlock{Up: []bool{true, false, true}, Seq: 7}
	if err := c.Write(disk); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCommitBlock(disk, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("disk round trip: %+v vs %+v", got, c)
	}
}

func newTestTable(t *testing.T) (*ObjectTable, *vdisk.Disk) {
	t.Helper()
	disk := vdisk.New(sim.FastModel(), 128)
	table, err := OpenObjectTable(disk)
	if err != nil {
		t.Fatal(err)
	}
	return table, disk
}

func TestObjectTableSetGetDelete(t *testing.T) {
	table, _ := newTestTable(t)
	e := ObjectEntry{Cap: testCap(5), Seq: 9, Secret: capability.NewSecret([]byte("s"))}
	if err := table.Set(5, e); err != nil {
		t.Fatal(err)
	}
	got, ok := table.Get(5)
	if !ok || got != e {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if table.MaxSeq() != 9 {
		t.Fatalf("MaxSeq = %d", table.MaxSeq())
	}
	if err := table.Delete(5); err != nil {
		t.Fatal(err)
	}
	if _, ok := table.Get(5); ok {
		t.Fatal("entry survives Delete")
	}
}

func TestObjectTableNextFreeIsDeterministic(t *testing.T) {
	table, _ := newTestTable(t)
	if got := table.NextFree(); got != 1 {
		t.Fatalf("NextFree on empty = %d", got)
	}
	_ = table.Set(1, ObjectEntry{Seq: 1})
	_ = table.Set(2, ObjectEntry{Seq: 1})
	_ = table.Set(4, ObjectEntry{Seq: 1})
	if got := table.NextFree(); got != 3 {
		t.Fatalf("NextFree with hole = %d", got)
	}
}

func TestShardServiceNaming(t *testing.T) {
	// Shard 0 keeps the base name — wire-compatible with the unsharded
	// service — while other shards get their own (and thus their own
	// ports); single-shard deployments are the identity.
	if got := ShardService("svc", 0, 1); got != "svc" {
		t.Fatalf("ShardService(svc,0,1) = %q", got)
	}
	if got := ShardService("svc", 0, 4); got != "svc" {
		t.Fatalf("ShardService(svc,0,4) = %q", got)
	}
	got1, got2 := ShardService("svc", 1, 4), ShardService("svc", 2, 4)
	if got1 == "svc" || got2 == "svc" || got1 == got2 {
		t.Fatalf("shard names not distinct: %q, %q", got1, got2)
	}
	if ServicePort(got1) == ServicePort(got2) || ServicePort(got1) == ServicePort("svc") {
		t.Fatal("shard service ports collide")
	}
}

func TestObjectTableShardAllocation(t *testing.T) {
	// Shard 2 of 4 allocates only numbers ≡ 3 (mod 4): the residue class
	// that dir.ShardOf routes back to shard 2.
	table, _ := newTestTable(t)
	table.ConfigureShard(2, 4)
	if got := table.NextFree(); got != 3 {
		t.Fatalf("NextFree = %d, want 3", got)
	}
	_ = table.Set(3, ObjectEntry{Seq: 1})
	if got := table.NextFree(); got != 7 {
		t.Fatalf("NextFree after 3 = %d, want 7", got)
	}
	// The shard's own root (object 1, outside its residue class) does not
	// disturb allocation.
	_ = table.Set(1, ObjectEntry{Seq: 1})
	if got := table.NextFree(); got != 7 {
		t.Fatalf("NextFree with root = %d, want 7", got)
	}
	// Batch allocation skips both used and reserved numbers, staying in
	// the residue class.
	if got := table.NextFreeExcept(map[uint32]bool{7: true}); got != 11 {
		t.Fatalf("NextFreeExcept = %d, want 11", got)
	}

	// Shard 0 of 4 owns 1, 5, 9, ... and the root occupies 1.
	t0, _ := newTestTable(t)
	t0.ConfigureShard(0, 4)
	_ = t0.Set(1, ObjectEntry{Seq: 1})
	if got := t0.NextFree(); got != 5 {
		t.Fatalf("shard-0 NextFree = %d, want 5", got)
	}

	// ConfigureShard with one shard is the identity.
	t1, _ := newTestTable(t)
	t1.ConfigureShard(0, 1)
	if got := t1.NextFree(); got != 1 {
		t.Fatalf("unsharded NextFree = %d, want 1", got)
	}
}

func TestObjectTablePersistsAcrossOpen(t *testing.T) {
	table, disk := newTestTable(t)
	e1 := ObjectEntry{Cap: testCap(1), Seq: 3, Secret: capability.NewSecret([]byte("a"))}
	e2 := ObjectEntry{Cap: testCap(40), Seq: 8, Secret: capability.NewSecret([]byte("b"))}
	if err := table.Set(1, e1); err != nil {
		t.Fatal(err)
	}
	if err := table.Set(40, e2); err != nil { // second block
		t.Fatal(err)
	}
	reopened, err := OpenObjectTable(disk)
	if err != nil {
		t.Fatal(err)
	}
	for obj, want := range map[uint32]ObjectEntry{1: e1, 40: e2} {
		got, ok := reopened.Get(obj)
		if !ok || got != want {
			t.Fatalf("object %d after reopen: %+v, %v", obj, got, ok)
		}
	}
	if objs := reopened.Objects(); len(objs) != 2 || objs[0] != 1 || objs[1] != 40 {
		t.Fatalf("Objects = %v", objs)
	}
}

func TestObjectTableSetCostsOneWrite(t *testing.T) {
	table, disk := newTestTable(t)
	before := disk.Stats().Writes
	if err := table.Set(3, ObjectEntry{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if got := disk.Stats().Writes - before; got != 1 {
		t.Fatalf("Set cost %d writes, want 1 (the paper's single object-table write)", got)
	}
}

func TestObjectTableReplaceAll(t *testing.T) {
	table, disk := newTestTable(t)
	_ = table.Set(1, ObjectEntry{Seq: 1})
	_ = table.Set(50, ObjectEntry{Seq: 2})
	newEntries := map[uint32]ObjectEntry{
		2: {Cap: testCap(2), Seq: 10, Secret: capability.NewSecret([]byte("x"))},
	}
	newStubs := map[uint32]StubEntry{
		4: {Target: 1, Seq: 12},
	}
	if err := table.ReplaceAll(newEntries, newStubs); err != nil {
		t.Fatal(err)
	}
	if _, ok := table.Get(1); ok {
		t.Fatal("stale entry survived ReplaceAll")
	}
	got, ok := table.Get(2)
	if !ok || got.Seq != 10 {
		t.Fatalf("replaced entry: %+v, %v", got, ok)
	}
	if st, ok := table.Stub(4); !ok || st.Target != 1 || st.Seq != 12 {
		t.Fatalf("replaced stub: %+v, %v", st, ok)
	}
	reopened, err := OpenObjectTable(disk)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reopened.All(), newEntries) {
		t.Fatalf("after reopen: %+v", reopened.All())
	}
	if st, ok := reopened.Stub(4); !ok || st.Target != 1 || st.Seq != 12 {
		t.Fatalf("stub after reopen: %+v, %v", st, ok)
	}
}

func TestQuickCommitBlockRoundTrip(t *testing.T) {
	f := func(up [5]bool, seq uint64, rec bool) bool {
		c := &CommitBlock{Up: up[:], Seq: seq, Recovering: rec}
		got, err := DecodeCommitBlock(c.Encode(), 5)
		return err == nil && reflect.DeepEqual(got, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(op uint8, name string, seed []byte, seq uint64, col uint16) bool {
		if len(name) > 255 {
			name = name[:255]
		}
		if len(seed) == 0 {
			seed = nil // the wire format canonicalizes empty to absent
		}
		req := Request{
			Op:        OpCode(op),
			Dir:       testCap(1),
			Name:      name,
			CheckSeed: seed,
			Seq:       seq,
			Column:    int(col),
		}
		got, err := DecodeRequest(req.Encode())
		return err == nil && reflect.DeepEqual(*got, req)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNVLogAppendReplay(t *testing.T) {
	nv := vdisk.NewNVRAM(sim.FastModel(), vdisk.DefaultNVRAMSize)
	log, err := OpenNVLog(nv)
	if err != nil {
		t.Fatal(err)
	}
	req1 := &Request{Op: OpAppendRow, Dir: testCap(1), Name: "a", Cap: testCap(5),
		Masks: []capability.Rights{capability.AllRights, 0, 0}}
	req2 := &Request{Op: OpChmodRow, Dir: testCap(1), Name: "a",
		Masks: []capability.Rights{capability.RightRead, 0, 0}}
	if _, err := log.Append(req1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(req2, 11); err != nil {
		t.Fatal(err)
	}

	// Crash: reopen from the same NVRAM.
	log2, err := OpenNVLog(nv)
	if err != nil {
		t.Fatal(err)
	}
	reqs, seqs, err := log2.Live()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 || seqs[0] != 10 || seqs[1] != 11 {
		t.Fatalf("replayed %d records, seqs %v", len(reqs), seqs)
	}
	if reqs[0].Op != OpAppendRow || reqs[1].Op != OpChmodRow {
		t.Fatalf("replayed ops %v, %v", reqs[0].Op, reqs[1].Op)
	}
	if log2.MaxSeq() != 11 {
		t.Fatalf("MaxSeq = %d", log2.MaxSeq())
	}
}

func TestNVLogTmpOptimizationCancelsPairs(t *testing.T) {
	nv := vdisk.NewNVRAM(sim.FastModel(), vdisk.DefaultNVRAMSize)
	log, err := OpenNVLog(nv)
	if err != nil {
		t.Fatal(err)
	}
	appendReq := &Request{Op: OpAppendRow, Dir: testCap(1), Name: "tmp001", Cap: testCap(5),
		Masks: []capability.Rights{capability.AllRights, 0, 0}}
	deleteReq := &Request{Op: OpDeleteRow, Dir: testCap(1), Name: "tmp001"}
	if _, err := log.Append(appendReq, 1); err != nil {
		t.Fatal(err)
	}
	cancelled, err := log.Append(deleteReq, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !cancelled {
		t.Fatal("append+delete pair not cancelled")
	}
	if log.Len() != 0 {
		t.Fatalf("log has %d live records after cancellation", log.Len())
	}
	if len(log.DirtyObjects()) != 0 {
		t.Fatalf("dirty objects after cancellation: %v", log.DirtyObjects())
	}
	// maxSeq still reflects that updates happened (recovery correctness).
	if log.MaxSeq() != 2 {
		t.Fatalf("MaxSeq = %d, want 2", log.MaxSeq())
	}
}

func TestNVLogNoCancelAcrossInterveningOp(t *testing.T) {
	nv := vdisk.NewNVRAM(sim.FastModel(), vdisk.DefaultNVRAMSize)
	log, _ := OpenNVLog(nv)
	masks := []capability.Rights{capability.AllRights, 0, 0}
	_, _ = log.Append(&Request{Op: OpAppendRow, Dir: testCap(1), Name: "f", Cap: testCap(5), Masks: masks}, 1)
	_, _ = log.Append(&Request{Op: OpChmodRow, Dir: testCap(1), Name: "f", Masks: masks}, 2)
	cancelled, err := log.Append(&Request{Op: OpDeleteRow, Dir: testCap(1), Name: "f"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cancelled {
		t.Fatal("cancelled across an intervening chmod")
	}
	if log.Len() != 3 {
		t.Fatalf("live records = %d, want 3", log.Len())
	}
}

func TestNVLogNoCancelDifferentDirOrName(t *testing.T) {
	nv := vdisk.NewNVRAM(sim.FastModel(), vdisk.DefaultNVRAMSize)
	log, _ := OpenNVLog(nv)
	masks := []capability.Rights{capability.AllRights, 0, 0}
	_, _ = log.Append(&Request{Op: OpAppendRow, Dir: testCap(1), Name: "f", Cap: testCap(5), Masks: masks}, 1)
	if c, _ := log.Append(&Request{Op: OpDeleteRow, Dir: testCap(2), Name: "f"}, 2); c {
		t.Fatal("cancelled across directories")
	}
	if c, _ := log.Append(&Request{Op: OpDeleteRow, Dir: testCap(1), Name: "g"}, 3); c {
		t.Fatal("cancelled across names")
	}
}

func TestNVLogFull(t *testing.T) {
	nv := vdisk.NewNVRAM(sim.FastModel(), 256)
	log, err := OpenNVLog(nv)
	if err != nil {
		t.Fatal(err)
	}
	big := &Request{Op: OpAppendRow, Dir: testCap(1), Name: "padding-name-to-fill-nvram",
		Cap: testCap(5), Masks: []capability.Rights{capability.AllRights, 0, 0}}
	var sawFull bool
	for i := 0; i < 10; i++ {
		if _, err := log.Append(big, uint64(i)); err != nil {
			if !errors.Is(err, ErrLogFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("log never reported full")
	}
}

func TestNVLogClearResets(t *testing.T) {
	nv := vdisk.NewNVRAM(sim.FastModel(), vdisk.DefaultNVRAMSize)
	log, _ := OpenNVLog(nv)
	masks := []capability.Rights{capability.AllRights, 0, 0}
	_, _ = log.Append(&Request{Op: OpAppendRow, Dir: testCap(1), Name: "f", Cap: testCap(5), Masks: masks}, 5)
	if err := log.Clear(); err != nil {
		t.Fatal(err)
	}
	if log.Len() != 0 || log.NeedsFlush() {
		t.Fatal("log not empty after Clear")
	}
	if log.MaxSeq() != 5 {
		t.Fatalf("MaxSeq lost by Clear: %d", log.MaxSeq())
	}
	// And reopen still sees the cleared state.
	log2, err := OpenNVLog(nv)
	if err != nil {
		t.Fatal(err)
	}
	if log2.Len() != 0 || log2.MaxSeq() != 5 {
		t.Fatalf("reopened: len=%d maxSeq=%d", log2.Len(), log2.MaxSeq())
	}
}
