package dirsvc

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"dirsvc/internal/sim"
	"dirsvc/internal/vdisk"
)

func testEngineDisk(t *testing.T) *vdisk.Disk {
	t.Helper()
	return vdisk.New(sim.FastModel(), 256)
}

func TestEngineCheckpointRoundTrip(t *testing.T) {
	disk := testEngineDisk(t)
	e, err := OpenEngine(disk)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Checkpoint(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("fresh engine checkpoint err = %v, want ErrNoCheckpoint", err)
	}
	blob := bytes.Repeat([]byte("checkpoint-payload-"), 100) // spans blocks
	if err := e.WriteCheckpoint(42, blob); err != nil {
		t.Fatal(err)
	}
	seq, got, err := e.Checkpoint()
	if err != nil || seq != 42 || !bytes.Equal(got, blob) {
		t.Fatalf("checkpoint = seq %d, %d bytes, err %v", seq, len(got), err)
	}

	// Reopen (simulated restart) and read it back.
	e2, err := OpenEngine(disk)
	if err != nil {
		t.Fatal(err)
	}
	seq, got, err = e2.Checkpoint()
	if err != nil || seq != 42 || !bytes.Equal(got, blob) {
		t.Fatalf("reopened checkpoint = seq %d, %d bytes, err %v", seq, len(got), err)
	}
	if e2.MaxSeq() != 42 {
		t.Fatalf("MaxSeq = %d, want 42", e2.MaxSeq())
	}
}

func TestEngineLogSuffixAndTruncate(t *testing.T) {
	disk := testEngineDisk(t)
	e, err := OpenEngine(disk)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := e.AppendLog(seq, []byte(fmt.Sprintf("rec-%d", seq))); err != nil {
			t.Fatal(err)
		}
	}
	e2, err := OpenEngine(disk)
	if err != nil {
		t.Fatal(err)
	}
	recs := e2.LogSuffix(2)
	if len(recs) != 3 || recs[0].Seq != 3 || string(recs[2].Payload) != "rec-5" {
		t.Fatalf("LogSuffix(2) = %+v", recs)
	}

	// A checkpoint truncates the log: records up to the checkpoint seq
	// vanish, and a stale-generation record left on disk is ignored.
	if err := e2.WriteCheckpoint(5, []byte("ckpt")); err != nil {
		t.Fatal(err)
	}
	if err := e2.AppendLog(6, []byte("rec-6")); err != nil {
		t.Fatal(err)
	}
	e3, err := OpenEngine(disk)
	if err != nil {
		t.Fatal(err)
	}
	recs = e3.LogSuffix(e3.CheckpointSeq())
	if len(recs) != 1 || recs[0].Seq != 6 {
		t.Fatalf("post-checkpoint LogSuffix = %+v", recs)
	}
}

func TestEngineFullLog(t *testing.T) {
	disk := testEngineDisk(t)
	e, err := OpenEngine(disk)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 4*vdisk.BlockSize)
	var seq uint64
	for {
		seq++
		if err := e.AppendLog(seq, big); err != nil {
			if !errors.Is(err, ErrEngineFull) {
				t.Fatal(err)
			}
			break
		}
		if seq > 1000 {
			t.Fatal("log never filled")
		}
	}
	if !e.NeedsCheckpoint() {
		t.Fatal("full log does not report NeedsCheckpoint")
	}
	// Checkpointing opens a fresh generation; appends work again.
	if err := e.WriteCheckpoint(seq, []byte("ckpt")); err != nil {
		t.Fatal(err)
	}
	if err := e.AppendLog(seq+1, big); err != nil {
		t.Fatal(err)
	}
}

// faultStore injects one write failure: the Nth write (1-based, counting
// WriteBlock/WriteBlockSeq/WriteRun/WriteRunSeq calls) and every write
// after it fail, simulating a crash mid-sequence — rockyardkv's
// flush_fault_test pattern.
type faultStore struct {
	vdisk.Storage
	writes  int
	failAt  int
	tripped bool
}

var errInjected = errors.New("injected crash")

func (f *faultStore) note() error {
	f.writes++
	if f.failAt > 0 && f.writes >= f.failAt {
		f.tripped = true
		return errInjected
	}
	return nil
}

func (f *faultStore) WriteBlock(i int, data []byte) error {
	if err := f.note(); err != nil {
		return err
	}
	return f.Storage.WriteBlock(i, data)
}

func (f *faultStore) WriteBlockSeq(i int, data []byte) error {
	if err := f.note(); err != nil {
		return err
	}
	return f.Storage.WriteBlockSeq(i, data)
}

func (f *faultStore) WriteRun(start int, data []byte) error {
	if err := f.note(); err != nil {
		return err
	}
	return f.Storage.WriteRun(start, data)
}

func (f *faultStore) WriteRunSeq(start int, data []byte) error {
	if err := f.note(); err != nil {
		return err
	}
	return f.Storage.WriteRunSeq(start, data)
}

// TestEngineCrashAtEveryStep drives a fixed workload — appends, a
// checkpoint, more appends, a second checkpoint — killing the disk at
// write N for every N, then reopens the engine and checks the recovered
// state is one of the legal prefixes: the engine never recovers a state
// that mixes a new checkpoint with an old log or loses an acknowledged
// record.
func TestEngineCrashAtEveryStep(t *testing.T) {
	// Workload: append 1..3, checkpoint@3, append 4..6, checkpoint@6.
	workload := func(e *Engine) error {
		for seq := uint64(1); seq <= 3; seq++ {
			if err := e.AppendLog(seq, []byte(fmt.Sprintf("rec-%d", seq))); err != nil {
				return err
			}
		}
		if err := e.WriteCheckpoint(3, []byte("ckpt-3")); err != nil {
			return err
		}
		for seq := uint64(4); seq <= 6; seq++ {
			if err := e.AppendLog(seq, []byte(fmt.Sprintf("rec-%d", seq))); err != nil {
				return err
			}
		}
		return e.WriteCheckpoint(6, []byte("ckpt-6"))
	}

	for failAt := 1; ; failAt++ {
		disk := testEngineDisk(t)
		fs := &faultStore{Storage: disk, failAt: failAt}
		e, err := OpenEngine(fs)
		if err != nil {
			// The failure hit the initial manifest format; a reopen on the
			// raw disk must still come up empty and usable.
			if !errors.Is(err, errInjected) {
				t.Fatalf("failAt=%d: open: %v", failAt, err)
			}
		} else if err := workload(e); err != nil && !errors.Is(err, errInjected) {
			t.Fatalf("failAt=%d: workload: %v", failAt, err)
		} else if err == nil {
			// The whole workload survived: this failAt is beyond the last
			// write; stop after verifying the final state.
			re, err := OpenEngine(disk)
			if err != nil {
				t.Fatalf("failAt=%d: reopen: %v", failAt, err)
			}
			if seq, blob, err := re.Checkpoint(); err != nil || seq != 6 || string(blob) != "ckpt-6" {
				t.Fatalf("failAt=%d: final checkpoint seq %d err %v", failAt, seq, err)
			}
			if got := re.LogSuffix(0); len(got) != 0 {
				t.Fatalf("failAt=%d: final log not empty: %+v", failAt, got)
			}
			return
		}

		// Crash happened: recover on the raw (no longer failing) disk.
		re, err := OpenEngine(disk)
		if err != nil {
			t.Fatalf("failAt=%d: recovery open: %v", failAt, err)
		}
		ckptSeq := uint64(0)
		if seq, blob, cerr := re.Checkpoint(); cerr == nil {
			ckptSeq = seq
			want := fmt.Sprintf("ckpt-%d", seq)
			if string(blob) != want {
				t.Fatalf("failAt=%d: checkpoint %d payload %q", failAt, seq, blob)
			}
			if seq != 3 && seq != 6 {
				t.Fatalf("failAt=%d: impossible checkpoint seq %d", failAt, seq)
			}
		} else if !errors.Is(cerr, ErrNoCheckpoint) {
			t.Fatalf("failAt=%d: checkpoint read: %v", failAt, cerr)
		}
		// The recovered log must be a contiguous run starting right after
		// the checkpoint: checkpoint + suffix covers a prefix of the
		// workload with nothing missing in the middle.
		last := ckptSeq
		for _, rec := range re.LogSuffix(ckptSeq) {
			if rec.Seq != last+1 {
				t.Fatalf("failAt=%d: log gap after %d: got seq %d", failAt, last, rec.Seq)
			}
			if want := fmt.Sprintf("rec-%d", rec.Seq); string(rec.Payload) != want {
				t.Fatalf("failAt=%d: record %d payload %q", failAt, rec.Seq, rec.Payload)
			}
			last = rec.Seq
		}
		if last > 6 {
			t.Fatalf("failAt=%d: recovered beyond the workload (%d)", failAt, last)
		}
	}
}

func TestEngineViewFollowsPrimary(t *testing.T) {
	disk := testEngineDisk(t)
	e, err := OpenEngine(disk)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewEngineView(disk)
	if err != nil {
		t.Fatal(err)
	}
	m, err := v.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Checkpoint(m); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("view checkpoint before first flush: %v", err)
	}
	if err := e.WriteCheckpoint(7, []byte("view-ckpt")); err != nil {
		t.Fatal(err)
	}
	if err := e.AppendLog(8, []byte("after")); err != nil {
		t.Fatal(err)
	}
	m, err = v.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := v.Checkpoint(m)
	if err != nil || string(blob) != "view-ckpt" {
		t.Fatalf("view checkpoint = %q, %v", blob, err)
	}
	recs, err := v.LogSince(m, m.CkptSeq)
	if err != nil || len(recs) != 1 || recs[0].Seq != 8 {
		t.Fatalf("view log = %+v, %v", recs, err)
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	snap := &Snapshot{
		AppliedSeq: 11,
		CommitSeq:  9,
		Topo:       &TopoState{Epoch: 2, Shard: 1, Base: 1, Total: 4, AllocFloor: 30},
		Objects: []SnapObject{
			{Object: 1, Seq: 5, Image: []byte("img-1")},
			{Object: 7, Seq: 11, Image: []byte("img-7")},
		},
		Stubs:   []SnapStub{{Object: 3, Target: 2, Seq: 8}},
		InDoubt: []SnapTx{{Seq: 10, Raw: []byte("prep")}},
		Decided: []DecidedTx{{ID: TxID{1, 2}, Commit: true, Seq: 6, Results: []byte("res")}},
	}
	got, err := DecodeSnapshot(snap.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.AppliedSeq != 11 || got.CommitSeq != 9 || got.Topo == nil || got.Topo.Epoch != 2 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Objects) != 2 || got.Objects[1].Object != 7 || string(got.Objects[1].Image) != "img-7" {
		t.Fatalf("objects mismatch: %+v", got.Objects)
	}
	if len(got.Stubs) != 1 || got.Stubs[0].Target != 2 {
		t.Fatalf("stubs mismatch: %+v", got.Stubs)
	}
	if len(got.InDoubt) != 1 || got.InDoubt[0].Seq != 10 {
		t.Fatalf("in-doubt mismatch: %+v", got.InDoubt)
	}
	if len(got.Decided) != 1 || !got.Decided[0].Commit || got.Decided[0].Seq != 6 {
		t.Fatalf("decided mismatch: %+v", got.Decided)
	}
	if got.MaxSeq() != 11 {
		t.Fatalf("MaxSeq = %d", got.MaxSeq())
	}
	if _, err := DecodeSnapshot([]byte("garbage-blob")); err == nil {
		t.Fatal("garbage decoded")
	}
}
