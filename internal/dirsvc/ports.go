package dirsvc

import (
	"fmt"

	"dirsvc/internal/capability"
)

// ServicePort returns the public port of a directory service instance.
// All directory servers of one service listen here; clients locate the
// service by broadcasting on it.
func ServicePort(service string) capability.Port {
	return capability.PortFromString("dir:" + service)
}

// ShardService names shard s of a G-shard deployment. Shard 0 keeps the
// base service name, so a single-shard deployment — and shard 0 of any
// deployment — stays wire-compatible with the unsharded service; every
// other shard gets its own name, and with it its own service, group,
// recovery, and Bullet ports: a full independent instance of the
// paper's protocol.
func ShardService(service string, shard, shards int) string {
	if shards <= 1 || shard == 0 {
		return service
	}
	return fmt.Sprintf("%s~s%d", service, shard)
}

// BulletPort returns the private port of directory server i's own Bullet
// server (paper Fig. 3: each directory server only uses one Bullet
// server).
func BulletPort(service string, server int) capability.Port {
	return capability.PortFromString(fmt.Sprintf("bullet:%s:%d", service, server))
}

// GroupPort returns the internal group-communication port of the service.
func GroupPort(service string) capability.Port {
	return capability.PortFromString("group:" + service)
}

// RecoveryPort returns the port used for server-to-server recovery RPCs
// (mourned-set exchange and state transfer, Fig. 6) of server i.
func RecoveryPort(service string, server int) capability.Port {
	return capability.PortFromString(fmt.Sprintf("recover:%s:%d", service, server))
}

// PublicBulletPort returns the port of the public file service used by
// clients for their own files (the paper's tmp-file experiment).
func PublicBulletPort(service string) capability.Port {
	return capability.PortFromString("bullet-public:" + service)
}
