package dirsvc

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"dirsvc/internal/rpc"
)

// This file holds the two-phase-commit machinery shared by every
// backend: the OpPrepare/OpDecide wire payloads and the prepared-
// transaction table that turns one replica group into a single logical
// 2PC participant. A cross-shard batch is split by the coordinating
// client into one OpPrepare per home shard; each shard stages the steps
// in a batch overlay (nothing visible), locks the touched objects, and
// votes. The coordinator then drives OpDecide(commit|abort); commit
// writes the staged overlay through under the decide's own sequence
// number, abort discards it. Both ops ride the backend's normal update
// path, so the prepared state is replicated (group kinds), mirrored via
// intentions (rpc kind), or trivially local (local kind).

// TxVersion is the wire version of the OpPrepare/OpDecide payloads.
const TxVersion = 1

// TxID names one distributed transaction, minted by the coordinating
// client. Replicas only ever compare it for equality.
type TxID [16]byte

// NewTxID mints a fresh transaction id.
func NewTxID() TxID {
	var id TxID
	if _, err := rand.Read(id[:]); err != nil {
		panic("dirsvc: txid entropy: " + err.Error())
	}
	return id
}

// String implements fmt.Stringer (diagnostics).
func (id TxID) String() string { return hex.EncodeToString(id[:]) }

// Prepare is the decoded OpPrepare payload: the transaction identity,
// the participant set (so an orphaned shard can find its resolver), and
// this shard's slice of the batch.
type Prepare struct {
	ID TxID
	// Resolver is the shard whose replica group ratifies the decision:
	// the coordinator's commit becomes final only when this shard's
	// stream applies it, and in-doubt participants query it.
	Resolver int
	// Participants lists every shard the transaction spans (sorted).
	Participants []int
	// Steps is the EncodeBatchSteps blob of this shard's steps.
	Steps []byte
}

// EncodePrepare serializes a prepare payload.
func EncodePrepare(p *Prepare) []byte {
	w := newWriter()
	w.u8(TxVersion)
	w.buf = append(w.buf, p.ID[:]...)
	w.u32(uint32(p.Resolver))
	w.u16(uint16(len(p.Participants)))
	for _, s := range p.Participants {
		w.u32(uint32(s))
	}
	w.bytes(p.Steps)
	return w.buf
}

// DecodePrepare parses an OpPrepare payload.
func DecodePrepare(blob []byte) (*Prepare, error) {
	if len(blob) < 1 {
		return nil, ErrBadRequest
	}
	if blob[0] != TxVersion {
		return nil, fmt.Errorf("unsupported tx version %d: %w", blob[0], ErrBadRequest)
	}
	rd := &byteReader{buf: blob, off: 1}
	p := &Prepare{}
	copy(p.ID[:], rd.take(len(p.ID)))
	p.Resolver = int(rd.u32())
	n := int(rd.u16())
	if rd.failed || n == 0 || n > 4096 {
		return nil, ErrBadRequest
	}
	for i := 0; i < n; i++ {
		p.Participants = append(p.Participants, int(rd.u32()))
	}
	p.Steps = rd.lenBytes()
	if rd.failed || rd.off != len(blob) || len(p.Steps) == 0 {
		return nil, ErrBadRequest
	}
	return p, nil
}

// EnsurePrepareSeeds fills the CheckSeed of every create-dir step inside
// an OpPrepare request, re-encoding the payload when anything changed —
// the OpPrepare counterpart of EnsureBatchSeeds, run by the initiating
// server before the prepare is replicated so every replica mints
// identical capabilities (§3.1).
func EnsurePrepareSeeds(req *Request, seed func(step int) []byte) error {
	p, err := DecodePrepare(req.Blob)
	if err != nil {
		return err
	}
	steps, err := DecodeBatchSteps(p.Steps)
	if err != nil {
		return err
	}
	if EnsureBatchSeeds(steps, seed) {
		p.Steps = EncodeBatchSteps(steps)
		req.Blob = EncodePrepare(p)
	}
	return nil
}

// Decide is the decoded OpDecide payload.
type Decide struct {
	ID     TxID
	Commit bool
}

// EncodeDecide serializes a decide payload.
func EncodeDecide(d *Decide) []byte {
	w := newWriter()
	w.u8(TxVersion)
	w.buf = append(w.buf, d.ID[:]...)
	if d.Commit {
		w.u8(1)
	} else {
		w.u8(0)
	}
	return w.buf
}

// DecodeDecide parses an OpDecide payload.
func DecodeDecide(blob []byte) (*Decide, error) {
	if len(blob) != 1+len(TxID{})+1 {
		return nil, ErrBadRequest
	}
	if blob[0] != TxVersion {
		return nil, fmt.Errorf("unsupported tx version %d: %w", blob[0], ErrBadRequest)
	}
	d := &Decide{}
	copy(d.ID[:], blob[1:1+len(d.ID)])
	d.Commit = blob[1+len(d.ID)] == 1
	return d, nil
}

// TxState is a participant's knowledge of one transaction, answered to
// OpTxQuery (the decision-query read).
type TxState uint8

// Transaction states. TxUnknown from the resolver shard means "presume
// abort": the resolver either never prepared (so the coordinator can
// never have decided commit) or resolved the transaction as an abort
// long enough ago to have forgotten it.
const (
	TxUnknown TxState = iota
	TxPrepared
	TxCommitted
	TxAborted
)

// String implements fmt.Stringer.
func (s TxState) String() string {
	switch s {
	case TxPrepared:
		return "prepared"
	case TxCommitted:
		return "committed"
	case TxAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// ResolveOrphanTxs performs one round of participant-side coordinator
// recovery over the applier's in-doubt transactions: for each one past
// the presumed-abort horizon, the transaction's resolver shard aborts
// it outright (decide is expected to route through the backend's
// ordinary, totally-ordered update path, so a late client commit loses
// cleanly), and every other shard queries the resolver and applies its
// answer. TxUnknown — "presume abort" — is only acted on after two
// consecutive strikes, so a single answer from an unusually placed
// replica cannot abort a transaction the resolver is about to commit;
// strikes carries that count between rounds and is pruned here.
func ResolveOrphanTxs(
	a *Applier,
	shard, shards int,
	timeout time.Duration,
	strikes map[TxID]int,
	decide func(id TxID, commit bool),
	query func(resolver int, id TxID) TxState,
) {
	inDoubt := a.InDoubtTxs()
	live := make(map[TxID]bool, len(inDoubt))
	for _, tx := range inDoubt {
		live[tx.ID] = true
	}
	for id := range strikes {
		if !live[id] {
			delete(strikes, id)
		}
	}
	for _, tx := range inDoubt {
		if tx.Age < timeout {
			continue
		}
		if tx.Resolver == shard || shards <= 1 {
			decide(tx.ID, false)
			continue
		}
		switch query(tx.Resolver, tx.ID) {
		case TxCommitted:
			delete(strikes, tx.ID)
			decide(tx.ID, true)
		case TxAborted:
			delete(strikes, tx.ID)
			decide(tx.ID, false)
		case TxUnknown:
			// The resolver either never prepared (the coordinator died
			// before reaching it, so no commit can ever have been decided)
			// or resolved an abort long ago. Demand a second opinion a
			// tick later before presuming abort.
			strikes[tx.ID]++
			if strikes[tx.ID] >= 2 {
				delete(strikes, tx.ID)
				decide(tx.ID, false)
			}
		default: // TxPrepared: the resolver's own timeout will settle it
			delete(strikes, tx.ID)
		}
	}
}

// QueryTxState asks one shard of a deployment how a transaction ended
// (the decision query). Unreachable or malformed answers map to
// TxPrepared — "keep waiting" — never to an abort.
func QueryTxState(rc *rpc.Client, baseService string, shards, resolver int, id TxID) TxState {
	if baseService == "" {
		return TxPrepared
	}
	port := ServicePort(ShardService(baseService, resolver, shards))
	req := &Request{Op: OpTxQuery, Blob: id[:]}
	raw, err := rc.Trans(port, req.Encode())
	if err != nil {
		return TxPrepared
	}
	reply, err := DecodeReply(raw)
	if err != nil || reply.Status != StatusOK || len(reply.Blob) != 1 {
		return TxPrepared
	}
	return TxState(reply.Blob[0])
}

// maxDecided bounds the decided-transaction memory per replica; the
// oldest outcomes are forgotten first (presumed abort covers forgotten
// aborts; a forgotten commit is only reachable through the documented
// double-fault window).
const maxDecided = 4096

// preparedTx is one staged, undecided transaction: the validated batch
// overlay, the per-object locks, and everything needed to re-log or
// ship the prepare record during recovery.
type preparedTx struct {
	id           TxID
	req          *Request // the original OpPrepare request (re-log, bundles)
	seq          uint64   // sequence number the prepare applied under
	resolver     int
	participants []int
	overlay      *batchOverlay
	results      []BatchStepResult
	objs         []uint32 // locked objects (targets plus staged creations)
	preparedAt   time.Time
}

// decidedTx is a remembered outcome, kept so decide retries are
// idempotent and orphaned peers can query the resolution.
type decidedTx struct {
	commit    bool
	seq       uint64
	results   []byte    // encoded BatchStepResults (commit only)
	decidedAt time.Time // when this replica learned the outcome
}

// InDoubtTx is a snapshot of one prepared-but-undecided transaction
// (server resolution loops, recovery bundles).
type InDoubtTx struct {
	ID           TxID
	Req          *Request
	Seq          uint64
	Resolver     int
	Participants []int
	Age          time.Duration
}

// DecidedTx is a snapshot of one remembered outcome (recovery bundles).
type DecidedTx struct {
	ID      TxID
	Commit  bool
	Seq     uint64
	Results []byte
}

// InDoubtTxs returns a snapshot of every prepared-but-undecided
// transaction, oldest first.
func (a *Applier) InDoubtTxs() []InDoubtTx {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]InDoubtTx, 0, len(a.prepared))
	now := time.Now()
	for _, tx := range a.prepared {
		out = append(out, InDoubtTx{
			ID:           tx.id,
			Req:          tx.req,
			Seq:          tx.seq,
			Resolver:     tx.resolver,
			Participants: append([]int(nil), tx.participants...),
			Age:          now.Sub(tx.preparedAt),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Age > out[j].Age })
	return out
}

// DecidedTxs returns a snapshot of the remembered outcomes (recovery
// state transfer).
func (a *Applier) DecidedTxs() []DecidedTx {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]DecidedTx, 0, len(a.decided))
	for _, id := range a.decidedOrder {
		d, ok := a.decided[id]
		if !ok {
			continue
		}
		out = append(out, DecidedTx{ID: id, Commit: d.commit, Seq: d.seq, Results: d.results})
	}
	return out
}

// RecentDecided returns the newest n remembered outcomes, oldest first,
// skipping outcomes older than maxAge (zero = no age limit). The NVRAM
// re-logging path keeps these durable across flushes so a whole-shard
// crash cannot forget a commit an orphaned peer still has to learn
// about — but only until every orphan must have resolved: past the
// resolver's two-strike horizon a decided outcome is dead weight, and
// re-appending it on every flush forever would grow each flush (and
// recovery replay) without bound on a long-lived shard.
func (a *Applier) RecentDecided(n int, maxAge time.Duration) []DecidedTx {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var out []DecidedTx
	now := time.Now()
	for _, id := range a.decidedOrder {
		d, ok := a.decided[id]
		if !ok {
			continue
		}
		if maxAge > 0 && !d.decidedAt.IsZero() && now.Sub(d.decidedAt) > maxAge {
			continue
		}
		out = append(out, DecidedTx{ID: id, Commit: d.commit, Seq: d.seq, Results: d.results})
	}
	if len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// RestoreDecided reinstalls remembered outcomes from a recovery bundle.
func (a *Applier) RestoreDecided(recs []DecidedTx) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range recs {
		a.rememberDecidedLocked(r.ID, decidedTx{commit: r.Commit, seq: r.Seq, results: r.Results})
	}
}

// ResetTx discards all transaction state (recovery restart; the caller
// reinstates in-doubt transactions from its NVRAM log or a peer's state
// bundle afterwards).
func (a *Applier) ResetTx() {
	a.mu.Lock()
	a.prepared = make(map[TxID]*preparedTx)
	a.locks = make(map[uint32]TxID)
	a.decided = make(map[TxID]decidedTx)
	a.decidedOrder = nil
	a.txCond.Broadcast()
	a.mu.Unlock()
}

// Locked reports whether obj is locked by a prepared transaction.
func (a *Applier) Locked(obj uint32) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	_, ok := a.locks[obj]
	return ok
}

// WaitUnlocked blocks until obj is not locked by any prepared
// transaction, or the timeout passes. Read paths use it so a reader
// never observes the pre-batch state of one shard after another shard
// already exposed the committed batch: a prepared object's readers are
// held until the decision, then see exactly one side of it.
func (a *Applier) WaitUnlocked(obj uint32, timeout time.Duration) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, locked := a.locks[obj]; !locked {
		return true
	}
	deadline := time.Now().Add(timeout)
	wake := time.AfterFunc(timeout, func() {
		a.mu.Lock()
		a.txCond.Broadcast()
		a.mu.Unlock()
	})
	defer wake.Stop()
	for {
		if _, locked := a.locks[obj]; !locked {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		a.txCond.Wait()
	}
}

// TxStateOf answers the decision query for one transaction id.
func (a *Applier) TxStateOf(id TxID) (TxState, uint64) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if _, ok := a.prepared[id]; ok {
		return TxPrepared, 0
	}
	if d, ok := a.decided[id]; ok {
		if d.commit {
			return TxCommitted, d.seq
		}
		return TxAborted, d.seq
	}
	return TxUnknown, 0
}

// rememberDecidedLocked records an outcome, evicting the oldest past
// maxDecided. Must hold a.mu.
func (a *Applier) rememberDecidedLocked(id TxID, d decidedTx) {
	if d.decidedAt.IsZero() {
		d.decidedAt = time.Now()
	}
	if _, ok := a.decided[id]; !ok {
		a.decidedOrder = append(a.decidedOrder, id)
		if len(a.decidedOrder) > maxDecided {
			evict := a.decidedOrder[0]
			a.decidedOrder = a.decidedOrder[1:]
			delete(a.decided, evict)
		}
	}
	a.decided[id] = d
}

// lockedByOther reports whether obj is locked by a transaction other
// than self. The zero TxID (plain updates and batches) conflicts with
// every lock. Must hold a.mu.
func (a *Applier) lockedByOtherLocked(obj uint32, self TxID) bool {
	owner, ok := a.locks[obj]
	return ok && owner != self
}

// allocSkipLocked is the skip set for object allocation: numbers staged
// by the current overlay plus numbers staged by prepared transactions.
// Must hold a.mu.
func (a *Applier) allocSkipLocked(created map[uint32]bool) map[uint32]bool {
	if len(a.locks) == 0 {
		return created
	}
	skip := make(map[uint32]bool, len(created)+len(a.locks))
	for obj := range created {
		skip[obj] = true
	}
	for obj := range a.locks {
		skip[obj] = true
	}
	return skip
}

// applyPrepareLocked stages one transaction's steps: validate into an
// overlay exactly like an atomic batch, but instead of writing through,
// park the overlay in the prepared table and lock the touched objects
// until the decision. Nothing becomes visible and nothing is written to
// disk — durability of the prepared state comes from replication (the
// prepare rides the backend's replicated update path) and, in the NVRAM
// variant, from the logged request. Called with a.mu held.
func (a *Applier) applyPrepareLocked(req *Request, seq uint64) (*ApplyResult, error) {
	p, err := DecodePrepare(req.Blob)
	if err != nil {
		return nil, err
	}
	if tx, ok := a.prepared[p.ID]; ok {
		// Duplicate delivery (recovery replay): vote yes again with the
		// originally staged results.
		return &ApplyResult{Reply: &Reply{
			Status: StatusOK, Seq: tx.seq, Blob: EncodeBatchResults(tx.results),
		}}, nil
	}
	if _, ok := a.decided[p.ID]; ok {
		return nil, ErrConflict
	}
	steps, err := DecodeBatchSteps(p.Steps)
	if err != nil {
		return nil, err
	}
	ov := newBatchOverlay()
	results := make([]BatchStepResult, len(steps))
	for i, st := range steps {
		if err := a.batchStepLocked(ov, st, seq, p.ID, &results[i]); err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
	}
	tx := &preparedTx{
		id:           p.ID,
		req:          req,
		seq:          seq,
		resolver:     p.Resolver,
		participants: append([]int(nil), p.Participants...),
		overlay:      ov,
		results:      results,
		preparedAt:   time.Now(),
	}
	seen := make(map[uint32]bool)
	for _, st := range steps {
		if st.Dir.Object != 0 && !seen[st.Dir.Object] {
			seen[st.Dir.Object] = true
			tx.objs = append(tx.objs, st.Dir.Object)
		}
	}
	for obj := range ov.created {
		if !seen[obj] {
			seen[obj] = true
			tx.objs = append(tx.objs, obj)
		}
	}
	for _, obj := range tx.objs {
		a.locks[obj] = p.ID
	}
	a.prepared[p.ID] = tx
	return &ApplyResult{Reply: &Reply{
		Status: StatusOK, Seq: seq, Blob: EncodeBatchResults(results),
	}}, nil
}

// applyDecideLocked resolves a prepared transaction: commit writes the
// staged overlay through under the decide's own sequence number (so the
// touched objects' per-object Seq moves only now — a prepared object
// never advances the visible state); abort discards it. Both release
// the locks and remember the outcome for idempotent retries and orphan
// queries. Called with a.mu held.
func (a *Applier) applyDecideLocked(req *Request, seq uint64, durable bool) (*ApplyResult, error) {
	d, err := DecodeDecide(req.Blob)
	if err != nil {
		return nil, err
	}
	if prior, ok := a.decided[d.ID]; ok {
		if d.Commit != prior.commit {
			// A commit racing a presumed abort (or vice versa): first
			// decision in the stream wins, the loser learns it conflicted.
			return nil, ErrConflict
		}
		reply := &Reply{Status: StatusOK, Seq: prior.seq}
		if prior.commit {
			reply.Blob = prior.results
		}
		return &ApplyResult{Reply: reply}, nil
	}
	tx, ok := a.prepared[d.ID]
	if !ok {
		if !d.Commit {
			// Presumed abort: aborting a transaction nobody prepared (or
			// one already resolved and forgotten) is a no-op.
			return &ApplyResult{Reply: &Reply{Status: StatusOK, Seq: seq}}, nil
		}
		return nil, ErrNotFound
	}
	if !d.Commit {
		a.releaseTxLocked(tx)
		a.rememberDecidedLocked(d.ID, decidedTx{commit: false, seq: seq})
		return &ApplyResult{Reply: &Reply{Status: StatusOK, Seq: seq}}, nil
	}

	// Commit: the staged images were stamped with the prepare's sequence
	// number; restamp with the commit's before writing through.
	for obj, e := range tx.overlay.entries {
		e.Seq = seq
		tx.overlay.entries[obj] = e
	}
	for _, dir := range tx.overlay.dirs {
		dir.Seq = seq
	}
	for obj, st := range tx.overlay.migOut {
		st.Seq = seq
		tx.overlay.migOut[obj] = st
	}
	resultsBlob := EncodeBatchResults(tx.results)
	res, err := a.commitOverlayLocked(tx.overlay, seq, durable, resultsBlob)
	if err != nil {
		// Disk trouble: the transaction stays prepared so a decide retry
		// can complete it; nothing partial became visible.
		return nil, err
	}
	a.releaseTxLocked(tx)
	a.rememberDecidedLocked(d.ID, decidedTx{commit: true, seq: seq, results: resultsBlob})
	return res, nil
}

// releaseTxLocked drops a transaction's locks and prepared record.
// Must hold a.mu.
func (a *Applier) releaseTxLocked(tx *preparedTx) {
	for _, obj := range tx.objs {
		if a.locks[obj] == tx.id {
			delete(a.locks, obj)
		}
	}
	delete(a.prepared, tx.id)
	a.txCond.Broadcast()
}
