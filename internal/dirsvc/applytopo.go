package dirsvc

import (
	"fmt"
	"sort"

	"dirsvc/internal/dirdata"
)

// This file holds the applier side of elastic topology: the shard-map
// epoch state machine (OpSplit / OpSealMigration / OpDropStubs), the
// migration steps that ride the two-phase machinery (OpMigOut at the
// source, OpMigIn at the target), and the routing decision servers make
// before touching an object (RouteForward). All topology mutations ride
// the backend's totally-ordered update stream, so every replica of a
// shard transitions identically.
//
// The per-object move is: read the image at the source (OpMigRead),
// then flip with one cross-shard transaction — OpMigOut validates the
// source entry still has the copied sequence number (a racing writer
// makes the prepare vote no, and the migrator re-copies) and commits by
// replacing the entry with a forwarding stub; OpMigIn commits by
// installing the shipped image at the target, each replica minting its
// own Bullet file exactly like recovery state transfer. The 2PC locks
// hold readers and writers at both shards until each shard's decide
// applies, so no window exists where both sides serve the object.

// ConfigureTopology installs the boot-time shard geometry: this shard's
// index, the number of shards active at epoch 0, and the number
// provisioned. Call once before recovery; recovery may then overwrite
// the epoch via RestoreTopology.
func (a *Applier) ConfigureTopology(shard, base, total int) {
	if base <= 0 {
		base = 1
	}
	if total < base {
		total = base
	}
	a.mu.Lock()
	a.topo = &TopoState{Shard: shard, Base: base, Total: total}
	a.mu.Unlock()
	a.table.ConfigureShard(shard, allocModUnder(shard, base, total))
}

// allocModUnder returns the modulus a shard's allocator runs under: the
// current active count for an active shard, or — for a reserve shard —
// the active count of the first epoch that includes it, so the numbers
// it mints once activated are in the residue class it will own.
func allocModUnder(shard, active, total int) int {
	m := active
	for m <= shard && m*2 <= total {
		m *= 2
	}
	return m
}

// Topology returns a snapshot of the shard's topology state; ok is
// false when ConfigureTopology was never called.
func (a *Applier) Topology() (TopoState, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.topo == nil {
		return TopoState{}, false
	}
	return *a.topo, true
}

// RestoreTopology reinstalls a persisted topology state (commit block
// or recovery bundle), keeping this shard's configured identity and
// geometry and adopting the epoch, migration phase, and floors. It
// reconfigures the allocator to match.
func (a *Applier) RestoreTopology(t *TopoState) {
	if t == nil {
		return
	}
	a.mu.Lock()
	if a.topo == nil {
		a.mu.Unlock()
		return
	}
	cur := a.topo
	cur.Epoch = t.Epoch
	cur.MigPhase = t.MigPhase
	cur.MigPeer = t.MigPeer
	cur.MigFloor = t.MigFloor
	cur.AllocFloor = t.AllocFloor
	shard, active, total, floor := cur.Shard, cur.Active(), cur.Total, cur.AllocFloor
	a.mu.Unlock()
	a.table.ConfigureShard(shard, allocModUnder(shard, active, total))
	a.table.SetAllocFloor(floor)
}

// RouteForward decides whether a request addressing obj belongs to
// another shard under the current shard map. It returns the shard to
// forward to and true, or false when this shard serves the request
// itself — including authoritative not-found answers for numbers it
// owns or once owned. Transient misdecisions during a flip are safe:
// the client chases at most one stale hop and retries.
func (a *Applier) RouteForward(obj uint32) (int, bool) {
	a.mu.RLock()
	t := a.topo
	var topo TopoState
	if t != nil {
		topo = *t
	}
	a.mu.RUnlock()
	if t == nil || obj == 0 || obj == RootObject {
		// Every shard holds its own root copy (FormatRoot), and the root
		// never migrates.
		return 0, false
	}
	if st, ok := a.table.Stub(obj); ok {
		// Migrated away: one-hop forwarding stub.
		return st.Target, true
	}
	home := topo.Home(obj)
	_, present := a.table.Get(obj)
	if home == topo.Shard {
		if !present && topo.MigPhase == MigTarget && obj <= topo.MigFloor {
			// Unsealed split target: a miss at or below the floor may
			// still live at the source (not yet migrated) — the source
			// is authoritative until the seal.
			return topo.MigPeer, true
		}
		return 0, false
	}
	if present {
		// Ours until its migration flip commits.
		return 0, false
	}
	if topo.MigPhase == MigSource && home == topo.MigPeer && obj <= topo.MigFloor {
		// Our moving class, at or below the floor, no entry and no
		// stub: the object never existed or was deleted here — we are
		// authoritative for its absence.
		return 0, false
	}
	return home, true
}

// ShardMapInfo snapshots the shard's topology view for OpShardMap:
// epoch state, table occupancy, and the migration work list (owned
// objects homed elsewhere under the current epoch).
func (a *Applier) ShardMapInfo() *ShardMapInfo {
	a.mu.RLock()
	t := a.topo
	var topo TopoState
	if t != nil {
		topo = *t
	} else {
		topo = TopoState{Base: 1, Total: 1}
	}
	a.mu.RUnlock()
	info := &ShardMapInfo{Topo: topo}
	entries := a.table.All()
	info.Objects = len(entries)
	info.Stubs = a.table.StubCount()
	if t != nil {
		for obj := range entries {
			if obj != RootObject && topo.Home(obj) != topo.Shard {
				info.Moving = append(info.Moving, obj)
			}
		}
		sort.Slice(info.Moving, func(i, j int) bool { return info.Moving[i] < info.Moving[j] })
	}
	return info
}

// applySplitLocked executes OpSplit: bump the shard map to the target
// epoch (req.Seq), doubling the active shard count. A shard active
// before the split becomes the source of its twin s+oldActive and
// answers with the moving class's allocation floor in ObjSeq; a newly
// activated shard becomes the target, told the floor in req.Column.
// Splits at or below the current epoch are idempotent no-ops, so
// recovery replay and coordinator retries are harmless. Called with
// a.mu held.
func (a *Applier) applySplitLocked(req *Request, seq uint64) (*ApplyResult, error) {
	t := a.topo
	if t == nil {
		return nil, fmt.Errorf("split without topology: %w", ErrBadRequest)
	}
	target := req.Seq
	if target <= t.Epoch {
		return &ApplyResult{Reply: &Reply{Status: StatusOK, Seq: seq, ObjSeq: uint64(t.MigFloor)}}, nil
	}
	if t.MigPhase != MigNone {
		return nil, fmt.Errorf("previous split still migrating: %w", ErrConflict)
	}
	oldActive := ActiveShardsAt(target-1, t.Base, t.Total)
	newActive := ActiveShardsAt(target, t.Base, t.Total)
	if newActive != oldActive*2 {
		return nil, fmt.Errorf("no spare shards for epoch %d (active %d of %d): %w",
			target, oldActive, t.Total, ErrBadRequest)
	}
	res := &ApplyResult{Reply: &Reply{Status: StatusOK, Seq: seq}, TopoChanged: true}
	switch {
	case t.Shard < oldActive:
		twin := t.Shard + oldActive
		floor := a.table.ClassMax(uint32(newActive), uint32(twin))
		t.Epoch = target
		t.MigPhase = MigSource
		t.MigPeer = twin
		t.MigFloor = floor
		a.table.ConfigureShard(t.Shard, newActive)
		res.Reply.ObjSeq = uint64(floor)
	case t.Shard < newActive:
		twin := t.Shard - oldActive
		floor := uint32(req.Column)
		t.Epoch = target
		t.MigPhase = MigTarget
		t.MigPeer = twin
		t.MigFloor = floor
		if floor > t.AllocFloor {
			t.AllocFloor = floor
		}
		a.table.ConfigureShard(t.Shard, newActive)
		a.table.SetAllocFloor(t.AllocFloor)
		res.Reply.ObjSeq = uint64(floor)
	default:
		return nil, fmt.Errorf("shard %d inactive at epoch %d: %w", t.Shard, target, ErrBadRequest)
	}
	return res, nil
}

// applySealLocked executes OpSealMigration at a split target: every
// moving-class object has arrived, so misses below the floor stop
// chasing to the source. Idempotent when no split is in progress.
// Called with a.mu held.
func (a *Applier) applySealLocked(req *Request, seq uint64) (*ApplyResult, error) {
	t := a.topo
	if t == nil {
		return nil, fmt.Errorf("seal without topology: %w", ErrBadRequest)
	}
	if t.MigPhase == MigNone {
		return &ApplyResult{Reply: &Reply{Status: StatusOK, Seq: seq}}, nil
	}
	if t.MigPhase != MigTarget {
		return nil, fmt.Errorf("seal on a split source: %w", ErrConflict)
	}
	t.MigPhase = MigNone
	t.MigPeer = 0
	t.MigFloor = 0
	return &ApplyResult{Reply: &Reply{Status: StatusOK, Seq: seq}, TopoChanged: true}, nil
}

// applyDropStubsLocked executes OpDropStubs at a split source: refuse
// while any moving-class object is still here, else end the source
// phase and delete every forwarding stub (their object numbers stay
// unusable at this shard — the residue class belongs to the twin now).
// Replay after a crash re-drops whatever stubs the flush missed.
// Called with a.mu held.
func (a *Applier) applyDropStubsLocked(req *Request, seq uint64, durable bool) (*ApplyResult, error) {
	t := a.topo
	if t == nil {
		return nil, fmt.Errorf("drop-stubs without topology: %w", ErrBadRequest)
	}
	if t.MigPhase == MigSource {
		for obj := range a.table.All() {
			if obj != RootObject && t.Home(obj) != t.Shard {
				return nil, fmt.Errorf("object %d not yet migrated: %w", obj, ErrConflict)
			}
		}
		t.MigPhase = MigNone
		t.MigPeer = 0
		t.MigFloor = 0
	} else if t.MigPhase == MigTarget {
		return nil, fmt.Errorf("drop-stubs on a split target: %w", ErrConflict)
	}
	stubs := a.table.Stubs()
	if len(stubs) == 0 {
		return &ApplyResult{Reply: &Reply{Status: StatusOK, Seq: seq}, TopoChanged: true}, nil
	}
	objs := make([]uint32, 0, len(stubs))
	for obj := range stubs {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	if durable {
		if err := a.table.DropAllStubs(); err != nil {
			return nil, err
		}
	} else {
		a.table.DropAllStubsRAM()
	}
	return &ApplyResult{
		Reply:        &Reply{Status: StatusOK, Seq: seq},
		DirtyObjects: objs,
		// Stub slots carried sequence numbers; advance the commit block
		// so recovery's max-seq scan cannot regress.
		DeletedDir:  true,
		TopoChanged: true,
	}, nil
}

// migOutStepLocked validates and stages an OpMigOut step: the source
// half of a migration flip. The entry must still carry the sequence
// number the migrator copied (st.Seq) — any interleaved write makes the
// prepare vote no, and the migrator re-copies. Commit replaces the
// entry with a forwarding stub to st.Column. Called with a.mu held.
func (a *Applier) migOutStepLocked(ov *batchOverlay, st *Request, seq uint64, self TxID) error {
	obj := st.Dir.Object
	if obj == 0 || obj == RootObject {
		return fmt.Errorf("cannot migrate object %d: %w", obj, ErrBadRequest)
	}
	if a.lockedByOtherLocked(obj, self) {
		return ErrConflict
	}
	e, ok := ov.entry(a, obj)
	if !ok {
		return ErrNotFound
	}
	if e.Seq != st.Seq {
		return fmt.Errorf("object %d changed since copy (seq %d != %d): %w",
			obj, e.Seq, st.Seq, ErrConflict)
	}
	delete(ov.dirs, obj)
	delete(ov.entries, obj)
	ov.migOut[obj] = StubEntry{Target: st.Column, Seq: seq}
	return nil
}

// migInStepLocked validates and stages an OpMigIn step: the target half
// of a migration flip. The blob carries the object's secret and image
// as read at the source; commit installs them, each replica minting its
// own Bullet file. Called with a.mu held.
func (a *Applier) migInStepLocked(ov *batchOverlay, st *Request, seq uint64, self TxID) error {
	obj := st.Dir.Object
	if obj == 0 {
		return fmt.Errorf("migrate-in of object 0: %w", ErrBadRequest)
	}
	if a.lockedByOtherLocked(obj, self) {
		return ErrConflict
	}
	if _, ok := ov.entry(a, obj); ok {
		return fmt.Errorf("object %d already present: %w", obj, ErrConflict)
	}
	secret, img, err := SplitMigImageBlob(st.Blob)
	if err != nil {
		return err
	}
	d, err := dirdata.Decode(img)
	if err != nil {
		return fmt.Errorf("migrate-in image of object %d: %w", obj, err)
	}
	d.Seq = seq
	ov.created[obj] = true
	ov.entries[obj] = ObjectEntry{Seq: seq, Secret: secret}
	ov.dirs[obj] = d
	return nil
}
