package dirsvc

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the server half of the push-based coherence subsystem:
// a bounded per-shard event log fed by the applier, and a lease table of
// subscribed clients that invalidations and watch events are pushed to.
//
// Every applied update appends one Event to the log. Log positions
// (indexes) are contiguous by construction, so a subscriber that knows
// the log identity and its next index can tell exactly whether it has
// seen everything: a reconnect replays the missed suffix when the
// bounded log still holds it, and yields an explicit resync marker when
// it does not (or when the log identity changed — a different replica,
// or the same server after crash recovery). On the totally-ordered
// backends the log index coincides with the commit sequence number, so
// "gap-free by index" is "gap-free by Seq".

// Event is one committed entry of a shard's update stream: the sequence
// number it committed under, the operation kind, and the directory
// objects it touched. Entries that consume a sequence number without
// changing any directory (a staged prepare, an aborted decide, a failed
// update on the group backend) appear with no objects, keeping the
// index↔Seq correspondence gap-free.
type Event struct {
	Seq     uint64
	Op      OpCode
	Objects []uint32
}

// EventBatch is the unit of event transfer: the payload of a watch
// confirmation, a lease-renewal reply, and every server push. All three
// share one shape so the client can process them uniformly.
type EventBatch struct {
	// LogID identifies the server's event log incarnation. A new server
	// process — or the same process after crash recovery — has a new
	// identity, telling subscribers their cursor is meaningless.
	LogID uint64
	// FirstIdx is the log index of Events[0]; with no events it is the
	// index the next event will get (the subscriber's starting cursor).
	FirstIdx uint64
	// TTLMillis is the lease time-to-live; a subscriber that has not
	// renewed within it is evicted and stops receiving pushes.
	TTLMillis uint32
	// Resync is set when the server could not resume the subscriber's
	// cursor: the cursor fell off the bounded log, or it belongs to a
	// different log incarnation. The subscriber must treat its cached
	// state as stale and restart from FirstIdx.
	Resync bool
	// Events are the entries from FirstIdx on, in log order.
	Events []Event
}

// EncodeEventBatch serializes a batch (Reply.Blob, push payloads).
func EncodeEventBatch(b *EventBatch) []byte {
	w := newWriter()
	w.u64(b.LogID)
	w.u64(b.FirstIdx)
	w.u32(b.TTLMillis)
	if b.Resync {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u32(uint32(len(b.Events)))
	for _, ev := range b.Events {
		w.u64(ev.Seq)
		w.u8(uint8(ev.Op))
		w.u16(uint16(len(ev.Objects)))
		for _, obj := range ev.Objects {
			w.u32(obj)
		}
	}
	return w.buf
}

// DecodeEventBatch parses a batch.
func DecodeEventBatch(buf []byte) (*EventBatch, error) {
	rd := &byteReader{buf: buf}
	b := &EventBatch{}
	b.LogID = rd.u64()
	b.FirstIdx = rd.u64()
	b.TTLMillis = rd.u32()
	b.Resync = rd.u8() == 1
	n := int(rd.u32())
	if n > 1<<20 {
		return nil, ErrBadRequest
	}
	for i := 0; i < n; i++ {
		var ev Event
		ev.Seq = rd.u64()
		ev.Op = OpCode(rd.u8())
		nobj := int(rd.u16())
		for j := 0; j < nobj; j++ {
			ev.Objects = append(ev.Objects, rd.u32())
		}
		b.Events = append(b.Events, ev)
	}
	if rd.failed {
		return nil, ErrBadRequest
	}
	return b, nil
}

// DefaultEventLogSize bounds the per-server event log when the
// deployment does not configure one.
const DefaultEventLogSize = 1024

// logIDSeq mints process-unique event-log identities. Identity — not
// content — is what subscribers compare, so a counter suffices in the
// simulated world where every server shares one process.
var logIDSeq atomic.Uint64

// eventLog is a bounded ring of events with contiguous indexes. The
// first event appended after construction gets index floor+1, and on
// the group and local backends the log is attached with floor equal to
// the applied sequence number, so index == Seq there. Not goroutine
// safe; the Notifier's lock covers it.
type eventLog struct {
	id       uint64
	size     int
	firstIdx uint64 // index of events[0]
	events   []Event
}

func newEventLog(size int, floor uint64) *eventLog {
	if size <= 0 {
		size = DefaultEventLogSize
	}
	return &eventLog{id: logIDSeq.Add(1), size: size, firstIdx: floor + 1}
}

// next returns the index the next appended event will get.
func (l *eventLog) next() uint64 { return l.firstIdx + uint64(len(l.events)) }

// append stores ev and returns its index, evicting the oldest entry
// when the ring is full.
func (l *eventLog) append(ev Event) uint64 {
	idx := l.next()
	l.events = append(l.events, ev)
	if len(l.events) > l.size {
		drop := len(l.events) - l.size
		l.events = append(l.events[:0], l.events[drop:]...)
		l.firstIdx += uint64(drop)
	}
	return idx
}

// since returns the events from index `from` on. ok is false when the
// bounded log no longer holds `from` (the subscriber fell behind) or
// `from` lies beyond the log (a cursor from another incarnation).
func (l *eventLog) since(from uint64) ([]Event, bool) {
	if from < l.firstIdx || from > l.next() {
		return nil, false
	}
	evs := l.events[from-l.firstIdx:]
	out := make([]Event, len(evs))
	copy(out, evs)
	return out, true
}

// subscriber is one leased client endpoint.
type subscriber struct {
	id     uint64
	push   func([]byte) error
	expiry time.Time
}

// Notifier is the lease/callback engine one directory server runs: it
// owns the event log, the lease table, and the push fan-out. Record is
// called by the applier in apply order; Subscribe and Renew implement
// the OpWatch and OpLeaseRenew operations; an internal ticker evicts
// leases that were not renewed within the TTL.
type Notifier struct {
	mu   sync.Mutex
	log  *eventLog
	subs map[uint64]*subscriber
	ttl  time.Duration

	stop chan struct{}
	done chan struct{}
}

// NewNotifier builds a notifier whose log starts at floor (events get
// indexes floor+1, floor+2, …) and starts its lease-expiry ticker.
func NewNotifier(logSize int, floor uint64, ttl time.Duration) *Notifier {
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	n := &Notifier{
		log:  newEventLog(logSize, floor),
		subs: make(map[uint64]*subscriber),
		ttl:  ttl,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go n.expireLoop()
	return n
}

// Close stops the expiry ticker and drops every lease.
func (n *Notifier) Close() {
	n.mu.Lock()
	select {
	case <-n.stop:
		n.mu.Unlock()
		return
	default:
	}
	close(n.stop)
	n.subs = make(map[uint64]*subscriber)
	n.mu.Unlock()
	<-n.done
}

// TTL returns the lease time-to-live.
func (n *Notifier) TTL() time.Duration { return n.ttl }

// Subscribers returns the number of live leases (tests, monitoring).
func (n *Notifier) Subscribers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.subs)
}

func (n *Notifier) expireLoop() {
	defer close(n.done)
	tick := n.ttl / 2
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			n.mu.Lock()
			now := time.Now()
			for id, sub := range n.subs {
				if now.After(sub.expiry) {
					delete(n.subs, id)
				}
			}
			n.mu.Unlock()
		}
	}
}

// batchLocked builds a reply batch holding events from `from` on, or a
// resync marker when the cursor cannot be resumed. Must hold n.mu.
func (n *Notifier) batchLocked(prevLogID, from uint64) *EventBatch {
	b := &EventBatch{LogID: n.log.id, TTLMillis: uint32(n.ttl / time.Millisecond)}
	if prevLogID == n.log.id && from > 0 {
		if evs, ok := n.log.since(from); ok {
			b.FirstIdx = from
			b.Events = evs
			return b
		}
		b.Resync = true
	} else if prevLogID != 0 {
		// The cursor belongs to another log incarnation (a different
		// replica, or this server before its last recovery).
		b.Resync = true
	}
	b.FirstIdx = n.log.next()
	return b
}

// Subscribe registers (or refreshes) the lease identified by subID with
// the given push function and returns the confirmation batch: a replay
// of the missed suffix when the subscriber's cursor (prevLogID, from)
// can be resumed from the bounded log, a resync marker otherwise. A
// zero prevLogID means a fresh subscriber that wants events from now.
func (n *Notifier) Subscribe(subID uint64, prevLogID, from uint64, push func([]byte) error) *EventBatch {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case <-n.stop:
		return &EventBatch{LogID: n.log.id, FirstIdx: n.log.next(), Resync: prevLogID != 0}
	default:
	}
	n.subs[subID] = &subscriber{id: subID, push: push, expiry: time.Now().Add(n.ttl)}
	return n.batchLocked(prevLogID, from)
}

// Renew refreshes the lease identified by subID and returns the events
// from the subscriber's cursor on (covering any pushes it missed). ok
// is false when the lease has expired or never existed; the client must
// re-subscribe.
func (n *Notifier) Renew(subID, from uint64) (*EventBatch, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sub, ok := n.subs[subID]
	if !ok {
		return nil, false
	}
	sub.expiry = time.Now().Add(n.ttl)
	return n.batchLocked(n.log.id, from), true
}

// Record appends one applied event to the log and pushes it to every
// leased subscriber. It must be called in apply order; pushes are
// one-way (the network send is asynchronous) and a lost push is
// recovered by the subscriber's next renewal. A subscriber whose push
// endpoint fails outright is evicted.
func (n *Notifier) Record(ev Event) {
	n.mu.Lock()
	defer n.mu.Unlock()
	idx := n.log.append(ev)
	if len(n.subs) == 0 {
		return
	}
	payload := (&Reply{Status: StatusOK, Blob: EncodeEventBatch(&EventBatch{
		LogID:     n.log.id,
		FirstIdx:  idx,
		TTLMillis: uint32(n.ttl / time.Millisecond),
		Events:    []Event{ev},
	})}).Encode()
	for id, sub := range n.subs {
		if err := sub.push(payload); err != nil {
			delete(n.subs, id)
		}
	}
}

// Reset gives the log a fresh identity starting at floor and drops
// every lease, pushing each subscriber a final resync batch (best
// effort) so live clients re-subscribe promptly instead of waiting out
// their renewal interval. Called when a server's state was rebuilt by
// crash recovery: the applied cursor may have jumped, so no prior
// cursor into this server's log is meaningful.
func (n *Notifier) Reset(floor uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.log = newEventLog(n.log.size, floor)
	if len(n.subs) == 0 {
		return
	}
	payload := (&Reply{Status: StatusOK, Blob: EncodeEventBatch(&EventBatch{
		LogID:     n.log.id,
		FirstIdx:  n.log.next(),
		TTLMillis: uint32(n.ttl / time.Millisecond),
		Resync:    true,
	})}).Encode()
	for id, sub := range n.subs {
		_ = sub.push(payload)
		delete(n.subs, id)
	}
}
