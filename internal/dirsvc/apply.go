package dirsvc

import (
	"fmt"
	"sync"

	"dirsvc/internal/bullet"
	"dirsvc/internal/capability"
	"dirsvc/internal/dirdata"
)

// RootObject is the object number of the root directory, created when a
// server formats its state. Its secret derives deterministically from the
// service port so all replicas mint the identical root capability.
const RootObject uint32 = 1

// ApplyResult reports the outcome of one update application.
type ApplyResult struct {
	Reply *Reply
	// OldBullet lists Bullet files superseded by the update; the caller
	// removes them after the commit, off the critical path (Fig. 5:
	// "remove old Bullet files").
	OldBullet []capability.Capability
	// DirtyObjects lists the directories the update touched (NVRAM mode
	// flush tracking).
	DirtyObjects []uint32
	// DeletedDir is set when the update deleted a directory, which
	// requires advancing the commit block sequence number (§3).
	DeletedDir bool
	// TopoChanged is set when the update moved the shard-map state
	// (split, seal, stub drop). The caller must persist the new topology
	// to the commit block before acknowledging — even in NVRAM mode,
	// where ordinary updates skip the disk: topology changes are rare
	// and an unpersisted epoch would unfence recovery.
	TopoChanged bool
	// AdvanceSeq, when non-zero, tells the caller to advance its applied
	// sequence counter to at least this value: a restored snapshot may
	// contain state stamped beyond the sequence number the restore
	// itself applied under.
	AdvanceSeq uint64
}

// Applier executes directory operations against one server's replica
// state: the RAM directory cache, the object table, and the server's own
// Bullet store. Because every replica applies the same updates in the
// same total order starting from the same state, all its decisions
// (object numbers, encodings, capabilities) are deterministic.
type Applier struct {
	port   capability.Port
	table  *ObjectTable
	bullet *bullet.Client

	mu    sync.RWMutex
	cache map[uint32]*dirdata.Directory
	// topo is the shard's elastic-topology state (nil when the
	// deployment never called ConfigureTopology); see applytopo.go.
	topo *TopoState

	// Two-phase-commit participant state: staged transactions, the
	// per-object locks they hold, and remembered outcomes. txCond wakes
	// readers blocked on a locked object (see WaitUnlocked) and the
	// write-side lock-wait queue (see AwaitLockFree), whose per-object
	// FIFO tickets live in waiters.
	prepared      map[TxID]*preparedTx
	locks         map[uint32]TxID
	decided       map[TxID]decidedTx
	decidedOrder  []TxID
	txCond        *sync.Cond
	waiters       map[uint32][]uint64
	waitTicket    uint64
	waitSlots     int // max parked waiters; negative = unbounded
	activeWaiters int

	// events, when attached, receives one Event per successfully applied
	// update, in apply order (it is called under a.mu).
	events *Notifier
}

// AttachEvents connects (or, with nil, disconnects) the notifier that
// receives one Event per applied update. Servers detach it while
// replaying recovered state — replayed updates predate every live
// subscription — and re-attach it when recovery completes.
func (a *Applier) AttachEvents(n *Notifier) {
	a.mu.Lock()
	a.events = n
	a.mu.Unlock()
}

// NewApplier builds an applier for the service identified by port.
func NewApplier(port capability.Port, table *ObjectTable, bc *bullet.Client) *Applier {
	a := &Applier{
		port:      port,
		table:     table,
		bullet:    bc,
		cache:     make(map[uint32]*dirdata.Directory),
		prepared:  make(map[TxID]*preparedTx),
		locks:     make(map[uint32]TxID),
		decided:   make(map[TxID]decidedTx),
		waitSlots: -1,
	}
	a.txCond = sync.NewCond(&a.mu)
	return a
}

// rootSecret derives the deterministic secret of the root directory.
func rootSecret(port capability.Port) capability.Secret {
	return capability.NewSecret([]byte("root:" + port.String()))
}

// FormatRoot creates the root directory if the table does not know it.
// durable controls whether the image is written through to Bullet/disk.
func (a *Applier) FormatRoot(durable bool) error {
	if _, ok := a.table.Get(RootObject); ok {
		return nil
	}
	root := dirdata.New()
	img := root.Encode()
	entry := ObjectEntry{Secret: rootSecret(a.port)}
	if durable {
		bcap, err := a.bullet.Create(img)
		if err != nil {
			return fmt.Errorf("format root: %w", err)
		}
		entry.Cap = bcap
		if err := a.table.Set(RootObject, entry); err != nil {
			return fmt.Errorf("format root: %w", err)
		}
	} else {
		a.table.SetRAM(RootObject, entry)
	}
	a.mu.Lock()
	a.cache[RootObject] = root
	a.mu.Unlock()
	return nil
}

// RootCap returns the owner capability of the root directory.
func (a *Applier) RootCap() (capability.Capability, error) {
	e, ok := a.table.Get(RootObject)
	if !ok {
		return capability.Capability{}, ErrNotFound
	}
	return capability.Mint(a.port, RootObject, e.Secret), nil
}

// LoadAll populates the directory cache from the Bullet store — the boot
// and recovery path ("all implementations cache recently used directories
// in RAM"; this repro caches all of them, as the tiny 1993 heaps grew).
func (a *Applier) LoadAll() error {
	for _, obj := range a.table.Objects() {
		e, _ := a.table.Get(obj)
		img, err := a.bullet.Read(e.Cap)
		if err != nil {
			return fmt.Errorf("load directory %d: %w", obj, err)
		}
		d, err := dirdata.Decode(img)
		if err != nil {
			return fmt.Errorf("decode directory %d: %w", obj, err)
		}
		a.mu.Lock()
		a.cache[obj] = d
		a.mu.Unlock()
	}
	return nil
}

// InvalidateCache drops the RAM cache (recovery restart).
func (a *Applier) InvalidateCache() {
	a.mu.Lock()
	a.cache = make(map[uint32]*dirdata.Directory)
	a.mu.Unlock()
}

// Directory returns a deep copy of a cached directory (tests, recovery).
func (a *Applier) Directory(obj uint32) (*dirdata.Directory, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	d, ok := a.cache[obj]
	if !ok {
		return nil, false
	}
	return d.Clone(), true
}

// verify resolves a directory capability to its object entry, checking
// the check field and the rights needed.
func (a *Applier) verify(c capability.Capability, need capability.Rights) (ObjectEntry, error) {
	if c.Port != a.port {
		return ObjectEntry{}, capability.ErrBadCapability
	}
	e, ok := a.table.Get(c.Object)
	if !ok {
		return ObjectEntry{}, ErrNotFound
	}
	if err := capability.Require(c, e.Secret, need); err != nil {
		return ObjectEntry{}, err
	}
	return e, nil
}

// Read executes a read-only operation (no replication, no disk — §3.1).
// Replies carry the per-object sequence number (ObjSeq) of the directory
// read; the calling server stamps Reply.Seq with its applied service
// sequence number, sampled before the read, so client caches get a
// conservative freshness bound.
func (a *Applier) Read(req *Request) *Reply {
	switch req.Op {
	case OpGetRoot:
		cap, err := a.RootCap()
		if err != nil {
			return &Reply{Status: StatusOf(err)}
		}
		return &Reply{Status: StatusOK, Cap: cap}
	case OpTxQuery:
		var id TxID
		if len(req.Blob) != len(id) {
			return &Reply{Status: StatusBadRequest}
		}
		copy(id[:], req.Blob)
		state, seq := a.TxStateOf(id)
		return &Reply{Status: StatusOK, Seq: seq, Blob: []byte{byte(state)}}
	case OpShardMap:
		return &Reply{Status: StatusOK, Blob: EncodeShardMapInfo(a.ShardMapInfo())}
	case OpBackup:
		// The blob's applied/commit counters stay zero here — a restored
		// backup derives its floor from the content (Snapshot.MaxSeq).
		// Going through Read keeps the op on every backend's generic
		// dispatch path.
		return &Reply{Status: StatusOK, Blob: a.SnapshotState(0, 0).Encode()}
	case OpMigRead:
		// Internal migration read: the whole object image plus its
		// secret, keyed by object number alone (the migrator coordinates
		// shards, it does not hold per-object capabilities). Entry and
		// image are sampled together under the applier lock so the
		// returned ObjSeq matches the image exactly — the flip's
		// expected-sequence check depends on it.
		obj := req.Dir.Object
		a.mu.RLock()
		d := a.cache[obj]
		e, ok := a.table.Get(obj)
		a.mu.RUnlock()
		if !ok || d == nil {
			return &Reply{Status: StatusNotFound}
		}
		return &Reply{Status: StatusOK, ObjSeq: e.Seq, Blob: MigImageBlob(e.Secret, d.Encode())}
	case OpListDir:
		if _, err := a.verify(req.Dir, capability.RightRead); err != nil {
			return &Reply{Status: StatusOf(err)}
		}
		a.mu.RLock()
		d := a.cache[req.Dir.Object]
		a.mu.RUnlock()
		if d == nil {
			return &Reply{Status: StatusNotFound}
		}
		rows, err := d.List(req.Column)
		if err != nil {
			return &Reply{Status: StatusOf(err)}
		}
		return &Reply{Status: StatusOK, Rows: rows, ObjSeq: d.Seq}
	case OpLookupSet:
		if _, err := a.verify(req.Dir, capability.RightRead); err != nil {
			return &Reply{Status: StatusOf(err)}
		}
		a.mu.RLock()
		d := a.cache[req.Dir.Object]
		a.mu.RUnlock()
		if d == nil {
			return &Reply{Status: StatusNotFound}
		}
		reply := &Reply{Status: StatusOK, ObjSeq: d.Seq}
		for _, it := range req.Set {
			row, err := d.Lookup(it.Name)
			if err != nil {
				reply.Caps = append(reply.Caps, capability.Capability{})
				continue
			}
			reply.Caps = append(reply.Caps, row.Cap)
			reply.Rows = append(reply.Rows, row)
		}
		return reply
	default:
		return &Reply{Status: StatusBadRequest}
	}
}

// ApplyUpdate executes one update operation, stamping seq as the
// service-wide sequence number of the change. In durable mode the new
// directory image is written through to the Bullet store and the object
// table block is written to disk (the commit point of Fig. 5). In
// non-durable mode only RAM changes; the caller logs the operation to
// NVRAM and flushes later.
func (a *Applier) ApplyUpdate(req *Request, seq uint64, durable bool) (*ApplyResult, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	res, err := a.applyUpdateLocked(req, seq, durable)
	if err == nil && a.events != nil {
		a.events.Record(Event{Seq: seq, Op: req.Op, Objects: res.DirtyObjects})
	}
	return res, err
}

func (a *Applier) applyUpdateLocked(req *Request, seq uint64, durable bool) (*ApplyResult, error) {
	switch req.Op {
	case OpCreateDir:
		return a.createDirLocked(req, seq, durable)
	case OpDeleteDir:
		return a.deleteDirLocked(req, seq, durable)
	case OpAppendRow, OpChmodRow, OpDeleteRow, OpReplaceSet:
		return a.mutateDirLocked(req, seq, durable)
	case OpBatch:
		return a.applyBatchLocked(req, seq, durable)
	case OpPrepare:
		return a.applyPrepareLocked(req, seq)
	case OpDecide:
		return a.applyDecideLocked(req, seq, durable)
	case OpSplit:
		return a.applySplitLocked(req, seq)
	case OpSealMigration:
		return a.applySealLocked(req, seq)
	case OpDropStubs:
		return a.applyDropStubsLocked(req, seq, durable)
	case OpRestoreShard:
		return a.applyRestoreLocked(req, seq, durable)
	default:
		return nil, ErrBadRequest
	}
}

func (a *Applier) createDirLocked(req *Request, seq uint64, durable bool) (*ApplyResult, error) {
	if len(req.CheckSeed) == 0 {
		return nil, fmt.Errorf("create-dir without check seed: %w", ErrBadRequest)
	}
	// Creating a directory requires write permission on a parent-ish
	// capability; Amoeba let any holder of the service port create. We
	// keep creation open, as registration into a parent is a separate
	// append.
	//
	// A pinned object number (req.Dir.Object) makes the record replay
	// deterministically: the NVRAM log stamps the allocation outcome
	// into the record, because re-running the allocator after a crash
	// may see a different topology (a split moves the skip classes) and
	// would renumber every replayed directory.
	obj := req.Dir.Object
	if obj != 0 {
		if _, taken := a.table.Get(obj); taken {
			return nil, fmt.Errorf("object %d already allocated: %w", obj, ErrExists)
		}
	} else {
		obj = a.table.NextFreeExcept(a.allocSkipLocked(nil))
	}
	if obj == 0 {
		return nil, fmt.Errorf("object table full: %w", ErrServer)
	}
	d := dirdata.New(req.Columns...)
	d.Seq = seq
	entry := ObjectEntry{Seq: seq, Secret: capability.NewSecret(req.CheckSeed)}
	if durable {
		bcap, err := a.bullet.Create(d.Encode())
		if err != nil {
			return nil, fmt.Errorf("store directory: %w", err)
		}
		entry.Cap = bcap
		if err := a.table.Set(obj, entry); err != nil {
			return nil, err
		}
	} else {
		a.table.SetRAM(obj, entry)
	}
	a.cache[obj] = d
	return &ApplyResult{
		Reply:        &Reply{Status: StatusOK, Cap: capability.Mint(a.port, obj, entry.Secret), Seq: seq},
		DirtyObjects: []uint32{obj},
	}, nil
}

func (a *Applier) deleteDirLocked(req *Request, seq uint64, durable bool) (*ApplyResult, error) {
	if req.Dir.Object == RootObject {
		return nil, fmt.Errorf("cannot delete the root directory: %w", ErrBadRequest)
	}
	if a.lockedByOtherLocked(req.Dir.Object, TxID{}) {
		return nil, ErrConflict
	}
	e, err := a.verify(req.Dir, capability.RightDelete)
	if err != nil {
		return nil, err
	}
	obj := req.Dir.Object
	if durable {
		if err := a.table.Delete(obj); err != nil {
			return nil, err
		}
	} else {
		a.table.DeleteRAM(obj)
	}
	delete(a.cache, obj)
	res := &ApplyResult{
		Reply:        &Reply{Status: StatusOK, Seq: seq},
		DirtyObjects: []uint32{obj},
		DeletedDir:   true,
	}
	if !e.Cap.IsZero() {
		res.OldBullet = append(res.OldBullet, e.Cap)
	}
	return res, nil
}

func (a *Applier) mutateDirLocked(req *Request, seq uint64, durable bool) (*ApplyResult, error) {
	if a.lockedByOtherLocked(req.Dir.Object, TxID{}) {
		return nil, ErrConflict
	}
	need := capability.RightWrite
	switch req.Op {
	case OpDeleteRow:
		need = capability.RightDelete
	case OpChmodRow:
		need = capability.RightAdmin
	}
	e, err := a.verify(req.Dir, need)
	if err != nil {
		return nil, err
	}
	obj := req.Dir.Object
	cached := a.cache[obj]
	if cached == nil {
		return nil, ErrNotFound
	}
	d := cached.Clone()
	reply := &Reply{Status: StatusOK, Seq: seq}
	switch req.Op {
	case OpAppendRow:
		err = d.Append(req.Name, req.Cap, req.Masks)
	case OpChmodRow:
		err = d.Chmod(req.Name, req.Masks)
	case OpDeleteRow:
		err = d.Delete(req.Name)
	case OpReplaceSet:
		for _, it := range req.Set {
			old, rerr := d.Replace(it.Name, it.Cap)
			if rerr != nil {
				err = rerr
				break
			}
			reply.Caps = append(reply.Caps, old)
		}
	}
	if err != nil {
		return nil, err
	}
	d.Seq = seq

	newEntry := ObjectEntry{Seq: seq, Secret: e.Secret}
	if durable {
		bcap, berr := a.bullet.Create(d.Encode())
		if berr != nil {
			return nil, fmt.Errorf("store directory: %w", berr)
		}
		newEntry.Cap = bcap
		if err := a.table.Set(obj, newEntry); err != nil {
			return nil, err
		}
	} else {
		newEntry.Cap = e.Cap // stale until the NVRAM flush rewrites it
		a.table.SetRAM(obj, newEntry)
	}
	a.cache[obj] = d

	res := &ApplyResult{Reply: reply, DirtyObjects: []uint32{obj}}
	if durable && !e.Cap.IsZero() {
		res.OldBullet = append(res.OldBullet, e.Cap)
	}
	return res, nil
}

// FlushObject writes the current image of obj through to Bullet and the
// object table (the NVRAM background flush). It returns the superseded
// Bullet file, if any.
func (a *Applier) FlushObject(obj uint32) ([]capability.Capability, error) {
	if obj == 0 {
		return nil, nil
	}
	a.mu.Lock()
	d, live := a.cache[obj]
	var img []byte
	if live {
		img = d.Encode()
	}
	a.mu.Unlock()

	e, known := a.table.Get(obj)
	if !live {
		// Deleted: drop the table entry and the old file. When the RAM
		// delete already cleared the entry (DeleteRAM), the slot still
		// has to reach the disk, or a restart resurrects the directory.
		if !known {
			return nil, a.table.FlushBlocks([]uint32{obj})
		}
		if err := a.table.Delete(obj); err != nil {
			return nil, err
		}
		if !e.Cap.IsZero() {
			return []capability.Capability{e.Cap}, nil
		}
		return nil, nil
	}
	bcap, err := a.bullet.Create(img)
	if err != nil {
		return nil, fmt.Errorf("flush directory %d: %w", obj, err)
	}
	old := e.Cap
	e.Cap = bcap
	a.mu.Lock()
	e.Seq = d.Seq
	a.mu.Unlock()
	e.Secret = entrySecretOr(e, known, a.port)
	if err := a.table.Set(obj, e); err != nil {
		return nil, err
	}
	if known && !old.IsZero() && old != bcap {
		return []capability.Capability{old}, nil
	}
	return nil, nil
}

func entrySecretOr(e ObjectEntry, known bool, port capability.Port) capability.Secret {
	if known {
		return e.Secret
	}
	return rootSecret(port)
}
