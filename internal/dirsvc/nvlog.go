package dirsvc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"dirsvc/internal/vdisk"
)

// NVLog is the 24 KB NVRAM operation log of the paper's fastest variant
// (§4.1). Update operations are appended to battery-backed RAM instead of
// being written through to disk; a background flush applies them when the
// server is idle or the log fills. The log implements the paper's /tmp
// optimization: a delete-row that cancels a still-logged append-row
// removes both records, so short-lived names never touch the disk at all.
type NVLog struct {
	nv *vdisk.NVRAM

	mu     sync.Mutex
	recs   []*nvRecord
	used   int    // bytes consumed in the NVRAM region
	maxSeq uint64 // highest sequence number ever logged (survives cancellation)
}

type nvRecord struct {
	seq    uint64
	alive  bool
	raw    []byte // encoded Request
	offset int    // start of the record header in NVRAM

	// Parsed fields for cancellation matching.
	op     OpCode
	dirObj uint32
	name   string
	set    []string
}

// NVRAM layout:
//
//	header:  magic [4]byte "NVL1" | count u32 | maxSeq u64
//	records: len u32 | alive u8 | seq u64 | payload
const (
	nvHeaderSize    = 4 + 4 + 8
	nvRecHeaderSize = 4 + 1 + 8
)

var nvMagic = [4]byte{'N', 'V', 'L', '1'}

// ErrLogFull is returned when a record does not fit in NVRAM; the caller
// must flush first.
var ErrLogFull = errors.New("dirsvc: NVRAM log full")

// OpenNVLog attaches to an NVRAM region, replaying any records that
// survived a crash.
func OpenNVLog(nv *vdisk.NVRAM) (*NVLog, error) {
	l := &NVLog{nv: nv, used: nvHeaderSize}
	raw := nv.Snapshot()
	if len(raw) < nvHeaderSize {
		return nil, fmt.Errorf("nvram region too small (%d bytes)", len(raw))
	}
	var m [4]byte
	copy(m[:], raw[:4])
	if m != nvMagic {
		// Fresh region: write an empty header.
		if err := l.writeHeader(0); err != nil {
			return nil, err
		}
		return l, nil
	}
	count := int(binary.BigEndian.Uint32(raw[4:8]))
	l.maxSeq = binary.BigEndian.Uint64(raw[8:16])
	off := nvHeaderSize
	for i := 0; i < count; i++ {
		if off+nvRecHeaderSize > len(raw) {
			return nil, errors.New("dirsvc: corrupt NVRAM log")
		}
		n := int(binary.BigEndian.Uint32(raw[off : off+4]))
		alive := raw[off+4] == 1
		seq := binary.BigEndian.Uint64(raw[off+5 : off+13])
		if off+nvRecHeaderSize+n > len(raw) {
			return nil, errors.New("dirsvc: corrupt NVRAM log record")
		}
		payload := make([]byte, n)
		copy(payload, raw[off+nvRecHeaderSize:])
		rec := &nvRecord{seq: seq, alive: alive, raw: payload, offset: off}
		if err := rec.parse(); err != nil {
			return nil, err
		}
		l.recs = append(l.recs, rec)
		off += nvRecHeaderSize + n
	}
	l.used = off
	return l, nil
}

func (r *nvRecord) parse() error {
	req, err := DecodeRequest(r.raw)
	if err != nil {
		return fmt.Errorf("nvram record: %w", err)
	}
	r.op = req.Op
	r.dirObj = req.Dir.Object
	r.name = req.Name
	for _, it := range req.Set {
		r.set = append(r.set, it.Name)
	}
	return nil
}

func (l *NVLog) writeHeader(count int) error {
	hdr := make([]byte, nvHeaderSize)
	copy(hdr, nvMagic[:])
	binary.BigEndian.PutUint32(hdr[4:8], uint32(count))
	binary.BigEndian.PutUint64(hdr[8:16], l.maxSeq)
	return l.nv.Write(0, hdr)
}

// Append logs one update operation. When the operation is a delete-row
// that cancels a logged append-row of the same name in the same
// directory, both records are removed instead (the paper's /tmp
// optimization) and cancelled=true is returned.
func (l *NVLog) Append(req *Request, seq uint64) (cancelled bool, err error) {
	raw := req.Encode()
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.maxSeq {
		l.maxSeq = seq
	}

	if req.Op == OpDeleteRow {
		if i := l.cancellableAppendLocked(req.Dir.Object, req.Name); i >= 0 {
			// Kill the append in NVRAM; the delete is never written.
			l.recs[i].alive = false
			if err := l.nv.Write(l.recs[i].offset+4, []byte{0}); err != nil {
				return false, err
			}
			// The header still advances maxSeq so recovery sees that
			// updates happened here.
			if err := l.writeHeader(len(l.recs)); err != nil {
				return false, err
			}
			return true, nil
		}
	}

	need := nvRecHeaderSize + len(raw)
	if l.used+need > l.nv.Size() {
		return false, fmt.Errorf("%w (%d bytes used of %d)", ErrLogFull, l.used, l.nv.Size())
	}
	rec := &nvRecord{seq: seq, alive: true, raw: raw, offset: l.used}
	if err := rec.parse(); err != nil {
		return false, err
	}
	hdr := make([]byte, nvRecHeaderSize)
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(raw)))
	hdr[4] = 1
	binary.BigEndian.PutUint64(hdr[5:13], seq)
	if err := l.nv.Write(l.used, append(hdr, raw...)); err != nil {
		return false, err
	}
	l.recs = append(l.recs, rec)
	l.used += need
	if err := l.writeHeader(len(l.recs)); err != nil {
		return false, err
	}
	return false, nil
}

// cancellableAppendLocked finds a live append-row for (dirObj, name) with
// no later live record touching the same name. Returns its index or -1.
func (l *NVLog) cancellableAppendLocked(dirObj uint32, name string) int {
	for i := len(l.recs) - 1; i >= 0; i-- {
		rec := l.recs[i]
		if !rec.alive || !rec.touches(dirObj, name) {
			continue
		}
		if rec.op == OpAppendRow {
			return i
		}
		return -1 // a later chmod/replace/delete touches the name: no cancel
	}
	return -1
}

// touches reports whether the record affects (dirObj, name).
func (r *nvRecord) touches(dirObj uint32, name string) bool {
	if r.op == OpBatch || r.op == OpPrepare || r.op == OpDecide {
		// A batch — or a two-phase prepare/decide, whose staged steps are
		// opaque here — may touch any directory and name; be conservative
		// so the cancel optimization never reorders across one.
		return true
	}
	if r.dirObj != dirObj {
		// Directory-level ops on the same object still count.
		if (r.op == OpCreateDir || r.op == OpDeleteDir) && r.dirObj == dirObj {
			return true
		}
		return false
	}
	switch r.op {
	case OpCreateDir, OpDeleteDir:
		return true
	case OpAppendRow, OpChmodRow, OpDeleteRow:
		return r.name == name
	case OpReplaceSet:
		for _, n := range r.set {
			if n == name {
				return true
			}
		}
	}
	return false
}

// Live returns the live records in log order as decoded requests with
// their sequence numbers.
func (l *NVLog) Live() (reqs []*Request, seqs []uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, rec := range l.recs {
		if !rec.alive {
			continue
		}
		req, err := DecodeRequest(rec.raw)
		if err != nil {
			return nil, nil, err
		}
		reqs = append(reqs, req)
		seqs = append(seqs, rec.seq)
	}
	return reqs, seqs, nil
}

// DirtyObjects returns the directories with live logged updates.
func (l *NVLog) DirtyObjects() []uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	seen := make(map[uint32]bool)
	var out []uint32
	for _, rec := range l.recs {
		if rec.alive && !seen[rec.dirObj] {
			seen[rec.dirObj] = true
			out = append(out, rec.dirObj)
		}
	}
	return out
}

// Len returns the number of live records.
func (l *NVLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, rec := range l.recs {
		if rec.alive {
			n++
		}
	}
	return n
}

// UsedBytes returns the bytes consumed in the region (including dead
// records awaiting compaction).
func (l *NVLog) UsedBytes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used
}

// NeedsFlush reports whether the log has passed 3/4 of the region.
func (l *NVLog) NeedsFlush() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used*4 > l.nv.Size()*3
}

// MaxSeq returns the highest sequence number ever logged. Recovery takes
// the maximum of this, the object table, and the commit block (§3).
func (l *NVLog) MaxSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.maxSeq
}

// Clear empties the log after a successful flush, keeping maxSeq.
func (l *NVLog) Clear() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = nil
	l.used = nvHeaderSize
	return l.writeHeader(0)
}
