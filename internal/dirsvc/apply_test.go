package dirsvc

import (
	"errors"
	"testing"

	"dirsvc/internal/bullet"
	"dirsvc/internal/capability"
	"dirsvc/internal/flip"
	"dirsvc/internal/rpc"
	"dirsvc/internal/sim"
	"dirsvc/internal/vdisk"
)

// applierFixture wires an Applier to a real Bullet server over RPC, the
// way a directory server uses it.
type applierFixture struct {
	applier *Applier
	table   *ObjectTable
	disk    *vdisk.Disk
}

func newApplier(t *testing.T) *applierFixture {
	t.Helper()
	net := sim.NewNetwork(sim.FastModel(), 1)
	service := "apply-test"

	bstack := flip.NewStack(net.AddNode("bullet"))
	disk := vdisk.New(sim.FastModel(), 2048)
	bpart, err := vdisk.NewPartition(disk, 64, 2048-64)
	if err != nil {
		t.Fatal(err)
	}
	store, err := bullet.NewStore(BulletPort(service, 1), bpart)
	if err != nil {
		t.Fatal(err)
	}
	bsrv, err := bullet.NewServer(bstack, store, 2, BulletPort(service, 1))
	if err != nil {
		t.Fatal(err)
	}

	dstack := flip.NewStack(net.AddNode("dir"))
	rc, err := rpc.NewClient(dstack)
	if err != nil {
		t.Fatal(err)
	}
	admin, err := vdisk.NewPartition(disk, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	table, err := OpenObjectTable(admin)
	if err != nil {
		t.Fatal(err)
	}
	a := NewApplier(ServicePort(service), table, bullet.NewClient(rc, BulletPort(service, 1)))
	if err := a.FormatRoot(true); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		bsrv.Close()
		bstack.Close()
		dstack.Close()
	})
	return &applierFixture{applier: a, table: table, disk: disk}
}

func ownerMasks() []capability.Rights {
	return []capability.Rights{capability.AllRights, capability.AllRights, capability.AllRights}
}

func TestApplierCreateAppendLookup(t *testing.T) {
	f := newApplier(t)
	res, err := f.applier.ApplyUpdate(&Request{
		Op:        OpCreateDir,
		CheckSeed: []byte("seed-1"),
	}, 1, true)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	dirCap := res.Reply.Cap
	if dirCap.IsZero() {
		t.Fatal("create returned zero capability")
	}

	root, err := f.applier.RootCap()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.applier.ApplyUpdate(&Request{
		Op:    OpAppendRow,
		Dir:   root,
		Name:  "d",
		Cap:   dirCap,
		Masks: ownerMasks(),
	}, 2, true); err != nil {
		t.Fatalf("append: %v", err)
	}

	reply := f.applier.Read(&Request{Op: OpLookupSet, Dir: root, Set: []SetItem{{Name: "d"}}})
	if reply.Status != StatusOK || len(reply.Caps) != 1 || reply.Caps[0] != dirCap {
		t.Fatalf("lookup reply = %+v", reply)
	}
	if reply.ObjSeq != 2 {
		t.Fatalf("directory seq = %d, want 2", reply.ObjSeq)
	}
}

func TestApplierDeterministicAcrossReplicas(t *testing.T) {
	// Two independent appliers fed the identical update stream must
	// produce identical directory images and capabilities — the active
	// replication invariant.
	a := newApplier(t)
	b := newApplier(t)
	ops := []*Request{
		{Op: OpCreateDir, CheckSeed: []byte("s1")},
		{Op: OpCreateDir, CheckSeed: []byte("s2"), Columns: []string{"owner", "other"}},
	}
	var capsA, capsB []capability.Capability
	for i, op := range ops {
		ra, err := a.applier.ApplyUpdate(op, uint64(i+1), true)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.applier.ApplyUpdate(op, uint64(i+1), true)
		if err != nil {
			t.Fatal(err)
		}
		capsA = append(capsA, ra.Reply.Cap)
		capsB = append(capsB, rb.Reply.Cap)
	}
	for i := range capsA {
		if capsA[i] != capsB[i] {
			t.Fatalf("replicas minted different capabilities for op %d: %v vs %v", i, capsA[i], capsB[i])
		}
	}
	rootA, _ := a.applier.RootCap()
	for i, c := range capsA {
		if err := a.applier.ApplyUpdate3(rootA, c, i); err != nil {
			t.Fatal(err)
		}
	}
	dA, _ := a.applier.Directory(RootObject)
	// Replay the same appends at b.
	rootB, _ := b.applier.RootCap()
	for i, c := range capsB {
		if err := b.applier.ApplyUpdate3(rootB, c, i); err != nil {
			t.Fatal(err)
		}
	}
	dB, _ := b.applier.Directory(RootObject)
	if string(dA.Encode()) != string(dB.Encode()) {
		t.Fatal("replicas diverged: directory images differ")
	}
}

func TestApplierDeleteDirSignalsCommitSeq(t *testing.T) {
	f := newApplier(t)
	res, err := f.applier.ApplyUpdate(&Request{Op: OpCreateDir, CheckSeed: []byte("s")}, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	del, err := f.applier.ApplyUpdate(&Request{Op: OpDeleteDir, Dir: res.Reply.Cap}, 2, true)
	if err != nil {
		t.Fatalf("delete dir: %v", err)
	}
	if !del.DeletedDir {
		t.Fatal("DeletedDir not signalled: the commit block seq would never advance (§3)")
	}
	if len(del.OldBullet) != 1 {
		t.Fatalf("old bullet files = %v, want the deleted directory's image", del.OldBullet)
	}
}

func TestApplierRootDeletionRefused(t *testing.T) {
	f := newApplier(t)
	root, _ := f.applier.RootCap()
	if _, err := f.applier.ApplyUpdate(&Request{Op: OpDeleteDir, Dir: root}, 1, true); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("deleting root: %v", err)
	}
}

func TestApplierNonDurableSkipsDisk(t *testing.T) {
	f := newApplier(t)
	root, _ := f.applier.RootCap()
	before := f.disk.Stats()
	if _, err := f.applier.ApplyUpdate(&Request{
		Op: OpAppendRow, Dir: root, Name: "ram-only",
		Cap: root, Masks: ownerMasks(),
	}, 1, false); err != nil {
		t.Fatal(err)
	}
	after := f.disk.Stats()
	if after.Writes != before.Writes || after.SeqWrites != before.SeqWrites {
		t.Fatal("non-durable apply touched the disk")
	}
	// The RAM state is live.
	reply := f.applier.Read(&Request{Op: OpLookupSet, Dir: root, Set: []SetItem{{Name: "ram-only"}}})
	if reply.Status != StatusOK || reply.Caps[0].IsZero() {
		t.Fatalf("RAM apply invisible: %+v", reply)
	}
	// FlushObject persists it.
	if _, err := f.applier.FlushObject(RootObject); err != nil {
		t.Fatal(err)
	}
	flushed := f.disk.Stats()
	if flushed.Writes == after.Writes {
		t.Fatal("flush wrote nothing")
	}
}

func TestApplierCreateWithoutSeedRejected(t *testing.T) {
	f := newApplier(t)
	if _, err := f.applier.ApplyUpdate(&Request{Op: OpCreateDir}, 1, true); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("create without check seed: %v", err)
	}
}

// ApplyUpdate3 is a test helper appending entry i under a fixed name.
func (a *Applier) ApplyUpdate3(root, target capability.Capability, i int) error {
	_, err := a.ApplyUpdate(&Request{
		Op:    OpAppendRow,
		Dir:   root,
		Name:  "entry-" + string(rune('a'+i)),
		Cap:   target,
		Masks: []capability.Rights{capability.AllRights, capability.AllRights, capability.AllRights},
	}, uint64(100+i), true)
	return err
}
