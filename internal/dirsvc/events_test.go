package dirsvc

import (
	"reflect"
	"testing"
	"time"
)

func TestEventBatchRoundTrip(t *testing.T) {
	in := &EventBatch{
		LogID:     42,
		FirstIdx:  7,
		TTLMillis: 1500,
		Resync:    true,
		Events: []Event{
			{Seq: 7, Op: OpAppendRow, Objects: []uint32{3, 9}},
			{Seq: 8, Op: OpDecide, Objects: nil},
			{Seq: 9, Op: OpBatch, Objects: []uint32{1}},
		},
	}
	out, err := DecodeEventBatch(EncodeEventBatch(in))
	if err != nil {
		t.Fatalf("DecodeEventBatch: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in  %+v\n out %+v", in, out)
	}
	if _, err := DecodeEventBatch([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated batch decoded without error")
	}
}

func TestEventLogSinceAndOverflow(t *testing.T) {
	l := newEventLog(4, 10) // indexes start at 11
	if l.next() != 11 {
		t.Fatalf("next = %d, want 11", l.next())
	}
	for i := 0; i < 6; i++ {
		if idx := l.append(Event{Seq: uint64(11 + i)}); idx != uint64(11+i) {
			t.Fatalf("append %d: idx = %d", i, idx)
		}
	}
	// Size 4: indexes 11 and 12 fell off; 13..16 remain.
	if _, ok := l.since(12); ok {
		t.Fatal("since(12) succeeded after overflow")
	}
	evs, ok := l.since(14)
	if !ok || len(evs) != 3 || evs[0].Seq != 14 {
		t.Fatalf("since(14) = %v, %v", evs, ok)
	}
	// from == next: an up-to-date subscriber, empty suffix.
	if evs, ok := l.since(l.next()); !ok || len(evs) != 0 {
		t.Fatalf("since(next) = %v, %v", evs, ok)
	}
	// from beyond next: a cursor from another incarnation.
	if _, ok := l.since(l.next() + 1); ok {
		t.Fatal("since(next+1) succeeded")
	}
}

func TestNotifierSubscribeRenewAndPush(t *testing.T) {
	n := NewNotifier(64, 0, time.Hour)
	defer n.Close()

	var pushes [][]byte
	push := func(p []byte) error { pushes = append(pushes, p); return nil }

	b := n.Subscribe(1, 0, 0, push)
	if b.Resync || b.FirstIdx != 1 || len(b.Events) != 0 {
		t.Fatalf("fresh subscribe batch = %+v", b)
	}
	n.Record(Event{Seq: 1, Op: OpAppendRow, Objects: []uint32{5}})
	n.Record(Event{Seq: 2, Op: OpDeleteRow, Objects: []uint32{5}})
	if len(pushes) != 2 {
		t.Fatalf("pushes = %d, want 2", len(pushes))
	}
	reply, err := DecodeReply(pushes[1])
	if err != nil || reply.Status != StatusOK {
		t.Fatalf("push reply: %+v, %v", reply, err)
	}
	pb, err := DecodeEventBatch(reply.Blob)
	if err != nil || pb.LogID != b.LogID || pb.FirstIdx != 2 || len(pb.Events) != 1 {
		t.Fatalf("push batch = %+v, %v", pb, err)
	}

	// A renewal from idx 1 replays both events (lost-push recovery).
	rb, ok := n.Renew(1, 1)
	if !ok || rb.Resync || rb.FirstIdx != 1 || len(rb.Events) != 2 {
		t.Fatalf("renew batch = %+v, %v", rb, ok)
	}
	// An unknown lease is refused.
	if _, ok := n.Renew(99, 1); ok {
		t.Fatal("renewing an unknown lease succeeded")
	}

	// A re-subscribe with the live cursor resumes seamlessly; with a
	// foreign log identity it forces a resync.
	if b2 := n.Subscribe(2, b.LogID, 3, push); b2.Resync || b2.FirstIdx != 3 {
		t.Fatalf("resumed subscribe = %+v", b2)
	}
	if b3 := n.Subscribe(3, b.LogID+777, 3, push); !b3.Resync || b3.FirstIdx != 3 {
		t.Fatalf("foreign-cursor subscribe = %+v", b3)
	}
}

func TestNotifierExpiryAndReset(t *testing.T) {
	n := NewNotifier(64, 0, 30*time.Millisecond)
	defer n.Close()

	n.Subscribe(1, 0, 0, func([]byte) error { return nil })
	if n.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", n.Subscribers())
	}
	deadline := time.Now().Add(5 * time.Second)
	for n.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Reset: new log identity, a final resync push, all leases dropped.
	var last []byte
	b := n.Subscribe(2, 0, 0, func(p []byte) error { last = p; return nil })
	n.Reset(100)
	if n.Subscribers() != 0 {
		t.Fatalf("subscribers after reset = %d, want 0", n.Subscribers())
	}
	reply, err := DecodeReply(last)
	if err != nil {
		t.Fatalf("reset push: %v", err)
	}
	rb, err := DecodeEventBatch(reply.Blob)
	if err != nil || !rb.Resync || rb.LogID == b.LogID || rb.FirstIdx != 101 {
		t.Fatalf("reset batch = %+v, %v", rb, err)
	}

	// A push failure evicts the subscriber instead of wedging Record.
	n.Subscribe(3, 0, 0, func([]byte) error { return ErrBadRequest })
	n.Record(Event{Seq: 101, Op: OpAppendRow})
	if n.Subscribers() != 0 {
		t.Fatalf("failed-push subscriber survived: %d", n.Subscribers())
	}
}
