package dirsvc

import (
	"fmt"
	"sort"

	"dirsvc/internal/capability"
	"dirsvc/internal/dirdata"
)

// batchOverlay is the staging area of one atomic batch: every step reads
// through it and writes into it, so nothing touches the replica state
// until all steps have validated.
type batchOverlay struct {
	dirs    map[uint32]*dirdata.Directory // working images of touched dirs
	entries map[uint32]ObjectEntry        // working object entries
	created map[uint32]bool               // allocated by this batch
	deleted map[uint32]bool               // deleted by this batch
	migOut  map[uint32]StubEntry          // migrated away: entry → forwarding stub
}

func newBatchOverlay() *batchOverlay {
	return &batchOverlay{
		dirs:    make(map[uint32]*dirdata.Directory),
		entries: make(map[uint32]ObjectEntry),
		created: make(map[uint32]bool),
		deleted: make(map[uint32]bool),
		migOut:  make(map[uint32]StubEntry),
	}
}

// entry reads an object entry through the overlay.
func (ov *batchOverlay) entry(a *Applier, obj uint32) (ObjectEntry, bool) {
	if ov.deleted[obj] {
		return ObjectEntry{}, false
	}
	if _, gone := ov.migOut[obj]; gone {
		return ObjectEntry{}, false
	}
	if e, ok := ov.entries[obj]; ok {
		return e, true
	}
	return a.table.Get(obj)
}

// dir reads a directory image through the overlay, cloning the cached
// image on first touch so the cache stays untouched until commit.
func (ov *batchOverlay) dir(a *Applier, obj uint32) (*dirdata.Directory, bool) {
	if ov.deleted[obj] {
		return nil, false
	}
	if d, ok := ov.dirs[obj]; ok {
		return d, true
	}
	cached := a.cache[obj]
	if cached == nil {
		return nil, false
	}
	d := cached.Clone()
	ov.dirs[obj] = d
	return d, true
}

// verify resolves a directory capability through the overlay.
func (ov *batchOverlay) verify(a *Applier, c capability.Capability, need capability.Rights) (ObjectEntry, error) {
	if c.Port != a.port {
		return ObjectEntry{}, capability.ErrBadCapability
	}
	e, ok := ov.entry(a, c.Object)
	if !ok {
		return ObjectEntry{}, ErrNotFound
	}
	if err := capability.Require(c, e.Secret, need); err != nil {
		return ObjectEntry{}, err
	}
	return e, nil
}

// applyBatchLocked executes an OpBatch atomically: a validation pass
// computes the post-batch state in an overlay (any step error leaves the
// replica untouched), then a commit pass writes the overlay through in
// one go. Called with a.mu held.
func (a *Applier) applyBatchLocked(req *Request, seq uint64, durable bool) (*ApplyResult, error) {
	steps, err := DecodeBatchSteps(req.Blob)
	if err != nil {
		return nil, err
	}

	// Pass 1: validate every step against the overlay. The zero TxID
	// means "no transaction": any prepared lock conflicts.
	ov := newBatchOverlay()
	results := make([]BatchStepResult, len(steps))
	for i, st := range steps {
		if err := a.batchStepLocked(ov, st, seq, TxID{}, &results[i]); err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
	}
	return a.commitOverlayLocked(ov, seq, durable, EncodeBatchResults(results))
}

// commitOverlayLocked is pass 2 of an atomic batch — and the commit
// side of a two-phase decision: it writes a validated overlay through
// to the replica state in one go. In durable mode all new Bullet files
// are created before the first object-table write, so a Bullet failure
// still leaves the replica unchanged (orphan files are the only leak).
// resultsBlob becomes the reply payload. Called with a.mu held.
func (a *Applier) commitOverlayLocked(ov *batchOverlay, seq uint64, durable bool, resultsBlob []byte) (*ApplyResult, error) {
	res := &ApplyResult{
		Reply: &Reply{Status: StatusOK, Seq: seq, Blob: resultsBlob},
	}

	surviving := make([]uint32, 0, len(ov.dirs))
	for obj := range ov.dirs {
		if !ov.deleted[obj] {
			surviving = append(surviving, obj)
		}
	}
	sort.Slice(surviving, func(i, j int) bool { return surviving[i] < surviving[j] })
	removed := make([]uint32, 0, len(ov.deleted))
	for obj := range ov.deleted {
		if !ov.created[obj] { // created and deleted in one batch: net nothing
			removed = append(removed, obj)
		}
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })

	newCaps := make(map[uint32]capability.Capability, len(surviving))
	if durable {
		written := make([]capability.Capability, 0, len(surviving))
		for _, obj := range surviving {
			bcap, err := a.bullet.Create(ov.dirs[obj].Encode())
			if err != nil {
				for _, c := range written {
					_ = a.bullet.Delete(c)
				}
				return nil, fmt.Errorf("store batch directory %d: %w", obj, err)
			}
			newCaps[obj] = bcap
			written = append(written, bcap)
		}
	}

	moved := make([]uint32, 0, len(ov.migOut))
	for obj := range ov.migOut {
		moved = append(moved, obj)
	}
	sort.Slice(moved, func(i, j int) bool { return moved[i] < moved[j] })
	for _, obj := range moved {
		prior, known := a.table.Get(obj)
		stub := ov.migOut[obj]
		if durable {
			if err := a.table.SetStub(obj, stub); err != nil {
				return nil, err
			}
		} else {
			a.table.SetStubRAM(obj, stub)
		}
		delete(a.cache, obj)
		res.DirtyObjects = append(res.DirtyObjects, obj)
		if durable && known && !prior.Cap.IsZero() {
			// In NVRAM mode the superseded Bullet file is kept: until the
			// flush, it is the only local durable copy of the image the
			// target's prepare record also carries. One orphan file per
			// migration is the documented leak.
			res.OldBullet = append(res.OldBullet, prior.Cap)
		}
	}

	for _, obj := range removed {
		prior, known := a.table.Get(obj)
		if durable {
			if err := a.table.Delete(obj); err != nil {
				return nil, err
			}
		} else {
			a.table.DeleteRAM(obj)
		}
		delete(a.cache, obj)
		res.DeletedDir = true
		res.DirtyObjects = append(res.DirtyObjects, obj)
		if durable && known && !prior.Cap.IsZero() {
			res.OldBullet = append(res.OldBullet, prior.Cap)
		}
	}
	for _, obj := range surviving {
		prior, known := a.table.Get(obj)
		entry := ov.entries[obj]
		if durable {
			entry.Cap = newCaps[obj]
			if err := a.table.Set(obj, entry); err != nil {
				return nil, err
			}
			if known && !prior.Cap.IsZero() {
				res.OldBullet = append(res.OldBullet, prior.Cap)
			}
		} else {
			entry.Cap = prior.Cap // stale until the NVRAM flush rewrites it
			a.table.SetRAM(obj, entry)
		}
		a.cache[obj] = ov.dirs[obj]
		res.DirtyObjects = append(res.DirtyObjects, obj)
	}
	return res, nil
}

// batchStepLocked validates and stages one batch step in the overlay.
// self is the staging transaction (zero for plain batches): objects
// locked by any other prepared transaction conflict, and staged
// creations of prepared transactions are skipped by the allocator.
func (a *Applier) batchStepLocked(ov *batchOverlay, st *Request, seq uint64, self TxID, result *BatchStepResult) error {
	switch st.Op {
	case OpCreateDir:
		if len(st.CheckSeed) == 0 {
			return fmt.Errorf("create-dir without check seed: %w", ErrBadRequest)
		}
		obj := a.table.NextFreeExcept(a.allocSkipLocked(ov.created))
		if obj == 0 {
			return fmt.Errorf("object table full: %w", ErrServer)
		}
		d := dirdata.New(st.Columns...)
		d.Seq = seq
		entry := ObjectEntry{Seq: seq, Secret: capability.NewSecret(st.CheckSeed)}
		ov.created[obj] = true
		ov.entries[obj] = entry
		ov.dirs[obj] = d
		result.Cap = capability.Mint(a.port, obj, entry.Secret)
		return nil

	case OpDeleteDir:
		if st.Dir.Object == RootObject {
			return fmt.Errorf("cannot delete the root directory: %w", ErrBadRequest)
		}
		if a.lockedByOtherLocked(st.Dir.Object, self) {
			return ErrConflict
		}
		if _, err := ov.verify(a, st.Dir, capability.RightDelete); err != nil {
			return err
		}
		obj := st.Dir.Object
		ov.deleted[obj] = true
		delete(ov.dirs, obj)
		delete(ov.entries, obj)
		return nil

	case OpMigOut:
		return a.migOutStepLocked(ov, st, seq, self)

	case OpMigIn:
		return a.migInStepLocked(ov, st, seq, self)

	case OpAppendRow, OpChmodRow, OpDeleteRow, OpReplaceSet:
		if a.lockedByOtherLocked(st.Dir.Object, self) {
			return ErrConflict
		}
		need := capability.RightWrite
		switch st.Op {
		case OpDeleteRow:
			need = capability.RightDelete
		case OpChmodRow:
			need = capability.RightAdmin
		}
		e, err := ov.verify(a, st.Dir, need)
		if err != nil {
			return err
		}
		obj := st.Dir.Object
		d, ok := ov.dir(a, obj)
		if !ok {
			return ErrNotFound
		}
		switch st.Op {
		case OpAppendRow:
			err = d.Append(st.Name, st.Cap, st.Masks)
		case OpChmodRow:
			err = d.Chmod(st.Name, st.Masks)
		case OpDeleteRow:
			err = d.Delete(st.Name)
		case OpReplaceSet:
			for _, it := range st.Set {
				old, rerr := d.Replace(it.Name, it.Cap)
				if rerr != nil {
					err = rerr
					break
				}
				result.Caps = append(result.Caps, old)
			}
		}
		if err != nil {
			return err
		}
		d.Seq = seq
		ov.entries[obj] = ObjectEntry{Seq: seq, Secret: e.Secret, Cap: e.Cap}
		return nil

	default:
		return ErrBadRequest
	}
}
