package dirsvc

import (
	"fmt"
	"time"
)

// This file implements the write-side lock-wait queue. Without it, an
// update that hits an object locked by a prepared two-phase transaction
// is refused with ErrConflict and the client retries from scratch —
// every retry a full round-trip plus backoff, the dominant source of
// the cross-shard batch latency tail. Instead, the *initiating* server
// parks the update in a bounded, deadline-aware FIFO queue per object
// and admits it the moment the decision releases the lock. The wait
// happens before the update enters the backend's ordered apply path
// (and never under the applier mutex on that path), so appliers, group
// streams and OpDecide itself are never blocked by waiters.

// ErrLockWaitTimeout is returned when an update waited out its deadline
// on an object still locked by a prepared transaction. It wraps
// ErrConflict, so StatusOf maps it to StatusConflict and clients retry
// exactly as before — the queue is purely a fast path.
var ErrLockWaitTimeout = fmt.Errorf("dirsvc: timed out waiting for an object lock: %w", ErrConflict)

// maxLockWaiters bounds the queue per object; an update arriving at a
// full queue is refused immediately (plain ErrConflict), shedding load
// under pile-ups instead of stacking unbounded blocked workers.
const maxLockWaiters = 16

// SetLockWaitSlots bounds how many callers may be parked in
// AwaitLockFree at once, across all objects. Servers pass workers−1 so
// a lock-wait pile-up can never absorb every RPC worker: one always
// stays free to accept the OpDecide that releases the locks. n ≤ 0
// disables waiting entirely (contention refuses immediately); the
// default is unbounded.
func (a *Applier) SetLockWaitSlots(n int) {
	a.mu.Lock()
	if n < 0 {
		n = 0
	}
	a.waitSlots = n
	a.mu.Unlock()
}

// LockWaitTargets returns the objects an update request would need
// unlocked at this shard: the target directory of a plain mutation, or
// every step target of a batch or prepare. OpDecide — and anything else
// that never takes lock conflicts — returns nil: a decide *releases*
// locks, and queuing it behind them would deadlock the release.
//
// A PREPARE queues only at the transaction's resolver shard (its lowest
// participant); everywhere else it returns nil and a conflicting
// prepare fails fast. Plain updates and batches hold no locks while
// parked, so only prepares can hold-and-wait — and a parked prepare
// then waits at a shard strictly lower than any shard it holds locks
// on, which makes a wait-for cycle (and so distributed deadlock between
// concurrent coordinators) impossible: around any would-be cycle the
// waited-on shard index would have to decrease forever.
func LockWaitTargets(req *Request, shard int) []uint32 {
	switch req.Op {
	case OpDeleteDir, OpAppendRow, OpChmodRow, OpDeleteRow, OpReplaceSet:
		if req.Dir.Object != 0 {
			return []uint32{req.Dir.Object}
		}
	case OpBatch:
		steps, err := DecodeBatchSteps(req.Blob)
		if err != nil {
			return nil
		}
		return stepTargets(steps)
	case OpPrepare:
		p, err := DecodePrepare(req.Blob)
		if err != nil || p.Resolver != shard {
			return nil
		}
		steps, err := DecodeBatchSteps(p.Steps)
		if err != nil {
			return nil
		}
		return stepTargets(steps)
	}
	return nil
}

// stepTargets collects the distinct nonzero target objects of a batch.
func stepTargets(steps []*Request) []uint32 {
	seen := make(map[uint32]bool, len(steps))
	var objs []uint32
	for _, st := range steps {
		if st.Dir.Object != 0 && !seen[st.Dir.Object] {
			seen[st.Dir.Object] = true
			objs = append(objs, st.Dir.Object)
		}
	}
	return objs
}

// AwaitLockFree blocks until none of objs is locked by a prepared
// transaction — honoring per-object FIFO order among waiters — or the
// timeout passes (ErrLockWaitTimeout). A full queue refuses immediately
// with ErrConflict. The entire objs set shares one deadline.
//
// Callers run it on the request path of the *initiating* server, before
// the update is proposed to the backend; it must never be called from
// an apply path, which would hold up the ordered update stream the
// releasing OpDecide has to travel.
func (a *Applier) AwaitLockFree(objs []uint32, timeout time.Duration) error {
	if len(objs) == 0 {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for _, obj := range objs {
		if obj == 0 {
			continue
		}
		if err := a.awaitLockFree(obj, deadline); err != nil {
			return err
		}
	}
	return nil
}

func (a *Applier) awaitLockFree(obj uint32, deadline time.Time) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	// Fast path: unlocked and nobody queued ahead.
	if len(a.waiters[obj]) == 0 && !a.lockedByOtherLocked(obj, TxID{}) {
		return nil
	}
	if len(a.waiters[obj]) >= maxLockWaiters {
		return ErrConflict
	}
	if a.waitSlots >= 0 && a.activeWaiters >= a.waitSlots {
		return ErrConflict
	}
	if a.waiters == nil {
		a.waiters = make(map[uint32][]uint64)
	}
	a.activeWaiters++
	defer func() { a.activeWaiters-- }()
	a.waitTicket++
	ticket := a.waitTicket
	a.waiters[obj] = append(a.waiters[obj], ticket)
	wake := time.AfterFunc(time.Until(deadline), func() {
		a.mu.Lock()
		a.txCond.Broadcast()
		a.mu.Unlock()
	})
	defer wake.Stop()
	defer func() {
		// Leave the queue (success or timeout) and pass the turn on.
		q := a.waiters[obj]
		for i, t := range q {
			if t == ticket {
				a.waiters[obj] = append(q[:i], q[i+1:]...)
				break
			}
		}
		if len(a.waiters[obj]) == 0 {
			delete(a.waiters, obj)
		}
		a.txCond.Broadcast()
	}()
	for {
		if q := a.waiters[obj]; len(q) > 0 && q[0] == ticket && !a.lockedByOtherLocked(obj, TxID{}) {
			return nil
		}
		if !time.Now().Before(deadline) {
			return ErrLockWaitTimeout
		}
		a.txCond.Wait()
	}
}

// LockWaiters reports how many updates are currently queued on obj
// (tests and status).
func (a *Applier) LockWaiters(obj uint32) int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.waiters[obj])
}
