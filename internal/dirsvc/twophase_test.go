package dirsvc

import (
	"errors"
	"testing"
	"time"
)

// TestPrepareDecideCodecs round-trips the 2PC wire payloads and rejects
// truncations and foreign versions.
func TestPrepareDecideCodecs(t *testing.T) {
	steps := EncodeBatchSteps([]*Request{{Op: OpAppendRow, Name: "x"}})
	p := &Prepare{ID: NewTxID(), Resolver: 1, Participants: []int{1, 3}, Steps: steps}
	blob := EncodePrepare(p)
	got, err := DecodePrepare(blob)
	if err != nil {
		t.Fatalf("DecodePrepare: %v", err)
	}
	if got.ID != p.ID || got.Resolver != 1 || len(got.Participants) != 2 ||
		got.Participants[0] != 1 || got.Participants[1] != 3 {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := DecodeBatchSteps(got.Steps); err != nil {
		t.Fatalf("inner steps: %v", err)
	}
	for cut := 0; cut < len(blob); cut += 3 {
		if _, err := DecodePrepare(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), blob...)
	bad[0] = TxVersion + 1
	if _, err := DecodePrepare(bad); err == nil {
		t.Fatal("foreign version accepted")
	}

	d := &Decide{ID: p.ID, Commit: true}
	dgot, err := DecodeDecide(EncodeDecide(d))
	if err != nil || dgot.ID != d.ID || !dgot.Commit {
		t.Fatalf("decide round trip = %+v, %v", dgot, err)
	}
	if _, err := DecodeDecide(EncodeDecide(d)[:5]); err == nil {
		t.Fatal("truncated decide accepted")
	}
}

// preparedFixture stages one two-step transaction against a fresh
// applier and returns everything a decide test needs.
func preparedFixture(t *testing.T) (*applierFixture, TxID, *Request, []BatchStepResult) {
	t.Helper()
	f := newApplier(t)
	root, err := f.applier.RootCap()
	if err != nil {
		t.Fatal(err)
	}
	id := NewTxID()
	req := &Request{Op: OpPrepare, Blob: EncodePrepare(&Prepare{
		ID: id, Resolver: 0, Participants: []int{0, 1},
		Steps: EncodeBatchSteps([]*Request{
			{Op: OpAppendRow, Dir: root, Name: "staged", Cap: root, Masks: ownerMasks()},
			{Op: OpCreateDir, CheckSeed: []byte("tx-seed")},
		}),
	})}
	res, err := f.applier.ApplyUpdate(req, 5, true)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	results, err := DecodeBatchResults(res.Reply.Blob)
	if err != nil || len(results) != 2 || results[1].Cap.IsZero() {
		t.Fatalf("prepare results = %+v, %v", results, err)
	}
	return f, id, req, results
}

// TestPrepareStagesAndLocks proves a prepared transaction is invisible,
// holds its locks against conflicting updates, steers the allocator
// around its staged creations, and reports in-doubt state.
func TestPrepareStagesAndLocks(t *testing.T) {
	f, id, _, results := preparedFixture(t)
	root, _ := f.applier.RootCap()

	// Nothing visible: the staged append is not in the root.
	reply := f.applier.Read(&Request{Op: OpLookupSet, Dir: root, Set: []SetItem{{Name: "staged"}}})
	if !reply.Caps[0].IsZero() {
		t.Fatal("prepared step leaked into reads")
	}
	// Root is locked: a conflicting single update is refused.
	_, err := f.applier.ApplyUpdate(&Request{
		Op: OpAppendRow, Dir: root, Name: "other", Cap: root, Masks: ownerMasks(),
	}, 6, true)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting update: err = %v, want ErrConflict", err)
	}
	if !f.applier.Locked(root.Object) {
		t.Fatal("root not reported locked")
	}
	// The allocator must not hand out the staged creation's number.
	_, err = f.applier.ApplyUpdate(&Request{Op: OpCreateDir, CheckSeed: []byte("x")}, 6, true)
	if err != nil {
		t.Fatalf("unrelated create: %v", err)
	}
	if e, ok := f.table.Get(results[1].Cap.Object); ok && e.Seq != 0 {
		t.Fatal("allocator reused a staged object number")
	}
	// A second transaction touching the same object votes no.
	id2 := NewTxID()
	_, err = f.applier.ApplyUpdate(&Request{Op: OpPrepare, Blob: EncodePrepare(&Prepare{
		ID: id2, Resolver: 0, Participants: []int{0, 1},
		Steps: EncodeBatchSteps([]*Request{
			{Op: OpDeleteRow, Dir: root, Name: "whatever"},
		}),
	})}, 7, true)
	var be *BatchError
	if !errors.As(err, &be) || !errors.Is(err, ErrConflict) {
		t.Fatalf("overlapping prepare: err = %v, want BatchError{ErrConflict}", err)
	}
	// In-doubt snapshot names the transaction.
	txs := f.applier.InDoubtTxs()
	if len(txs) != 1 || txs[0].ID != id || txs[0].Resolver != 0 {
		t.Fatalf("InDoubtTxs = %+v", txs)
	}
	if state, _ := f.applier.TxStateOf(id); state != TxPrepared {
		t.Fatalf("TxStateOf = %v, want prepared", state)
	}
}

// TestDecideCommitAppliesAtomically proves the commit writes the staged
// overlay through under the decide's sequence number, releases the
// locks, and is idempotent on retry.
func TestDecideCommitAppliesAtomically(t *testing.T) {
	f, id, _, results := preparedFixture(t)
	root, _ := f.applier.RootCap()

	decide := &Request{Op: OpDecide, Blob: EncodeDecide(&Decide{ID: id, Commit: true})}
	res, err := f.applier.ApplyUpdate(decide, 9, true)
	if err != nil {
		t.Fatalf("decide commit: %v", err)
	}
	if res.Reply.Seq != 9 {
		t.Fatalf("commit seq = %d, want 9", res.Reply.Seq)
	}
	reply := f.applier.Read(&Request{Op: OpLookupSet, Dir: root, Set: []SetItem{{Name: "staged"}}})
	if reply.Caps[0].IsZero() {
		t.Fatal("committed step not visible")
	}
	// The touched object's Seq moved only at commit, to the commit seq.
	if e, ok := f.table.Get(root.Object); !ok || e.Seq != 9 {
		t.Fatalf("root entry seq = %+v, want 9", e)
	}
	if cr := f.applier.Read(&Request{Op: OpListDir, Dir: results[1].Cap}); cr.Status != StatusOK {
		t.Fatalf("created directory unreadable after commit: %+v", cr)
	}
	if f.applier.Locked(root.Object) {
		t.Fatal("lock survived the commit")
	}
	if state, seq := f.applier.TxStateOf(id); state != TxCommitted || seq != 9 {
		t.Fatalf("TxStateOf = %v/%d, want committed/9", state, seq)
	}
	// Retried decide (a client that missed the reply) is idempotent.
	res2, err := f.applier.ApplyUpdate(decide, 12, true)
	if err != nil || res2.Reply.Seq != 9 {
		t.Fatalf("decide retry: %+v, %v", res2, err)
	}
	// The opposite decision now conflicts.
	_, err = f.applier.ApplyUpdate(&Request{
		Op: OpDecide, Blob: EncodeDecide(&Decide{ID: id, Commit: false}),
	}, 13, true)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("abort after commit: err = %v, want ErrConflict", err)
	}
}

// TestDecideAbortDiscards proves an abort leaves no trace and presumed
// abort accepts unknown transactions.
func TestDecideAbortDiscards(t *testing.T) {
	f, id, _, _ := preparedFixture(t)
	root, _ := f.applier.RootCap()

	if _, err := f.applier.ApplyUpdate(&Request{
		Op: OpDecide, Blob: EncodeDecide(&Decide{ID: id, Commit: false}),
	}, 9, true); err != nil {
		t.Fatalf("decide abort: %v", err)
	}
	reply := f.applier.Read(&Request{Op: OpLookupSet, Dir: root, Set: []SetItem{{Name: "staged"}}})
	if !reply.Caps[0].IsZero() {
		t.Fatal("aborted step leaked")
	}
	if f.applier.Locked(root.Object) {
		t.Fatal("lock survived the abort")
	}
	if state, _ := f.applier.TxStateOf(id); state != TxAborted {
		t.Fatalf("TxStateOf = %v, want aborted", state)
	}
	// The object is writable again.
	if _, err := f.applier.ApplyUpdate(&Request{
		Op: OpAppendRow, Dir: root, Name: "after", Cap: root, Masks: ownerMasks(),
	}, 10, true); err != nil {
		t.Fatalf("update after abort: %v", err)
	}
	// Commit for an unknown transaction is refused; abort is a no-op.
	other := NewTxID()
	if _, err := f.applier.ApplyUpdate(&Request{
		Op: OpDecide, Blob: EncodeDecide(&Decide{ID: other, Commit: true}),
	}, 11, true); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown commit: err = %v, want ErrNotFound", err)
	}
	if _, err := f.applier.ApplyUpdate(&Request{
		Op: OpDecide, Blob: EncodeDecide(&Decide{ID: other, Commit: false}),
	}, 11, true); err != nil {
		t.Fatalf("presumed abort of unknown tx: %v", err)
	}
}

// TestPrepareReplayRestages proves recovery replay semantics: replaying
// the same prepare after ResetTx re-stages the identical transaction.
func TestPrepareReplayRestages(t *testing.T) {
	f, id, req, results := preparedFixture(t)
	f.applier.ResetTx()
	if state, _ := f.applier.TxStateOf(id); state != TxUnknown {
		t.Fatalf("state after reset = %v", state)
	}
	res, err := f.applier.ApplyUpdate(req, 5, false)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	replayed, err := DecodeBatchResults(res.Reply.Blob)
	if err != nil || len(replayed) != 2 || replayed[1].Cap != results[1].Cap {
		t.Fatalf("replay minted different capabilities: %+v vs %+v (%v)", replayed, results, err)
	}
	if state, _ := f.applier.TxStateOf(id); state != TxPrepared {
		t.Fatalf("state after replay = %v, want prepared", state)
	}
}

// TestWaitUnlocked covers the reader-blocking primitive: an unlocked
// object passes immediately, a locked one blocks until the decision.
func TestWaitUnlocked(t *testing.T) {
	f, id, _, _ := preparedFixture(t)
	root, _ := f.applier.RootCap()
	if !f.applier.WaitUnlocked(42, time.Millisecond) {
		t.Fatal("unlocked object reported locked")
	}
	if f.applier.WaitUnlocked(root.Object, 10*time.Millisecond) {
		t.Fatal("locked object reported free")
	}
	done := make(chan bool, 1)
	go func() { done <- f.applier.WaitUnlocked(root.Object, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	if _, err := f.applier.ApplyUpdate(&Request{
		Op: OpDecide, Blob: EncodeDecide(&Decide{ID: id, Commit: true}),
	}, 9, true); err != nil {
		t.Fatalf("decide: %v", err)
	}
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("waiter timed out despite the decision")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke")
	}
}
