package dirsvc

import (
	"errors"

	"dirsvc/internal/capability"
	"sync"
	"testing"
	"time"
)

// waitFor spins until cond() holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAwaitLockFreeReleasedByDecide is the core fast-path claim of the
// lock-wait queue: a waiter parked on a prepared transaction's lock is
// woken by the decide that releases it — no timeout, no retry loop.
func TestAwaitLockFreeReleasedByDecide(t *testing.T) {
	f, id, _, _ := preparedFixture(t)
	root, _ := f.applier.RootCap()

	done := make(chan error, 1)
	go func() {
		done <- f.applier.AwaitLockFree([]uint32{root.Object}, 10*time.Second)
	}()
	waitFor(t, "waiter to queue", func() bool { return f.applier.LockWaiters(root.Object) == 1 })
	select {
	case err := <-done:
		t.Fatalf("waiter returned %v while the lock was still held", err)
	case <-time.After(50 * time.Millisecond):
	}

	decide := &Request{Op: OpDecide, Blob: EncodeDecide(&Decide{ID: id, Commit: true})}
	if _, err := f.applier.ApplyUpdate(decide, 6, true); err != nil {
		t.Fatalf("decide: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter after decide: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("decide did not wake the parked waiter")
	}
	if n := f.applier.LockWaiters(root.Object); n != 0 {
		t.Fatalf("queue not drained: %d waiters left", n)
	}
}

// TestAwaitLockFreeTimeout: a waiter that outlives its deadline gets the
// typed ErrLockWaitTimeout, which still satisfies errors.Is(ErrConflict)
// so existing retry classification is untouched.
func TestAwaitLockFreeTimeout(t *testing.T) {
	f, _, _, _ := preparedFixture(t)
	root, _ := f.applier.RootCap()

	start := time.Now()
	err := f.applier.AwaitLockFree([]uint32{root.Object}, 60*time.Millisecond)
	if !errors.Is(err, ErrLockWaitTimeout) {
		t.Fatalf("err = %v, want ErrLockWaitTimeout", err)
	}
	if !errors.Is(err, ErrConflict) {
		t.Fatal("ErrLockWaitTimeout must wrap ErrConflict for status mapping")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	if n := f.applier.LockWaiters(root.Object); n != 0 {
		t.Fatalf("timed-out waiter left a queue entry: %d", n)
	}
}

// TestAwaitLockFreeFIFO: waiters admitted in arrival order — the queue
// is fair, not a broadcast stampede.
func TestAwaitLockFreeFIFO(t *testing.T) {
	f, id, _, _ := preparedFixture(t)
	root, _ := f.applier.RootCap()

	const waiters = 4
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := f.applier.AwaitLockFree([]uint32{root.Object}, 10*time.Second); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}()
		// Let each waiter queue before starting the next, so arrival
		// order is the ticket order.
		waitFor(t, "waiter to queue", func() bool { return f.applier.LockWaiters(root.Object) == i+1 })
	}

	decide := &Request{Op: OpDecide, Blob: EncodeDecide(&Decide{ID: id, Commit: false})}
	if _, err := f.applier.ApplyUpdate(decide, 6, true); err != nil {
		t.Fatalf("decide: %v", err)
	}
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("wake order %v, want FIFO", order)
		}
	}
}

// TestAwaitLockFreeFullQueueSheds: the 17th waiter on one object is
// refused immediately with plain ErrConflict — load is shed, workers
// are not stacked without bound.
func TestAwaitLockFreeFullQueueSheds(t *testing.T) {
	f, id, _, _ := preparedFixture(t)
	root, _ := f.applier.RootCap()

	var wg sync.WaitGroup
	for i := 0; i < maxLockWaiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = f.applier.AwaitLockFree([]uint32{root.Object}, 10*time.Second)
		}()
	}
	waitFor(t, "queue to fill", func() bool { return f.applier.LockWaiters(root.Object) == maxLockWaiters })

	start := time.Now()
	err := f.applier.AwaitLockFree([]uint32{root.Object}, 10*time.Second)
	if !errors.Is(err, ErrConflict) || errors.Is(err, ErrLockWaitTimeout) {
		t.Fatalf("overflow waiter err = %v, want immediate plain ErrConflict", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("overflow waiter blocked instead of refusing immediately")
	}

	decide := &Request{Op: OpDecide, Blob: EncodeDecide(&Decide{ID: id, Commit: true})}
	if _, err := f.applier.ApplyUpdate(decide, 6, true); err != nil {
		t.Fatalf("decide: %v", err)
	}
	wg.Wait()
}

// TestLockWaitSlotsCap: the global slot budget (workers−1 in the
// servers) refuses waiters beyond the cap even when per-object queues
// have room, so a pile-up can never absorb every RPC worker.
func TestLockWaitSlotsCap(t *testing.T) {
	f, id, _, _ := preparedFixture(t)
	root, _ := f.applier.RootCap()
	f.applier.SetLockWaitSlots(1)

	done := make(chan error, 1)
	go func() {
		done <- f.applier.AwaitLockFree([]uint32{root.Object}, 10*time.Second)
	}()
	waitFor(t, "first waiter to queue", func() bool { return f.applier.LockWaiters(root.Object) == 1 })

	if err := f.applier.AwaitLockFree([]uint32{root.Object}, 10*time.Second); !errors.Is(err, ErrConflict) {
		t.Fatalf("second waiter err = %v, want ErrConflict (slot budget spent)", err)
	}

	decide := &Request{Op: OpDecide, Blob: EncodeDecide(&Decide{ID: id, Commit: true})}
	if _, err := f.applier.ApplyUpdate(decide, 6, true); err != nil {
		t.Fatalf("decide: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("first waiter: %v", err)
	}

	// n ≤ 0 disables waiting outright.
	f.applier.SetLockWaitSlots(0)
	if err := f.applier.AwaitLockFree([]uint32{root.Object}, time.Second); err != nil {
		t.Fatalf("unlocked object with slots=0: %v", err)
	}
}

// TestLockWaitTargetsResolverOnly pins the deadlock-freedom rule: a
// PREPARE parks only at its resolver shard; everywhere else it must
// fail fast, because it may already hold locks at other shards.
func TestLockWaitTargetsResolverOnly(t *testing.T) {
	root := capability.Capability{Object: 7}
	steps := EncodeBatchSteps([]*Request{
		{Op: OpAppendRow, Dir: root, Name: "a"},
		{Op: OpDeleteRow, Dir: capability.Capability{Object: 9}, Name: "b"},
	})
	prep := &Request{Op: OpPrepare, Blob: EncodePrepare(&Prepare{
		ID: NewTxID(), Resolver: 1, Participants: []int{1, 3}, Steps: steps,
	})}

	if got := LockWaitTargets(prep, 1); len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Fatalf("prepare at resolver shard: targets = %v, want [7 9]", got)
	}
	if got := LockWaitTargets(prep, 3); got != nil {
		t.Fatalf("prepare at non-resolver shard must not park: targets = %v", got)
	}

	// Decide never queues — it is what releases the locks.
	dec := &Request{Op: OpDecide, Blob: EncodeDecide(&Decide{ID: NewTxID(), Commit: true})}
	if got := LockWaitTargets(dec, 1); got != nil {
		t.Fatalf("decide queued behind the locks it releases: %v", got)
	}

	// Plain updates and batches park at any shard: they hold nothing.
	upd := &Request{Op: OpAppendRow, Dir: root, Name: "x"}
	if got := LockWaitTargets(upd, 3); len(got) != 1 || got[0] != 7 {
		t.Fatalf("plain update targets = %v, want [7]", got)
	}
	batch := &Request{Op: OpBatch, Blob: steps}
	if got := LockWaitTargets(batch, 3); len(got) != 2 {
		t.Fatalf("batch targets = %v, want both step objects", got)
	}
	if got := LockWaitTargets(&Request{Op: OpListDir, Dir: root}, 0); got != nil {
		t.Fatalf("read op queued: %v", got)
	}
}
