package dirsvc

import (
	"errors"

	"dirsvc/internal/capability"
)

// Shard-map epochs layer elastic topology over the residue rule. A
// deployment provisions Total shards at boot but activates only Base of
// them; epoch e activates min(Base<<e, Total). An epoch bump is a
// power-of-two split: every active shard s pairs with its twin
// s+active(e), and exactly the objects with (obj-1) mod active(e+1) ==
// twin move — the residue classes of a doubled modulus nest, so no
// other object changes home. Objects then migrate one at a time through
// the two-phase machinery (OpMigOut at the source, OpMigIn at the
// target), leaving a forwarding stub at the source until the split is
// sealed.
//
// The split records an allocation floor at both sides: the highest
// object number the source had ever allocated in the moving class.
// Below the floor the source is authoritative for absence ("I would
// have had it"), so a miss does not bounce to the target; above it the
// target allocates fresh numbers, so the two sides can never mint the
// same object number. The floor is what keeps the one-hop forwarding
// chase loop-free while both sides still answer for the class.

// Migration phases of one shard's current split (TopoState.MigPhase).
const (
	// MigNone: no split in progress on this shard.
	MigNone byte = 0
	// MigSource: this shard is shedding the moving class; forwarding
	// stubs accumulate until OpDropStubs.
	MigSource byte = 1
	// MigTarget: this shard is receiving the moving class and has not
	// been sealed; misses at or below the floor chase to the source.
	MigTarget byte = 2
)

// ErrNotMine reports that the addressed shard does not own the object
// under the current shard-map epoch; the reply's NotMine blob names the
// owner so the client can chase one hop and refresh its map.
var ErrNotMine = errors.New("dirsvc: object not owned by this shard")

// ActiveShardsAt returns the number of active shards at an epoch: base
// doubled per epoch, capped at the provisioned total.
func ActiveShardsAt(epoch uint64, base, total int) int {
	if base <= 0 {
		base = 1
	}
	if total < base {
		total = base
	}
	active := base
	for e := uint64(0); e < epoch && active*2 <= total; e++ {
		active *= 2
	}
	return active
}

// HomeShardAt returns the owning shard of an object under the residue
// rule at an epoch.
func HomeShardAt(obj uint32, epoch uint64, base, total int) int {
	active := ActiveShardsAt(epoch, base, total)
	if active <= 1 || obj == 0 {
		return 0
	}
	return int((obj - 1) % uint32(active))
}

// TopoState is one shard's view of the elastic shard map: the epoch,
// the boot-time geometry, and the state of its current split (if any).
// It is mutated only under the applier's totally-ordered update stream,
// so every replica of a shard holds an identical copy.
type TopoState struct {
	Epoch uint64
	Shard int
	Base  int // active shards at epoch 0
	Total int // provisioned shards

	MigPhase byte   // MigNone | MigSource | MigTarget
	MigPeer  int    // twin shard of the split (source<->target)
	MigFloor uint32 // floor of the current split's moving class

	// AllocFloor survives the seal: a split target never allocates at or
	// below it, even long after the migration, so a hole left by a
	// deletion at the source can never be re-minted at the target while
	// stale clients might still route it to the source.
	AllocFloor uint32
}

// Active returns the active shard count at the state's epoch.
func (t *TopoState) Active() int { return ActiveShardsAt(t.Epoch, t.Base, t.Total) }

// Home returns the owning shard of obj at the state's epoch.
func (t *TopoState) Home(obj uint32) int { return HomeShardAt(obj, t.Epoch, t.Base, t.Total) }

// Clone returns a copy (for handing out under a different lock).
func (t *TopoState) Clone() TopoState { return *t }

// EncodeTopoState renders the state for the commit-block tail and the
// recovery bundle: epoch u64 | base u32 | total u32 | phase u8 |
// peer u32 | floor u32 | allocfloor u32. Fixed size (TopoStateLen); a
// decoder may be handed a longer buffer and ignores the tail.
func EncodeTopoState(t *TopoState) []byte {
	var w writer
	w.u64(t.Epoch)
	w.u32(uint32(t.Base))
	w.u32(uint32(t.Total))
	w.u8(t.MigPhase)
	w.u32(uint32(t.MigPeer))
	w.u32(t.MigFloor)
	w.u32(t.AllocFloor)
	return w.buf
}

// TopoStateLen is the encoded size of a TopoState.
const TopoStateLen = 8 + 4 + 4 + 1 + 4 + 4 + 4

// DecodeTopoState parses an EncodeTopoState blob (extra trailing bytes
// are ignored, so it can decode in place from a block tail).
func DecodeTopoState(raw []byte) (*TopoState, error) {
	r := byteReader{buf: raw}
	t := &TopoState{}
	t.Epoch = r.u64()
	t.Base = int(r.u32())
	t.Total = int(r.u32())
	t.MigPhase = r.u8()
	t.MigPeer = int(r.u32())
	t.MigFloor = r.u32()
	t.AllocFloor = r.u32()
	if r.failed {
		return nil, errors.New("dirsvc: bad topo state")
	}
	return t, nil
}

// EncodeNotMine renders the StatusNotMine reply blob: the replying
// shard's epoch and the shard it believes owns the object.
func EncodeNotMine(epoch uint64, shard int) []byte {
	var w writer
	w.u64(epoch)
	w.u32(uint32(shard))
	return w.buf
}

// DecodeNotMine parses a StatusNotMine reply blob.
func DecodeNotMine(raw []byte) (epoch uint64, shard int, err error) {
	r := byteReader{buf: raw}
	epoch = r.u64()
	shard = int(r.u32())
	if r.failed {
		return 0, 0, errors.New("dirsvc: bad notmine blob")
	}
	return epoch, shard, nil
}

// ShardMapInfo is the OpShardMap reply: the shard's topology view, its
// object count, and the objects it still holds that belong elsewhere
// under the current epoch (the migration work list).
type ShardMapInfo struct {
	Topo    TopoState
	Objects int      // used entries in the object table
	Stubs   int      // live forwarding stubs
	Moving  []uint32 // owned objects whose home is another shard
}

// EncodeShardMapInfo renders an OpShardMap reply blob.
func EncodeShardMapInfo(info *ShardMapInfo) []byte {
	var w writer
	w.bytes(EncodeTopoState(&info.Topo))
	w.u32(uint32(info.Objects))
	w.u32(uint32(info.Stubs))
	w.u32(uint32(len(info.Moving)))
	for _, obj := range info.Moving {
		w.u32(obj)
	}
	return w.buf
}

// DecodeShardMapInfo parses an OpShardMap reply blob.
func DecodeShardMapInfo(raw []byte) (*ShardMapInfo, error) {
	r := byteReader{buf: raw}
	topoRaw := r.lenBytes()
	if r.failed {
		return nil, errors.New("dirsvc: bad shard map blob")
	}
	topo, err := DecodeTopoState(topoRaw)
	if err != nil {
		return nil, err
	}
	info := &ShardMapInfo{Topo: *topo}
	info.Objects = int(r.u32())
	info.Stubs = int(r.u32())
	n := int(r.u32())
	if r.failed || n < 0 || n > 1<<20 {
		return nil, errors.New("dirsvc: bad shard map blob")
	}
	for i := 0; i < n; i++ {
		info.Moving = append(info.Moving, r.u32())
	}
	if r.failed {
		return nil, errors.New("dirsvc: bad shard map blob")
	}
	return info, nil
}

// MigImageBlob packs an OpMigIn step's payload: the object's per-object
// secret and its directory image, exactly as read from the source by
// OpMigRead. Each replica of the target mints its own Bullet capability
// from the image bytes, the same way recovery state transfer does.
func MigImageBlob(secret capability.Secret, image []byte) []byte {
	out := make([]byte, 0, len(secret)+len(image))
	out = append(out, secret[:]...)
	return append(out, image...)
}

// SplitMigImageBlob splits an OpMigIn payload back into secret and
// image.
func SplitMigImageBlob(raw []byte) (capability.Secret, []byte, error) {
	var secret capability.Secret
	if len(raw) < len(secret) {
		return secret, nil, errors.New("dirsvc: short migration image")
	}
	copy(secret[:], raw[:len(secret)])
	return secret, raw[len(secret):], nil
}
