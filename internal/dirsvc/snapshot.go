package dirsvc

import (
	"fmt"
	"sort"

	"dirsvc/internal/capability"
	"dirsvc/internal/dirdata"
)

// This file defines the portable shard snapshot: a self-contained image
// of one shard's replica state — object table entries with their
// directory images, forwarding stubs, topology, and the two-phase-commit
// participant state (staged prepares and remembered outcomes). The same
// blob serves three roles:
//
//   - the checkpoint payload of the disk engine (engine.go), so recovery
//     is checkpoint + log-suffix replay instead of a full replay;
//   - the OpBackup reply, a portable backup a client can store anywhere;
//   - the OpRestoreShard request body, which reinstalls the image through
//     the backend's ordinary replicated update path.
//
// Because the in-doubt prepares ride in the snapshot, a checkpoint is a
// durable copy of the shard's 2PC votes: a plain-durable deployment with
// the engine enabled no longer has the simultaneous whole-shard-crash
// window in which a prepared vote could be forgotten.

// SnapVersion is the wire version of the snapshot blob.
const SnapVersion = 1

var snapMagic = [4]byte{'S', 'N', 'P', '1'}

// SnapObject is one object table entry plus its directory image.
type SnapObject struct {
	Object uint32
	Seq    uint64
	Secret capability.Secret
	Image  []byte
}

// SnapStub is one forwarding stub of a migrated object.
type SnapStub struct {
	Object uint32
	Target int
	Seq    uint64
}

// SnapTx is one staged, undecided prepare: the encoded OpPrepare request
// and the sequence number it applied under.
type SnapTx struct {
	Seq uint64
	Raw []byte
}

// Snapshot is a decoded shard snapshot.
type Snapshot struct {
	AppliedSeq uint64 // applied service sequence number at capture
	CommitSeq  uint64 // commit block sequence number at capture
	Topo       *TopoState
	Objects    []SnapObject
	Stubs      []SnapStub
	InDoubt    []SnapTx
	Decided    []DecidedTx
}

// MaxSeq returns the highest sequence number the snapshot covers:
// recovery and restore advance the applied counter to at least this.
func (s *Snapshot) MaxSeq() uint64 {
	m := s.AppliedSeq
	if s.CommitSeq > m {
		m = s.CommitSeq
	}
	for _, o := range s.Objects {
		if o.Seq > m {
			m = o.Seq
		}
	}
	for _, st := range s.Stubs {
		if st.Seq > m {
			m = st.Seq
		}
	}
	for _, tx := range s.InDoubt {
		if tx.Seq > m {
			m = tx.Seq
		}
	}
	for _, d := range s.Decided {
		if d.Seq > m {
			m = d.Seq
		}
	}
	return m
}

// Encode serializes the snapshot.
func (s *Snapshot) Encode() []byte {
	w := newWriter()
	w.buf = append(w.buf, snapMagic[:]...)
	w.u8(SnapVersion)
	w.u64(s.AppliedSeq)
	w.u64(s.CommitSeq)
	if s.Topo != nil {
		w.u8(1)
		w.buf = append(w.buf, EncodeTopoState(s.Topo)...)
	} else {
		w.u8(0)
	}
	w.u32(uint32(len(s.Objects)))
	for _, o := range s.Objects {
		w.u32(o.Object)
		w.u64(o.Seq)
		w.buf = append(w.buf, o.Secret[:]...)
		w.bytes(o.Image)
	}
	w.u32(uint32(len(s.Stubs)))
	for _, st := range s.Stubs {
		w.u32(st.Object)
		w.u32(uint32(st.Target))
		w.u64(st.Seq)
	}
	w.u32(uint32(len(s.InDoubt)))
	for _, tx := range s.InDoubt {
		w.u64(tx.Seq)
		w.bytes(tx.Raw)
	}
	w.u32(uint32(len(s.Decided)))
	for _, d := range s.Decided {
		w.buf = append(w.buf, d.ID[:]...)
		if d.Commit {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.u64(d.Seq)
		w.bytes(d.Results)
	}
	return w.buf
}

// DecodeSnapshot parses a snapshot blob.
func DecodeSnapshot(buf []byte) (*Snapshot, error) {
	if len(buf) < 5 || [4]byte(buf[:4]) != snapMagic {
		return nil, fmt.Errorf("snapshot: bad magic: %w", ErrBadRequest)
	}
	if buf[4] != SnapVersion {
		return nil, fmt.Errorf("snapshot: unsupported version %d: %w", buf[4], ErrBadRequest)
	}
	rd := &byteReader{buf: buf, off: 5}
	s := &Snapshot{}
	s.AppliedSeq = rd.u64()
	s.CommitSeq = rd.u64()
	if rd.u8() == 1 {
		t, err := DecodeTopoState(rd.take(TopoStateLen))
		if err != nil {
			return nil, err
		}
		s.Topo = t
	}
	nobj := int(rd.u32())
	if rd.failed || nobj > 1<<22 {
		return nil, fmt.Errorf("snapshot: object count: %w", ErrBadRequest)
	}
	for i := 0; i < nobj; i++ {
		var o SnapObject
		o.Object = rd.u32()
		o.Seq = rd.u64()
		copy(o.Secret[:], rd.take(len(o.Secret)))
		o.Image = rd.lenBytes()
		s.Objects = append(s.Objects, o)
	}
	nstub := int(rd.u32())
	if rd.failed || nstub > 1<<22 {
		return nil, fmt.Errorf("snapshot: stub count: %w", ErrBadRequest)
	}
	for i := 0; i < nstub; i++ {
		var st SnapStub
		st.Object = rd.u32()
		st.Target = int(rd.u32())
		st.Seq = rd.u64()
		s.Stubs = append(s.Stubs, st)
	}
	ntx := int(rd.u32())
	if rd.failed || ntx > 1<<20 {
		return nil, fmt.Errorf("snapshot: tx count: %w", ErrBadRequest)
	}
	for i := 0; i < ntx; i++ {
		var tx SnapTx
		tx.Seq = rd.u64()
		tx.Raw = rd.lenBytes()
		s.InDoubt = append(s.InDoubt, tx)
	}
	ndec := int(rd.u32())
	if rd.failed || ndec > 1<<20 {
		return nil, fmt.Errorf("snapshot: decided count: %w", ErrBadRequest)
	}
	for i := 0; i < ndec; i++ {
		var d DecidedTx
		copy(d.ID[:], rd.take(len(d.ID)))
		d.Commit = rd.u8() == 1
		d.Seq = rd.u64()
		d.Results = rd.lenBytes()
		s.Decided = append(s.Decided, d)
	}
	if rd.failed {
		return nil, fmt.Errorf("snapshot: truncated: %w", ErrBadRequest)
	}
	return s, nil
}

// SnapshotState captures the shard's current replica state as a
// snapshot. appliedSeq and commitSeq are the calling server's counters;
// everything else is sampled consistently under the applier lock.
func (a *Applier) SnapshotState(appliedSeq, commitSeq uint64) *Snapshot {
	a.mu.RLock()
	defer a.mu.RUnlock()
	snap := &Snapshot{AppliedSeq: appliedSeq, CommitSeq: commitSeq}
	if a.topo != nil {
		t := *a.topo
		snap.Topo = &t
	}
	entries := a.table.All()
	objs := make([]uint32, 0, len(entries))
	for obj := range entries {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, obj := range objs {
		d := a.cache[obj]
		if d == nil {
			// An entry with no cached image cannot be snapshotted; it can
			// only appear when the caller snapshots before LoadAll, which
			// no backend does.
			continue
		}
		e := entries[obj]
		snap.Objects = append(snap.Objects, SnapObject{
			Object: obj, Seq: e.Seq, Secret: e.Secret, Image: d.Encode(),
		})
	}
	stubs := a.table.Stubs()
	sobjs := make([]uint32, 0, len(stubs))
	for obj := range stubs {
		sobjs = append(sobjs, obj)
	}
	sort.Slice(sobjs, func(i, j int) bool { return sobjs[i] < sobjs[j] })
	for _, obj := range sobjs {
		st := stubs[obj]
		snap.Stubs = append(snap.Stubs, SnapStub{Object: obj, Target: st.Target, Seq: st.Seq})
	}
	txs := make([]*preparedTx, 0, len(a.prepared))
	for _, tx := range a.prepared {
		txs = append(txs, tx)
	}
	sort.Slice(txs, func(i, j int) bool { return txs[i].seq < txs[j].seq })
	for _, tx := range txs {
		snap.InDoubt = append(snap.InDoubt, SnapTx{Seq: tx.seq, Raw: tx.req.Encode()})
	}
	for _, id := range a.decidedOrder {
		d, ok := a.decided[id]
		if !ok {
			continue
		}
		snap.Decided = append(snap.Decided, DecidedTx{ID: id, Commit: d.commit, Seq: d.seq, Results: d.results})
	}
	return snap
}

// InstallSnapshot replaces the shard's replica state with the snapshot:
// table, images, stubs, topology, staged prepares, and remembered
// outcomes. In durable mode every image is written through to the Bullet
// store and the table blocks reach the disk; otherwise everything lands
// in RAM marked dirty for the background flush. Recovery and the
// readonly secondary call this directly; OpRestoreShard reaches it
// through the replicated update path.
func (a *Applier) InstallSnapshot(snap *Snapshot, durable bool) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, err := a.installSnapshotLocked(snap, durable)
	return err
}

// applyRestoreLocked executes OpRestoreShard: decode the snapshot in
// the request Blob and install it wholesale. DirtyObjects is the union
// of objects present before or after, so the NVRAM/local flush paths
// write every changed slot through (including ones the restore
// removed). Called with a.mu held.
func (a *Applier) applyRestoreLocked(req *Request, seq uint64, durable bool) (*ApplyResult, error) {
	snap, err := DecodeSnapshot(req.Blob)
	if err != nil {
		return nil, err
	}
	dirty, err := a.installSnapshotLocked(snap, durable)
	if err != nil {
		return nil, err
	}
	adv := snap.MaxSeq()
	if seq > adv {
		adv = seq
	}
	return &ApplyResult{
		Reply:        &Reply{Status: StatusOK, Seq: seq},
		DirtyObjects: dirty,
		// Slots may have emptied and restored seqs may exceed the stream
		// seq; advance the commit-block floor so recovery cannot regress.
		DeletedDir:  true,
		TopoChanged: snap.Topo != nil,
		AdvanceSeq:  adv,
	}, nil
}

// installSnapshotLocked is InstallSnapshot under a.mu; it returns the
// union of objects present before or after the install (the restore
// dirty set). Called with a.mu held.
func (a *Applier) installSnapshotLocked(snap *Snapshot, durable bool) ([]uint32, error) {
	touched := make(map[uint32]bool)
	for obj := range a.table.All() {
		touched[obj] = true
	}
	for obj := range a.table.Stubs() {
		touched[obj] = true
	}
	for obj := range a.cache {
		touched[obj] = true
	}

	entries := make(map[uint32]ObjectEntry, len(snap.Objects))
	cache := make(map[uint32]*dirdata.Directory, len(snap.Objects))
	for _, o := range snap.Objects {
		d, err := dirdata.Decode(o.Image)
		if err != nil {
			return nil, fmt.Errorf("snapshot image of object %d: %w", o.Object, err)
		}
		e := ObjectEntry{Seq: o.Seq, Secret: o.Secret}
		if durable {
			bcap, berr := a.bullet.Create(o.Image)
			if berr != nil {
				return nil, fmt.Errorf("store snapshot object %d: %w", o.Object, berr)
			}
			e.Cap = bcap
		}
		entries[o.Object] = e
		cache[o.Object] = d
		touched[o.Object] = true
	}
	stubs := make(map[uint32]StubEntry, len(snap.Stubs))
	for _, st := range snap.Stubs {
		stubs[st.Object] = StubEntry{Target: st.Target, Seq: st.Seq}
		touched[st.Object] = true
	}

	if durable {
		if err := a.table.ReplaceAll(entries, stubs); err != nil {
			return nil, err
		}
	} else {
		a.table.ReplaceAllRAM(entries, stubs)
	}
	a.cache = cache

	// Discard all transaction state, then re-stage the snapshot's
	// in-doubt prepares and remembered outcomes.
	a.prepared = make(map[TxID]*preparedTx)
	a.locks = make(map[uint32]TxID)
	a.decided = make(map[TxID]decidedTx)
	a.decidedOrder = nil
	a.txCond.Broadcast()
	for _, tx := range snap.InDoubt {
		req, err := DecodeRequest(tx.Raw)
		if err != nil {
			return nil, fmt.Errorf("snapshot prepare record: %w", err)
		}
		if req.Op != OpPrepare {
			return nil, fmt.Errorf("snapshot in-doubt record op %v: %w", req.Op, ErrBadRequest)
		}
		if _, err := a.applyPrepareLocked(req, tx.Seq); err != nil {
			return nil, fmt.Errorf("snapshot re-prepare: %w", err)
		}
	}
	for _, d := range snap.Decided {
		a.rememberDecidedLocked(d.ID, decidedTx{commit: d.Commit, seq: d.Seq, results: d.Results})
	}

	if snap.Topo != nil && a.topo != nil {
		cur := a.topo
		cur.Epoch = snap.Topo.Epoch
		cur.MigPhase = snap.Topo.MigPhase
		cur.MigPeer = snap.Topo.MigPeer
		cur.MigFloor = snap.Topo.MigFloor
		cur.AllocFloor = snap.Topo.AllocFloor
		a.table.ConfigureShard(cur.Shard, allocModUnder(cur.Shard, cur.Active(), cur.Total))
		a.table.SetAllocFloor(cur.AllocFloor)
	}

	out := make([]uint32, 0, len(touched))
	for obj := range touched {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
