package dirsvc

import (
	"testing"
)

func TestActiveShardsAt(t *testing.T) {
	cases := []struct {
		epoch       uint64
		base, total int
		want        int
	}{
		{0, 1, 1, 1}, {5, 1, 1, 1},
		{0, 1, 4, 1}, {1, 1, 4, 2}, {2, 1, 4, 4}, {3, 1, 4, 4},
		{0, 2, 8, 2}, {1, 2, 8, 4}, {2, 2, 8, 8}, {9, 2, 8, 8},
		{1, 3, 6, 6}, {2, 3, 6, 6}, // non-power-of-two base saturates at total
		{0, 0, 0, 1}, // degenerate inputs clamp to 1
		{1, 4, 6, 4}, // 8 > total: no room to double
	}
	for _, c := range cases {
		if got := ActiveShardsAt(c.epoch, c.base, c.total); got != c.want {
			t.Errorf("ActiveShardsAt(%d, %d, %d) = %d, want %d", c.epoch, c.base, c.total, got, c.want)
		}
	}
}

// TestAllocModUnder checks the reserve-shard allocator rule: a shard
// not yet active mints object numbers under the modulus of the first
// epoch that activates it, so everything it ever allocates is in the
// residue class it will own — activation never strands or remints a
// number.
func TestAllocModUnder(t *testing.T) {
	geometries := []struct{ base, total int }{
		{1, 1}, {1, 2}, {1, 4}, {1, 8}, {2, 4}, {2, 8}, {4, 8},
	}
	for _, g := range geometries {
		for shard := 0; shard < g.total; shard++ {
			m := allocModUnder(shard, g.base, g.total)
			if shard < g.base {
				if m != g.base {
					t.Fatalf("active shard %d (%d/%d): allocModUnder = %d, want %d", shard, g.base, g.total, m, g.base)
				}
				continue
			}
			// The first epoch activating `shard` has active count m.
			var firstActive uint64
			for e := uint64(0); ; e++ {
				if ActiveShardsAt(e, g.base, g.total) > shard {
					firstActive = e
					break
				}
			}
			if got := ActiveShardsAt(firstActive, g.base, g.total); got != m {
				t.Fatalf("reserve shard %d (%d/%d): allocModUnder = %d, first activation epoch %d has active %d",
					shard, g.base, g.total, m, firstActive, got)
			}
			// Numbers minted in class `shard` under modulus m are homed at
			// this shard from activation on.
			for k := uint32(0); k < 8; k++ {
				obj := uint32(shard+1) + k*uint32(m)
				if home := HomeShardAt(obj, firstActive, g.base, g.total); home != shard {
					t.Fatalf("minted object %d of reserve shard %d (%d/%d) homes at %d on activation",
						obj, shard, g.base, g.total, home)
				}
			}
		}
	}
}

func TestTopoStateCodec(t *testing.T) {
	in := TopoState{
		Epoch: 3, Base: 2, Total: 8,
		MigPhase: MigTarget, MigPeer: 5, MigFloor: 1234, AllocFloor: 999,
	}
	raw := EncodeTopoState(&in)
	if len(raw) != TopoStateLen {
		t.Fatalf("EncodeTopoState: %d bytes, want %d", len(raw), TopoStateLen)
	}
	out, err := DecodeTopoState(raw)
	if err != nil {
		t.Fatalf("DecodeTopoState: %v", err)
	}
	// Shard identity is not on the wire; everything else round-trips.
	in.Shard = out.Shard
	if *out != in {
		t.Fatalf("TopoState round trip: got %+v, want %+v", *out, in)
	}
	if _, err := DecodeTopoState(raw[:TopoStateLen-1]); err == nil {
		t.Fatal("DecodeTopoState accepted a truncated buffer")
	}
}

func TestNotMineCodec(t *testing.T) {
	raw := EncodeNotMine(7, 3)
	epoch, owner, err := DecodeNotMine(raw)
	if err != nil || epoch != 7 || owner != 3 {
		t.Fatalf("NotMine round trip: epoch=%d owner=%d err=%v", epoch, owner, err)
	}
	if _, _, err := DecodeNotMine(raw[:2]); err == nil {
		t.Fatal("DecodeNotMine accepted a truncated buffer")
	}
}

func TestShardMapInfoCodec(t *testing.T) {
	in := &ShardMapInfo{
		Topo:    TopoState{Epoch: 2, Base: 1, Total: 4, MigPhase: MigSource, MigPeer: 2, MigFloor: 42},
		Objects: 17,
		Stubs:   3,
		Moving:  []uint32{3, 7, 11},
	}
	out, err := DecodeShardMapInfo(EncodeShardMapInfo(in))
	if err != nil {
		t.Fatalf("DecodeShardMapInfo: %v", err)
	}
	if out.Objects != in.Objects || out.Stubs != in.Stubs || len(out.Moving) != 3 ||
		out.Moving[0] != 3 || out.Moving[2] != 11 || out.Topo.Epoch != 2 || out.Topo.MigFloor != 42 {
		t.Fatalf("ShardMapInfo round trip: got %+v, want %+v", out, in)
	}
}

func TestMigImageBlobCodec(t *testing.T) {
	var secret [6]byte
	copy(secret[:], "s3cr3t")
	image := []byte("directory image bytes")
	sec, img, err := SplitMigImageBlob(MigImageBlob(secret, image))
	if err != nil {
		t.Fatalf("SplitMigImageBlob: %v", err)
	}
	if sec != secret || string(img) != string(image) {
		t.Fatalf("MigImageBlob round trip: secret=%q img=%q", sec, img)
	}
	if _, _, err := SplitMigImageBlob([]byte("shrt")); err == nil {
		t.Fatal("SplitMigImageBlob accepted a truncated blob")
	}
}
