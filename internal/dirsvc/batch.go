package dirsvc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dirsvc/internal/capability"
)

// BatchVersion is the wire version of the OpBatch payload. Decoders
// reject other versions, so the format can evolve without silent
// misinterpretation.
const BatchVersion = 1

// MaxBatchSteps bounds one batch (wire sanity limit).
const MaxBatchSteps = 1024

// ErrBatchVersion is returned when an OpBatch payload carries an
// unsupported version byte.
var ErrBatchVersion = fmt.Errorf("unsupported batch version: %w", ErrBadRequest)

// BatchError reports which step of an atomic batch failed. The batch as a
// whole had no effect.
type BatchError struct {
	Index int   // zero-based step index
	Err   error // the step's failure
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("batch step %d: %v", e.Index, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// BatchStepResult is the per-step outcome of a successfully applied
// batch.
type BatchStepResult struct {
	Cap  capability.Capability   // create-dir: the new directory's capability
	Caps []capability.Capability // replace-set: the previous capabilities
}

// NewBatchRequest packs update steps into a single OpBatch request.
func NewBatchRequest(steps []*Request) *Request {
	return &Request{Op: OpBatch, Blob: EncodeBatchSteps(steps)}
}

// EncodeBatchSteps serializes batch steps as the versioned OpBatch blob.
func EncodeBatchSteps(steps []*Request) []byte {
	w := newWriter()
	w.u8(BatchVersion)
	w.u16(uint16(len(steps)))
	for _, st := range steps {
		w.bytes(st.Encode())
	}
	return w.buf
}

// DecodeBatchSteps parses an OpBatch blob. Every step must itself be an
// update operation; nested batches and reads are rejected.
func DecodeBatchSteps(blob []byte) ([]*Request, error) {
	if len(blob) < 1 {
		return nil, ErrBadRequest
	}
	if blob[0] != BatchVersion {
		return nil, ErrBatchVersion
	}
	rd := &byteReader{buf: blob, off: 1}
	n := int(rd.u16())
	if rd.failed || n == 0 || n > MaxBatchSteps {
		return nil, ErrBadRequest
	}
	steps := make([]*Request, 0, n)
	for i := 0; i < n; i++ {
		raw := rd.lenBytes()
		if rd.failed {
			return nil, ErrBadRequest
		}
		st, err := DecodeRequest(raw)
		if err != nil {
			return nil, err
		}
		if st.Op == OpBatch || !st.Op.IsUpdate() {
			return nil, fmt.Errorf("batch step %d: op %v not allowed: %w", i, st.Op, ErrBadRequest)
		}
		steps = append(steps, st)
	}
	if rd.off != len(blob) {
		return nil, ErrBadRequest
	}
	return steps, nil
}

// EncodeBatchResults serializes the per-step results of an applied batch
// (the reply blob).
func EncodeBatchResults(results []BatchStepResult) []byte {
	w := newWriter()
	w.u8(BatchVersion)
	w.u16(uint16(len(results)))
	for _, res := range results {
		w.cap(res.Cap)
		w.u16(uint16(len(res.Caps)))
		for _, c := range res.Caps {
			w.cap(c)
		}
	}
	return w.buf
}

// DecodeBatchResults parses a batch reply blob.
func DecodeBatchResults(blob []byte) ([]BatchStepResult, error) {
	if len(blob) < 1 {
		return nil, ErrBadRequest
	}
	if blob[0] != BatchVersion {
		return nil, ErrBatchVersion
	}
	rd := &byteReader{buf: blob, off: 1}
	n := int(rd.u16())
	if rd.failed || n > MaxBatchSteps {
		return nil, ErrBadRequest
	}
	results := make([]BatchStepResult, 0, n)
	for i := 0; i < n; i++ {
		var res BatchStepResult
		res.Cap = rd.cap()
		nc := int(rd.u16())
		if rd.failed || nc > MaxBatchSteps {
			return nil, ErrBadRequest
		}
		for j := 0; j < nc; j++ {
			res.Caps = append(res.Caps, rd.cap())
		}
		results = append(results, res)
	}
	if rd.failed || rd.off != len(blob) {
		return nil, ErrBadRequest
	}
	return results, nil
}

// EncodeBatchFailIndex serializes the failing step index for an error
// reply's blob.
func EncodeBatchFailIndex(idx int) []byte {
	return binary.BigEndian.AppendUint32(nil, uint32(idx))
}

// DecodeBatchFailIndex recovers the failing step index from an error
// reply's blob; ok is false when the blob does not carry one.
func DecodeBatchFailIndex(blob []byte) (int, bool) {
	if len(blob) != 4 {
		return 0, false
	}
	return int(binary.BigEndian.Uint32(blob)), true
}

// EnsureBatchSeeds fills the CheckSeed of every create-dir step that has
// none, using seed(i) for step i. The initiator must do this before an
// update is replicated so every replica mints identical capabilities
// (§3.1). It reports whether any seed was added (the request blob must
// then be re-encoded).
func EnsureBatchSeeds(steps []*Request, seed func(step int) []byte) bool {
	changed := false
	for i, st := range steps {
		if st.Op == OpCreateDir && len(st.CheckSeed) == 0 {
			st.CheckSeed = seed(i)
			changed = true
		}
	}
	return changed
}

// ErrorReply builds the error reply for a failed update, carrying the
// failing step index when the update was a batch.
func ErrorReply(err error) *Reply {
	reply := &Reply{Status: StatusOf(err)}
	var be *BatchError
	if errors.As(err, &be) {
		reply.Blob = EncodeBatchFailIndex(be.Index)
	}
	return reply
}
