package dirsvc

import (
	"encoding/binary"
	"errors"

	"dirsvc/internal/vdisk"
)

// CommitBlock is block 0 of a directory server's administrative
// partition (paper Fig. 4): the configuration vector describing the last
// configuration with a majority this server belonged to, the sequence
// number recorded on directory deletions, and the recovering flag that
// detects crashes during recovery.
type CommitBlock struct {
	// Up[i] is true when server i+1 was up in the last majority
	// configuration this server was part of (servers are numbered 1..N,
	// as in the paper).
	Up []bool
	// Seq is the update sequence number stored in the commit block. It
	// is only advanced when a directory is deleted (§3: the deletion
	// removes the per-directory record, so the commit block must
	// remember that an update happened).
	Seq uint64
	// Recovering is set while the recovery protocol runs. If it is
	// already set at boot, the previous recovery was interrupted and the
	// server's state may mix old and new directories: the recovery
	// sequence number is forced to zero (§3).
	Recovering bool
	// Topo is the shard's elastic-topology state at the last commit
	// block write, nil on blocks written before splits existed (the
	// tail section is guarded by a presence marker, so old blocks decode
	// with no topology and recovery keeps epoch 0).
	Topo *TopoState
}

var commitMagic = [4]byte{'C', 'M', 'T', '1'}

// ErrCorruptCommit is returned when block 0 cannot be parsed.
var ErrCorruptCommit = errors.New("dirsvc: corrupt commit block")

// Encode serializes the commit block into one disk block.
func (c *CommitBlock) Encode() []byte {
	buf := make([]byte, 0, 32+len(c.Up))
	buf = append(buf, commitMagic[:]...)
	buf = binary.BigEndian.AppendUint64(buf, c.Seq)
	if c.Recovering {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = append(buf, uint8(len(c.Up)))
	for _, up := range c.Up {
		if up {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	if c.Topo != nil {
		buf = append(buf, 1)
		buf = append(buf, EncodeTopoState(c.Topo)...)
	}
	return buf
}

// DecodeCommitBlock parses block 0. An all-zero (never written) block
// decodes as a fresh commit block for n servers with every bit down and
// sequence number zero.
func DecodeCommitBlock(raw []byte, n int) (*CommitBlock, error) {
	zero := true
	for _, b := range raw {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		return &CommitBlock{Up: make([]bool, n)}, nil
	}
	if len(raw) < 14 {
		return nil, ErrCorruptCommit
	}
	var m [4]byte
	copy(m[:], raw[:4])
	if m != commitMagic {
		return nil, ErrCorruptCommit
	}
	c := &CommitBlock{
		Seq:        binary.BigEndian.Uint64(raw[4:12]),
		Recovering: raw[12] == 1,
	}
	count := int(raw[13])
	if count > 64 || 14+count > len(raw) {
		return nil, ErrCorruptCommit
	}
	c.Up = make([]bool, count)
	for i := 0; i < count; i++ {
		c.Up[i] = raw[14+i] == 1
	}
	if off := 14 + count; off < len(raw) && raw[off] == 1 {
		topo, err := DecodeTopoState(raw[off+1:])
		if err != nil {
			return nil, ErrCorruptCommit
		}
		c.Topo = topo
	}
	if count < n {
		// Service grew; extend with down bits.
		c.Up = append(c.Up, make([]bool, n-count)...)
	}
	return c, nil
}

// ReadCommitBlock loads block 0 of the admin partition.
func ReadCommitBlock(admin vdisk.Storage, n int) (*CommitBlock, error) {
	raw, err := admin.ReadBlock(0)
	if err != nil {
		return nil, err
	}
	return DecodeCommitBlock(raw, n)
}

// Write stores the commit block to block 0 (one random disk access).
func (c *CommitBlock) Write(admin vdisk.Storage) error {
	return admin.WriteBlock(0, c.Encode())
}

// UpCount returns the number of servers marked up.
func (c *CommitBlock) UpCount() int {
	n := 0
	for _, up := range c.Up {
		if up {
			n++
		}
	}
	return n
}

// UpServers returns the 1-based ids of servers marked up.
func (c *CommitBlock) UpServers() []int {
	var out []int
	for i, up := range c.Up {
		if up {
			out = append(out, i+1)
		}
	}
	return out
}
