package dirsvc

import (
	"errors"
	"testing"

	"dirsvc/internal/capability"
)

func batchCap(obj uint32, tag string) capability.Capability {
	return capability.Mint(capability.PortFromString("batch-test"), obj, capability.NewSecret([]byte(tag)))
}

func sampleSteps() []*Request {
	return []*Request{
		{Op: OpCreateDir, Columns: []string{"a", "b"}, CheckSeed: []byte("seed-0")},
		{Op: OpAppendRow, Dir: batchCap(7, "d"), Name: "file", Cap: batchCap(9, "t"),
			Masks: []capability.Rights{capability.AllRights, 3, 0}},
		{Op: OpChmodRow, Dir: batchCap(7, "d"), Name: "file", Masks: []capability.Rights{1, 2, 3}},
		{Op: OpReplaceSet, Dir: batchCap(7, "d"), Set: []SetItem{
			{Name: "x", Cap: batchCap(11, "x")}, {Name: "y", Cap: batchCap(12, "y")},
		}},
		{Op: OpDeleteRow, Dir: batchCap(7, "d"), Name: "file"},
		{Op: OpDeleteDir, Dir: batchCap(8, "gone")},
	}
}

func TestBatchStepsRoundTrip(t *testing.T) {
	steps := sampleSteps()
	blob := EncodeBatchSteps(steps)
	got, err := DecodeBatchSteps(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(steps) {
		t.Fatalf("got %d steps, want %d", len(got), len(steps))
	}
	for i, st := range steps {
		g := got[i]
		if g.Op != st.Op || g.Dir != st.Dir || g.Name != st.Name || g.Cap != st.Cap {
			t.Errorf("step %d: got %+v want %+v", i, g, st)
		}
		if len(g.Masks) != len(st.Masks) || len(g.Set) != len(st.Set) || len(g.Columns) != len(st.Columns) {
			t.Errorf("step %d: slice fields differ", i)
		}
		if string(g.CheckSeed) != string(st.CheckSeed) {
			t.Errorf("step %d: check seed differs", i)
		}
	}
	// An OpBatch request survives a full request round-trip too.
	req := NewBatchRequest(steps)
	parsed, err := DecodeRequest(req.Encode())
	if err != nil {
		t.Fatalf("request round-trip: %v", err)
	}
	if parsed.Op != OpBatch {
		t.Fatalf("op = %v, want %v", parsed.Op, OpBatch)
	}
	if _, err := DecodeBatchSteps(parsed.Blob); err != nil {
		t.Fatalf("decode after round-trip: %v", err)
	}
}

func TestDecodeBatchStepsErrors(t *testing.T) {
	valid := EncodeBatchSteps(sampleSteps())

	if _, err := DecodeBatchSteps(nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty blob: err = %v, want ErrBadRequest", err)
	}
	bad := append([]byte(nil), valid...)
	bad[0] = BatchVersion + 1
	if _, err := DecodeBatchSteps(bad); !errors.Is(err, ErrBatchVersion) {
		t.Errorf("bad version: err = %v, want ErrBatchVersion", err)
	}
	// Every truncation must error out, never panic or succeed.
	for n := 0; n < len(valid); n++ {
		if _, err := DecodeBatchSteps(valid[:n]); err == nil {
			t.Fatalf("truncated to %d bytes: decode succeeded", n)
		}
	}
	// Trailing garbage is rejected.
	if _, err := DecodeBatchSteps(append(append([]byte(nil), valid...), 0xFF)); err == nil {
		t.Error("trailing garbage accepted")
	}
	// Zero steps are rejected.
	if _, err := DecodeBatchSteps(EncodeBatchSteps(nil)); err == nil {
		t.Error("empty batch accepted")
	}
	// Read operations cannot ride in a batch.
	if _, err := DecodeBatchSteps(EncodeBatchSteps([]*Request{{Op: OpListDir}})); !errors.Is(err, ErrBadRequest) {
		t.Error("read op accepted in batch")
	}
	// Nested batches are rejected.
	nested := NewBatchRequest([]*Request{{Op: OpDeleteRow, Name: "x"}})
	if _, err := DecodeBatchSteps(EncodeBatchSteps([]*Request{nested})); !errors.Is(err, ErrBadRequest) {
		t.Error("nested batch accepted")
	}
}

func TestBatchResultsRoundTrip(t *testing.T) {
	results := []BatchStepResult{
		{Cap: batchCap(3, "new")},
		{},
		{Caps: []capability.Capability{batchCap(4, "old"), {}}},
	}
	blob := EncodeBatchResults(results)
	got, err := DecodeBatchResults(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(results) {
		t.Fatalf("got %d results, want %d", len(got), len(results))
	}
	if got[0].Cap != results[0].Cap || len(got[1].Caps) != 0 || len(got[2].Caps) != 2 {
		t.Fatalf("results differ: %+v", got)
	}
	if got[2].Caps[0] != results[2].Caps[0] || !got[2].Caps[1].IsZero() {
		t.Fatalf("caps differ: %+v", got[2].Caps)
	}
	for n := 0; n < len(blob); n++ {
		if _, err := DecodeBatchResults(blob[:n]); err == nil {
			t.Fatalf("truncated to %d bytes: decode succeeded", n)
		}
	}
}

func TestBatchFailIndex(t *testing.T) {
	blob := EncodeBatchFailIndex(17)
	idx, ok := DecodeBatchFailIndex(blob)
	if !ok || idx != 17 {
		t.Fatalf("got (%d, %v), want (17, true)", idx, ok)
	}
	if _, ok := DecodeBatchFailIndex(nil); ok {
		t.Error("nil blob decoded")
	}
	if _, ok := DecodeBatchFailIndex([]byte{1, 2, 3}); ok {
		t.Error("short blob decoded")
	}
}

func TestErrorReplyBatch(t *testing.T) {
	err := &BatchError{Index: 3, Err: ErrNotFound}
	reply := ErrorReply(err)
	if reply.Status != StatusNotFound {
		t.Fatalf("status = %v, want %v", reply.Status, StatusNotFound)
	}
	if idx, ok := DecodeBatchFailIndex(reply.Blob); !ok || idx != 3 {
		t.Fatalf("fail index = (%d, %v), want (3, true)", idx, ok)
	}
	// Non-batch errors carry no index.
	if reply := ErrorReply(ErrExists); len(reply.Blob) != 0 {
		t.Error("plain error reply carries a blob")
	}
	// errors.Is sees through the wrapper.
	if !errors.Is(err, ErrNotFound) {
		t.Error("BatchError does not unwrap")
	}
}

func TestEnsureBatchSeeds(t *testing.T) {
	steps := []*Request{
		{Op: OpCreateDir},
		{Op: OpDeleteRow, Name: "x"},
		{Op: OpCreateDir, CheckSeed: []byte("preset")},
		{Op: OpCreateDir},
	}
	changed := EnsureBatchSeeds(steps, func(i int) []byte { return []byte{byte(i)} })
	if !changed {
		t.Fatal("no change reported")
	}
	if string(steps[0].CheckSeed) != "\x00" || string(steps[3].CheckSeed) != "\x03" {
		t.Fatalf("seeds not filled: %q %q", steps[0].CheckSeed, steps[3].CheckSeed)
	}
	if string(steps[2].CheckSeed) != "preset" {
		t.Fatal("preset seed overwritten")
	}
	if len(steps[1].CheckSeed) != 0 {
		t.Fatal("non-create step seeded")
	}
	if EnsureBatchSeeds(steps, func(i int) []byte { return nil }) {
		t.Fatal("second pass reported changes")
	}
}

func TestDecodeRequestTruncated(t *testing.T) {
	raw := sampleSteps()[1].Encode()
	for n := 0; n < len(raw); n++ {
		if _, err := DecodeRequest(raw[:n]); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrBadRequest", n, err)
		}
	}
}

func TestDecodeReplyTruncated(t *testing.T) {
	reply := &Reply{
		Status: StatusOK,
		Cap:    batchCap(5, "c"),
		Caps:   []capability.Capability{batchCap(6, "d")},
		Seq:    42,
		Blob:   []byte("blob"),
	}
	raw := reply.Encode()
	for n := 0; n < len(raw); n++ {
		if _, err := DecodeReply(raw[:n]); err == nil {
			t.Fatalf("truncated to %d bytes: decode succeeded", n)
		}
	}
}

func TestUnknownOp(t *testing.T) {
	const bogus = OpCode(200)
	if bogus.IsUpdate() {
		t.Error("unknown op classified as update")
	}
	if s := bogus.String(); s != "op(200)" {
		t.Errorf("String() = %q", s)
	}
	if s := OpBatch.String(); s != "batch" {
		t.Errorf("OpBatch.String() = %q", s)
	}
	if !OpBatch.IsUpdate() {
		t.Error("OpBatch not an update")
	}
}
