package dirclient

import (
	"context"
	"errors"
	"testing"

	"dirsvc/internal/bullet"
	"dirsvc/internal/capability"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/flip"
	"dirsvc/internal/localdir"
	"dirsvc/internal/sim"
	"dirsvc/internal/vdisk"
)

// bgCtx is the unbounded context used where no deadline applies.
var bgCtx = context.Background()

// newService boots a single-server directory service with its Bullet
// backend — enough to exercise the full client surface.
func newService(t *testing.T) *Client {
	t.Helper()
	net := sim.NewNetwork(sim.FastModel(), 1)
	const service = "client-test"

	bstack := flip.NewStack(net.AddNode("bullet"))
	bdisk := vdisk.New(sim.FastModel(), 2048)
	store, err := bullet.NewStore(dirsvc.BulletPort(service, 1), bdisk)
	if err != nil {
		t.Fatal(err)
	}
	bsrv, err := bullet.NewServer(bstack, store, 2, dirsvc.BulletPort(service, 1))
	if err != nil {
		t.Fatal(err)
	}

	dstack := flip.NewStack(net.AddNode("dir"))
	adisk := vdisk.New(sim.FastModel(), 64)
	admin, err := vdisk.NewPartition(adisk, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := localdir.NewServer(dstack, localdir.Config{Service: service, Admin: admin})
	if err != nil {
		t.Fatal(err)
	}

	cstack := flip.NewStack(net.AddNode("client"))
	client, err := New(cstack, service)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		bsrv.Close()
		cstack.Close()
		dstack.Close()
		bstack.Close()
	})
	return client
}

func TestRootCached(t *testing.T) {
	c := newService(t)
	r1, err := c.Root(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Root(bgCtx)
	if err != nil || r1 != r2 {
		t.Fatalf("Root not cached: %v vs %v (%v)", r1, r2, err)
	}
}

func TestFullOperationSurface(t *testing.T) {
	c := newService(t)
	root, err := c.Root(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.CreateDir(bgCtx, "owner", "other")
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	masks := []capability.Rights{capability.AllRights, capability.RightRead, capability.RightRead}
	if err := c.Append(bgCtx, root, "sub", sub, masks); err != nil {
		t.Fatalf("Append with masks: %v", err)
	}
	// Chmod.
	if err := c.Chmod(bgCtx, root, "sub", []capability.Rights{capability.AllRights, 0, 0}); err != nil {
		t.Fatalf("Chmod: %v", err)
	}
	// LookupSet with a missing entry: zero capability in its slot.
	caps, err := c.LookupSet(bgCtx, root, []string{"sub", "ghost"})
	if err != nil {
		t.Fatalf("LookupSet: %v", err)
	}
	if len(caps) != 2 || caps[0].IsZero() || !caps[1].IsZero() {
		t.Fatalf("LookupSet = %v", caps)
	}
	// ReplaceSet returns old capabilities.
	other, err := c.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	olds, err := c.ReplaceSet(bgCtx, root, []dirsvc.SetItem{{Name: "sub", Cap: other}})
	if err != nil {
		t.Fatalf("ReplaceSet: %v", err)
	}
	if len(olds) != 1 || olds[0] != sub {
		t.Fatalf("ReplaceSet olds = %v, want [%v]", olds, sub)
	}
	got, err := c.Lookup(bgCtx, root, "sub")
	if err != nil || got != other {
		t.Fatalf("Lookup after replace = %v, %v", got, err)
	}
	// ReplaceSet on a missing name fails.
	if _, err := c.ReplaceSet(bgCtx, root, []dirsvc.SetItem{{Name: "nope", Cap: other}}); !errors.Is(err, dirsvc.ErrNotFound) {
		t.Fatalf("ReplaceSet missing: %v", err)
	}
	if err := c.Delete(bgCtx, root, "sub"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := c.DeleteDir(bgCtx, other); err != nil {
		t.Fatalf("DeleteDir: %v", err)
	}
	if err := c.DeleteDir(bgCtx, sub); err != nil {
		t.Fatalf("DeleteDir sub: %v", err)
	}
}

func TestLookupMissingIsNotFound(t *testing.T) {
	c := newService(t)
	root, _ := c.Root(bgCtx)
	if _, err := c.Lookup(bgCtx, root, "missing"); !errors.Is(err, dirsvc.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}
