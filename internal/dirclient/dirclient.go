// Package dirclient is the user-side library of the directory service:
// the wire implementation of the public dir.Directory interface, issued
// over Amoeba-style RPC against any of the server backends. Server
// selection uses the RPC layer's port cache (first HEREIS wins, NOTHERE
// evicts), so a client sticks to one directory server until that server
// is busy or gone — the behavior behind Fig. 8's load distribution.
//
// Every operation takes a context.Context: cancellation or an expired
// deadline aborts the transaction, including an in-flight wait for a
// reply, and returns ctx.Err().
package dirclient

import (
	"context"
	"fmt"
	"sync"

	"dirsvc/dir"
	"dirsvc/internal/capability"
	"dirsvc/internal/dirdata"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/flip"
	"dirsvc/internal/rpc"
)

// Client talks to one directory service. It implements dir.Directory and
// is safe for concurrent use (transactions serialize on the underlying
// RPC client, as Amoeba serialized per kernel transaction slot).
type Client struct {
	rpc  *rpc.Client
	port capability.Port

	mu   sync.Mutex
	root capability.Capability // cached root capability
}

// Client is the wire-transport implementation of the public API.
var _ dir.Directory = (*Client)(nil)

// New creates a client for the named service on the given stack.
func New(stack *flip.Stack, service string) (*Client, error) {
	rc, err := rpc.NewClient(stack)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: rc, port: dirsvc.ServicePort(service)}, nil
}

// NewWithRPC wraps an existing RPC client (shared port cache).
func NewWithRPC(rc *rpc.Client, service string) *Client {
	return &Client{rpc: rc, port: dirsvc.ServicePort(service)}
}

// Close releases the client's RPC endpoint.
func (c *Client) Close() { c.rpc.Close() }

// RPC exposes the underlying RPC client (for Bullet access sharing the
// same port cache).
func (c *Client) RPC() *rpc.Client { return c.rpc }

func (c *Client) trans(ctx context.Context, req *dirsvc.Request) (*dirsvc.Reply, error) {
	reply, err := c.transRaw(ctx, req)
	if err != nil {
		return nil, err
	}
	if err := reply.Status.Err(); err != nil {
		return nil, err
	}
	return reply, nil
}

// transRaw performs the transaction and decodes the reply without
// converting a non-OK status to an error (the batch path needs the
// reply's blob alongside the status).
func (c *Client) transRaw(ctx context.Context, req *dirsvc.Request) (*dirsvc.Reply, error) {
	raw, err := c.rpc.TransCtx(ctx, c.port, req.Encode())
	if err != nil {
		return nil, err
	}
	return dirsvc.DecodeReply(raw)
}

// Root returns (and caches) the root directory capability.
func (c *Client) Root(ctx context.Context) (capability.Capability, error) {
	c.mu.Lock()
	root := c.root
	c.mu.Unlock()
	if !root.IsZero() {
		return root, nil
	}
	reply, err := c.trans(ctx, &dirsvc.Request{Op: dirsvc.OpGetRoot})
	if err != nil {
		return capability.Capability{}, err
	}
	c.mu.Lock()
	c.root = reply.Cap
	c.mu.Unlock()
	return reply.Cap, nil
}

// CreateDir creates a new directory (Fig. 2: Create dir) and returns its
// owner capability. Default columns apply when none are given.
func (c *Client) CreateDir(ctx context.Context, columns ...string) (capability.Capability, error) {
	reply, err := c.trans(ctx, &dirsvc.Request{Op: dirsvc.OpCreateDir, Columns: columns})
	if err != nil {
		return capability.Capability{}, err
	}
	return reply.Cap, nil
}

// DeleteDir deletes a directory (Fig. 2: Delete dir).
func (c *Client) DeleteDir(ctx context.Context, dir capability.Capability) error {
	_, err := c.trans(ctx, &dirsvc.Request{Op: dirsvc.OpDeleteDir, Dir: dir})
	return err
}

// List returns the rows of a directory visible through column col
// (Fig. 2: List dir).
func (c *Client) List(ctx context.Context, dir capability.Capability, col int) ([]dirdata.Row, error) {
	reply, err := c.trans(ctx, &dirsvc.Request{Op: dirsvc.OpListDir, Dir: dir, Column: col})
	if err != nil {
		return nil, err
	}
	return reply.Rows, nil
}

// Append stores target under name in dir (Fig. 2: Append row). masks
// gives the per-column rights; nil means full owner rights in every
// column.
func (c *Client) Append(ctx context.Context, dir capability.Capability, name string, target capability.Capability, masks []capability.Rights) error {
	if masks == nil {
		masks = []capability.Rights{capability.AllRights, capability.AllRights, capability.AllRights}
	}
	_, err := c.trans(ctx, &dirsvc.Request{
		Op:    dirsvc.OpAppendRow,
		Dir:   dir,
		Name:  name,
		Cap:   target,
		Masks: masks,
	})
	return err
}

// Delete removes the named row (Fig. 2: Delete row).
func (c *Client) Delete(ctx context.Context, dir capability.Capability, name string) error {
	_, err := c.trans(ctx, &dirsvc.Request{Op: dirsvc.OpDeleteRow, Dir: dir, Name: name})
	return err
}

// Chmod replaces the rights masks of the named row (Fig. 2: Chmod row).
func (c *Client) Chmod(ctx context.Context, dir capability.Capability, name string, masks []capability.Rights) error {
	_, err := c.trans(ctx, &dirsvc.Request{Op: dirsvc.OpChmodRow, Dir: dir, Name: name, Masks: masks})
	return err
}

// Lookup returns the capability stored under name (a one-element
// Fig. 2 Lookup set).
func (c *Client) Lookup(ctx context.Context, dir capability.Capability, name string) (capability.Capability, error) {
	caps, err := c.LookupSet(ctx, dir, []string{name})
	if err != nil {
		return capability.Capability{}, err
	}
	if caps[0].IsZero() {
		return capability.Capability{}, dirsvc.ErrNotFound
	}
	return caps[0], nil
}

// LookupSet looks up several names at once (Fig. 2: Lookup set). Missing
// names yield zero capabilities.
func (c *Client) LookupSet(ctx context.Context, dir capability.Capability, names []string) ([]capability.Capability, error) {
	set := make([]dirsvc.SetItem, len(names))
	for i, n := range names {
		set[i] = dirsvc.SetItem{Name: n}
	}
	reply, err := c.trans(ctx, &dirsvc.Request{Op: dirsvc.OpLookupSet, Dir: dir, Set: set})
	if err != nil {
		return nil, err
	}
	return reply.Caps, nil
}

// ReplaceSet atomically replaces the capabilities of several rows
// (Fig. 2: Replace set), returning the previous capabilities.
func (c *Client) ReplaceSet(ctx context.Context, dir capability.Capability, items []dirsvc.SetItem) ([]capability.Capability, error) {
	reply, err := c.trans(ctx, &dirsvc.Request{Op: dirsvc.OpReplaceSet, Dir: dir, Set: items})
	if err != nil {
		return nil, err
	}
	return reply.Caps, nil
}

// Apply executes an atomic batch as one wire request — on the group
// backends, one totally-ordered group broadcast regardless of the number
// of steps. Either every step takes effect or none do; a rejected batch
// returns a *dir.BatchError naming the failing step.
func (c *Client) Apply(ctx context.Context, b *dir.Batch) (*dir.BatchResult, error) {
	if b.Len() == 0 {
		return &dir.BatchResult{}, nil
	}
	if b.Len() > dir.MaxBatchSteps {
		return nil, fmt.Errorf("batch of %d steps exceeds the %d-step limit: %w",
			b.Len(), dir.MaxBatchSteps, dir.ErrBadRequest)
	}
	reply, err := c.transRaw(ctx, b.Request())
	if err != nil {
		return nil, err
	}
	if serr := reply.Status.Err(); serr != nil {
		if idx, ok := dirsvc.DecodeBatchFailIndex(reply.Blob); ok {
			return nil, &dirsvc.BatchError{Index: idx, Err: serr}
		}
		return nil, serr
	}
	results, err := dirsvc.DecodeBatchResults(reply.Blob)
	if err != nil {
		return nil, err
	}
	return &dir.BatchResult{Seq: reply.Seq, Results: results}, nil
}
