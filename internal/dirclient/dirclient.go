// Package dirclient is the user-side library of the directory service:
// the wire implementation of the public dir.Directory interface, issued
// over Amoeba-style RPC against any of the server backends. By default
// server selection uses the RPC layer's port cache (first HEREIS wins,
// NOTHERE evicts), so a client sticks to one directory server until that
// server is busy or gone — the behavior behind Fig. 8's load
// distribution. With Options.ReadBalance the client instead spreads its
// reads across every replica of a shard (any replica holding a majority
// can answer a read locally, §3.1) and preserves session consistency by
// stamping each read with the shard's high-water applied sequence number
// (Request.MinSeq): a read landing on a replica lagging behind one the
// session already heard from waits there until the replica catches up.
// Writes always keep first-responder selection.
//
// In a sharded deployment the client is also the routing layer: every
// operation is sent to the replica group owning the directory it names,
// computed from the object number alone (dir.ShardOf). The root lives
// on shard 0; new directories are placed round-robin across shards for
// load spread. Each shard has its own rpc.Client — its own port cache
// and transaction slot — so operations on different shards proceed in
// parallel. A batch homed on one shard commits as a single replicated
// update; a batch spanning shards makes this client a two-phase-commit
// coordinator (see twophase.go), unless the batch opted out with
// dir.Batch.SingleShard (dir.ErrCrossShardBatch then).
//
// The client can also cache reads (NewShardedCached): List rows and
// looked-up capabilities are kept in a per-shard LRU cache and repeat
// reads are answered locally, with no RPC at all. Invalidation rides the
// sequence numbers every reply already carries — see dir.CacheOptions
// for the exact consistency model. The root capability is cached
// unconditionally (it can never change for a given service).
//
// Every operation takes a context.Context: cancellation or an expired
// deadline aborts the transaction, including an in-flight wait for a
// reply, and returns ctx.Err().
package dirclient

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dirsvc/dir"
	"dirsvc/internal/capability"
	"dirsvc/internal/dirdata"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/flip"
	"dirsvc/internal/rpc"
)

// createSeq drives round-robin placement of new directories. It is
// shared by every client in the process, so concurrent clients spread
// their creations across shards instead of all starting on shard 0.
var createSeq atomic.Uint64

// conn is the client's endpoint to one shard: a dedicated RPC client
// (its own port cache and transaction serialization) and the shard's
// service port.
type conn struct {
	rpc  *rpc.Client
	port capability.Port
}

// Client talks to one directory service deployment — one replica group,
// or several when the service is sharded. It implements dir.Directory
// and is safe for concurrent use: the RPC transport multiplexes any
// number of in-flight transactions per shard, so concurrent operations —
// even on one shard — proceed in parallel.
type Client struct {
	conns   []conn     // one per shard; index = shard number
	cache   *readCache // nil = caching disabled
	balance bool       // spread reads across replicas, stamp MinSeq

	// base and total fix the deployment's shard geometry; epoch is the
	// highest shard-map epoch any NOTMINE bounce has taught this client.
	// Routing is epoch-aware (dir.HomeShard): a stale epoch costs at most
	// a one-hop chase per operation, never a wrong answer.
	base, total int
	epoch       atomic.Uint64

	// seqs tracks, per shard, the highest applied sequence number any
	// reply has shown this client — the session's freshness floor,
	// maintained even with the read cache off. Balanced reads carry it
	// as Request.MinSeq.
	seqs []atomic.Uint64

	mu     sync.Mutex
	root   capability.Capability     // cached root capability
	txHook func(stage TxStage) error // fault-injection hook (SetTxHook)

	// Watch/lease state (see watch.go): the fan-out hub for dir.Watch
	// subscribers, one lease watcher per shard (started eagerly in
	// leases mode, lazily by Watch otherwise), and the shutdown latch.
	hub         *watchHub
	watchMu     sync.Mutex
	watchers    []*shardWatcher
	watchClosed bool
	watchStop   chan struct{}
}

// Options configure a Client beyond the service name (see NewWithOptions).
type Options struct {
	// Shards is the number of independent replica groups the service is
	// partitioned across (values below 1 mean unsharded).
	Shards int
	// ActiveShards is the number of shards serving traffic at epoch zero
	// (the rest are split targets the client routes to only after a
	// NOTMINE bounce raises its epoch). Zero means all Shards are active.
	ActiveShards int
	// Cache configures the client read cache (zero value: disabled).
	Cache dir.CacheOptions
	// ReadBalance spreads read operations across every replica of a
	// shard — least outstanding first — instead of pinning to the first
	// HEREIS responder, and stamps reads with the session's MinSeq
	// floor so read-your-writes and monotonic reads hold across
	// replicas. Off preserves the paper's §4.2 selection heuristic.
	ReadBalance bool
}

// Client is the wire-transport implementation of the public API.
var _ dir.Directory = (*Client)(nil)

// Client also serves the public event-stream API.
var _ dir.Watcher = (*Client)(nil)

// New creates a client for the named unsharded service on the given
// stack.
func New(stack *flip.Stack, service string) (*Client, error) {
	return NewSharded(stack, service, 1)
}

// NewSharded creates a client for a service partitioned across shards
// independent replica groups, with one RPC endpoint per shard. The read
// cache is disabled; use NewShardedCached to enable it.
func NewSharded(stack *flip.Stack, service string, shards int) (*Client, error) {
	return NewShardedCached(stack, service, shards, dir.CacheOptions{})
}

// NewShardedCached creates a sharded client with the read cache
// configured by opts (see dir.CacheOptions; the zero value disables it).
func NewShardedCached(stack *flip.Stack, service string, shards int, opts dir.CacheOptions) (*Client, error) {
	return NewWithOptions(stack, service, Options{Shards: shards, Cache: opts})
}

// NewWithOptions creates a client for the named service with the full
// option set: sharding, read caching, and read balancing.
func NewWithOptions(stack *flip.Stack, service string, opts Options) (*Client, error) {
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	base := opts.ActiveShards
	if base <= 0 || base > shards {
		base = shards
	}
	c := &Client{
		conns:     make([]conn, shards),
		cache:     newReadCache(shards, opts.Cache),
		balance:   opts.ReadBalance,
		base:      base,
		total:     shards,
		seqs:      make([]atomic.Uint64, shards),
		hub:       newWatchHub(),
		watchers:  make([]*shardWatcher, shards),
		watchStop: make(chan struct{}),
	}
	for s := 0; s < shards; s++ {
		rc, err := rpc.NewClient(stack)
		if err != nil {
			for _, cn := range c.conns[:s] {
				cn.rpc.Close()
			}
			return nil, err
		}
		rc.SetReadBalance(opts.ReadBalance)
		rc.SetHedge(opts.ReadBalance)
		c.conns[s] = conn{
			rpc:  rc,
			port: dirsvc.ServicePort(dirsvc.ShardService(service, s, shards)),
		}
	}
	if opts.Cache.Enabled && opts.Cache.Leases {
		c.startLeases()
	}
	return c, nil
}

// NewWithRPC wraps an existing RPC client (shared port cache) as an
// unsharded client.
func NewWithRPC(rc *rpc.Client, service string) *Client {
	return &Client{
		conns:     []conn{{rpc: rc, port: dirsvc.ServicePort(service)}},
		base:      1,
		total:     1,
		seqs:      make([]atomic.Uint64, 1),
		hub:       newWatchHub(),
		watchers:  make([]*shardWatcher, 1),
		watchStop: make(chan struct{}),
	}
}

// Close releases the client's RPC endpoints, stopping the lease
// watchers and closing every Watch stream first.
func (c *Client) Close() {
	c.stopWatchers()
	for _, cn := range c.conns {
		cn.rpc.Close()
	}
}

// Shards returns the number of shards this client routes across.
func (c *Client) Shards() int { return len(c.conns) }

// CacheStats returns the read-cache counters (zero when the cache is
// disabled).
func (c *Client) CacheStats() dir.CacheStats { return c.cache.stats() }

// RPC exposes the shard-0 RPC client (for Bullet access sharing the
// same port cache).
func (c *Client) RPC() *rpc.Client { return c.conns[0].rpc }

// ReplicaStats returns the transport's per-replica latency and load view
// for one shard — smoothed RTT, last piggybacked load hint, outstanding
// requests — in the shard's port-cache order. Empty until the shard has
// been located.
func (c *Client) ReplicaStats(shard int) []rpc.ReplicaStat {
	if shard < 0 || shard >= len(c.conns) {
		return nil
	}
	cn := c.conns[shard]
	return cn.rpc.ReplicaStats(cn.port)
}

// HedgeStats sums the hedged-read counters across every shard endpoint:
// hedges actually sent, and transactions won by the hedge rather than
// the primary.
func (c *Client) HedgeStats() (sent, wins uint64) {
	for _, cn := range c.conns {
		s, w := cn.rpc.HedgeStats()
		sent += s
		wins += w
	}
	return sent, wins
}

// shardOf routes a directory capability to its home shard under the
// client's current shard-map epoch.
func (c *Client) shardOf(d capability.Capability) int {
	return c.homeOf(d.Object)
}

// homeOf routes an object number to its home shard under the client's
// current shard-map epoch.
func (c *Client) homeOf(obj uint32) int {
	return dir.HomeShard(obj, c.epoch.Load(), c.base, c.total)
}

// Epoch returns the highest shard-map epoch this client has learned.
func (c *Client) Epoch() uint64 { return c.epoch.Load() }

// Geometry returns the client's configured shard layout: the number of
// shards active at epoch zero and the number provisioned.
func (c *Client) Geometry() (base, total int) { return c.base, c.total }

// noteEpoch adopts a later shard-map epoch learned from a NOTMINE
// bounce (or a shard-map read) and rehomes object-scoped Watch
// subscriptions whose directory moved in the split.
func (c *Client) noteEpoch(epoch uint64) {
	for {
		cur := c.epoch.Load()
		if epoch <= cur {
			return
		}
		if c.epoch.CompareAndSwap(cur, epoch) {
			break
		}
	}
	for _, shard := range c.hub.rehome(c.homeOf) {
		c.ensureWatcher(shard)
	}
}

// nextCreateShard picks the shard for a new directory: round-robin
// across the shards active at the client's epoch, shared process-wide.
func (c *Client) nextCreateShard() int {
	active := dir.ActiveShards(c.epoch.Load(), c.base, c.total)
	if active <= 1 {
		return 0
	}
	return int((createSeq.Add(1) - 1) % uint64(active))
}

// noteSeq advances the session's per-shard freshness floor to seq.
func (c *Client) noteSeq(shard int, seq uint64) {
	if seq == 0 {
		return
	}
	s := &c.seqs[shard]
	for {
		cur := s.Load()
		if seq <= cur || s.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// SessionFloor returns this session's freshness floor for one shard:
// the highest applied sequence number any reply has shown it. Zero for
// an unknown shard or a fresh session.
func (c *Client) SessionFloor(shard int) uint64 {
	if shard < 0 || shard >= len(c.seqs) {
		return 0
	}
	return c.seqs[shard].Load()
}

// AdoptFloor raises this session's freshness floor for one shard to an
// externally learned sequence number — causal-token handoff: a client
// that adopts another session's SessionFloor is guaranteed to observe
// everything that session observed, even when its balanced reads land
// on a readonly secondary that is still catching up (the secondary
// refuses below the floor and the read fails over).
func (c *Client) AdoptFloor(shard int, seq uint64) {
	if shard < 0 || shard >= len(c.seqs) {
		return
	}
	c.noteSeq(shard, seq)
}

// floor returns the MinSeq stamp for a read on shard: the session's
// high-water mark when read balancing is on (replicas may lag each
// other), zero — no floor — for the pinned legacy policy.
func (c *Client) floor(shard int) uint64 {
	if !c.balance {
		return 0
	}
	return c.seqs[shard].Load()
}

// decodeNoted decodes a raw transaction result and feeds the reply's
// sequence number into the session floor — the one reply pipeline both
// the pinned and balanced paths share.
func (c *Client) decodeNoted(shard int, raw []byte, err error) (*dirsvc.Reply, error) {
	if err != nil {
		return nil, err
	}
	reply, err := dirsvc.DecodeReply(raw)
	if err != nil {
		return nil, err
	}
	c.noteSeq(shard, reply.Seq)
	return reply, nil
}

// statusErr converts a reply's non-OK status to an error. Even a failed
// read carries the shard's sequence number and may prove commits the
// cache has not seen (e.g. the directory was deleted by another
// client), so the cache observes it before the error surfaces.
func (c *Client) statusErr(shard int, reply *dirsvc.Reply) error {
	err := reply.Status.Err()
	if err != nil {
		c.cache.noteReply(shard, reply.Seq)
	}
	return err
}

// maxChase bounds how many NOTMINE bounces one operation follows. Each
// bounce teaches the client a newer epoch and the object's owner, so a
// client more than one split behind converges in a few hops; the bound
// only guards against a routing bug turning into an infinite loop.
const maxChase = 8

// bounce inspects a reply for a NOTMINE redirect: the blob names the
// server's epoch — adopted into the client's shard map — and the
// object's owner, returned as the shard to retry at.
func (c *Client) bounce(reply *dirsvc.Reply, shard, hop int) (int, bool) {
	if reply.Status != dirsvc.StatusNotMine || hop >= maxChase {
		return 0, false
	}
	epoch, owner, err := dirsvc.DecodeNotMine(reply.Blob)
	if err != nil {
		return 0, false
	}
	c.noteEpoch(epoch)
	if owner < 0 || owner >= len(c.conns) || owner == shard {
		return 0, false
	}
	return owner, true
}

// trans performs an update transaction, chasing NOTMINE bounces to the
// object's current home. It returns the shard that finally served the
// request, which callers must use for cache and session bookkeeping —
// after a migration it differs from the shard the request started at.
func (c *Client) trans(ctx context.Context, shard int, req *dirsvc.Request) (*dirsvc.Reply, int, error) {
	for hop := 0; ; hop++ {
		reply, err := c.transRaw(ctx, shard, req)
		if err != nil {
			return nil, shard, err
		}
		if next, ok := c.bounce(reply, shard, hop); ok {
			shard = next
			continue
		}
		if err := c.statusErr(shard, reply); err != nil {
			return nil, shard, err
		}
		return reply, shard, nil
	}
}

// transRead performs a read transaction: server selection may balance
// across replicas (Options.ReadBalance), and the request carries the
// session's freshness floor so a lagging replica waits before answering.
//
// A balanced read retries a no-majority refusal a few times: unlike the
// pinned policy — which sticks to one healthy replica — balancing walks
// into every replica of the shard, including one that is transiently
// recovering or below its floor, and a sibling can usually serve the
// read. A service-wide majority loss still surfaces after the bounded
// retries.
func (c *Client) transRead(ctx context.Context, shard int, req *dirsvc.Request) (*dirsvc.Reply, int, error) {
	hops := 0
	for attempt := 0; ; attempt++ {
		cn := c.conns[shard]
		req.MinSeq = c.floor(shard)
		raw, err := cn.rpc.TransReadCtx(ctx, cn.port, req.Encode())
		reply, err := c.decodeNoted(shard, raw, err)
		if err != nil {
			return nil, shard, err
		}
		if next, ok := c.bounce(reply, shard, hops); ok {
			// The object lives elsewhere: chase. The retry budget resets —
			// the new shard's majority state is independent — and the
			// MinSeq floor is re-sampled per shard above (sequence numbers
			// are per-shard domains).
			hops++
			shard = next
			attempt = 0
			continue
		}
		serr := c.statusErr(shard, reply)
		if serr == nil {
			return reply, shard, nil
		}
		if !c.balance || attempt >= 3 || !errors.Is(serr, dirsvc.ErrNoMajority) {
			return nil, shard, serr
		}
		select {
		case <-time.After(time.Duration(attempt+1) * 5 * time.Millisecond):
		case <-ctx.Done():
			return nil, shard, ctx.Err()
		}
	}
}

// transRaw performs the transaction against one shard and decodes the
// reply without converting a non-OK status to an error (the batch path
// needs the reply's blob alongside the status).
func (c *Client) transRaw(ctx context.Context, shard int, req *dirsvc.Request) (*dirsvc.Reply, error) {
	cn := c.conns[shard]
	raw, err := cn.rpc.TransCtx(ctx, cn.port, req.Encode())
	return c.decodeNoted(shard, raw, err)
}

// Root returns (and caches) the root directory capability. The root is
// always homed on shard 0.
func (c *Client) Root(ctx context.Context) (capability.Capability, error) {
	c.mu.Lock()
	root := c.root
	c.mu.Unlock()
	if !root.IsZero() {
		return root, nil
	}
	reply, _, err := c.transRead(ctx, 0, &dirsvc.Request{Op: dirsvc.OpGetRoot})
	if err != nil {
		return capability.Capability{}, err
	}
	c.mu.Lock()
	c.root = reply.Cap
	c.mu.Unlock()
	return reply.Cap, nil
}

// CreateDir creates a new directory (Fig. 2: Create dir) and returns its
// owner capability. Default columns apply when none are given. In a
// sharded deployment the new directory is placed round-robin across the
// shards.
func (c *Client) CreateDir(ctx context.Context, columns ...string) (capability.Capability, error) {
	return c.CreateDirOn(ctx, c.nextCreateShard(), columns...)
}

// CreateDirOn creates a new directory homed on the given shard —
// explicit placement for tests, benchmarks, and locality-aware callers.
func (c *Client) CreateDirOn(ctx context.Context, shard int, columns ...string) (capability.Capability, error) {
	if shard < 0 || shard >= len(c.conns) {
		return capability.Capability{}, fmt.Errorf("shard %d of %d: %w", shard, len(c.conns), dirsvc.ErrBadRequest)
	}
	reply, shard, err := c.trans(ctx, shard, &dirsvc.Request{Op: dirsvc.OpCreateDir, Columns: columns})
	if err != nil {
		return capability.Capability{}, err
	}
	c.cache.noteWrite(shard, reply.Seq, reply.Cap.Object)
	return reply.Cap, nil
}

// DeleteDir deletes a directory (Fig. 2: Delete dir).
func (c *Client) DeleteDir(ctx context.Context, dir capability.Capability) error {
	reply, shard, err := c.trans(ctx, c.shardOf(dir), &dirsvc.Request{Op: dirsvc.OpDeleteDir, Dir: dir})
	if err != nil {
		return err
	}
	c.cache.noteWrite(shard, reply.Seq, dir.Object)
	return nil
}

// List returns the rows of a directory visible through column col
// (Fig. 2: List dir).
func (c *Client) List(ctx context.Context, dir capability.Capability, col int) ([]dirdata.Row, error) {
	shard := c.shardOf(dir)
	if rows, ok := c.cache.getList(shard, dir, col); ok {
		c.cache.hit()
		return rows, nil
	}
	epoch := c.cache.epochOf(shard)
	reply, served, err := c.transRead(ctx, shard, &dirsvc.Request{Op: dirsvc.OpListDir, Dir: dir, Column: col})
	if err != nil {
		return nil, err
	}
	if served != shard {
		// The directory migrated: refresh the cache generation cookie for
		// the shard actually holding it before filling.
		shard, epoch = served, c.cache.epochOf(served)
	}
	c.cache.miss()
	c.cache.fillList(shard, epoch, dir, col, reply.Rows, reply.ObjSeq, reply.Seq)
	return reply.Rows, nil
}

// Append stores target under name in dir (Fig. 2: Append row). masks
// gives the per-column rights; nil means full owner rights in every
// column. The target capability is stored opaquely, so rows may point
// at objects on any shard.
func (c *Client) Append(ctx context.Context, dir capability.Capability, name string, target capability.Capability, masks []capability.Rights) error {
	if masks == nil {
		masks = []capability.Rights{capability.AllRights, capability.AllRights, capability.AllRights}
	}
	reply, shard, err := c.trans(ctx, c.shardOf(dir), &dirsvc.Request{
		Op:    dirsvc.OpAppendRow,
		Dir:   dir,
		Name:  name,
		Cap:   target,
		Masks: masks,
	})
	if err != nil {
		return err
	}
	c.cache.noteWrite(shard, reply.Seq, dir.Object)
	return nil
}

// Delete removes the named row (Fig. 2: Delete row).
func (c *Client) Delete(ctx context.Context, dir capability.Capability, name string) error {
	reply, shard, err := c.trans(ctx, c.shardOf(dir), &dirsvc.Request{Op: dirsvc.OpDeleteRow, Dir: dir, Name: name})
	if err != nil {
		return err
	}
	c.cache.noteWrite(shard, reply.Seq, dir.Object)
	return nil
}

// Chmod replaces the rights masks of the named row (Fig. 2: Chmod row).
func (c *Client) Chmod(ctx context.Context, dir capability.Capability, name string, masks []capability.Rights) error {
	reply, shard, err := c.trans(ctx, c.shardOf(dir), &dirsvc.Request{Op: dirsvc.OpChmodRow, Dir: dir, Name: name, Masks: masks})
	if err != nil {
		return err
	}
	c.cache.noteWrite(shard, reply.Seq, dir.Object)
	return nil
}

// Lookup returns the capability stored under name (a one-element
// Fig. 2 Lookup set).
func (c *Client) Lookup(ctx context.Context, dir capability.Capability, name string) (capability.Capability, error) {
	caps, err := c.LookupSet(ctx, dir, []string{name})
	if err != nil {
		return capability.Capability{}, err
	}
	if caps[0].IsZero() {
		return capability.Capability{}, dirsvc.ErrNotFound
	}
	return caps[0], nil
}

// LookupSet looks up several names at once (Fig. 2: Lookup set). Missing
// names yield zero capabilities. The set is answered from the cache only
// when every name is cached (including cached negatives); otherwise the
// whole set goes to the server and every name is cached from the reply.
func (c *Client) LookupSet(ctx context.Context, dir capability.Capability, names []string) ([]capability.Capability, error) {
	shard := c.shardOf(dir)
	if c.cache != nil {
		caps := make([]capability.Capability, len(names))
		allCached := true
		for i, n := range names {
			cp, ok := c.cache.getLookup(shard, dir, n)
			if !ok {
				allCached = false
				break
			}
			caps[i] = cp
		}
		if allCached {
			c.cache.hit()
			return caps, nil
		}
	}
	epoch := c.cache.epochOf(shard)
	set := make([]dirsvc.SetItem, len(names))
	for i, n := range names {
		set[i] = dirsvc.SetItem{Name: n}
	}
	reply, served, err := c.transRead(ctx, shard, &dirsvc.Request{Op: dirsvc.OpLookupSet, Dir: dir, Set: set})
	if err != nil {
		return nil, err
	}
	if served != shard {
		shard, epoch = served, c.cache.epochOf(served)
	}
	c.cache.miss()
	c.cache.fillLookups(shard, epoch, dir, names, reply.Caps, reply.ObjSeq, reply.Seq)
	return reply.Caps, nil
}

// ReplaceSet atomically replaces the capabilities of several rows
// (Fig. 2: Replace set), returning the previous capabilities.
func (c *Client) ReplaceSet(ctx context.Context, dir capability.Capability, items []dirsvc.SetItem) ([]capability.Capability, error) {
	reply, shard, err := c.trans(ctx, c.shardOf(dir), &dirsvc.Request{Op: dirsvc.OpReplaceSet, Dir: dir, Set: items})
	if err != nil {
		return nil, err
	}
	c.cache.noteWrite(shard, reply.Seq, dir.Object)
	return reply.Caps, nil
}

// Backup captures a portable snapshot of one shard: every directory it
// stores (object-table entry plus Bullet image), its forwarding stubs
// and topology state, and the two-phase-commit ledger (in-doubt
// transactions and remembered decisions). The snapshot is the same
// encoding the storage engine checkpoints, so it restores into any
// backend kind via RestoreShard. Backups go through the read path —
// with read balancing they may be served by a readonly secondary, which
// is exactly the off-primary backup use case.
func (c *Client) Backup(ctx context.Context, shard int) ([]byte, error) {
	if shard < 0 || shard >= len(c.conns) {
		return nil, fmt.Errorf("shard %d of %d: %w", shard, len(c.conns), dirsvc.ErrBadRequest)
	}
	reply, _, err := c.transRead(ctx, shard, &dirsvc.Request{Op: dirsvc.OpBackup})
	if err != nil {
		return nil, err
	}
	return reply.Blob, nil
}

// RestoreShard replaces one shard's state with a snapshot previously
// captured by Backup — disaster recovery, cloning a deployment, or
// seeding a test fixture. The restore is a single replicated update, so
// on the group backends every replica installs the snapshot at the same
// point in the total order. All existing state on the shard is
// discarded, including prepared transactions.
func (c *Client) RestoreShard(ctx context.Context, shard int, snapshot []byte) error {
	if shard < 0 || shard >= len(c.conns) {
		return fmt.Errorf("shard %d of %d: %w", shard, len(c.conns), dirsvc.ErrBadRequest)
	}
	reply, shard, err := c.trans(ctx, shard, &dirsvc.Request{Op: dirsvc.OpRestoreShard, Blob: snapshot})
	if err != nil {
		return err
	}
	// Everything cached for the shard may now be wrong; drop it wholesale.
	c.cache.dropShard(shard)
	c.cache.noteWrite(shard, reply.Seq)
	return nil
}

// Apply executes an atomic batch. A batch homed on one shard goes out
// as one wire request — on the group backends, one totally-ordered
// group broadcast regardless of the number of steps. A batch naming
// directories on several shards runs the client-coordinated two-phase
// commit (see applyTwoPhase): PREPARE to every home shard, the decision
// ratified by the lowest participant shard, COMMIT/ABORT propagated to
// the rest — unless the batch opted out with dir.Batch.SingleShard, in
// which case it fails fast with dir.ErrCrossShardBatch before anything
// is sent. Either every step takes effect or none do; a rejected batch
// returns a *dir.BatchError naming the failing step. A batch of only
// CreateDir steps is placed round-robin, like single CreateDir calls.
func (c *Client) Apply(ctx context.Context, b *dir.Batch) (*dir.BatchResult, error) {
	if b.Len() == 0 {
		return &dir.BatchResult{}, nil
	}
	if b.Len() > dir.MaxBatchSteps {
		return nil, fmt.Errorf("batch of %d steps exceeds the %d-step limit: %w",
			b.Len(), dir.MaxBatchSteps, dir.ErrBadRequest)
	}
	plan := c.planBatch(b)
	if len(plan.shards) > 1 {
		if b.SingleShardOnly() {
			return nil, dir.ErrCrossShardBatch
		}
		return c.applyTwoPhase(ctx, b, plan)
	}
	var shard int
	if len(plan.shards) == 1 {
		shard = plan.shards[0]
	} else {
		shard = c.nextCreateShard() // all-create batch: no home, place round-robin
	}
	reply, err := c.transRaw(ctx, shard, b.Request())
	if err != nil {
		return nil, err
	}
	if serr := reply.Status.Err(); serr != nil {
		if idx, ok := dirsvc.DecodeBatchFailIndex(reply.Blob); ok {
			return nil, &dirsvc.BatchError{Index: idx, Err: serr}
		}
		return nil, serr
	}
	results, err := dirsvc.DecodeBatchResults(reply.Blob)
	if err != nil {
		return nil, err
	}
	// One batch commits under one sequence number: the touched
	// directories are the steps' targets plus any created ones.
	objs := b.Objects()
	for _, r := range results {
		if r.Cap.Object != 0 {
			objs = append(objs, r.Cap.Object)
		}
	}
	c.cache.noteWrite(shard, reply.Seq, objs...)
	return &dir.BatchResult{Seq: reply.Seq, Results: results}, nil
}
