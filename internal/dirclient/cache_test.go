package dirclient

import (
	"testing"

	"dirsvc/dir"
	"dirsvc/internal/capability"
	"dirsvc/internal/dirdata"
)

// testDirCap mints a distinct directory capability for object obj.
func testDirCap(obj uint32) capability.Capability {
	return capability.Capability{Object: obj, Rights: capability.AllRights, Check: [6]byte{byte(obj), 1, 2, 3, 4, 5}}
}

func newTestCache(maxEntries int) *readCache {
	return newReadCache(2, dir.CacheOptions{Enabled: true, MaxEntries: maxEntries})
}

func TestCacheDisabledIsNil(t *testing.T) {
	rc := newReadCache(4, dir.CacheOptions{})
	if rc != nil {
		t.Fatalf("disabled cache = %v, want nil", rc)
	}
	// Every method must be nil-receiver safe.
	if _, ok := rc.getList(0, testDirCap(1), 0); ok {
		t.Fatal("nil cache returned a hit")
	}
	rc.noteWrite(0, 1, 1)
	rc.noteReply(0, 1)
	rc.fillList(0, 0, testDirCap(1), 0, nil, 1, 1)
	if s := rc.stats(); s != (dir.CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
}

func TestCacheFillAndHit(t *testing.T) {
	rc := newTestCache(0)
	d := testDirCap(3)
	rows := []dirdata.Row{{Name: "a", Cap: d, ColMasks: []capability.Rights{7}}}

	epoch := rc.epochOf(0)
	rc.fillList(0, epoch, d, 0, rows, 5, 5)
	got, ok := rc.getList(0, d, 0)
	if !ok || len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("getList = %+v, %v", got, ok)
	}
	// The hit is a copy: mutating it must not corrupt the cache.
	got[0].Name = "mutated"
	got[0].ColMasks[0] = 0
	again, _ := rc.getList(0, d, 0)
	if again[0].Name != "a" || again[0].ColMasks[0] != 7 {
		t.Fatalf("caller mutation reached the cache: %+v", again)
	}

	// A forged capability (same object, different check) must miss.
	forged := d
	forged.Check[0] ^= 0xFF
	if _, ok := rc.getList(0, forged, 0); ok {
		t.Fatal("forged capability hit the cache")
	}
	// Other shards are independent.
	if _, ok := rc.getList(1, d, 0); ok {
		t.Fatal("entry leaked across shards")
	}
}

func TestCacheNegativeLookup(t *testing.T) {
	rc := newTestCache(0)
	d := testDirCap(3)
	rc.fillLookups(0, rc.epochOf(0), d, []string{"hit", "missing"},
		[]capability.Capability{testDirCap(9), {}}, 4, 4)
	if cp, ok := rc.getLookup(0, d, "hit"); !ok || cp.Object != 9 {
		t.Fatalf("positive entry: %v, %v", cp, ok)
	}
	if cp, ok := rc.getLookup(0, d, "missing"); !ok || !cp.IsZero() {
		t.Fatalf("negative entry: %v, %v", cp, ok)
	}
	if _, ok := rc.getLookup(0, d, "never-seen"); ok {
		t.Fatal("uncached name hit")
	}
}

// TestCacheFineInvalidation: a single own update (seq advances by
// exactly one) drops only the touched object's entries.
func TestCacheFineInvalidation(t *testing.T) {
	rc := newTestCache(0)
	a, b := testDirCap(3), testDirCap(4)
	rc.fillList(0, rc.epochOf(0), a, 0, nil, 1, 2)
	rc.fillList(0, rc.epochOf(0), b, 0, nil, 2, 2)

	rc.noteWrite(0, 3, a.Object) // seq 2 → 3: our own single update to a
	if _, ok := rc.getList(0, a, 0); ok {
		t.Fatal("touched object survived fine invalidation")
	}
	if _, ok := rc.getList(0, b, 0); !ok {
		t.Fatal("untouched object dropped by fine invalidation")
	}
	if s := rc.stats(); s.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", s.Invalidations)
	}
}

// TestCacheCoarseInvalidation: a sequence jump larger than one proves
// foreign commits and drops the whole shard.
func TestCacheCoarseInvalidation(t *testing.T) {
	rc := newTestCache(0)
	a, b := testDirCap(3), testDirCap(4)
	rc.fillList(0, rc.epochOf(0), a, 0, nil, 1, 2)
	rc.fillList(1, rc.epochOf(1), b, 0, nil, 2, 2)

	rc.noteWrite(0, 5, a.Object) // seq 2 → 5: unknown commits in between
	if _, ok := rc.getList(0, a, 0); ok {
		t.Fatal("entry survived coarse invalidation")
	}
	// Shard 1 has its own sequence stream and is untouched.
	if _, ok := rc.getList(1, b, 0); !ok {
		t.Fatal("coarse invalidation crossed shards")
	}

	// A failed read's sequence number also invalidates (noteReply).
	rc.fillList(1, rc.epochOf(1), b, 1, nil, 2, 2)
	rc.noteReply(1, 9)
	if _, ok := rc.getList(1, b, 1); ok {
		t.Fatal("entry survived noteReply invalidation")
	}
}

// TestCacheStaleFillSkipped: a fill whose RPC raced with an invalidation
// must not install (it could be pre-invalidation data), unless its own
// reply advanced the sequence number.
func TestCacheStaleFillSkipped(t *testing.T) {
	rc := newTestCache(0)
	d := testDirCap(3)
	rc.noteReply(0, 10) // high-water 10

	epoch := rc.epochOf(0) // fill snapshot, RPC "in flight"
	rc.noteWrite(0, 11, d.Object)
	rc.fillList(0, epoch, d, 0, []dirdata.Row{{Name: "stale"}}, 9, 10)
	if _, ok := rc.getList(0, d, 0); ok {
		t.Fatal("stale fill installed after an invalidation raced it")
	}

	// Same race, but the reply itself proves it is the freshest data.
	epoch = rc.epochOf(0)
	rc.noteWrite(0, 12, d.Object)
	rc.fillList(0, epoch, d, 0, []dirdata.Row{{Name: "fresh"}}, 13, 13)
	if rows, ok := rc.getList(0, d, 0); !ok || rows[0].Name != "fresh" {
		t.Fatalf("fresh fill skipped: %+v, %v", rows, ok)
	}
}

// TestCacheMonotonicFillSkipped: a read served by a replica lagging
// behind the shard's observed high-water mark is never installed, even
// with no invalidation in between — cached data must stay monotonic.
func TestCacheMonotonicFillSkipped(t *testing.T) {
	rc := newTestCache(0)
	d := testDirCap(3)
	rc.noteReply(0, 10) // heard seq 10 from some replica

	epoch := rc.epochOf(0)
	rc.fillList(0, epoch, d, 0, []dirdata.Row{{Name: "lagging"}}, 8, 9)
	if _, ok := rc.getList(0, d, 0); ok {
		t.Fatal("reply behind the high-water mark was installed")
	}
	// At the mark is fine: same state the client already knows about.
	rc.fillList(0, epoch, d, 0, []dirdata.Row{{Name: "current"}}, 8, 10)
	if rows, ok := rc.getList(0, d, 0); !ok || rows[0].Name != "current" {
		t.Fatalf("at-the-mark fill skipped: %+v, %v", rows, ok)
	}
}

// TestCacheObjSeqGuard: an older in-flight reply never clobbers a newer
// cached result for the same key.
func TestCacheObjSeqGuard(t *testing.T) {
	rc := newTestCache(0)
	d := testDirCap(3)
	epoch := rc.epochOf(0)
	rc.fillList(0, epoch, d, 0, []dirdata.Row{{Name: "new"}}, 7, 7)
	rc.fillList(0, epoch, d, 0, []dirdata.Row{{Name: "old"}}, 5, 6)
	if rows, _ := rc.getList(0, d, 0); len(rows) != 1 || rows[0].Name != "new" {
		t.Fatalf("older reply clobbered newer entry: %+v", rows)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	rc := newTestCache(2)
	a, b, c := testDirCap(3), testDirCap(4), testDirCap(5)
	rc.fillList(0, rc.epochOf(0), a, 0, nil, 1, 1)
	rc.fillList(0, rc.epochOf(0), b, 0, nil, 1, 1)
	rc.getList(0, a, 0) // touch a: b becomes least recently used
	rc.fillList(0, rc.epochOf(0), c, 0, nil, 1, 1)

	if _, ok := rc.getList(0, b, 0); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := rc.getList(0, a, 0); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := rc.getList(0, c, 0); !ok {
		t.Fatal("new entry missing")
	}
	if s := rc.stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

// TestCachedClientEndToEnd drives a cached client against a live
// single-server service: counters move, hits serve stale-free data.
func TestCachedClientEndToEnd(t *testing.T) {
	client := newService(t)
	cached := NewWithRPC(client.RPC(), "client-test")
	cached.cache = newReadCache(1, dir.CacheOptions{Enabled: true})
	work, err := cached.CreateDir(bgCtx)
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	if err := cached.Append(bgCtx, work, "n", work, nil); err != nil {
		t.Fatalf("Append: %v", err)
	}
	for i := 0; i < 3; i++ {
		if got, err := cached.Lookup(bgCtx, work, "n"); err != nil || got != work {
			t.Fatalf("Lookup %d: %v, %v", i, got, err)
		}
	}
	s := cached.CacheStats()
	if s.Misses != 1 || s.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss + 2 hits", s)
	}
}
