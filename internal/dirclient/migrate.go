package dirclient

// This file is the client-side migration coordinator for elastic
// topology: it drives an online shard split (OpSplit at every source,
// then every target), moves each object of the split-off residue class
// with a copy-then-flip protocol (OpMigRead at the source, then a
// two-shard transaction pairing OpMigOut with OpMigIn), and finishes by
// sealing the target (OpSealMigration) and dropping the source's
// forwarding stubs (OpDropStubs).
//
// Every step is idempotent or retryable, so a coordinator that crashes
// anywhere can simply run SplitAndMigrate again: an already-split shard
// answers the split with its current floor, a half-moved object is
// re-copied or skipped (the source answers NotFound once its entry is a
// stub), and seal/drop replay harmlessly. The ordering invariant the
// coordinator maintains — sources split before targets, every object
// moved before the seal, the target sealed before the source drops its
// stubs — is what keeps routing loop-free for clients at any epoch.
//
// The flip itself rides the same two-phase commit as cross-shard
// batches, so a coordinator that dies mid-flip leaves the outcome to
// participant recovery exactly like any other transaction: either both
// shards commit (entry becomes a stub at the source, image lands at the
// target) or neither does.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"dirsvc/dir"
	"dirsvc/internal/capability"
	"dirsvc/internal/dirsvc"
)

// ShardMap reads one shard's topology snapshot: its shard-map epoch
// state, table occupancy, and the migration work list (owned objects
// homed elsewhere under the current epoch). The client adopts the
// returned epoch into its own routing.
func (c *Client) ShardMap(ctx context.Context, shard int) (*dirsvc.ShardMapInfo, error) {
	if shard < 0 || shard >= len(c.conns) {
		return nil, fmt.Errorf("shard %d out of range: %w", shard, dirsvc.ErrBadRequest)
	}
	reply, _, err := c.transRead(ctx, shard, &dirsvc.Request{Op: dirsvc.OpShardMap})
	if err != nil {
		return nil, err
	}
	info, err := dirsvc.DecodeShardMapInfo(reply.Blob)
	if err != nil {
		return nil, err
	}
	c.noteEpoch(info.Topo.Epoch)
	return info, nil
}

// Split advances the shard map one epoch: every active shard becomes
// the migration source of its twin (shard + active), and the twins
// activate as targets. Objects do not move yet — the split only fences
// allocation and starts forwarding; CompleteSplit does the moving.
//
// Split is resumable: if any shard reports a split still in progress,
// the in-flight epoch is re-driven instead of starting a new one, and
// shards that already processed it answer idempotently. It returns the
// epoch now in force.
func (c *Client) Split(ctx context.Context) (uint64, error) {
	target, err := c.splitTarget(ctx)
	if err != nil {
		return 0, err
	}
	oldActive := dir.ActiveShards(target-1, c.base, c.total)
	newActive := dir.ActiveShards(target, c.base, c.total)
	if newActive != oldActive*2 {
		return 0, fmt.Errorf("dirclient: no spare shards for epoch %d (%d of %d active): %w",
			target, oldActive, c.total, dirsvc.ErrBadRequest)
	}
	// Sources first: each answers with its moving class's allocation
	// floor, and fences its allocator so no new object can be minted in
	// the class that is leaving.
	floors := make([]uint32, oldActive)
	for s := 0; s < oldActive; s++ {
		reply, _, err := c.trans(ctx, s, &dirsvc.Request{Op: dirsvc.OpSplit, Seq: target})
		if err != nil {
			return 0, fmt.Errorf("split source %d: %w", s, err)
		}
		floors[s] = uint32(reply.ObjSeq)
	}
	// Then the targets, told their floor: a miss at or below it chases
	// to the source until the seal; numbers below it are never re-minted.
	for s := 0; s < oldActive; s++ {
		t := s + oldActive
		_, _, err := c.trans(ctx, t, &dirsvc.Request{Op: dirsvc.OpSplit, Seq: target, Column: int(floors[s])})
		if err != nil {
			return 0, fmt.Errorf("split target %d: %w", t, err)
		}
	}
	c.noteEpoch(target)
	return target, nil
}

// splitTarget picks the epoch Split should drive: the in-flight epoch
// when any shard is still mid-migration (a crashed coordinator left a
// split to finish), else one past the highest epoch any shard holds.
func (c *Client) splitTarget(ctx context.Context) (uint64, error) {
	var maxEpoch uint64
	resume := false
	for s := 0; s < c.total; s++ {
		info, err := c.ShardMap(ctx, s)
		if err != nil {
			return 0, fmt.Errorf("shard map %d: %w", s, err)
		}
		if info.Topo.Epoch > maxEpoch {
			maxEpoch = info.Topo.Epoch
		}
		if info.Topo.MigPhase != dirsvc.MigNone {
			resume = true
		}
	}
	if resume {
		return maxEpoch, nil
	}
	return maxEpoch + 1, nil
}

// CompleteSplit drains the most recent split: moves every object of
// each source shard's departing residue class to its twin, seals each
// target, and drops the sources' forwarding stubs. Idempotent — safe to
// call after a crashed coordinator, or when no split is in progress.
func (c *Client) CompleteSplit(ctx context.Context) error {
	// Learn the authoritative epoch from every shard, not just one: a
	// replica that lags behind a just-committed split would report the
	// old epoch and make this a silent no-op. noteEpoch keeps the max.
	for s := 0; s < c.total; s++ {
		if _, err := c.ShardMap(ctx, s); err != nil {
			return err
		}
	}
	epoch := c.epoch.Load()
	active := dir.ActiveShards(epoch, c.base, c.total)
	if active < 2 {
		return nil
	}
	half := active / 2
	for src := 0; src < half; src++ {
		if err := c.drainSource(ctx, src, src+half, epoch); err != nil {
			return fmt.Errorf("drain shard %d: %w", src, err)
		}
	}
	return nil
}

// drainSource moves every departing object off one split source, then
// seals the target and drops the source's stubs — in that order, so a
// miss in the moving class always has exactly one authoritative answer.
func (c *Client) drainSource(ctx context.Context, src, dst int, epoch uint64) error {
	for round := 0; round < 100; round++ {
		info, err := c.ShardMap(ctx, src)
		if err != nil {
			return err
		}
		if info.Topo.Epoch < epoch {
			// A lagging replica served a pre-split map; taking its word
			// would skip the drain entirely. Wait for the split to reach
			// whoever answers, then look again.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(round+1) * 5 * time.Millisecond):
			}
			continue
		}
		if info.Topo.MigPhase == dirsvc.MigNone && info.Stubs == 0 && len(info.Moving) == 0 {
			return nil // this source already completed (or never split)
		}
		if len(info.Moving) > 0 {
			for _, obj := range info.Moving {
				if err := c.MigrateObject(ctx, src, dst, obj); err != nil {
					return fmt.Errorf("migrate object %d: %w", obj, err)
				}
			}
			continue // re-snapshot before sealing
		}
		// Every moving object is gone. Seal the target first — misses at
		// or below the floor become authoritative there — then drop the
		// source's stubs (refused, and retried here, if a straggler
		// somehow remains).
		if _, _, err := c.trans(ctx, dst, &dirsvc.Request{Op: dirsvc.OpSealMigration}); err != nil {
			return fmt.Errorf("seal target %d: %w", dst, err)
		}
		if _, _, err := c.trans(ctx, src, &dirsvc.Request{Op: dirsvc.OpDropStubs}); err != nil {
			if errors.Is(err, dirsvc.ErrConflict) {
				continue
			}
			return fmt.Errorf("drop stubs at %d: %w", src, err)
		}
		return nil
	}
	return fmt.Errorf("source shard %d would not drain: %w", src, dirsvc.ErrConflict)
}

// MigrateObject moves one object from src to dst while the service
// stays live: copy the image at the source, then atomically flip
// ownership with a two-shard transaction — OpMigOut replaces the source
// entry with a forwarding stub if and only if the entry still carries
// the copied sequence number, OpMigIn installs the image at the target.
// A writer racing the flip makes it vote no, and the object is
// re-copied; an object deleted (or already moved) mid-flight is skipped.
func (c *Client) MigrateObject(ctx context.Context, src, dst int, obj uint32) error {
	if src == dst || obj == 0 || obj == dirsvc.RootObject {
		return fmt.Errorf("migrate object %d from %d to %d: %w", obj, src, dst, dirsvc.ErrBadRequest)
	}
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		reply, _, err := c.transRead(ctx, src, &dirsvc.Request{
			Op:  dirsvc.OpMigRead,
			Dir: capability.Capability{Object: obj},
		})
		if errors.Is(err, dirsvc.ErrNotFound) {
			return nil // deleted, or a previous flip already committed
		}
		if err != nil {
			return err
		}
		if err := c.txHookCall(TxAfterMigCopy); err != nil {
			return err
		}
		shards := []int{src, dst}
		sort.Ints(shards)
		plan := &txPlan{
			shards: shards,
			steps: map[int][]*dirsvc.Request{
				src: {{Op: dirsvc.OpMigOut, Dir: capability.Capability{Object: obj}, Seq: reply.ObjSeq, Column: dst}},
				dst: {{Op: dirsvc.OpMigIn, Dir: capability.Capability{Object: obj}, Blob: reply.Blob}},
			},
			index: map[int][]int{src: {0}, dst: {1}},
		}
		_, err = c.runTwoPhase(ctx, 2, plan)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrTxHalt) || ctx.Err() != nil {
			return err
		}
		if errors.Is(err, dirsvc.ErrConflict) || errors.Is(err, dirsvc.ErrNotFound) {
			lastErr = err
			continue // interleaved write (or delete): copy again
		}
		return err
	}
	return fmt.Errorf("object %d kept changing under migration: %w", obj, lastErr)
}

// SplitAndMigrate runs a complete elastic-topology step: split the
// shard map one epoch, then move every departing object, seal, and
// clean up. Resumable end to end; returns the epoch now in force.
func (c *Client) SplitAndMigrate(ctx context.Context) (uint64, error) {
	epoch, err := c.Split(ctx)
	if err != nil {
		return 0, err
	}
	return epoch, c.CompleteSplit(ctx)
}

// LoadHints returns the mean piggybacked load hint (0..255) of each
// active shard's sampled replicas — the signal SplitIfHot rebalances
// on. Shards with no samples yet report zero.
func (c *Client) LoadHints() []float64 {
	active := dir.ActiveShards(c.epoch.Load(), c.base, c.total)
	out := make([]float64, active)
	for s := 0; s < active; s++ {
		var sum float64
		n := 0
		for _, st := range c.ReplicaStats(s) {
			if st.Samples > 0 {
				sum += float64(st.Hint)
				n++
			}
		}
		if n > 0 {
			out[s] = sum / float64(n)
		}
	}
	return out
}

// SplitIfHot runs SplitAndMigrate when any active shard's mean load
// hint reaches hot and spare shards exist to absorb the split. It
// reports whether a split ran and the epoch in force afterwards.
func (c *Client) SplitIfHot(ctx context.Context, hot float64) (bool, uint64, error) {
	peak := 0.0
	for _, h := range c.LoadHints() {
		if h > peak {
			peak = h
		}
	}
	epoch := c.epoch.Load()
	if peak < hot {
		return false, epoch, nil
	}
	active := dir.ActiveShards(epoch, c.base, c.total)
	if dir.ActiveShards(epoch+1, c.base, c.total) != active*2 {
		return false, epoch, nil // no spare shards to split into
	}
	newEpoch, err := c.SplitAndMigrate(ctx)
	if err != nil {
		return false, epoch, err
	}
	return true, newEpoch, nil
}
