package dirclient

import (
	"context"
	"sync"
	"time"

	"dirsvc/dir"
	"dirsvc/internal/capability"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/rpc"
)

// This file is the client half of the push-based coherence subsystem:
// one lease-holding watcher goroutine per shard, feeding two consumers —
// the read cache (pushed per-object invalidations replace the
// conservative Seq-jump heuristic while a lease is live) and the public
// Watch event streams (fan-out through the watch hub).
//
// The watcher's cursor is (log identity, next log index). Every batch
// the server sends — subscribe confirmation, push, renewal reply —
// carries both, so the watcher always knows whether it has the complete
// stream: a push whose index is ahead of the cursor means a lost push
// (recovered by an immediate renewal, which replays from the cursor),
// and a batch with a new identity or an explicit resync flag means the
// stream broke (the watcher drops the shard's cache entries and emits
// one dir.EventResync downstream).

// watchChanDepth buffers one Watch subscriber's channel. A consumer
// that falls this far behind gets a resync marker instead of the
// events it missed.
const watchChanDepth = 128

// watchSub is one Watch subscriber.
type watchSub struct {
	id    uint64
	shard int    // -1: all shards
	obj   uint32 // 0: all objects
	ch    chan dir.Event
	// owedResync marks shards whose events overflowed this subscriber's
	// channel; the debt is paid with one coalesced resync marker as soon
	// as the channel has room.
	owedResync map[int]bool
	closed     bool
}

// watchHub fans shard event streams out to Watch subscribers.
type watchHub struct {
	mu   sync.Mutex
	subs map[uint64]*watchSub
	next uint64
}

func newWatchHub() *watchHub {
	return &watchHub{subs: make(map[uint64]*watchSub)}
}

func (h *watchHub) subscribe(shard int, obj uint32) *watchSub {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.next++
	sub := &watchSub{
		id:         h.next,
		shard:      shard,
		obj:        obj,
		ch:         make(chan dir.Event, watchChanDepth),
		owedResync: make(map[int]bool),
	}
	h.subs[sub.id] = sub
	return sub
}

// remove unregisters one subscriber and closes its channel.
func (h *watchHub) remove(id uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if sub, ok := h.subs[id]; ok {
		delete(h.subs, id)
		sub.closed = true
		close(sub.ch)
	}
}

// rehome recomputes the home shard of every object-scoped subscription
// after a shard-map epoch advance. A subscription whose directory moved
// in a split switches to the new home's stream and owes its consumer a
// resync marker — events committed at the new home before the switch
// may have been missed. The returned shards need a running watcher
// (ensureWatcher, called by the client outside the hub lock).
func (h *watchHub) rehome(homeOf func(uint32) int) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	var need []int
	for _, sub := range h.subs {
		if sub.shard == -1 || sub.obj == 0 {
			continue
		}
		home := homeOf(sub.obj)
		if home == sub.shard {
			continue
		}
		sub.shard = home
		need = append(need, home)
		select {
		case sub.ch <- dir.Event{Shard: home, Type: dir.EventResync}:
		default:
			sub.owedResync[home] = true
		}
	}
	return need
}

// closeAll closes every subscriber channel (client shutdown).
func (h *watchHub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, sub := range h.subs {
		delete(h.subs, id)
		sub.closed = true
		close(sub.ch)
	}
}

// deliver fans one event out to the matching subscribers. Sends never
// block: a full subscriber channel converts the event into a resync
// debt, delivered as one EventResync when space frees up — falling
// behind is surfaced, never silent.
func (h *watchHub) deliver(ev dir.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, sub := range h.subs {
		if sub.shard != -1 && sub.shard != ev.Shard {
			continue
		}
		if ev.Type == dir.EventUpdate && sub.obj != 0 && !touchesObject(ev.Objects, sub.obj) {
			continue
		}
		if sub.owedResync[ev.Shard] {
			select {
			case sub.ch <- dir.Event{Shard: ev.Shard, Type: dir.EventResync}:
				delete(sub.owedResync, ev.Shard)
			default:
				continue // still no room; the debt subsumes this event too
			}
			if ev.Type == dir.EventResync {
				continue // the debt payment was this very marker
			}
		}
		select {
		case sub.ch <- ev:
		default:
			sub.owedResync[ev.Shard] = true
		}
	}
}

func touchesObject(objs []uint32, obj uint32) bool {
	for _, o := range objs {
		if o == obj {
			return true
		}
	}
	return false
}

// Watch implements dir.Watcher: it subscribes to committed updates,
// watching one directory's object (and shard) when d is non-zero, or
// every shard's full stream for the zero capability. Watch blocks until
// the subscription is established on every watched shard (bounded by
// ctx), so an update committed after Watch returns is guaranteed to
// reach the stream — as an event, or covered by a resync marker. See
// dir.Watcher for the ordering and resync guarantees. The channel
// closes when ctx is cancelled or the client is closed.
func (c *Client) Watch(ctx context.Context, d capability.Capability) (<-chan dir.Event, error) {
	shard, obj := -1, uint32(0)
	if d.Object != 0 {
		shard, obj = c.shardOf(d), d.Object
	}
	var watchers []*shardWatcher
	if shard == -1 {
		for s := range c.conns {
			watchers = append(watchers, c.ensureWatcher(s))
		}
	} else {
		watchers = append(watchers, c.ensureWatcher(shard))
	}
	for _, w := range watchers {
		if w == nil {
			return nil, rpc.ErrClosed
		}
		select {
		case <-w.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.watchStop:
			return nil, rpc.ErrClosed
		}
	}
	sub := c.hub.subscribe(shard, obj)
	go func() {
		select {
		case <-ctx.Done():
		case <-c.watchStop:
		}
		c.hub.remove(sub.id)
	}()
	return sub.ch, nil
}

// startLeases launches one watcher per shard eagerly — the cache-
// coherence mode, where every shard the client caches must be covered
// before its first read.
func (c *Client) startLeases() {
	for s := range c.conns {
		c.ensureWatcher(s)
	}
}

// ensureWatcher starts shard's lease watcher if it is not running and
// returns it (nil when the client is closed).
func (c *Client) ensureWatcher(shard int) *shardWatcher {
	c.watchMu.Lock()
	defer c.watchMu.Unlock()
	if c.watchClosed {
		return nil
	}
	if w := c.watchers[shard]; w != nil {
		return w
	}
	w := newShardWatcher(c, shard)
	c.watchers[shard] = w
	go w.run()
	return w
}

// stopWatchers tears down the lease watchers and every Watch stream
// (client shutdown).
func (c *Client) stopWatchers() {
	c.watchMu.Lock()
	if c.watchClosed {
		c.watchMu.Unlock()
		return
	}
	c.watchClosed = true
	watchers := make([]*shardWatcher, 0, len(c.watchers))
	for _, w := range c.watchers {
		if w != nil {
			watchers = append(watchers, w)
		}
	}
	c.watchMu.Unlock()
	close(c.watchStop)
	for _, w := range watchers {
		w.stopAndWait()
	}
	c.hub.closeAll()
}

// shardWatcher holds one shard's watch lease: it subscribes, consumes
// pushes, renews the lease at a third of its TTL, and re-subscribes
// (with catch-up when the server's log allows it) after any failure.
type shardWatcher struct {
	c      *Client
	shard  int
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	ready  chan struct{} // closed after the first established lease

	logID   uint64 // current event-log identity (0 before first contact)
	nextIdx uint64 // next log index the stream owes us
}

func newShardWatcher(c *Client, shard int) *shardWatcher {
	ctx, cancel := context.WithCancel(context.Background())
	return &shardWatcher{
		c: c, shard: shard, ctx: ctx, cancel: cancel,
		done: make(chan struct{}), ready: make(chan struct{}),
	}
}

func (w *shardWatcher) stopAndWait() {
	w.cancel()
	<-w.done
}

// run is the watcher loop: subscribe, serve the stream until it breaks,
// repeat with backoff.
func (w *shardWatcher) run() {
	defer close(w.done)
	backoff := 25 * time.Millisecond
	for {
		if w.ctx.Err() != nil {
			return
		}
		stream, batch, err := w.subscribe()
		if err != nil {
			if w.ctx.Err() != nil {
				return
			}
			if !w.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = 25 * time.Millisecond
		ttl := time.Duration(batch.TTLMillis) * time.Millisecond
		if ttl <= 0 {
			ttl = 3 * time.Second
		}
		gap := w.processBatch(batch)
		w.c.cache.setLeased(w.shard, true)
		select { // first lease established: unblock Watch callers
		case <-w.ready:
		default:
			close(w.ready)
		}
		if gap {
			// The confirmation was outrun by a push (reordered consume):
			// renew immediately to replay the missed prefix.
			if batch, ok := w.renew(stream); ok {
				w.processBatch(batch)
			} else {
				w.lost(stream)
				continue
			}
		}
		w.serve(stream, ttl)
		if w.ctx.Err() != nil {
			w.c.cache.setLeased(w.shard, false)
			stream.Close()
			return
		}
		w.lost(stream)
	}
}

// lost handles a broken stream: without pushes the cache cannot trust
// entries beyond the cursor, so the shard's entries go and the pull-only
// heuristic takes back over until the next successful subscribe.
func (w *shardWatcher) lost(stream *rpc.Stream) {
	stream.Close()
	w.c.cache.setLeased(w.shard, false)
	w.c.cache.dropShard(w.shard)
}

func (w *shardWatcher) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-w.ctx.Done():
		return false
	}
}

// subscribe establishes the lease, passing the current cursor so a
// server whose log still holds it replays the missed suffix instead of
// forcing a resync.
func (w *shardWatcher) subscribe() (*rpc.Stream, *dirsvc.EventBatch, error) {
	cn := w.c.conns[w.shard]
	req := &dirsvc.Request{Op: dirsvc.OpWatch, Seq: w.logID, MinSeq: w.nextIdx}
	stream, raw, err := cn.rpc.Subscribe(w.ctx, cn.port, req.Encode())
	if err != nil {
		return nil, nil, err
	}
	batch, err := decodeBatchReply(raw)
	if err != nil {
		stream.Close()
		return nil, nil, err
	}
	return stream, batch, nil
}

// renew refreshes the lease at the server holding it and returns the
// events the stream missed. ok=false means the lease could not be
// renewed there (expired, no majority, server gone) — re-subscribe.
func (w *shardWatcher) renew(stream *rpc.Stream) (*dirsvc.EventBatch, bool) {
	cn := w.c.conns[w.shard]
	req := &dirsvc.Request{Op: dirsvc.OpLeaseRenew, Seq: stream.Tx(), MinSeq: w.nextIdx}
	raw, err := cn.rpc.TransTo(w.ctx, stream.Server(), cn.port, req.Encode())
	if err != nil {
		return nil, false
	}
	batch, err := decodeBatchReply(raw)
	if err != nil {
		return nil, false
	}
	return batch, true
}

// decodeBatchReply unwraps Reply{Blob: EventBatch}, mapping any
// non-OK status to an error.
func decodeBatchReply(raw []byte) (*dirsvc.EventBatch, error) {
	reply, err := dirsvc.DecodeReply(raw)
	if err != nil {
		return nil, err
	}
	if reply.Status != dirsvc.StatusOK {
		return nil, reply.Status.Err()
	}
	return dirsvc.DecodeEventBatch(reply.Blob)
}

// processBatch folds one batch — confirmation, renewal reply, or push
// (they share one shape) — into the cursor, the cache, and the hub. It
// returns true when the batch's events start beyond the cursor: a gap
// the caller must repair with a renewal (or, failing that, surface as a
// resync).
func (w *shardWatcher) processBatch(batch *dirsvc.EventBatch) (gap bool) {
	discontinuity := batch.Resync || (w.logID != 0 && batch.LogID != w.logID)
	if discontinuity {
		// Events were (or may have been) missed for good: invalidate
		// everything cached for the shard and tell Watch consumers.
		w.c.cache.dropShard(w.shard)
		w.c.hub.deliver(dir.Event{Shard: w.shard, Type: dir.EventResync})
		w.logID = batch.LogID
		w.nextIdx = batch.FirstIdx
	} else if w.logID == 0 {
		// First contact: adopt the server's cursor, no resync — nothing
		// was promised before this point.
		w.logID = batch.LogID
		w.nextIdx = batch.FirstIdx
	} else if batch.FirstIdx > w.nextIdx {
		return true
	}
	for i, ev := range batch.Events {
		idx := batch.FirstIdx + uint64(i)
		if idx < w.nextIdx {
			continue // replay overlap (at-least-once): already delivered
		}
		w.deliverUpdate(ev)
		w.nextIdx = idx + 1
	}
	return false
}

// deliverUpdate applies one committed event: per-object cache
// invalidation, session-floor advance, hub fan-out.
func (w *shardWatcher) deliverUpdate(ev dirsvc.Event) {
	w.c.cache.invalidateObjects(w.shard, ev.Seq, ev.Objects)
	w.c.noteSeq(w.shard, ev.Seq)
	w.c.hub.deliver(dir.Event{
		Shard:   w.shard,
		Type:    dir.EventUpdate,
		Seq:     ev.Seq,
		Op:      ev.Op.String(),
		Objects: ev.Objects,
	})
}

// serve consumes the stream until it breaks (returning to the
// subscribe loop) or the watcher stops.
func (w *shardWatcher) serve(stream *rpc.Stream, ttl time.Duration) {
	renewEvery := ttl / 3
	if renewEvery < 10*time.Millisecond {
		renewEvery = 10 * time.Millisecond
	}
	ticker := time.NewTicker(renewEvery)
	defer ticker.Stop()
	cn := w.c.conns[w.shard]
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-cn.rpc.Done():
			return
		case m := <-stream.Chan():
			payload, ok := rpc.PushPayload(m)
			if !ok {
				continue
			}
			batch, err := decodeBatchReply(payload)
			if err != nil {
				continue
			}
			if batch.Resync || batch.LogID != w.logID {
				// The server reset its log (crash recovery): re-subscribe
				// now instead of waiting for the renewal to fail.
				return
			}
			if gap := w.processBatch(batch); gap {
				// A push was lost (stream buffer overrun): replay the
				// missed span from the server's log.
				batch, ok := w.renew(stream)
				if !ok {
					return
				}
				if w.processBatch(batch) {
					return // still gapped: the log already dropped it
				}
			}
		case <-ticker.C:
			batch, ok := w.renew(stream)
			if !ok {
				return
			}
			if w.processBatch(batch) {
				return
			}
		}
	}
}
