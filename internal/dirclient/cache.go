package dirclient

import (
	"container/list"
	"sync"
	"sync/atomic"

	"dirsvc/dir"
	"dirsvc/internal/capability"
	"dirsvc/internal/dirdata"
)

// Cached read operations.
const (
	cacheList   uint8 = iota + 1 // List rows for one (capability, column)
	cacheLookup                  // resolved capability for one (capability, name)
)

// cacheKey identifies one cached read result. The key carries the full
// capability — not just the object number — so a forged or
// rights-restricted capability can never hit an entry filled through a
// valid one; it must go to the server, which verifies the check field.
type cacheKey struct {
	dir  capability.Capability
	kind uint8
	col  int    // cacheList: column selector
	name string // cacheLookup: row name
}

// cacheEntry is one cached result, tagged with the per-object sequence
// number of the reply that filled it so a newer result is never
// overwritten by an older in-flight one.
type cacheEntry struct {
	objSeq uint64
	rows   []dirdata.Row         // cacheList
	cap    capability.Capability // cacheLookup; zero = cached "not found"
	elem   *list.Element         // position in the shard's LRU list
}

// shardCache holds one shard's entries and its invalidation state. Each
// shard has an independent sequence-number stream (its own commit
// block), so high-water tracking is per shard.
type shardCache struct {
	mu      sync.Mutex
	seq     uint64 // high-water commit Seq observed in replies from this shard
	epoch   uint64 // bumped on every invalidation; guards in-flight fills
	entries map[cacheKey]*cacheEntry
	lru     list.List // front = most recently used; values are cacheKey
	// leased: a live watch lease is pushing this shard's invalidations,
	// so an unexplained Seq jump in a reply is not a reason to drop the
	// whole shard — the jump's per-object invalidations arrive (or
	// already arrived) on the push channel, and a real gap in that
	// channel triggers an explicit dropShard from the lease manager.
	leased bool
}

// readCache is the client's per-shard read cache with sequence-number
// invalidation (see dir.CacheOptions for the consistency model). A nil
// *readCache is a disabled cache: every method no-ops.
type readCache struct {
	maxEntries int
	shards     []*shardCache

	hits, misses, invalidations, evictions atomic.Uint64
}

// newReadCache builds a cache for a deployment of `shards` replica
// groups, or returns nil (disabled) when opts.Enabled is false.
func newReadCache(shards int, opts dir.CacheOptions) *readCache {
	if !opts.Enabled {
		return nil
	}
	maxEntries := opts.MaxEntries
	if maxEntries <= 0 {
		maxEntries = dir.DefaultCacheEntries
	}
	rc := &readCache{maxEntries: maxEntries, shards: make([]*shardCache, shards)}
	for i := range rc.shards {
		rc.shards[i] = &shardCache{entries: make(map[cacheKey]*cacheEntry)}
	}
	return rc
}

// stats returns a snapshot of the counters.
func (rc *readCache) stats() dir.CacheStats {
	if rc == nil {
		return dir.CacheStats{}
	}
	return dir.CacheStats{
		Hits:          rc.hits.Load(),
		Misses:        rc.misses.Load(),
		Invalidations: rc.invalidations.Load(),
		Evictions:     rc.evictions.Load(),
	}
}

// epochOf snapshots the shard's invalidation epoch; a fill started under
// this epoch installs only if no invalidation intervened (or the fill's
// own reply advanced the sequence, making it the freshest data known).
func (rc *readCache) epochOf(shard int) uint64 {
	if rc == nil {
		return 0
	}
	sc := rc.shards[shard]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.epoch
}

// getList returns the cached List rows for (d, col). The rows are a
// fresh copy, made under the shard lock: callers may mutate them without
// corrupting the cache, and in-place refills never race the read.
func (rc *readCache) getList(shard int, d capability.Capability, col int) ([]dirdata.Row, bool) {
	if rc == nil {
		return nil, false
	}
	sc := rc.shards[shard]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	e, ok := sc.entries[cacheKey{dir: d, kind: cacheList, col: col}]
	if !ok {
		return nil, false
	}
	sc.lru.MoveToFront(e.elem)
	return cloneRows(e.rows), true
}

// getLookup returns the cached capability for (d, name); a zero
// capability with ok=true is a cached "not found".
func (rc *readCache) getLookup(shard int, d capability.Capability, name string) (capability.Capability, bool) {
	if rc == nil {
		return capability.Capability{}, false
	}
	sc := rc.shards[shard]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	e, ok := sc.entries[cacheKey{dir: d, kind: cacheLookup, name: name}]
	if !ok {
		return capability.Capability{}, false
	}
	sc.lru.MoveToFront(e.elem)
	return e.cap, true
}

// hit and miss record one read operation's outcome (operation-level, not
// per key: a LookupSet counts once however many names it carries).
func (rc *readCache) hit() {
	if rc != nil {
		rc.hits.Add(1)
	}
}

func (rc *readCache) miss() {
	if rc != nil {
		rc.misses.Add(1)
	}
}

// fillList installs a List result read from the server. epoch must be
// the epochOf snapshot taken before the RPC was issued.
func (rc *readCache) fillList(shard int, epoch uint64, d capability.Capability, col int, rows []dirdata.Row, objSeq, seq uint64) {
	if rc == nil {
		return
	}
	rc.fill(shard, epoch, seq, []cacheKey{{dir: d, kind: cacheList, col: col}},
		func(i int) cacheEntry { return cacheEntry{objSeq: objSeq, rows: cloneRows(rows)} })
}

// fillLookups installs a LookupSet result: one entry per name, including
// negative entries for names that resolved to nothing.
func (rc *readCache) fillLookups(shard int, epoch uint64, d capability.Capability, names []string, caps []capability.Capability, objSeq, seq uint64) {
	if rc == nil || len(caps) != len(names) {
		return
	}
	keys := make([]cacheKey, len(names))
	for i, n := range names {
		keys[i] = cacheKey{dir: d, kind: cacheLookup, name: n}
	}
	rc.fill(shard, epoch, seq, keys,
		func(i int) cacheEntry { return cacheEntry{objSeq: objSeq, cap: caps[i]} })
}

// fill observes the reply's sequence number, then installs the entries —
// unless the reply is not provably as fresh as everything the client has
// already seen from the shard: an invalidation raced with the RPC, or
// the reply's sequence number sits below the high-water mark (a read
// served by a replica lagging behind one we heard from earlier).
// Installing in either case could resurrect a stale result and break the
// monotonic-reads guarantee, so the entries are simply not cached.
func (rc *readCache) fill(shard int, epoch, seq uint64, keys []cacheKey, entryAt func(i int) cacheEntry) {
	sc := rc.shards[shard]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	advanced := rc.observeLocked(sc, seq, nil)
	if !advanced && (sc.epoch != epoch || seq < sc.seq) {
		return
	}
	for i, key := range keys {
		e := entryAt(i)
		if old, ok := sc.entries[key]; ok {
			if old.objSeq > e.objSeq {
				continue // an in-flight older reply must not clobber newer data
			}
			old.objSeq, old.rows, old.cap = e.objSeq, e.rows, e.cap
			sc.lru.MoveToFront(old.elem)
			continue
		}
		ne := &cacheEntry{objSeq: e.objSeq, rows: e.rows, cap: e.cap}
		ne.elem = sc.lru.PushFront(key)
		sc.entries[key] = ne
		if len(sc.entries) > rc.maxEntries {
			oldest := sc.lru.Back()
			delete(sc.entries, oldest.Value.(cacheKey))
			sc.lru.Remove(oldest)
			rc.evictions.Add(1)
		}
	}
}

// noteWrite records a successful update this client committed: seq is
// the reply's commit sequence number, objs the directory objects the
// update touched (including created ones). If the sequence advanced by
// exactly this one update, only the touched objects' entries are
// invalid; a larger jump means other clients' updates committed in
// between, touching unknown objects — the whole shard is dropped.
func (rc *readCache) noteWrite(shard int, seq uint64, objs ...uint32) {
	if rc == nil {
		return
	}
	sc := rc.shards[shard]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	rc.observeLocked(sc, seq, objs)
}

// dropShard unconditionally discards one shard's entries and bumps its
// epoch (in-flight fills won't install). Used when the client knows a
// commit happened on the shard but not its sequence number — e.g. a
// cross-shard commit whose decide propagation to that shard failed.
func (rc *readCache) dropShard(shard int) {
	if rc == nil {
		return
	}
	sc := rc.shards[shard]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	n := len(sc.entries)
	sc.entries = make(map[cacheKey]*cacheEntry)
	sc.lru.Init()
	rc.invalidations.Add(uint64(n))
	sc.epoch++
}

// noteReply records a reply sequence number with no object information
// (failed reads still prove commits happened); coarse invalidation only.
func (rc *readCache) noteReply(shard int, seq uint64) {
	if rc == nil || seq == 0 {
		return
	}
	sc := rc.shards[shard]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	rc.observeLocked(sc, seq, nil)
}

// observeLocked advances the shard's high-water sequence number and
// invalidates accordingly. It reports whether seq advanced the mark.
// Must hold sc.mu.
func (rc *readCache) observeLocked(sc *shardCache, seq uint64, objs []uint32) bool {
	if seq <= sc.seq {
		return false
	}
	switch {
	case sc.leased:
		// Pushed invalidations cover foreign commits, so a jump past the
		// high-water mark only invalidates the objects this caller knows
		// it touched (its own write); nothing else needs to go.
		rc.dropObjectsLocked(sc, objs)
	case objs != nil && seq == sc.seq+1:
		// The only unseen commit is the caller's own update: drop just
		// the entries of the directories it touched (per-object
		// refinement).
		rc.dropObjectsLocked(sc, objs)
	default:
		// Unknown commits: every entry of the shard may be stale.
		n := len(sc.entries)
		sc.entries = make(map[cacheKey]*cacheEntry)
		sc.lru.Init()
		rc.invalidations.Add(uint64(n))
	}
	sc.seq = seq
	sc.epoch++
	return true
}

// dropObjectsLocked removes the entries keyed by any of the given
// directory objects. Must hold sc.mu.
func (rc *readCache) dropObjectsLocked(sc *shardCache, objs []uint32) {
	if len(objs) == 0 {
		return
	}
	touched := make(map[uint32]bool, len(objs))
	for _, o := range objs {
		touched[o] = true
	}
	for key, e := range sc.entries {
		if touched[key.dir.Object] {
			sc.lru.Remove(e.elem)
			delete(sc.entries, key)
			rc.invalidations.Add(1)
		}
	}
}

// setLeased flips one shard between push-coherent (leased) and
// pull-only invalidation. Dropping the lease does not drop the entries:
// the caller (the lease manager) does that explicitly when coverage was
// actually lost, after which the conservative pull heuristic is back in
// force for subsequent replies.
func (rc *readCache) setLeased(shard int, on bool) {
	if rc == nil {
		return
	}
	sc := rc.shards[shard]
	sc.mu.Lock()
	sc.leased = on
	sc.mu.Unlock()
}

// invalidateObjects applies one pushed invalidation: drop exactly the
// touched objects' entries and advance the high-water mark to the
// event's sequence number (a reply from a replica lagging behind the
// push must not re-install what the push invalidated).
func (rc *readCache) invalidateObjects(shard int, seq uint64, objs []uint32) {
	if rc == nil {
		return
	}
	sc := rc.shards[shard]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	rc.dropObjectsLocked(sc, objs)
	if seq > sc.seq {
		sc.seq = seq
	}
	sc.epoch++
}

// cloneRows deep-copies List rows so cache and callers never share
// mutable state.
func cloneRows(rows []dirdata.Row) []dirdata.Row {
	if rows == nil {
		return nil
	}
	out := make([]dirdata.Row, len(rows))
	for i, r := range rows {
		out[i] = r
		if r.ColMasks != nil {
			out[i].ColMasks = append([]capability.Rights(nil), r.ColMasks...)
		}
	}
	return out
}
