package dirclient

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"dirsvc/dir"
	"dirsvc/internal/dirsvc"
)

// This file is the coordinator side of cross-shard atomic batches: the
// client splits a batch by home shard, PREPAREs every participant in
// parallel, ratifies the decision at the resolver shard (the lowest
// participant — its totally-ordered stream is the commit point, so a
// coordinator abort racing a participant's presumed-abort timeout
// cannot split the outcome), and propagates COMMIT/ABORT to the rest.
// A coordinator that dies mid-protocol leaves the participants to
// resolve themselves: the resolver presumes abort after a timeout, and
// orphaned peers query the resolver (see core's txResolveLoop).

// TxStage identifies a point in the client-side two-phase commit.
// Fault-injection tests hook these to simulate a coordinator dying at
// every step of the protocol.
type TxStage int

// The hookable coordinator stages, in protocol order.
const (
	// TxBeforePrepare fires before any PREPARE is sent.
	TxBeforePrepare TxStage = iota + 1
	// TxAfterPrepare fires once every participant voted yes, before the
	// decision is sent anywhere.
	TxAfterPrepare
	// TxAfterResolverDecide fires after the resolver shard ratified the
	// commit, before it propagates to the remaining participants.
	TxAfterResolverDecide
	// TxAfterMigCopy fires in the migrator between copying an object's
	// image from the source shard and sending the flip transaction — the
	// window where a crashed migrator must leave both shards untouched.
	TxAfterMigCopy
)

// ErrTxHalt is returned by a transaction hook to abandon the
// coordinator at that stage — simulating a client crash. No aborts are
// sent; the participants' own recovery must resolve the transaction.
var ErrTxHalt = errors.New("dirclient: transaction coordinator halted (fault injection)")

// SetTxHook installs fn, called at each stage of every cross-shard
// two-phase commit this client coordinates. Returning an error stops
// the coordinator there; ErrTxHalt stops it silently (no abort is
// sent), simulating a crash. A nil fn removes the hook.
func (c *Client) SetTxHook(fn func(stage TxStage) error) {
	c.mu.Lock()
	c.txHook = fn
	c.mu.Unlock()
}

func (c *Client) txHookCall(stage TxStage) error {
	c.mu.Lock()
	fn := c.txHook
	c.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(stage)
}

// txPlan is one batch split by home shard.
type txPlan struct {
	shards []int                     // sorted participant shards
	steps  map[int][]*dirsvc.Request // per-shard steps, original order
	index  map[int][]int             // per-shard step → original index
}

// planBatch routes every step to its home shard. Steps naming no
// directory (CreateDir) are homed on the lowest participant shard; a
// batch of only such steps has no participants at all and takes the
// single-shard fast path wherever the caller places it.
func (c *Client) planBatch(b *dir.Batch) *txPlan {
	p := &txPlan{steps: make(map[int][]*dirsvc.Request), index: make(map[int][]int)}
	var homeless []int
	all := b.Steps()
	for i, st := range all {
		if st.Dir.Object == 0 {
			homeless = append(homeless, i)
			continue
		}
		s := c.shardOf(st.Dir)
		p.steps[s] = append(p.steps[s], st)
		p.index[s] = append(p.index[s], i)
	}
	for s := range p.steps {
		p.shards = append(p.shards, s)
	}
	sort.Ints(p.shards)
	if len(p.shards) > 0 && len(homeless) > 0 {
		// Creations ride the resolver shard. Order within a batch does
		// not matter for a creation — nothing else in the batch can name
		// the new directory — but the assignment must be deterministic.
		home := p.shards[0]
		for _, i := range homeless {
			p.steps[home] = append(p.steps[home], all[i])
			p.index[home] = append(p.index[home], i)
		}
	}
	return p
}

// applyTwoPhase runs the distributed commit for a batch spanning
// plan.shards (≥ 2).
func (c *Client) applyTwoPhase(ctx context.Context, b *dir.Batch, plan *txPlan) (*dir.BatchResult, error) {
	return c.runTwoPhase(ctx, b.Len(), plan)
}

// runTwoPhase drives the two-phase protocol for an already-routed plan
// of nSteps total steps. The migrator uses this directly with a
// hand-built plan (OpMigOut at the source, OpMigIn at the target).
func (c *Client) runTwoPhase(ctx context.Context, nSteps int, plan *txPlan) (*dir.BatchResult, error) {
	id := dirsvc.NewTxID()
	resolver := plan.shards[0]
	participants := append([]int(nil), plan.shards...)

	if err := c.txHookCall(TxBeforePrepare); err != nil {
		return nil, err
	}

	// Phase 1: PREPARE every participant in parallel. Each shard
	// validates and stages its steps, locks the touched objects, and
	// votes with the staged per-step results.
	type vote struct {
		shard int
		reply *dirsvc.Reply
		err   error
	}
	votes := make(chan vote, len(plan.shards))
	for _, s := range plan.shards {
		go func(s int) {
			req := &dirsvc.Request{Op: dirsvc.OpPrepare, Blob: dirsvc.EncodePrepare(&dirsvc.Prepare{
				ID:           id,
				Resolver:     resolver,
				Participants: participants,
				Steps:        dirsvc.EncodeBatchSteps(plan.steps[s]),
			})}
			reply, err := c.transRaw(ctx, s, req)
			votes <- vote{shard: s, reply: reply, err: err}
		}(s)
	}
	prepared := make(map[int]*dirsvc.Reply, len(plan.shards))
	var voteErr error
	for range plan.shards {
		v := <-votes
		switch {
		case v.err != nil:
			if voteErr == nil {
				voteErr = v.err
			}
		case v.reply.Status != dirsvc.StatusOK:
			if voteErr == nil {
				voteErr = c.remapBatchError(v.reply, plan.index[v.shard])
			}
			c.cache.noteReply(v.shard, v.reply.Seq)
		default:
			prepared[v.shard] = v.reply
			// The prepare advanced the shard's stream without changing
			// anything visible: object 0 never keys a cache entry, so this
			// moves the high-water mark without dropping the shard.
			c.cache.noteWrite(v.shard, v.reply.Seq, 0)
		}
	}
	if voteErr != nil {
		c.decideBestEffort(participants, id, false)
		return nil, voteErr
	}

	if err := c.txHookCall(TxAfterPrepare); err != nil {
		if !errors.Is(err, ErrTxHalt) {
			c.decideBestEffort(participants, id, false)
		}
		return nil, err
	}

	// Phase 2a: ratify the commit at the resolver. Its stream totally
	// orders this against any presumed-abort the resolver may race; the
	// transaction is committed — everywhere, eventually — exactly when
	// this apply succeeds.
	commitReply, err := c.decide(ctx, resolver, id, true)
	if err != nil {
		if errors.Is(err, dirsvc.ErrConflict) || errors.Is(err, dirsvc.ErrNotFound) {
			// The resolver resolved it first (presumed abort), or lost the
			// prepared state in a full-shard crash: the transaction cannot
			// commit anywhere. Release the rest.
			c.decideBestEffort(participants, id, false)
			return nil, fmt.Errorf("transaction %v aborted by participant recovery: %w", id, dirsvc.ErrConflict)
		}
		// Outcome unknown (timeout, cancellation): do NOT abort — the
		// resolver may have committed. The participants resolve among
		// themselves via the decision query.
		return nil, err
	}

	if err := c.txHookCall(TxAfterResolverDecide); err != nil {
		return nil, err
	}

	// Phase 2b: propagate the commit. The decision is already durable at
	// the resolver, so propagation runs on a detached context when the
	// caller's died — and a shard we fail to reach learns the outcome
	// from the resolver on its own.
	propCtx, cancel := ctx, func() {}
	if ctx.Err() != nil {
		propCtx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
	}
	defer cancel()
	commitSeqs := map[int]uint64{resolver: commitReply.Seq}
	done := make(chan vote, len(plan.shards))
	others := 0
	for _, s := range plan.shards {
		if s == resolver {
			continue
		}
		others++
		go func(s int) {
			reply, err := c.decide(propCtx, s, id, true)
			done <- vote{shard: s, reply: reply, err: err}
		}(s)
	}
	for i := 0; i < others; i++ {
		v := <-done
		if v.err == nil {
			commitSeqs[v.shard] = v.reply.Seq
		}
	}

	// A shard whose decide we failed to deliver commits later on its
	// own (it learns the outcome from the resolver), so this client's
	// cached entries for it — including negatives the batch supersedes —
	// must go now, commit seq or no commit seq.
	for _, s := range plan.shards {
		if _, ok := commitSeqs[s]; !ok {
			c.cache.dropShard(s)
		}
	}

	// Reassemble per-step results in submission order from the prepare
	// votes (the commit replies carry the identical blobs), and feed the
	// committed objects into the per-shard cache invalidation.
	results := make([]dir.StepResult, nSteps)
	for s, reply := range prepared {
		stepResults, derr := dirsvc.DecodeBatchResults(reply.Blob)
		if derr != nil {
			return nil, derr
		}
		if len(stepResults) != len(plan.index[s]) {
			return nil, dirsvc.ErrBadRequest
		}
		objs := make([]uint32, 0, len(stepResults))
		for j, r := range stepResults {
			results[plan.index[s][j]] = r
			if r.Cap.Object != 0 {
				objs = append(objs, r.Cap.Object)
			}
		}
		for _, st := range plan.steps[s] {
			if st.Dir.Object != 0 {
				objs = append(objs, st.Dir.Object)
			}
		}
		if seq, ok := commitSeqs[s]; ok {
			c.cache.noteWrite(s, seq, objs...)
		}
	}
	return &dir.BatchResult{Seq: commitReply.Seq, Results: results}, nil
}

// decide drives one OpDecide to one shard until it gets an
// authoritative answer. Transient transport trouble and short-lived
// conflicts (the rpc kind refuses an intention while the previous one
// drains) are retried with backoff; a conflict that persists is the
// authoritative "a different decision won".
func (c *Client) decide(ctx context.Context, shard int, id dirsvc.TxID, commit bool) (*dirsvc.Reply, error) {
	req := &dirsvc.Request{
		Op:   dirsvc.OpDecide,
		Blob: dirsvc.EncodeDecide(&dirsvc.Decide{ID: id, Commit: commit}),
	}
	var lastErr error
	conflicts := 0
	for attempt := 0; attempt < 12; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(time.Duration(attempt) * 5 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		reply, err := c.transRaw(ctx, shard, req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		serr := reply.Status.Err()
		switch {
		case serr == nil:
			return reply, nil
		case errors.Is(serr, dirsvc.ErrConflict):
			conflicts++
			if conflicts >= 4 {
				return nil, serr
			}
			lastErr = serr
		case errors.Is(serr, dirsvc.ErrNoMajority):
			lastErr = serr
		default:
			return nil, serr
		}
	}
	return nil, lastErr
}

// decideBestEffort fans an abort (or commit) out to every participant
// without blocking the caller's outcome: failures are fine — presumed
// abort resolves whatever is left.
func (c *Client) decideBestEffort(shards []int, id dirsvc.TxID, commit bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	done := make(chan struct{}, len(shards))
	for _, s := range shards {
		go func(s int) {
			defer func() { done <- struct{}{} }()
			_, _ = c.decide(ctx, s, id, commit)
		}(s)
	}
	go func() {
		for range shards {
			<-done
		}
		cancel()
	}()
}

// remapBatchError converts a shard's vote-no reply into the caller's
// error, translating the failing step index from the shard's sub-batch
// back to the submitted batch.
func (c *Client) remapBatchError(reply *dirsvc.Reply, index []int) error {
	serr := reply.Status.Err()
	if idx, ok := dirsvc.DecodeBatchFailIndex(reply.Blob); ok && idx >= 0 && idx < len(index) {
		return &dirsvc.BatchError{Index: index[idx], Err: serr}
	}
	return serr
}
