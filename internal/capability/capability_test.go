package capability

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPortFromStringDeterministic(t *testing.T) {
	a := PortFromString("directory")
	b := PortFromString("directory")
	c := PortFromString("bullet")
	if a != b {
		t.Fatalf("same name produced different ports: %v vs %v", a, b)
	}
	if a == c {
		t.Fatalf("different names produced the same port: %v", a)
	}
	if a.IsZero() {
		t.Fatal("derived port is zero")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		cap  Capability
	}{
		{name: "zero", cap: Capability{}},
		{name: "owner", cap: Mint(PortFromString("svc"), 42, NewSecret([]byte("x")))},
		{
			name: "max object",
			cap: Capability{
				Port:   PortFromString("svc"),
				Object: 0xffffff,
				Rights: RightRead | RightDelete,
				Check:  Check{1, 2, 3, 4, 5, 6},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			wire := tt.cap.Encode(nil)
			if len(wire) != Size {
				t.Fatalf("encoded size = %d, want %d", len(wire), Size)
			}
			got, err := Decode(wire)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got != tt.cap {
				t.Fatalf("round trip mismatch: got %v, want %v", got, tt.cap)
			}
		})
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, err := Decode(make([]byte, Size-1)); err == nil {
		t.Fatal("Decode of short buffer succeeded, want error")
	}
}

func TestEncodeAppends(t *testing.T) {
	prefix := []byte("hdr")
	cap1 := Mint(PortFromString("svc"), 7, NewSecret([]byte("s")))
	out := cap1.Encode(prefix)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("Encode did not append to dst")
	}
	got, err := Decode(out[len(prefix):])
	if err != nil || got != cap1 {
		t.Fatalf("Decode after append: got %v err %v", got, err)
	}
}

func TestMintVerify(t *testing.T) {
	secret := NewSecret([]byte("obj-9"))
	owner := Mint(PortFromString("dir"), 9, secret)
	if err := Verify(owner, secret); err != nil {
		t.Fatalf("owner capability failed verification: %v", err)
	}
	if err := Verify(owner, NewSecret([]byte("other"))); err == nil {
		t.Fatal("owner capability verified against wrong secret")
	}
}

func TestRestrictVerify(t *testing.T) {
	secret := NewSecret([]byte("obj-1"))
	owner := Mint(PortFromString("dir"), 1, secret)

	ro, err := Restrict(owner, RightRead)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if ro.Rights != RightRead {
		t.Fatalf("restricted rights = %v, want %v", ro.Rights, RightRead)
	}
	if err := Verify(ro, secret); err != nil {
		t.Fatalf("restricted capability failed verification: %v", err)
	}
	// Forging more rights onto the restricted capability must fail.
	forged := ro
	forged.Rights = AllRights
	if err := Verify(forged, secret); err == nil {
		t.Fatal("forged rights escalation verified")
	}
	forged = ro
	forged.Rights = RightRead | RightWrite
	if err := Verify(forged, secret); err == nil {
		t.Fatal("forged partial escalation verified")
	}
}

func TestRestrictNonOwnerRejected(t *testing.T) {
	secret := NewSecret([]byte("obj-2"))
	owner := Mint(PortFromString("dir"), 2, secret)
	ro, err := Restrict(owner, RightRead|RightWrite)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if _, err := Restrict(ro, RightRead); err == nil {
		t.Fatal("restricting a restricted capability succeeded, want error")
	}
}

func TestRestrictAllRightsIsIdentity(t *testing.T) {
	secret := NewSecret([]byte("obj-3"))
	owner := Mint(PortFromString("dir"), 3, secret)
	same, err := Restrict(owner, AllRights)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if same != owner {
		t.Fatal("Restrict(owner, AllRights) != owner")
	}
}

func TestRequire(t *testing.T) {
	secret := NewSecret([]byte("obj-4"))
	owner := Mint(PortFromString("dir"), 4, secret)
	ro, _ := Restrict(owner, RightRead)

	tests := []struct {
		name    string
		cap     Capability
		need    Rights
		wantErr error
	}{
		{name: "owner has all", cap: owner, need: RightWrite | RightDelete},
		{name: "read-only can read", cap: ro, need: RightRead},
		{name: "read-only cannot write", cap: ro, need: RightWrite, wantErr: ErrNoRights},
		{name: "bad check", cap: Capability{Port: owner.Port, Object: 4, Rights: RightRead}, need: RightRead, wantErr: ErrBadCapability},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := Require(tt.cap, secret, tt.need)
			if tt.wantErr == nil && err != nil {
				t.Fatalf("Require: %v", err)
			}
			if tt.wantErr != nil && err != tt.wantErr {
				t.Fatalf("Require err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestRightsHas(t *testing.T) {
	r := RightRead | RightDelete
	if !r.Has(RightRead) || !r.Has(RightDelete) || !r.Has(RightRead|RightDelete) {
		t.Fatal("Has missed granted rights")
	}
	if r.Has(RightWrite) || r.Has(RightRead|RightWrite) {
		t.Fatal("Has granted missing rights")
	}
}

// Property: every encode/decode round trip is the identity, for arbitrary
// capabilities.
func TestQuickEncodeDecode(t *testing.T) {
	f := func(port [6]byte, object uint32, rights uint8, check [6]byte) bool {
		c := Capability{
			Port:   Port(port),
			Object: object & 0xffffff,
			Rights: Rights(rights),
			Check:  Check(check),
		}
		got, err := Decode(c.Encode(nil))
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a restricted capability always verifies, and changing its rights
// mask to anything else always fails verification.
func TestQuickRestrictTamperProof(t *testing.T) {
	f := func(seed []byte, object uint32, mask, tamper uint8) bool {
		secret := NewSecret(seed)
		object &= 0xffffff
		owner := Mint(PortFromString("svc"), object, secret)
		m := Rights(mask)
		if m == AllRights {
			m = AllRights - 1
		}
		ro, err := Restrict(owner, m)
		if err != nil {
			return false
		}
		if Verify(ro, secret) != nil {
			return false
		}
		tampered := ro
		tampered.Rights = Rights(tamper)
		if tampered.Rights == ro.Rights {
			return true // not a tamper
		}
		return Verify(tampered, secret) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
