// Package capability implements Amoeba-style 128-bit capabilities.
//
// A capability identifies and protects an object. It consists of four
// parts (paper §2): a 48-bit port identifying the service, a 24-bit object
// number identifying the object at that service, an 8-bit rights field, and
// a 48-bit check field that makes the capability unforgeable.
//
// The owner capability carries the full rights mask and the object's secret
// check number C. A restricted capability for rights mask R carries
// check = F(C xor R), where F is a one-way function. A server verifies a
// restricted capability by recomputing F(C xor R) from its stored secret.
package capability

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// Size is the wire size of a capability in bytes (128 bits).
const Size = 16

// Rights is the 8-bit rights mask of a capability.
type Rights uint8

// Standard rights bits used by the directory and file services.
const (
	RightRead   Rights = 1 << iota // read/list the object
	RightWrite                     // modify the object
	RightDelete                    // delete the object or rows
	RightAdmin                     // change protection (chmod)
)

// AllRights is the rights mask of an owner capability.
const AllRights Rights = 0xff

// Has reports whether r includes every bit of want.
func (r Rights) Has(want Rights) bool { return r&want == want }

// Port is a 48-bit service identifier. Services listen on ports; clients
// locate services by port (see internal/flip).
type Port [6]byte

// PortFromString derives a port deterministically from a service name.
func PortFromString(name string) Port {
	sum := sha256.Sum256([]byte("port:" + name))
	var p Port
	copy(p[:], sum[:6])
	return p
}

// String returns the port as a short hex string.
func (p Port) String() string { return hex.EncodeToString(p[:]) }

// IsZero reports whether the port is the all-zero (null) port.
func (p Port) IsZero() bool { return p == Port{} }

// Check is the 48-bit check field protecting a capability.
type Check [6]byte

// String returns the check field as hex.
func (c Check) String() string { return hex.EncodeToString(c[:]) }

// Capability identifies and protects one object of one service.
type Capability struct {
	Port   Port   // service that manages the object
	Object uint32 // object number at that service (24 bits used)
	Rights Rights // operations the holder may perform
	Check  Check  // validity proof
}

// ErrBadCapability is returned when a capability fails verification.
var ErrBadCapability = errors.New("capability: invalid check field")

// ErrNoRights is returned when a capability lacks the rights for an
// operation.
var ErrNoRights = errors.New("capability: insufficient rights")

// String renders the capability in the conventional
// port:object(rights)check form.
func (c Capability) String() string {
	return fmt.Sprintf("%s:%d(%02x)%s", c.Port, c.Object, uint8(c.Rights), c.Check)
}

// IsZero reports whether the capability is the zero capability.
func (c Capability) IsZero() bool { return c == Capability{} }

// Encode appends the 16-byte wire form of c to dst and returns the result.
func (c Capability) Encode(dst []byte) []byte {
	dst = append(dst, c.Port[:]...)
	var obj [3]byte
	obj[0] = byte(c.Object >> 16)
	obj[1] = byte(c.Object >> 8)
	obj[2] = byte(c.Object)
	dst = append(dst, obj[:]...)
	dst = append(dst, byte(c.Rights))
	dst = append(dst, c.Check[:]...)
	return dst
}

// Decode parses a 16-byte wire-form capability from b.
func Decode(b []byte) (Capability, error) {
	if len(b) < Size {
		return Capability{}, fmt.Errorf("capability: short buffer (%d bytes)", len(b))
	}
	var c Capability
	copy(c.Port[:], b[0:6])
	c.Object = uint32(b[6])<<16 | uint32(b[7])<<8 | uint32(b[8])
	c.Rights = Rights(b[9])
	copy(c.Check[:], b[10:16])
	return c, nil
}

// onewayF is the one-way function used for rights restriction. It only has
// to be hard to invert; we use SHA-256 truncated to 48 bits.
func onewayF(port Port, object uint32, secret Check, rights Rights) Check {
	var buf [6 + 4 + 6 + 1]byte
	copy(buf[0:6], port[:])
	binary.BigEndian.PutUint32(buf[6:10], object)
	copy(buf[10:16], secret[:])
	buf[16] = byte(rights)
	sum := sha256.Sum256(buf[:])
	var out Check
	copy(out[:], sum[:6])
	return out
}

// Secret is the per-object secret a server stores to mint and verify
// capabilities for the object.
type Secret Check

// NewSecret derives an object secret from seed material. Servers call this
// once per object with random (or, for the group directory service,
// deterministically agreed-upon) seed bytes.
func NewSecret(seed []byte) Secret {
	sum := sha256.Sum256(append([]byte("secret:"), seed...))
	var s Secret
	copy(s[:], sum[:6])
	return s
}

// Mint creates the owner capability (all rights) for an object.
func Mint(port Port, object uint32, secret Secret) Capability {
	return Capability{
		Port:   port,
		Object: object,
		Rights: AllRights,
		Check:  Check(secret),
	}
}

// Restrict derives a capability carrying only the rights in mask from an
// owner capability. Restricting an already-restricted capability is not
// supported by the one-way scheme and returns ErrBadCapability unless the
// input carries AllRights.
func Restrict(owner Capability, mask Rights) (Capability, error) {
	if owner.Rights != AllRights {
		return Capability{}, fmt.Errorf("restrict non-owner capability: %w", ErrBadCapability)
	}
	if mask == AllRights {
		return owner, nil
	}
	return Capability{
		Port:   owner.Port,
		Object: owner.Object,
		Rights: mask,
		Check:  onewayF(owner.Port, owner.Object, owner.Check, mask),
	}, nil
}

// Verify checks c against the object secret held by the server. It returns
// nil when the capability is genuine (owner or correctly restricted).
func Verify(c Capability, secret Secret) error {
	if c.Rights == AllRights {
		if c.Check == Check(secret) {
			return nil
		}
		return ErrBadCapability
	}
	if c.Check == onewayF(c.Port, c.Object, Check(secret), c.Rights) {
		return nil
	}
	return ErrBadCapability
}

// Require verifies c and additionally checks that it grants the rights in
// need. It returns ErrBadCapability or ErrNoRights accordingly.
func Require(c Capability, secret Secret, need Rights) error {
	if err := Verify(c, secret); err != nil {
		return err
	}
	if !c.Rights.Has(need) {
		return ErrNoRights
	}
	return nil
}
