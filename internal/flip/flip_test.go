package flip

import (
	"errors"
	"testing"
	"time"

	"dirsvc/internal/capability"
	"dirsvc/internal/sim"
)

func twoStacks(t *testing.T) (*Stack, *Stack, *sim.Network) {
	t.Helper()
	net := sim.NewNetwork(sim.FastModel(), 1)
	a := NewStack(net.AddNode("a"))
	b := NewStack(net.AddNode("b"))
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, net
}

func TestSendToListener(t *testing.T) {
	a, b, _ := twoStacks(t)
	port := capability.PortFromString("svc")
	l, err := b.Register(port)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := a.Send(b.Node().ID(), port, []byte("req")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, ok, timedOut := l.RecvTimeout(5 * time.Second)
	if !ok || timedOut {
		t.Fatalf("RecvTimeout: ok=%v timedOut=%v", ok, timedOut)
	}
	if m.Src != a.Node().ID() || string(m.Payload) != "req" {
		t.Fatalf("got %+v", m)
	}
}

func TestSendToUnregisteredPortIsDropped(t *testing.T) {
	a, b, _ := twoStacks(t)
	other := capability.PortFromString("other")
	l, _ := b.Register(capability.PortFromString("svc"))
	if err := a.Send(b.Node().ID(), other, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok, timedOut := l.RecvTimeout(20 * time.Millisecond); ok || !timedOut {
		t.Fatal("listener received a frame for another port")
	}
}

func TestRegisterDuplicatePort(t *testing.T) {
	_, b, _ := twoStacks(t)
	port := capability.PortFromString("svc")
	if _, err := b.Register(port); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Register(port); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("second Register: %v, want ErrPortInUse", err)
	}
}

func TestListenerCloseFreesPort(t *testing.T) {
	_, b, _ := twoStacks(t)
	port := capability.PortFromString("svc")
	l, err := b.Register(port)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, ok := l.Recv(); ok {
		t.Fatal("Recv on closed listener returned ok")
	}
	if _, err := b.Register(port); err != nil {
		t.Fatalf("re-Register after Close: %v", err)
	}
}

func TestMulticastReachesAllListeners(t *testing.T) {
	net := sim.NewNetwork(sim.FastModel(), 1)
	var stacks []*Stack
	port := capability.PortFromString("group")
	var listeners []*Listener
	for i := 0; i < 4; i++ {
		s := NewStack(net.AddNode("n"))
		stacks = append(stacks, s)
		if i > 0 { // node 0 is the sender and does not listen
			l, err := s.Register(port)
			if err != nil {
				t.Fatal(err)
			}
			listeners = append(listeners, l)
		}
	}
	t.Cleanup(func() {
		for _, s := range stacks {
			s.Close()
		}
	})

	before := net.Stats().FramesSent
	if err := stacks[0].Multicast(port, []byte("ord")); err != nil {
		t.Fatal(err)
	}
	for i, l := range listeners {
		m, ok, timedOut := l.RecvTimeout(5 * time.Second)
		if !ok || timedOut {
			t.Fatalf("listener %d: ok=%v timedOut=%v", i, ok, timedOut)
		}
		if string(m.Payload) != "ord" {
			t.Fatalf("listener %d got %q", i, m.Payload)
		}
	}
	if got := net.Stats().FramesSent - before; got != 1 {
		t.Fatalf("multicast used %d transmissions, want 1", got)
	}
}

func TestLocateFindsListeners(t *testing.T) {
	net := sim.NewNetwork(sim.FastModel(), 1)
	client := NewStack(net.AddNode("client"))
	port := capability.PortFromString("dir")
	var servers []*Stack
	for i := 0; i < 3; i++ {
		s := NewStack(net.AddNode("server"))
		if _, err := s.Register(port); err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
	}
	t.Cleanup(func() {
		client.Close()
		for _, s := range servers {
			s.Close()
		}
	})

	found, err := client.Locate(port, 100*time.Millisecond, 0)
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if len(found) != 3 {
		t.Fatalf("Locate found %d servers, want 3", len(found))
	}
	seen := make(map[sim.NodeID]bool)
	for _, id := range found {
		seen[id] = true
	}
	for _, s := range servers {
		if !seen[s.Node().ID()] {
			t.Fatalf("server %v not located", s.Node())
		}
	}
}

func TestLocateMaxStopsEarly(t *testing.T) {
	net := sim.NewNetwork(sim.FastModel(), 1)
	client := NewStack(net.AddNode("client"))
	port := capability.PortFromString("dir")
	for i := 0; i < 3; i++ {
		s := NewStack(net.AddNode("server"))
		if _, err := s.Register(port); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	found, err := client.Locate(port, 10*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 {
		t.Fatalf("found %d, want 1", len(found))
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Locate with max=1 did not stop early")
	}
}

func TestLocateNoListeners(t *testing.T) {
	a, _, _ := twoStacks(t)
	found, err := a.Locate(capability.PortFromString("nobody"), 20*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 0 {
		t.Fatalf("found %v, want none", found)
	}
}

func TestStackCloseUnblocksListeners(t *testing.T) {
	_, b, _ := twoStacks(t)
	l, _ := b.Register(capability.PortFromString("svc"))
	done := make(chan bool, 1)
	go func() {
		_, ok := l.Recv()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv returned ok after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	if _, err := b.Register(capability.PortFromString("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Register after Close: %v", err)
	}
}

func TestNodeCrashClosesStack(t *testing.T) {
	_, b, _ := twoStacks(t)
	l, _ := b.Register(capability.PortFromString("svc"))
	b.Node().Crash()
	if _, ok := l.Recv(); ok {
		t.Fatal("Recv returned ok after node crash")
	}
}

func TestPartitionedLocateSeesOnlyOwnSide(t *testing.T) {
	net := sim.NewNetwork(sim.FastModel(), 1)
	client := NewStack(net.AddNode("client"))
	port := capability.PortFromString("dir")
	near := NewStack(net.AddNode("near"))
	far := NewStack(net.AddNode("far"))
	if _, err := near.Register(port); err != nil {
		t.Fatal(err)
	}
	if _, err := far.Register(port); err != nil {
		t.Fatal(err)
	}
	net.Partition(
		[]sim.NodeID{client.Node().ID(), near.Node().ID()},
		[]sim.NodeID{far.Node().ID()},
	)
	found, err := client.Locate(port, 50*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0] != near.Node().ID() {
		t.Fatalf("found %v, want only the near server", found)
	}
}
