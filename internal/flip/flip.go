// Package flip implements a FLIP-like communication layer on top of the
// simulated Ethernet (internal/sim): location-transparent 48-bit ports,
// port-addressed unicast and multicast, and a broadcast locate mechanism
// (LOCATE / HEREIS) that the RPC layer's port cache heuristic builds on.
//
// Amoeba implemented its RPC and group communication primitives on top of
// the FLIP internetwork protocol [Kaashoek et al., ACM TOCS 1993]; this
// package plays that role here. Each simulated host runs one Stack, which
// dispatches incoming frames to per-port listeners.
package flip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"dirsvc/internal/capability"
	"dirsvc/internal/sim"
)

// Msg is a port-addressed message delivered to a listener.
type Msg struct {
	Src     sim.NodeID
	Payload []byte
}

// HereIs is one HEREIS response to a locate: the responding host plus
// the load hint it piggybacked (see Listener.SetHint). Hint is 0 for
// responders that advertise none. ReadOnly marks responders that serve
// only reads (a checkpoint-fed secondary instance); writers must be
// routed to a responder without the flag.
type HereIs struct {
	Src      sim.NodeID
	Hint     byte
	ReadOnly bool
}

// HEREIS flag bits (the optional byte after the load hint).
const hereIsReadOnly = 1 << 0

// Frame kinds on the wire.
const (
	kindData   = 1 // port-addressed unicast
	kindMcast  = 2 // port-addressed broadcast (Ethernet multicast)
	kindLocate = 3 // broadcast: who listens on this port?
	kindHereIs = 4 // unicast reply to a locate
)

const headerSize = 1 + 6 // kind + port

var (
	// ErrClosed is returned when the stack or listener has shut down.
	ErrClosed = errors.New("flip: stack closed")
	// ErrPortInUse is returned when registering a port twice on one stack.
	ErrPortInUse = errors.New("flip: port already registered")
)

const listenerDepth = 1024

// Listener receives messages addressed to one port on one host.
type Listener struct {
	stack *Stack
	port  capability.Port
	ch    chan Msg
	// fn, when set, is invoked synchronously from the dispatcher instead
	// of queueing on ch. See Stack.RegisterFunc.
	fn func(Msg)

	mu     sync.Mutex
	closed bool
	// hint, when set, supplies the load byte piggybacked on every HEREIS
	// this port answers. It runs on the dispatcher and must not block.
	hint func() byte
	// readOnly marks this port's HEREIS answers with the read-only flag.
	readOnly bool
}

// SetHint installs the load-hint source piggybacked on this port's
// HEREIS answers (0..255, higher = more loaded). fn runs on the
// dispatcher thread for every locate and must not block; nil removes it.
func (l *Listener) SetHint(fn func() byte) {
	l.mu.Lock()
	l.hint = fn
	l.mu.Unlock()
}

// SetReadOnly marks (or unmarks) the port as a read-only responder:
// every HEREIS it answers carries the flag, so locating clients route
// updates elsewhere.
func (l *Listener) SetReadOnly(ro bool) {
	l.mu.Lock()
	l.readOnly = ro
	l.mu.Unlock()
}

// hintByte samples the listener's advertised load hint.
func (l *Listener) hintByte() byte {
	l.mu.Lock()
	fn := l.hint
	l.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// flagByte assembles the listener's HEREIS flag byte.
func (l *Listener) flagByte() byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	var f byte
	if l.readOnly {
		f |= hereIsReadOnly
	}
	return f
}

// Port returns the port the listener is bound to.
func (l *Listener) Port() capability.Port { return l.port }

// Recv blocks until a message arrives. ok is false after Close or stack
// shutdown.
func (l *Listener) Recv() (Msg, bool) {
	m, ok := <-l.ch
	return m, ok
}

// RecvTimeout waits up to d for a message. It returns ok=false both on
// timeout and on close; timedOut distinguishes the two.
func (l *Listener) RecvTimeout(d time.Duration) (m Msg, ok, timedOut bool) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case m, ok = <-l.ch:
		return m, ok, false
	case <-timer.C:
		return Msg{}, false, true
	}
}

// Chan exposes the receive channel for use in select loops.
func (l *Listener) Chan() <-chan Msg { return l.ch }

// Close deregisters the listener. Pending messages are discarded.
func (l *Listener) Close() {
	l.stack.deregister(l)
}

// deliver enqueues m unless the listener is closed or full. Must not block
// for function listeners' queueing; fn itself runs synchronously.
func (l *Listener) deliver(m Msg) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	fn := l.fn
	l.mu.Unlock()
	if fn != nil {
		fn(m)
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	select {
	case l.ch <- m:
	default: // receiver overrun: drop, like a real kernel buffer
	}
}

func (l *Listener) markClosed() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.ch)
	}
}

// Stack is the FLIP endpoint of one simulated host.
type Stack struct {
	node *sim.Node

	mu        sync.Mutex
	listeners map[capability.Port]*Listener
	locates   map[uint64]chan HereIs
	nextLoc   uint64
	closed    bool

	done chan struct{}
}

// NewStack attaches a FLIP stack to a node and starts its dispatcher. The
// stack runs until the node crashes or Close is called.
func NewStack(node *sim.Node) *Stack {
	s := &Stack{
		node:      node,
		listeners: make(map[capability.Port]*Listener),
		locates:   make(map[uint64]chan HereIs),
		done:      make(chan struct{}),
	}
	go s.dispatch()
	return s
}

// Node returns the underlying simulated host.
func (s *Stack) Node() *sim.Node { return s.node }

// Model returns the network latency model.
func (s *Stack) Model() *sim.LatencyModel { return s.node.Network().Model() }

// Close shuts the stack down and unblocks all listeners. The underlying
// node is left running; a crashed node shuts its stack down automatically.
func (s *Stack) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ls := make([]*Listener, 0, len(s.listeners))
	for _, l := range s.listeners {
		ls = append(ls, l)
	}
	s.listeners = make(map[capability.Port]*Listener)
	s.mu.Unlock()
	for _, l := range ls {
		l.markClosed()
	}
	// Unblock the dispatcher if it is waiting in Recv: crash-restart the
	// node's inbox generation by crashing only the stack; the dispatcher
	// also exits when the node itself crashes. We nudge it with a
	// self-addressed frame.
	_ = s.node.Unicast(s.node.ID(), nil)
}

// Register binds a listener to port. At most one listener per port per
// stack.
func (s *Stack) Register(port capability.Port) (*Listener, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, dup := s.listeners[port]; dup {
		return nil, fmt.Errorf("port %v: %w", port, ErrPortInUse)
	}
	l := &Listener{
		stack: s,
		port:  port,
		ch:    make(chan Msg, listenerDepth),
	}
	s.listeners[port] = l
	return l, nil
}

// RegisterFunc binds fn to port; fn runs synchronously in the dispatcher
// for every message addressed to the port. This mirrors Amoeba's kernel
// processing group protocol packets at interrupt time: bookkeeping done in
// fn is guaranteed to be visible before any later-arriving frame (e.g. a
// client read request) is dispatched, the property §3.1's GetInfoGroup
// read check relies on. fn must not block.
func (s *Stack) RegisterFunc(port capability.Port, fn func(Msg)) (*Listener, error) {
	l, err := s.Register(port)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.fn = fn
	l.mu.Unlock()
	return l, nil
}

func (s *Stack) deregister(l *Listener) {
	s.mu.Lock()
	if s.listeners[l.port] == l {
		delete(s.listeners, l.port)
	}
	s.mu.Unlock()
	l.markClosed()
}

// Send delivers payload to the listener on port at host dst.
func (s *Stack) Send(dst sim.NodeID, port capability.Port, payload []byte) error {
	return s.node.Unicast(dst, encodeFrame(kindData, port, payload))
}

// Multicast delivers payload to every host listening on port, in a single
// Ethernet transmission. The sender's own listener does not receive it
// (matching the simulated Ethernet, which never loops frames back).
func (s *Stack) Multicast(port capability.Port, payload []byte) error {
	return s.node.Broadcast(encodeFrame(kindMcast, port, payload))
}

// Locate broadcasts a request for hosts listening on port and collects
// HEREIS replies, in arrival order, until the window elapses or max
// replies arrive (max ≤ 0 means unlimited). The arrival order is what the
// RPC layer's "first server to reply" heuristic keys on.
func (s *Stack) Locate(port capability.Port, window time.Duration, max int) ([]sim.NodeID, error) {
	found, err := s.LocateHints(port, window, max)
	if err != nil {
		return nil, err
	}
	out := make([]sim.NodeID, len(found))
	for i, h := range found {
		out[i] = h.Src
	}
	return out, nil
}

// LocateHints is Locate returning, alongside each responder, the load
// hint the responder piggybacked on its HEREIS (see Listener.SetHint) —
// the seed for latency-aware server selection before any reply has been
// observed.
func (s *Stack) LocateHints(port capability.Port, window time.Duration, max int) ([]HereIs, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.nextLoc++
	id := s.nextLoc
	ch := make(chan HereIs, 64)
	s.locates[id] = ch
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.locates, id)
		s.mu.Unlock()
	}()

	payload := make([]byte, 8)
	binary.BigEndian.PutUint64(payload, id)
	if err := s.node.Broadcast(encodeFrame(kindLocate, port, payload)); err != nil {
		return nil, err
	}

	timer := time.NewTimer(window)
	defer timer.Stop()
	var found []HereIs
	for {
		select {
		case h := <-ch:
			found = append(found, h)
			if max > 0 && len(found) >= max {
				return found, nil
			}
		case <-timer.C:
			return found, nil
		}
	}
}

// dispatch routes incoming frames to listeners and answers locates. It
// charges the per-packet receive CPU cost, which is part of what limits a
// single server's throughput in Fig. 8.
func (s *Stack) dispatch() {
	defer close(s.done)
	for {
		frame, ok := s.node.Recv()
		if !ok {
			s.Close()
			return
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return
		}
		kind, port, payload, err := decodeFrame(frame.Payload)
		if err != nil {
			continue // malformed frame: drop
		}
		s.node.CPU().Charge(s.Model().PacketCPU)
		switch kind {
		case kindData, kindMcast:
			s.mu.Lock()
			l := s.listeners[port]
			s.mu.Unlock()
			if l != nil {
				l.deliver(Msg{Src: frame.Src, Payload: payload})
			}
		case kindLocate:
			if len(payload) != 8 {
				continue
			}
			s.mu.Lock()
			l := s.listeners[port]
			s.mu.Unlock()
			if l != nil {
				// Echo the locate id back so the requester can correlate
				// the reply, and piggyback the listener's load hint plus
				// its flag byte (read-only responders announce themselves).
				reply := make([]byte, 10)
				copy(reply, payload)
				reply[8] = l.hintByte()
				reply[9] = l.flagByte()
				_ = s.node.Unicast(frame.Src, encodeFrame(kindHereIs, port, reply))
			}
		case kindHereIs:
			// id (8 bytes) plus an optional load-hint byte.
			if len(payload) < 8 {
				continue
			}
			id := binary.BigEndian.Uint64(payload[:8])
			var hint, flags byte
			if len(payload) >= 9 {
				hint = payload[8]
			}
			if len(payload) >= 10 {
				flags = payload[9]
			}
			s.mu.Lock()
			ch := s.locates[id]
			s.mu.Unlock()
			if ch != nil {
				select {
				case ch <- HereIs{Src: frame.Src, Hint: hint, ReadOnly: flags&hereIsReadOnly != 0}:
				default:
				}
			}
		}
	}
}

func encodeFrame(kind byte, port capability.Port, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	buf[0] = kind
	copy(buf[1:7], port[:])
	copy(buf[7:], payload)
	return buf
}

func decodeFrame(buf []byte) (kind byte, port capability.Port, payload []byte, err error) {
	if len(buf) < headerSize {
		return 0, capability.Port{}, nil, errors.New("flip: short frame")
	}
	kind = buf[0]
	copy(port[:], buf[1:7])
	return kind, port, buf[7:], nil
}
