package localdir

import (
	"context"
	"errors"
	"testing"

	"dirsvc/internal/bullet"
	"dirsvc/internal/capability"
	"dirsvc/internal/dirclient"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/flip"
	"dirsvc/internal/sim"
	"dirsvc/internal/vdisk"
)

// bgCtx is the unbounded context used where no deadline applies.
var bgCtx = context.Background()

type fixture struct {
	client *dirclient.Client
	disk   *vdisk.Disk
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	net := sim.NewNetwork(sim.FastModel(), 1)
	const service = "localdir-test"

	disk := vdisk.New(sim.FastModel(), 2048)
	bpart, err := vdisk.NewPartition(disk, 64, 2048-64)
	if err != nil {
		t.Fatal(err)
	}
	bstack := flip.NewStack(net.AddNode("bullet"))
	store, err := bullet.NewStore(dirsvc.BulletPort(service, 1), bpart)
	if err != nil {
		t.Fatal(err)
	}
	bsrv, err := bullet.NewServer(bstack, store, 2, dirsvc.BulletPort(service, 1))
	if err != nil {
		t.Fatal(err)
	}

	admin, err := vdisk.NewPartition(disk, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	dstack := flip.NewStack(net.AddNode("dir"))
	srv, err := NewServer(dstack, Config{Service: service, Admin: admin})
	if err != nil {
		t.Fatal(err)
	}

	cstack := flip.NewStack(net.AddNode("client"))
	client, err := dirclient.New(cstack, service)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		bsrv.Close()
		cstack.Close()
		dstack.Close()
		bstack.Close()
	})
	return &fixture{client: client, disk: disk}
}

func TestBasicOperations(t *testing.T) {
	f := newFixture(t)
	root, err := f.client.Root(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := f.client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.client.Append(bgCtx, root, "x", dir, nil); err != nil {
		t.Fatal(err)
	}
	got, err := f.client.Lookup(bgCtx, root, "x")
	if err != nil || got != dir {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if err := f.client.Delete(bgCtx, root, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.Lookup(bgCtx, root, "x"); !errors.Is(err, dirsvc.ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
}

// TestUpdateCostsOneDiskWrite pins the NFS-model cost: exactly one
// synchronous metadata write per update, none for reads.
func TestUpdateCostsOneDiskWrite(t *testing.T) {
	f := newFixture(t)
	root, _ := f.client.Root(bgCtx)
	dir, err := f.client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	before := f.disk.Stats()
	if err := f.client.Append(bgCtx, root, "one-write", dir, nil); err != nil {
		t.Fatal(err)
	}
	mid := f.disk.Stats()
	if got := mid.Writes - before.Writes; got != 1 {
		t.Fatalf("append cost %d disk writes, want 1 (the SunOS metadata write)", got)
	}
	if _, err := f.client.Lookup(bgCtx, root, "one-write"); err != nil {
		t.Fatal(err)
	}
	after := f.disk.Stats()
	if after.Reads != mid.Reads || after.Writes != mid.Writes {
		t.Fatal("lookup touched the disk; reads must come from the cache")
	}
}

func TestRightsStillEnforced(t *testing.T) {
	// No fault tolerance does not mean no protection: capabilities are
	// still checked.
	f := newFixture(t)
	root, _ := f.client.Root(bgCtx)
	dir, err := f.client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.client.Append(bgCtx, root, "p", dir, nil); err != nil {
		t.Fatal(err)
	}
	ro, err := capability.Restrict(dir, capability.RightRead)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.client.Append(bgCtx, ro, "q", dir, nil); !errors.Is(err, capability.ErrNoRights) {
		t.Fatalf("append via read-only cap: %v", err)
	}
}
