// Package localdir is the unreplicated comparator of the paper's
// evaluation: a single directory server with SunOS/NFS-like semantics —
// one synchronous metadata write per update, reads from the RAM cache,
// and no fault tolerance whatsoever ("NFS does not provide any fault
// tolerance or consistency", §4.1).
//
// Directory images live only in RAM; the single disk write per update
// models the local filesystem's synchronous directory-block update that
// dominated the paper's /usr/tmp measurements.
package localdir

import (
	"fmt"
	"sync"
	"time"

	"dirsvc/internal/bullet"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/flip"
	"dirsvc/internal/rpc"
	"dirsvc/internal/sim"
	"dirsvc/internal/vdisk"
)

// nfsExtraLookup models NFS's slightly slower lookup path (6 ms vs the
// directory service's 5 ms in Fig. 7).
const nfsExtraLookup = time.Millisecond

// Config describes the single server.
type Config struct {
	Service string
	Admin   vdisk.Storage
	Workers int
	// Shard and Shards place this server in a sharded deployment (see
	// dirsvc.ObjectTable.ConfigureShard). Zero values mean unsharded.
	Shard, Shards int
	// ActiveShards is the number of shards serving traffic at epoch zero;
	// the rest are reserve targets for online splits. Zero means all
	// Shards are active — the pre-elastic behavior.
	ActiveShards int
	// BaseService is the deployment-wide service name (decision queries
	// to sibling shards); empty means no cross-shard queries.
	BaseService string
	// TxAbortTimeout is the presumed-abort horizon for prepared
	// two-phase transactions (zero: a model-scaled default).
	TxAbortTimeout time.Duration
	// LeaseTTL bounds a watch/cache lease without renewal (zero: a
	// model-scaled default).
	LeaseTTL time.Duration
	// EventLogSize bounds the event log replayable to reconnecting
	// watchers (zero: dirsvc.DefaultEventLogSize).
	EventLogSize int
}

// Server is the unreplicated directory server.
type Server struct {
	cfg      Config
	stack    *flip.Stack
	model    *sim.LatencyModel
	applier  *dirsvc.Applier
	table    *dirsvc.ObjectTable
	rpcSrv   *rpc.Server
	notifier *dirsvc.Notifier

	mu  sync.Mutex
	seq uint64

	// lockWait bounds how long a read blocks on an object locked by a
	// prepared two-phase transaction; txTimeout is the presumed-abort
	// horizon, and txRPC carries decision queries to sibling shards.
	lockWait  time.Duration
	txTimeout time.Duration
	txRPC     *rpc.Client

	stop    chan struct{}
	wg      sync.WaitGroup
	stopRPC func()
}

// NewServer boots the server on stack.
func NewServer(stack *flip.Stack, cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	rc, err := rpc.NewClient(stack)
	if err != nil {
		return nil, err
	}
	table, err := dirsvc.OpenObjectTable(cfg.Admin)
	if err != nil {
		return nil, fmt.Errorf("localdir: %w", err)
	}
	base := cfg.ActiveShards
	if base <= 0 || base > cfg.Shards {
		base = cfg.Shards
	}
	table.ConfigureShard(cfg.Shard, base)
	// Mint/verify capabilities under the deployment-wide port so they
	// survive a live migration to a sibling shard (core does the same).
	capService := cfg.BaseService
	if capService == "" {
		capService = cfg.Service
	}
	s := &Server{
		cfg:     cfg,
		stack:   stack,
		model:   stack.Model(),
		table:   table,
		applier: dirsvc.NewApplier(dirsvc.ServicePort(capService), table, bullet.NewClient(rc, dirsvc.BulletPort(cfg.Service, 1))),
	}
	s.applier.SetLockWaitSlots(cfg.Workers - 1)
	s.applier.ConfigureTopology(cfg.Shard, base, cfg.Shards)
	s.lockWait = s.model.Timeout(5 * time.Second)
	if s.lockWait < 500*time.Millisecond {
		s.lockWait = 500 * time.Millisecond
	}
	s.txTimeout = cfg.TxAbortTimeout
	if s.txTimeout <= 0 {
		s.txTimeout = s.model.Timeout(30 * time.Second)
		if s.txTimeout < 3*time.Second {
			s.txTimeout = 3 * time.Second
		}
	}
	s.stop = make(chan struct{})
	if err := s.applier.FormatRoot(false /* metadata only */); err != nil {
		return nil, err
	}
	if err := table.FlushBlocks([]uint32{dirsvc.RootObject}); err != nil {
		return nil, err
	}
	s.seq = table.MaxSeq()

	// Adopt a persisted topology (admin block 0, written only on topology
	// changes): a split at a source shard touches no object-table entry,
	// so the epoch would otherwise reset to zero on restart.
	if cb, err := dirsvc.ReadCommitBlock(cfg.Admin, 0); err == nil {
		if cb.Topo != nil {
			s.applier.RestoreTopology(cb.Topo)
		}
		if cb.Seq > s.seq {
			s.seq = cb.Seq
		}
	}

	// The unreplicated server never recovers, so its event log keeps one
	// identity for the server's whole life, floored at the boot cursor.
	leaseTTL := cfg.LeaseTTL
	if leaseTTL <= 0 {
		leaseTTL = s.model.Timeout(60 * time.Second)
		if leaseTTL < 2*time.Second {
			leaseTTL = 2 * time.Second
		}
	}
	s.notifier = dirsvc.NewNotifier(cfg.EventLogSize, s.seq, leaseTTL)
	s.applier.AttachEvents(s.notifier)

	srv, err := rpc.NewServer(stack, dirsvc.ServicePort(cfg.Service))
	if err != nil {
		return nil, err
	}
	s.rpcSrv = srv
	s.stopRPC = srv.ServeFunc(cfg.Workers, s.handle)
	txRPC, err := rpc.NewClient(stack)
	if err != nil {
		s.rpcSrv.Close()
		s.stopRPC()
		return nil, err
	}
	s.txRPC = txRPC
	s.wg.Add(1)
	go s.txResolveLoop()
	return s, nil
}

// txResolveLoop resolves prepared transactions orphaned by a dead
// coordinator (see dirsvc.ResolveOrphanTxs): presumed abort when this
// shard is the transaction's resolver, a decision query to the
// resolver shard otherwise.
func (s *Server) txResolveLoop() {
	defer s.wg.Done()
	tick := s.txTimeout / 4
	if tick < 25*time.Millisecond {
		tick = 25 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	strikes := make(map[dirsvc.TxID]int)
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		dirsvc.ResolveOrphanTxs(s.applier, s.cfg.Shard, s.cfg.Shards, s.txTimeout, strikes,
			func(id dirsvc.TxID, commit bool) {
				req := &dirsvc.Request{
					Op:   dirsvc.OpDecide,
					Blob: dirsvc.EncodeDecide(&dirsvc.Decide{ID: id, Commit: commit}),
				}
				_ = s.update(req)
			},
			func(resolver int, id dirsvc.TxID) dirsvc.TxState {
				return dirsvc.QueryTxState(s.txRPC, s.cfg.BaseService, s.cfg.Shards, resolver, id)
			})
	}
}

// Close stops the server.
func (s *Server) Close() {
	close(s.stop)
	s.applier.AttachEvents(nil)
	s.notifier.Close()
	s.rpcSrv.Close()
	s.stopRPC()
	if s.txRPC != nil {
		s.txRPC.Close()
	}
	s.wg.Wait()
}

func (s *Server) handle(req *rpc.Request) []byte {
	dreq, err := dirsvc.DecodeRequest(req.Payload)
	if err != nil {
		return (&dirsvc.Reply{Status: dirsvc.StatusBadRequest}).Encode()
	}
	switch dreq.Op {
	case dirsvc.OpWatch:
		addr := req.PushAddr()
		push := func(payload []byte) error { return s.rpcSrv.Push(addr, payload) }
		batch := s.notifier.Subscribe(addr.Tx, dreq.Seq, dreq.MinSeq, push)
		return (&dirsvc.Reply{Status: dirsvc.StatusOK, Blob: dirsvc.EncodeEventBatch(batch)}).Encode()
	case dirsvc.OpLeaseRenew:
		batch, ok := s.notifier.Renew(dreq.Seq, dreq.MinSeq)
		if !ok {
			return (&dirsvc.Reply{Status: dirsvc.StatusNotFound}).Encode()
		}
		return (&dirsvc.Reply{Status: dirsvc.StatusOK, Blob: dirsvc.EncodeEventBatch(batch)}).Encode()
	}
	if !dreq.Op.IsUpdate() {
		// Request.MinSeq needs no wait here: with a single server, every
		// floor a client session carries came from this server's own
		// replies, so s.seq is always at or past it. Readers of an object
		// locked by a prepared two-phase transaction still wait for the
		// decision (bounded; a refused client retries).
		if obj := dreq.Dir.Object; obj != 0 && !s.applier.WaitUnlocked(obj, s.lockWait) {
			return (&dirsvc.Reply{Status: dirsvc.StatusConflict}).Encode()
		}
		// Objects homed elsewhere bounce with the owner's address; the
		// migration copy read (OpMigRead) must still see the source copy.
		if obj := dreq.Dir.Object; obj != 0 && dreq.Op != dirsvc.OpMigRead {
			if owner, fwd := s.applier.RouteForward(obj); fwd {
				topo, _ := s.applier.Topology()
				return (&dirsvc.Reply{Status: dirsvc.StatusNotMine, Blob: dirsvc.EncodeNotMine(topo.Epoch, owner)}).Encode()
			}
		}
		s.mu.Lock()
		svcSeq := s.seq
		s.mu.Unlock()
		s.stack.Node().CPU().Charge(s.model.LookupCPU + nfsExtraLookup)
		reply := s.applier.Read(dreq)
		reply.Seq = svcSeq
		return reply.Encode()
	}
	s.stack.Node().CPU().Charge(s.model.UpdateCPU)
	// Updates aimed at objects locked by a prepared two-phase transaction
	// queue for the decision instead of bouncing with a conflict; the
	// decide itself has no wait targets and runs unimpeded.
	if err := s.applier.AwaitLockFree(dirsvc.LockWaitTargets(dreq, s.cfg.Shard), s.lockWait); err != nil {
		return dirsvc.ErrorReply(err).Encode()
	}
	if obj := dreq.Dir.Object; obj != 0 {
		if owner, fwd := s.applier.RouteForward(obj); fwd {
			topo, _ := s.applier.Topology()
			return (&dirsvc.Reply{Status: dirsvc.StatusNotMine, Blob: dirsvc.EncodeNotMine(topo.Epoch, owner)}).Encode()
		}
	}
	return s.update(dreq).Encode()
}

// update applies the operation with exactly one synchronous disk write —
// the metadata block — like a local Unix filesystem updating a directory
// block. The directory contents stay in RAM (the OS buffer cache).
func (s *Server) update(req *dirsvc.Request) *dirsvc.Reply {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case req.Op == dirsvc.OpCreateDir && len(req.CheckSeed) == 0:
		seed := make([]byte, 8)
		for i := range seed {
			seed[i] = byte(s.seq >> (8 * i))
		}
		req.CheckSeed = append(seed, byte(len(seed)))
	case req.Op == dirsvc.OpBatch:
		steps, derr := dirsvc.DecodeBatchSteps(req.Blob)
		if derr != nil {
			return dirsvc.ErrorReply(derr)
		}
		if dirsvc.EnsureBatchSeeds(steps, func(i int) []byte {
			return fmt.Appendf(nil, "local:%d:%d", s.seq, i)
		}) {
			req.Blob = dirsvc.EncodeBatchSteps(steps)
		}
	case req.Op == dirsvc.OpPrepare:
		if derr := dirsvc.EnsurePrepareSeeds(req, func(i int) []byte {
			return fmt.Appendf(nil, "local:%d:%d:%d", s.seq, time.Now().UnixNano(), i)
		}); derr != nil {
			return dirsvc.ErrorReply(derr)
		}
	}
	seq := s.seq + 1
	res, err := s.applier.ApplyUpdate(req, seq, false /* RAM apply */)
	if err != nil {
		return dirsvc.ErrorReply(err)
	}
	s.seq = seq
	if res.AdvanceSeq > s.seq {
		// A shard restore installed a snapshot whose counters run past
		// ours; jump so freshly stamped sequence numbers stay monotonic.
		s.seq = res.AdvanceSeq
	}
	// The one synchronous write: the directory's metadata block.
	if err := s.table.FlushBlocks(res.DirtyObjects); err != nil {
		return &dirsvc.Reply{Status: dirsvc.StatusError}
	}
	if res.TopoChanged {
		if topo, ok := s.applier.Topology(); ok {
			t := topo
			_ = (&dirsvc.CommitBlock{Seq: s.seq, Topo: &t}).Write(s.cfg.Admin)
		}
	}
	return res.Reply
}
