// Package localdir is the unreplicated comparator of the paper's
// evaluation: a single directory server with SunOS/NFS-like semantics —
// one synchronous metadata write per update, reads from the RAM cache,
// and no fault tolerance whatsoever ("NFS does not provide any fault
// tolerance or consistency", §4.1).
//
// Directory images live only in RAM; the single disk write per update
// models the local filesystem's synchronous directory-block update that
// dominated the paper's /usr/tmp measurements.
package localdir

import (
	"fmt"
	"sync"
	"time"

	"dirsvc/internal/bullet"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/flip"
	"dirsvc/internal/rpc"
	"dirsvc/internal/sim"
	"dirsvc/internal/vdisk"
)

// nfsExtraLookup models NFS's slightly slower lookup path (6 ms vs the
// directory service's 5 ms in Fig. 7).
const nfsExtraLookup = time.Millisecond

// Config describes the single server.
type Config struct {
	Service string
	Admin   vdisk.Storage
	Workers int
	// Shard and Shards place this server in a sharded deployment (see
	// dirsvc.ObjectTable.ConfigureShard). Zero values mean unsharded.
	Shard, Shards int
}

// Server is the unreplicated directory server.
type Server struct {
	cfg     Config
	stack   *flip.Stack
	model   *sim.LatencyModel
	applier *dirsvc.Applier
	table   *dirsvc.ObjectTable
	rpcSrv  *rpc.Server

	mu  sync.Mutex
	seq uint64

	stopRPC func()
}

// NewServer boots the server on stack.
func NewServer(stack *flip.Stack, cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	rc, err := rpc.NewClient(stack)
	if err != nil {
		return nil, err
	}
	table, err := dirsvc.OpenObjectTable(cfg.Admin)
	if err != nil {
		return nil, fmt.Errorf("localdir: %w", err)
	}
	table.ConfigureShard(cfg.Shard, cfg.Shards)
	s := &Server{
		cfg:     cfg,
		stack:   stack,
		model:   stack.Model(),
		table:   table,
		applier: dirsvc.NewApplier(dirsvc.ServicePort(cfg.Service), table, bullet.NewClient(rc, dirsvc.BulletPort(cfg.Service, 1))),
	}
	if err := s.applier.FormatRoot(false /* metadata only */); err != nil {
		return nil, err
	}
	if err := table.FlushBlocks([]uint32{dirsvc.RootObject}); err != nil {
		return nil, err
	}
	s.seq = table.MaxSeq()

	srv, err := rpc.NewServer(stack, dirsvc.ServicePort(cfg.Service))
	if err != nil {
		return nil, err
	}
	s.rpcSrv = srv
	s.stopRPC = srv.ServeFunc(cfg.Workers, s.handle)
	return s, nil
}

// Close stops the server.
func (s *Server) Close() {
	s.rpcSrv.Close()
	s.stopRPC()
}

func (s *Server) handle(req *rpc.Request) []byte {
	dreq, err := dirsvc.DecodeRequest(req.Payload)
	if err != nil {
		return (&dirsvc.Reply{Status: dirsvc.StatusBadRequest}).Encode()
	}
	if !dreq.Op.IsUpdate() {
		// Request.MinSeq needs no wait here: with a single server, every
		// floor a client session carries came from this server's own
		// replies, so s.seq is always at or past it.
		s.mu.Lock()
		svcSeq := s.seq
		s.mu.Unlock()
		s.stack.Node().CPU().Charge(s.model.LookupCPU + nfsExtraLookup)
		reply := s.applier.Read(dreq)
		reply.Seq = svcSeq
		return reply.Encode()
	}
	s.stack.Node().CPU().Charge(s.model.UpdateCPU)
	return s.update(dreq).Encode()
}

// update applies the operation with exactly one synchronous disk write —
// the metadata block — like a local Unix filesystem updating a directory
// block. The directory contents stay in RAM (the OS buffer cache).
func (s *Server) update(req *dirsvc.Request) *dirsvc.Reply {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case req.Op == dirsvc.OpCreateDir && len(req.CheckSeed) == 0:
		seed := make([]byte, 8)
		for i := range seed {
			seed[i] = byte(s.seq >> (8 * i))
		}
		req.CheckSeed = append(seed, byte(len(seed)))
	case req.Op == dirsvc.OpBatch:
		steps, derr := dirsvc.DecodeBatchSteps(req.Blob)
		if derr != nil {
			return dirsvc.ErrorReply(derr)
		}
		if dirsvc.EnsureBatchSeeds(steps, func(i int) []byte {
			return fmt.Appendf(nil, "local:%d:%d", s.seq, i)
		}) {
			req.Blob = dirsvc.EncodeBatchSteps(steps)
		}
	}
	seq := s.seq + 1
	res, err := s.applier.ApplyUpdate(req, seq, false /* RAM apply */)
	if err != nil {
		return dirsvc.ErrorReply(err)
	}
	s.seq = seq
	// The one synchronous write: the directory's metadata block.
	if err := s.table.FlushBlocks(res.DirtyObjects); err != nil {
		return &dirsvc.Reply{Status: dirsvc.StatusError}
	}
	return res.Reply
}
