// Package lastfail implements Skeen's algorithm for determining the set
// of processes that failed last [Skeen, ACM TOCS 3(1), 1985], as used by
// the recovery protocol of the group directory service (paper §3.2).
//
// Each server keeps a mourned set: the servers it saw crash before it
// crashed itself (derived from its on-disk configuration vector). During
// recovery the servers exchange mourned sets; each server unions what it
// receives into its own set and tracks which servers it exchanged with
// (the new group). The algorithm terminates when every server outside the
// union of mourned sets is part of the new group: that remainder — the
// "last set" — is exactly the set of servers that may have performed the
// latest update. Recovery may only proceed once the last set is a subset
// of the new group (paper §3.2, condition 2).
package lastfail

import "sort"

// Set is a set of server ids.
type Set map[int]bool

// NewSet builds a set from ids.
func NewSet(ids ...int) Set {
	s := make(Set, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Clone returns a copy of s.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for id := range s {
		out[id] = true
	}
	return out
}

// Union adds all members of other to s.
func (s Set) Union(other Set) {
	for id, in := range other {
		if in {
			s[id] = true
		}
	}
}

// Contains reports whether id is in s.
func (s Set) Contains(id int) bool { return s[id] }

// SubsetOf reports whether every member of s is in other.
func (s Set) SubsetOf(other Set) bool {
	for id, in := range s {
		if in && !other[id] {
			return false
		}
	}
	return true
}

// Sorted returns the members in ascending order.
func (s Set) Sorted() []int {
	out := make([]int, 0, len(s))
	for id, in := range s {
		if in {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// MournedFromConfig derives a server's mourned set from its configuration
// vector: every server whose bit is down was seen to crash before this
// server last wrote its commit block (paper Fig. 4).
func MournedFromConfig(all []int, up Set) Set {
	mourned := make(Set, len(all))
	for _, id := range all {
		if !up[id] {
			mourned[id] = true
		}
	}
	return mourned
}

// State is one recovering server's view of the algorithm.
type State struct {
	all      []int
	me       int
	mourned  Set
	newGroup Set
}

// NewState starts the algorithm at server me. all lists every server of
// the service; mourned is me's initial mourned set (from its config
// vector). The new group initially contains only me, as in Fig. 6.
func NewState(all []int, me int, mourned Set) *State {
	return &State{
		all:      append([]int(nil), all...),
		me:       me,
		mourned:  mourned.Clone(),
		newGroup: NewSet(me),
	}
}

// Exchange records a successful mourned-set exchange with server id: the
// server joins the new group and its mourned set is unioned into ours.
func (s *State) Exchange(id int, theirMourned Set) {
	s.newGroup[id] = true
	s.mourned.Union(theirMourned)
}

// Mourned returns the current (unioned) mourned set.
func (s *State) Mourned() Set { return s.mourned.Clone() }

// NewGroup returns the servers exchanged with so far (including me).
func (s *State) NewGroup() Set { return s.newGroup.Clone() }

// LastSet returns all servers minus the mourned set: the servers that
// possibly performed the latest update.
func (s *State) LastSet() Set {
	last := make(Set)
	for _, id := range s.all {
		if !s.mourned[id] {
			last[id] = true
		}
	}
	return last
}

// CanRecover reports whether the last set is covered by the new group —
// the paper's condition 2. (Condition 1, majority, is checked by the
// caller against the service size.)
func (s *State) CanRecover() bool {
	return s.LastSet().SubsetOf(s.newGroup)
}

// CanRecoverWithImprovement applies the §3.2 refinement on top of
// CanRecover: a pair of servers may also recover when the member that
// never failed holds a sequence number at least as high as every other
// exchanged server's, because then it is certain the stayed-up server did
// not miss an update made by a currently unavailable server after it
// formed a smaller group. seqnos maps exchanged servers (and me) to their
// recovery sequence numbers; stayedUp identifies the server that did not
// fail, or -1 if none.
func (s *State) CanRecoverWithImprovement(seqnos map[int]uint64, stayedUp int) bool {
	if s.CanRecover() {
		return true
	}
	if stayedUp < 0 || !s.newGroup[stayedUp] {
		return false
	}
	stayedSeq, ok := seqnos[stayedUp]
	if !ok {
		return false
	}
	for id, seq := range seqnos {
		if s.newGroup[id] && seq > stayedSeq {
			return false
		}
	}
	return true
}
