package lastfail

import (
	"testing"
	"testing/quick"
)

var all = []int{1, 2, 3}

// The paper's first scenario (§3.2): servers 1,2,3 up; 3 crashes; 1 and 2
// rebuild (config vectors 110); then 1 and 2 crash. Server 1 comes back
// alone: it cannot recover. When 3 comes back too, {1,3} still cannot
// recover, because 2 may have performed the latest update.
func TestPaperScenario13CannotRecover(t *testing.T) {
	m1 := MournedFromConfig(all, NewSet(1, 2)) // vector 110 → mourns {3}
	s := NewState(all, 1, m1)
	if s.CanRecover() {
		t.Fatal("server 1 alone must not recover")
	}
	m3 := MournedFromConfig(all, NewSet(1, 2, 3)) // vector 111 → mourns {}
	s.Exchange(3, m3)
	// last = all − {3} = {1,2}; new group = {1,3}: 2 missing.
	if s.CanRecover() {
		t.Fatal("{1,3} must not recover: 2 may hold the latest update")
	}
	if got := s.LastSet().Sorted(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("last set = %v, want [1 2]", got)
	}
}

// The paper's second scenario: 1 and 2 both come back with vectors 110.
// Together they mourn only {3}, the last set {1,2} is covered, so they
// recover without 3.
func TestPaperScenario12Recovers(t *testing.T) {
	m1 := MournedFromConfig(all, NewSet(1, 2))
	s := NewState(all, 1, m1)
	m2 := MournedFromConfig(all, NewSet(1, 2))
	s.Exchange(2, m2)
	if !s.CanRecover() {
		t.Fatal("{1,2} with vectors 110 must recover")
	}
}

// All three exchange: always recoverable.
func TestFullGroupRecovers(t *testing.T) {
	s := NewState(all, 1, MournedFromConfig(all, NewSet(1, 2, 3)))
	s.Exchange(2, MournedFromConfig(all, NewSet(1, 2)))
	s.Exchange(3, MournedFromConfig(all, NewSet(1, 2, 3)))
	if !s.CanRecover() {
		t.Fatal("full group must recover")
	}
}

// The §3.2 improvement: 1,2,3 up; 3 crashes; {1,2} rebuild; 2 crashes;
// 1 stays alive (never failed) and 3 restarts. Plain Skeen refuses, but
// since 1 never failed and has the highest seqno, {1,3} may recover.
func TestImprovementStayedUpServer(t *testing.T) {
	m1 := MournedFromConfig(all, NewSet(1, 2)) // 1 mourns {3}
	s := NewState(all, 1, m1)
	s.Exchange(3, MournedFromConfig(all, NewSet(1, 2, 3)))
	if s.CanRecover() {
		t.Fatal("plain Skeen must refuse {1,3}")
	}
	seqnos := map[int]uint64{1: 42, 3: 17}
	if !s.CanRecoverWithImprovement(seqnos, 1) {
		t.Fatal("improvement must allow {1,3} when 1 stayed up with the higher seqno")
	}
	// If the restarted server somehow has a higher seqno, refuse: the
	// stayed-up server missed updates.
	seqnos = map[int]uint64{1: 42, 3: 50}
	if s.CanRecoverWithImprovement(seqnos, 1) {
		t.Fatal("improvement must refuse when the stayed-up server is behind")
	}
	// No stayed-up server: refuse.
	if s.CanRecoverWithImprovement(map[int]uint64{1: 42, 3: 17}, -1) {
		t.Fatal("improvement without a stayed-up server must refuse")
	}
}

func TestImprovementRequiresStayedUpInGroup(t *testing.T) {
	s := NewState(all, 1, MournedFromConfig(all, NewSet(1, 2)))
	// Claiming server 2 stayed up while it never exchanged must refuse.
	if s.CanRecoverWithImprovement(map[int]uint64{1: 10}, 2) {
		t.Fatal("stayed-up server outside the new group must refuse")
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet(1, 3)
	if !s.Contains(1) || s.Contains(2) {
		t.Fatal("Contains wrong")
	}
	c := s.Clone()
	c.Union(NewSet(2))
	if s.Contains(2) {
		t.Fatal("Clone aliases original")
	}
	if !NewSet(1).SubsetOf(s) || NewSet(1, 2).SubsetOf(s) {
		t.Fatal("SubsetOf wrong")
	}
	if got := c.Sorted(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Sorted = %v", got)
	}
}

// Property: exchanging with every live server makes the last set a subset
// of the new group whenever the mourned sets jointly cover the dead.
func TestQuickCoverage(t *testing.T) {
	f := func(deadMask uint8) bool {
		var dead []int
		up := NewSet()
		for _, id := range all {
			if deadMask&(1<<uint(id)) != 0 {
				dead = append(dead, id)
			} else {
				up[id] = true
			}
		}
		if len(dead) == len(all) {
			return true // nobody to run the algorithm
		}
		// Every live server mourns exactly the dead.
		var s *State
		for _, id := range all {
			if up[id] {
				if s == nil {
					s = NewState(all, id, MournedFromConfig(all, up))
				} else {
					s.Exchange(id, MournedFromConfig(all, up))
				}
			}
		}
		return s.CanRecover()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: recovery is monotone — exchanging with more servers never
// turns a recoverable state unrecoverable.
func TestQuickMonotone(t *testing.T) {
	f := func(m2dead, m3dead bool) bool {
		s := NewState(all, 1, NewSet())
		ok0 := s.CanRecover()
		mourned2 := NewSet()
		if m2dead {
			mourned2[3] = true
		}
		s.Exchange(2, mourned2)
		// Exchanging can only shrink the uncovered remainder...
		// unless the new mourned set names a server we had counted on.
		// What must hold: after exchanging with everyone alive, state is
		// at least as recoverable as before when mourned sets are empty.
		if !m2dead && !m3dead && ok0 && !s.CanRecover() {
			return false
		}
		mourned3 := NewSet()
		if m3dead {
			mourned3[2] = true
		}
		s.Exchange(3, mourned3)
		// With all three in the new group, recovery always possible.
		return s.CanRecover()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
