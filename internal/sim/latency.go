// Package sim provides the simulated hardware substrate for the directory
// service reproduction: a shared-medium Ethernet with hardware multicast,
// per-node CPUs, fail-stop crashes and clean network partitions.
//
// The paper ran on Sun3/60-class machines connected by a 10 Mbit/s Ethernet
// with Wren IV SCSI disks. The simulator charges calibrated latencies for
// every frame transmission, packet handling, and (in internal/vdisk) disk
// operation, so that measured times are directly comparable to the paper's
// tables. All latency charging goes through a LatencyModel, whose Scale
// field lets tests run with zero latency and benchmarks run at full paper
// scale.
package sim

import "time"

// LatencyModel holds the calibrated costs of the simulated hardware. See
// DESIGN.md §3 for the derivation of the default values from the paper's
// own measurements.
type LatencyModel struct {
	// WireDelay is the propagation plus controller delay per frame.
	WireDelay time.Duration
	// ByteTime is the transmission time per byte (10 Mbit/s Ethernet).
	ByteTime time.Duration
	// PacketCPU is the per-packet protocol-processing cost on each host
	// (a Sun3/60-class machine), charged on both send and receive.
	PacketCPU time.Duration
	// DiskOp is a random-access block write or uncached read: seek +
	// rotational latency + transfer on a Wren IV SCSI disk.
	DiskOp time.Duration
	// DiskSeqOp is a short-seek write to a fixed staging location, used
	// for the RPC service's intentions block.
	DiskSeqOp time.Duration
	// DiskBlockXfer is the media transfer time per additional 512-byte
	// block in a multi-block run (≈1.5 MB/s sustained on a Wren IV).
	DiskBlockXfer time.Duration
	// NVRAMWrite is the cost of persisting a record to battery-backed RAM.
	NVRAMWrite time.Duration
	// LookupCPU is the server-side processing cost of a read operation
	// (paper §4.2: "roughly equal to 3 msec").
	LookupCPU time.Duration
	// UpdateCPU is the server-side processing cost of a write operation
	// beyond messaging and stable storage (back-computed from the paper's
	// 13.5 ms/op group+NVRAM figure).
	UpdateCPU time.Duration

	// Scale multiplies every charged latency. 1.0 reproduces paper-scale
	// timings; 0 disables sleeping entirely (used by unit tests).
	Scale float64
}

// PaperModel returns the latency model calibrated to the paper's hardware
// (Sun3/60, 10 Mbit/s Ethernet, Wren IV SCSI disks). See DESIGN.md §3.
func PaperModel() *LatencyModel {
	return &LatencyModel{
		WireDelay:     10 * time.Microsecond,
		ByteTime:      800 * time.Nanosecond,
		PacketCPU:     250 * time.Microsecond,
		DiskOp:        40 * time.Millisecond,
		DiskSeqOp:     8 * time.Millisecond,
		DiskBlockXfer: 350 * time.Microsecond,
		NVRAMWrite:    50 * time.Microsecond,
		LookupCPU:     3 * time.Millisecond,
		UpdateCPU:     6 * time.Millisecond,
		Scale:         1.0,
	}
}

// ScaledPaperModel returns the paper model with all latencies scaled by s.
// Integration tests use small scales to exercise real timing interleavings
// quickly; measured durations divide out the scale.
func ScaledPaperModel(s float64) *LatencyModel {
	m := PaperModel()
	m.Scale = s
	return m
}

// FastModel returns a model with all latencies zero. Protocol logic is
// unchanged; only time disappears. Unit and integration tests use this.
func FastModel() *LatencyModel {
	return &LatencyModel{Scale: 0}
}

// Sleep blocks for d scaled by the model's Scale factor. A nil model or a
// zero scale never sleeps.
func (m *LatencyModel) Sleep(d time.Duration) {
	if m == nil || m.Scale == 0 || d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) * m.Scale))
}

// Timeout scales a protocol timeout. Unlike Sleep costs, timeouts never
// collapse to zero: protocols still need a small real wait to let
// asynchronous deliveries settle when running with a zero-scale model.
func (m *LatencyModel) Timeout(d time.Duration) time.Duration {
	const floor = 2 * time.Millisecond
	if m == nil || m.Scale == 0 {
		return floor
	}
	scaled := time.Duration(float64(d) * m.Scale)
	if scaled < floor {
		return floor
	}
	return scaled
}

// TxTime returns the time to put a frame of size bytes on the wire.
func (m *LatencyModel) TxTime(size int) time.Duration {
	if m == nil {
		return 0
	}
	return m.WireDelay + time.Duration(size)*m.ByteTime
}
