package sim

import (
	"sync"
	"testing"
	"time"
)

func newTestNet(t *testing.T) *Network {
	t.Helper()
	return NewNetwork(FastModel(), 1)
}

func recvOrFail(t *testing.T, nd *Node) Frame {
	t.Helper()
	type result struct {
		f  Frame
		ok bool
	}
	ch := make(chan result, 1)
	go func() {
		f, ok := nd.Recv()
		ch <- result{f, ok}
	}()
	select {
	case r := <-ch:
		if !r.ok {
			t.Fatalf("%v: Recv returned not-ok", nd)
		}
		return r.f
	case <-time.After(5 * time.Second):
		t.Fatalf("%v: Recv timed out", nd)
		return Frame{}
	}
}

func TestUnicastDelivery(t *testing.T) {
	net := newTestNet(t)
	a := net.AddNode("a")
	b := net.AddNode("b")

	if err := a.Unicast(b.ID(), []byte("hello")); err != nil {
		t.Fatalf("Unicast: %v", err)
	}
	f := recvOrFail(t, b)
	if f.Src != a.ID() || string(f.Payload) != "hello" || f.Broadcast {
		t.Fatalf("got frame %+v", f)
	}
}

func TestPerSenderFIFO(t *testing.T) {
	net := newTestNet(t)
	a := net.AddNode("a")
	b := net.AddNode("b")

	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Unicast(b.ID(), []byte{byte(i)}); err != nil {
			t.Fatalf("Unicast %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		f := recvOrFail(t, b)
		if f.Payload[0] != byte(i) {
			t.Fatalf("frame %d out of order: got %d", i, f.Payload[0])
		}
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	net := newTestNet(t)
	a := net.AddNode("a")
	b := net.AddNode("b")
	c := net.AddNode("c")

	before := net.Stats().FramesSent
	if err := a.Broadcast([]byte("all")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	for _, nd := range []*Node{b, c} {
		f := recvOrFail(t, nd)
		if !f.Broadcast || string(f.Payload) != "all" {
			t.Fatalf("%v: got frame %+v", nd, f)
		}
	}
	// Ethernet multicast: one transmission regardless of receiver count.
	if got := net.Stats().FramesSent - before; got != 1 {
		t.Fatalf("broadcast consumed %d frames on the wire, want 1", got)
	}
	// Sender must not hear its own broadcast.
	a.inbox.mu.Lock()
	pending := len(a.inbox.queue)
	a.inbox.mu.Unlock()
	if pending != 0 {
		t.Fatalf("sender received its own broadcast (%d queued)", pending)
	}
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	net := newTestNet(t)
	a := net.AddNode("a")
	b := net.AddNode("b")

	net.Partition([]NodeID{a.ID()}, []NodeID{b.ID()})
	if err := a.Unicast(b.ID(), []byte("x")); err != nil {
		t.Fatalf("Unicast: %v", err)
	}
	// Give the transmit loop time to drop the frame.
	waitFor(t, func() bool { return net.Stats().FramesDropped >= 1 })

	net.Heal()
	if err := a.Unicast(b.ID(), []byte("y")); err != nil {
		t.Fatalf("Unicast after heal: %v", err)
	}
	f := recvOrFail(t, b)
	if string(f.Payload) != "y" {
		t.Fatalf("after heal got %q, want y", f.Payload)
	}
}

func TestCrashDropsTrafficAndUnblocksRecv(t *testing.T) {
	net := newTestNet(t)
	a := net.AddNode("a")
	b := net.AddNode("b")

	done := make(chan bool, 1)
	go func() {
		_, ok := b.Recv()
		done <- ok
	}()
	b.Crash()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv on crashed node returned ok")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on crash")
	}

	if err := b.Unicast(a.ID(), []byte("x")); err != ErrCrashed {
		t.Fatalf("send from crashed node: err = %v, want ErrCrashed", err)
	}
	droppedBefore := net.Stats().FramesDropped
	if err := a.Unicast(b.ID(), []byte("x")); err != nil {
		t.Fatalf("send to crashed node should not error at sender: %v", err)
	}
	// Wait until the in-flight frame is dropped before restarting, so the
	// restarted node observes an empty wire.
	waitFor(t, func() bool { return net.Stats().FramesDropped > droppedBefore })

	b.Restart()
	if err := a.Unicast(b.ID(), []byte("again")); err != nil {
		t.Fatalf("Unicast after restart: %v", err)
	}
	f := recvOrFail(t, b)
	if string(f.Payload) != "again" {
		t.Fatalf("after restart got %q", f.Payload)
	}
}

func TestDropFilterForcesLoss(t *testing.T) {
	net := newTestNet(t)
	a := net.AddNode("a")
	b := net.AddNode("b")

	dropped := 0
	var mu sync.Mutex
	net.SetDropFilter(func(src, dst NodeID, payload []byte) bool {
		mu.Lock()
		defer mu.Unlock()
		if dropped == 0 {
			dropped++
			return true
		}
		return false
	})

	if err := a.Unicast(b.ID(), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := a.Unicast(b.ID(), []byte("2")); err != nil {
		t.Fatal(err)
	}
	f := recvOrFail(t, b)
	if string(f.Payload) != "2" {
		t.Fatalf("got %q, want the second frame only", f.Payload)
	}
}

func TestStatsCountBytes(t *testing.T) {
	net := newTestNet(t)
	a := net.AddNode("a")
	b := net.AddNode("b")
	payload := make([]byte, 100)
	if err := a.Unicast(b.ID(), payload); err != nil {
		t.Fatal(err)
	}
	recvOrFail(t, b)
	s := net.Stats()
	if s.BytesSent != 100 || s.FramesSent != 1 || s.FramesDelivered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLatencyModelSleepScales(t *testing.T) {
	m := ScaledPaperModel(0.001)
	start := time.Now()
	m.Sleep(100 * time.Millisecond) // scaled to 100µs
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("scaled sleep took %v, want ~100µs", elapsed)
	}
	FastModel().Sleep(time.Hour) // must return immediately
}

func TestTxTime(t *testing.T) {
	m := PaperModel()
	small := m.TxTime(64)
	large := m.TxTime(1024)
	if large <= small {
		t.Fatalf("TxTime not monotone: %v vs %v", small, large)
	}
	// 1024 bytes at 10 Mbit/s ≈ 0.82 ms + wire delay.
	if large < 800*time.Microsecond || large > 900*time.Microsecond {
		t.Fatalf("TxTime(1024) = %v, want ≈ 830µs", large)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
