package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// NodeID identifies a host on the simulated Ethernet.
type NodeID int

// Frame is one Ethernet frame as seen by a receiver.
type Frame struct {
	Src       NodeID
	Broadcast bool // true for multicast/broadcast frames
	Payload   []byte
}

// Stats counts network activity since the network was created.
type Stats struct {
	FramesSent      uint64 // frames put on the wire (a broadcast counts once)
	FramesDelivered uint64
	BytesSent       uint64
	FramesDropped   uint64 // lost to injected loss, partitions, or crashed nodes
}

const maxInboxDepth = 8192

var (
	// ErrCrashed is returned by send operations on a crashed node.
	ErrCrashed = errors.New("sim: node is crashed")
)

// Network is a shared-medium Ethernet segment. Frames are delivered in
// per-sender FIFO order (one NIC transmits serially), with true hardware
// multicast: a broadcast frame costs one transmission regardless of the
// number of receivers, exactly the property Amoeba's SendToGroup exploits.
type Network struct {
	model *LatencyModel

	mu        sync.Mutex
	nodes     []*Node
	partition map[NodeID]int // partition group per node; absent = group 0
	dropRate  float64
	dropFn    func(src, dst NodeID, payload []byte) bool
	rng       *rand.Rand

	stats struct {
		framesSent      atomic.Uint64
		framesDelivered atomic.Uint64
		bytesSent       atomic.Uint64
		framesDropped   atomic.Uint64
	}
}

// NewNetwork creates an empty network segment using the given latency
// model. The seed drives loss injection only; protocol behavior is
// otherwise deterministic per goroutine schedule.
func NewNetwork(model *LatencyModel, seed int64) *Network {
	if model == nil {
		model = FastModel()
	}
	return &Network{
		model:     model,
		partition: make(map[NodeID]int),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Model returns the latency model shared by all nodes on the network.
func (n *Network) Model() *LatencyModel { return n.model }

// AddNode attaches a new host to the segment and returns it.
func (n *Network) AddNode(name string) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	node := &Node{
		id:   NodeID(len(n.nodes)),
		name: name,
		net:  n,
	}
	node.cpu.model = n.model
	node.inbox.cond = sync.NewCond(&node.inbox.mu)
	node.out = make(chan outFrame, maxInboxDepth)
	node.outDone = make(chan struct{})
	go node.transmitLoop()
	n.nodes = append(n.nodes, node)
	return node
}

// Node returns the node with the given id, or nil.
func (n *Network) Node(id NodeID) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if int(id) < 0 || int(id) >= len(n.nodes) {
		return nil
	}
	return n.nodes[id]
}

// Nodes returns all nodes in id order.
func (n *Network) Nodes() []*Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Node, len(n.nodes))
	copy(out, n.nodes)
	return out
}

// Partition splits the network into the given groups. Nodes in different
// groups cannot exchange frames; nodes not mentioned fall into an implicit
// extra group. Partition replaces any previous partition.
func (n *Network) Partition(groups ...[]NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[NodeID]int)
	for gi, g := range groups {
		for _, id := range g {
			n.partition[id] = gi + 1
		}
	}
}

// Heal removes any network partition.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[NodeID]int)
}

// SetDropRate makes the network drop each delivery independently with
// probability p (0 ≤ p ≤ 1).
func (n *Network) SetDropRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropRate = p
}

// SetDropFilter installs fn; deliveries for which fn returns true are
// dropped. Tests use this to force specific retransmission paths. A nil fn
// removes the filter.
func (n *Network) SetDropFilter(fn func(src, dst NodeID, payload []byte) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropFn = fn
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	return Stats{
		FramesSent:      n.stats.framesSent.Load(),
		FramesDelivered: n.stats.framesDelivered.Load(),
		BytesSent:       n.stats.bytesSent.Load(),
		FramesDropped:   n.stats.framesDropped.Load(),
	}
}

// reachable reports whether src and dst are in the same partition group.
func (n *Network) reachable(src, dst NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partition[src] == n.partition[dst]
}

// shouldDrop applies loss injection to one delivery.
func (n *Network) shouldDrop(src, dst NodeID, payload []byte) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dropFn != nil && n.dropFn(src, dst, payload) {
		return true
	}
	return n.dropRate > 0 && n.rng.Float64() < n.dropRate
}

// CPU serializes processing charges on one simulated host: a Sun3/60 has a
// single CPU, so concurrent server threads on one machine contend for it.
// This contention is what limits each directory server to roughly 333
// lookups/s in Fig. 8.
//
// Sub-millisecond charges (per-packet costs) accumulate as debt and are
// slept off in ≥1 ms chunks: the Go runtime cannot sleep accurately for a
// few hundred microseconds, and naive sleeping would inflate every packet
// to ~1 ms, wrecking the calibration.
type CPU struct {
	model *LatencyModel
	mu    sync.Mutex
	debt  time.Duration
}

// chargeGranularity is the smallest amount worth sleeping for.
const chargeGranularity = time.Millisecond

// Charge blocks the caller for d (scaled), holding the host CPU.
func (c *CPU) Charge(d time.Duration) {
	if c.model == nil || c.model.Scale == 0 || d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.debt += time.Duration(float64(d) * c.model.Scale)
	if c.debt < chargeGranularity {
		return
	}
	owed := c.debt
	c.debt = 0
	time.Sleep(owed)
}

type outFrame struct {
	dst       NodeID // ignored when broadcast
	broadcast bool
	payload   []byte
}

type inbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Frame
	stopped bool
	gen     uint64 // incarnation; bumped on restart
}

// Node is one host: a NIC on the shared segment plus a CPU.
type Node struct {
	id   NodeID
	name string
	net  *Network
	cpu  CPU

	inbox inbox

	crashed atomic.Bool
	out     chan outFrame
	outDone chan struct{}
}

// ID returns the node's network identifier.
func (nd *Node) ID() NodeID { return nd.id }

// Name returns the debugging name given at AddNode.
func (nd *Node) Name() string { return nd.name }

// CPU returns the node's CPU for processing charges.
func (nd *Node) CPU() *CPU { return &nd.cpu }

// Network returns the segment the node is attached to.
func (nd *Node) Network() *Network { return nd.net }

// String implements fmt.Stringer.
func (nd *Node) String() string { return fmt.Sprintf("node %d (%s)", nd.id, nd.name) }

// Unicast queues a frame to dst. Delivery is asynchronous; per-sender FIFO
// order is preserved. The payload is not copied: callers must not mutate it
// after sending.
func (nd *Node) Unicast(dst NodeID, payload []byte) error {
	return nd.send(outFrame{dst: dst, payload: payload})
}

// Broadcast queues a frame to every other node on the segment in a single
// transmission (Ethernet multicast).
func (nd *Node) Broadcast(payload []byte) error {
	return nd.send(outFrame{broadcast: true, payload: payload})
}

func (nd *Node) send(f outFrame) error {
	if nd.crashed.Load() {
		return ErrCrashed
	}
	// Per-packet protocol processing on the sending host.
	nd.cpu.Charge(nd.net.model.PacketCPU)
	select {
	case nd.out <- f:
		return nil
	default:
		// NIC transmit queue overflow: drop, as real hardware would.
		nd.net.stats.framesDropped.Add(1)
		return nil
	}
}

// transmitLoop serializes this node's transmissions: one NIC puts one frame
// on the wire at a time, which preserves per-sender FIFO delivery order.
// Per-frame wire times are far below the sleep granularity, so they
// accumulate as debt and are slept off in chunks, keeping the average
// transmission rate calibrated.
func (nd *Node) transmitLoop() {
	var txDebt time.Duration
	model := nd.net.model
	for f := range nd.out {
		if nd.crashed.Load() {
			nd.net.stats.framesDropped.Add(1)
			continue
		}
		if model.Scale > 0 {
			txDebt += time.Duration(float64(model.TxTime(len(f.payload))) * model.Scale)
			if txDebt >= chargeGranularity {
				time.Sleep(txDebt)
				txDebt = 0
			}
		}
		nd.net.stats.framesSent.Add(1)
		nd.net.stats.bytesSent.Add(uint64(len(f.payload)))
		frame := Frame{Src: nd.id, Broadcast: f.broadcast, Payload: f.payload}
		if f.broadcast {
			for _, dst := range nd.net.Nodes() {
				if dst.id == nd.id {
					continue
				}
				nd.deliverTo(dst, frame)
			}
		} else if dst := nd.net.Node(f.dst); dst != nil {
			nd.deliverTo(dst, frame)
		} else {
			nd.net.stats.framesDropped.Add(1)
		}
	}
	close(nd.outDone)
}

func (nd *Node) deliverTo(dst *Node, frame Frame) {
	if !nd.net.reachable(nd.id, dst.id) || nd.net.shouldDrop(nd.id, dst.id, frame.Payload) {
		nd.net.stats.framesDropped.Add(1)
		return
	}
	if dst.enqueue(frame) {
		nd.net.stats.framesDelivered.Add(1)
	} else {
		nd.net.stats.framesDropped.Add(1)
	}
}

func (nd *Node) enqueue(frame Frame) bool {
	nd.inbox.mu.Lock()
	defer nd.inbox.mu.Unlock()
	if nd.inbox.stopped || len(nd.inbox.queue) >= maxInboxDepth {
		return false
	}
	nd.inbox.queue = append(nd.inbox.queue, frame)
	nd.inbox.cond.Signal()
	return true
}

// Recv blocks until a frame arrives and returns it. It returns ok=false
// when the node crashes (or was crashed at call time). The caller should
// charge PacketCPU for received frames via CPU().Charge; the FLIP layer
// does this automatically.
func (nd *Node) Recv() (Frame, bool) {
	nd.inbox.mu.Lock()
	defer nd.inbox.mu.Unlock()
	gen := nd.inbox.gen
	for len(nd.inbox.queue) == 0 {
		if nd.inbox.stopped || nd.inbox.gen != gen {
			return Frame{}, false
		}
		nd.inbox.cond.Wait()
	}
	if nd.inbox.stopped || nd.inbox.gen != gen {
		return Frame{}, false
	}
	f := nd.inbox.queue[0]
	nd.inbox.queue = nd.inbox.queue[1:]
	return f, true
}

// Crash fail-stops the node: pending and future frames are dropped and all
// blocked Recv calls return. Disk contents (internal/vdisk) are unaffected.
func (nd *Node) Crash() {
	nd.crashed.Store(true)
	nd.inbox.mu.Lock()
	nd.inbox.stopped = true
	nd.inbox.queue = nil
	nd.inbox.cond.Broadcast()
	nd.inbox.mu.Unlock()
}

// Restart brings a crashed node back with an empty inbox. Recv calls made
// before the crash do not resume; the restarted software stack must call
// Recv afresh.
func (nd *Node) Restart() {
	nd.inbox.mu.Lock()
	nd.inbox.stopped = false
	nd.inbox.queue = nil
	nd.inbox.gen++
	nd.inbox.cond.Broadcast()
	nd.inbox.mu.Unlock()
	nd.crashed.Store(false)
}

// Crashed reports whether the node is currently fail-stopped.
func (nd *Node) Crashed() bool { return nd.crashed.Load() }
