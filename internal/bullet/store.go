// Package bullet implements a Bullet-style immutable file server
// [Van Renesse et al., ICDCS 1989], the file substrate of the directory
// service (paper Fig. 3).
//
// Bullet files are immutable: they are created in one operation with their
// full contents, read whole, and deleted. Files are laid out contiguously
// on disk and cached whole in RAM, so reads of cached files cost no disk
// operation — the property that makes directory read operations free of
// disk I/O in all three service implementations.
//
// The package separates the Store (disk layout, allocation, capability
// checking) from the Server (the RPC frontend directory servers and
// clients talk to).
package bullet

import (
	"errors"
	"fmt"
	"sync"

	"dirsvc/internal/capability"
	"dirsvc/internal/vdisk"
)

var (
	// ErrNotFound is returned for capabilities naming no live file.
	ErrNotFound = errors.New("bullet: file not found")
	// ErrNoSpace is returned when the store cannot allocate a run.
	ErrNoSpace = errors.New("bullet: out of disk space")
	// ErrTooBig is returned for files above the per-file size limit.
	ErrTooBig = errors.New("bullet: file too large")
)

// MaxFileSize bounds one Bullet file. Directories are small; user tmp
// files in the paper are 4 bytes.
const MaxFileSize = 256 * 1024

// tableBlocks is the on-disk region reserved for the file table at the
// start of the partition. The table is rewritten in place (short seek) as
// part of each create or delete.
const tableBlocks = 64

type fileEntry struct {
	object uint32
	start  int // first data block
	blocks int
	length int
	secret capability.Secret
}

// Store is the disk-backed file store of one Bullet server.
type Store struct {
	port    capability.Port
	storage vdisk.Storage

	mu      sync.Mutex
	files   map[uint32]*fileEntry
	cache   map[uint32][]byte // whole-file RAM cache (Bullet keeps files contiguous in RAM)
	free    []run             // free data-block runs, kept sorted by start
	nextObj uint32
}

type run struct {
	start, n int
}

// NewStore formats a fresh store on storage. The port is the service port
// capabilities will name.
func NewStore(port capability.Port, storage vdisk.Storage) (*Store, error) {
	if storage.Blocks() <= tableBlocks {
		return nil, fmt.Errorf("bullet: partition too small (%d blocks)", storage.Blocks())
	}
	s := &Store{
		port:    port,
		storage: storage,
		files:   make(map[uint32]*fileEntry),
		cache:   make(map[uint32][]byte),
		free:    []run{{start: tableBlocks, n: storage.Blocks() - tableBlocks}},
		nextObj: 1,
	}
	s.mu.Lock()
	table := s.encodeTableLocked()
	s.mu.Unlock()
	if err := storage.WriteRunSeq(0, table); err != nil {
		return nil, fmt.Errorf("format file table: %w", err)
	}
	return s, nil
}

// OpenStore recovers a store from an existing partition after a crash:
// the file table is read back from disk and the RAM cache repopulated
// lazily. This is what makes a restarted directory server's own
// directories readable again during recovery.
func OpenStore(port capability.Port, storage vdisk.Storage) (*Store, error) {
	raw, err := storage.ReadRun(0, tableBlocks*vdisk.BlockSize)
	if err != nil {
		return nil, fmt.Errorf("read file table: %w", err)
	}
	files, nextObj, err := decodeTable(raw)
	if err != nil {
		return nil, err
	}
	s := &Store{
		port:    port,
		storage: storage,
		files:   files,
		cache:   make(map[uint32][]byte),
		nextObj: nextObj,
	}
	s.rebuildFreeList()
	return s, nil
}

// Port returns the service port of this store.
func (s *Store) Port() capability.Port { return s.port }

// Create stores data as a new immutable file and returns its owner
// capability. The file is committed to disk before Create returns
// (write-through), costing one random disk access plus transfer, and the
// file table is updated with a short-seek write.
func (s *Store) Create(data []byte) (capability.Capability, error) {
	if len(data) > MaxFileSize {
		return capability.Capability{}, fmt.Errorf("%d bytes: %w", len(data), ErrTooBig)
	}
	s.mu.Lock()
	object := s.nextObj
	s.nextObj++
	nblocks := blocksFor(len(data))
	start, ok := s.allocate(nblocks)
	if !ok {
		s.mu.Unlock()
		return capability.Capability{}, ErrNoSpace
	}
	entry := &fileEntry{
		object: object,
		start:  start,
		blocks: nblocks,
		length: len(data),
		secret: capability.NewSecret(fmt.Appendf(nil, "%v/%d", s.port, object)),
	}
	s.files[object] = entry
	cached := make([]byte, len(data))
	copy(cached, data)
	s.cache[object] = cached
	table := s.encodeTableLocked()
	s.mu.Unlock()

	// Write data and the updated file table. Data pays the full random
	// access; the table lives at the partition start and pays a short
	// seek.
	if err := s.storage.WriteRun(start, data); err != nil {
		return capability.Capability{}, fmt.Errorf("write file: %w", err)
	}
	if err := s.storage.WriteRunSeq(0, table); err != nil {
		return capability.Capability{}, fmt.Errorf("write file table: %w", err)
	}
	return capability.Mint(s.port, object, entry.secret), nil
}

// Read returns the file contents. Cached files cost no disk access.
func (s *Store) Read(c capability.Capability) ([]byte, error) {
	s.mu.Lock()
	entry, ok := s.files[c.Object]
	if !ok {
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	if err := capability.Require(c, entry.secret, capability.RightRead); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if data, hit := s.cache[c.Object]; hit {
		out := make([]byte, len(data))
		copy(out, data)
		s.mu.Unlock()
		return out, nil
	}
	start, length := entry.start, entry.length
	s.mu.Unlock()

	data, err := s.storage.ReadRun(start, length)
	if err != nil {
		return nil, fmt.Errorf("read file: %w", err)
	}
	s.mu.Lock()
	if _, still := s.files[c.Object]; still {
		s.cache[c.Object] = data
	}
	s.mu.Unlock()
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Size returns the file length in bytes.
func (s *Store) Size(c capability.Capability) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, ok := s.files[c.Object]
	if !ok {
		return 0, ErrNotFound
	}
	if err := capability.Require(c, entry.secret, capability.RightRead); err != nil {
		return 0, err
	}
	return entry.length, nil
}

// Delete destroys the file and frees its blocks. The file table update
// pays a short-seek write.
func (s *Store) Delete(c capability.Capability) error {
	s.mu.Lock()
	entry, ok := s.files[c.Object]
	if !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	if err := capability.Require(c, entry.secret, capability.RightDelete); err != nil {
		s.mu.Unlock()
		return err
	}
	delete(s.files, c.Object)
	delete(s.cache, c.Object)
	s.freeRun(run{start: entry.start, n: entry.blocks})
	table := s.encodeTableLocked()
	s.mu.Unlock()

	if err := s.storage.WriteRunSeq(0, table); err != nil {
		return fmt.Errorf("write file table: %w", err)
	}
	return nil
}

// Objects returns the number of live files.
func (s *Store) Objects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}

// allocate finds a free run of n blocks (first fit). Must hold s.mu.
func (s *Store) allocate(n int) (int, bool) {
	if n == 0 {
		n = 1
	}
	for i := range s.free {
		if s.free[i].n >= n {
			start := s.free[i].start
			s.free[i].start += n
			s.free[i].n -= n
			if s.free[i].n == 0 {
				s.free = append(s.free[:i], s.free[i+1:]...)
			}
			return start, true
		}
	}
	return 0, false
}

// freeRun returns a run to the free list, merging neighbors. Must hold s.mu.
func (s *Store) freeRun(r run) {
	if r.n == 0 {
		r.n = 1
	}
	i := 0
	for i < len(s.free) && s.free[i].start < r.start {
		i++
	}
	s.free = append(s.free, run{})
	copy(s.free[i+1:], s.free[i:])
	s.free[i] = r
	// Merge adjacent runs.
	merged := s.free[:0]
	for _, cur := range s.free {
		if n := len(merged); n > 0 && merged[n-1].start+merged[n-1].n == cur.start {
			merged[n-1].n += cur.n
			continue
		}
		merged = append(merged, cur)
	}
	s.free = merged
}

// rebuildFreeList recomputes the free list from the file table. Must be
// called before the store is shared.
func (s *Store) rebuildFreeList() {
	used := make(map[int]bool)
	for _, e := range s.files {
		for b := 0; b < e.blocks; b++ {
			used[e.start+b] = true
		}
	}
	s.free = nil
	total := s.storage.Blocks()
	for b := tableBlocks; b < total; {
		if used[b] {
			b++
			continue
		}
		startRun := b
		for b < total && !used[b] {
			b++
		}
		s.free = append(s.free, run{start: startRun, n: b - startRun})
	}
}

func blocksFor(n int) int {
	b := (n + vdisk.BlockSize - 1) / vdisk.BlockSize
	if b == 0 {
		b = 1
	}
	return b
}
