package bullet

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"dirsvc/internal/capability"
	"dirsvc/internal/sim"
	"dirsvc/internal/vdisk"
)

func newStore(t *testing.T) (*Store, *vdisk.Disk) {
	t.Helper()
	disk := vdisk.New(sim.FastModel(), 4096)
	s, err := NewStore(capability.PortFromString("bullet-test"), disk)
	if err != nil {
		t.Fatal(err)
	}
	return s, disk
}

func TestCreateReadDelete(t *testing.T) {
	s, _ := newStore(t)
	data := []byte("directory image v1")
	cap1, err := s.Create(data)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := s.Read(cap1)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Read = %q", got)
	}
	n, err := s.Size(cap1)
	if err != nil || n != len(data) {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if err := s.Delete(cap1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Read(cap1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read after delete: %v", err)
	}
	if s.Objects() != 0 {
		t.Fatalf("Objects = %d", s.Objects())
	}
}

func TestEmptyFile(t *testing.T) {
	s, _ := newStore(t)
	cap1, err := s.Create(nil)
	if err != nil {
		t.Fatalf("Create empty: %v", err)
	}
	got, err := s.Read(cap1)
	if err != nil || len(got) != 0 {
		t.Fatalf("Read empty = %v, %v", got, err)
	}
}

func TestFilesAreImmutableCopies(t *testing.T) {
	s, _ := newStore(t)
	data := []byte("original")
	cap1, _ := s.Create(data)
	data[0] = 'X' // caller mutation after create must not leak in
	got, _ := s.Read(cap1)
	if string(got) != "original" {
		t.Fatalf("create aliased caller buffer: %q", got)
	}
	got[0] = 'Y' // reader mutation must not corrupt the cache
	again, _ := s.Read(cap1)
	if string(again) != "original" {
		t.Fatalf("read aliased cache: %q", again)
	}
}

func TestCapabilityEnforcement(t *testing.T) {
	s, _ := newStore(t)
	owner, _ := s.Create([]byte("secret data"))

	forged := owner
	forged.Check = capability.Check{1, 2, 3, 4, 5, 6}
	if _, err := s.Read(forged); !errors.Is(err, capability.ErrBadCapability) {
		t.Fatalf("forged read: %v", err)
	}

	readOnly, err := capability.Restrict(owner, capability.RightRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(readOnly); err != nil {
		t.Fatalf("read with read-only cap: %v", err)
	}
	if err := s.Delete(readOnly); !errors.Is(err, capability.ErrNoRights) {
		t.Fatalf("delete with read-only cap: %v", err)
	}
}

func TestTooBig(t *testing.T) {
	s, _ := newStore(t)
	if _, err := s.Create(make([]byte, MaxFileSize+1)); !errors.Is(err, ErrTooBig) {
		t.Fatalf("err = %v, want ErrTooBig", err)
	}
}

func TestOutOfSpaceAndReuse(t *testing.T) {
	disk := vdisk.New(sim.FastModel(), tableBlocks+8)
	s, err := NewStore(capability.PortFromString("tiny"), disk)
	if err != nil {
		t.Fatal(err)
	}
	// 8 data blocks: two 4-block files fill the store.
	c1, err := s.Create(make([]byte, 4*vdisk.BlockSize))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(make([]byte, 4*vdisk.BlockSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	// Deleting frees space for reuse.
	if err := s.Delete(c1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(make([]byte, 3*vdisk.BlockSize)); err != nil {
		t.Fatalf("Create after free: %v", err)
	}
}

func TestCrashRecoveryViaOpenStore(t *testing.T) {
	disk := vdisk.New(sim.FastModel(), 4096)
	port := capability.PortFromString("bullet-recover")
	s, err := NewStore(port, disk)
	if err != nil {
		t.Fatal(err)
	}
	var caps []capability.Capability
	for i := 0; i < 5; i++ {
		c, err := s.Create(fmt.Appendf(nil, "file-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		caps = append(caps, c)
	}
	if err := s.Delete(caps[2]); err != nil {
		t.Fatal(err)
	}

	// "Crash": drop the store, reopen from the same disk.
	s2, err := OpenStore(port, disk)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	for i, c := range caps {
		data, err := s2.Read(c)
		if i == 2 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted file %d after recovery: %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("file %d after recovery: %v", i, err)
		}
		if want := fmt.Sprintf("file-%d", i); string(data) != want {
			t.Fatalf("file %d = %q, want %q", i, data, want)
		}
	}
	// Allocation must not clobber surviving files.
	c6, err := s2.Create(bytes.Repeat([]byte("z"), 3*vdisk.BlockSize))
	if err != nil {
		t.Fatal(err)
	}
	if data, err := s2.Read(caps[4]); err != nil || string(data) != "file-4" {
		t.Fatalf("file 4 clobbered after post-recovery create: %q, %v", data, err)
	}
	if data, err := s2.Read(c6); err != nil || len(data) != 3*vdisk.BlockSize {
		t.Fatalf("new file bad after recovery: %d bytes, %v", len(data), err)
	}
}

func TestDiskChargesPerCreate(t *testing.T) {
	s, disk := newStore(t)
	before := disk.Stats()
	if _, err := s.Create([]byte("x")); err != nil {
		t.Fatal(err)
	}
	after := disk.Stats()
	// One random write (the file) + one short-seek write (the table).
	if after.Writes-before.Writes != 1 || after.SeqWrites-before.SeqWrites != 1 {
		t.Fatalf("create cost: writes %d→%d seq %d→%d",
			before.Writes, after.Writes, before.SeqWrites, after.SeqWrites)
	}
	// Cached read: no disk access at all.
	caps, _ := s.Create([]byte("y"))
	mid := disk.Stats()
	if _, err := s.Read(caps); err != nil {
		t.Fatal(err)
	}
	end := disk.Stats()
	if end.Reads != mid.Reads {
		t.Fatal("cached read touched the disk")
	}
}

// Property: create/read round-trips arbitrary contents, including across
// a simulated crash.
func TestQuickCreateReadRecover(t *testing.T) {
	disk := vdisk.New(sim.FastModel(), 1<<16)
	port := capability.PortFromString("bullet-quick")
	s, err := NewStore(port, disk)
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte) bool {
		if len(data) > 4*vdisk.BlockSize {
			data = data[:4*vdisk.BlockSize]
		}
		c, err := s.Create(data)
		if err != nil {
			return false
		}
		got, err := s.Read(c)
		if err != nil || !bytes.Equal(got, data) {
			return false
		}
		s2, err := OpenStore(port, disk)
		if err != nil {
			return false
		}
		got, err = s2.Read(c)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
