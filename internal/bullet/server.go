package bullet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dirsvc/internal/capability"
	"dirsvc/internal/flip"
	"dirsvc/internal/rpc"
)

// Wire operation codes.
const (
	opCreate = 1
	opRead   = 2
	opSize   = 3
	opDelete = 4
)

// Wire status codes.
const (
	statusOK = iota
	statusNotFound
	statusBadCap
	statusNoRights
	statusNoSpace
	statusTooBig
	statusBadRequest
	statusIO
)

// Server is the RPC frontend of one Bullet store. A store may be served on
// several ports at once: its private per-machine port (which its directory
// server uses, Fig. 3) and optionally the public file-service port clients
// use for their own files.
type Server struct {
	store   *Store
	servers []*rpc.Server
	stops   []func()
}

// NewServer serves store on the given ports with the given number of
// worker threads per port.
func NewServer(stack *flip.Stack, store *Store, workers int, ports ...capability.Port) (*Server, error) {
	if len(ports) == 0 {
		ports = []capability.Port{store.Port()}
	}
	s := &Server{store: store}
	for _, port := range ports {
		srv, err := rpc.NewServer(stack, port)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("bullet server on %v: %w", port, err)
		}
		s.servers = append(s.servers, srv)
		s.stops = append(s.stops, srv.ServeFunc(workers, s.handle))
	}
	return s, nil
}

// Store returns the underlying file store.
func (s *Server) Store() *Store { return s.store }

// Close stops all RPC frontends.
func (s *Server) Close() {
	for _, srv := range s.servers {
		srv.Close()
	}
	for _, stop := range s.stops {
		stop()
	}
}

func (s *Server) handle(req *rpc.Request) []byte {
	if len(req.Payload) < 1 {
		return respond(statusBadRequest, nil)
	}
	op := req.Payload[0]
	body := req.Payload[1:]
	switch op {
	case opCreate:
		cap, err := s.store.Create(body)
		if err != nil {
			return respond(statusOf(err), nil)
		}
		return respond(statusOK, cap.Encode(nil))
	case opRead, opSize, opDelete:
		c, err := capability.Decode(body)
		if err != nil {
			return respond(statusBadRequest, nil)
		}
		switch op {
		case opRead:
			data, err := s.store.Read(c)
			if err != nil {
				return respond(statusOf(err), nil)
			}
			return respond(statusOK, data)
		case opSize:
			n, err := s.store.Size(c)
			if err != nil {
				return respond(statusOf(err), nil)
			}
			return respond(statusOK, binary.BigEndian.AppendUint32(nil, uint32(n)))
		default:
			if err := s.store.Delete(c); err != nil {
				return respond(statusOf(err), nil)
			}
			return respond(statusOK, nil)
		}
	default:
		return respond(statusBadRequest, nil)
	}
}

func respond(status byte, payload []byte) []byte {
	return append([]byte{status}, payload...)
}

func statusOf(err error) byte {
	switch {
	case errors.Is(err, ErrNotFound):
		return statusNotFound
	case errors.Is(err, capability.ErrBadCapability):
		return statusBadCap
	case errors.Is(err, capability.ErrNoRights):
		return statusNoRights
	case errors.Is(err, ErrNoSpace):
		return statusNoSpace
	case errors.Is(err, ErrTooBig):
		return statusTooBig
	default:
		return statusIO
	}
}

func errorOf(status byte) error {
	switch status {
	case statusOK:
		return nil
	case statusNotFound:
		return ErrNotFound
	case statusBadCap:
		return capability.ErrBadCapability
	case statusNoRights:
		return capability.ErrNoRights
	case statusNoSpace:
		return ErrNoSpace
	case statusTooBig:
		return ErrTooBig
	case statusBadRequest:
		return errors.New("bullet: bad request")
	default:
		return errors.New("bullet: server I/O error")
	}
}

// Client accesses a Bullet service over RPC.
type Client struct {
	rpc  *rpc.Client
	port capability.Port
}

// NewClient creates a Bullet client for the service on port.
func NewClient(rc *rpc.Client, port capability.Port) *Client {
	return &Client{rpc: rc, port: port}
}

// Create stores data as a new immutable file.
func (c *Client) Create(data []byte) (capability.Capability, error) {
	reply, err := c.rpc.Trans(c.port, append([]byte{opCreate}, data...))
	if err != nil {
		return capability.Capability{}, err
	}
	payload, err := parseReply(reply)
	if err != nil {
		return capability.Capability{}, err
	}
	return capability.Decode(payload)
}

// Read fetches the whole file named by cap.
func (c *Client) Read(cap capability.Capability) ([]byte, error) {
	reply, err := c.rpc.Trans(c.port, cap.Encode([]byte{opRead}))
	if err != nil {
		return nil, err
	}
	return parseReply(reply)
}

// Size returns the file length.
func (c *Client) Size(cap capability.Capability) (int, error) {
	reply, err := c.rpc.Trans(c.port, cap.Encode([]byte{opSize}))
	if err != nil {
		return 0, err
	}
	payload, err := parseReply(reply)
	if err != nil {
		return 0, err
	}
	if len(payload) != 4 {
		return 0, errors.New("bullet: malformed size reply")
	}
	return int(binary.BigEndian.Uint32(payload)), nil
}

// Delete destroys the file named by cap.
func (c *Client) Delete(cap capability.Capability) error {
	reply, err := c.rpc.Trans(c.port, cap.Encode([]byte{opDelete}))
	if err != nil {
		return err
	}
	_, err = parseReply(reply)
	return err
}

func parseReply(reply []byte) ([]byte, error) {
	if len(reply) < 1 {
		return nil, errors.New("bullet: empty reply")
	}
	if err := errorOf(reply[0]); err != nil {
		return nil, err
	}
	return reply[1:], nil
}
