package bullet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"dirsvc/internal/capability"
	"dirsvc/internal/vdisk"
)

// ErrCorruptTable is returned when the on-disk file table cannot be parsed.
var ErrCorruptTable = errors.New("bullet: corrupt file table")

// On-disk file table layout (big endian):
//
//	magic   [4]byte "BLT1"
//	nextObj uint32
//	count   uint32
//	entries count × (object u32, start u32, blocks u32, length u32, secret [6]byte)
var tableMagic = [4]byte{'B', 'L', 'T', '1'}

const entrySize = 4 + 4 + 4 + 4 + 6

// encodeTableLocked serializes the file table. Must hold s.mu. Entries are
// sorted by object number for deterministic images.
func (s *Store) encodeTableLocked() []byte {
	objects := make([]uint32, 0, len(s.files))
	for o := range s.files {
		objects = append(objects, o)
	}
	sort.Slice(objects, func(i, j int) bool { return objects[i] < objects[j] })

	buf := make([]byte, 0, 12+len(objects)*entrySize)
	buf = append(buf, tableMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, s.nextObj)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(objects)))
	for _, o := range objects {
		e := s.files[o]
		buf = binary.BigEndian.AppendUint32(buf, e.object)
		buf = binary.BigEndian.AppendUint32(buf, uint32(e.start))
		buf = binary.BigEndian.AppendUint32(buf, uint32(e.blocks))
		buf = binary.BigEndian.AppendUint32(buf, uint32(e.length))
		buf = append(buf, e.secret[:]...)
	}
	if len(buf) > tableBlocks*vdisk.BlockSize {
		// The table region is sized for thousands of directories; treat
		// overflow as a hard configuration error surfaced at write time.
		return buf[:tableBlocks*vdisk.BlockSize]
	}
	return buf
}

func decodeTable(raw []byte) (map[uint32]*fileEntry, uint32, error) {
	if len(raw) < 12 {
		return nil, 0, ErrCorruptTable
	}
	var m [4]byte
	copy(m[:], raw[:4])
	if m != tableMagic {
		return nil, 0, fmt.Errorf("bad magic: %w", ErrCorruptTable)
	}
	nextObj := binary.BigEndian.Uint32(raw[4:8])
	count := int(binary.BigEndian.Uint32(raw[8:12]))
	if count < 0 || 12+count*entrySize > len(raw) {
		return nil, 0, fmt.Errorf("entry count %d: %w", count, ErrCorruptTable)
	}
	files := make(map[uint32]*fileEntry, count)
	off := 12
	for i := 0; i < count; i++ {
		e := &fileEntry{
			object: binary.BigEndian.Uint32(raw[off : off+4]),
			start:  int(binary.BigEndian.Uint32(raw[off+4 : off+8])),
			blocks: int(binary.BigEndian.Uint32(raw[off+8 : off+12])),
			length: int(binary.BigEndian.Uint32(raw[off+12 : off+16])),
		}
		var sec capability.Secret
		copy(sec[:], raw[off+16:off+22])
		e.secret = sec
		files[e.object] = e
		off += entrySize
	}
	return files, nextObj, nil
}
