package bullet

import (
	"bytes"
	"errors"
	"testing"

	"dirsvc/internal/capability"
	"dirsvc/internal/flip"
	"dirsvc/internal/rpc"
	"dirsvc/internal/sim"
	"dirsvc/internal/vdisk"
)

func newServerFixture(t *testing.T, extraPorts ...capability.Port) *Client {
	t.Helper()
	net := sim.NewNetwork(sim.FastModel(), 1)

	serverStack := flip.NewStack(net.AddNode("bullet"))
	disk := vdisk.New(sim.FastModel(), 4096)
	port := capability.PortFromString("bullet-rpc-test")
	store, err := NewStore(port, disk)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(serverStack, store, 2, append([]capability.Port{port}, extraPorts...)...)
	if err != nil {
		t.Fatal(err)
	}

	clientStack := flip.NewStack(net.AddNode("client"))
	rc, err := rpc.NewClient(clientStack)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		serverStack.Close()
		clientStack.Close()
	})
	return NewClient(rc, port)
}

func TestClientCreateReadSizeDelete(t *testing.T) {
	c := newServerFixture(t)
	data := []byte("over-the-wire file")
	cap1, err := c.Create(data)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := c.Read(cap1)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Read = %q, %v", got, err)
	}
	n, err := c.Size(cap1)
	if err != nil || n != len(data) {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if err := c.Delete(cap1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.Read(cap1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read after delete: %v", err)
	}
}

func TestClientErrorsMapped(t *testing.T) {
	c := newServerFixture(t)
	owner, err := c.Create([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	forged := owner
	forged.Check = capability.Check{9, 9, 9, 9, 9, 9}
	if _, err := c.Read(forged); !errors.Is(err, capability.ErrBadCapability) {
		t.Fatalf("forged read over RPC: %v", err)
	}
	ro, _ := capability.Restrict(owner, capability.RightRead)
	if err := c.Delete(ro); !errors.Is(err, capability.ErrNoRights) {
		t.Fatalf("unauthorized delete over RPC: %v", err)
	}
	ghost := owner
	ghost.Object = 0xfffff
	if _, err := c.Size(ghost); !errors.Is(err, ErrNotFound) &&
		!errors.Is(err, capability.ErrBadCapability) {
		t.Fatalf("missing object: %v", err)
	}
}

func TestServeOnExtraPublicPort(t *testing.T) {
	public := capability.PortFromString("public-file-service")
	c := newServerFixture(t, public)
	// The same store must answer on the public port too.
	pub := NewClient(c.rpc, public)
	cap1, err := pub.Create([]byte("via public port"))
	if err != nil {
		t.Fatalf("Create via public port: %v", err)
	}
	got, err := c.Read(cap1)
	if err != nil || string(got) != "via public port" {
		t.Fatalf("Read via private port: %q, %v", got, err)
	}
}
