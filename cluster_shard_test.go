package faultdir

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dirsvc/dir"
	"dirsvc/internal/capability"
	"dirsvc/internal/dirclient"
)

// retryNoMajority retries fn while it fails with ErrNoMajority — the
// transient window of a freshly booted (or resetting) replica group.
func retryNoMajority(t *testing.T, what string, fn func() (capability.Capability, error)) capability.Capability {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		c, err := fn()
		if err == nil {
			return c
		}
		if !errors.Is(err, dir.ErrNoMajority) || time.Now().After(deadline) {
			t.Fatalf("%s: %v", what, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func rootRetry(t *testing.T, client *dirclient.Client) capability.Capability {
	t.Helper()
	return retryNoMajority(t, "Root", func() (capability.Capability, error) {
		return client.Root(bgCtx)
	})
}

func createDirOnRetry(t *testing.T, client *dirclient.Client, shard int) capability.Capability {
	t.Helper()
	return retryNoMajority(t, fmt.Sprintf("CreateDirOn(%d)", shard), func() (capability.Capability, error) {
		return client.CreateDirOn(bgCtx, shard)
	})
}

// shardTestCluster boots a sharded group cluster with the fast model.
func shardTestCluster(t *testing.T, kind Kind, shards int) (*Cluster, *dirclient.Client) {
	t.Helper()
	opts := testOptions()
	opts.Shards = shards
	c, err := New(kind, opts)
	if err != nil {
		t.Fatalf("New(%v, shards=%d): %v", kind, shards, err)
	}
	t.Cleanup(c.Close)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)
	return c, client
}

// TestShardFaultIsolation is the availability contract of the sharded
// service: killing a majority of ONE shard's replicas makes only that
// shard's objects unavailable (dir.ErrNoMajority); every other shard
// keeps serving reads and writes. Restarting the replicas runs the
// Fig. 6 recovery per shard and restores service.
func TestShardFaultIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded cluster test: run by the dedicated CI lane and the full suite")
	}
	const shards = 3
	c, client := shardTestCluster(t, KindGroup, shards)

	root := rootRetry(t, client)
	dirs := make([]capability.Capability, shards)
	for s := 0; s < shards; s++ {
		dirs[s] = createDirOnRetry(t, client, s)
		appendWithRetry(t, client, root, fmt.Sprintf("d%d", s), dirs[s], 30*time.Second)
	}

	// Kill a majority (2 of 3) of shard 1's replicas.
	const down = 1
	c.CrashShardServer(down, 1)
	c.CrashShardServer(down, 2)

	// Shard 1's objects become unavailable: the survivor refuses both
	// reads and writes with ErrNoMajority (the accessible-copies rule,
	// applied per shard). The client may need a few attempts while its
	// port cache evicts the dead servers.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, err := client.List(bgCtx, dirs[down], 0)
		if errors.Is(err, dir.ErrNoMajority) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d read: err = %v, want ErrNoMajority", down, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := client.Append(bgCtx, dirs[down], "w", dirs[down], nil); !errors.Is(err, dir.ErrNoMajority) {
		t.Fatalf("shard %d write: err = %v, want ErrNoMajority", down, err)
	}

	// Every other shard — including shard 0's root — keeps serving reads
	// AND writes, undisturbed by shard 1's outage.
	for s := 0; s < shards; s++ {
		if s == down {
			continue
		}
		if _, err := client.List(bgCtx, dirs[s], 0); err != nil {
			t.Fatalf("shard %d read during shard-%d outage: %v", s, down, err)
		}
		if err := client.Append(bgCtx, dirs[s], "during-outage", dirs[s], nil); err != nil {
			t.Fatalf("shard %d write during shard-%d outage: %v", s, down, err)
		}
	}
	if _, err := client.Lookup(bgCtx, root, "d0"); err != nil {
		t.Fatalf("root lookup during outage: %v", err)
	}

	// Restart the crashed replicas: shard 1 recovers (Fig. 6) and serves
	// again; the whole object space is available.
	if err := c.RestartShardServer(down, 1); err != nil {
		t.Fatalf("restart shard %d server 1: %v", down, err)
	}
	if err := c.RestartShardServer(down, 2); err != nil {
		t.Fatalf("restart shard %d server 2: %v", down, err)
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		err := client.Append(bgCtx, dirs[down], "after-recovery", dirs[down], nil)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d never recovered: %v", down, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardPartitionIsolation: partitioning one shard's majority away
// from the clients refuses only that shard, and healing reunites it.
func TestShardPartitionIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded cluster test: run by the dedicated CI lane and the full suite")
	}
	const shards = 2
	c, client := shardTestCluster(t, KindGroup, shards)

	d0 := createDirOnRetry(t, client, 0)
	d1 := createDirOnRetry(t, client, 1)

	// Cut all of shard 1 off from the clients (and from shard 0).
	c.PartitionShardServers(1, 1, 2, 3)

	deadline := time.Now().Add(30 * time.Second)
	for {
		_, err := client.List(bgCtx, d1, 0)
		if err != nil && !errors.Is(err, dir.ErrNoMajority) {
			// The whole shard is unreachable; transport errors (timeouts,
			// no server) are acceptable refusals too.
			break
		}
		if errors.Is(err, dir.ErrNoMajority) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("partitioned shard still serving: err = %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Shard 0 is untouched.
	if err := client.Append(bgCtx, d0, "fine", d0, nil); err != nil {
		t.Fatalf("shard 0 write during shard-1 partition: %v", err)
	}

	c.Heal()
	deadline = time.Now().Add(30 * time.Second)
	for {
		err := client.Append(bgCtx, d1, "healed", d1, nil)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 1 did not reunite: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
