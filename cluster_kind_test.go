package faultdir

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindGroup:      "group",
		KindGroupNVRAM: "group+nvram",
		KindRPC:        "rpc",
		KindLocal:      "local",
		Kind(0):        "kind(0)",
		Kind(99):       "kind(99)",
	}
	for kind, want := range cases {
		if got := kind.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(kind), got, want)
		}
	}
}

func TestKindServers(t *testing.T) {
	cases := map[Kind]int{
		KindGroup:      3, // triplicated (§3)
		KindGroupNVRAM: 3, // triplicated + NVRAM (§4.1)
		KindRPC:        2, // duplicated (§1)
		KindLocal:      1, // unreplicated baseline
		Kind(99):       1,
	}
	for kind, want := range cases {
		if got := kind.Servers(); got != want {
			t.Errorf("Kind(%d).Servers() = %d, want %d", int(kind), got, want)
		}
	}
}
