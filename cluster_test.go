package faultdir

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"dirsvc/internal/capability"
	"dirsvc/internal/dirclient"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/sim"
)

// bgCtx is the unbounded context used where no deadline applies.
var bgCtx = context.Background()

const testHeartbeat = 15 * time.Millisecond

func testOptions() Options {
	return Options{
		Model:             sim.FastModel(),
		HeartbeatInterval: testHeartbeat,
	}
}

func newTestCluster(t *testing.T, kind Kind) *Cluster {
	t.Helper()
	c, err := New(kind, testOptions())
	if err != nil {
		t.Fatalf("New(%v): %v", kind, err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestAllKindsBasicOperations(t *testing.T) {
	for _, kind := range []Kind{KindGroup, KindGroupNVRAM, KindRPC, KindLocal} {
		t.Run(kind.String(), func(t *testing.T) {
			c := newTestCluster(t, kind)
			client, cleanup, err := c.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()

			root, err := client.Root(bgCtx)
			if err != nil {
				t.Fatalf("Root: %v", err)
			}
			dir, err := client.CreateDir(bgCtx)
			if err != nil {
				t.Fatalf("CreateDir: %v", err)
			}
			if err := client.Append(bgCtx, root, "projects", dir, nil); err != nil {
				t.Fatalf("Append: %v", err)
			}
			got, err := client.Lookup(bgCtx, root, "projects")
			if err != nil {
				t.Fatalf("Lookup: %v", err)
			}
			if got != dir {
				t.Fatalf("Lookup = %v, want %v", got, dir)
			}
			rows, err := client.List(bgCtx, root, 0)
			if err != nil {
				t.Fatalf("List: %v", err)
			}
			if len(rows) != 1 || rows[0].Name != "projects" {
				t.Fatalf("List = %+v", rows)
			}
			if err := client.Delete(bgCtx, root, "projects"); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if _, err := client.Lookup(bgCtx, root, "projects"); !errors.Is(err, dirsvc.ErrNotFound) {
				t.Fatalf("Lookup after delete: %v", err)
			}
			if err := client.DeleteDir(bgCtx, dir); err != nil {
				t.Fatalf("DeleteDir: %v", err)
			}
		})
	}
}

func TestAppendDuplicateNameRejected(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, _ := client.Root(bgCtx)
	target, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "dup", target, nil); err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "dup", target, nil); !errors.Is(err, dirsvc.ErrExists) {
		t.Fatalf("second append: %v, want ErrExists", err)
	}
}

func TestCapabilityRightsEnforced(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, _ := client.Root(bgCtx)
	dir, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "d", dir, nil); err != nil {
		t.Fatal(err)
	}
	readOnly, err := capability.Restrict(dir, capability.RightRead)
	if err != nil {
		t.Fatal(err)
	}
	// Read allowed, write refused.
	if _, err := client.List(bgCtx, readOnly, 0); err != nil {
		t.Fatalf("List with read-only cap: %v", err)
	}
	if err := client.Append(bgCtx, readOnly, "x", dir, nil); !errors.Is(err, capability.ErrNoRights) {
		t.Fatalf("Append with read-only cap: %v", err)
	}
	forged := dir
	forged.Check = capability.Check{1, 1, 1, 1, 1, 1}
	if _, err := client.List(bgCtx, forged, 0); !errors.Is(err, capability.ErrBadCapability) {
		t.Fatalf("List with forged cap: %v", err)
	}
}

// TestReadYourWritesAcrossServers is the §3.1 scenario: a client deletes
// a directory entry through one server and immediately reads through
// another; the read must observe the delete. We force distinct servers
// by using two clients whose port caches pick different replicas.
func TestReadYourWritesAcrossServers(t *testing.T) {
	for _, kind := range []Kind{KindGroup, KindGroupNVRAM} {
		t.Run(kind.String(), func(t *testing.T) {
			c := newTestCluster(t, kind)
			client, cleanup, err := c.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()
			root, err := client.Root(bgCtx)
			if err != nil {
				t.Fatal(err)
			}
			dir, err := client.CreateDir(bgCtx)
			if err != nil {
				t.Fatal(err)
			}
			// Hammer the same name through alternating operations; each
			// read must see the immediately preceding write regardless
			// of which server the port cache picked.
			for i := 0; i < 25; i++ {
				name := fmt.Sprintf("f%d", i)
				if err := client.Append(bgCtx, root, name, dir, nil); err != nil {
					t.Fatalf("append %d: %v", i, err)
				}
				if _, err := client.Lookup(bgCtx, root, name); err != nil {
					t.Fatalf("lookup %d after append: %v", i, err)
				}
				if err := client.Delete(bgCtx, root, name); err != nil {
					t.Fatalf("delete %d: %v", i, err)
				}
				if _, err := client.Lookup(bgCtx, root, name); !errors.Is(err, dirsvc.ErrNotFound) {
					t.Fatalf("lookup %d after delete: %v (stale read)", i, err)
				}
			}
		})
	}
}

func TestGroupSurvivesOneServerCrash(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, _ := client.Root(bgCtx)
	dir, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "before-crash", dir, nil); err != nil {
		t.Fatal(err)
	}

	c.CrashServer(2)

	// The two survivors form a majority: service continues. The client
	// may need to fail over (NOTHERE / timeouts), hence the retry loop.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := client.Append(bgCtx, root, "after-crash", dir, nil); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("append never succeeded after crash: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := client.Lookup(bgCtx, root, "before-crash"); err != nil {
		t.Fatalf("pre-crash data lost: %v", err)
	}
	if _, err := client.Lookup(bgCtx, root, "after-crash"); err != nil {
		t.Fatalf("post-crash write lost: %v", err)
	}
}

func TestGroupRecoveryAfterRestart(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, _ := client.Root(bgCtx)
	dir, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "f1", dir, nil); err != nil {
		t.Fatal(err)
	}

	c.CrashServer(3)

	// Write while server 3 is down: it misses this update.
	appendWithRetry(t, client, root, "f2", dir, 30*time.Second)

	// Restart: recovery must fetch the missed update from the majority.
	if err := c.RestartServer(3); err != nil {
		t.Fatalf("RestartServer: %v", err)
	}

	// All three servers must now answer lookups for both entries; we
	// poll the service until server 3's copy is consistent (verified by
	// sheer repetition across the port-cache heuristic).
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; ; i++ {
		_, err1 := client.Lookup(bgCtx, root, "f1")
		_, err2 := client.Lookup(bgCtx, root, "f2")
		if err1 == nil && err2 == nil && i > 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered service inconsistent: f1=%v f2=%v", err1, err2)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMinorityPartitionRefusesReads is the §3.1 partition argument: a
// server cut off from the majority must refuse even read requests,
// because the majority may delete directories it still holds.
func TestMinorityPartitionRefusesReads(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, _ := client.Root(bgCtx)
	dir, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "foo", dir, nil); err != nil {
		t.Fatal(err)
	}

	// Cut server 3 off; the client stays with the majority side.
	c.PartitionServers(3)

	// The majority side keeps serving after its reset settles.
	appendWithRetry(t, client, root, "bar", dir, 30*time.Second)

	// A client on the minority side must be refused.
	minClient, minCleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer minCleanup()
	// Place the new client's host on the minority side.
	c.Net.Partition(
		[]sim.NodeID{c.machine(3).dirNode.ID(), c.machine(3).bulletNode.ID(), lastNodeID(c)},
		otherNodes(c, 3),
	)
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, err := minClient.List(bgCtx, root, 0)
		if errors.Is(err, dirsvc.ErrNoMajority) {
			break // refused, as required
		}
		if time.Now().After(deadline) {
			t.Fatalf("minority server answered a read (err=%v), want refusal", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// After healing, the whole service reunites and serves everything.
	c.Heal()
	deadline = time.Now().Add(60 * time.Second)
	for {
		_, e1 := client.Lookup(bgCtx, root, "foo")
		_, e2 := client.Lookup(bgCtx, root, "bar")
		if e1 == nil && e2 == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service did not reunite: foo=%v bar=%v", e1, e2)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestNVRAMTmpFileOptimization(t *testing.T) {
	c, err := New(KindGroupNVRAM, Options{
		Model:             sim.FastModel(),
		HeartbeatInterval: testHeartbeat,
		IdleFlush:         time.Hour, // never flush during the test
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, _ := client.Root(bgCtx)
	dir, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "tmpdir", dir, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// Settle, then measure: append+delete pairs must cost NO disk
	// writes at any server (the paper's /tmp optimization).
	var before [3]uint64
	for i := 1; i <= 3; i++ {
		s := c.DiskStats(i)
		before[i-1] = s.Writes + s.SeqWrites
	}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("tmp%d", i)
		if err := client.Append(bgCtx, dir, name, root, nil); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := client.Delete(bgCtx, dir, name); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	for i := 1; i <= 3; i++ {
		s := c.DiskStats(i)
		if got := s.Writes + s.SeqWrites - before[i-1]; got != 0 {
			t.Fatalf("server %d: %d disk writes for cancelled pairs, want 0", i, got)
		}
	}
}

func TestNVRAMSurvivesCrash(t *testing.T) {
	c, err := New(KindGroupNVRAM, Options{
		Model:             sim.FastModel(),
		HeartbeatInterval: testHeartbeat,
		IdleFlush:         time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, _ := client.Root(bgCtx)
	dir, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "logged-only", dir, nil); err != nil {
		t.Fatal(err)
	}

	// Crash and restart server 1 before any flush: its directory state
	// must be rebuilt from NVRAM (or pulled from peers).
	c.CrashServer(1)
	if err := c.RestartServer(1); err != nil {
		t.Fatalf("restart: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := client.Lookup(bgCtx, root, "logged-only"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("entry lost after NVRAM crash-recovery")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRPCServiceSurvivesPeerCrashDegraded(t *testing.T) {
	c := newTestCluster(t, KindRPC)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, _ := client.Root(bgCtx)
	dir, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "pre", dir, nil); err != nil {
		t.Fatal(err)
	}
	c.CrashServer(2)
	// The RPC service continues alone (degraded, §1 semantics).
	appendWithRetry(t, client, root, "post", dir, 30*time.Second)
	if _, err := client.Lookup(bgCtx, root, "post"); err != nil {
		t.Fatalf("lookup after degraded append: %v", err)
	}
}

func TestGroupNoMajorityRefusesUpdates(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, _ := client.Root(bgCtx)
	dir, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	// Crash two of three servers: no majority anywhere.
	c.CrashServer(2)
	c.CrashServer(3)
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := client.Append(bgCtx, root, "nope", dir, nil)
		if errors.Is(err, dirsvc.ErrNoMajority) {
			return // refused, as required
		}
		if err == nil {
			t.Fatal("update accepted without a majority")
		}
		if time.Now().After(deadline) {
			t.Fatalf("last error: %v, want ErrNoMajority", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// appendWithRetry retries an append until the service accepts it — used
// right after crashes and partitions, while resets and client failover
// are still settling.
func appendWithRetry(t *testing.T, client *dirclient.Client, parent capability.Capability, name string, target capability.Capability, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		err := client.Append(bgCtx, parent, name, target, nil)
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("append %q never succeeded: %v", name, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func lastNodeID(c *Cluster) sim.NodeID {
	nodes := c.Net.Nodes()
	return nodes[len(nodes)-1].ID()
}

func otherNodes(c *Cluster, excludeServer int) []sim.NodeID {
	m := c.machine(excludeServer)
	skip := map[sim.NodeID]bool{
		m.dirNode.ID():    true,
		m.bulletNode.ID(): true,
		lastNodeID(c):     true,
	}
	var out []sim.NodeID
	for _, nd := range c.Net.Nodes() {
		if !skip[nd.ID()] {
			out = append(out, nd.ID())
		}
	}
	return out
}

// TestImprovementAllowsStayedUpRecovery reproduces the §3.2 scenario:
// servers 1,2,3 up; 3 crashes; {1,2} rebuild; 2 crashes. Server 1 never
// failed. When 3 restarts, plain Skeen refuses ({1,3} does not cover the
// last set {1,2}), but the paper's improvement allows recovery because
// the stayed-up server 1 holds the highest sequence number.
func TestImprovementAllowsStayedUpRecovery(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, _ := client.Root(bgCtx)
	dir, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "f1", dir, nil); err != nil {
		t.Fatal(err)
	}

	c.CrashServer(3)
	// {1,2} rebuild and perform another update so their config vectors
	// read 110 and their seqnos exceed server 3's.
	appendWithRetry(t, client, root, "f2", dir, 30*time.Second)

	c.CrashServer(2)
	// Server 1 alone: minority, refuses service, but stays up.
	// Restart 3: with the improvement, {1,3} must recover.
	if err := c.RestartServer(3); err != nil {
		t.Fatalf("restart 3: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, e1 := client.Lookup(bgCtx, root, "f1")
		_, e2 := client.Lookup(bgCtx, root, "f2")
		if e1 == nil && e2 == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("{1,3} did not recover via the improvement: f1=%v f2=%v", e1, e2)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStrictSkeenRefusesWithoutLastServer is the §3.2 counterpart with
// the improvement disabled: {1,3} must keep refusing service because
// server 2 may have performed the latest update. (Here server 1 crashed
// too, so the improvement would not apply either; the strict rule is
// what keeps the pair down.)
func TestStrictSkeenRefusesWithoutLastServer(t *testing.T) {
	c, err := New(KindGroup, Options{
		Model:              sim.FastModel(),
		HeartbeatInterval:  testHeartbeat,
		DisableImprovement: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, _ := client.Root(bgCtx)
	dir, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "f1", dir, nil); err != nil {
		t.Fatal(err)
	}

	// 3 crashes; {1,2} rebuild (vectors 110) and update.
	c.CrashServer(3)
	appendWithRetry(t, client, root, "f2", dir, 30*time.Second)
	// 1 and 2 crash; restart 1 and 3. Their union {1,3} does not cover
	// the last set {1,2}: strict Skeen must refuse to serve. Recovery
	// blocks until it succeeds, so the restarts run asynchronously.
	c.CrashServer(1)
	c.CrashServer(2)
	restartErrs := make(chan error, 2)
	go func() { restartErrs <- c.RestartServer(1) }()
	go func() { restartErrs <- c.RestartServer(3) }()
	// Give recovery ample time; every read must keep failing.
	time.Sleep(2 * time.Second)
	if _, err := client.Lookup(bgCtx, root, "f1"); err == nil {
		t.Fatal("{1,3} served a read although server 2 may hold the latest update")
	}

	// Restart 2: now the last set is covered and service resumes with
	// the latest data.
	if err := c.RestartServer(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-restartErrs; err != nil {
			t.Fatalf("async restart: %v", err)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, e1 := client.Lookup(bgCtx, root, "f1")
		_, e2 := client.Lookup(bgCtx, root, "f2")
		if e1 == nil && e2 == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service did not resume after server 2 returned: f1=%v f2=%v", e1, e2)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSimultaneousRestartSyncsFromHighest: server 3 misses an update;
// then servers 1 and 2 also crash; all three restart together. The
// recovering servers must compare disk-derived sequence numbers and pull
// from whichever survivor is ahead — a fresh process's in-memory counter
// says nothing (regression test for the exchange advertising logic).
func TestSimultaneousRestartSyncsFromHighest(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, _ := client.Root(bgCtx)
	dir, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "f1", dir, nil); err != nil {
		t.Fatal(err)
	}
	c.CrashServer(3)
	appendWithRetry(t, client, root, "f2", dir, 30*time.Second) // 3 misses this
	c.CrashServer(1)
	c.CrashServer(2)

	restartErrs := make(chan error, 3)
	for id := 1; id <= 3; id++ {
		go func(id int) { restartErrs <- c.RestartServer(id) }(id)
	}
	for i := 0; i < 3; i++ {
		if err := <-restartErrs; err != nil {
			t.Fatalf("restart: %v", err)
		}
	}
	// Every server must now hold both entries; hammer lookups so the
	// port cache visits all three.
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; ; i++ {
		_, e1 := client.Lookup(bgCtx, root, "f1")
		_, e2 := client.Lookup(bgCtx, root, "f2")
		if e1 == nil && e2 == nil && i > 30 {
			return
		}
		if e1 != nil || e2 != nil {
			i = 0 // a stale replica answered: keep hammering
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale state after simultaneous restart: f1=%v f2=%v", e1, e2)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestForceRecoverEscapeHatch covers the §3.1 administrator escape: with
// two of three servers gone for good, the survivor normally refuses all
// requests; after ForceRecover it serves alone.
func TestForceRecoverEscapeHatch(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, _ := client.Root(bgCtx)
	dir, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "precious", dir, nil); err != nil {
		t.Fatal(err)
	}
	// Two head crashes: servers 2 and 3 are gone forever.
	c.CrashServer(2)
	c.CrashServer(3)

	// Without the escape, the survivor refuses.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, err := client.Lookup(bgCtx, root, "precious")
		if errors.Is(err, dirsvc.ErrNoMajority) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivor answered without a majority: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The administrator forces it up.
	if err := c.ForceRecover(1); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		if _, err := client.Lookup(bgCtx, root, "precious"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("forced server never served")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := client.Append(bgCtx, root, "post-force", dir, nil); err != nil {
		t.Fatalf("forced server refused an update: %v", err)
	}
}

// TestDirectoryDeletionSurvivesFullRestart exercises the reason the
// commit block carries a sequence number (§3, Fig. 4): when a directory
// is deleted, its per-directory record disappears, so the deletion must
// be remembered in the commit block — otherwise recovery after a full
// restart could resurrect it from a stale replica.
func TestDirectoryDeletionSurvivesFullRestart(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	root, _ := client.Root(bgCtx)
	dir, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, root, "doomed", dir, nil); err != nil {
		t.Fatal(err)
	}
	if err := client.Delete(bgCtx, root, "doomed"); err != nil {
		t.Fatal(err)
	}
	if err := client.DeleteDir(bgCtx, dir); err != nil {
		t.Fatal(err)
	}

	// Full service restart.
	for id := 1; id <= 3; id++ {
		c.CrashServer(id)
	}
	restartErrs := make(chan error, 3)
	for id := 1; id <= 3; id++ {
		go func(id int) { restartErrs <- c.RestartServer(id) }(id)
	}
	for i := 0; i < 3; i++ {
		if err := <-restartErrs; err != nil {
			t.Fatalf("restart: %v", err)
		}
	}
	// The deleted directory must stay deleted at every replica.
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; ; i++ {
		_, err := client.List(bgCtx, dir, 0)
		if errors.Is(err, dirsvc.ErrNotFound) || errors.Is(err, capability.ErrBadCapability) {
			if i > 20 {
				return
			}
		} else if err == nil {
			t.Fatal("deleted directory resurrected after full restart")
		} else {
			i = 0 // transient (recovery still settling)
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never settled: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestColumnVisibilityEndToEnd covers the protection-domain columns of
// §2: a capability restricted to read rights sees rows through the
// "other" column's masks, with hidden rows filtered out.
func TestColumnVisibilityEndToEnd(t *testing.T) {
	c := newTestCluster(t, KindGroup)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	dir, err := client.CreateDir(bgCtx) // columns: owner, group, other
	if err != nil {
		t.Fatal(err)
	}
	target, err := client.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	// "public" is visible to everyone read-only; "secret" has no rights
	// in the third column and must be invisible there.
	if err := client.Append(bgCtx, dir, "public", target,
		[]capability.Rights{capability.AllRights, capability.RightRead, capability.RightRead}); err != nil {
		t.Fatal(err)
	}
	if err := client.Append(bgCtx, dir, "secret", target,
		[]capability.Rights{capability.AllRights, capability.AllRights, 0}); err != nil {
		t.Fatal(err)
	}

	// Owner column: both rows, full rights on "secret".
	rows, err := client.List(bgCtx, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("owner sees %d rows, want 2", len(rows))
	}
	// Third column: only "public", and its capability is restricted.
	rows, err = client.List(bgCtx, dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Name != "public" {
		t.Fatalf("other column sees %+v, want only public", rows)
	}
	if rows[0].Cap.Rights != capability.RightRead {
		t.Fatalf("other column rights = %v, want read-only", rows[0].Cap.Rights)
	}
}
