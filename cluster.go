// Package faultdir is the public facade of the fault-tolerant directory
// service reproduction: it assembles complete simulated clusters — group
// (triplicated, paper §3), group+NVRAM (§4.1), RPC-duplicated (§1), and
// an unreplicated SunOS/NFS-like baseline (§4.1) — and exposes clients
// and fault injection (crashes, restarts, partitions).
//
// Every cluster follows the paper's Fig. 3 machine layout: each directory
// server has its own Bullet file server, and the two share one physical
// disk (the admin partition for the commit block and object table, the
// rest for Bullet files).
//
// A cluster may be sharded (Options.Shards): the directory object space
// is partitioned across G independent replica groups, each a full
// N-replica instance of the paper's protocol with its own commit block,
// object table, NVRAM log, group stream, and recovery. Requests route to
// the shard owning the directory's object number (dir.ShardOf); faults
// are per shard — losing a majority in one shard leaves every other
// shard serving.
package faultdir

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dirsvc/dir"
	"dirsvc/internal/bullet"
	"dirsvc/internal/core"
	"dirsvc/internal/dirclient"
	"dirsvc/internal/dirsvc"
	"dirsvc/internal/flip"
	"dirsvc/internal/localdir"
	"dirsvc/internal/rpc"
	"dirsvc/internal/rpcdir"
	"dirsvc/internal/sim"
	"dirsvc/internal/vdisk"
)

// Kind selects the directory service implementation.
type Kind int

// The four configurations of the paper's Fig. 7.
const (
	KindGroup      Kind = iota + 1 // triplicated, group communication (§3)
	KindGroupNVRAM                 // group communication + NVRAM log (§4.1)
	KindRPC                        // duplicated, RPC + intentions (§1)
	KindLocal                      // unreplicated SunOS/NFS-like baseline
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindGroup:
		return "group"
	case KindGroupNVRAM:
		return "group+nvram"
	case KindRPC:
		return "rpc"
	case KindLocal:
		return "local"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Servers returns the replication degree the paper used for this kind.
func (k Kind) Servers() int {
	switch k {
	case KindGroup, KindGroupNVRAM:
		return 3
	case KindRPC:
		return 2
	default:
		return 1
	}
}

// Options tune cluster construction.
type Options struct {
	// Model is the latency model (default sim.FastModel; benchmarks use
	// sim.PaperModel).
	Model *sim.LatencyModel
	// Servers overrides the per-shard replication degree (0 → the
	// paper's).
	Servers int
	// Shards is the number of independent replica groups the directory
	// object space is partitioned across (default 1 — the paper's single
	// service). Each shard is a complete N-replica instance of the
	// protocol; shard s owns the object numbers ≡ s+1 (mod Shards).
	Shards int
	// ActiveShards is the number of shards serving traffic at epoch zero;
	// the remaining Shards-ActiveShards groups are booted as reserve
	// targets for online splits (dirclient.Client.SplitAndMigrate). Zero
	// means all Shards are active — the pre-elastic behavior.
	ActiveShards int
	// Workers is the number of server threads per directory server.
	Workers int
	// Resilience overrides the group resilience degree r (default N-1).
	Resilience int
	// DiskBlocks sizes each machine's disk (default 4096).
	DiskBlocks int
	// Seed drives loss injection in the simulated network.
	Seed int64
	// HeartbeatInterval tunes failure detection (tests).
	HeartbeatInterval time.Duration
	// DisableImprovement switches off the §3.2 recovery refinement.
	DisableImprovement bool
	// DisableReadMajorityCheck lets reads bypass the majority rule
	// (ablation: recreates the §3.1 anomaly).
	DisableReadMajorityCheck bool
	// NVRAMSize sizes the NVRAM region (default 24 KB, as in §4.1).
	NVRAMSize int
	// DiskEngine puts the disk-backed storage engine under the group
	// kinds: each replica carves an engine partition (checkpoints + a
	// write-ahead log) from its disk, applies go to RAM with the log as
	// the critical-path durability, and recovery is checkpoint + log
	// suffix instead of a full replay. For plain KindGroup this also
	// closes the whole-shard-crash 2PC window (prepares and decides hit
	// the log before the reply); for KindGroupNVRAM the NVRAM log stays
	// the critical path and checkpoints replace the background flush.
	// Engine partitions also feed readonly secondaries (StartSecondary).
	DiskEngine bool
	// EngineBlocks sizes each replica's engine partition when DiskEngine
	// is set (default DiskBlocks/4).
	EngineBlocks int
	// IdleFlush tunes the NVRAM flush idle threshold.
	IdleFlush time.Duration
	// ClientCache configures the read cache of every client the cluster
	// creates (NewClient). The zero value — cache off — is the paper's
	// original client behavior. See dir.CacheOptions.
	ClientCache dir.CacheOptions
	// ReadBalance makes every client the cluster creates spread its
	// reads across all replicas of a shard (session-consistent via
	// Request.MinSeq) instead of pinning to the first HEREIS responder.
	// Off — the default — preserves the paper's §4.2 selection heuristic
	// and Fig. 8's load skew.
	ReadBalance bool
	// TxAbortTimeout is the presumed-abort horizon for cross-shard
	// transactions: a prepared transaction left undecided this long is
	// resolved by the shards themselves, whatever the cluster kind
	// (fault injection tests shrink it). Zero means a model-scaled
	// default.
	TxAbortTimeout time.Duration
	// LeaseTTL bounds a client's watch/cache lease without renewal
	// (tests shrink it). Zero means a model-scaled default.
	LeaseTTL time.Duration
	// EventLogSize bounds each server's event log — the window of
	// committed updates replayable to reconnecting watchers (tests
	// shrink it to force resyncs). Zero means the dirsvc default.
	EventLogSize int
}

// adminBlocks is the admin partition size: commit block + object table.
const adminBlocks = 1 + 16

// machine is one replica's hardware: a directory server host and a
// Bullet server host sharing one disk.
type machine struct {
	id          int
	disk        *vdisk.Disk
	admin       *vdisk.Partition
	staging     *vdisk.Partition
	enginePart  *vdisk.Partition // storage engine region (Options.DiskEngine)
	bulletPart  *vdisk.Partition
	nvram       *vdisk.NVRAM
	dirNode     *sim.Node
	dirStack    *flip.Stack
	bulletNode  *sim.Node
	bulletStack *flip.Stack
	bulletSrv   *bullet.Server

	mu   sync.Mutex
	stop func()       // closes the directory server process
	core *core.Server // set for group kinds (admin operations)
}

// shardGroup is one independent replica group: a full instance of the
// paper's service owning one residue class of the object-number space.
type shardGroup struct {
	index    int
	service  string // shard-local service name (ports derive from it)
	machines []*machine
}

// Cluster is a complete simulated deployment of one directory service.
type Cluster struct {
	Kind    Kind
	Net     *sim.Network
	Service string

	opts   Options
	shards []*shardGroup

	mu         sync.Mutex
	clients    []func()
	dirClients []*dirclient.Client
}

var clusterSeq int

// New builds and boots a cluster of the given kind.
func New(kind Kind, opts Options) (*Cluster, error) {
	if opts.Model == nil {
		opts.Model = sim.FastModel()
	}
	if opts.Servers == 0 {
		opts.Servers = kind.Servers()
	}
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.DiskBlocks == 0 {
		opts.DiskBlocks = 4096
	}
	if opts.NVRAMSize == 0 {
		opts.NVRAMSize = vdisk.DefaultNVRAMSize
	}
	clusterSeq++
	c := &Cluster{
		Kind:    kind,
		Net:     sim.NewNetwork(opts.Model, opts.Seed),
		Service: fmt.Sprintf("%s-%d", kind, clusterSeq),
		opts:    opts,
	}

	n := opts.Servers
	for s := 0; s < opts.Shards; s++ {
		sg := &shardGroup{
			index:   s,
			service: dirsvc.ShardService(c.Service, s, opts.Shards),
		}
		c.shards = append(c.shards, sg)
		for i := 1; i <= n; i++ {
			m, err := c.buildMachine(sg, i)
			if err != nil {
				c.Close()
				return nil, err
			}
			sg.machines = append(sg.machines, m)
		}
	}

	// Boot every directory server of every shard concurrently: each
	// group service's recovery protocol needs a majority to assemble.
	errs := make(chan error, opts.Shards*n)
	total := 0
	for _, sg := range c.shards {
		for _, m := range sg.machines {
			total++
			go func(sg *shardGroup, m *machine) { errs <- c.bootServer(sg, m) }(sg, m)
		}
	}
	for i := 0; i < total; i++ {
		if err := <-errs; err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// engineEnabled reports whether this deployment carves storage-engine
// partitions (group kinds only; the RPC and local kinds keep their
// intention/write-through durability).
func (c *Cluster) engineEnabled() bool {
	return c.opts.DiskEngine && (c.Kind == KindGroup || c.Kind == KindGroupNVRAM)
}

// Shards returns the number of replica groups in the deployment.
func (c *Cluster) Shards() int { return len(c.shards) }

// ServersPerShard returns the replication degree of each shard.
func (c *Cluster) ServersPerShard() int { return c.opts.Servers }

// nodeName labels a simulated host; single-shard deployments keep the
// historical names.
func (c *Cluster) nodeName(prefix string, shard, id int) string {
	if c.opts.Shards <= 1 {
		return fmt.Sprintf("%s-%d", prefix, id)
	}
	return fmt.Sprintf("%s-s%d-%d", prefix, shard, id)
}

// buildMachine creates the hardware and the Bullet server of replica id
// of one shard.
func (c *Cluster) buildMachine(sg *shardGroup, id int) (*machine, error) {
	m := &machine{id: id}
	m.disk = vdisk.New(c.opts.Model, c.opts.DiskBlocks)
	var err error
	if m.admin, err = vdisk.NewPartition(m.disk, 0, adminBlocks); err != nil {
		return nil, err
	}
	if m.staging, err = vdisk.NewPartition(m.disk, adminBlocks, 1); err != nil {
		return nil, err
	}
	bulletStart := adminBlocks + 1
	if c.engineEnabled() {
		engBlocks := c.opts.EngineBlocks
		if engBlocks <= 0 {
			engBlocks = c.opts.DiskBlocks / 4
		}
		if m.enginePart, err = vdisk.NewPartition(m.disk, bulletStart, engBlocks); err != nil {
			return nil, err
		}
		bulletStart += engBlocks
	}
	if m.bulletPart, err = vdisk.NewPartition(m.disk, bulletStart, c.opts.DiskBlocks-bulletStart); err != nil {
		return nil, err
	}
	if c.Kind == KindGroupNVRAM {
		m.nvram = vdisk.NewNVRAM(c.opts.Model, c.opts.NVRAMSize)
	}

	m.bulletNode = c.Net.AddNode(c.nodeName("bullet", sg.index, id))
	m.bulletStack = flip.NewStack(m.bulletNode)
	store, err := bullet.NewStore(dirsvc.BulletPort(sg.service, id), m.bulletPart)
	if err != nil {
		return nil, err
	}
	m.bulletSrv, err = bullet.NewServer(m.bulletStack, store, 2,
		dirsvc.BulletPort(sg.service, id), dirsvc.PublicBulletPort(sg.service))
	if err != nil {
		return nil, err
	}

	m.dirNode = c.Net.AddNode(c.nodeName("dir", sg.index, id))
	return m, nil
}

// bootServer starts the directory server process on machine m of shard sg.
func (c *Cluster) bootServer(sg *shardGroup, m *machine) error {
	m.dirStack = flip.NewStack(m.dirNode)
	switch c.Kind {
	case KindGroup, KindGroupNVRAM:
		peers := make(map[int]sim.NodeID, len(sg.machines))
		for _, mm := range sg.machines {
			peers[mm.id] = mm.dirNode.ID()
		}
		var engine *dirsvc.Engine
		if m.enginePart != nil {
			// Reopen across restarts: the partition's manifest carries the
			// surviving checkpoint and log.
			var err error
			if engine, err = dirsvc.OpenEngine(m.enginePart); err != nil {
				return fmt.Errorf("open engine (server %d, shard %d): %w", m.id, sg.index, err)
			}
		}
		srv, err := core.NewServer(m.dirStack, core.Config{
			Service:                  sg.service,
			BaseService:              c.Service,
			ID:                       m.id,
			N:                        c.opts.Servers,
			Shard:                    sg.index,
			Shards:                   c.opts.Shards,
			ActiveShards:             c.opts.ActiveShards,
			TxAbortTimeout:           c.opts.TxAbortTimeout,
			Peers:                    peers,
			Admin:                    m.admin,
			NVRAM:                    m.nvram,
			Engine:                   engine,
			Workers:                  c.opts.Workers,
			Resilience:               c.opts.Resilience,
			DisableImprovement:       c.opts.DisableImprovement,
			DisableReadMajorityCheck: c.opts.DisableReadMajorityCheck,
			HeartbeatInterval:        c.opts.HeartbeatInterval,
			IdleFlush:                c.opts.IdleFlush,
			LeaseTTL:                 c.opts.LeaseTTL,
			EventLogSize:             c.opts.EventLogSize,
		})
		if err != nil {
			return fmt.Errorf("boot group server %d (shard %d): %w", m.id, sg.index, err)
		}
		m.mu.Lock()
		m.stop = srv.Close
		m.core = srv
		m.mu.Unlock()
	case KindRPC:
		srv, err := rpcdir.NewServer(m.dirStack, rpcdir.Config{
			Service:        sg.service,
			BaseService:    c.Service,
			ID:             m.id,
			Admin:          m.admin,
			Staging:        m.staging,
			Workers:        c.opts.Workers,
			Shard:          sg.index,
			Shards:         c.opts.Shards,
			ActiveShards:   c.opts.ActiveShards,
			TxAbortTimeout: c.opts.TxAbortTimeout,
			LeaseTTL:       c.opts.LeaseTTL,
			EventLogSize:   c.opts.EventLogSize,
		})
		if err != nil {
			return fmt.Errorf("boot rpc server %d (shard %d): %w", m.id, sg.index, err)
		}
		m.mu.Lock()
		m.stop = srv.Close
		m.mu.Unlock()
	case KindLocal:
		srv, err := localdir.NewServer(m.dirStack, localdir.Config{
			Service:        sg.service,
			BaseService:    c.Service,
			Admin:          m.admin,
			Workers:        c.opts.Workers,
			Shard:          sg.index,
			Shards:         c.opts.Shards,
			ActiveShards:   c.opts.ActiveShards,
			TxAbortTimeout: c.opts.TxAbortTimeout,
			LeaseTTL:       c.opts.LeaseTTL,
			EventLogSize:   c.opts.EventLogSize,
		})
		if err != nil {
			return fmt.Errorf("boot local server (shard %d): %w", sg.index, err)
		}
		m.mu.Lock()
		m.stop = srv.Close
		m.mu.Unlock()
	default:
		return errors.New("faultdir: unknown cluster kind")
	}
	return nil
}

// NewClient creates a directory client on a fresh client host, routing
// across every shard of the deployment, with the read cache configured
// by Options.ClientCache. The returned cleanup releases the client's
// resources.
func (c *Cluster) NewClient() (*dirclient.Client, func(), error) {
	return c.NewCachedClient(c.opts.ClientCache)
}

// NewCachedClient creates a directory client with an explicit read-cache
// configuration, overriding Options.ClientCache (see dir.CacheOptions;
// the zero value disables the cache). Read balancing follows
// Options.ReadBalance.
func (c *Cluster) NewCachedClient(opts dir.CacheOptions) (*dirclient.Client, func(), error) {
	return c.NewBalancedClient(opts, c.opts.ReadBalance)
}

// NewBalancedClient creates a directory client with explicit read-cache
// and read-balancing configuration, overriding the cluster options.
func (c *Cluster) NewBalancedClient(cache dir.CacheOptions, balance bool) (*dirclient.Client, func(), error) {
	stack := flip.NewStack(c.Net.AddNode("client"))
	client, err := dirclient.NewWithOptions(stack, c.Service, dirclient.Options{
		Shards:       c.opts.Shards,
		ActiveShards: c.opts.ActiveShards,
		Cache:        cache,
		ReadBalance:  balance,
	})
	if err != nil {
		stack.Close()
		return nil, nil, err
	}
	cleanup := func() {
		client.Close()
		stack.Close()
	}
	c.mu.Lock()
	c.clients = append(c.clients, cleanup)
	c.dirClients = append(c.dirClients, client)
	c.mu.Unlock()
	return client, cleanup, nil
}

// CacheStats sums the read-cache counters over every client the cluster
// has created (zero when caching is disabled everywhere).
func (c *Cluster) CacheStats() dir.CacheStats {
	c.mu.Lock()
	clients := append([]*dirclient.Client(nil), c.dirClients...)
	c.mu.Unlock()
	var total dir.CacheStats
	for _, cl := range clients {
		s := cl.CacheStats()
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.Invalidations += s.Invalidations
		total.Evictions += s.Evictions
	}
	return total
}

// NewFileClient creates a Bullet client on the public file-service port
// (the paper's tmp-file workload), sharing the directory client's host.
// Files are served by shard 0's Bullet servers; file storage is not
// sharded.
func (c *Cluster) NewFileClient(dc *dirclient.Client) *bullet.Client {
	return bullet.NewClient(dc.RPC(), dirsvc.PublicBulletPort(c.Service))
}

// StartSecondary boots a readonly secondary instance for one shard, fed
// from replica id's storage-engine partition (checkpoint + log tail): it
// answers balanced reads on the shard's service port — announcing itself
// read-only on HEREIS, so clients route updates elsewhere — but holds no
// vote and grants no leases. Requires Options.DiskEngine. The returned
// cleanup shuts the instance down; Cluster.Close also covers it.
func (c *Cluster) StartSecondary(shard, id int) (*core.Secondary, func(), error) {
	sg := c.shard(shard)
	m := c.shardMachine(shard, id)
	if m.enginePart == nil {
		return nil, nil, errors.New("faultdir: secondaries need Options.DiskEngine")
	}
	view, err := dirsvc.NewEngineView(m.enginePart)
	if err != nil {
		return nil, nil, err
	}
	node := c.Net.AddNode(c.nodeName("sec", shard, id))
	stack := flip.NewStack(node)
	// The scratch disk backs only the object-table mirror; it is never a
	// durability source.
	scratch := vdisk.New(c.opts.Model, adminBlocks)
	admin, err := vdisk.NewPartition(scratch, 0, adminBlocks)
	if err != nil {
		stack.Close()
		return nil, nil, err
	}
	sec, err := core.NewSecondary(stack, core.SecondaryConfig{
		Service:      sg.service,
		BaseService:  c.Service,
		Shard:        sg.index,
		Shards:       c.opts.Shards,
		ActiveShards: c.opts.ActiveShards,
		View:         view,
		Admin:        admin,
		Workers:      c.opts.Workers,
	})
	if err != nil {
		stack.Close()
		return nil, nil, err
	}
	cleanup := func() {
		sec.Close()
		stack.Close()
	}
	c.mu.Lock()
	c.clients = append(c.clients, cleanup)
	c.mu.Unlock()
	return sec, cleanup, nil
}

// CheckpointShard forces a synchronous storage-engine checkpoint on
// every live replica of one shard (tests and the benchmark harness; the
// background flush loop cuts checkpoints on its own). A no-op for
// deployments without Options.DiskEngine.
func (c *Cluster) CheckpointShard(shard int) error {
	for _, m := range c.shard(shard).machines {
		m.mu.Lock()
		srv := m.core
		if m.stop == nil {
			srv = nil // crashed: its engine partition stays as-is
		}
		m.mu.Unlock()
		if srv == nil {
			continue
		}
		if err := srv.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// ShardServerStatus returns a group server's status snapshot —
// including the storage-engine fields when Options.DiskEngine is set.
// ok is false for crashed servers and for kinds without a core server.
func (c *Cluster) ShardServerStatus(shard, id int) (core.Status, bool) {
	m := c.shardMachine(shard, id)
	m.mu.Lock()
	srv := m.core
	if m.stop == nil {
		srv = nil
	}
	m.mu.Unlock()
	if srv == nil {
		return core.Status{}, false
	}
	return srv.Status(), true
}

// NewRawClient returns an RPC client on a fresh host (harness use).
func (c *Cluster) NewRawClient() (*rpc.Client, func(), error) {
	stack := flip.NewStack(c.Net.AddNode("client"))
	rc, err := rpc.NewClient(stack)
	if err != nil {
		stack.Close()
		return nil, nil, err
	}
	cleanup := func() {
		rc.Close()
		stack.Close()
	}
	c.mu.Lock()
	c.clients = append(c.clients, cleanup)
	c.mu.Unlock()
	return rc, cleanup, nil
}

// CrashServer fail-stops directory server id of shard 0 (its Bullet
// server and disk keep running, per the paper's separate-machine
// layout).
func (c *Cluster) CrashServer(id int) { c.CrashShardServer(0, id) }

// CrashShardServer fail-stops directory server id of the given shard.
func (c *Cluster) CrashShardServer(shard, id int) {
	m := c.shardMachine(shard, id)
	m.mu.Lock()
	stop := m.stop
	m.stop = nil
	m.mu.Unlock()
	m.dirNode.Crash()
	if stop != nil {
		stop()
	}
}

// CrashMachine fail-stops both the directory server and its Bullet
// server of shard 0 (whole-replica failure). Disk contents survive.
func (c *Cluster) CrashMachine(id int) {
	c.CrashShardServer(0, id)
	c.shardMachine(0, id).bulletNode.Crash()
}

// RestartServer reboots directory server id of shard 0 from its
// surviving disk (and NVRAM). For the group service this runs the
// Fig. 6 recovery protocol before the server accepts requests again.
func (c *Cluster) RestartServer(id int) error { return c.RestartShardServer(0, id) }

// RestartShardServer reboots directory server id of the given shard.
func (c *Cluster) RestartShardServer(shard, id int) error {
	sg := c.shard(shard)
	m := c.shardMachine(shard, id)
	if m.bulletNode.Crashed() {
		if err := c.restartBullet(sg, m); err != nil {
			return err
		}
	}
	m.dirNode.Restart()
	return c.bootServer(sg, m)
}

func (c *Cluster) restartBullet(sg *shardGroup, m *machine) error {
	m.bulletNode.Restart()
	m.bulletStack = flip.NewStack(m.bulletNode)
	store, err := bullet.OpenStore(dirsvc.BulletPort(sg.service, m.id), m.bulletPart)
	if err != nil {
		return err
	}
	m.bulletSrv, err = bullet.NewServer(m.bulletStack, store, 2,
		dirsvc.BulletPort(sg.service, m.id), dirsvc.PublicBulletPort(sg.service))
	return err
}

// PartitionServers splits the network: the shard-0 machines (directory +
// Bullet hosts) of the given server ids on one side, everything else —
// other replicas and all clients — on the other.
func (c *Cluster) PartitionServers(ids ...int) { c.PartitionShardServers(0, ids...) }

// PartitionShardServers splits the network with the given servers of one
// shard on the minority side.
func (c *Cluster) PartitionShardServers(shard int, ids ...int) {
	inGroup := make(map[int]bool, len(ids))
	for _, id := range ids {
		inGroup[id] = true
	}
	var side, rest []sim.NodeID
	taken := make(map[sim.NodeID]bool)
	for _, m := range c.shard(shard).machines {
		if inGroup[m.id] {
			side = append(side, m.dirNode.ID(), m.bulletNode.ID())
			taken[m.dirNode.ID()] = true
			taken[m.bulletNode.ID()] = true
		}
	}
	for _, nd := range c.Net.Nodes() {
		if !taken[nd.ID()] {
			rest = append(rest, nd.ID())
		}
	}
	c.Net.Partition(side, rest)
}

// Heal removes any partition.
func (c *Cluster) Heal() { c.Net.Heal() }

// ForceRecover invokes the administrator escape hatch on a group
// directory server of shard 0 (§3.1): it will serve — and recover —
// without a majority, abandoning the partition guarantee. Only valid for
// group cluster kinds.
func (c *Cluster) ForceRecover(id int) error { return c.ForceRecoverShard(0, id) }

// ForceRecoverShard invokes ForceRecover on a server of the given shard.
func (c *Cluster) ForceRecoverShard(shard, id int) error {
	m := c.shardMachine(shard, id)
	m.mu.Lock()
	srv := m.core
	m.mu.Unlock()
	if srv == nil {
		return fmt.Errorf("faultdir: server %d of shard %d is not a group directory server", id, shard)
	}
	srv.ForceRecover()
	return nil
}

// GroupSends returns the total number of write-path group broadcasts the
// cluster's directory servers have issued so far, summed over every
// shard. Zero for non-group kinds. Batching and coalescing make this
// grow far slower than the update count — the measurement behind the
// batch benchmark.
func (c *Cluster) GroupSends() uint64 {
	var total uint64
	for _, sg := range c.shards {
		for _, m := range sg.machines {
			m.mu.Lock()
			srv := m.core
			m.mu.Unlock()
			if srv != nil {
				total += srv.GroupSends()
			}
		}
	}
	return total
}

// ShardReadCounts returns the number of read operations each replica of
// one shard has served, keyed by server id — the per-server load
// distribution behind Fig. 8 and the read-balancing experiments. Only
// group-kind replicas count reads; other kinds yield an empty map.
func (c *Cluster) ShardReadCounts(shard int) map[int]uint64 {
	out := make(map[int]uint64)
	for _, m := range c.shard(shard).machines {
		m.mu.Lock()
		srv := m.core
		m.mu.Unlock()
		if srv != nil {
			out[m.id] = srv.ReadsServed()
		}
	}
	return out
}

// DiskStats returns the disk statistics of replica id of shard 0.
func (c *Cluster) DiskStats(id int) vdisk.Stats { return c.shardMachine(0, id).disk.Stats() }

// ShardDiskStats returns the disk statistics of replica id of a shard.
func (c *Cluster) ShardDiskStats(shard, id int) vdisk.Stats {
	return c.shardMachine(shard, id).disk.Stats()
}

func (c *Cluster) shard(s int) *shardGroup {
	if s < 0 || s >= len(c.shards) {
		panic(fmt.Sprintf("faultdir: no shard %d", s))
	}
	return c.shards[s]
}

// machine returns replica id of shard 0 (tests).
func (c *Cluster) machine(id int) *machine { return c.shardMachine(0, id) }

func (c *Cluster) shardMachine(shard, id int) *machine {
	for _, m := range c.shard(shard).machines {
		if m.id == id {
			return m
		}
	}
	panic(fmt.Sprintf("faultdir: no machine %d in shard %d", id, shard))
}

// Close tears the whole cluster down.
func (c *Cluster) Close() {
	c.mu.Lock()
	clients := c.clients
	c.clients = nil
	c.mu.Unlock()
	for _, cleanup := range clients {
		cleanup()
	}
	for _, sg := range c.shards {
		for _, m := range sg.machines {
			m.mu.Lock()
			stop := m.stop
			m.stop = nil
			m.mu.Unlock()
			if stop != nil {
				stop()
			}
			if m.dirStack != nil {
				m.dirStack.Close()
			}
			if m.bulletSrv != nil {
				m.bulletSrv.Close()
			}
			if m.bulletStack != nil {
				m.bulletStack.Close()
			}
		}
	}
}
