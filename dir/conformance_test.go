// Conformance suite: the same dir.Directory scenarios run against all
// four cluster kinds (the paper's Fig. 7 configurations) at several
// shard counts, with the client read cache both off and on, proving the
// public API behaves identically whatever the replication strategy — and
// however many replica groups, and whatever the caching mode — behind
// it, including atomic batches and context cancellation.
package dir_test

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"testing"
	"time"

	faultdir "dirsvc"

	"dirsvc/dir"
	"dirsvc/internal/dirclient"
	"dirsvc/internal/rpc"
	"dirsvc/internal/sim"
)

var bgCtx = context.Background()

// -shards pins the conformance suite to a single shard count (CI runs
// the race-enabled sharded job with -shards 4); 0 runs {1, 2, 4}.
var shardsFlag = flag.Int("shards", 0, "run conformance at this shard count only (0 = {1,2,4})")

func shardCounts() []int {
	if *shardsFlag > 0 {
		return []int{*shardsFlag}
	}
	if testing.Short() {
		// The -short lane shares CPU with every other package's
		// simulated clusters; keep its load at the seed's level. CI's
		// dedicated sharded job runs -shards=4 race-enabled on this
		// package alone, and the plain `go test ./...` tier runs the
		// full {1,2,4} matrix.
		return []int{1}
	}
	return []int{1, 2, 4}
}

// skipShardedInShortLane skips cluster-heavy sharded tests in the
// shared -short lane unless a shard count was pinned explicitly.
func skipShardedInShortLane(t *testing.T) {
	t.Helper()
	if testing.Short() && *shardsFlag == 0 {
		t.Skip("sharded cluster test: covered by the dedicated -shards lane and the full suite")
	}
}

var allKinds = []faultdir.Kind{
	faultdir.KindGroup, faultdir.KindGroupNVRAM, faultdir.KindRPC, faultdir.KindLocal,
}

func newShardedCluster(t *testing.T, kind faultdir.Kind, shards int) (*faultdir.Cluster, *dirclient.Client) {
	t.Helper()
	return newCachedCluster(t, kind, shards, dir.CacheOptions{})
}

func newCachedCluster(t *testing.T, kind faultdir.Kind, shards int, cache dir.CacheOptions) (*faultdir.Cluster, *dirclient.Client) {
	t.Helper()
	return newMatrixCluster(t, kind, shards, cache, false)
}

// newMatrixCluster builds one cell of the conformance matrix: kind ×
// shard count × cache mode × read-balancing mode.
func newMatrixCluster(t *testing.T, kind faultdir.Kind, shards int, cache dir.CacheOptions, balance bool) (*faultdir.Cluster, *dirclient.Client) {
	t.Helper()
	c, err := faultdir.New(kind, faultdir.Options{
		Model:             sim.FastModel(),
		HeartbeatInterval: 15 * time.Millisecond,
		Shards:            shards,
		ClientCache:       cache,
		ReadBalance:       balance,
	})
	if err != nil {
		t.Fatalf("New(%v, shards=%d): %v", kind, shards, err)
	}
	t.Cleanup(c.Close)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(cleanup)
	return c, client
}

func newCluster(t *testing.T, kind faultdir.Kind) (*faultdir.Cluster, dir.Directory) {
	t.Helper()
	c, client := newShardedCluster(t, kind, 1)
	return c, client
}

// retryDir wraps a Directory for the conformance scenarios, riding out
// the transient no-majority windows a resetting replica group exposes
// under heavy load (many simulated clusters sharing one machine, race
// detector on) the way Amoeba clients did — by retrying. Every other
// error passes through untouched, so the scenarios' sentinel-error
// assertions still bite; genuine partition semantics are asserted
// elsewhere against unwrapped clients.
type retryDir struct {
	d dir.Directory
}

// scenarioRetryable is the retry set for conformance scenarios:
// no-majority windows and transport-level losses only. Deliberately
// narrower than cache_test's transientErr — a conflict-shaped failure
// is a regression the matrix must surface, not churn to ride out.
func scenarioRetryable(err error) bool {
	return errors.Is(err, dir.ErrNoMajority) ||
		errors.Is(err, rpc.ErrTimeout) ||
		errors.Is(err, rpc.ErrNoServer)
}

func retryVal[T any](f func() (T, error)) (T, error) {
	var v T
	var err error
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err = f()
		if !scenarioRetryable(err) || time.Now().After(deadline) {
			return v, err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func retryErr(f func() error) error {
	_, err := retryVal(func() (struct{}, error) { return struct{}{}, f() })
	return err
}

func (r retryDir) Root(ctx context.Context) (dir.Capability, error) {
	return retryVal(func() (dir.Capability, error) { return r.d.Root(ctx) })
}

func (r retryDir) CreateDir(ctx context.Context, columns ...string) (dir.Capability, error) {
	return retryVal(func() (dir.Capability, error) { return r.d.CreateDir(ctx, columns...) })
}

func (r retryDir) DeleteDir(ctx context.Context, d dir.Capability) error {
	return retryErr(func() error { return r.d.DeleteDir(ctx, d) })
}

func (r retryDir) List(ctx context.Context, d dir.Capability, col int) ([]dir.Row, error) {
	return retryVal(func() ([]dir.Row, error) { return r.d.List(ctx, d, col) })
}

func (r retryDir) Append(ctx context.Context, d dir.Capability, name string, target dir.Capability, masks []dir.Rights) error {
	return retryErr(func() error { return r.d.Append(ctx, d, name, target, masks) })
}

func (r retryDir) Delete(ctx context.Context, d dir.Capability, name string) error {
	return retryErr(func() error { return r.d.Delete(ctx, d, name) })
}

func (r retryDir) Chmod(ctx context.Context, d dir.Capability, name string, masks []dir.Rights) error {
	return retryErr(func() error { return r.d.Chmod(ctx, d, name, masks) })
}

func (r retryDir) Lookup(ctx context.Context, d dir.Capability, name string) (dir.Capability, error) {
	return retryVal(func() (dir.Capability, error) { return r.d.Lookup(ctx, d, name) })
}

func (r retryDir) LookupSet(ctx context.Context, d dir.Capability, names []string) ([]dir.Capability, error) {
	return retryVal(func() ([]dir.Capability, error) { return r.d.LookupSet(ctx, d, names) })
}

func (r retryDir) ReplaceSet(ctx context.Context, d dir.Capability, items []dir.SetItem) ([]dir.Capability, error) {
	return retryVal(func() ([]dir.Capability, error) { return r.d.ReplaceSet(ctx, d, items) })
}

func (r retryDir) Apply(ctx context.Context, b *dir.Batch) (*dir.BatchResult, error) {
	return retryVal(func() (*dir.BatchResult, error) { return r.d.Apply(ctx, b) })
}

// createDirOn creates a directory on one shard, riding out the
// transient no-majority window a freshly booted (or resetting) replica
// group can expose under heavy load.
func createDirOn(t *testing.T, client *dirclient.Client, shard int) dir.Capability {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		c, err := client.CreateDirOn(bgCtx, shard)
		if err == nil {
			return c
		}
		if !scenarioRetryable(err) || time.Now().After(deadline) {
			t.Fatalf("CreateDirOn(%d): %v", shard, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestConformance(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(t *testing.T, d dir.Directory)
	}{
		{"RootAndCreate", scenarioRootAndCreate},
		{"RowLifecycle", scenarioRowLifecycle},
		{"SentinelErrors", scenarioSentinelErrors},
		{"Sets", scenarioSets},
		{"BatchAtomicCommit", scenarioBatchAtomicCommit},
		{"BatchAtomicAbort", scenarioBatchAtomicAbort},
		{"BatchCreateAndUse", scenarioBatchCreateAndUse},
	}
	for _, shards := range shardCounts() {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for _, cached := range []bool{false, true} {
				t.Run(fmt.Sprintf("cache=%v", cached), func(t *testing.T) {
					for _, balanced := range []bool{false, true} {
						t.Run(fmt.Sprintf("balance=%v", balanced), func(t *testing.T) {
							for _, kind := range allKinds {
								t.Run(kind.String(), func(t *testing.T) {
									_, d := newMatrixCluster(t, kind, shards, dir.CacheOptions{Enabled: cached}, balanced)
									// Ride out the transient no-majority window a
									// freshly booted group can expose when many
									// simulated clusters share the machine.
									createDirOn(t, d, 0)
									for _, sc := range scenarios {
										t.Run(sc.name, func(t *testing.T) { sc.run(t, retryDir{d}) })
									}
								})
							}
						})
					}
				})
			}
		})
	}
}

// TestCrossShardBatch pins the cross-shard atomicity contract on every
// kind: a batch naming directories on two shards commits atomically
// through the client's two-phase commit by default, while a batch that
// opted out with SingleShard is refused client-side with the typed
// dir.ErrCrossShardBatch before any step executes.
func TestCrossShardBatch(t *testing.T) {
	skipShardedInShortLane(t)
	shards := 2
	if *shardsFlag > 1 {
		shards = *shardsFlag
	}
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			// The cached client pins two extra properties: a fail-fast
			// opted-out batch leaves the cache untouched, and a committed
			// cross-shard batch invalidates the cached negatives its steps
			// supersede on every involved shard.
			_, client := newCachedCluster(t, kind, shards, dir.CacheOptions{Enabled: true})
			d0 := createDirOn(t, client, 0)
			d1 := createDirOn(t, client, 1)
			if s0, s1 := dir.ShardOf(d0, shards), dir.ShardOf(d1, shards); s0 != 0 || s1 != 1 {
				t.Fatalf("placement: ShardOf(d0)=%d ShardOf(d1)=%d, want 0, 1", s0, s1)
			}

			// Opt-out first: SingleShard restores the fail-fast contract.
			b := dir.NewBatch().
				Append(d0, "x", d0, nil).
				Append(d1, "y", d1, nil).
				SingleShard()
			_, err := client.Apply(bgCtx, b)
			if !errors.Is(err, dir.ErrCrossShardBatch) {
				t.Fatalf("opted-out cross-shard Apply: err = %v, want ErrCrossShardBatch", err)
			}
			// Fail-fast: no step may have executed.
			for _, probe := range []struct {
				d    dir.Capability
				name string
			}{{d0, "x"}, {d1, "y"}} {
				if _, err := client.Lookup(bgCtx, probe.d, probe.name); !errors.Is(err, dir.ErrNotFound) {
					t.Fatalf("opted-out batch leaked step %q: err = %v", probe.name, err)
				}
			}

			// The same steps without the opt-out commit atomically via the
			// two-phase path — and the commit invalidates the cached
			// negative lookups from the probes above on both shards.
			res, err := applyRetrying(client, dir.NewBatch().
				Append(d0, "x", d0, nil).
				Append(d1, "y", d1, nil))
			if err != nil {
				t.Fatalf("cross-shard Apply: %v", err)
			}
			if res != nil && (len(res.Results) != 2 || res.Seq == 0) {
				t.Fatalf("cross-shard result = %+v", res)
			}
			for _, probe := range []struct {
				d    dir.Capability
				name string
			}{{d0, "x"}, {d1, "y"}} {
				if got, err := client.Lookup(bgCtx, probe.d, probe.name); err != nil || got != probe.d {
					t.Fatalf("post-batch Lookup %q: %v, %v — cached negative survived the commit", probe.name, got, err)
				}
			}
		})
	}
}

// TestShardPlacementAndRouting proves the routing rule end to end on a
// 4-shard cluster: CreateDir spreads round-robin, object numbers alone
// identify home shards, and rows may point across shards while every
// directory stays reachable through its own replica group.
func TestShardPlacementAndRouting(t *testing.T) {
	skipShardedInShortLane(t)
	const shards = 4
	_, client := newShardedCluster(t, faultdir.KindGroup, shards)
	root, err := client.Root(bgCtx)
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if s := dir.ShardOf(root, shards); s != 0 {
		t.Fatalf("root homed on shard %d, want 0", s)
	}

	// One directory per shard, registered under the (shard-0) root: a
	// directory tree spanning every replica group.
	caps := make([]dir.Capability, shards)
	for s := 0; s < shards; s++ {
		caps[s] = createDirOn(t, client, s)
		if got := dir.ShardOf(caps[s], shards); got != s {
			t.Fatalf("CreateDirOn(%d) minted object %d homed on shard %d", s, caps[s].Object, got)
		}
		if err := client.Append(bgCtx, root, fmt.Sprintf("shard%d", s), caps[s], nil); err != nil {
			t.Fatalf("Append shard%d: %v", s, err)
		}
	}
	for s := 0; s < shards; s++ {
		got, err := client.Lookup(bgCtx, root, fmt.Sprintf("shard%d", s))
		if err != nil || got != caps[s] {
			t.Fatalf("Lookup shard%d: %v, %v", s, got, err)
		}
		if err := client.Append(bgCtx, caps[s], "here", got, nil); err != nil {
			t.Fatalf("write on shard %d: %v", s, err)
		}
	}

	// Default placement is round-robin: 2×shards creations cover every
	// shard at least once. The counter behind it is process-global, so
	// this assertion relies on the package's tests running sequentially
	// (no t.Parallel()) — concurrent creations elsewhere would steal
	// residues from the sequence.
	seen := make(map[int]bool)
	for i := 0; i < 2*shards; i++ {
		c, err := client.CreateDir(bgCtx)
		if err != nil {
			t.Fatalf("CreateDir: %v", err)
		}
		seen[dir.ShardOf(c, shards)] = true
	}
	if len(seen) != shards {
		t.Fatalf("round-robin placement covered %d of %d shards", len(seen), shards)
	}
}

func scenarioRootAndCreate(t *testing.T, d dir.Directory) {
	root, err := d.Root(bgCtx)
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if root.IsZero() {
		t.Fatal("zero root capability")
	}
	again, err := d.Root(bgCtx)
	if err != nil || again != root {
		t.Fatalf("Root not stable: %v vs %v (%v)", again, root, err)
	}
	sub, err := d.CreateDir(bgCtx, "owner", "group")
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	if sub.IsZero() || sub == root {
		t.Fatalf("bad new directory capability %v", sub)
	}
	if err := d.Append(bgCtx, root, "conf-sub", sub, nil); err != nil {
		t.Fatalf("Append: %v", err)
	}
	got, err := d.Lookup(bgCtx, root, "conf-sub")
	if err != nil || got != sub {
		t.Fatalf("Lookup: %v, %v (want %v)", got, err, sub)
	}
	if err := d.DeleteDir(bgCtx, sub); err != nil {
		t.Fatalf("DeleteDir: %v", err)
	}
	if _, err := d.List(bgCtx, sub, 0); !errors.Is(err, dir.ErrNotFound) {
		t.Fatalf("List after DeleteDir: err = %v, want ErrNotFound", err)
	}
	if err := d.Delete(bgCtx, root, "conf-sub"); err != nil {
		t.Fatalf("cleanup Delete: %v", err)
	}
}

func scenarioRowLifecycle(t *testing.T, d dir.Directory) {
	work, err := d.CreateDir(bgCtx)
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	if err := d.Append(bgCtx, work, "row", work, nil); err != nil {
		t.Fatalf("Append: %v", err)
	}
	masks := []dir.Rights{3, 1, 0}
	if err := d.Chmod(bgCtx, work, "row", masks); err != nil {
		t.Fatalf("Chmod: %v", err)
	}
	rows, err := d.List(bgCtx, work, 0)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(rows) != 1 || rows[0].Name != "row" {
		t.Fatalf("rows = %+v", rows)
	}
	if len(rows[0].ColMasks) == 0 || rows[0].ColMasks[0] != 3 {
		t.Fatalf("masks not applied: %+v", rows[0].ColMasks)
	}
	if err := d.Delete(bgCtx, work, "row"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := d.Lookup(bgCtx, work, "row"); !errors.Is(err, dir.ErrNotFound) {
		t.Fatalf("Lookup after Delete: err = %v, want ErrNotFound", err)
	}
}

func scenarioSentinelErrors(t *testing.T, d dir.Directory) {
	work, err := d.CreateDir(bgCtx)
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	if _, err := d.Lookup(bgCtx, work, "missing"); !errors.Is(err, dir.ErrNotFound) {
		t.Errorf("missing lookup: err = %v, want ErrNotFound", err)
	}
	if err := d.Append(bgCtx, work, "dup", work, nil); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := d.Append(bgCtx, work, "dup", work, nil); !errors.Is(err, dir.ErrExists) {
		t.Errorf("duplicate append: err = %v, want ErrExists", err)
	}
	if err := d.Delete(bgCtx, work, "missing"); !errors.Is(err, dir.ErrNotFound) {
		t.Errorf("missing delete: err = %v, want ErrNotFound", err)
	}
	// A foreign capability (random check field) is rejected.
	bogus := work
	bogus.Check[0] ^= 0xFF
	if err := d.Append(bgCtx, bogus, "x", work, nil); !errors.Is(err, dir.ErrBadCapability) && !errors.Is(err, dir.ErrNoRights) {
		t.Errorf("forged capability: err = %v, want ErrBadCapability/ErrNoRights", err)
	}
}

func scenarioSets(t *testing.T, d dir.Directory) {
	work, err := d.CreateDir(bgCtx)
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	for _, name := range []string{"a", "b"} {
		if err := d.Append(bgCtx, work, name, work, nil); err != nil {
			t.Fatalf("Append %s: %v", name, err)
		}
	}
	caps, err := d.LookupSet(bgCtx, work, []string{"a", "nope", "b"})
	if err != nil {
		t.Fatalf("LookupSet: %v", err)
	}
	if len(caps) != 3 || caps[0].IsZero() || !caps[1].IsZero() || caps[2].IsZero() {
		t.Fatalf("LookupSet caps = %+v", caps)
	}
	other, err := d.CreateDir(bgCtx)
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	old, err := d.ReplaceSet(bgCtx, work, []dir.SetItem{{Name: "a", Cap: other}, {Name: "b", Cap: other}})
	if err != nil {
		t.Fatalf("ReplaceSet: %v", err)
	}
	if len(old) != 2 || old[0] != work || old[1] != work {
		t.Fatalf("ReplaceSet old caps = %+v", old)
	}
	got, err := d.Lookup(bgCtx, work, "a")
	if err != nil || got != other {
		t.Fatalf("Lookup after replace: %v, %v", got, err)
	}
}

func scenarioBatchAtomicCommit(t *testing.T, d dir.Directory) {
	work, err := d.CreateDir(bgCtx)
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	b := dir.NewBatch().
		Append(work, "one", work, nil).
		Append(work, "two", work, nil).
		Chmod(work, "one", []dir.Rights{7, 7, 7}).
		Delete(work, "two")
	res, err := d.Apply(bgCtx, b)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(res.Results) != 4 {
		t.Fatalf("got %d step results, want 4", len(res.Results))
	}
	if res.Seq == 0 {
		t.Error("batch committed without a sequence number")
	}
	rows, err := d.List(bgCtx, work, 0)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(rows) != 1 || rows[0].Name != "one" {
		t.Fatalf("rows after batch = %+v", rows)
	}
	// Empty batch: trivially OK, no round trip.
	if _, err := d.Apply(bgCtx, dir.NewBatch()); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func scenarioBatchAtomicAbort(t *testing.T, d dir.Directory) {
	work, err := d.CreateDir(bgCtx)
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	// Step 1 fails (deleting a name that does not exist), so step 0 must
	// not take effect either.
	b := dir.NewBatch().
		Append(work, "ghost", work, nil).
		Delete(work, "never-existed")
	_, err = d.Apply(bgCtx, b)
	if !errors.Is(err, dir.ErrNotFound) {
		t.Fatalf("Apply: err = %v, want ErrNotFound", err)
	}
	var be *dir.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("Apply error %T does not carry a BatchError", err)
	}
	if be.Index != 1 {
		t.Errorf("failing step = %d, want 1", be.Index)
	}
	if _, err := d.Lookup(bgCtx, work, "ghost"); !errors.Is(err, dir.ErrNotFound) {
		t.Fatalf("aborted batch leaked step 0: err = %v", err)
	}
}

func scenarioBatchCreateAndUse(t *testing.T, d dir.Directory) {
	root, err := d.Root(bgCtx)
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	res, err := d.Apply(bgCtx, dir.NewBatch().CreateDir("owner", "group", "other").CreateDir())
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(res.Results))
	}
	c0, c1 := res.Results[0].Cap, res.Results[1].Cap
	if c0.IsZero() || c1.IsZero() || c0 == c1 {
		t.Fatalf("bad created capabilities %v, %v", c0, c1)
	}
	// The minted capabilities are live: register and use them.
	if err := d.Append(bgCtx, root, "batch-made", c0, nil); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := d.Append(bgCtx, c0, "inner", c1, nil); err != nil {
		t.Fatalf("Append into created dir: %v", err)
	}
	got, err := d.Lookup(bgCtx, c0, "inner")
	if err != nil || got != c1 {
		t.Fatalf("Lookup in created dir: %v, %v", got, err)
	}
	if err := d.Delete(bgCtx, root, "batch-made"); err != nil {
		t.Fatalf("cleanup: %v", err)
	}
}

// TestBatchOneBroadcast is the headline measurement of this redesign: a
// B-step batch on the group kind costs ~1 totally-ordered group
// broadcast, where B sequential single updates cost B.
func TestBatchOneBroadcast(t *testing.T) {
	c, d := newCluster(t, faultdir.KindGroup)
	work, err := d.CreateDir(bgCtx)
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	const B = 16

	base := c.GroupSends()
	for i := 0; i < B; i++ {
		if err := d.Append(bgCtx, work, names[i], work, nil); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	singles := c.GroupSends() - base
	if singles != B {
		t.Fatalf("B sequential singles cost %d broadcasts, want %d", singles, B)
	}

	b := dir.NewBatch()
	for i := 0; i < B; i++ {
		b.Delete(work, names[i])
	}
	base = c.GroupSends()
	if _, err := d.Apply(bgCtx, b); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	batched := c.GroupSends() - base
	if batched != 1 {
		t.Fatalf("a %d-step batch cost %d broadcasts, want 1", B, batched)
	}
	t.Logf("%d updates: %d broadcasts sequentially, %d as a batch", B, singles, batched)
}

var names = func() []string {
	out := make([]string, 64)
	for i := range out {
		out[i] = "n" + string(rune('a'+i/26)) + string(rune('a'+i%26))
	}
	return out
}()

// TestConcurrentSinglesCoalesce bounds the write path: concurrently
// submitted single updates never cost more than one broadcast each, and
// any backlog behind an in-flight broadcast rides a shared one (the
// deterministic packing contract is pinned by core's TestDrainCoalesce).
func TestConcurrentSinglesCoalesce(t *testing.T) {
	c, err := faultdir.New(faultdir.KindGroup, faultdir.Options{
		// Paper-hardware timing at 1/20 scale: a group broadcast takes
		// long enough that concurrent submissions pile up behind it and
		// the sender packs them into shared broadcasts.
		Model:             sim.ScaledPaperModel(0.05),
		HeartbeatInterval: 50 * time.Millisecond,
		Servers:           1,
		Workers:           8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	setup, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)
	work, err := setup.CreateDir(bgCtx)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	base := c.GroupSends()
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		client, cleanup, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cleanup)
		go func(i int, d dir.Directory) {
			errs <- d.Append(bgCtx, work, names[i], work, nil)
		}(i, client)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent append: %v", err)
		}
	}
	sends := c.GroupSends() - base
	if sends == 0 || sends > clients {
		t.Fatalf("%d concurrent singles cost %d broadcasts, want 1..%d", clients, sends, clients)
	}
	t.Logf("%d concurrent singles: %d broadcasts", clients, sends)
}

// TestContextCancellation verifies a context aborts an in-flight client
// wait: with every server partitioned away, the operation would
// otherwise retry/transact for many seconds.
func TestContextCancellation(t *testing.T) {
	c, d := newCluster(t, faultdir.KindGroup)
	work, err := d.CreateDir(bgCtx)
	if err != nil {
		t.Fatalf("CreateDir: %v", err)
	}
	c.PartitionServers(1, 2, 3) // client now alone on its side

	t.Run("deadline", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(bgCtx, 50*time.Millisecond)
		defer cancel()
		start := time.Now()
		err := d.Append(ctx, work, "unreachable", work, nil)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want DeadlineExceeded", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("deadline did not abort the wait (took %v)", elapsed)
		}
	})
	t.Run("cancel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(bgCtx)
		go func() {
			time.Sleep(50 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err := d.Apply(ctx, dir.NewBatch().Append(work, "nope", work, nil))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("cancel did not abort the wait (took %v)", elapsed)
		}
	})

	c.Heal()
}

// BenchmarkSequentialSingles and BenchmarkBatchedUpdates time B updates
// issued one group broadcast at a time versus one broadcast per batch.
func BenchmarkSequentialSingles(b *testing.B) {
	benchUpdates(b, false)
}

func BenchmarkBatchedUpdates(b *testing.B) {
	benchUpdates(b, true)
}

func benchUpdates(b *testing.B, batched bool) {
	c, err := faultdir.New(faultdir.KindGroup, faultdir.Options{Model: sim.FastModel()})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	client, cleanup, err := c.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	defer cleanup()
	work, err := client.CreateDir(bgCtx)
	if err != nil {
		b.Fatal(err)
	}
	const B = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			batch := dir.NewBatch()
			for j := 0; j < B; j++ {
				batch.Append(work, names[j], work, nil)
			}
			for j := 0; j < B; j++ {
				batch.Delete(work, names[j])
			}
			if _, err := client.Apply(bgCtx, batch); err != nil {
				b.Fatal(err)
			}
		} else {
			for j := 0; j < B; j++ {
				if err := client.Append(bgCtx, work, names[j], work, nil); err != nil {
					b.Fatal(err)
				}
			}
			for j := 0; j < B; j++ {
				if err := client.Delete(bgCtx, work, names[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(float64(c.GroupSends())/float64(b.N), "broadcasts/op")
}
