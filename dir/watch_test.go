// Tests for the Watch event-stream subsystem and lease-based cache
// coherence at the public API: delivery and filtering on every kind,
// per-shard Seq ordering under concurrent writers (-race), the resync
// marker across a whole-shard crash/recovery, decide events on every
// participant of a cross-shard batch, the leased cache's per-object
// invalidation, and a conformance lane with leases on.
package dir_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	faultdir "dirsvc"

	"dirsvc/dir"
	"dirsvc/internal/dirclient"
	"dirsvc/internal/sim"
)

// leasedOpts enables the cache with push-based coherence.
var leasedOpts = dir.CacheOptions{Enabled: true, Leases: true}

// collectEvents drains ch until done(collected) reports satisfaction or
// the deadline passes, returning everything received. It fails the test
// on timeout or channel close.
func collectEvents(t *testing.T, ch <-chan dir.Event, deadline time.Duration, done func([]dir.Event) bool) []dir.Event {
	t.Helper()
	var evs []dir.Event
	timeout := time.After(deadline)
	for !done(evs) {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("watch channel closed after %d events: %+v", len(evs), evs)
			}
			evs = append(evs, ev)
		case <-timeout:
			t.Fatalf("timed out after %d events: %+v", len(evs), evs)
		}
	}
	return evs
}

// assertWatchOrdered checks the dir.Watcher ordering contract over one
// collected stream: per shard, EventUpdate Seqs are strictly increasing,
// and — when the kind's apply order is the total commit order
// (contiguous=true) and no EventResync intervened — gap-free. A resync
// marker resets the expectation for its shard. Returns the number of
// resync markers seen.
func assertWatchOrdered(t *testing.T, evs []dir.Event, contiguous bool) int {
	t.Helper()
	prev := make(map[int]uint64) // last update Seq per shard
	broken := make(map[int]bool) // resync seen since the last update
	resyncs := 0
	for i, ev := range evs {
		switch ev.Type {
		case dir.EventResync:
			broken[ev.Shard] = true
			resyncs++
		case dir.EventUpdate:
			if p, seen := prev[ev.Shard]; seen && !broken[ev.Shard] {
				if contiguous && ev.Seq != p+1 {
					t.Fatalf("event %d: shard %d Seq %d after %d — gap without a resync marker\n%+v",
						i, ev.Shard, ev.Seq, p, evs)
				}
				if ev.Seq <= p {
					t.Fatalf("event %d: shard %d Seq %d after %d — not increasing\n%+v",
						i, ev.Shard, ev.Seq, p, evs)
				}
			}
			prev[ev.Shard] = ev.Seq
			broken[ev.Shard] = false
		default:
			t.Fatalf("event %d: unknown type %v", i, ev.Type)
		}
	}
	return resyncs
}

// countTouching counts EventUpdates on shard whose Objects include obj.
func countTouching(evs []dir.Event, shard int, obj uint32) int {
	n := 0
	for _, ev := range evs {
		if ev.Type == dir.EventUpdate && ev.Shard == shard {
			for _, o := range ev.Objects {
				if o == obj {
					n++
					break
				}
			}
		}
	}
	return n
}

// TestWatchDeliversUpdates pins basic delivery and filtering on every
// kind: a full-stream subscription sees every committed update with the
// touched objects; a subscription filtered to one directory sees only
// that directory's updates.
func TestWatchDeliversUpdates(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			_, client := newShardedCluster(t, kind, 1)
			x := createDirOn(t, client, 0)
			y := createDirOn(t, client, 0)

			ctx, cancel := context.WithCancel(bgCtx)
			defer cancel()
			all, err := client.Watch(ctx, dir.Capability{})
			if err != nil {
				t.Fatalf("Watch(all): %v", err)
			}
			only, err := client.Watch(ctx, x)
			if err != nil {
				t.Fatalf("Watch(x): %v", err)
			}

			if err := retryErr(func() error { return client.Append(bgCtx, x, "a", x, nil) }); err != nil {
				t.Fatalf("Append x: %v", err)
			}
			if err := retryErr(func() error { return client.Append(bgCtx, y, "b", y, nil) }); err != nil {
				t.Fatalf("Append y: %v", err)
			}

			evs := collectEvents(t, all, 30*time.Second, func(evs []dir.Event) bool {
				return countTouching(evs, 0, x.Object) >= 1 && countTouching(evs, 0, y.Object) >= 1
			})
			assertWatchOrdered(t, evs, kind != faultdir.KindRPC)
			for _, ev := range evs {
				if ev.Type == dir.EventUpdate && countTouching([]dir.Event{ev}, 0, x.Object) == 1 && ev.Op != "append-row" {
					t.Fatalf("x update has Op %q, want append-row", ev.Op)
				}
			}

			// The filtered stream delivers x's update and never y's.
			fevs := collectEvents(t, only, 30*time.Second, func(evs []dir.Event) bool {
				return countTouching(evs, 0, x.Object) >= 1
			})
			for _, ev := range fevs {
				if ev.Type == dir.EventUpdate && countTouching([]dir.Event{ev}, 0, y.Object) != 0 {
					t.Fatalf("filtered stream leaked y's update: %+v", ev)
				}
			}

			// Cancelling the context closes the stream.
			cancel()
			deadline := time.After(10 * time.Second)
			for {
				select {
				case _, ok := <-all:
					if !ok {
						return
					}
				case <-deadline:
					t.Fatal("watch channel never closed after cancel")
				}
			}
		})
	}
}

// TestWatchSeqOrderedConcurrentWriters is the -race ordering proof on
// the group kind: several writer clients hammer two shards while one
// full-stream subscription collects; every shard's stream must be
// strictly Seq-ordered and gap-free (no resync is expected in a healthy
// cluster, but one is tolerated — the contract is "gap-free or
// explicitly resync-marked").
func TestWatchSeqOrderedConcurrentWriters(t *testing.T) {
	skipShardedInShortLane(t)
	const (
		shards    = 2
		writers   = 3
		perWriter = 10
	)
	// A laxer heartbeat than the suite default: spinning writers under
	// -race can starve 15ms failure detection into false resets.
	c, err := faultdir.New(faultdir.KindGroup, faultdir.Options{
		Model:             sim.FastModel(),
		HeartbeatInterval: 50 * time.Millisecond,
		Shards:            shards,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	watcher, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(cleanup)

	// One working directory per (writer, shard), plus a sentinel
	// directory per shard — created before the watch starts, so the
	// collection window holds exactly the appends.
	dirs := make([][]dir.Capability, writers)
	for w := range dirs {
		dirs[w] = make([]dir.Capability, shards)
		for s := 0; s < shards; s++ {
			dirs[w][s] = createDirOn(t, watcher, s)
		}
	}
	fin := make([]dir.Capability, shards)
	for s := 0; s < shards; s++ {
		fin[s] = createDirOn(t, watcher, s)
	}

	ctx, cancel := context.WithCancel(bgCtx)
	defer cancel()
	stream, err := watcher.Watch(ctx, dir.Capability{})
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}

	var wg sync.WaitGroup
	writerErrs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wc, wcleanup, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(wcleanup)
		wg.Add(1)
		go func(w int, wc *dirclient.Client) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				d := dirs[w][i%shards]
				if err := retryErr(func() error {
					return wc.Append(bgCtx, d, fmt.Sprintf("w%d-%d", w, i), d, nil)
				}); err != nil {
					writerErrs <- fmt.Errorf("writer %d append %d: %w", w, i, err)
					return
				}
			}
			writerErrs <- nil
		}(w, wc)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		if err := <-writerErrs; err != nil {
			t.Fatal(err)
		}
	}
	// The sentinels commit after every writer's appends; per-shard apply
	// order means their events arrive last on each shard's stream.
	for s := 0; s < shards; s++ {
		if err := retryErr(func() error { return watcher.Append(bgCtx, fin[s], "fin", fin[s], nil) }); err != nil {
			t.Fatalf("sentinel append shard %d: %v", s, err)
		}
	}

	evs := collectEvents(t, stream, 60*time.Second, func(evs []dir.Event) bool {
		for s := 0; s < shards; s++ {
			if countTouching(evs, s, fin[s].Object) == 0 {
				return false
			}
		}
		return true
	})
	resyncs := assertWatchOrdered(t, evs, true)
	if resyncs == 0 {
		// Gap-free delivery also means complete delivery: with no resync
		// on a shard, every append to it must appear.
		for s := 0; s < shards; s++ {
			got := 0
			for w := 0; w < writers; w++ {
				got += countTouching(evs, s, dirs[w][s].Object)
			}
			want := 0
			for w := 0; w < writers; w++ {
				for i := 0; i < perWriter; i++ {
					if i%shards == s {
						want++
					}
				}
			}
			if got < want {
				t.Fatalf("shard %d delivered %d writer updates, want >= %d (no resync excused the gap)", s, got, want)
			}
		}
	}
	t.Logf("%d events, %d resyncs", len(evs), resyncs)
}

// TestWatchShardCrashRecoveryResync is the acceptance scenario: events
// flow, the whole shard crashes and recovers, and the stream continues —
// with the discontinuity explicitly resync-marked and the ordering
// contract intact on both sides of it.
func TestWatchShardCrashRecoveryResync(t *testing.T) {
	skipShardedInShortLane(t)
	c, client := newShardedCluster(t, faultdir.KindGroupNVRAM, 1)
	work := createDirOn(t, client, 0)

	ctx, cancel := context.WithCancel(bgCtx)
	defer cancel()
	stream, err := client.Watch(ctx, dir.Capability{})
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}

	// Phase 1: updates flow before the fault.
	if err := retryErr(func() error { return client.Append(bgCtx, work, "before", work, nil) }); err != nil {
		t.Fatalf("Append before: %v", err)
	}
	evs := collectEvents(t, stream, 30*time.Second, func(evs []dir.Event) bool {
		return countTouching(evs, 0, work.Object) >= 1
	})

	// Whole-shard crash: every replica fail-stops, then all reboot
	// concurrently (recovery needs a majority to assemble).
	n := c.ServersPerShard()
	for id := 1; id <= n; id++ {
		c.CrashShardServer(0, id)
	}
	restartErrs := make(chan error, n)
	for id := 1; id <= n; id++ {
		go func(id int) { restartErrs <- c.RestartShardServer(0, id) }(id)
	}
	for i := 0; i < n; i++ {
		if err := <-restartErrs; err != nil {
			t.Fatalf("restart: %v", err)
		}
	}

	// Phase 2: the discontinuity must be explicitly resync-marked. The
	// watcher re-subscribes on its own; any update that committed before
	// the new lease is covered by the marker, never silently dropped.
	before := len(evs)
	evs = append(evs, collectEvents(t, stream, 60*time.Second, func(tail []dir.Event) bool {
		for _, ev := range tail {
			if ev.Type == dir.EventResync {
				return true
			}
		}
		return false
	})...)
	for _, ev := range evs[before:] {
		if ev.Type == dir.EventUpdate {
			t.Fatalf("post-crash update delivered before the resync marker: %+v", evs[before:])
		}
	}

	// Phase 3: the stream has resumed — an update committed after the
	// marker was observed must be delivered as an event.
	if err := retryErr(func() error { return client.Append(bgCtx, work, "after", work, nil) }); err != nil {
		t.Fatalf("Append after: %v", err)
	}
	evs = append(evs, collectEvents(t, stream, 60*time.Second, func(tail []dir.Event) bool {
		return countTouching(tail, 0, work.Object) >= 1
	})...)
	assertWatchOrdered(t, evs, true)
}

// TestWatchAcrossTwoPhaseCommit pins the cross-shard contract: a batch
// spanning every shard produces, on each participant shard's stream, a
// decide event carrying that shard's touched directory at the Seq its
// decide committed under.
func TestWatchAcrossTwoPhaseCommit(t *testing.T) {
	skipShardedInShortLane(t)
	const shards = 4
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			_, client := newMatrixCluster(t, kind, shards, dir.CacheOptions{}, false)
			dirs := make([]dir.Capability, shards)
			for s := 0; s < shards; s++ {
				dirs[s] = createDirOn(t, client, s)
			}

			ctx, cancel := context.WithCancel(bgCtx)
			defer cancel()
			stream, err := client.Watch(ctx, dir.Capability{})
			if err != nil {
				t.Fatalf("Watch: %v", err)
			}

			b := dir.NewBatch()
			for s, cap := range dirs {
				b.Append(cap, fmt.Sprintf("x%d", s), cap, nil)
			}
			if _, err := applyRetrying(client, b); err != nil {
				t.Fatalf("cross-shard Apply: %v", err)
			}

			evs := collectEvents(t, stream, 60*time.Second, func(evs []dir.Event) bool {
				for s := 0; s < shards; s++ {
					if countTouching(evs, s, dirs[s].Object) == 0 {
						return false
					}
				}
				return true
			})
			assertWatchOrdered(t, evs, kind != faultdir.KindRPC)
			// Each participant's event is its decide: the commit point of
			// the two-phase protocol on that shard, at that shard's Seq.
			for _, ev := range evs {
				if ev.Type != dir.EventUpdate || len(ev.Objects) == 0 {
					continue
				}
				if countTouching([]dir.Event{ev}, ev.Shard, dirs[ev.Shard].Object) == 1 {
					if ev.Op != "decide" {
						t.Fatalf("shard %d batch event has Op %q, want decide: %+v", ev.Shard, ev.Op, ev)
					}
					if ev.Seq == 0 {
						t.Fatalf("shard %d decide event carries no Seq: %+v", ev.Shard, ev)
					}
				}
			}
		})
	}
}

// TestLeasedCacheForeignWriteKeepsUnrelatedEntries is the satellite
// regression for the PR3 heuristic: with a lease held, a foreign
// client's write to one directory invalidates exactly that directory's
// cached entries — the unexplained Seq jump its reply causes no longer
// evicts the whole shard.
func TestLeasedCacheForeignWriteKeepsUnrelatedEntries(t *testing.T) {
	c, reader := newCachedCluster(t, faultdir.KindGroup, 1, leasedOpts)
	writer, cleanup, err := c.NewCachedClient(dir.CacheOptions{})
	if err != nil {
		t.Fatalf("NewCachedClient: %v", err)
	}
	t.Cleanup(cleanup)

	x := createDirOn(t, reader, 0)
	y := createDirOn(t, reader, 0)
	if err := retryErr(func() error { return reader.Append(bgCtx, x, "seed", x, nil) }); err != nil {
		t.Fatalf("Append x: %v", err)
	}
	if err := retryErr(func() error { return reader.Append(bgCtx, y, "seed", y, nil) }); err != nil {
		t.Fatalf("Append y: %v", err)
	}

	// The foreign write. Its pushed invalidation — not any traffic of the
	// reader's own — must drop the reader's cached x.
	if err := retryErr(func() error { return writer.Append(bgCtx, x, "foreign", x, nil) }); err != nil {
		t.Fatalf("foreign Append: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		rows, err := reader.List(bgCtx, x, 0)
		if err == nil && len(rows) == 2 {
			break // the push arrived: the stale single-row listing is gone
		}
		if time.Now().After(deadline) {
			t.Fatalf("pushed invalidation never reached the reader: rows=%v err=%v", rows, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// y was untouched by the foreign write and by the Seq jump the
	// refill reply carried: its entry must still be served locally.
	if _, err := reader.List(bgCtx, y, 0); err != nil { // refill if a straggler push dropped it
		t.Fatalf("List y: %v", err)
	}
	h0 := reader.CacheStats().Hits
	rows, err := reader.List(bgCtx, y, 0)
	if err != nil || len(rows) != 1 || rows[0].Name != "seed" {
		t.Fatalf("List y: %+v, %v", rows, err)
	}
	if hits := reader.CacheStats().Hits - h0; hits != 1 {
		t.Fatalf("List y after foreign write was not a cache hit (hits delta %d) — whole-shard drop regressed", hits)
	}
}

// TestConformanceLeases runs the conformance scenarios with the leased
// cache on: kinds × shards {1,4} × cache+leases. Push-based coherence
// must be invisible to the API contract.
func TestConformanceLeases(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(t *testing.T, d dir.Directory)
	}{
		{"RootAndCreate", scenarioRootAndCreate},
		{"RowLifecycle", scenarioRowLifecycle},
		{"SentinelErrors", scenarioSentinelErrors},
		{"Sets", scenarioSets},
		{"BatchAtomicCommit", scenarioBatchAtomicCommit},
		{"BatchAtomicAbort", scenarioBatchAtomicAbort},
		{"BatchCreateAndUse", scenarioBatchCreateAndUse},
	}
	counts := []int{1, 4}
	if *shardsFlag > 0 {
		counts = []int{*shardsFlag}
	}
	for _, shards := range counts {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			if shards > 1 {
				skipShardedInShortLane(t)
			}
			for _, kind := range allKinds {
				t.Run(kind.String(), func(t *testing.T) {
					_, d := newCachedCluster(t, kind, shards, leasedOpts)
					createDirOn(t, d, 0)
					for _, sc := range scenarios {
						t.Run(sc.name, func(t *testing.T) { sc.run(t, retryDir{d}) })
					}
				})
			}
		})
	}
}
