// Cross-replica session-consistency tests for the read-balancing client:
// with reads spread over every replica of a shard, a read may land on a
// replica other than the one that acknowledged the preceding write, and
// the MinSeq session floor must keep read-your-writes and monotonic
// reads intact — with the cache off and on.
package dir_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	faultdir "dirsvc"

	"dirsvc/dir"
)

// appendRetrying appends through the shared CI lane's load transients:
// the no-majority/timeout churn plus a brief not-found from a replica
// mid-recovery. Bounded (retryVal's deadline), so a permanent loss
// still fails the test.
func appendRetrying(client dir.Directory, work dir.Capability, name string) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := client.Append(bgCtx, work, name, work, nil)
		if err == nil || errors.Is(err, dir.ErrExists) {
			return nil // ErrExists: an earlier attempt's lost reply
		}
		if !(scenarioRetryable(err) || errors.Is(err, dir.ErrNotFound)) || time.Now().After(deadline) {
			return err
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// balancedKinds are the replicated backends, where balanced reads can
// actually land on a different replica than the write.
var balancedKinds = []faultdir.Kind{
	faultdir.KindGroup, faultdir.KindGroupNVRAM, faultdir.KindRPC,
}

// TestReadBalanceReadYourWrites hammers the write-then-read edge on
// every replicated kind with balancing on and the cache off: each
// appended name must be immediately visible to the very next lookup and
// list, whichever replica answers it.
func TestReadBalanceReadYourWrites(t *testing.T) {
	for _, kind := range balancedKinds {
		t.Run(kind.String(), func(t *testing.T) {
			_, client := newMatrixCluster(t, kind, 1, dir.CacheOptions{}, true)
			// retryDir rides out the load-transient no-majority/timeout
			// churn of the shared -race CI lane (a resetting group refuses
			// requests briefly). The session-consistency assertions keep
			// their teeth: a lookup that answers ErrNotFound — a real
			// read-your-writes violation — passes through and fails.
			d := retryDir{client}
			work := createDirOn(t, client, 0)
			for i := 0; i < 25; i++ {
				name := fmt.Sprintf("ryw%02d", i)
				if err := d.Append(bgCtx, work, name, work, nil); err != nil {
					t.Fatalf("Append %s: %v", name, err)
				}
				if _, err := d.Lookup(bgCtx, work, name); err != nil {
					t.Fatalf("read-your-writes violated at %s: %v", name, err)
				}
				rows, err := d.List(bgCtx, work, 0)
				if err != nil {
					t.Fatalf("List after %s: %v", name, err)
				}
				if len(rows) != i+1 {
					t.Fatalf("monotonic reads violated after %s: %d rows, want %d", name, len(rows), i+1)
				}
			}
		})
	}
}

// TestReadBalanceCachedReadYourWrites runs the same edge with the read
// cache on: an invalidated entry refills from whichever replica answers,
// and the MinSeq floor must keep that refill from resurrecting the
// pre-write state.
func TestReadBalanceCachedReadYourWrites(t *testing.T) {
	_, client := newMatrixCluster(t, faultdir.KindGroup, 1, dir.CacheOptions{Enabled: true}, true)
	work := createDirOn(t, client, 0)
	for i := 0; i < 25; i++ {
		name := fmt.Sprintf("cryw%02d", i)
		if _, err := client.Lookup(bgCtx, work, name); !errors.Is(err, dir.ErrNotFound) {
			t.Fatalf("pre-write lookup %s: err = %v, want ErrNotFound", name, err)
		}
		if err := client.Append(bgCtx, work, name, work, nil); err != nil {
			t.Fatalf("Append %s: %v", name, err)
		}
		// The append invalidated the cached negative; the refill lands on
		// an arbitrary replica and must observe the write.
		got, err := client.Lookup(bgCtx, work, name)
		if err != nil || got != work {
			t.Fatalf("cached read-your-writes violated at %s: %v, %v", name, got, err)
		}
	}
}

// TestReadBalanceConcurrentClients stresses balanced reads and writes
// from several goroutines sharing one client (the concurrent transport
// multiplexes them over one reply port) — run under -race in CI.
func TestReadBalanceConcurrentClients(t *testing.T) {
	_, client := newMatrixCluster(t, faultdir.KindGroup, 1, dir.CacheOptions{}, true)
	work := createDirOn(t, client, 0)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				name := fmt.Sprintf("g%dn%d", g, i)
				// The append rides out the shared lane's load transients,
				// including a brief not-found while a replica reloads its
				// state through recovery; the retry is bounded, so a real
				// loss still fails. The lookup stays strict — answering
				// ErrNotFound there is the session-consistency regression
				// this test exists to catch.
				if err := appendRetrying(client, work, name); err != nil {
					errs <- fmt.Errorf("append %s: %w", name, err)
					return
				}
				if _, err := (retryDir{client}).Lookup(bgCtx, work, name); err != nil {
					errs <- fmt.Errorf("own write %s invisible: %w", name, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	rows, err := client.List(bgCtx, work, 0)
	if err != nil {
		t.Fatalf("final List: %v", err)
	}
	if len(rows) != goroutines*10 {
		t.Fatalf("final row count = %d, want %d", len(rows), goroutines*10)
	}
}
