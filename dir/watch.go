package dir

import "context"

// EventType classifies a Watch event.
type EventType uint8

const (
	// EventUpdate is a committed update: Seq, Op, and Objects describe
	// one entry of the shard's totally-ordered update stream.
	EventUpdate EventType = iota + 1
	// EventResync is a gap marker: between the previous event for this
	// shard and the next one, an unknown number of updates happened that
	// the stream cannot replay — the subscriber fell behind the server's
	// bounded event log, the shard's serving replica crashed or
	// recovered, or the notification lease was lost and re-established.
	// A consumer mirroring shard state must re-read it before trusting
	// subsequent events.
	EventResync
)

// String implements fmt.Stringer.
func (t EventType) String() string {
	switch t {
	case EventUpdate:
		return "update"
	case EventResync:
		return "resync"
	default:
		return "unknown"
	}
}

// Event is one entry of a shard's update stream, as delivered by Watch.
type Event struct {
	// Shard is the shard whose stream this event belongs to.
	Shard int
	// Type is EventUpdate for a committed update, EventResync for a gap
	// marker (only Shard is meaningful on a resync).
	Type EventType
	// Seq is the commit sequence number the update was applied under on
	// the replica serving the stream.
	Seq uint64
	// Op names the operation kind (e.g. "append-row", "batch",
	// "decide").
	Op string
	// Objects are the directory object numbers the update touched. A
	// cross-shard batch commit reports, on each participant shard's
	// stream, the objects that shard changed at its decide Seq. Empty
	// for stream-continuity entries that changed no directory (e.g. a
	// staged prepare).
	Objects []uint32
}

// Watcher is the event-stream interface the directory client implements
// alongside Directory. Watch subscribes to committed updates: pass a
// directory capability to receive only events touching that directory's
// object (on its shard), or the zero Capability to receive every shard's
// full stream. Watch blocks until the subscription is established on
// every watched shard (ctx bounds the wait), so an update committed
// after Watch returns is guaranteed to reach the stream — as an event,
// or covered by a resync marker.
//
// Ordering and delivery guarantees, per shard:
//
//   - Events arrive in the serving replica's apply order. On the group
//     and local kinds that order is the shard's total commit order, so
//     Seq values are strictly increasing and — between two consecutive
//     EventUpdate events with no EventResync between them — gap-free
//     for a full-stream (zero-capability, unfiltered) subscription. On
//     the rpc kind the pair's servers may apply lazily out of order;
//     apply order is still what the stream delivers, but Seq values are
//     not necessarily contiguous.
//   - An EventResync marks every discontinuity: whenever events may
//     have been missed (the subscriber outran the server's bounded
//     event log, the shard crashed or recovered, the lease was lost),
//     the stream says so explicitly rather than silently dropping.
//     Consumers mirroring state re-read it on resync.
//   - Delivery is at-least-once across reconnects: an event replayed
//     after a renewal may already have been delivered. Within one
//     subscription the stream is duplicate-free.
//
// The returned channel is closed when ctx is cancelled or the client is
// closed. A slow consumer that fills the channel's buffer loses events
// and receives an EventResync instead — falling behind is always
// surfaced, never silent.
type Watcher interface {
	Watch(ctx context.Context, d Capability) (<-chan Event, error)
}
