package dir

// DefaultCacheEntries is the per-shard entry bound used when
// CacheOptions.MaxEntries is zero.
const DefaultCacheEntries = 1024

// CacheOptions configures the client-side read cache.
//
// The paper's production workload is 98% reads (§2), yet every Lookup,
// LookupSet, and List pays a full RPC round-trip. With the cache enabled
// the client keeps recent read results — List rows and looked-up
// capabilities, keyed by (capability, operation) — in a per-shard LRU
// cache and serves repeat reads locally, without any network traffic.
//
// # Consistency model
//
// Every reply from a shard carries that shard's service-wide commit
// sequence number (Seq). The client tracks a per-shard high-water mark:
// any reply whose Seq advances past it proves updates committed that the
// cache has not seen, and invalidates that shard's entries. When the
// advance is exactly the client's own single update (or one atomic
// batch), only the touched directories' entries are dropped — the
// per-object refinement; otherwise the whole shard's entries go
// (coarse). Read replies also carry the directory's own last-change
// sequence number (ObjSeq), which tags entries so a cached result is
// never replaced by an older one.
//
// The guarantees, per client:
//
//   - Read-your-writes. A client's update reply invalidates the affected
//     entries before the update returns, so its subsequent reads observe
//     its own writes (the server read path already guarantees a cache
//     miss sees all committed updates, §3.1).
//   - Monotonic reads per shard. Cached data is never older than the
//     newest reply the client has seen from that shard.
//   - Staleness is bounded by the client's own traffic to the shard: a
//     cached read may miss another client's committed update until this
//     client next hears from the shard (any miss, update, or failed read
//     carries the invalidating Seq). There is no cross-client
//     notification protocol — exactly the trade the paper's 98%-read
//     workload makes profitable.
//
// # Leases: push-based coherence
//
// With Leases enabled the client additionally registers a watch lease
// with every shard it talks to, and the server pushes each committed
// update's touched object numbers to the client as it applies. Pushed
// invalidations drop exactly the touched entries, which changes the
// model in two ways:
//
//   - Staleness is no longer bounded by the client's own traffic but by
//     the push latency (normally one one-way message) — an idle client's
//     cache stays coherent. If the push channel degrades, the bound
//     degrades gracefully: to the lease renewal interval while renewals
//     still reach the server, and to the lease TTL outright (e.g. across
//     a partition — the server refuses renewals without a majority, and
//     the client reverts to the pull-only model above until re-leased).
//   - Whole-shard drops become rare: a reply's unexplained Seq jump no
//     longer discards the shard, because the jump's per-object
//     invalidations travel on the push channel. The whole shard is
//     dropped only on a real event-stream discontinuity — a push-log gap
//     the server cannot replay, a shard crash/recovery, or a lost lease.
//
// Read-your-writes, per-shard monotonic reads, and the ObjSeq
// anti-clobber rule are unaffected.
//
// Reads through a disabled (zero) CacheOptions behave exactly as before:
// every read is an RPC, and the service's one-copy serializability is
// unweakened.
type CacheOptions struct {
	// Enabled turns the read cache on. The zero value — cache off — is
	// the paper's original client behavior.
	Enabled bool
	// MaxEntries bounds the number of cached results per shard; least
	// recently used entries are evicted beyond it. Zero means
	// DefaultCacheEntries.
	MaxEntries int
	// Leases turns on push-based coherence: the client holds a watch
	// lease per shard and the servers push per-object invalidations as
	// updates commit (see the consistency model above). Requires
	// Enabled.
	Leases bool
}

// CacheStats are the client read-cache counters. A hit is a read
// operation answered entirely from the cache (no RPC); a miss is a read
// that had to go to the server (and then filled the cache); an
// invalidation is a cached result dropped because a reply's sequence
// number proved it could be stale; an eviction is a drop forced by the
// MaxEntries bound.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	Evictions     uint64
}

// HitRate returns hits/(hits+misses), or 0 when no reads were counted.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
