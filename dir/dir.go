// Package dir defines the stable, transport-agnostic API of the
// fault-tolerant directory service: the paper's Fig. 2 operation set as
// a Go interface, with context-aware cancellation, typed sentinel
// errors, and atomic multi-step batches.
//
// Every backend — the triplicated group service (§3), its NVRAM variant
// (§4.1), the RPC-duplicated predecessor (§1), and the unreplicated
// baseline — is driven through the same Directory interface, so code
// written against it is oblivious to the replication strategy behind the
// service port. Later scaling work (sharding, caching, multi-backend)
// programs against this surface.
package dir

import (
	"context"
	"errors"

	"dirsvc/internal/capability"
	"dirsvc/internal/dirdata"
	"dirsvc/internal/dirsvc"
)

// Core types of the service, re-exported so users of the public API need
// no internal imports.
type (
	// Capability names an object and carries rights over it (Amoeba §2).
	Capability = capability.Capability
	// Rights is a per-column rights mask.
	Rights = capability.Rights
	// Row is one directory row: a name, a capability, and per-column
	// rights masks.
	Row = dirdata.Row
	// SetItem is one element of a lookup/replace set.
	SetItem = dirsvc.SetItem
)

// AllRights grants every right.
const AllRights = capability.AllRights

// MaxBatchSteps bounds one atomic batch.
const MaxBatchSteps = dirsvc.MaxBatchSteps

// Typed sentinel errors. Implementations return errors matching these
// via errors.Is, whatever the transport.
var (
	ErrNotFound      = dirsvc.ErrNotFound
	ErrExists        = dirsvc.ErrExists
	ErrNoMajority    = dirsvc.ErrNoMajority
	ErrConflict      = dirsvc.ErrConflict
	ErrBadRequest    = dirsvc.ErrBadRequest
	ErrServer        = dirsvc.ErrServer
	ErrBadCapability = capability.ErrBadCapability
	ErrNoRights      = capability.ErrNoRights
)

// ErrCrossShardBatch rejects a batch whose steps address directories on
// more than one shard when the caller opted out of distributed commit
// with Batch.SingleShard. By default a cross-shard batch is legal: the
// client runs a two-phase commit across the home shards and the batch
// is atomic deployment-wide. SingleShard restores the fail-fast
// contract for callers that want one-broadcast latency guaranteed; the
// client then detects the violation before any step executes, and the
// batch has no effect.
var ErrCrossShardBatch = errors.New("dir: batch spans more than one shard")

// ShardOf returns the home shard of a capability in a deployment of
// `shards` independent replica groups: shard s owns the object numbers
// ≡ s+1 (mod shards), so the object number alone routes a request. The
// root directory (object 1) is on shard 0. With shards ≤ 1 everything
// is on shard 0 — the unsharded service.
func ShardOf(c Capability, shards int) int {
	if shards <= 1 || c.Object == 0 {
		return 0
	}
	return int((c.Object - 1) % uint32(shards))
}

// ActiveShards returns the number of shards serving traffic at the
// given shard-map epoch in a deployment of total provisioned shards,
// base of them active at epoch zero. Each epoch doubles the active
// count until the provisioned total is reached (splits are always
// power-of-two, so residue classes nest and only twin classes move).
func ActiveShards(epoch uint64, base, total int) int {
	return dirsvc.ActiveShardsAt(epoch, base, total)
}

// HomeShard returns the home shard of an object number at the given
// shard-map epoch: the object's residue class modulo the epoch's active
// shard count. At epoch zero with base == total this is exactly
// ShardOf; later epochs route the split-off residue classes to the
// newly activated shards.
func HomeShard(obj uint32, epoch uint64, base, total int) int {
	return dirsvc.HomeShardAt(obj, epoch, base, total)
}

// BatchError reports the failing step of a rejected batch; the batch as
// a whole had no effect. Retrieve it with errors.As.
type BatchError = dirsvc.BatchError

// StepResult is the per-step outcome of an applied batch.
type StepResult = dirsvc.BatchStepResult

// Directory is the paper's Fig. 2 operation set. Every operation takes a
// context honored as deadline/cancellation down through the transport;
// an aborted wait returns ctx.Err().
//
// Reads (Root, List, Lookup, LookupSet) execute at one server without
// replication traffic. Updates are replicated according to the backend's
// protocol; Apply replicates an entire batch as a single unit — on the
// group backends, one totally-ordered broadcast regardless of the number
// of steps.
type Directory interface {
	// Root returns the root directory capability (bootstrap).
	Root(ctx context.Context) (Capability, error)
	// CreateDir creates a directory (Fig. 2: Create dir) and returns its
	// owner capability. Default columns apply when none are given.
	CreateDir(ctx context.Context, columns ...string) (Capability, error)
	// DeleteDir deletes a directory (Fig. 2: Delete dir).
	DeleteDir(ctx context.Context, dir Capability) error
	// List returns the rows visible through column col (Fig. 2: List dir).
	List(ctx context.Context, dir Capability, col int) ([]Row, error)
	// Append stores target under name in dir (Fig. 2: Append row); nil
	// masks mean full rights in every column.
	Append(ctx context.Context, dir Capability, name string, target Capability, masks []Rights) error
	// Delete removes the named row (Fig. 2: Delete row).
	Delete(ctx context.Context, dir Capability, name string) error
	// Chmod replaces the rights masks of the named row (Fig. 2: Chmod row).
	Chmod(ctx context.Context, dir Capability, name string, masks []Rights) error
	// Lookup resolves one name (a one-element Fig. 2 Lookup set).
	Lookup(ctx context.Context, dir Capability, name string) (Capability, error)
	// LookupSet resolves several names at once (Fig. 2: Lookup set);
	// missing names yield zero capabilities.
	LookupSet(ctx context.Context, dir Capability, names []string) ([]Capability, error)
	// ReplaceSet atomically replaces the capabilities of several rows
	// (Fig. 2: Replace set), returning the previous capabilities.
	ReplaceSet(ctx context.Context, dir Capability, items []SetItem) ([]Capability, error)
	// Apply executes an atomic batch: either every step takes effect, in
	// order, or none do. A failure carries a *BatchError naming the
	// offending step.
	//
	// A batch whose steps all live on one shard commits as a single
	// replicated update — on the group backends, one totally-ordered
	// broadcast regardless of the number of steps — under one service
	// sequence number. A batch naming directories on several shards
	// commits through a two-phase protocol: every home shard stages and
	// locks its steps (PREPARE), then the decision is ratified by the
	// lowest participant shard and propagated (COMMIT/ABORT). The batch
	// is still all-or-nothing deployment-wide; each shard commits it
	// under its own sequence number, and readers of a staged directory
	// are held until the decision, so no reader observes one shard's
	// steps without the others'. Batch.SingleShard opts out of the
	// distributed path: a spanning batch then fails fast with
	// ErrCrossShardBatch before anything is sent.
	//
	// A cross-shard Apply that is cancelled after the decision has been
	// ratified may still commit: the shards finish the transaction among
	// themselves. An Apply abandoned before the decision aborts after
	// the deployment's presumed-abort horizon. Batches of only CreateDir
	// steps have no home and are placed like single CreateDir calls.
	Apply(ctx context.Context, b *Batch) (*BatchResult, error)
}

// Batch accumulates update steps for atomic application via
// Directory.Apply. The zero value is an empty batch; methods chain.
type Batch struct {
	steps  []*dirsvc.Request
	single bool
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Len returns the number of accumulated steps.
func (b *Batch) Len() int { return len(b.steps) }

// CreateDir adds a create-dir step. The new directory's capability is
// returned in the step's result after Apply.
func (b *Batch) CreateDir(columns ...string) *Batch {
	b.steps = append(b.steps, &dirsvc.Request{Op: dirsvc.OpCreateDir, Columns: columns})
	return b
}

// DeleteDir adds a delete-dir step.
func (b *Batch) DeleteDir(dir Capability) *Batch {
	b.steps = append(b.steps, &dirsvc.Request{Op: dirsvc.OpDeleteDir, Dir: dir})
	return b
}

// Append adds an append-row step; nil masks mean full rights in every
// column.
func (b *Batch) Append(dir Capability, name string, target Capability, masks []Rights) *Batch {
	if masks == nil {
		masks = []Rights{AllRights, AllRights, AllRights}
	}
	b.steps = append(b.steps, &dirsvc.Request{
		Op: dirsvc.OpAppendRow, Dir: dir, Name: name, Cap: target, Masks: masks,
	})
	return b
}

// Delete adds a delete-row step.
func (b *Batch) Delete(dir Capability, name string) *Batch {
	b.steps = append(b.steps, &dirsvc.Request{Op: dirsvc.OpDeleteRow, Dir: dir, Name: name})
	return b
}

// Chmod adds a chmod-row step.
func (b *Batch) Chmod(dir Capability, name string, masks []Rights) *Batch {
	b.steps = append(b.steps, &dirsvc.Request{Op: dirsvc.OpChmodRow, Dir: dir, Name: name, Masks: masks})
	return b
}

// ReplaceSet adds a replace-set step.
func (b *Batch) ReplaceSet(dir Capability, items []SetItem) *Batch {
	b.steps = append(b.steps, &dirsvc.Request{Op: dirsvc.OpReplaceSet, Dir: dir, Set: items})
	return b
}

// Objects returns the distinct directory object numbers named by the
// batch's steps, in first-appearance order. CreateDir steps name no
// directory and contribute nothing. Clients use this for fine-grained
// cache invalidation after a batch commits.
func (b *Batch) Objects() []uint32 {
	seen := make(map[uint32]bool, len(b.steps))
	var out []uint32
	for _, st := range b.steps {
		if st.Dir.Object == 0 || seen[st.Dir.Object] {
			continue
		}
		seen[st.Dir.Object] = true
		out = append(out, st.Dir.Object)
	}
	return out
}

// SingleShard opts the batch out of distributed (two-phase) commit:
// Apply then fails fast with ErrCrossShardBatch when the steps span
// shards, guaranteeing the one-broadcast fast path for a batch that
// commits at all. Methods chain.
func (b *Batch) SingleShard() *Batch {
	b.single = true
	return b
}

// SingleShardOnly reports whether SingleShard was requested.
func (b *Batch) SingleShardOnly() bool { return b.single }

// Steps returns the accumulated wire steps in submission order
// (transport clients, which split a batch by home shard; not needed by
// API users). The slice is the batch's backing store — do not mutate.
func (b *Batch) Steps() []*dirsvc.Request { return b.steps }

// Request encodes the batch as a single OpBatch wire request (transport
// clients; not needed by API users).
func (b *Batch) Request() *dirsvc.Request {
	return dirsvc.NewBatchRequest(b.steps)
}

// Shard returns the single home shard addressed by the batch's
// directory-bearing steps. ok is false when no step names a directory —
// a batch of only CreateDir steps may be committed on any shard. Steps
// naming directories on two different shards yield ErrCrossShardBatch.
func (b *Batch) Shard(shards int) (shard int, ok bool, err error) {
	for _, st := range b.steps {
		if st.Dir.Object == 0 {
			continue // CreateDir step: homed wherever the batch commits
		}
		s := ShardOf(st.Dir, shards)
		if !ok {
			shard, ok = s, true
		} else if s != shard {
			return 0, false, ErrCrossShardBatch
		}
	}
	return shard, ok, nil
}

// BatchResult is the outcome of a successfully applied batch.
type BatchResult struct {
	// Seq is the sequence number the batch committed under on its home
	// shard. A cross-shard batch commits under one sequence number per
	// involved shard (each shard numbers its own stream); Seq then
	// carries the resolver shard's — the one whose stream ratified the
	// decision.
	Seq uint64
	// Results holds one entry per step, in submission order.
	Results []StepResult
}
