// Two-phase-commit tests at the public API: the cross-shard lane of the
// conformance matrix, the lock/visibility semantics of a prepared
// transaction, and the coordinator-crash schedule — the client killed
// at every stage of the protocol, with the shards left to resolve the
// orphaned transaction themselves.
package dir_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	faultdir "dirsvc"

	"dirsvc/dir"
	"dirsvc/internal/dirclient"
	"dirsvc/internal/sim"
)

// txAbortTimeout is the presumed-abort horizon the 2PC tests run with:
// short enough that orphan resolution is observable in test time.
const txAbortTimeout = 300 * time.Millisecond

// newTxCluster builds a cluster tuned for two-phase fault injection.
// A non-zero horizon overrides the default short presumed-abort
// timeout — tests that hold a transaction prepared on purpose (rather
// than testing orphan resolution) need one that outlasts the hold.
func newTxCluster(t *testing.T, kind faultdir.Kind, shards int, cache dir.CacheOptions, balance bool, horizon ...time.Duration) (*faultdir.Cluster, *dirclient.Client) {
	t.Helper()
	timeout := txAbortTimeout
	if len(horizon) > 0 {
		timeout = horizon[0]
	}
	c, err := faultdir.New(kind, faultdir.Options{
		Model:             sim.FastModel(),
		HeartbeatInterval: 15 * time.Millisecond,
		Shards:            shards,
		Workers:           8,
		ClientCache:       cache,
		ReadBalance:       balance,
		TxAbortTimeout:    timeout,
		IdleFlush:         time.Hour, // NVRAM flushes only when forced: crash points stay deterministic
	})
	if err != nil {
		t.Fatalf("New(%v, shards=%d): %v", kind, shards, err)
	}
	t.Cleanup(c.Close)
	client, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(cleanup)
	return c, client
}

// lookupEventually polls until the lookup under dir/name settles on
// want (present or absent) or the deadline passes; transient errors are
// retried. It returns the last error for diagnostics.
func lookupEventually(client dir.Directory, d dir.Capability, name string, present bool, deadline time.Duration) error {
	var last error
	until := time.Now().Add(deadline)
	for {
		_, err := client.Lookup(bgCtx, d, name)
		switch {
		case err == nil && present:
			return nil
		case errors.Is(err, dir.ErrNotFound) && !present:
			return nil
		case err == nil:
			last = fmt.Errorf("row %q present, want absent", name)
		default:
			last = err
		}
		if time.Now().After(until) {
			return fmt.Errorf("lookup %q never settled (present=%v): %w", name, present, last)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCrossShardConformance is the cross-shard lane of the conformance
// matrix: every kind commits a spanning batch atomically at shards
// {2,4} × cache {off,on} × read-balance {off,on}, read-your-writes
// holds through the committed batch on every involved shard, and an
// aborted spanning batch leaves no trace anywhere.
func TestCrossShardConformance(t *testing.T) {
	skipShardedInShortLane(t)
	counts := []int{2, 4}
	if *shardsFlag > 1 {
		counts = []int{*shardsFlag}
	}
	for _, shards := range counts {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for _, cached := range []bool{false, true} {
				t.Run(fmt.Sprintf("cache=%v", cached), func(t *testing.T) {
					for _, balanced := range []bool{false, true} {
						t.Run(fmt.Sprintf("balance=%v", balanced), func(t *testing.T) {
							for _, kind := range allKinds {
								t.Run(kind.String(), func(t *testing.T) {
									_, client := newMatrixCluster(t, kind, shards, dir.CacheOptions{Enabled: cached}, balanced)
									scenarioCrossShardBatch(t, client, shards)
								})
							}
						})
					}
				})
			}
		})
	}
}

// applyRetrying applies a batch, riding out the cross-shard lane's load
// transients: the no-majority windows retryDir covers, plus short-lived
// ErrConflict — a previous attempt's aborted transaction can hold its
// locks until the presumed-abort horizon clears them. A retry can also
// discover its predecessor actually committed (the reply was lost):
// ErrExists after the first attempt reports success with a nil result,
// and the caller verifies through reads. Other sentinel errors (the
// regressions the matrix must catch) pass through on first occurrence.
func applyRetrying(client *dirclient.Client, b *dir.Batch) (*dir.BatchResult, error) {
	attempt := 0
	var res *dir.BatchResult
	err := retryFor2PC(func() error {
		attempt++
		var aerr error
		res, aerr = client.Apply(bgCtx, b)
		return aerr
	})
	if err != nil && attempt > 1 && errors.Is(err, dir.ErrExists) {
		return nil, nil
	}
	return res, err
}

func retryFor2PC(op func() error) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := op()
		retryable := scenarioRetryable(err) || errors.Is(err, dir.ErrConflict)
		if err == nil || !retryable || time.Now().After(deadline) {
			return err
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// lookupRetrying resolves one name, riding out lock-wait conflicts and
// transport churn; ErrNotFound — the signal the scenarios assert on —
// passes through untouched.
func lookupRetrying(client *dirclient.Client, d dir.Capability, name string) (dir.Capability, error) {
	var got dir.Capability
	err := retryFor2PC(func() error {
		var lerr error
		got, lerr = client.Lookup(bgCtx, d, name)
		return lerr
	})
	return got, err
}

func scenarioCrossShardBatch(t *testing.T, client *dirclient.Client, shards int) {
	t.Helper()
	dirs := make([]dir.Capability, shards)
	for s := 0; s < shards; s++ {
		dirs[s] = createDirOn(t, client, s)
	}

	// One batch touching every shard, plus a creation riding along.
	b := dir.NewBatch().CreateDir()
	for s, cap := range dirs {
		b.Append(cap, fmt.Sprintf("x%d", s), cap, nil)
	}
	res, err := applyRetrying(client, b)
	if err != nil {
		t.Fatalf("cross-shard Apply: %v", err)
	}
	if res != nil && (len(res.Results) != shards+1 || res.Results[0].Cap.IsZero()) {
		t.Fatalf("results = %+v", res.Results)
	}
	// Read-your-writes: the same client sees every step, immediately,
	// on every shard — through its cache and balanced reads when those
	// are on.
	for s, cap := range dirs {
		got, err := lookupRetrying(client, cap, fmt.Sprintf("x%d", s))
		if err != nil || got != cap {
			t.Fatalf("read-your-writes on shard %d: %v, %v", s, got, err)
		}
	}

	// An aborted spanning batch (bad step on the last shard) leaves no
	// trace on any shard.
	b = dir.NewBatch()
	for s, cap := range dirs {
		b.Append(cap, fmt.Sprintf("y%d", s), cap, nil)
	}
	b.Delete(dirs[shards-1], "never-existed")
	_, err = applyRetrying(client, b)
	if !errors.Is(err, dir.ErrNotFound) {
		t.Fatalf("aborting Apply: err = %v, want ErrNotFound", err)
	}
	var be *dir.BatchError
	if !errors.As(err, &be) || be.Index != shards {
		t.Fatalf("failing step = %v, want index %d", err, shards)
	}
	for s, cap := range dirs {
		if _, err := lookupRetrying(client, cap, fmt.Sprintf("y%d", s)); !errors.Is(err, dir.ErrNotFound) {
			t.Fatalf("aborted batch leaked on shard %d: %v", s, err)
		}
	}
}

// TestTwoPhaseCoordinatorCrash kills the coordinator at every stage of
// the protocol and asserts the shards converge to all-or-nothing on
// their own: before any prepare nothing ever existed; between prepare
// and decide the presumed-abort timeout rolls every shard back and
// releases the locks; after the resolver ratified the commit the
// orphaned shard learns the outcome from the resolver and applies it.
func TestTwoPhaseCoordinatorCrash(t *testing.T) {
	skipShardedInShortLane(t)
	const shards = 2
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			c, client := newTxCluster(t, kind, shards, dir.CacheOptions{}, false)
			probeClient, cleanup, err := c.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()
			probe := retryDir{probeClient}

			stages := []struct {
				name      string
				stage     dirclient.TxStage
				committed bool // the transaction's eventual outcome
			}{
				{"BeforePrepare", dirclient.TxBeforePrepare, false},
				{"AfterPrepare", dirclient.TxAfterPrepare, false},
				{"AfterResolverDecide", dirclient.TxAfterResolverDecide, true},
			}
			for i, sc := range stages {
				t.Run(sc.name, func(t *testing.T) {
					d0 := createDirOn(t, client, 0)
					d1 := createDirOn(t, client, 1)
					name := fmt.Sprintf("crash%d", i)

					client.SetTxHook(func(stage dirclient.TxStage) error {
						if stage == sc.stage {
							return dirclient.ErrTxHalt
						}
						return nil
					})
					_, err := client.Apply(bgCtx, dir.NewBatch().
						Append(d0, name, d0, nil).
						Append(d1, name, d1, nil))
					client.SetTxHook(nil)
					if !errors.Is(err, dirclient.ErrTxHalt) {
						t.Fatalf("halted Apply: err = %v, want ErrTxHalt", err)
					}

					// The shards must settle to the stage's outcome on their
					// own — through an independent client, so no coordinator
					// state helps.
					settle := 10*txAbortTimeout + 5*time.Second
					for s, cap := range []dir.Capability{d0, d1} {
						if err := lookupEventually(probe, cap, name, sc.committed, settle); err != nil {
							t.Fatalf("shard %d: %v", s, err)
						}
					}
					// The locks are gone: both directories accept updates.
					for _, cap := range []dir.Capability{d0, d1} {
						if err := retryErr(func() error {
							return probe.Append(bgCtx, cap, name+"-after", cap, nil)
						}); err != nil {
							t.Fatalf("post-resolution update: %v", err)
						}
					}
				})
			}
		})
	}
}

// TestTwoPhaseAtomicVisibility is the concurrent-reader proof of
// atomicity: while one client streams cross-shard batches, reader
// goroutines interrogate both shards and assert that observing a
// batch's step on one shard implies observing its step on the other —
// in either read order. The mechanism under test: the resolver commits
// first, and the other shard's objects stay locked (readers held) until
// its own decide applies, so "one shard new, the other old" is never
// observable.
func TestTwoPhaseAtomicVisibility(t *testing.T) {
	skipShardedInShortLane(t)
	c, writer := newTxCluster(t, faultdir.KindGroup, 2, dir.CacheOptions{}, false)
	d0 := createDirOn(t, writer, 0)
	d1 := createDirOn(t, writer, 1)

	const batches = 12
	names := make([]string, batches)
	for j := range names {
		names[j] = fmt.Sprintf("av%02d", j)
	}

	stop := make(chan struct{})
	readerErrs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		reader, cleanup, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		defer cleanup()
		first, second := d0, d1
		if r%2 == 1 {
			first, second = d1, d0 // half the readers probe in reverse order
		}
		go func(reader *dirclient.Client, first, second dir.Capability) {
			for {
				select {
				case <-stop:
					readerErrs <- nil
					return
				default:
				}
				for _, name := range names {
					a, err := reader.LookupSet(bgCtx, first, []string{name})
					if err != nil {
						continue // lock wait timed out / transient churn: not an observation
					}
					if a[0].IsZero() {
						continue // not committed on the first shard yet
					}
					// Committed on the first shard: the second shard must
					// show it too — its lock held any reader back until its
					// own commit applied.
					b, err := reader.LookupSet(bgCtx, second, []string{name})
					if err != nil {
						continue
					}
					if b[0].IsZero() {
						readerErrs <- fmt.Errorf("partial batch visible: %s on one shard only", name)
						return
					}
				}
			}
		}(reader, first, second)
	}

	for _, name := range names {
		if _, err := applyRetrying(writer, dir.NewBatch().
			Append(d0, name, d0, nil).
			Append(d1, name, d1, nil)); err != nil {
			close(stop)
			t.Fatalf("Apply %s: %v", name, err)
		}
	}
	close(stop)
	for r := 0; r < 4; r++ {
		if err := <-readerErrs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestTwoPhaseLocksAndReaders pins the participant lock semantics at
// the API: while a transaction is prepared, conflicting updates are
// refused, and a reader of a staged directory is held until the
// decision — it then observes the committed batch, never a mix.
func TestTwoPhaseLocksAndReaders(t *testing.T) {
	skipShardedInShortLane(t)
	// A long presumed-abort horizon: this test holds the transaction
	// prepared on purpose, and the shards must not resolve it meanwhile.
	c, client := newTxCluster(t, faultdir.KindGroup, 2, dir.CacheOptions{}, false, time.Minute)
	other, cleanup, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	d0 := createDirOn(t, client, 0)
	d1 := createDirOn(t, client, 1)

	hold := make(chan struct{})
	released := make(chan struct{})
	client.SetTxHook(func(stage dirclient.TxStage) error {
		if stage == dirclient.TxAfterPrepare {
			close(released)
			<-hold
		}
		return nil
	})
	defer client.SetTxHook(nil)

	applyDone := make(chan error, 1)
	go func() {
		_, err := client.Apply(bgCtx, dir.NewBatch().
			Append(d0, "locked", d0, nil).
			Append(d1, "locked", d1, nil))
		applyDone <- err
	}()
	<-released

	// Both directories are prepared: a conflicting update is refused.
	// (Transient no-majority churn from the shared -race lane is ridden
	// out; the terminal answer must be the conflict.)
	var conflictErr error
	for until := time.Now().Add(20 * time.Second); ; {
		conflictErr = other.Append(bgCtx, d1, "intruder", d1, nil)
		if !scenarioRetryable(conflictErr) || time.Now().After(until) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !errors.Is(conflictErr, dir.ErrConflict) {
		t.Fatalf("conflicting update: err = %v, want ErrConflict", conflictErr)
	}

	// A reader of the staged directory blocks until the decision, then
	// sees the committed row.
	readDone := make(chan error, 1)
	go func() {
		caps, err := other.LookupSet(bgCtx, d1, []string{"locked"})
		if err == nil && caps[0].IsZero() {
			err = fmt.Errorf("reader saw the pre-batch state after the commit")
		}
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("reader returned while the transaction was prepared: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(hold) // let the coordinator commit
	if err := <-applyDone; err != nil {
		t.Fatalf("Apply: %v", err)
	}
	select {
	case err := <-readDone:
		if err != nil {
			t.Fatalf("blocked reader: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked reader never woke after the commit")
	}
}
