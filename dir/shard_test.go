package dir_test

import (
	"errors"
	"math/rand"
	"testing"

	"dirsvc/dir"
	"dirsvc/internal/dirsvc"
)

func capOf(obj uint32) dir.Capability {
	var c dir.Capability
	c.Object = obj
	return c
}

func TestShardOf(t *testing.T) {
	cases := []struct {
		obj    uint32
		shards int
		want   int
	}{
		{1, 1, 0}, {9, 1, 0}, // unsharded: everything on shard 0
		{0, 4, 0},                                  // zero capability: defined as shard 0
		{1, 4, 0},                                  // root
		{2, 4, 1}, {3, 4, 2}, {4, 4, 3}, {5, 4, 0}, // residue classes
		{1, 2, 0}, {2, 2, 1}, {3, 2, 0},
	}
	for _, c := range cases {
		if got := dir.ShardOf(capOf(c.obj), c.shards); got != c.want {
			t.Errorf("ShardOf(obj=%d, shards=%d) = %d, want %d", c.obj, c.shards, got, c.want)
		}
	}
}

func TestBatchShard(t *testing.T) {
	const shards = 4
	d1 := capOf(2) // shard 1
	d5 := capOf(6) // shard 1
	d2 := capOf(3) // shard 2

	// All steps on one shard.
	shard, ok, err := dir.NewBatch().Append(d1, "a", d1, nil).Delete(d5, "b").Shard(shards)
	if err != nil || !ok || shard != 1 {
		t.Fatalf("single-shard batch: shard=%d ok=%v err=%v, want 1 true nil", shard, ok, err)
	}

	// CreateDir steps are shard-agnostic and do not pin the batch.
	shard, ok, err = dir.NewBatch().CreateDir().Append(d2, "a", d1, nil).Shard(shards)
	if err != nil || !ok || shard != 2 {
		t.Fatalf("create+update batch: shard=%d ok=%v err=%v, want 2 true nil", shard, ok, err)
	}

	// A batch of only creations has no home.
	if _, ok, err := dir.NewBatch().CreateDir().CreateDir().Shard(shards); ok || err != nil {
		t.Fatalf("create-only batch: ok=%v err=%v, want false nil", ok, err)
	}

	// Steps on two shards are refused with the typed sentinel.
	_, _, err = dir.NewBatch().Append(d1, "a", d1, nil).Append(d2, "b", d2, nil).Shard(shards)
	if !errors.Is(err, dir.ErrCrossShardBatch) {
		t.Fatalf("cross-shard batch: err = %v, want ErrCrossShardBatch", err)
	}

	// With one shard nothing can cross.
	if _, _, err := dir.NewBatch().Append(d1, "a", d1, nil).Append(d2, "b", d2, nil).Shard(1); err != nil {
		t.Fatalf("unsharded batch: err = %v", err)
	}
}

// TestHomeShardProperty is the post-split routing property test: for
// every (object, epoch) pair across a sweep of geometries, the client's
// routing rule (dir.HomeShard) and the server-side owner check
// (dirsvc.TopoState.Home — what RouteForward compares against) must
// agree, exactly one shard may claim ownership, and an epoch bump moves
// exactly the twin residue class and nothing else.
func TestHomeShardProperty(t *testing.T) {
	geometries := []struct{ base, total int }{
		{1, 1}, {1, 2}, {1, 4}, {1, 8}, {2, 2}, {2, 4}, {2, 8}, {3, 6}, {4, 4},
	}
	rng := rand.New(rand.NewSource(8))
	objs := make([]uint32, 0, 1024+64)
	for o := uint32(1); o <= 1024; o++ {
		objs = append(objs, o)
	}
	for i := 0; i < 64; i++ {
		objs = append(objs, rng.Uint32()|1<<20) // large object numbers too
	}
	for _, g := range geometries {
		for epoch := uint64(0); epoch <= 4; epoch++ {
			active := dir.ActiveShards(epoch, g.base, g.total)
			if active < 1 || active > g.total {
				t.Fatalf("ActiveShards(%d, %d, %d) = %d out of range", epoch, g.base, g.total, active)
			}
			for _, obj := range objs {
				home := dir.HomeShard(obj, epoch, g.base, g.total)
				if home < 0 || home >= active {
					t.Fatalf("HomeShard(%d, e=%d, %d/%d) = %d, not in [0,%d)", obj, epoch, g.base, g.total, home, active)
				}
				// Client routing and the server-side owner check agree, and
				// exactly one shard claims the object.
				owners := 0
				for s := 0; s < g.total; s++ {
					topo := dirsvc.TopoState{Epoch: epoch, Shard: s, Base: g.base, Total: g.total}
					if topo.Home(obj) != home {
						t.Fatalf("server owner check on shard %d: home(%d)=%d, client says %d (e=%d, %d/%d)",
							s, obj, topo.Home(obj), home, epoch, g.base, g.total)
					}
					if topo.Home(obj) == s {
						owners++
					}
				}
				if owners != 1 {
					t.Fatalf("object %d owned by %d shards at e=%d (%d/%d)", obj, owners, epoch, g.base, g.total)
				}
				// Epoch 0 with base == total is exactly the pre-elastic rule.
				if epoch == 0 && g.base == g.total {
					if want := dir.ShardOf(capOf(obj), g.total); home != want {
						t.Fatalf("HomeShard(%d, 0, %d, %d) = %d, ShardOf = %d", obj, g.base, g.total, home, want)
					}
				}
				// Nesting: a split moves an object either nowhere or to the
				// old home's twin — never anywhere else.
				next := dir.HomeShard(obj, epoch+1, g.base, g.total)
				if next != home && next != home+active {
					t.Fatalf("split moved object %d from shard %d to %d (e=%d->%d, active %d): not the twin",
						obj, home, next, epoch, epoch+1, active)
				}
				// Saturation: once every provisioned shard is active, further
				// epochs change nothing.
				if active == g.total && next != home {
					t.Fatalf("object %d moved at saturated epoch %d (%d/%d)", obj, epoch, g.base, g.total)
				}
			}
		}
	}
}
