package dir_test

import (
	"errors"
	"testing"

	"dirsvc/dir"
)

func capOf(obj uint32) dir.Capability {
	var c dir.Capability
	c.Object = obj
	return c
}

func TestShardOf(t *testing.T) {
	cases := []struct {
		obj    uint32
		shards int
		want   int
	}{
		{1, 1, 0}, {9, 1, 0}, // unsharded: everything on shard 0
		{0, 4, 0},                                  // zero capability: defined as shard 0
		{1, 4, 0},                                  // root
		{2, 4, 1}, {3, 4, 2}, {4, 4, 3}, {5, 4, 0}, // residue classes
		{1, 2, 0}, {2, 2, 1}, {3, 2, 0},
	}
	for _, c := range cases {
		if got := dir.ShardOf(capOf(c.obj), c.shards); got != c.want {
			t.Errorf("ShardOf(obj=%d, shards=%d) = %d, want %d", c.obj, c.shards, got, c.want)
		}
	}
}

func TestBatchShard(t *testing.T) {
	const shards = 4
	d1 := capOf(2) // shard 1
	d5 := capOf(6) // shard 1
	d2 := capOf(3) // shard 2

	// All steps on one shard.
	shard, ok, err := dir.NewBatch().Append(d1, "a", d1, nil).Delete(d5, "b").Shard(shards)
	if err != nil || !ok || shard != 1 {
		t.Fatalf("single-shard batch: shard=%d ok=%v err=%v, want 1 true nil", shard, ok, err)
	}

	// CreateDir steps are shard-agnostic and do not pin the batch.
	shard, ok, err = dir.NewBatch().CreateDir().Append(d2, "a", d1, nil).Shard(shards)
	if err != nil || !ok || shard != 2 {
		t.Fatalf("create+update batch: shard=%d ok=%v err=%v, want 2 true nil", shard, ok, err)
	}

	// A batch of only creations has no home.
	if _, ok, err := dir.NewBatch().CreateDir().CreateDir().Shard(shards); ok || err != nil {
		t.Fatalf("create-only batch: ok=%v err=%v, want false nil", ok, err)
	}

	// Steps on two shards are refused with the typed sentinel.
	_, _, err = dir.NewBatch().Append(d1, "a", d1, nil).Append(d2, "b", d2, nil).Shard(shards)
	if !errors.Is(err, dir.ErrCrossShardBatch) {
		t.Fatalf("cross-shard batch: err = %v, want ErrCrossShardBatch", err)
	}

	// With one shard nothing can cross.
	if _, _, err := dir.NewBatch().Append(d1, "a", d1, nil).Append(d2, "b", d2, nil).Shard(1); err != nil {
		t.Fatalf("unsharded batch: err = %v", err)
	}
}
